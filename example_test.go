package potluck_test

import (
	"fmt"
	"time"

	potluck "repro"
)

// ExampleCache demonstrates the core deduplication loop: look up before
// computing, put after a miss, and let nearby inputs reuse the result.
func ExampleCache() {
	cache := potluck.New(potluck.Config{
		DisableDropout: true,
		Tuner:          potluck.TunerConfig{WarmupZ: 1},
	})
	cache.RegisterFunction("recognize",
		potluck.KeyTypeSpec{Name: "feat", Index: potluck.IndexKDTree, Dim: 2})

	compute := func(key potluck.Vector) string {
		// ... the expensive work ...
		return "stop sign"
	}

	key := potluck.Vector{0.9, 0.1}
	res, _ := cache.Lookup("recognize", "feat", key)
	if !res.Hit {
		value := compute(key)
		cache.Put("recognize", potluck.PutRequest{
			Keys:     map[string]potluck.Vector{"feat": key},
			Value:    value,
			MissedAt: res.MissedAt,
		})
	}

	// A similar input (e.g. the next camera frame) reuses the result
	// once the similarity threshold admits it.
	cache.ForceThreshold("recognize", "feat", 0.1)
	res, _ = cache.Lookup("recognize", "feat", potluck.Vector{0.93, 0.11})
	fmt.Println(res.Hit, res.Value)
	// Output: true stop sign
}

// ExampleCache_LookupRefined shows post-lookup incremental computation
// (§7 of the paper): the cached result is adjusted to the exact query
// before being returned — the AR warp fast path in miniature.
func ExampleCache_LookupRefined() {
	cache := potluck.New(potluck.Config{
		DisableDropout: true,
		Tuner:          potluck.TunerConfig{WarmupZ: 1},
	})
	cache.RegisterFunction("render", potluck.KeyTypeSpec{Name: "angle", Dim: 1})
	cache.Put("render", potluck.PutRequest{
		Keys:  map[string]potluck.Vector{"angle": {30}},
		Value: "frame@30",
	})
	cache.ForceThreshold("render", "angle", 5)

	res, _ := cache.LookupRefined("render", "angle", potluck.Vector{32},
		func(cached any, cachedKey, queryKey potluck.Vector) any {
			return fmt.Sprintf("%v warped by %+.0f°", cached, queryKey[0]-cachedKey[0])
		})
	fmt.Println(res.Value)
	// Output: frame@30 warped by +2°
}

// ExampleConfig_importance shows the importance-based eviction retaining
// the expensive entry when capacity forces a choice.
func ExampleConfig_importance() {
	cache := potluck.New(potluck.Config{
		DisableDropout: true,
		Tuner:          potluck.TunerConfig{WarmupZ: 1},
		MaxEntries:     2,
	})
	cache.RegisterFunction("f", potluck.KeyTypeSpec{Name: "k", Dim: 1})
	put := func(key float64, value string, cost time.Duration) {
		cache.Put("f", potluck.PutRequest{
			Keys:  map[string]potluck.Vector{"k": {key}},
			Value: value, Cost: cost, Size: 1,
		})
	}
	put(1, "cheap", time.Millisecond)
	put(2, "expensive", 10*time.Second)
	put(3, "medium", time.Second) // evicts the least important: "cheap"

	r1, _ := cache.Lookup("f", "k", potluck.Vector{1})
	r2, _ := cache.Lookup("f", "k", potluck.Vector{2})
	fmt.Println(r1.Hit, r2.Hit)
	// Output: false true
}
