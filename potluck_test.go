package potluck_test

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	potluck "repro"
)

// TestPublicAPIQuickstart walks the documented in-process flow.
func TestPublicAPIQuickstart(t *testing.T) {
	cache := potluck.New(potluck.Config{
		DisableDropout: true,
		Tuner:          potluck.TunerConfig{WarmupZ: 1},
	})
	err := cache.RegisterFunction("f",
		potluck.KeyTypeSpec{Name: "k", Index: potluck.IndexKDTree, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	key := potluck.Vector{1, 2}
	res, err := cache.Lookup("f", "k", key)
	if err != nil || res.Hit {
		t.Fatalf("first lookup: %+v, %v", res, err)
	}
	if _, err := cache.Put("f", potluck.PutRequest{
		Keys:     map[string]potluck.Vector{"k": key},
		Value:    "v",
		MissedAt: res.MissedAt,
	}); err != nil {
		t.Fatal(err)
	}
	res, err = cache.Lookup("f", "k", key)
	if err != nil || !res.Hit || res.Value != "v" {
		t.Fatalf("second lookup: %+v, %v", res, err)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPublicAPIService exercises the server/client pair end to end.
func TestPublicAPIService(t *testing.T) {
	srv := potluck.NewServer(potluck.New(potluck.Config{
		DisableDropout: true,
		Tuner:          potluck.TunerConfig{WarmupZ: 1},
	}))
	sock := filepath.Join(t.TempDir(), "p.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	defer func() {
		cancel()
		srv.Close()
		<-done
	}()

	cl, err := potluck.Dial("unix", sock, "test-app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", potluck.KeyTypeDef{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put("f", map[string]potluck.Vector{"k": {3}}, []byte("x"),
		potluck.PutOptions{Cost: time.Second}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Lookup("f", "k", potluck.Vector{3})
	if err != nil || !res.Hit || string(res.Value) != "x" {
		t.Fatalf("lookup over IPC: %+v, %v", res, err)
	}
}

// TestFeatureLibrary checks the §3.2 key-generation library surface.
func TestFeatureLibrary(t *testing.T) {
	names := potluck.FeatureNames()
	if len(names) < 7 {
		t.Fatalf("library too small: %v", names)
	}
	for _, n := range names {
		if _, err := potluck.FeatureExtractor(n); err != nil {
			t.Errorf("FeatureExtractor(%q): %v", n, err)
		}
	}
	if _, err := potluck.FeatureExtractor("bogus"); err == nil {
		t.Error("bogus extractor accepted")
	}
}

// TestMetricsExported checks the built-in metric set.
func TestMetricsExported(t *testing.T) {
	a, b := potluck.Vector{0, 0}, potluck.Vector{3, 4}
	if potluck.Euclidean.Distance(a, b) != 5 {
		t.Error("euclidean broken")
	}
	if potluck.Manhattan.Distance(a, b) != 7 {
		t.Error("manhattan broken")
	}
	if potluck.Cosine.Distance(potluck.Vector{1, 0}, potluck.Vector{1, 0}) != 0 {
		t.Error("cosine broken")
	}
}

// TestEvictionPolicyConstants verifies the policy kinds resolve.
func TestEvictionPolicyConstants(t *testing.T) {
	for _, p := range []potluck.PolicyKind{
		potluck.PolicyImportance, potluck.PolicyLRU, potluck.PolicyRandom, potluck.PolicyFIFO,
	} {
		cache := potluck.New(potluck.Config{Policy: p, DisableDropout: true})
		if cache == nil {
			t.Fatalf("New with policy %s returned nil", p)
		}
	}
}
