// Package potluck is a cross-application approximate deduplication cache
// for computation-intensive workloads, reproducing "Potluck:
// Cross-Application Approximate Deduplication for Computation-Intensive
// Mobile Applications" (Guo & Hu, ASPLOS 2018).
//
// Potluck stores (function, key-type, key) → result tuples where keys
// are feature vectors derived from raw input. Lookups are approximate:
// a threshold-restricted nearest-neighbour query whose threshold adapts
// online (the paper's Algorithm 1), with a random-dropout mechanism for
// quality control. Entries are ranked for eviction by an importance
// metric (computation cost × access frequency / size) and expire after a
// validity period.
//
// # In-process use
//
//	cache := potluck.New(potluck.Config{})
//	cache.RegisterFunction("objectRecognition",
//		potluck.KeyTypeSpec{Name: "downsamp", Index: potluck.IndexKDTree})
//
//	res, _ := cache.Lookup("objectRecognition", "downsamp", key)
//	if !res.Hit {
//		label := expensiveRecognition(frame)
//		cache.Put("objectRecognition", potluck.PutRequest{
//			Keys:     map[string]potluck.Vector{"downsamp": key},
//			Value:    label,
//			MissedAt: res.MissedAt,
//		})
//	}
//
// # As a background service
//
// Run cmd/potluckd and connect applications with Dial; see
// examples/multiapp for three applications sharing one service.
package potluck

import (
	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/index"
	"repro/internal/service"
	"repro/internal/vec"
)

// Core cache types, re-exported from the implementation.
type (
	// Cache is the deduplication cache (see core.Cache).
	Cache = core.Cache
	// Config configures a Cache; the zero value gives the paper's
	// defaults (1-hour TTL, 0.1 dropout, importance eviction, Algorithm
	// 1 with k=4, γ=0.8, z=100).
	Config = core.Config
	// KeyTypeSpec declares one key type of a function.
	KeyTypeSpec = core.KeyTypeSpec
	// PutRequest describes an entry to insert.
	PutRequest = core.PutRequest
	// LookupResult reports a lookup outcome.
	LookupResult = core.LookupResult
	// Stats counts cache activity.
	Stats = core.Stats
	// TunerConfig parameterizes the threshold-tuning algorithm.
	TunerConfig = core.TunerConfig
	// TunerStats snapshots a tuner's state.
	TunerStats = core.TunerStats
	// ReputationConfig enables the cache-pollution defence.
	ReputationConfig = core.ReputationConfig
	// PolicyKind names an eviction policy.
	PolicyKind = core.PolicyKind
	// Extractor derives a key from a raw input.
	Extractor = core.Extractor
	// ID identifies a cache entry.
	ID = core.ID
)

// Key-space types.
type (
	// Vector is a feature-vector key.
	Vector = vec.Vector
	// Metric is a distance over keys.
	Metric = vec.Metric
)

// Eviction policies (§5.3 of the paper compares the first three).
const (
	PolicyImportance = core.PolicyImportance
	PolicyLRU        = core.PolicyLRU
	PolicyRandom     = core.PolicyRandom
	PolicyFIFO       = core.PolicyFIFO
)

// Index kinds for KeyTypeSpec.Index (Figure 5 of the paper, plus the
// sub-linear ANN kinds for million-entry key sets).
const (
	IndexLinear  = index.KindLinear
	IndexKDTree  = index.KindKDTree
	IndexLSH     = index.KindLSH
	IndexTreeMap = index.KindTreeMap
	IndexHash    = index.KindHash
	IndexHNSW    = index.KindHNSW
	IndexIVF     = index.KindIVF
	IndexHNSWPQ  = index.KindHNSWPQ
	IndexIVFPQ   = index.KindIVFPQ
)

// Built-in metrics.
var (
	// Euclidean is the default L2 metric.
	Euclidean Metric = vec.EuclideanMetric{}
	// Manhattan is the L1 metric.
	Manhattan Metric = vec.ManhattanMetric{}
	// Cosine is 1−cos similarity.
	Cosine Metric = vec.CosineMetric{}
)

// New constructs a cache. See Config for the defaults.
func New(cfg Config) *Cache { return core.New(cfg) }

// Service types: the Binder-style background service (§4 of the paper).
type (
	// Server exposes a cache over a socket.
	Server = service.Server
	// Client is an application's connection to a server.
	Client = service.Client
	// KeyTypeDef declares a key type over the wire.
	KeyTypeDef = service.KeyTypeDef
	// PutOptions carries optional Put fields over the wire.
	PutOptions = service.PutOptions
	// Tiered chains a local cache with a remote peer service — the
	// cross-device deduplication of the paper's §7 future work.
	Tiered = service.Tiered
	// SnapshotStats reports snapshot persistence coverage.
	SnapshotStats = core.SnapshotStats
	// Refiner adjusts a cached result to the exact current input
	// (post-lookup incremental computation, §7).
	Refiner = core.Refiner
	// LookupSub is one sub-lookup of a batched Client.MultiLookup.
	LookupSub = service.LookupSub
	// PutSub is one sub-put of a batched Client.MultiPut.
	PutSub = service.PutSub
	// MultiLookupResult is the per-sub outcome of Client.MultiLookup.
	MultiLookupResult = service.MultiLookupResult
	// MultiPutResult is the per-sub outcome of Client.MultiPut.
	MultiPutResult = service.MultiPutResult
	// BatchLookup is one sub-lookup of an in-process Cache.MultiLookup.
	BatchLookup = core.BatchLookup
	// BatchPut is one sub-put of an in-process Cache.MultiPut.
	BatchPut = core.BatchPut
)

// MaxBatch is the wire limit on sub-operations per batch frame.
const MaxBatch = service.MaxBatch

// NewServer wraps a cache in a service.
func NewServer(cache *Cache) *Server { return service.NewServer(cache) }

// Dial connects to a Potluck service ("unix" + socket path or "tcp" +
// host:port). app names the calling application.
func Dial(network, addr, app string) (*Client, error) {
	return service.Dial(network, addr, app)
}

// StringKey embeds a string into the key space (§4.2's String key
// support); pair it with IndexTreeMap for lexical ordering.
func StringKey(s string) Vector { return vec.FromString(s) }

// KeyString recovers a string from a StringKey embedding.
func KeyString(v Vector) string { return vec.ToString(v) }

// FeatureExtractor returns a built-in key-generation mechanism from the
// library of §3.2 ("colorhist", "hog", "downsamp", "fast", "harris",
// "surf", "sift").
func FeatureExtractor(name string) (feature.Extractor, error) {
	return feature.ByName(name)
}

// FeatureNames lists the built-in extractors.
func FeatureNames() []string { return feature.Names() }
