// Benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation, each exercising the operation the artifact
// measures. Full table/figure regeneration (rows and series) is
// cmd/potluck-experiments; these benches time the underlying primitives
// with Go's benchmark machinery.
package potluck_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	potluck "repro"
	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/imaging"
	"repro/internal/index"
	"repro/internal/nn"
	"repro/internal/render"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/vec"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// BenchmarkFig2FrameSimilarity times one frame-similarity evaluation:
// extracting the ColorHist and HOG features of a video frame and
// computing the normalized distance to a reference (Figure 2's inner
// loop).
func BenchmarkFig2FrameSimilarity(b *testing.B) {
	video := synth.NewVideo(synth.VideoConfig{W: 160, H: 120, Seed: 1})
	frames := video.Frames(8)
	colorhist, _ := feature.ByName("colorhist")
	hog, _ := feature.ByName("hog")
	ref := colorhist.Extract(frames[0]).Key.Normalize()
	refHOG := hog.Extract(frames[0]).Key.Normalize()
	metric := vec.EuclideanMetric{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := frames[i%len(frames)]
		metric.Distance(ref, colorhist.Extract(f).Key.Normalize())
		metric.Distance(refHOG, hog.Extract(f).Key.Normalize())
	}
}

// BenchmarkTable1KeyGeneration times each Table 1 extractor on a
// 600×400 frame.
func BenchmarkTable1KeyGeneration(b *testing.B) {
	img := synth.NewVideo(synth.VideoConfig{W: 600, H: 400, Seed: 7, Objects: 80}).Frame(0)
	for _, name := range []string{"sift", "surf", "harris", "fast", "downsamp"} {
		ext, err := feature.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ext.Extract(img)
			}
		})
	}
}

// BenchmarkFig6ThresholdInit times one warm-up threshold initialization
// over 64 observations (Figure 6's per-repetition work).
func BenchmarkFig6ThresholdInit(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	same := make([]float64, 64)
	diff := make([]float64, 64)
	for i := range same {
		same[i] = rng.Float64()
		diff[i] = 1 + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.WarmupThreshold(same, diff)
	}
}

// BenchmarkFig7ThresholdDecay times one Algorithm 1 observation (the
// operation Figure 7 counts).
func BenchmarkFig7ThresholdDecay(b *testing.B) {
	tuner := core.NewTuner(core.TunerConfig{WarmupZ: 1})
	tuner.ObservePut(0, true, false)
	tuner.ForceActivate(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.ObservePut(0.5, i%2 == 0, true)
	}
}

// BenchmarkFig8Replacement replays the Figure 8 request sequence (10 000
// requests, 100 workloads, 20% capacity) once per iteration, for each
// replacement policy.
func BenchmarkFig8Replacement(b *testing.B) {
	specs := workload.Specs(100, 1e6, 1e10)
	seq := workload.Sequence(workload.Exponential, 100, 10_000, rand.New(rand.NewSource(8)))
	for _, pol := range []core.PolicyKind{core.PolicyImportance, core.PolicyLRU, core.PolicyRandom} {
		b.Run(string(pol), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workload.Replay(specs, seq, pol, 20, workload.Mobile); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Lookup times one nearest-neighbour lookup per index
// structure at 10 000 stored 100-byte keys (Table 2's middle row).
func BenchmarkTable2Lookup(b *testing.B) {
	const entries, dim = 10_000, 12
	rng := rand.New(rand.NewSource(2))
	keys := make([]vec.Vector, entries)
	mk := func() vec.Vector {
		v := make(vec.Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	cfg := index.DefaultLSHConfig()
	cfg.BucketWidth = 0.5
	cfg.Hashes = 8
	lsh := index.NewLSH(vec.EuclideanMetric{}, dim, cfg)
	lin := index.NewLinear(vec.EuclideanMetric{})
	kd := index.NewKDTree(vec.EuclideanMetric{})
	for i := 0; i < entries; i++ {
		keys[i] = mk()
		lsh.Insert(index.ID(i), keys[i])
		lin.Insert(index.ID(i), keys[i])
		kd.Insert(index.ID(i), keys[i])
	}
	query := keys[42].Clone()
	query[0] += 0.01
	b.Run("lsh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lsh.ProbeOnly(query, 1)
		}
	})
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kd.Nearest(query)
		}
	})
	b.Run("enum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lin.Nearest(query)
		}
	})
	// Entry-count sweep for the sub-linear kinds (Table 2 extended past
	// paper scale). The index for each (kind, scale) is built once per
	// process — Go re-invokes the sub-benchmark with growing b.N, and
	// rebuilding a 10^5-entry graph on each ramp-up would dominate wall
	// time without being measured.
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, kind := range []index.Kind{index.KindHNSW, index.KindIVF} {
			b.Run(fmt.Sprintf("%s-%d", kind, n), func(b *testing.B) {
				idx, q := sweepIndex(b, kind, n, dim)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := idx.Nearest(q); !ok {
						b.Fatal("no result")
					}
				}
			})
		}
	}
}

// sweepCache holds the indexes BenchmarkTable2Lookup's sweep has already
// built this process, keyed by kind-scale.
var sweepCache = map[string]index.Index{}

func sweepIndex(b *testing.B, kind index.Kind, n, dim int) (index.Index, vec.Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	keys := make([]vec.Vector, n)
	for i := range keys {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		keys[i] = v
	}
	q := keys[42%n].Clone()
	q[0] += 0.01
	ck := fmt.Sprintf("%s-%d", kind, n)
	if idx, ok := sweepCache[ck]; ok {
		return idx, q
	}
	idx, err := index.New(kind, vec.EuclideanMetric{}, dim)
	if err != nil {
		b.Fatal(err)
	}
	for i, k := range keys {
		if err := idx.Insert(index.ID(i), k); err != nil {
			b.Fatal(err)
		}
	}
	sweepCache[ck] = idx
	return idx, q
}

// BenchmarkIndexMemory reports the key-store footprint per entry for the
// flat and product-quantized stores at 10 000 entries (keyB/entry), with
// lookup time as ns/op. PQ kinds run with an external resolver — the
// cache-core deployment, where the members table supplies exact vectors
// for re-ranking — so the PQ store's reported bytes are the real
// incremental index cost.
func BenchmarkIndexMemory(b *testing.B) {
	const entries, dim = 10_000, 16
	for _, kind := range []index.Kind{index.KindHNSW, index.KindHNSWPQ, index.KindIVF, index.KindIVFPQ} {
		b.Run(string(kind), func(b *testing.B) {
			idx, err := index.New(kind, vec.EuclideanMetric{}, dim)
			if err != nil {
				b.Fatal(err)
			}
			members := make(map[index.ID]vec.Vector, entries)
			if rs, ok := idx.(index.ResolverSetter); ok {
				rs.SetKeyResolver(func(id index.ID) (vec.Vector, bool) {
					v, ok := members[id]
					return v, ok
				})
			}
			rng := rand.New(rand.NewSource(16))
			var q vec.Vector
			for i := 0; i < entries; i++ {
				v := make(vec.Vector, dim)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				if err := idx.Insert(index.ID(i), v); err != nil {
					b.Fatal(err)
				}
				members[index.ID(i)] = v
				if i == 42 {
					q = v.Clone()
					q[0] += 0.01
				}
			}
			mr, ok := idx.(index.MemoryReporter)
			if !ok {
				b.Fatalf("%s does not report key memory", kind)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := idx.Nearest(q); !ok {
					b.Fatal("no result")
				}
			}
			// After ResetTimer (which clears extra metrics).
			b.ReportMetric(float64(mr.KeyBytes())/entries, "keyB/entry")
		})
	}
}

// BenchmarkIPCRoundTrip times one lookup round trip over the Unix-socket
// service (§5.4's 0.36 ms measurement).
func BenchmarkIPCRoundTrip(b *testing.B) {
	srv := potluck.NewServer(potluck.New(potluck.Config{
		DisableDropout: true, Tuner: potluck.TunerConfig{WarmupZ: 1},
	}))
	sock := filepath.Join(b.TempDir(), "p.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	defer func() {
		cancel()
		srv.Close()
		<-done
	}()
	cl, err := potluck.Dial("unix", sock, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("f", potluck.KeyTypeDef{Name: "k"}); err != nil {
		b.Fatal(err)
	}
	key := potluck.Vector{1, 2, 3, 4}
	if _, err := cl.Put("f", map[string]potluck.Vector{"k": key}, []byte("v"), potluck.PutOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Lookup("f", "k", key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiLookup times one lookup when batched over the
// Unix-socket service at batch sizes 1, 4 and 16 (one MultiLookup wire
// frame per batch), so ns/op is directly comparable with
// BenchmarkIPCRoundTrip: the gap is the per-operation IPC overhead the
// batch frame amortizes.
func BenchmarkMultiLookup(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			srv := potluck.NewServer(potluck.New(potluck.Config{
				DisableDropout: true, Tuner: potluck.TunerConfig{WarmupZ: 1},
			}))
			sock := filepath.Join(b.TempDir(), "p.sock")
			l, err := net.Listen("unix", sock)
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- srv.Serve(ctx, l) }()
			defer func() {
				cancel()
				srv.Close()
				<-done
			}()
			cl, err := potluck.Dial("unix", sock, "bench")
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if err := cl.Register("f", potluck.KeyTypeDef{Name: "k"}); err != nil {
				b.Fatal(err)
			}
			key := potluck.Vector{1, 2, 3, 4}
			if _, err := cl.Put("f", map[string]potluck.Vector{"k": key}, []byte("v"), potluck.PutOptions{}); err != nil {
				b.Fatal(err)
			}
			subs := make([]potluck.LookupSub, batch)
			for i := range subs {
				subs[i] = potluck.LookupSub{Function: "f", KeyType: "k", Key: key}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				res, err := cl.MultiLookup(subs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// benchCacheWithEntries builds a cache pre-populated with n keys of the
// given dimensionality, threshold forced open.
func benchCacheWithEntries(b *testing.B, n, dim int) (*core.Cache, []vec.Vector) {
	b.Helper()
	cache := core.New(core.Config{
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	})
	if err := cache.RegisterFunction("f", core.KeyTypeSpec{Name: "k", Index: "kdtree", Dim: dim}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	keys := make([]vec.Vector, n)
	for i := range keys {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		keys[i] = v
		if _, err := cache.Put("f", core.PutRequest{
			Keys:  map[string]vec.Vector{"k": v},
			Value: i,
			Cost:  time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := cache.ForceThreshold("f", "k", 1e9); err != nil {
		b.Fatal(err)
	}
	return cache, keys
}

// BenchmarkFig9Tradeoff times one threshold-restricted lookup against
// 5000 stored downsample-sized keys (Figure 9's per-test-image work).
func BenchmarkFig9Tradeoff(b *testing.B) {
	cache, keys := benchCacheWithEntries(b, 5000, feature.DownsampleDims)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Lookup("f", "k", keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// trainedTinyClassifier builds the smallest valid classifier for app
// benches whose hit paths never invoke it.
func trainedTinyClassifier(b *testing.B) *nn.Classifier {
	b.Helper()
	ds := synth.NewCIFARLike(1)
	imgs := []*imaging.RGB{ds.Sample(0, 0).Image, ds.Sample(1, 0).Image}
	clf, err := nn.Train(nn.NewTinyAlexNet(1), imgs, []int{0, 1}, 10)
	if err != nil {
		b.Fatal(err)
	}
	return clf
}

// BenchmarkFig10aDeepLearning times the recognition app's dedup path
// (key generation + lookup hit), the quantity Figure 10(a)'s Potluck bar
// reports.
func BenchmarkFig10aDeepLearning(b *testing.B) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	cache := core.New(core.Config{
		Clock:          clk,
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	})
	env := apps.NewEnv(cache, clk, workload.Mobile)
	app, err := apps.NewRecognitionApp(env, trainedTinyClassifier(b), "bench", true)
	if err != nil {
		b.Fatal(err)
	}
	ds := synth.NewCIFARLike(2)
	img := ds.Sample(0, 0).Image
	if _, err := app.ProcessFrame(img); err != nil { // seed entry
		b.Fatal(err)
	}
	if err := cache.ForceThreshold(apps.RecognitionFunction, apps.RecognitionKeyType, 1e9); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := app.ProcessFrame(img)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Hit {
			b.Fatal("bench must stay on the hit path")
		}
	}
}

// BenchmarkFig10bARRendering times the AR warp fast path (lookup hit +
// WarpToPose) against a full software render, Figure 10(b)'s contrast.
func BenchmarkFig10bARRendering(b *testing.B) {
	scene := &render.Scene{Objects: []render.Object{{
		Mesh:      render.Sphere(24, 32, [3]float64{0.8, 0.3, 0.3}),
		Transform: render.Translate4(render.Vec3{Z: -5}),
	}}}
	r := render.NewRenderer(96, 72)
	from := render.Pose{}
	frame := r.Render(scene, from)
	to := render.Pose{Yaw: 0.04}
	b.Run("warp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			render.WarpToPose(frame, from, to, r.FOV)
		}
	})
	b.Run("render", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Render(scene, to)
		}
	})
}

// BenchmarkFig10cMultiApp times one interleaved multi-app step on the
// dedup path: two different "applications" looking up the same shared
// function.
func BenchmarkFig10cMultiApp(b *testing.B) {
	cache, keys := benchCacheWithEntries(b, 1000, feature.DownsampleDims)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// App 1 (recognition) and app 2 (AR-cv recognition stage) hit
		// the same entries.
		if _, err := cache.Lookup("f", "k", keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
		if _, err := cache.Lookup("f", "k", keys[(i+1)%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMNISTMultiApp times recognition lookups over MNIST-like keys
// (§5.6's high-correlation workload).
func BenchmarkMNISTMultiApp(b *testing.B) {
	ext, _ := feature.ByName("downsamp")
	ds := synth.NewMNISTLike(3)
	cache := core.New(core.Config{
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	})
	if err := cache.RegisterFunction("f", core.KeyTypeSpec{Name: "k", Index: "kdtree", Dim: feature.DownsampleDims}); err != nil {
		b.Fatal(err)
	}
	keys := make([]vec.Vector, 200)
	for i := range keys {
		keys[i] = ext.Extract(ds.Sample(i%10, i).Image).Key
		if _, err := cache.Put("f", core.PutRequest{
			Keys: map[string]vec.Vector{"k": keys[i]}, Value: i % 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := cache.ForceThreshold("f", "k", 1e9); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Lookup("f", "k", keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachePut times one multi-index insertion (the §5.4 "insertion
// overhead is at micro-second level" claim).
func BenchmarkCachePut(b *testing.B) {
	cache := core.New(core.Config{
		DisableDropout: true,
		Tuner:          core.TunerConfig{WarmupZ: 1},
	})
	if err := cache.RegisterFunction("f", core.KeyTypeSpec{Name: "k", Index: "kdtree", Dim: 8}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := vec.Vector{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(),
			rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if _, err := cache.Put("f", core.PutRequest{
			Keys: map[string]vec.Vector{"k": key}, Value: i,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupParallel measures cache throughput under concurrent
// mixed traffic: N goroutines issuing 90% lookups / 10% puts, either all
// against one shared function or spread across eight distinct functions
// (the multi-app daemon scenario of §4.2). Run with -cpu=8 to reproduce
// the sharded-locking speedup recorded in DESIGN.md.
func BenchmarkLookupParallel(b *testing.B) {
	// Four dimensions and a small resident set keep the KD-tree search
	// cheap (pruning is ineffective in high dimensions), so the
	// benchmark measures the per-operation overhead the cache adds —
	// locking, allocation, bookkeeping — rather than index scan cost.
	const dim, entries = 4, 128
	for _, nfuncs := range []int{1, 8} {
		for _, telemetryOn := range []bool{false, true} {
			name := fmt.Sprintf("funcs-%d/telemetry-off", nfuncs)
			if telemetryOn {
				name = fmt.Sprintf("funcs-%d/telemetry-on", nfuncs)
			}
			b.Run(name, func(b *testing.B) {
				cfg := core.Config{
					DisableDropout: true,
					Tuner:          core.TunerConfig{WarmupZ: 1},
				}
				if telemetryOn {
					// Full observability: metric series, latency
					// histograms, and the event tracer, as potluckd
					// runs with -admin-addr. DESIGN.md records the
					// measured overhead vs. the telemetry-off run.
					cfg.Telemetry = telemetry.New()
				}
				cache := core.New(cfg)
				rng := rand.New(rand.NewSource(11))
				keys := make([]vec.Vector, entries)
				for i := range keys {
					v := make(vec.Vector, dim)
					for j := range v {
						v[j] = rng.NormFloat64()
					}
					keys[i] = v
				}
				fns := make([]string, nfuncs)
				for f := range fns {
					fns[f] = fmt.Sprintf("f%d", f)
					if err := cache.RegisterFunction(fns[f], core.KeyTypeSpec{Name: "k", Dim: dim}); err != nil {
						b.Fatal(err)
					}
					for i, v := range keys {
						if _, err := cache.Put(fns[f], core.PutRequest{
							Keys:  map[string]vec.Vector{"k": v},
							Value: i,
							Cost:  time.Millisecond,
						}); err != nil {
							b.Fatal(err)
						}
					}
					if err := cache.ForceThreshold(fns[f], "k", 1e9); err != nil {
						b.Fatal(err)
					}
				}
				// Eight worker goroutines regardless of GOMAXPROCS (run
				// with -cpu=8 to give each its own OS thread), so the
				// contention pattern is the same across machines.
				if gomax := runtime.GOMAXPROCS(0); gomax < 8 && 8%gomax == 0 {
					b.SetParallelism(8 / gomax)
				}
				var worker atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					g := int(worker.Add(1)) - 1
					rng := rand.New(rand.NewSource(int64(g) + 100))
					fn := fns[g%len(fns)]
					// Reused across puts; the cache retains the key vectors,
					// never the request map itself.
					putKeys := make(map[string]vec.Vector, 1)
					for i := 0; pb.Next(); i++ {
						key := keys[rng.Intn(len(keys))]
						if rng.Intn(10) == 0 {
							// Puts use fresh keys: re-putting the preloaded
							// keys would pile duplicate-key chains into the
							// KD-tree and the benchmark would measure tree
							// pathology, not locking. A short TTL lets the
							// expiry machinery retire them so the resident
							// set stays at steady state instead of growing
							// with b.N.
							nk := make(vec.Vector, dim)
							for j := range nk {
								nk[j] = rng.NormFloat64()
							}
							putKeys["k"] = nk
							if _, err := cache.Put(fn, core.PutRequest{
								Keys:  putKeys,
								Value: i,
								Cost:  time.Millisecond,
								TTL:   5 * time.Millisecond,
							}); err != nil {
								b.Error(err)
								return
							}
						} else if _, err := cache.Lookup(fn, "k", key); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkWhatIfOverhead measures what attaching the what-if profiler
// costs the hot path, against the same mixed workload shape as
// BenchmarkLookupParallel (one function, 90% lookups / 10% puts), with
// one worker per core: "detached" is the no-tap baseline (the gate:
// zero extra allocations, ns/op within bench.sh's compare window),
// "attached" taps at the default 1-in-64 sample rate (the gate: ≤5%
// over detached, judged by scripts/bench.sh whatif on the median of
// paired att/det runs), and "attached-full" at rate 1 bounds the worst
// case. The consumer worker runs during the attached modes, as it does
// in the daemon.
func BenchmarkWhatIfOverhead(b *testing.B) {
	const dim, entries = 4, 128
	for _, mode := range []string{"detached", "attached", "attached-full"} {
		b.Run(mode, func(b *testing.B) {
			// MaxEntries pins the index size: TTL-based churn would make
			// the live set (and so the per-op scan cost) proportional to
			// throughput, coupling ns/op to machine speed instead of to
			// the profiler under test.
			cfg := core.Config{
				MaxEntries:     2 * entries,
				DisableDropout: true,
				Tuner:          core.TunerConfig{WarmupZ: 1},
			}
			var prof *whatif.Profiler
			if mode != "detached" {
				rate := whatif.DefaultRate
				if mode == "attached-full" {
					rate = 1
				}
				prof = whatif.New(whatif.Config{Rate: rate, Capacity: entries})
				prof.Start()
				defer prof.Close()
				cfg.Tap = prof
			}
			cache := core.New(cfg)
			rng := rand.New(rand.NewSource(11))
			keys := make([]vec.Vector, entries)
			for i := range keys {
				v := make(vec.Vector, dim)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				keys[i] = v
			}
			if err := cache.RegisterFunction("f", core.KeyTypeSpec{Name: "k", Dim: dim}); err != nil {
				b.Fatal(err)
			}
			for i, v := range keys {
				if _, err := cache.Put("f", core.PutRequest{
					Keys:  map[string]vec.Vector{"k": v},
					Value: i,
					Cost:  time.Millisecond,
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := cache.ForceThreshold("f", "k", 1e9); err != nil {
				b.Fatal(err)
			}
			// Unlike BenchmarkLookupParallel this deliberately does NOT
			// oversubscribe workers past GOMAXPROCS: the gate compares
			// attached to detached ns/op, and scheduler churn from
			// 8-goroutines-per-core drowns the few-percent signal on
			// small hosts.
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := int(worker.Add(1)) - 1
				rng := rand.New(rand.NewSource(int64(g) + 100))
				putKeys := make(map[string]vec.Vector, 1)
				for i := 0; pb.Next(); i++ {
					key := keys[rng.Intn(len(keys))]
					if rng.Intn(10) == 0 {
						nk := make(vec.Vector, dim)
						for j := range nk {
							nk[j] = rng.NormFloat64()
						}
						putKeys["k"] = nk
						if _, err := cache.Put("f", core.PutRequest{
							Keys:  putKeys,
							Value: i,
							Cost:  time.Millisecond,
						}); err != nil {
							b.Error(err)
							return
						}
					} else if _, err := cache.Lookup("f", "k", key); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}

	// "paired" is the series the ≤5% gate reads: it alternates ~16k-op
	// batches between an untapped and a tapped cache inside one run,
	// accumulating wall time per mode, so second-scale machine-speed
	// drift (shared hosts) cancels at batch granularity instead of
	// biasing whole series. Each attached batch ends with a synchronous
	// Drain, billing the consumer's simulation work to the attached
	// side — conservative on multi-core hosts where the consumer runs
	// on a spare core. The overhead-% metric is (att/det − 1)·100.
	b.Run("paired", func(b *testing.B) {
		build := func(tap *whatif.Profiler) *core.Cache {
			cfg := core.Config{
				MaxEntries:     2 * entries,
				DisableDropout: true,
				Tuner:          core.TunerConfig{WarmupZ: 1},
			}
			if tap != nil {
				cfg.Tap = tap
			}
			cache := core.New(cfg)
			if err := cache.RegisterFunction("f", core.KeyTypeSpec{Name: "k", Dim: dim}); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < entries; i++ {
				v := make(vec.Vector, dim)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				if _, err := cache.Put("f", core.PutRequest{
					Keys:  map[string]vec.Vector{"k": v},
					Value: i,
					Cost:  time.Millisecond,
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := cache.ForceThreshold("f", "k", 1e9); err != nil {
				b.Fatal(err)
			}
			return cache
		}
		prof := whatif.New(whatif.Config{Rate: whatif.DefaultRate, Capacity: entries})
		prof.Start()
		defer prof.Close()
		type driver struct {
			cache   *core.Cache
			rng     *rand.Rand
			keys    []vec.Vector
			putKeys map[string]vec.Vector
			ops     int
			ns      int64
		}
		mk := func(cache *core.Cache) *driver {
			rng := rand.New(rand.NewSource(11))
			keys := make([]vec.Vector, entries)
			for i := range keys {
				v := make(vec.Vector, dim)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				keys[i] = v
			}
			return &driver{
				cache: cache, keys: keys,
				rng:     rand.New(rand.NewSource(100)),
				putKeys: make(map[string]vec.Vector, 1),
			}
		}
		det, att := mk(build(nil)), mk(build(prof))
		batch := func(d *driver, n int, drain bool) {
			start := time.Now()
			for i := 0; i < n; i++ {
				key := d.keys[d.rng.Intn(len(d.keys))]
				if d.rng.Intn(10) == 0 {
					nk := make(vec.Vector, dim)
					for j := range nk {
						nk[j] = d.rng.NormFloat64()
					}
					d.putKeys["k"] = nk
					if _, err := d.cache.Put("f", core.PutRequest{
						Keys:  d.putKeys,
						Value: i,
						Cost:  time.Millisecond,
					}); err != nil {
						b.Error(err)
						return
					}
				} else if _, err := d.cache.Lookup("f", "k", key); err != nil {
					b.Error(err)
					return
				}
			}
			if drain {
				prof.Drain()
			}
			d.ns += time.Since(start).Nanoseconds()
			d.ops += n
		}
		const batchOps = 16384
		batch(det, batchOps, false) // warm both caches and the ghosts
		batch(att, batchOps, true)
		det.ops, det.ns, att.ops, att.ns = 0, 0, 0, 0
		b.ResetTimer()
		for left, turn := b.N, 0; left > 0; turn++ {
			n := batchOps
			if n > left {
				n = left
			}
			if turn%2 == 0 {
				batch(det, n, false)
			} else {
				batch(att, n, true)
			}
			left -= n
		}
		b.StopTimer()
		if det.ops > 0 && att.ops > 0 {
			detNs := float64(det.ns) / float64(det.ops)
			attNs := float64(att.ns) / float64(att.ops)
			b.ReportMetric(detNs, "det-ns/op")
			b.ReportMetric(attNs, "att-ns/op")
			b.ReportMetric((attNs/detNs-1)*100, "overhead-%")
		}
	})
}

// BenchmarkDurablePut measures the write-path overhead of the durable
// store: the same put stream against a purely in-memory cache, a cache
// logging with the default interval fsync policy, and one syncing every
// append. The "store-off" series is the bench.sh steady-state baseline
// the 10% gate compares against.
func BenchmarkDurablePut(b *testing.B) {
	const dim = 4
	for _, mode := range []string{"store-off", "store-interval", "store-always"} {
		b.Run(mode, func(b *testing.B) {
			cfg := core.Config{
				DisableDropout: true,
				Tuner:          core.TunerConfig{WarmupZ: 1},
			}
			var durable *store.Log
			if mode != "store-off" {
				policy := store.FsyncInterval
				if mode == "store-always" {
					policy = store.FsyncAlways
				}
				var err error
				durable, err = store.Open(store.Config{Dir: b.TempDir(), Fsync: policy})
				if err != nil {
					b.Fatal(err)
				}
				cfg.Store = durable
			}
			cache := core.New(cfg)
			if err := cache.RegisterFunction("f", core.KeyTypeSpec{Name: "k", Dim: dim}); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			keys := make([]vec.Vector, 1024)
			for i := range keys {
				v := make(vec.Vector, dim)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				keys[i] = v
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cache.Put("f", core.PutRequest{
					Keys:  map[string]vec.Vector{"k": keys[i%len(keys)]},
					Value: i,
					Cost:  time.Millisecond,
					Size:  64,
					TTL:   time.Minute,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if durable != nil {
				durable.Close()
			}
		})
	}
}

func init() {
	// Keep the imports honest if benchmarks are filtered.
	_ = fmt.Sprintf
}
