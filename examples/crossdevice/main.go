// Cross-device deduplication: the paper's §7 direction ("We can also
// apply the deduplication concept across devices"). A household hub
// runs a Potluck service; each device keeps a local cache and falls
// through to the hub on a miss, adopting the hub's results so later
// lookups stay local. Device B ends up reusing computations device A
// paid for — without ever talking to device A.
//
//	go run ./examples/crossdevice
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	potluck "repro"
	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	// --- The hub service (e.g. a home router or smart speaker) ---
	dir, err := os.MkdirTemp("", "potluck-hub")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "hub.sock")
	hub := potluck.NewServer(potluck.New(potluck.Config{
		Tuner: potluck.TunerConfig{WarmupZ: 10},
	}))
	if err := hub.Cache().RegisterFunction("ambientClassification",
		potluck.KeyTypeSpec{Name: "mfcc", Dim: 26}); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- hub.Serve(ctx, l) }()
	defer func() {
		hub.Close()
		<-done
	}()

	// --- A device: local cache + remote tier to the hub ---
	newDevice := func(name string) *service.Tiered {
		local := core.New(core.Config{Tuner: core.TunerConfig{WarmupZ: 10}})
		if err := local.RegisterFunction("ambientClassification",
			core.KeyTypeSpec{Name: "mfcc", Dim: 26}); err != nil {
			log.Fatal(err)
		}
		remote, err := potluck.Dial("unix", sock, name)
		if err != nil {
			log.Fatal(err)
		}
		return &service.Tiered{Local: local, Remote: remote}
	}
	phoneA := newDevice("phone-a")
	phoneB := newDevice("phone-b")

	gen := audio.NewAmbientScene(7)
	classify := func(dev *service.Tiered, devName string, class, variant int) {
		clip, truth := gen.Sample(class, variant)
		key := audio.MFCC(clip, audio.MFCCConfig{})
		res, err := dev.Lookup("ambientClassification", "mfcc", key)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Hit && res.RemoteHit:
			fmt.Printf("%s: class %d → %q (reused from the hub — computed by another device)\n",
				devName, class, res.Value)
		case res.Hit:
			fmt.Printf("%s: class %d → %q (local cache)\n", devName, class, res.Value)
		default:
			time.Sleep(40 * time.Millisecond) // the expensive analysis
			env := fmt.Sprintf("env-%d", truth)
			if err := dev.Put("ambientClassification", "mfcc", key, []byte(env), 40*time.Millisecond); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: class %d → %q (computed, shared to hub)\n", devName, class, env)
		}
	}

	// Warm the hub's threshold with phone A's day.
	for i := 0; i < 12; i++ {
		classify(phoneA, "phone-a", i%3, 100+i)
	}
	fmt.Println("--- phone B enters the same environments ---")
	for i := 0; i < 6; i++ {
		classify(phoneB, "phone-b", i%3, 500+i)
	}
	fmt.Println("--- phone B revisits (now served locally) ---")
	for i := 0; i < 3; i++ {
		classify(phoneB, "phone-b", i%3, 600+i)
	}
}
