// Image recognition over a correlated camera feed: the Google Lens
// pipeline of the paper's Figure 3, with Potluck deduplicating the
// deep-learning inference. A CNN classifies synthetic labelled images;
// similar frames (same object, different background/noise) reuse the
// cached label instead of re-running inference.
//
//	go run ./examples/imagerecognition
package main

import (
	"fmt"
	"log"
	"time"

	potluck "repro"
	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/synth"
)

func main() {
	// Substrate: a labelled synthetic dataset and a small CNN trained on
	// it (a real deployment would bring camera frames and its own model).
	ds := synth.NewCIFARLike(42)
	var trainImgs []*imaging.RGB
	var trainLabels []int
	for c := 0; c < ds.Classes; c++ {
		for v := 0; v < 8; v++ {
			s := ds.Sample(c, v)
			trainImgs = append(trainImgs, s.Image)
			trainLabels = append(trainLabels, s.Label)
		}
	}
	clf, err := nn.Train(nn.NewTinyAlexNet(42), trainImgs, trainLabels, ds.Classes)
	if err != nil {
		log.Fatal(err)
	}
	downsamp, err := potluck.FeatureExtractor("downsamp")
	if err != nil {
		log.Fatal(err)
	}

	cache := potluck.New(potluck.Config{
		Tuner: potluck.TunerConfig{WarmupZ: 20},
	})
	if err := cache.RegisterFunction("objectRecognition",
		potluck.KeyTypeSpec{Name: "downsamp", Index: potluck.IndexKDTree, Dim: 768}); err != nil {
		log.Fatal(err)
	}

	// The camera feed: bursts of similar frames (the user lingers on an
	// object, §2.2's temporal correlation), switching objects every few
	// frames.
	const frames = 120
	var inferenceTime, totalTime time.Duration
	hits, correct := 0, 0
	for i := 0; i < frames; i++ {
		class := (i / 6) % ds.Classes // linger 6 frames per object
		sample := ds.Sample(class, 1000+i)

		frameStart := time.Now()
		key := downsamp.Extract(sample.Image).Key
		res, err := cache.Lookup("objectRecognition", "downsamp", key)
		if err != nil {
			log.Fatal(err)
		}
		var label int
		if res.Hit {
			hits++
			label = res.Value.(int)
		} else {
			inferStart := time.Now()
			label, _ = clf.Classify(sample.Image)
			inferenceTime += time.Since(inferStart)
			if _, err := cache.Put("objectRecognition", potluck.PutRequest{
				Keys:     map[string]potluck.Vector{"downsamp": key},
				Value:    label,
				MissedAt: res.MissedAt,
				App:      "example-lens",
			}); err != nil {
				log.Fatal(err)
			}
		}
		totalTime += time.Since(frameStart)
		if label == sample.Label {
			correct++
		}
	}

	st := cache.Stats()
	fmt.Printf("processed %d frames\n", frames)
	fmt.Printf("cache hits: %d (%.0f%% of lookups, %d dropouts)\n",
		hits, 100*st.HitRate(), st.Dropouts)
	fmt.Printf("accuracy with dedup: %.0f%%\n", 100*float64(correct)/frames)
	fmt.Printf("inference time spent: %s (saved: %s)\n",
		inferenceTime.Round(time.Millisecond), st.SavedCompute.Round(time.Millisecond))
	fmt.Printf("mean per-frame time: %s\n", (totalTime / frames).Round(time.Microsecond))
	ts, _ := cache.TunerStats("objectRecognition", "downsamp")
	fmt.Printf("tuned similarity threshold: %.3f (loosened %d×, tightened %d×)\n",
		ts.Threshold, ts.Loosenings, ts.Tightenings)
}
