// Multi-app deduplication over IPC: the paper's headline scenario. A
// Potluck service runs in the background; two separate applications — a
// Google-Lens-style recognizer and an indoor-navigation AR app — connect
// over a Unix socket, invoke the same objectRecognition function, and
// share each other's cached results (§2.3, Figure 3).
//
//	go run ./examples/multiapp
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	potluck "repro"
	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/synth"
)

func main() {
	// --- The background service (normally cmd/potluckd) ---
	dir, err := os.MkdirTemp("", "potluck-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "potluck.sock")

	srv := potluck.NewServer(potluck.New(potluck.Config{
		Tuner: potluck.TunerConfig{WarmupZ: 15},
	}))
	l, err := net.Listen("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	defer func() {
		srv.Close()
		<-done
	}()

	// --- Shared substrate: dataset, classifier, key extractor ---
	ds := synth.NewCIFARLike(7)
	var imgs []*imaging.RGB
	var labels []int
	for c := 0; c < ds.Classes; c++ {
		for v := 0; v < 8; v++ {
			s := ds.Sample(c, v)
			imgs = append(imgs, s.Image)
			labels = append(labels, s.Label)
		}
	}
	clf, err := nn.Train(nn.NewTinyAlexNet(7), imgs, labels, ds.Classes)
	if err != nil {
		log.Fatal(err)
	}
	downsamp, err := potluck.FeatureExtractor("downsamp")
	if err != nil {
		log.Fatal(err)
	}

	// --- Two applications, each with its own connection ---
	type app struct {
		name   string
		client *potluck.Client
		hits   int
		misses int
	}
	newApp := func(name string) *app {
		cl, err := potluck.Dial("unix", sock, name)
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.Register("objectRecognition", potluck.KeyTypeDef{Name: "downsamp", Index: "kdtree"}); err != nil {
			log.Fatal(err)
		}
		return &app{name: name, client: cl}
	}
	lens := newApp("google-lens")
	nav := newApp("indoor-nav")
	defer lens.client.Close()
	defer nav.client.Close()

	process := func(a *app, img *imaging.RGB) int {
		key := downsamp.Extract(img).Key
		res, err := a.client.Lookup("objectRecognition", "downsamp", key)
		if err != nil {
			log.Fatal(err)
		}
		if res.Hit {
			a.hits++
			return int(res.Value[0])
		}
		a.misses++
		start := time.Now()
		label, _ := clf.Classify(img)
		if _, err := a.client.Put("objectRecognition",
			map[string]potluck.Vector{"downsamp": key},
			[]byte{byte(label)},
			potluck.PutOptions{Cost: time.Since(start)}); err != nil {
			log.Fatal(err)
		}
		return label
	}

	// The two apps see the same physical environment moments apart
	// (§2.2's spatio-temporal correlation): lens looks at each object
	// first, nav follows with a slightly different view.
	for i := 0; i < 60; i++ {
		class := (i / 3) % ds.Classes
		process(lens, ds.Sample(class, 500+i).Image)
		process(nav, ds.Sample(class, 800+i).Image)
	}

	fmt.Printf("%-12s hits=%d misses=%d\n", lens.name, lens.hits, lens.misses)
	fmt.Printf("%-12s hits=%d misses=%d\n", nav.name, nav.hits, nav.misses)
	st, err := lens.client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service: %d entries, %d hits / %d misses overall, %s of computation deduplicated\n",
		st.Entries, st.Hits, st.Misses, time.Duration(st.SavedComputeN).Round(time.Millisecond))
	if nav.hits > 0 {
		fmt.Println("→ indoor-nav reused results computed by google-lens: cross-application deduplication")
	}
}
