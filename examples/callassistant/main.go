// Call assistant: the paper's non-vision sharing scenario (§2.3) — "a
// call assistant might use the mic to capture the audio to identify the
// location and ambient environment to determine whether to mute the
// call. Similarly, the same procedures can be used for home occupancy
// detection." Two such applications share one ambientClassification
// function through Potluck, keyed by MFCC vectors (§4.2's custom-key
// example), so the expensive audio analysis runs once per environment.
//
//	go run ./examples/callassistant
package main

import (
	"fmt"
	"log"
	"time"

	potluck "repro"
	"repro/internal/audio"
)

var environments = []string{
	"office", "street", "restaurant", "home", "transit", "outdoors",
}

// analyzeAmbient stands in for the expensive audio pipeline (VAD +
// classification); the generator's ground truth plays the oracle after a
// simulated 80 ms of processing.
func analyzeAmbient(label int) string {
	time.Sleep(80 * time.Millisecond)
	return environments[label%len(environments)]
}

func main() {
	cache := potluck.New(potluck.Config{
		Tuner: potluck.TunerConfig{WarmupZ: 6},
	})
	if err := cache.RegisterFunction("ambientClassification",
		potluck.KeyTypeSpec{Name: "mfcc", Index: potluck.IndexKDTree, Dim: 26}); err != nil {
		log.Fatal(err)
	}

	gen := audio.NewAmbientScene(2018)
	process := func(app string, class, variant int) (string, bool) {
		clip, truth := gen.Sample(class, variant)
		key := audio.MFCC(clip, audio.MFCCConfig{})
		res, err := cache.Lookup("ambientClassification", "mfcc", key)
		if err != nil {
			log.Fatal(err)
		}
		if res.Hit {
			return res.Value.(string), true
		}
		env := analyzeAmbient(truth)
		if _, err := cache.Put("ambientClassification", potluck.PutRequest{
			Keys:     map[string]potluck.Vector{"mfcc": key},
			Value:    env,
			MissedAt: res.MissedAt,
			App:      app,
		}); err != nil {
			log.Fatal(err)
		}
		return env, false
	}

	// A day at the office: the call assistant and the occupancy detector
	// sample the same acoustic environment at interleaved moments.
	callHits, occHits := 0, 0
	const rounds = 40
	for i := 0; i < rounds; i++ {
		class := (i / 5) % gen.Classes // environments change slowly
		env, hit := process("call-assistant", class, 100+i)
		if hit {
			callHits++
		}
		if i%10 == 0 {
			fmt.Printf("call-assistant: ambient=%q (dedup=%v) → mute=%v\n",
				env, hit, env != "home")
		}
		if _, hit := process("occupancy-detector", class, 200+i); hit {
			occHits++
		}
	}

	st := cache.Stats()
	fmt.Printf("\ncall-assistant hits: %d/%d, occupancy-detector hits: %d/%d\n",
		callHits, rounds, occHits, rounds)
	fmt.Printf("audio analysis deduplicated: %s across both apps (%.0f%% hit rate)\n",
		st.SavedCompute.Round(time.Millisecond), 100*st.HitRate())
	ts, _ := cache.TunerStats("ambientClassification", "mfcc")
	fmt.Printf("tuned MFCC threshold: %.3f\n", ts.Threshold)
}
