// Quickstart: the core Potluck loop — register a function, look up
// before computing, put after a miss — plus a view of the adaptive
// similarity threshold at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	potluck "repro"
)

// expensiveClassify stands in for a computation worth deduplicating: it
// labels a 2-D point by the quadrant-ish region it falls in, after a
// simulated 50 ms of work.
func expensiveClassify(x, y float64) string {
	time.Sleep(50 * time.Millisecond)
	angle := math.Atan2(y, x)
	switch {
	case angle >= 0 && angle < math.Pi/2:
		return "northeast"
	case angle >= math.Pi/2:
		return "northwest"
	case angle < -math.Pi/2:
		return "southwest"
	default:
		return "southeast"
	}
}

func main() {
	cache := potluck.New(potluck.Config{
		// Small warm-up so this demo adapts within a few puts; the
		// paper's default is 100.
		Tuner: potluck.TunerConfig{WarmupZ: 8},
	})
	err := cache.RegisterFunction("classifyPoint",
		potluck.KeyTypeSpec{Name: "xy", Index: potluck.IndexKDTree, Dim: 2})
	if err != nil {
		log.Fatal(err)
	}

	// A drifting input stream: consecutive points are close together,
	// like consecutive camera frames (§2.2 of the paper).
	var hits, misses int
	var computeTime time.Duration
	for i := 0; i < 60; i++ {
		t := float64(i) * 0.12
		x, y := math.Cos(t)*5, math.Sin(t)*5
		key := potluck.Vector{x, y}

		res, err := cache.Lookup("classifyPoint", "xy", key)
		if err != nil {
			log.Fatal(err)
		}
		var label string
		if res.Hit {
			hits++
			label = res.Value.(string)
		} else {
			misses++
			start := time.Now()
			label = expensiveClassify(x, y)
			computeTime += time.Since(start)
			_, err = cache.Put("classifyPoint", potluck.PutRequest{
				Keys:     map[string]potluck.Vector{"xy": key},
				Value:    label,
				MissedAt: res.MissedAt,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		if i%10 == 0 {
			st, _ := cache.TunerStats("classifyPoint", "xy")
			fmt.Printf("point %2d → %-9s (hit=%-5v threshold=%.3f)\n",
				i, label, res.Hit, st.Threshold)
		}
	}

	st := cache.Stats()
	fmt.Printf("\n%d lookups: %d hits, %d misses (%.0f%% hit rate)\n",
		hits+misses, hits, misses, 100*st.HitRate())
	fmt.Printf("compute time spent: %s; compute time saved by dedup: %s\n",
		computeTime.Round(time.Millisecond), st.SavedCompute.Round(time.Millisecond))
}
