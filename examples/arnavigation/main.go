// AR navigation: the location-based AR pipeline of the paper's Figure 3.
// The device pose (orientation + location) keys a cache of rendered
// frames; nearby poses reuse a cached frame by warping it to the new
// viewpoint instead of re-rendering the 3-D scene (§5.5). The example
// renders a furnished scene along a camera path and reports how often
// the warp fast path replaced a full render, then writes a full render
// and its warped reuse side by side as PPM images.
//
//	go run ./examples/arnavigation
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	potluck "repro"
	"repro/internal/imaging"
	"repro/internal/render"
)

func main() {
	// Dense meshes: AR scenes carry orders of magnitude more geometry
	// than the warp's fixed per-pixel cost, which is what makes the
	// fast path worthwhile.
	scene := &render.Scene{Objects: []render.Object{
		{Mesh: render.Furniture([3]float64{0.8, 0.6, 0.4}), Transform: render.Translate4(render.Vec3{X: -1, Y: -0.8, Z: -4})},
		{Mesh: render.Sphere(128, 160, [3]float64{0.3, 0.6, 0.9}), Transform: render.Translate4(render.Vec3{X: 1, Z: -5})},
		{Mesh: render.Sphere(128, 160, [3]float64{0.9, 0.4, 0.4}), Transform: render.Translate4(render.Vec3{X: 0.2, Y: -0.8, Z: -6})},
		{Mesh: render.Sphere(96, 128, [3]float64{0.4, 0.9, 0.4}), Transform: render.Translate4(render.Vec3{X: -0.5, Y: 0.8, Z: -7})},
	}}
	renderer := render.NewRenderer(320, 240)

	type cached struct {
		frame *imaging.RGB
		pose  render.Pose
	}

	// Result equality drives the threshold tuner: two renders count as
	// "the same result" when either frame warps to the other without
	// visible error, i.e. the poses are close ("no need to render a new
	// scene if it is visually indistinguishable from a previous one").
	const warpableRadius = 0.15
	cache := potluck.New(potluck.Config{
		Tuner: potluck.TunerConfig{WarmupZ: 12},
		Equal: func(a, b any) bool {
			ca, okA := a.(cached)
			cb, okB := b.(cached)
			if !okA || !okB {
				return false
			}
			return potluck.Euclidean.Distance(ca.pose.Key(), cb.pose.Key()) < warpableRadius
		},
	})
	if err := cache.RegisterFunction("render3d",
		potluck.KeyTypeSpec{Name: "pose", Index: potluck.IndexKDTree, Dim: 6}); err != nil {
		log.Fatal(err)
	}

	var renderTime, warpTime time.Duration
	renders, warps := 0, 0
	var lastFull, lastWarp *imaging.RGB
	for i := 0; i < 90; i++ {
		t := float64(i)
		pose := render.Pose{
			Yaw:   0.02 * t,
			Pitch: 0.03 * math.Sin(t*0.15),
		}
		key := pose.Key()
		res, err := cache.Lookup("render3d", "pose", key)
		if err != nil {
			log.Fatal(err)
		}
		if res.Hit {
			c := res.Value.(cached)
			start := time.Now()
			lastWarp = render.WarpToPose(c.frame, c.pose, pose, renderer.FOV)
			warpTime += time.Since(start)
			warps++
			continue
		}
		start := time.Now()
		frame := renderer.Render(scene, pose)
		renderTime += time.Since(start)
		renders++
		lastFull = frame
		if _, err := cache.Put("render3d", potluck.PutRequest{
			Keys:     map[string]potluck.Vector{"pose": key},
			Value:    cached{frame: frame, pose: pose},
			MissedAt: res.MissedAt,
			Size:     3 * 8 * frame.W * frame.H,
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("90 frames: %d full renders, %d warped reuses\n", renders, warps)
	if renders > 0 && warps > 0 {
		fmt.Printf("mean full render: %s, mean warp: %s (%.1fx faster)\n",
			(renderTime / time.Duration(renders)).Round(time.Microsecond),
			(warpTime / time.Duration(warps)).Round(time.Microsecond),
			float64(renderTime/time.Duration(renders))/float64(warpTime/time.Duration(warps)))
	}
	st, _ := cache.TunerStats("render3d", "pose")
	fmt.Printf("tuned pose threshold: %.4f rad\n", st.Threshold)

	for name, img := range map[string]*imaging.RGB{"full.ppm": lastFull, "warped.ppm": lastWarp} {
		if img == nil {
			continue
		}
		if err := imaging.SavePPM(name, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%dx%d)\n", name, img.W, img.H)
	}
}
