#!/bin/sh
# Run the repo's core benchmarks with allocation stats and record the
# result as a committed baseline, or compare a fresh run against it.
#
# Usage:
#   scripts/bench.sh [go-bench-regexp] [benchtime]          # record
#   scripts/bench.sh compare [go-bench-regexp] [benchtime]  # diff
#   scripts/bench.sh loadgen [single-rate] [batch-rate] [batch]  # serving
#   scripts/bench.sh recovery [benchtime]                   # durable boot
#   scripts/bench.sh mesh                                   # 1-vs-3 nodes
#   scripts/bench.sh indexsweep [max-entries]               # ANN scaling
#   scripts/bench.sh whatif [benchtime] [count]             # profiler
#
# Record mode defaults to the full suite at -benchtime=1s. Output lands
# in BENCH_core.json at the repo root: a JSON document wrapping the raw
# `go test -bench` text (benchmarks' native format survives untouched
# for benchstat) plus the environment needed to interpret it.
#
# Loadgen mode measures end-to-end serving with cmd/potluck-loadgen:
# an open-loop run at single-rate with single-op messages, then one at
# batch-rate (default 2x) with MultiLookup frames of the given batch
# size, each against a freshly started potluckd. Both reports are
# spliced into BENCH_core.json under a "loadgen" key (run record mode
# first), and the mode exits nonzero unless the batched run sustains
# its offered rate within the SLO — the batching win the protocol is
# supposed to buy.
#
# Mesh mode runs the 3-node cluster experiment (internal/experiments
# "mesh"): capacity-bounded nodes, the same recurring workload against
# one isolated node and against a 3-node rendezvous mesh at K=1 and
# K=2. The hit-rate curve is spliced into BENCH_core.json under a
# "mesh" key (run record mode first), and the mode exits nonzero
# unless both mesh topologies beat the single node — the pooling win
# the cluster subsystem is supposed to buy.
#
# Indexsweep mode runs the table2scale experiment (internal/experiments):
# every index kind measured across entry counts up to max-entries
# (default the full 10^6 sweep; pass 1000 for a CI smoke). The full
# table plus the gate figures are spliced into BENCH_core.json under an
# "indexsweep" key (run record mode first), and the mode exits nonzero
# unless, at the largest scale each kind was measured at, HNSW and IVF
# both probe at least 5x fewer entries than the linear scan while
# keeping recall@1 >= 0.95 — the sub-linear win those kinds are
# supposed to buy (ISSUE 9 / ROADMAP item 3).
#
# Whatif mode measures what attaching the online counterfactual
# profiler costs and whether its answers are right. It runs
# BenchmarkWhatIfOverhead count times (default 5) and gates on the
# median of the "paired" series' overhead-% metric (tapped and
# untapped batches interleaved in-process, immune to machine-speed
# drift): attaching at the default rate must cost <= 5%. It then runs the
# "whatif" experiment (internal/experiments), which replays a trace
# with the profiler attached and re-runs it at each ghost capacity for
# ground truth — the experiment itself exits nonzero if any ghost
# estimate is off by more than 3 hit-rate points or the Che prediction
# diverges beyond tolerance. Both results are spliced into
# BENCH_core.json under a "whatif" key (run record mode first).
#
# Recovery mode times the durable store's boot path (open + replay +
# restore, internal/store BenchmarkRecovery) and splices the measured
# per-boot nanoseconds into BENCH_core.json under a "recovery" key (run
# record mode first). The steady-state write-path overhead of the store
# is covered by the regular record/compare gate via BenchmarkDurablePut.
#
# Compare mode reruns the benchmarks and diffs ns/op per benchmark
# against the committed BENCH_core.json, printing a table and exiting
# nonzero if any benchmark regressed by more than 10%. Run it before
# merging a change that touches the lookup, put, or key-generation
# paths — the telemetry subsystem's <=5% overhead budget (DESIGN.md,
# "Observability") is likewise enforced by comparing the telemetry-
# on/telemetry-off variants of BenchmarkLookupParallel here. Note the
# committed baseline was recorded on one specific machine: across
# hosts the comparison tracks shape, not absolute truth, so re-record
# (and commit) a baseline from your own machine before relying on the
# 10% gate.
set -eu

cd "$(dirname "$0")/.."

mode=record
if [ "${1:-}" = "compare" ]; then
	mode=compare
	shift
elif [ "${1:-}" = "loadgen" ]; then
	mode=loadgen
	shift
elif [ "${1:-}" = "recovery" ]; then
	mode=recovery
	shift
elif [ "${1:-}" = "mesh" ]; then
	mode=mesh
	shift
elif [ "${1:-}" = "indexsweep" ]; then
	mode=indexsweep
	shift
elif [ "${1:-}" = "whatif" ]; then
	mode=whatif
	shift
fi

if [ "$mode" = "whatif" ]; then
	benchtime="${1:-1s}"
	count="${2:-5}"
	out="BENCH_core.json"
	tmp="$(mktemp)"
	exptmp="$(mktemp)"
	trap 'rm -f "$tmp" "$exptmp" "$tmp.spliced"' EXIT

	# The gate reads the "paired" series: it interleaves tapped and
	# untapped batches inside one process, so machine-speed drift on
	# shared hosts cancels at batch granularity (whole-series medians
	# of the standalone modes are recorded for reference but swing by
	# ±10% run to run on busy hosts). No -cpu override: the benchmark
	# runs at the machine's native GOMAXPROCS (oversubscribing workers
	# past the core count drowns the few-percent signal in scheduler
	# churn).
	echo "running: go test -run ^\$ -bench BenchmarkWhatIfOverhead -benchtime $benchtime -count $count ." >&2
	go test -run '^$' -bench BenchmarkWhatIfOverhead -benchtime "$benchtime" -count "$count" . | tee "$tmp" >&2

	eval "$(awk '
		function median(a, n,   i, j, t) {
			for (i = 2; i <= n; i++) { t = a[i]; j = i - 1
				while (j >= 1 && a[j] > t) { a[j+1] = a[j]; j-- }
				a[j+1] = t }
			return (n % 2) ? a[(n+1)/2] : (a[n/2] + a[n/2+1]) / 2
		}
		$4 == "ns/op" && $1 ~ /^BenchmarkWhatIfOverhead\/detached(-[0-9]+)?$/ { det[++nd] = $3 }
		$4 == "ns/op" && $1 ~ /^BenchmarkWhatIfOverhead\/attached(-[0-9]+)?$/ { att[++na] = $3 }
		$4 == "ns/op" && $1 ~ /^BenchmarkWhatIfOverhead\/attached-full(-[0-9]+)?$/ { full[++nf] = $3 }
		$1 ~ /^BenchmarkWhatIfOverhead\/paired(-[0-9]+)?$/ {
			for (i = 3; i < NF; i++) {
				if ($(i+1) == "overhead-%") ovh[++no] = $i
			}
		}
		END {
			printf "det_ns=%.0f att_ns=%.0f full_ns=%.0f overhead_med=%.1f nov=%d\n", \
				median(det, nd), median(att, na), median(full, nf), median(ovh, no), no
		}
	' "$tmp")"
	if [ "${det_ns:-0}" = 0 ] || [ "${att_ns:-0}" = 0 ] || [ "${nov:-0}" = 0 ]; then
		echo "bench.sh: BenchmarkWhatIfOverhead produced no ns/op or overhead-% lines" >&2
		exit 1
	fi
	overhead="$overhead_med"

	echo "running: go run ./cmd/potluck-experiments whatif" >&2
	if ! go run ./cmd/potluck-experiments whatif | tee "$exptmp" >&2; then
		echo "bench.sh: whatif experiment failed its accuracy gates" >&2
		exit 1
	fi
	worst_pts=$(awk '/worst ghost error/ { print $(NF-1) }' "$exptmp")
	divergence=$(awk '/Che prediction/ { v = $8; gsub(",", "", v); print v }' "$exptmp")
	if [ -z "$worst_pts" ] || [ -z "$divergence" ]; then
		echo "bench.sh: whatif experiment output missing gate figures" >&2
		exit 1
	fi

	if [ -f "$out" ]; then
		# Splice a "whatif" object into the baseline, same discipline as
		# the mesh/recovery keys: replace in place, else insert after the
		# bench "output" array (inert to compare mode).
		if grep -q '^  "whatif": {$' "$out"; then
			replace=1
		else
			replace=0
		fi
		awk -v replace="$replace" -v benchtime="$benchtime" -v count="$count" \
			-v det="$det_ns" -v att="$att_ns" -v full="$full_ns" -v ovh="$overhead" \
			-v pts="$worst_pts" -v div="$divergence" \
			-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
			function body() {
				print "  \"whatif\": {"
				printf "    \"date\": \"%s\",\n", date
				printf "    \"benchtime\": \"%s\",\n", benchtime
				printf "    \"count\": %s,\n", count
				printf "    \"detached_ns_op\": %s,\n", det
				printf "    \"attached_ns_op\": %s,\n", att
				printf "    \"attached_full_rate_ns_op\": %s,\n", full
				printf "    \"attached_overhead_pct\": %s,\n", ovh
				printf "    \"worst_ghost_error_pts\": %s,\n", pts
				printf "    \"che_divergence\": %s\n", div
			}
			replace && /^  "whatif": \{$/ { body(); skip = 1; next }
			skip && /^  \},?$/ { print; skip = 0; next }
			skip { next }
			!replace && !done && /^  \],?$/ {
				comma = ($0 ~ /,$/) ? "," : ""
				print "  ],"
				body()
				print "  }" comma
				done = 1
				next
			}
			{ print }
		' "$out" > "$tmp.spliced" && mv "$tmp.spliced" "$out"
		echo "updated $out (whatif section: ${overhead}% attached overhead, ${worst_pts} pts worst ghost error)" >&2
	else
		echo "bench.sh: no $out baseline; whatif numbers not recorded (run scripts/bench.sh first)" >&2
	fi

	# The gate: tapping at the default sample rate must cost <= 5%,
	# judged on the median of the paired series' overhead-% metric.
	awk -v ovh="$overhead" -v n="$nov" -v d="$det_ns" -v a="$att_ns" 'BEGIN {
		if (ovh + 0 <= 5.0) {
			printf "bench.sh: whatif attached overhead %s%% within the 5%% budget (median of %d paired runs; standalone medians %s / %s ns/op)\n", ovh, n, d, a
			exit 0
		}
		printf "bench.sh: whatif attached overhead %s%% exceeds the 5%% budget (median of %d paired runs; standalone medians %s / %s ns/op)\n", ovh, n, d, a
		exit 1
	}'
	exit $?
fi

if [ "$mode" = "indexsweep" ]; then
	max="${1:-1000000}"
	out="BENCH_core.json"
	tmp="$(mktemp)"
	trap 'rm -f "$tmp" "$tmp.spliced"' EXIT

	echo "running: POTLUCK_SWEEP_MAX=$max go run ./cmd/potluck-experiments table2scale" >&2
	POTLUCK_SWEEP_MAX="$max" go run ./cmd/potluck-experiments table2scale | tee "$tmp" >&2

	# Per kind, keep the largest scale it was measured at (rows are
	# "entries kind us/query probes recall keyB build"; skipped scales
	# hold "-"). The linear row at each scale is the probe yardstick.
	eval "$(awk '
		$1 ~ /^[0-9]+$/ && $3 != "-" {
			n = $1 + 0
			if ($2 == "linear") lin[n] = $4
			if (n > top[$2]) { top[$2] = n; probes[$2] = $4; recall[$2] = $5 }
		}
		END {
			printf "hnsw_n=%d hnsw_probes=%s hnsw_recall=%s hnsw_lin=%s\n", \
				top["hnsw"], probes["hnsw"], recall["hnsw"], lin[top["hnsw"]]
			printf "ivf_n=%d ivf_probes=%s ivf_recall=%s ivf_lin=%s\n", \
				top["ivf"], probes["ivf"], recall["ivf"], lin[top["ivf"]]
		}
	' "$tmp")"
	if [ "${hnsw_n:-0}" = 0 ] || [ "${ivf_n:-0}" = 0 ]; then
		echo "bench.sh: table2scale produced no hnsw/ivf rows" >&2
		exit 1
	fi

	if [ -f "$out" ]; then
		# Splice an "indexsweep" object into the baseline, same
		# discipline as the mesh/recovery keys: replace in place, else
		# insert after the bench "output" array (inert to compare mode).
		if grep -q '^  "indexsweep": {$' "$out"; then
			replace=1
		else
			replace=0
		fi
		awk -v replace="$replace" -v max="$max" \
			-v hn="$hnsw_n" -v hp="$hnsw_probes" -v hr="$hnsw_recall" -v hl="$hnsw_lin" \
			-v in_="$ivf_n" -v ip="$ivf_probes" -v ir="$ivf_recall" -v il="$ivf_lin" \
			-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
			function body() {
				print "  \"indexsweep\": {"
				printf "    \"date\": \"%s\",\n", date
				printf "    \"max_entries\": %s,\n", max
				printf "    \"hnsw\": {\"entries\": %s, \"probes\": %s, \"recall\": %s, \"linear_probes\": %s},\n", hn, hp, hr, hl
				printf "    \"ivf\": {\"entries\": %s, \"probes\": %s, \"recall\": %s, \"linear_probes\": %s}\n", in_, ip, ir, il
			}
			replace && /^  "indexsweep": \{$/ { body(); skip = 1; next }
			skip && /^  \},?$/ { print; skip = 0; next }
			skip { next }
			!replace && !done && /^  \],?$/ {
				comma = ($0 ~ /,$/) ? "," : ""
				print "  ],"
				body()
				print "  }" comma
				done = 1
				next
			}
			{ print }
		' "$out" > "$tmp.spliced" && mv "$tmp.spliced" "$out"
		echo "updated $out (indexsweep section: ivf $ivf_probes vs linear $ivf_lin probes at $ivf_n)" >&2
	else
		echo "bench.sh: no $out baseline; sweep not recorded (run scripts/bench.sh first)" >&2
	fi

	# The gate: both sub-linear kinds must probe >=5x less than the
	# linear scan at their largest measured scale, at recall >= 0.95.
	# The probe ratio only has to hold from 10^5 up (small caches are
	# where approximate search hasn't paid for itself yet — the CI smoke
	# at 10^3 checks recall and that the sweep runs, nothing more).
	awk -v hn="$hnsw_n" -v hp="$hnsw_probes" -v hr="$hnsw_recall" -v hl="$hnsw_lin" \
		-v in_="$ivf_n" -v ip="$ivf_probes" -v ir="$ivf_recall" -v il="$ivf_lin" 'BEGIN {
		ok = 1
		if (hn + 0 >= 100000 && hp * 5 > hl) { printf "bench.sh: hnsw probes %s not 5x under linear %s at %s entries\n", hp, hl, hn; ok = 0 }
		if (hr + 0 < 0.95) { printf "bench.sh: hnsw recall %s below 0.95\n", hr; ok = 0 }
		if (in_ + 0 >= 100000 && ip * 5 > il) { printf "bench.sh: ivf probes %s not 5x under linear %s at %s entries\n", ip, il, in_; ok = 0 }
		if (ir + 0 < 0.95) { printf "bench.sh: ivf recall %s below 0.95\n", ir; ok = 0 }
		if (hn + 0 < 100000 && in_ + 0 < 100000) printf "bench.sh: sweep below 10^5 entries; probe-ratio gate skipped\n"
		if (ok) {
			printf "bench.sh: sub-linear gate holds (hnsw %s, ivf %s vs linear %s/%s probes; recall %s/%s)\n", hp, ip, hl, il, hr, ir
			exit 0
		}
		exit 1
	}'
	exit $?
fi

if [ "$mode" = "mesh" ]; then
	out="BENCH_core.json"
	tmp="$(mktemp)"
	trap 'rm -f "$tmp" "$tmp.spliced"' EXIT

	echo "running: go run ./cmd/potluck-experiments mesh" >&2
	go run ./cmd/potluck-experiments mesh | tee "$tmp" >&2

	# Hit rates sit third-from-last on each topology row (rate,
	# predicted, peer reuses).
	single=$(awk '/^1 node/ { print $(NF-2) }' "$tmp")
	k1=$(awk '/^3-node mesh, K=1/ { print $(NF-2) }' "$tmp")
	k2=$(awk '/^3-node mesh, K=2/ { print $(NF-2) }' "$tmp")
	if [ -z "$single" ] || [ -z "$k1" ] || [ -z "$k2" ]; then
		echo "bench.sh: mesh experiment produced no hit-rate rows" >&2
		exit 1
	fi

	if [ -f "$out" ]; then
		# Splice a "mesh" object into the baseline, same discipline as
		# the recovery key: replace in place, else insert after the
		# bench "output" array (inert to compare mode's line recovery).
		if grep -q '^  "mesh": {$' "$out"; then
			replace=1
		else
			replace=0
		fi
		awk -v single="$single" -v k1="$k1" -v k2="$k2" -v replace="$replace" \
			-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
			function body() {
				print "  \"mesh\": {"
				printf "    \"date\": \"%s\",\n", date
				printf "    \"hit_rate_1_node\": %s,\n", single
				printf "    \"hit_rate_3_node_k1\": %s,\n", k1
				printf "    \"hit_rate_3_node_k2\": %s\n", k2
			}
			replace && /^  "mesh": \{$/ { body(); skip = 1; next }
			skip && /^  \},?$/ { print; skip = 0; next }
			skip { next }
			!replace && !done && /^  \],?$/ {
				comma = ($0 ~ /,$/) ? "," : ""
				print "  ],"
				body()
				print "  }" comma
				done = 1
				next
			}
			{ print }
		' "$out" > "$tmp.spliced" && mv "$tmp.spliced" "$out"
		echo "updated $out (mesh section: $single -> $k1 (K=1) / $k2 (K=2))" >&2
	else
		echo "bench.sh: no $out baseline; mesh curve not recorded (run scripts/bench.sh first)" >&2
	fi

	# The gate: pooled capacity must strictly beat the isolated node.
	awk -v single="$single" -v k1="$k1" -v k2="$k2" 'BEGIN {
		if (k1 + 0 > single + 0 && k2 + 0 > single + 0) {
			printf "bench.sh: mesh lifts hit rate %s -> %s (K=1), %s (K=2)\n", single, k1, k2
			exit 0
		}
		printf "bench.sh: mesh hit rate not above single node (%s vs %s/%s)\n", single, k1, k2
		exit 1
	}'
	exit $?
fi

if [ "$mode" = "recovery" ]; then
	benchtime="${1:-10x}"
	out="BENCH_core.json"
	tmp="$(mktemp)"
	trap 'rm -f "$tmp"' EXIT

	echo "running: go test -run ^\$ -bench BenchmarkRecovery -benchtime $benchtime ./internal/store" >&2
	go test -run '^$' -bench BenchmarkRecovery -benchtime "$benchtime" ./internal/store | tee "$tmp" >&2

	# No "-N" suffix when GOMAXPROCS is 1, hence the (-|$).
	ns1k=$(awk '$1 ~ /^BenchmarkRecovery\/entries-1000(-[0-9]+)?$/ && $4 == "ns/op" { print $3 }' "$tmp")
	ns10k=$(awk '$1 ~ /^BenchmarkRecovery\/entries-10000(-[0-9]+)?$/ && $4 == "ns/op" { print $3 }' "$tmp")
	if [ -z "$ns10k" ]; then
		echo "bench.sh: BenchmarkRecovery produced no ns/op line" >&2
		exit 1
	fi

	if [ -f "$out" ]; then
		# Splice a "recovery" object into the baseline: replace an
		# existing one in place (keeping its trailing comma, so the keys
		# after it stay attached), else insert right after the bench
		# "output" array. Compare mode's line recovery only reads the
		# array, so the extra key is inert.
		if grep -q '^  "recovery": {$' "$out"; then
			replace=1
		else
			replace=0
		fi
		awk -v ns1k="${ns1k:-0}" -v ns10k="$ns10k" -v replace="$replace" \
			-v benchtime="$benchtime" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
			function body() {
				print "  \"recovery\": {"
				printf "    \"date\": \"%s\",\n", date
				printf "    \"benchtime\": \"%s\",\n", benchtime
				printf "    \"boot_ns_1000_entries\": %s,\n", ns1k
				printf "    \"boot_ns_10000_entries\": %s\n", ns10k
			}
			replace && /^  "recovery": \{$/ { body(); skip = 1; next }
			skip && /^  \},?$/ { print; skip = 0; next }
			skip { next }
			!replace && !done && /^  \],?$/ {
				comma = ($0 ~ /,$/) ? "," : ""
				print "  ],"
				body()
				print "  }" comma
				done = 1
				next
			}
			{ print }
		' "$out" > "$tmp.spliced" && mv "$tmp.spliced" "$out"
		echo "updated $out (recovery section: ${ns10k} ns/boot at 10k entries)" >&2
	else
		echo "bench.sh: no $out baseline; recovery numbers not recorded (run scripts/bench.sh first)" >&2
	fi
	exit 0
fi

if [ "$mode" = "loadgen" ]; then
	single_rate="${1:-14000}"
	batch_rate="${2:-28000}"
	batch="${3:-16}"
	out="BENCH_core.json"
	work="$(mktemp -d)"
	trap 'rm -rf "$work"; kill $daemon 2>/dev/null || true' EXIT
	daemon=

	go build -o "$work/potluckd" ./cmd/potluckd
	go build -o "$work/loadgen" ./cmd/potluck-loadgen

	# One fresh daemon per run: entries a run seeds or puts must not
	# inflate lookup costs for the next one.
	serve_one() { # rate batch report
		rm -f "$work/p.sock"
		"$work/potluckd" -addr "$work/p.sock" >"$work/potluckd.log" 2>&1 &
		daemon=$!
		i=0
		while [ ! -S "$work/p.sock" ] && [ $i -lt 50 ]; do sleep 0.1; i=$((i + 1)); done
		echo "loadgen: batch=$2 offered=$1 ops/s" >&2
		"$work/loadgen" -addr "$work/p.sock" -rate "$1" -batch "$2" \
			-duration 5s -warmup 1s -keys 8 -put-ratio 0 -slo 150ms >"$3"
		status=$?
		kill "$daemon" 2>/dev/null || true
		wait "$daemon" 2>/dev/null || true
		daemon=
		grep -E '"throughput_ops_per_sec"|"p99"|"slo_met"' "$3" >&2
		return $status
	}

	serve_one "$single_rate" 1 "$work/single.json" || true
	if serve_one "$batch_rate" "$batch" "$work/batch.json"; then
		batch_ok=0
	else
		batch_ok=1
	fi

	if [ -f "$out" ]; then
		# Splice the two reports into the committed baseline under a
		# "loadgen" key (replacing any previous one), after the bench
		# "output" array so compare mode's line recovery is untouched.
		awk -v single="$work/single.json" -v batchf="$work/batch.json" '
			/^  "loadgen": \{$/ { skip = 1; next }
			skip && /^  \},?$/ { skip = 0; next }
			skip { next }
			!done && /^  \],?$/ {
				# Carry the comma: keys spliced by the other modes may
				# already follow the output array.
				comma = ($0 ~ /,$/) ? "," : ""
				print "  ],"
				print "  \"loadgen\": {"
				print "    \"single\":"
				while ((getline line < single) > 0) print "    " line
				print "    ,"
				print "    \"batch\":"
				while ((getline line < batchf) > 0) print "    " line
				print "  }" comma
				done = 1
				next
			}
			{ print }
		' "$out" > "$work/spliced" && mv "$work/spliced" "$out"
		echo "updated $out (loadgen section)" >&2
	else
		echo "bench.sh: no $out baseline; loadgen reports not recorded (run scripts/bench.sh first)" >&2
	fi
	if [ "$batch_ok" -ne 0 ]; then
		echo "bench.sh: batched run missed its rate or SLO" >&2
		exit 1
	fi
	exit 0
fi

pattern="${1:-.}"
benchtime="${2:-1s}"
out="BENCH_core.json"
tmp="$(mktemp)"
base="$(mktemp)"
trap 'rm -f "$tmp" "$base"' EXIT

echo "running: go test -run ^\$ -bench $pattern -benchtime $benchtime -benchmem ." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp" >&2

tab="$(printf '\t')"

if [ "$mode" = "compare" ]; then
	if [ ! -f "$out" ]; then
		echo "bench.sh: no $out baseline to compare against (run scripts/bench.sh first)" >&2
		exit 2
	fi
	# Recover the raw bench text from the JSON wrapper: take the quoted
	# array lines and undo the tab/quote/backslash escapes.
	sed -n 's/^    "\(.*\)",\{0,1\}$/\1/p' "$out" |
		sed "s/\\\\t/$tab/g; s/\\\\\"/\"/g; s/\\\\\\\\/\\\\/g" > "$base"
	echo >&2
	echo "comparing ns/op against $out ($(sed -n 's/^  "date": "\(.*\)",$/\1/p' "$out")):" >&2
	awk -v thresh=10 '
		FNR == NR {
			if ($1 ~ /^Benchmark/ && $4 == "ns/op") base[$1] = $3
			next
		}
		$1 ~ /^Benchmark/ && $4 == "ns/op" {
			if (!($1 in base)) {
				printf "  new        %-44s %14.0f ns/op\n", $1, $3
				next
			}
			b = base[$1]; n = $3; seen[$1] = 1
			pct = (b > 0) ? (n - b) / b * 100 : 0
			mark = "ok        "
			if (pct > thresh) { mark = "REGRESSED "; bad++ }
			else if (pct < -thresh) mark = "improved  "
			printf "  %s %-44s %14.0f -> %12.0f ns/op  (%+6.1f%%)\n", mark, $1, b, n, pct
		}
		END {
			for (name in base) if (!(name in seen) && name !~ /^#/) missing++
			if (missing) printf "  (%d baseline benchmark(s) not exercised by pattern)\n", missing
			if (bad) {
				printf "bench.sh: %d benchmark(s) regressed by more than %d%%\n", bad, thresh
				exit 1
			}
			print "bench.sh: no regressions beyond " thresh "%"
		}
	' "$base" "$tmp"
	exit $?
fi

# Spliced sections (whatif/loadgen/mesh/indexsweep/recovery) are
# produced by their own — expensive — modes; carry them across a
# re-record so refreshing the bench baseline does not destroy them.
# They sit between the "output" array's closing "  ]," and the final
# "}" (two-space indent is unique to top level).
splices=""
if [ -f "$out" ]; then
	splices=$(awk '/^  \],?$/ { seen = 1; next } seen { print }' "$out" | sed '$d')
fi

# Wrap the raw text in JSON. Go bench output needs backslash, quote,
# and tab escapes (columns are tab-separated); decoding the lines and
# joining with newlines restores benchstat-ready text exactly.
{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "output": ['
	first=1
	while IFS= read -r line; do
		esc=$(printf '%s' "$line" | sed "s/\\\\/\\\\\\\\/g; s/\"/\\\\\"/g; s/$tab/\\\\t/g")
		if [ "$first" = 1 ]; then first=0; else printf ','; fi
		printf '\n    "%s"' "$esc"
	done < "$tmp"
	if [ -n "$splices" ]; then
		printf '\n  ],\n'
		printf '%s\n' "$splices"
	else
		printf '\n  ]\n'
	fi
	printf '}\n'
} > "$out"

echo "wrote $out" >&2
