#!/bin/sh
# Run the repo's core benchmarks with allocation stats and record the
# result as a committed baseline.
#
# Usage:
#   scripts/bench.sh [go-bench-regexp] [benchtime]
#
# Defaults to the full suite at -benchtime=1s. Output lands in
# BENCH_core.json at the repo root: a JSON document wrapping the raw
# `go test -bench` text (benchmarks' native format survives untouched
# for benchstat) plus the environment needed to interpret it. Compare
# against the committed baseline before merging a change that touches
# the lookup or put path — the telemetry subsystem's <=5% overhead
# budget (DESIGN.md, "Observability") is enforced by eyeballing the
# telemetry-on/telemetry-off variants of BenchmarkLookupParallel here.
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${2:-1s}"
out="BENCH_core.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running: go test -run ^\$ -bench $pattern -benchtime $benchtime -benchmem ." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp" >&2

# Wrap the raw text in JSON. Go bench output needs backslash, quote,
# and tab escapes (columns are tab-separated); decoding the lines and
# joining with newlines restores benchstat-ready text exactly.
tab="$(printf '\t')"
{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "pattern": "%s",\n' "$pattern"
	printf '  "output": ['
	first=1
	while IFS= read -r line; do
		esc=$(printf '%s' "$line" | sed "s/\\\\/\\\\\\\\/g; s/\"/\\\\\"/g; s/$tab/\\\\t/g")
		if [ "$first" = 1 ]; then first=0; else printf ','; fi
		printf '\n    "%s"' "$esc"
	done < "$tmp"
	printf '\n  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out" >&2
