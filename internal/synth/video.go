package synth

import (
	"math"
	"math/rand"

	"repro/internal/imaging"
)

// VideoConfig parameterizes a correlated video feed.
type VideoConfig struct {
	// W, H are the frame dimensions (defaults 160×120).
	W, H int
	// Seed makes the feed deterministic.
	Seed int64
	// PanPerFrame is the camera translation per frame in scene pixels
	// (default 2). Successive frames are "slightly distorted versions of
	// one another by some translation and/or scaling factor" (§2.2).
	PanPerFrame float64
	// ZoomPerFrame is the multiplicative zoom drift per frame
	// (default 1.002).
	ZoomPerFrame float64
	// Noise is the per-frame sensor noise sigma (default 0.01).
	Noise float64
	// CutEvery switches to a completely new scene every CutEvery frames
	// (0 = never): the paper's "the scene rarely changes completely
	// within a short interval" — except at cuts.
	CutEvery int
	// Objects is the number of foreground shapes per scene (default 6).
	Objects int
}

func (c VideoConfig) withDefaults() VideoConfig {
	if c.W <= 0 {
		c.W = 160
	}
	if c.H <= 0 {
		c.H = 120
	}
	if c.PanPerFrame == 0 {
		c.PanPerFrame = 2
	}
	if c.ZoomPerFrame == 0 {
		c.ZoomPerFrame = 1.002
	}
	if c.Noise == 0 {
		c.Noise = 0.01
	}
	if c.Objects <= 0 {
		c.Objects = 6
	}
	return c
}

// Video is a deterministic synthetic camera feed: a virtual camera pans
// and zooms over a static procedural scene, with occasional hard cuts.
// Frame(i) is pure — the same index always yields the same frame — so
// experiments can sample frames in any order ("different applications
// simply take a subset of the frames as needed", §2.2).
type Video struct {
	cfg    VideoConfig
	scenes map[int]*imaging.RGB // lazily built per cut segment
}

// NewVideo returns a feed for the given configuration.
func NewVideo(cfg VideoConfig) *Video {
	return &Video{cfg: cfg.withDefaults(), scenes: make(map[int]*imaging.RGB)}
}

// sceneIndex maps a frame to its cut segment.
func (v *Video) sceneIndex(frame int) int {
	if v.cfg.CutEvery <= 0 {
		return 0
	}
	return frame / v.cfg.CutEvery
}

// scene lazily renders the static scene for a cut segment. Scenes are
// 3× the frame size so the camera can roam.
func (v *Video) scene(si int) *imaging.RGB {
	if s, ok := v.scenes[si]; ok {
		return s
	}
	rng := rand.New(rand.NewSource(v.cfg.Seed ^ int64(si)*999983))
	w, h := v.cfg.W*3, v.cfg.H*3
	m := imaging.NewRGB(w, h)
	// Sky-over-ground backdrop.
	skyHue := 0.55 + 0.1*rng.Float64()
	r0, g0, b0 := hsv(skyHue, 0.5, 0.9)
	r1, g1, b1 := hsv(skyHue, 0.3, 0.6)
	verticalGradient(m, r0, g0, b0, r1, g1, b1)
	gr, gg, gb := hsv(0.25+0.1*rng.Float64(), 0.5, 0.45)
	fillRect(m, 0, h*2/3, w, h, gr, gg, gb)
	// Surface texture: smooth value noise so the scene has the pixel-level
	// richness of real footage. Without it, raw-pixel distance between
	// shifted frames is unrealistically small (real camera frames
	// decorrelate quickly under panning, which is what Figure 2's "raw
	// input" curve shows).
	applyTexture(m, rng, 0.25, 12)
	// Foreground objects.
	for i := 0; i < v.cfg.Objects; i++ {
		cr, cg, cb := hsv(rng.Float64(), 0.7, 0.8)
		cx := rng.Float64() * float64(w)
		cy := float64(h)*0.4 + rng.Float64()*float64(h)*0.5
		size := float64(h) * (0.05 + 0.1*rng.Float64())
		switch i % 4 {
		case 0:
			fillCircle(m, cx, cy, size, cr, cg, cb)
		case 1:
			fillRect(m, int(cx-size), int(cy-size*1.6), int(cx+size), int(cy+size*1.6), cr, cg, cb)
		case 2:
			fillTriangle(m, cx, int(cy-size*1.4), int(cy+size), size*1.2, cr, cg, cb)
		case 3:
			drawRing(m, cx, cy, size*0.5, size, cr, cg, cb)
		}
	}
	v.scenes[si] = m
	return m
}

// Frame renders frame i of the feed.
func (v *Video) Frame(i int) *imaging.RGB {
	if i < 0 {
		i = 0
	}
	si := v.sceneIndex(i)
	local := i
	if v.cfg.CutEvery > 0 {
		local = i % v.cfg.CutEvery
	}
	scene := v.scene(si)
	// Camera path: diagonal pan with sinusoidal sway plus zoom drift.
	t := float64(local)
	zoom := math.Pow(v.cfg.ZoomPerFrame, t)
	cw := float64(v.cfg.W) / zoom
	ch := float64(v.cfg.H) / zoom
	maxX := float64(scene.W) - cw - 1
	maxY := float64(scene.H) - ch - 1
	x := math.Mod(t*v.cfg.PanPerFrame, maxX)
	if x < 0 {
		x = 0
	}
	// Vertical sway scales with the pan speed so slow cameras are
	// genuinely slow in both axes.
	y := maxY*0.2 + math.Sin(t*0.12)*v.cfg.PanPerFrame*2
	if y < 0 {
		y = 0
	}
	if y > maxY {
		y = maxY
	}
	// Crop + resize = translation & scaling distortion between frames.
	frame := cropResize(scene, x, y, cw, ch, v.cfg.W, v.cfg.H)
	if v.cfg.Noise > 0 {
		rng := rand.New(rand.NewSource(v.cfg.Seed ^ int64(i)*131071 + 17))
		frame = imaging.AddNoiseRGB(frame, v.cfg.Noise, rng)
	}
	return frame
}

// Frames renders frames [0, n).
func (v *Video) Frames(n int) []*imaging.RGB {
	out := make([]*imaging.RGB, n)
	for i := range out {
		out[i] = v.Frame(i)
	}
	return out
}

// applyTexture multiplies the image by smooth value noise: random gains
// on a coarse grid (one knot per `cell` pixels), bilinearly interpolated.
func applyTexture(m *imaging.RGB, rng *rand.Rand, amplitude float64, cell int) {
	gw := m.W/cell + 2
	gh := m.H/cell + 2
	knots := make([]float64, gw*gh)
	for i := range knots {
		knots[i] = 1 + (rng.Float64()*2-1)*amplitude
	}
	for y := 0; y < m.H; y++ {
		fy := float64(y) / float64(cell)
		y0 := int(fy)
		dy := fy - float64(y0)
		for x := 0; x < m.W; x++ {
			fx := float64(x) / float64(cell)
			x0 := int(fx)
			dx := fx - float64(x0)
			g := knots[y0*gw+x0]*(1-dx)*(1-dy) +
				knots[y0*gw+x0+1]*dx*(1-dy) +
				knots[(y0+1)*gw+x0]*(1-dx)*dy +
				knots[(y0+1)*gw+x0+1]*dx*dy
			i := 3 * (y*m.W + x)
			m.Pix[i] = imaging.Clamp01(m.Pix[i] * g)
			m.Pix[i+1] = imaging.Clamp01(m.Pix[i+1] * g)
			m.Pix[i+2] = imaging.Clamp01(m.Pix[i+2] * g)
		}
	}
}

// cropResize samples the rectangle (x, y, w, h) of src into a dw×dh
// frame with bilinear interpolation.
func cropResize(src *imaging.RGB, x, y, w, h float64, dw, dh int) *imaging.RGB {
	out := imaging.NewRGB(dw, dh)
	for oy := 0; oy < dh; oy++ {
		for ox := 0; ox < dw; ox++ {
			sx := x + (float64(ox)+0.5)/float64(dw)*w - 0.5
			sy := y + (float64(oy)+0.5)/float64(dh)*h - 0.5
			x0, y0 := int(math.Floor(sx)), int(math.Floor(sy))
			fx, fy := sx-float64(x0), sy-float64(y0)
			r00, g00, b00 := src.At(x0, y0)
			r10, g10, b10 := src.At(x0+1, y0)
			r01, g01, b01 := src.At(x0, y0+1)
			r11, g11, b11 := src.At(x0+1, y0+1)
			out.Set(ox, oy,
				r00*(1-fx)*(1-fy)+r10*fx*(1-fy)+r01*(1-fx)*fy+r11*fx*fy,
				g00*(1-fx)*(1-fy)+g10*fx*(1-fy)+g01*(1-fx)*fy+g11*fx*fy,
				b00*(1-fx)*(1-fy)+b10*fx*(1-fy)+b01*(1-fx)*fy+b11*fx*fy)
		}
	}
	return out
}
