// Package synth generates the synthetic datasets that stand in for the
// paper's evaluation data: a CIFAR-10-like set of 10 labelled RGB image
// classes (32×32), an MNIST-like set of handwritten-digit-style
// grayscale classes (28×28), and temporally correlated video feeds like
// the HEVC segment behind Figure 2. Intra-class images are similar but
// not identical — jittered geometry, lighting shifts, background
// changes, sensor noise — which is precisely the input structure the
// paper's deduplication exploits (§2.2). Ground-truth labels are known
// by construction.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/imaging"
)

// fillRect draws an axis-aligned rectangle.
func fillRect(m *imaging.RGB, x0, y0, x1, y1 int, r, g, b float64) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y, r, g, b)
		}
	}
}

// fillCircle draws a filled disc centred at (cx, cy).
func fillCircle(m *imaging.RGB, cx, cy, radius float64, r, g, b float64) {
	x0 := int(cx - radius - 1)
	x1 := int(cx + radius + 1)
	y0 := int(cy - radius - 1)
	y1 := int(cy + radius + 1)
	r2 := radius * radius
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			if dx*dx+dy*dy <= r2 {
				m.Set(x, y, r, g, b)
			}
		}
	}
}

// fillTriangle draws a filled upward triangle with apex (cx, cy0) and
// base at y1.
func fillTriangle(m *imaging.RGB, cx float64, y0, y1 int, halfBase float64, r, g, b float64) {
	h := float64(y1 - y0)
	if h <= 0 {
		return
	}
	for y := y0; y <= y1; y++ {
		t := float64(y-y0) / h
		half := t * halfBase
		for x := int(cx - half); x <= int(cx+half); x++ {
			m.Set(x, y, r, g, b)
		}
	}
}

// drawStripes overlays diagonal stripes of the given period and angle.
func drawStripes(m *imaging.RGB, period float64, angle float64, r, g, b float64) {
	s, c := math.Sin(angle), math.Cos(angle)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			d := c*float64(x) + s*float64(y)
			if math.Mod(d, period) < period/2 {
				m.Set(x, y, r, g, b)
			}
		}
	}
}

// drawRing draws an annulus.
func drawRing(m *imaging.RGB, cx, cy, inner, outer float64, r, g, b float64) {
	x0 := int(cx - outer - 1)
	x1 := int(cx + outer + 1)
	y0 := int(cy - outer - 1)
	y1 := int(cy + outer + 1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			d2 := dx*dx + dy*dy
			if d2 >= inner*inner && d2 <= outer*outer {
				m.Set(x, y, r, g, b)
			}
		}
	}
}

// drawCross draws a plus-shaped cross centred at (cx, cy).
func drawCross(m *imaging.RGB, cx, cy int, arm, thickness int, r, g, b float64) {
	fillRect(m, cx-arm, cy-thickness/2, cx+arm, cy+thickness/2+1, r, g, b)
	fillRect(m, cx-thickness/2, cy-arm, cx+thickness/2+1, cy+arm, r, g, b)
}

// verticalGradient fills the image with a vertical color gradient.
func verticalGradient(m *imaging.RGB, r0, g0, b0, r1, g1, b1 float64) {
	for y := 0; y < m.H; y++ {
		t := 0.0
		if m.H > 1 {
			t = float64(y) / float64(m.H-1)
		}
		for x := 0; x < m.W; x++ {
			m.Set(x, y, r0+(r1-r0)*t, g0+(g1-g0)*t, b0+(b1-b0)*t)
		}
	}
}

// jitter returns v perturbed by a uniform offset in ±amount.
func jitter(rng *rand.Rand, v, amount float64) float64 {
	return v + (rng.Float64()*2-1)*amount
}

// classColor derives a stable, saturated color for a class index.
func classColor(class int) (r, g, b float64) {
	h := float64(class) * 0.618033988749895 // golden-ratio hue spacing
	h -= math.Floor(h)
	return hsv(h, 0.85, 0.9)
}

// hsv converts HSV (h in [0,1)) to RGB.
func hsv(h, s, v float64) (float64, float64, float64) {
	i := int(h * 6)
	f := h*6 - float64(i)
	p := v * (1 - s)
	q := v * (1 - f*s)
	t := v * (1 - (1-f)*s)
	switch i % 6 {
	case 0:
		return v, t, p
	case 1:
		return q, v, p
	case 2:
		return p, v, t
	case 3:
		return p, q, v
	case 4:
		return t, p, v
	default:
		return v, p, q
	}
}
