package synth

import (
	"math"
	"math/rand"

	"repro/internal/imaging"
)

// Labeled pairs an image with its ground-truth class.
type Labeled struct {
	Image *imaging.RGB
	Label int
}

// CIFARLike generates a 10-class, 32×32 RGB dataset analogous to
// CIFAR-10: each class has a distinctive procedural appearance (shape,
// color, texture), and samples within a class are "similar objects
// appearing in different backgrounds" (§5.1) — the object geometry and
// palette persist while position, scale, background, lighting, and
// noise vary per sample.
type CIFARLike struct {
	// Side is the image side length (default 32).
	Side int
	// Classes is the number of classes (default 10).
	Classes int
	// Jitter scales the intra-class variation in [0, 1] (default 1).
	// Lower values produce more tightly correlated samples.
	Jitter float64
	// Noise is the sensor-noise sigma (default 0.02).
	Noise float64
	// BgCorr in [0, 1] correlates the background with the class: the
	// paper's spatial correlation (§2.2 — the same kind of object tends
	// to recur in similar environments: stop signs on streets). 0 draws
	// backgrounds independently; 1 fixes them per class. Default 0.6.
	BgCorr float64
	seed   int64
}

// NewCIFARLike returns a generator with the standard configuration.
func NewCIFARLike(seed int64) *CIFARLike {
	return &CIFARLike{Side: 32, Classes: 10, Jitter: 1, Noise: 0.02, BgCorr: 0.8, seed: seed}
}

// Sample renders one image of the given class. variant selects the
// intra-class sample deterministically: the same (class, variant) always
// produces the same image.
func (d *CIFARLike) Sample(class, variant int) Labeled {
	class = ((class % d.Classes) + d.Classes) % d.Classes
	rng := rand.New(rand.NewSource(d.seed ^ int64(class)*7919 ^ int64(variant)*104729))
	m := imaging.NewRGB(d.Side, d.Side)

	// Background: partially correlated with the class (§2.2's spatial
	// correlation), blended with a per-variant random environment.
	classBgHue := math.Mod(float64(class)*0.618033988749895+0.37, 1)
	bgHue := (1-d.BgCorr)*rng.Float64() + d.BgCorr*classBgHue
	bright := 0.35 + 0.3*((1-d.BgCorr)*rng.Float64()+d.BgCorr*0.5)
	r0, g0, b0 := hsv(bgHue, 0.3, bright)
	r1, g1, b1 := hsv(bgHue+0.1, 0.25, bright-0.1)
	verticalGradient(m, r0, g0, b0, r1, g1, b1)

	// The class object: stable shape and palette, jittered pose.
	cr, cg, cb := classColor(class)
	s := float64(d.Side)
	j := d.Jitter
	cx := jitter(rng, s/2, s/8*j)
	cy := jitter(rng, s/2, s/8*j)
	size := jitter(rng, s/3.2, s/12*j)

	switch class % 10 {
	case 0: // disc
		fillCircle(m, cx, cy, size, cr, cg, cb)
	case 1: // square
		h := int(size)
		fillRect(m, int(cx)-h, int(cy)-h, int(cx)+h, int(cy)+h, cr, cg, cb)
	case 2: // triangle
		fillTriangle(m, cx, int(cy-size), int(cy+size), size, cr, cg, cb)
	case 3: // ring
		drawRing(m, cx, cy, size*0.55, size, cr, cg, cb)
	case 4: // cross
		drawCross(m, int(cx), int(cy), int(size), int(size/2.2)+1, cr, cg, cb)
	case 5: // horizontal bar
		fillRect(m, 2, int(cy-size/2.5), d.Side-2, int(cy+size/2.5), cr, cg, cb)
	case 6: // vertical bar
		fillRect(m, int(cx-size/2.5), 2, int(cx+size/2.5), d.Side-2, cr, cg, cb)
	case 7: // stripes
		drawStripes(m, jitter(rng, 6, 1*j), jitter(rng, 0.6, 0.15*j), cr, cg, cb)
	case 8: // two discs
		fillCircle(m, cx-size/1.6, cy, size/1.7, cr, cg, cb)
		fillCircle(m, cx+size/1.6, cy, size/1.7, cr, cg, cb)
	case 9: // disc on square
		h := int(size)
		fillRect(m, int(cx)-h, int(cy)-h, int(cx)+h, int(cy)+h, cr*0.5, cg*0.5, cb*0.5)
		fillCircle(m, cx, cy, size*0.6, cr, cg, cb)
	}

	// Lighting shift and sensor noise (§2.2 "different lighting
	// conditions", image blur).
	m = imaging.AdjustBrightnessRGB(m, (rng.Float64()*2-1)*0.08*j)
	if rng.Float64() < 0.3*j {
		m = imaging.BlurRGB(m, 0.6)
	}
	if d.Noise > 0 {
		m = imaging.AddNoiseRGB(m, d.Noise, rng)
	}
	return Labeled{Image: m, Label: class}
}

// Batch renders n samples cycling through the classes, with variants
// drawn from the given base offset. Useful for building train/test
// splits: disjoint variant ranges never collide.
func (d *CIFARLike) Batch(n, variantBase int) []Labeled {
	out := make([]Labeled, n)
	for i := range out {
		out[i] = d.Sample(i%d.Classes, variantBase+i)
	}
	return out
}

// MNISTLike generates a 10-class, 28×28 grayscale digit dataset
// analogous to MNIST: seven-segment-style digit glyphs with jittered
// stroke geometry and noise. "The digits have been size-normalized and
// centered in a fixed-size image" (§5.1); class appearance is far more
// regular than CIFARLike's, matching the paper's observation that MNIST
// shows "higher semantic correlation" (§5.6).
type MNISTLike struct {
	// Side is the image side length (default 28).
	Side int
	// Jitter scales intra-class variation (default 1).
	Jitter float64
	// Noise is the sensor-noise sigma (default 0.05).
	Noise float64
	seed  int64
}

// NewMNISTLike returns a generator with the standard configuration.
func NewMNISTLike(seed int64) *MNISTLike {
	return &MNISTLike{Side: 28, Jitter: 1, Noise: 0.03, seed: seed}
}

// segments encodes seven-segment glyphs for digits 0-9:
// bit 0=top, 1=top-right, 2=bottom-right, 3=bottom, 4=bottom-left,
// 5=top-left, 6=middle.
var segments = [10]uint8{
	0b0111111, // 0
	0b0000110, // 1
	0b1011011, // 2
	0b1001111, // 3
	0b1100110, // 4
	0b1101101, // 5
	0b1111101, // 6
	0b0000111, // 7
	0b1111111, // 8
	0b1101111, // 9
}

// Sample renders one digit image; (class, variant) is deterministic.
func (d *MNISTLike) Sample(class, variant int) Labeled {
	class = ((class % 10) + 10) % 10
	rng := rand.New(rand.NewSource(d.seed ^ int64(class)*31337 ^ int64(variant)*7907))
	g := imaging.NewGray(d.Side, d.Side)
	s := float64(d.Side)
	j := d.Jitter

	// Glyph frame with slightly jittered position and stroke width. The
	// jitter is kept tight so MNIST-like classes are more internally
	// correlated than CIFAR-like ones, matching §5.6.
	left := jitter(rng, s*0.28, s*0.015*j)
	right := jitter(rng, s*0.72, s*0.015*j)
	top := jitter(rng, s*0.15, s*0.012*j)
	mid := jitter(rng, s*0.5, s*0.012*j)
	bottom := jitter(rng, s*0.85, s*0.012*j)
	tw := jitter(rng, s*0.08, s*0.008*j)
	ink := 0.85 + 0.12*rng.Float64()

	seg := segments[class]
	hline := func(y, x0, x1 float64) {
		for yy := int(y - tw); yy <= int(y+tw); yy++ {
			for xx := int(x0); xx <= int(x1); xx++ {
				g.Set(xx, yy, ink)
			}
		}
	}
	vline := func(x, y0, y1 float64) {
		for yy := int(y0); yy <= int(y1); yy++ {
			for xx := int(x - tw); xx <= int(x+tw); xx++ {
				g.Set(xx, yy, ink)
			}
		}
	}
	if seg&(1<<0) != 0 {
		hline(top, left, right)
	}
	if seg&(1<<1) != 0 {
		vline(right, top, mid)
	}
	if seg&(1<<2) != 0 {
		vline(right, mid, bottom)
	}
	if seg&(1<<3) != 0 {
		hline(bottom, left, right)
	}
	if seg&(1<<4) != 0 {
		vline(left, mid, bottom)
	}
	if seg&(1<<5) != 0 {
		vline(left, top, mid)
	}
	if seg&(1<<6) != 0 {
		hline(mid, left, right)
	}

	g = imaging.Blur(g, 0.7) // pen softness
	if d.Noise > 0 {
		g = imaging.AddNoise(g, d.Noise, rng)
	}
	m := imaging.NewRGB(d.Side, d.Side)
	for y := 0; y < d.Side; y++ {
		for x := 0; x < d.Side; x++ {
			v := g.At(x, y)
			m.Set(x, y, v, v, v)
		}
	}
	return Labeled{Image: m, Label: class}
}

// Batch renders n samples cycling through digits, like CIFARLike.Batch.
func (d *MNISTLike) Batch(n, variantBase int) []Labeled {
	out := make([]Labeled, n)
	for i := range out {
		out[i] = d.Sample(i%10, variantBase+i)
	}
	return out
}
