package synth

import (
	"math"
	"testing"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// meanRGBDist is a crude image distance: mean absolute channel
// difference, used to verify correlation structure.
func meanRGBDist(a, b *imaging.RGB) float64 {
	if len(a.Pix) != len(b.Pix) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a.Pix {
		sum += math.Abs(a.Pix[i] - b.Pix[i])
	}
	return sum / float64(len(a.Pix))
}

func TestCIFARLikeDeterministic(t *testing.T) {
	d := NewCIFARLike(1)
	a := d.Sample(3, 7)
	b := d.Sample(3, 7)
	if meanRGBDist(a.Image, b.Image) != 0 {
		t.Error("same (class, variant) produced different images")
	}
	if a.Label != 3 {
		t.Errorf("label = %d", a.Label)
	}
}

func TestCIFARLikeDimensionsAndRange(t *testing.T) {
	d := NewCIFARLike(2)
	s := d.Sample(0, 0)
	if s.Image.W != 32 || s.Image.H != 32 {
		t.Errorf("dims = %dx%d", s.Image.W, s.Image.H)
	}
	for _, v := range s.Image.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
}

func TestCIFARLikeVariantsDiffer(t *testing.T) {
	d := NewCIFARLike(3)
	a := d.Sample(1, 0)
	b := d.Sample(1, 1)
	if meanRGBDist(a.Image, b.Image) == 0 {
		t.Error("different variants identical")
	}
}

// TestCIFARLikeClassStructure verifies the deduplication premise: the
// downsampled-pixel distance within a class is smaller on average than
// across classes.
func TestCIFARLikeClassStructure(t *testing.T) {
	d := NewCIFARLike(4)
	down := func(m *imaging.RGB) vec.Vector {
		g := imaging.Resize(m.Gray(), 8, 8)
		return vec.Vector(g.Pix)
	}
	metric := vec.EuclideanMetric{}
	var intra, inter []float64
	for class := 0; class < 10; class++ {
		ref := down(d.Sample(class, 0).Image)
		for v := 1; v <= 3; v++ {
			intra = append(intra, metric.Distance(ref, down(d.Sample(class, v).Image)))
		}
		other := (class + 1) % 10
		for v := 0; v < 3; v++ {
			inter = append(inter, metric.Distance(ref, down(d.Sample(other, v).Image)))
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(intra) >= mean(inter) {
		t.Errorf("intra-class distance %.3f >= inter-class %.3f; dedup premise broken",
			mean(intra), mean(inter))
	}
}

func TestCIFARLikeBatch(t *testing.T) {
	d := NewCIFARLike(5)
	batch := d.Batch(25, 100)
	if len(batch) != 25 {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, s := range batch {
		if s.Label != i%10 {
			t.Errorf("batch[%d].Label = %d", i, s.Label)
		}
	}
	// Disjoint variant bases must not collide.
	other := d.Batch(25, 200)
	if meanRGBDist(batch[0].Image, other[0].Image) == 0 {
		t.Error("disjoint variant ranges produced identical images")
	}
}

func TestCIFARLikeNegativeClassWraps(t *testing.T) {
	d := NewCIFARLike(6)
	s := d.Sample(-3, 0)
	if s.Label < 0 || s.Label >= 10 {
		t.Errorf("label = %d", s.Label)
	}
}

func TestMNISTLikeDeterministicAndDistinct(t *testing.T) {
	d := NewMNISTLike(1)
	a := d.Sample(8, 0)
	b := d.Sample(8, 0)
	if meanRGBDist(a.Image, b.Image) != 0 {
		t.Error("MNIST sample not deterministic")
	}
	if a.Image.W != 28 || a.Image.H != 28 {
		t.Errorf("dims = %dx%d", a.Image.W, a.Image.H)
	}
	// Digits 1 and 8 must differ strongly.
	one := d.Sample(1, 0)
	if meanRGBDist(a.Image, one.Image) < 0.02 {
		t.Error("digits 8 and 1 nearly identical")
	}
}

func TestMNISTLikeTighterThanCIFAR(t *testing.T) {
	// §5.6: MNIST shows higher correlation. Verify intra-class spread is
	// smaller for the MNIST-like generator (on luminance vectors).
	// CIFAR-like is compared at BgCorr 0 — fully independent backgrounds,
	// its maximum-variation configuration — since MNIST digits have no
	// background at all.
	cifar := NewCIFARLike(7)
	cifar.BgCorr = 0
	mnist := NewMNISTLike(7)
	down := func(m *imaging.RGB) vec.Vector {
		g := imaging.Resize(m.Gray(), 8, 8)
		return vec.Vector(g.Pix)
	}
	metric := vec.EuclideanMetric{}
	spread := func(sample func(c, v int) Labeled) float64 {
		var s float64
		n := 0
		for c := 0; c < 10; c++ {
			ref := down(sample(c, 0).Image)
			for v := 1; v <= 3; v++ {
				s += metric.Distance(ref, down(sample(c, v).Image))
				n++
			}
		}
		return s / float64(n)
	}
	cs := spread(cifar.Sample)
	ms := spread(mnist.Sample)
	if ms >= cs {
		t.Errorf("MNIST intra-class spread %.3f >= CIFAR %.3f", ms, cs)
	}
}

func TestMNISTLikeBatch(t *testing.T) {
	d := NewMNISTLike(2)
	batch := d.Batch(20, 0)
	if len(batch) != 20 || batch[13].Label != 3 {
		t.Errorf("batch labels wrong: len=%d label13=%d", len(batch), batch[13].Label)
	}
}

func TestVideoDeterministicFrames(t *testing.T) {
	v := NewVideo(VideoConfig{Seed: 9})
	a := v.Frame(5)
	b := NewVideo(VideoConfig{Seed: 9}).Frame(5)
	if meanRGBDist(a, b) != 0 {
		t.Error("Frame(5) not deterministic across instances")
	}
	if a.W != 160 || a.H != 120 {
		t.Errorf("default dims = %dx%d", a.W, a.H)
	}
	if meanRGBDist(v.Frame(-1), v.Frame(0)) != 0 {
		t.Error("negative frame index not clamped")
	}
}

// TestVideoTemporalCorrelation is the Figure 2 premise: successive
// frames are much closer than distant ones.
func TestVideoTemporalCorrelation(t *testing.T) {
	v := NewVideo(VideoConfig{Seed: 10, CutEvery: 0})
	f0 := v.Frame(0)
	near := meanRGBDist(f0, v.Frame(1))
	far := meanRGBDist(f0, v.Frame(40))
	if near >= far {
		t.Errorf("adjacent-frame distance %.4f >= distant %.4f", near, far)
	}
}

func TestVideoCuts(t *testing.T) {
	v := NewVideo(VideoConfig{Seed: 11, CutEvery: 10, Noise: 0})
	within := meanRGBDist(v.Frame(8), v.Frame(9))
	across := meanRGBDist(v.Frame(9), v.Frame(10))
	if across <= within*2 {
		t.Errorf("cut distance %.4f not ≫ within-scene %.4f", across, within)
	}
}

func TestVideoFrames(t *testing.T) {
	v := NewVideo(VideoConfig{Seed: 12, W: 40, H: 30})
	fs := v.Frames(3)
	if len(fs) != 3 || fs[2].W != 40 || fs[2].H != 30 {
		t.Errorf("Frames: len=%d dims=%dx%d", len(fs), fs[2].W, fs[2].H)
	}
}
