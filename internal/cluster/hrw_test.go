package cluster

import (
	"fmt"
	"testing"
)

func TestOwnersOrderIndependent(t *testing.T) {
	a := Owners([]string{"n1", "n2", "n3", "n4"}, "recog", "feat", 2)
	b := Owners([]string{"n4", "n2", "n1", "n3"}, "recog", "feat", 2)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("owner counts = %d, %d, want 2", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("owner order depends on member order: %v vs %v", a, b)
		}
	}
}

func TestOwnersBounds(t *testing.T) {
	members := []string{"a", "b", "c"}
	if got := Owners(members, "f", "k", 0); got != nil {
		t.Errorf("k=0 → %v, want nil", got)
	}
	if got := Owners(nil, "f", "k", 2); got != nil {
		t.Errorf("no members → %v, want nil", got)
	}
	got := Owners(members, "f", "k", 10)
	if len(got) != 3 {
		t.Errorf("k beyond members → %d owners, want all 3", len(got))
	}
	seen := map[string]bool{}
	for _, id := range got {
		if seen[id] {
			t.Errorf("duplicate owner %q in %v", id, got)
		}
		seen[id] = true
	}
}

// TestOwnersBalance checks the rendezvous hash spreads primary ownership
// roughly evenly: over many namespaces no member of a 4-node mesh should
// own fewer than half or more than double its fair share.
func TestOwnersBalance(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c", "node-d"}
	counts := map[string]int{}
	const namespaces = 4000
	for i := 0; i < namespaces; i++ {
		fn := fmt.Sprintf("fn-%d", i)
		counts[Owners(members, fn, "feat", 1)[0]]++
	}
	fair := namespaces / len(members)
	for _, id := range members {
		if c := counts[id]; c < fair/2 || c > fair*2 {
			t.Errorf("member %s owns %d of %d namespaces (fair share %d): skewed hash", id, c, namespaces, fair)
		}
	}
}

// TestOwnersMinimalReassignment pins the defining rendezvous property:
// dropping one member only reassigns the namespaces that member owned.
// Namespaces it did not own keep their owner list unchanged, which is
// why a breaker-demoted peer reroutes only its own traffic.
func TestOwnersMinimalReassignment(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c", "node-d"}
	without := []string{"node-a", "node-b", "node-d"} // node-c removed
	for i := 0; i < 500; i++ {
		fn := fmt.Sprintf("fn-%d", i)
		before := Owners(members, fn, "feat", 2)
		after := Owners(without, fn, "feat", 2)
		hadC := before[0] == "node-c" || before[1] == "node-c"
		if !hadC {
			if before[0] != after[0] || before[1] != after[1] {
				t.Fatalf("fn %s: owners changed from %v to %v though node-c owned nothing here", fn, before, after)
			}
			continue
		}
		// node-c's slot must be taken over without disturbing the
		// surviving owner's position relative to the newcomer.
		for _, id := range after {
			if id == "node-c" {
				t.Fatalf("fn %s: removed member still an owner: %v", fn, after)
			}
		}
	}
}
