package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// PeerSpec identifies one remote mesh member: its rendezvous identity
// and where to dial it.
type PeerSpec struct {
	// ID is the peer's node ID — the string hashed for ownership. Every
	// mesh member must agree on every other member's ID or their owner
	// assignments diverge.
	ID string
	// Network/Addr locate the peer's service socket ("unix" + path or
	// "tcp" + host:port).
	Network string
	Addr    string
}

// Config assembles a Mesh. NodeID and Local are required; everything
// else has workable defaults.
type Config struct {
	// NodeID is this node's rendezvous identity.
	NodeID string
	// Local is the node's own cache, used to adopt remote hits.
	Local *core.Cache
	// Peers lists the other mesh members. Empty degenerates the mesh to
	// a single-node cluster: every namespace is self-owned, RemoteLookup
	// always misses, ReplicatePut is a no-op.
	Peers []PeerSpec
	// Replicas is K, the owner count per namespace (self included when
	// self ranks top-K). 0 = 2.
	Replicas int
	// FailureThreshold/Cooldown parameterize each peer's circuit
	// breaker; zeros take the Breaker defaults (3 failures, 5s).
	FailureThreshold int
	Cooldown         time.Duration
	// AdoptTTL bounds the validity of adopted remote hits; 0 uses the
	// local cache's default.
	AdoptTTL time.Duration
	// Client tunes the per-peer clients. For a latency-sensitive mesh
	// hop, MaxAttempts is forced to 1 — the breaker owns retry policy,
	// not the client.
	Client service.ClientConfig
	// ReplicaQueueDepth bounds the async replication queue (puts beyond
	// the first ack); overflow is dropped and counted. 0 = 1024.
	ReplicaQueueDepth int
	// ReplicaWorkers drains the async queue. 0 = 2.
	ReplicaWorkers int
	// HandshakeInterval paces the identity/liveness loop that exchanges
	// MsgPeerInfo with peers that are unidentified or demoted. 0 = 5s.
	HandshakeInterval time.Duration
	// Logf receives diagnostics (membership warnings); nil silences.
	Logf func(format string, args ...any)
}

// peer is one remote member's runtime state: a lazily-dialed pipelined
// client, the breaker guarding it, and the handshake-learned identity.
type peer struct {
	spec   PeerSpec
	client *service.Client
	br     *service.Breaker

	mu     sync.Mutex
	info   *service.PeerInfo
	legacy bool // answered the handshake with "unknown request type"

	reqs atomic.Int64 // frames sent (lookups, puts, handshakes)
	hits atomic.Int64 // sub-lookups answered with a hit
	errs atomic.Int64 // transport failures (breaker-reported)
}

// identified reports whether the handshake has resolved this peer (a
// real PeerInfo or a legacy verdict).
func (p *peer) identified() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.info != nil || p.legacy
}

// repTask is one async replication unit: a batch of puts bound for one
// peer.
type repTask struct {
	peerID string
	subs   []service.PutSub
}

// Mesh implements service.RemoteTier over a static peer set. All maps
// are built at New and immutable afterwards; per-peer state is
// internally synchronized, so every method is safe for concurrent use.
type Mesh struct {
	cfg     Config
	members []string // self + peer IDs, sorted (rendezvous input)
	peers   map[string]*peer
	order   []string // peer IDs, sorted, for deterministic iteration

	repCh chan repTask

	remoteHits   atomic.Int64
	remoteMisses atomic.Int64
	adoptErrs    atomic.Int64
	repDrops     atomic.Int64 // async queue overflow, in sub-puts
	repSkips     atomic.Int64 // replication skipped by an open breaker

	tel atomic.Pointer[telemetry.Telemetry]

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New validates the configuration and builds the mesh. Peer clients are
// lazy — nothing is dialed until the first frame — so the daemon boots
// cleanly while its peers are still coming up.
func New(cfg Config) (*Mesh, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("cluster: NodeID is required")
	}
	if cfg.Local == nil {
		return nil, errors.New("cluster: Local cache is required")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: Replicas must be >= 1, got %d", cfg.Replicas)
	}
	if cfg.ReplicaQueueDepth <= 0 {
		cfg.ReplicaQueueDepth = 1024
	}
	if cfg.ReplicaWorkers <= 0 {
		cfg.ReplicaWorkers = 2
	}
	if cfg.HandshakeInterval <= 0 {
		cfg.HandshakeInterval = 5 * time.Second
	}
	// The breaker owns failure policy: one attempt per frame, so a dead
	// peer costs one timeout, not MaxAttempts of them.
	cfg.Client.MaxAttempts = -1 // withDefaults clamps < 1 to exactly one attempt

	m := &Mesh{
		cfg:   cfg,
		peers: make(map[string]*peer, len(cfg.Peers)),
		repCh: make(chan repTask, cfg.ReplicaQueueDepth),
		stop:  make(chan struct{}),
	}
	m.members = append(m.members, cfg.NodeID)
	for _, spec := range cfg.Peers {
		if spec.ID == "" || spec.Addr == "" {
			return nil, fmt.Errorf("cluster: peer needs ID and Addr, got %+v", spec)
		}
		if spec.Network == "" {
			spec.Network = "unix"
		}
		if spec.ID == cfg.NodeID {
			return nil, fmt.Errorf("cluster: peer %q duplicates this node's ID", spec.ID)
		}
		if _, dup := m.peers[spec.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", spec.ID)
		}
		m.peers[spec.ID] = &peer{
			spec: spec,
			// The App prefix marks every frame this node sends as mesh
			// traffic: the receiving server answers from its local tier
			// only and never re-replicates, so routing cannot loop. The
			// marking rides in the request envelope, so it survives the
			// client's transparent redials.
			client: service.NewLazyClient(spec.Network, spec.Addr,
				service.PeerAppPrefix+cfg.NodeID, cfg.Client),
			br: service.NewBreaker(cfg.FailureThreshold, cfg.Cooldown, nil),
		}
		m.members = append(m.members, spec.ID)
		m.order = append(m.order, spec.ID)
	}
	sort.Strings(m.members)
	sort.Strings(m.order)
	return m, nil
}

// NodeID returns this node's rendezvous identity.
func (m *Mesh) NodeID() string { return m.cfg.NodeID }

// Members returns the full member list (self included), sorted.
func (m *Mesh) Members() []string { return append([]string(nil), m.members...) }

// Owners returns the namespace's owner IDs in preference order.
func (m *Mesh) Owners(function, keyType string) []string {
	return Owners(m.members, function, keyType, m.cfg.Replicas)
}

// PeerState summarizes one peer for diagnostics.
type PeerState struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Breaker string `json:"breaker"`
	Legacy  bool   `json:"legacy"`
	// Version is the handshake-reported protocol generation; 0 until
	// identified (or forever, for a legacy peer).
	Version uint32 `json:"version"`
	Reqs    int64  `json:"requests"`
	Hits    int64  `json:"hits"`
	Errs    int64  `json:"errors"`
}

// Peers snapshots every peer's health, sorted by ID.
func (m *Mesh) Peers() []PeerState {
	out := make([]PeerState, 0, len(m.order))
	for _, id := range m.order {
		p := m.peers[id]
		st := PeerState{
			ID:      id,
			Addr:    p.spec.Network + "://" + p.spec.Addr,
			Breaker: p.br.State(),
			Reqs:    p.reqs.Load(),
			Hits:    p.hits.Load(),
			Errs:    p.errs.Load(),
		}
		p.mu.Lock()
		st.Legacy = p.legacy
		if p.info != nil {
			st.Version = p.info.Version
		}
		p.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Start launches the background machinery: the async replication
// workers and the handshake/liveness loop. Call once; Close stops it.
func (m *Mesh) Start() {
	for i := 0; i < m.cfg.ReplicaWorkers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				select {
				case <-m.stop:
					return
				case t := <-m.repCh:
					m.sendPuts(m.peers[t.peerID], t.subs)
				}
			}
		}()
	}
	if len(m.peers) > 0 {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			t := time.NewTicker(m.cfg.HandshakeInterval)
			defer t.Stop()
			m.handshakeRound()
			for {
				select {
				case <-m.stop:
					return
				case <-t.C:
					m.handshakeRound()
				}
			}
		}()
	}
}

// Close stops the background goroutines and closes every peer client.
// Queued async replications are abandoned — they were fire-and-forget by
// contract.
func (m *Mesh) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
	for _, p := range m.peers {
		p.client.Close()
	}
}

// handshakeRound exchanges MsgPeerInfo with every peer that is either
// unidentified or demoted. For a demoted peer the handshake doubles as
// the breaker's half-open probe, so a restarted peer is re-admitted on
// the mesh's own schedule even when no application traffic routes to it.
func (m *Mesh) handshakeRound() {
	for _, id := range m.order {
		p := m.peers[id]
		if p.identified() && p.br.State() == service.BreakerClosed {
			continue
		}
		if !p.br.Allow() {
			continue
		}
		p.reqs.Add(1)
		info, err := p.client.PeerInfo(service.PeerInfo{
			Version:  service.MeshProtocolVersion,
			NodeID:   m.cfg.NodeID,
			Replicas: uint32(m.cfg.Replicas),
		})
		if err != nil && isLegacyReply(err) {
			// The peer answered — it is alive, just older than the mesh
			// protocol. It still serves lookups and puts over the shared
			// envelope, so it stays in the rotation.
			p.br.Report(nil)
			p.mu.Lock()
			first := !p.legacy
			p.legacy = true
			p.mu.Unlock()
			if first {
				m.logf("cluster: peer %s is a legacy build (no mesh handshake); routing plain frames", id)
			}
			continue
		}
		p.br.Report(err)
		if err != nil {
			p.errs.Add(1)
			continue
		}
		p.mu.Lock()
		prev := p.info
		p.info = &info
		p.legacy = false
		p.mu.Unlock()
		if info.NodeID != "" && info.NodeID != id && prev == nil {
			m.logf("cluster: peer at %s identifies as %q but is configured as %q — member lists disagree, ownership will diverge",
				p.spec.Addr, info.NodeID, id)
		}
		if info.Replicas != 0 && int(info.Replicas) != m.cfg.Replicas && prev == nil {
			m.logf("cluster: peer %s runs replicas=%d, this node %d — asymmetric replication", id, info.Replicas, m.cfg.Replicas)
		}
	}
}

// isLegacyReply recognizes an old server's in-band answer to a message
// type it does not know. The reply arrives on a healthy connection, so
// it proves liveness.
func isLegacyReply(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown request type")
}

func (m *Mesh) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// RemoteLookup resolves one local miss against the namespace's owner
// peers: the candidates are walked in rendezvous order, the first one
// whose breaker admits the call answers, and its answer — hit or miss —
// is final. A transport failure falls through to the next owner, so a
// freshly-dead primary degrades the lookup, never fails it.
func (m *Mesh) RemoteLookup(function, keyType string, key vec.Vector, trace uint64) (service.LookupSubReply, bool) {
	for _, id := range m.Owners(function, keyType) {
		if id == m.cfg.NodeID {
			continue
		}
		p := m.peers[id]
		if !p.br.Allow() {
			continue
		}
		start := time.Now()
		p.reqs.Add(1)
		res, err := p.client.LookupTraced(function, keyType, key, telemetry.TraceID(trace))
		p.br.Report(err)
		if err != nil {
			p.errs.Add(1)
			m.recordSpan(start, trace, function, keyType, id, telemetry.OutcomeError, err.Error(), -1, 0)
			continue
		}
		if !res.Hit {
			m.remoteMisses.Add(1)
			m.recordSpan(start, trace, function, keyType, id, telemetry.OutcomeMiss, "", res.Distance, res.Threshold)
			return service.LookupSubReply{}, false
		}
		p.hits.Add(1)
		m.remoteHits.Add(1)
		m.recordSpan(start, trace, function, keyType, id, telemetry.OutcomeHit, "", res.Distance, res.Threshold)
		m.adopt([]core.BatchPut{{Function: function, Req: core.PutRequest{
			Keys:  map[string]vec.Vector{keyType: key},
			Value: res.Value,
			TTL:   m.cfg.AdoptTTL,
			App:   "mesh-adopt",
			Trace: telemetry.TraceID(trace),
		}}})
		return service.LookupSubReply{
			Hit:       true,
			Value:     res.Value,
			Distance:  res.Distance,
			Threshold: res.Threshold,
			Trace:     trace,
		}, true
	}
	return service.LookupSubReply{}, false
}

// RemoteMultiLookup resolves a batch of local misses. Subs are grouped
// by their first admitted owner so each owner peer receives ONE
// MultiLookup frame for the whole batch (frames to distinct peers go in
// parallel), and each frame costs a single breaker Allow/Report. Hits
// are adopted into the local tier in one batch put.
func (m *Mesh) RemoteMultiLookup(subs []service.LookupSub) []service.LookupSubReply {
	out := make([]service.LookupSubReply, len(subs))
	if len(m.peers) == 0 {
		return out
	}
	// Admission is decided at most once per peer per batch: Allow may
	// consume the breaker's single half-open probe slot, so it is only
	// called when a sub is about to be routed to that peer — every
	// admitted peer is guaranteed a frame and therefore a Report.
	admitted := make(map[string]bool)
	groups := make(map[string][]int)
	for i, sub := range subs {
		for _, id := range m.Owners(sub.Function, sub.KeyType) {
			if id == m.cfg.NodeID {
				continue
			}
			ok, checked := admitted[id]
			if !checked {
				ok = m.peers[id].br.Allow()
				admitted[id] = ok
			}
			if ok {
				groups[id] = append(groups[id], i)
				break
			}
		}
	}
	var wg sync.WaitGroup
	for id, idxs := range groups {
		wg.Add(1)
		go func(p *peer, idxs []int) {
			defer wg.Done()
			fwd := make([]service.LookupSub, len(idxs))
			for j, i := range idxs {
				fwd[j] = subs[i]
			}
			start := time.Now()
			p.reqs.Add(1)
			rres, err := p.client.MultiLookup(fwd)
			p.br.Report(err)
			if err != nil {
				p.errs.Add(1)
				return
			}
			for j, r := range rres {
				i := idxs[j]
				if r.Err != nil || !r.Hit {
					m.remoteMisses.Add(1)
					m.recordSpan(start, subs[i].Trace, subs[i].Function, subs[i].KeyType,
						p.spec.ID, telemetry.OutcomeMiss, "", r.Distance, r.Threshold)
					continue
				}
				p.hits.Add(1)
				m.remoteHits.Add(1)
				m.recordSpan(start, subs[i].Trace, subs[i].Function, subs[i].KeyType,
					p.spec.ID, telemetry.OutcomeHit, "", r.Distance, r.Threshold)
				// Disjoint index sets per group: no lock needed on out.
				out[i] = service.LookupSubReply{
					Hit:       true,
					Value:     r.Value,
					Distance:  r.Distance,
					Threshold: r.Threshold,
					Trace:     subs[i].Trace,
				}
			}
		}(m.peers[id], idxs)
	}
	wg.Wait()
	var adopt []core.BatchPut
	for i, r := range out {
		if !r.Hit {
			continue
		}
		adopt = append(adopt, core.BatchPut{Function: subs[i].Function, Req: core.PutRequest{
			Keys:  map[string]vec.Vector{subs[i].KeyType: subs[i].Key},
			Value: r.Value,
			TTL:   m.cfg.AdoptTTL,
			App:   "mesh-adopt",
			Trace: telemetry.TraceID(subs[i].Trace),
		}})
	}
	m.adopt(adopt)
	return out
}

// adopt inserts remote hits into the local tier, best-effort: a refused
// adoption (barred app, capacity) never affects the lookup that won.
func (m *Mesh) adopt(batch []core.BatchPut) {
	if len(batch) == 0 {
		return
	}
	for _, r := range m.cfg.Local.MultiPut(batch) {
		if r.Err != nil {
			m.adoptErrs.Add(1)
		}
	}
}

// ReplicatePut fans locally admitted puts to their owner peers: one
// synchronous frame to each sub's primary owner (the first ack the
// contract promises), and fire-and-forget queue entries for the
// remaining K-1 owners. Queue overflow drops the copy and counts it —
// replication is an availability optimization, never backpressure on
// the application's put path.
func (m *Mesh) ReplicatePut(subs []service.PutSub) {
	if len(m.peers) == 0 {
		return
	}
	syncGroups := make(map[string][]service.PutSub)
	asyncGroups := make(map[string][]service.PutSub)
	for _, sub := range subs {
		targets := m.putOwners(sub)
		if len(targets) == 0 {
			continue
		}
		syncGroups[targets[0]] = append(syncGroups[targets[0]], sub)
		for _, id := range targets[1:] {
			asyncGroups[id] = append(asyncGroups[id], sub)
		}
	}
	for id, group := range syncGroups {
		m.sendPuts(m.peers[id], group)
	}
	for id, group := range asyncGroups {
		select {
		case m.repCh <- repTask{peerID: id, subs: group}:
		default:
			m.repDrops.Add(int64(len(group)))
		}
	}
}

// putOwners resolves a put's replica targets: the union (in preference
// order) of the owner sets of every namespace the put's keys belong to,
// self excluded (the local copy already exists).
func (m *Mesh) putOwners(sub service.PutSub) []string {
	keyTypes := make([]string, 0, len(sub.Keys))
	for kt := range sub.Keys {
		keyTypes = append(keyTypes, kt)
	}
	sort.Strings(keyTypes) // map order must not decide the primary
	var out []string
	seen := make(map[string]bool, m.cfg.Replicas)
	for _, kt := range keyTypes {
		for _, id := range m.Owners(sub.Function, kt) {
			if id == m.cfg.NodeID || seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// sendPuts delivers one replication frame to one peer under its breaker.
func (m *Mesh) sendPuts(p *peer, subs []service.PutSub) {
	if !p.br.Allow() {
		m.repSkips.Add(int64(len(subs)))
		return
	}
	p.reqs.Add(1)
	_, err := p.client.MultiPut(subs)
	p.br.Report(err)
	if err != nil {
		p.errs.Add(1)
	}
}

// recordSpan emits one mesh-layer span for a traced peer hop, so
// /trace/spans (and potluck-cli explain) shows the request crossing the
// node boundary under the same trace ID as the server and core layers.
func (m *Mesh) recordSpan(start time.Time, trace uint64, function, keyType, peerID, outcome, errMsg string, distance, threshold float64) {
	tel := m.tel.Load()
	if tel == nil || trace == 0 {
		return
	}
	dur := time.Since(start)
	tel.RecordSpan(telemetry.Span{
		Trace:       telemetry.TraceID(trace),
		Start:       start.UnixNano(),
		DurationNs:  int64(dur),
		Layer:       "mesh",
		Function:    function,
		KeyType:     keyType,
		Outcome:     outcome,
		Err:         errMsg,
		Distance:    distance,
		Threshold:   threshold,
		DropoutRoll: -1,
		Probes:      -1,
		Stages: []telemetry.SpanStage{{
			Name: telemetry.StagePeer, DurationNs: int64(dur), Detail: peerID,
		}},
	})
}

// Instrument attaches the mesh to a telemetry hub: per-peer request/hit/
// error counters and breaker state, mesh-wide remote hit/miss and
// replication-loss counters, and breaker transitions as both a counter
// and trace events. Call before Start.
func (m *Mesh) Instrument(tel *telemetry.Telemetry) {
	m.tel.Store(tel)
	r := tel.Registry
	reqs := r.CounterVec("potluck_mesh_peer_requests_total",
		"Frames sent to each peer (lookups, puts, handshakes).", "peer")
	hits := r.CounterVec("potluck_mesh_peer_hits_total",
		"Sub-lookups each peer answered with a hit.", "peer")
	errs := r.CounterVec("potluck_mesh_peer_errors_total",
		"Transport failures per peer (breaker-reported).", "peer")
	open := r.GaugeVec("potluck_mesh_breaker_open",
		"1 while the peer's breaker refuses calls, else 0.", "peer")
	transitions := r.CounterVec("potluck_mesh_breaker_transitions_total",
		"Peer breaker transitions, by peer and destination state.", "peer", "to")
	for _, id := range m.order {
		p := m.peers[id]
		reqs.With(id).SetFunc(p.reqs.Load)
		hits.With(id).SetFunc(p.hits.Load)
		errs.With(id).SetFunc(p.errs.Load)
		open.With(id).SetFunc(func() float64 {
			if p.br.State() == service.BreakerOpen {
				return 1
			}
			return 0
		})
		id := id
		p.br.SetNotify(func(from, to string) {
			transitions.With(id, to).Inc()
			tel.RecordEvent(telemetry.Event{
				Kind:   telemetry.EventBreaker,
				Detail: id + " " + from + "->" + to,
			})
		})
	}
	r.Counter("potluck_mesh_remote_hits_total",
		"Local misses resolved by an owner peer.").SetFunc(m.remoteHits.Load)
	r.Counter("potluck_mesh_remote_misses_total",
		"Local misses the owner peers could not resolve either.").SetFunc(m.remoteMisses.Load)
	r.Counter("potluck_mesh_adopt_errors_total",
		"Remote hits the local tier refused to adopt.").SetFunc(m.adoptErrs.Load)
	r.Counter("potluck_mesh_replication_drops_total",
		"Replica copies dropped on async-queue overflow.").SetFunc(m.repDrops.Load)
	r.Counter("potluck_mesh_replication_skips_total",
		"Replica copies skipped because the target's breaker was open.").SetFunc(m.repSkips.Load)
	r.Gauge("potluck_mesh_peers", "Configured remote peers.").Set(float64(len(m.peers)))
	r.Gauge("potluck_mesh_replicas", "Replication factor K.").Set(float64(m.cfg.Replicas))
}
