// Package cluster generalizes the service layer's local+hub Tiered pair
// into an N-peer cache mesh: rendezvous-hashed ownership assigns each
// (function, keyType) namespace to K owner nodes, lookups that miss
// locally fan one batched frame to the nearest healthy owner, and puts
// replicate K-way. Membership is a static peer list; liveness is the
// per-peer circuit breaker (open breaker ⇒ the peer is skipped and
// rendezvous order naturally falls through to the next owner).
package cluster

import "sort"

// FNV-1a 64-bit parameters (hash/fnv is not used directly so the scoring
// function stays a pure, documented formula — the owner assignment is
// part of the mesh's wire-visible contract and must never drift with a
// library change).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hrwScore is the rendezvous (highest-random-weight) score of one member
// for one namespace: FNV-1a over peerID, function, and keyType with NUL
// separators so ("ab","c") never collides with ("a","bc"). Every node
// computes the same scores from the same member list, so ownership needs
// no coordination.
func hrwScore(peerID, function, keyType string) uint64 {
	h := uint64(fnvOffset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime64
		}
		h ^= 0 // NUL separator
		h *= fnvPrime64
	}
	mix(peerID)
	mix(function)
	mix(keyType)
	return h
}

// Owners returns the namespace's owner nodes: the k members with the
// highest rendezvous scores, best first. Ties break on member ID so the
// order is total and identical on every node. k <= 0 returns nil;
// k >= len(members) returns all members (still in preference order).
//
// The defining rendezvous property — removing a member only reassigns
// the namespaces that member owned — is what lets a breaker-demoted peer
// drop out of the route without reshuffling the rest of the mesh.
func Owners(members []string, function, keyType string, k int) []string {
	if k <= 0 || len(members) == 0 {
		return nil
	}
	type scored struct {
		id    string
		score uint64
	}
	all := make([]scored, len(members))
	for i, id := range members {
		all[i] = scored{id: id, score: hrwScore(id, function, keyType)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
