package cluster

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// node is one mesh member under test: a live server on a Unix socket.
type node struct {
	srv   *service.Server
	cache *core.Cache
	sock  string
}

func startNode(t *testing.T, nodeID string) *node {
	t.Helper()
	cache := core.New(core.Config{DisableDropout: true, Tuner: core.TunerConfig{WarmupZ: 1}})
	srv := service.NewServerConfig(cache, service.ServerConfig{NodeID: nodeID})
	sock := filepath.Join(t.TempDir(), nodeID+".sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		<-done
	})
	return &node{srv: srv, cache: cache, sock: sock}
}

// register registers fn with a single "feat" key type on the node.
func (n *node) register(t *testing.T, fn string) {
	t.Helper()
	if err := n.cache.RegisterFunction(fn, core.KeyTypeSpec{Name: "feat"}); err != nil {
		t.Fatal(err)
	}
}

// dialApp opens an application client against the node.
func dialApp(t *testing.T, n *node, app string) *service.Client {
	t.Helper()
	cl, err := service.DialConfig("unix", n.sock, app, service.ClientConfig{
		RequestTimeout: 5 * time.Second, DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// newMesh builds a mesh for self with the given peers and installs it on
// self's server.
func newMesh(t *testing.T, self *node, selfID string, replicas int, peers ...PeerSpec) *Mesh {
	t.Helper()
	m, err := New(Config{
		NodeID:           selfID,
		Local:            self.cache,
		Peers:            peers,
		Replicas:         replicas,
		FailureThreshold: 1,
		Cooldown:         50 * time.Millisecond,
		Client: service.ClientConfig{
			RequestTimeout: 2 * time.Second, DialTimeout: 500 * time.Millisecond,
		},
		HandshakeInterval: time.Hour, // rounds are driven explicitly in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	self.srv.SetRemote(m)
	return m
}

func peerOf(n *node, id string) PeerSpec {
	return PeerSpec{ID: id, Network: "unix", Addr: n.sock}
}

// TestRemoteHitAndAdopt is the mesh's core promise: a local miss is
// resolved by the owner peer and the value is adopted into the local
// tier so the next lookup stays local.
func TestRemoteHitAndAdopt(t *testing.T) {
	a, b := startNode(t, "A"), startNode(t, "B")
	a.register(t, "recog")
	b.register(t, "recog")
	m := newMesh(t, a, "A", 2, peerOf(b, "B"))

	key := vec.Vector{1, 2}
	if _, err := b.cache.Put("recog", core.PutRequest{
		Keys: map[string]vec.Vector{"feat": key}, Value: []byte("shared"),
	}); err != nil {
		t.Fatal(err)
	}

	cl := dialApp(t, a, "lens")
	res, err := cl.Lookup("recog", "feat", key)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || string(res.Value) != "shared" {
		t.Fatalf("remote lookup = %+v, want hit with %q", res, "shared")
	}
	if got := m.remoteHits.Load(); got != 1 {
		t.Fatalf("remote hits = %d, want 1", got)
	}

	// The adopted copy answers the second lookup locally.
	res, err = cl.Lookup("recog", "feat", key)
	if err != nil || !res.Hit {
		t.Fatalf("post-adopt lookup = %+v, %v, want local hit", res, err)
	}
	if got := m.remoteHits.Load(); got != 1 {
		t.Fatalf("remote hits after adoption = %d, want still 1 (second lookup must be local)", got)
	}
}

// TestPeerLookupNeverFansOut pins the loop-prevention contract: a
// request whose App carries the mesh prefix is answered strictly from
// the local tier, and no frame reaches any peer.
func TestPeerLookupNeverFansOut(t *testing.T) {
	a, b := startNode(t, "A"), startNode(t, "B")
	a.register(t, "recog")
	b.register(t, "recog")
	m := newMesh(t, a, "A", 2, peerOf(b, "B"))

	key := vec.Vector{1, 2}
	if _, err := b.cache.Put("recog", core.PutRequest{
		Keys: map[string]vec.Vector{"feat": key}, Value: []byte("shared"),
	}); err != nil {
		t.Fatal(err)
	}

	cl := dialApp(t, a, service.PeerAppPrefix+"elsewhere")
	res, err := cl.Lookup("recog", "feat", key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("peer-originated lookup consulted the mesh: routing can loop")
	}
	if st := m.Peers()[0]; st.Reqs != 0 {
		t.Fatalf("peer B saw %d frames from a peer-originated request, want 0", st.Reqs)
	}
	// Peer-originated puts must not re-replicate either.
	if _, err := cl.Put("recog", map[string]vec.Vector{"feat": {9, 9}}, []byte("rep"), service.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := m.Peers()[0]; st.Reqs != 0 {
		t.Fatalf("peer B saw %d frames from a peer-originated put, want 0", st.Reqs)
	}
}

// TestBreakerDemotionReroutes kills the primary owner and checks the
// lookup falls through to the next owner, then that the dead peer is
// skipped outright once its breaker is open.
func TestBreakerDemotionReroutes(t *testing.T) {
	a, c := startNode(t, "A"), startNode(t, "C")
	deadSock := filepath.Join(t.TempDir(), "dead.sock") // never listening

	// Pick a namespace whose rendezvous order tries dead B before live C.
	var fn string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("fn%d", i)
		var bi, ci int
		for idx, id := range Owners([]string{"A", "B", "C"}, cand, "feat", 3) {
			switch id {
			case "B":
				bi = idx
			case "C":
				ci = idx
			}
		}
		if bi < ci {
			fn = cand
			break
		}
	}
	a.register(t, fn)
	c.register(t, fn)
	m := newMesh(t, a, "A", 3,
		PeerSpec{ID: "B", Network: "unix", Addr: deadSock},
		peerOf(c, "C"))

	key := vec.Vector{3, 4}
	if _, err := c.cache.Put(fn, core.PutRequest{
		Keys: map[string]vec.Vector{"feat": key}, Value: []byte("survivor"),
	}); err != nil {
		t.Fatal(err)
	}

	cl := dialApp(t, a, "lens")
	res, err := cl.Lookup(fn, "feat", key)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || string(res.Value) != "survivor" {
		t.Fatalf("lookup with dead primary = %+v, want hit from the surviving owner", res)
	}
	var bState PeerState
	for _, st := range m.Peers() {
		if st.ID == "B" {
			bState = st
		}
	}
	if bState.Errs != 1 {
		t.Fatalf("dead peer errors = %d, want 1 (threshold trips the breaker)", bState.Errs)
	}
	if bState.Breaker != service.BreakerOpen {
		t.Fatalf("dead peer breaker = %s, want open", bState.Breaker)
	}

	// With the breaker open the dead peer costs nothing: the next lookup
	// routes straight to the survivor.
	if _, err := cl.Lookup(fn, "feat", key); err != nil {
		t.Fatal(err)
	}
	for _, st := range m.Peers() {
		if st.ID == "B" && st.Reqs != 1 {
			t.Fatalf("dead peer frames = %d, want 1 (open breaker must refuse the second)", st.Reqs)
		}
	}
}

// TestReplicationSyncFirstAck checks the put path: by the time an
// application put returns, the primary owner peer already holds the
// replica (first ack is synchronous).
func TestReplicationSyncFirstAck(t *testing.T) {
	a, b := startNode(t, "A"), startNode(t, "B")
	a.register(t, "recog")
	b.register(t, "recog")
	newMesh(t, a, "A", 2, peerOf(b, "B"))

	cl := dialApp(t, a, "lens")
	key := vec.Vector{5, 6}
	if _, err := cl.Put("recog", map[string]vec.Vector{"feat": key}, []byte("dup"), service.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := b.cache.LookupOpts("recog", "feat", key, core.LookupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatal("replica missing on the primary owner right after the put returned")
	}
}

// TestReplicationAsyncSecondary checks the K-way fan-out beyond the
// first ack: with three members and K=3, the secondary owner receives
// its copy via the async queue.
func TestReplicationAsyncSecondary(t *testing.T) {
	a, b, c := startNode(t, "A"), startNode(t, "B"), startNode(t, "C")
	for _, n := range []*node{a, b, c} {
		n.register(t, "recog")
	}
	m := newMesh(t, a, "A", 3, peerOf(b, "B"), peerOf(c, "C"))
	m.Start()

	cl := dialApp(t, a, "lens")
	key := vec.Vector{7, 8}
	if _, err := cl.Put("recog", map[string]vec.Vector{"feat": key}, []byte("dup"), service.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, n := range []*node{b, c} {
		for {
			res, err := n.cache.LookupOpts("recog", "feat", key, core.LookupOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Hit {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("replica never arrived on a secondary owner")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestBatchLookupOneFramePerOwner pins the batching contract: a
// MultiLookup whose misses all route to one owner costs that owner
// exactly one wire frame.
func TestBatchLookupOneFramePerOwner(t *testing.T) {
	a, b := startNode(t, "A"), startNode(t, "B")
	a.register(t, "recog")
	b.register(t, "recog")
	m := newMesh(t, a, "A", 2, peerOf(b, "B"))

	keys := []vec.Vector{{1, 0}, {2, 0}, {30, 0}}
	for _, k := range keys {
		if _, err := b.cache.Put("recog", core.PutRequest{
			Keys: map[string]vec.Vector{"feat": k}, Value: []byte(fmt.Sprintf("v%v", k[0])),
		}); err != nil {
			t.Fatal(err)
		}
	}

	cl := dialApp(t, a, "lens")
	subs := make([]service.LookupSub, len(keys))
	for i, k := range keys {
		subs[i] = service.LookupSub{Function: "recog", KeyType: "feat", Key: k}
	}
	out, err := cl.MultiLookup(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Err != nil || !r.Hit {
			t.Fatalf("sub %d = %+v, want remote hit", i, r)
		}
	}
	if st := m.Peers()[0]; st.Reqs != 1 {
		t.Fatalf("owner saw %d frames for a 3-miss batch, want 1", st.Reqs)
	}
	if got := m.remoteHits.Load(); got != int64(len(keys)) {
		t.Fatalf("remote hits = %d, want %d", got, len(keys))
	}
}

// TestHandshakeIdentifiesPeers drives one handshake round and checks
// the peer's version and identity land, plus the degenerate single-node
// mesh behaves as a no-op tier.
func TestHandshakeIdentifiesPeers(t *testing.T) {
	a, b := startNode(t, "A"), startNode(t, "B")
	m := newMesh(t, a, "A", 2, peerOf(b, "B"))
	m.handshakeRound()
	st := m.Peers()[0]
	if st.Legacy {
		t.Fatal("current-build peer marked legacy")
	}
	if st.Version != service.MeshProtocolVersion {
		t.Fatalf("handshake version = %d, want %d", st.Version, service.MeshProtocolVersion)
	}

	solo, err := New(Config{NodeID: "S", Local: a.cache})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if _, ok := solo.RemoteLookup("recog", "feat", vec.Vector{1}, 0); ok {
		t.Fatal("single-node mesh reported a remote hit")
	}
	solo.ReplicatePut([]service.PutSub{{Function: "recog"}}) // must be a no-op, not a panic
}

// TestHandshakeLegacyPeer runs the handshake against a stub that
// answers every frame with the old server's "unknown request type"
// error: the peer must be marked legacy AND healthy (the in-band error
// proves liveness), staying in the lookup rotation.
func TestHandshakeLegacyPeer(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "legacy.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					if _, err := service.ReadFrame(c); err != nil {
						return
					}
					reply := &service.Reply{Type: service.MsgReplyError, Error: "unknown request type 8"}
					if err := service.WriteFrame(c, service.EncodeReply(reply)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	a := startNode(t, "A")
	m := newMesh(t, a, "A", 2, PeerSpec{ID: "L", Network: "unix", Addr: sock})
	m.handshakeRound()
	st := m.Peers()[0]
	if !st.Legacy {
		t.Fatalf("legacy stub not recognized: %+v", st)
	}
	if st.Breaker != service.BreakerClosed {
		t.Fatalf("legacy peer breaker = %s, want closed (it answered, it is alive)", st.Breaker)
	}
}

// TestMeshTraceSpans checks the acceptance criterion's observability
// half: a traced remote-hit lookup leaves server-, and mesh-layer spans
// under ONE trace ID, with the mesh span naming the owner peer.
func TestMeshTraceSpans(t *testing.T) {
	a, b := startNode(t, "A"), startNode(t, "B")
	a.register(t, "recog")
	b.register(t, "recog")
	m := newMesh(t, a, "A", 2, peerOf(b, "B"))

	tel := telemetry.New()
	a.srv.Instrument(tel)
	m.Instrument(tel)

	key := vec.Vector{1, 2}
	if _, err := b.cache.Put("recog", core.PutRequest{
		Keys: map[string]vec.Vector{"feat": key}, Value: []byte("shared"),
	}); err != nil {
		t.Fatal(err)
	}

	cl := dialApp(t, a, "lens")
	id := telemetry.NewTraceID()
	res, err := cl.LookupTraced("recog", "feat", key, id)
	if err != nil || !res.Hit {
		t.Fatalf("traced lookup = %+v, %v, want remote hit", res, err)
	}

	layers := map[string]telemetry.Span{}
	for _, sp := range tel.Spans.Find(id) {
		layers[sp.Layer] = sp
	}
	for _, want := range []string{"server", "mesh"} {
		if _, ok := layers[want]; !ok {
			t.Fatalf("trace %s missing %q-layer span; got layers %v", id, want, layers)
		}
	}
	mesh := layers["mesh"]
	if mesh.Outcome != telemetry.OutcomeHit {
		t.Errorf("mesh span outcome = %s, want hit", mesh.Outcome)
	}
	if len(mesh.Stages) != 1 || mesh.Stages[0].Name != telemetry.StagePeer || mesh.Stages[0].Detail != "B" {
		t.Errorf("mesh span stages = %+v, want one peer stage naming B", mesh.Stages)
	}
	// The breaker metrics surface per peer.
	if m.Peers()[0].Hits != 1 {
		t.Errorf("peer hit counter = %d, want 1", m.Peers()[0].Hits)
	}
}
