package index

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vec"
)

// TestConcurrentQueryUnderChurn reproduces the cache core's locking
// discipline: one writer mutates the index under Lock while many readers
// query under RLock. Every kind must survive this under -race — queries
// may not share mutable scratch (per-query ADC tables, visited sets,
// heaps) and mutation state (tombstone repair, PQ training, cell
// reassignment) must stay entirely under the write lock.
func TestConcurrentQueryUnderChurn(t *testing.T) {
	const (
		dim     = 8
		readers = 4
		rounds  = 400
	)
	for _, kind := range allKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			idx, err := NewWithOptions(kind, vec.EuclideanMetric{}, dim, Options{
				// Low training thresholds so churn crosses the
				// untrained→trained boundary mid-test.
				IVF: IVFConfig{TrainAfter: 64},
				PQ:  PQConfig{TrainSize: 64, KeepRecent: 32},
			})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.RWMutex
			seed := rand.New(rand.NewSource(int64(len(kind))))
			mu.Lock()
			for i := 0; i < 128; i++ {
				if err := idx.Insert(ID(i), randomVec(seed, dim)); err != nil {
					t.Fatal(err)
				}
			}
			mu.Unlock()

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + r)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						q := randomVec(rng, dim)
						mu.RLock()
						idx.Nearest(q)
						idx.KNearest(q, 5)
						Radius(idx, q, 5)
						idx.ProbeStats()
						mu.RUnlock()
					}
				}(r)
			}
			rng := rand.New(rand.NewSource(999))
			next := ID(128)
			for i := 0; i < rounds; i++ {
				mu.Lock()
				switch rng.Intn(3) {
				case 0:
					idx.Insert(next, randomVec(rng, dim))
					next++
				case 1:
					idx.Remove(ID(rng.Intn(int(next))))
				default:
					// Replace an existing id (remove+reinsert path).
					idx.Insert(ID(rng.Intn(int(next))), randomVec(rng, dim))
				}
				mu.Unlock()
			}
			close(stop)
			wg.Wait()

			// The structure must still answer correctly after churn.
			mu.RLock()
			defer mu.RUnlock()
			if idx.Len() > 0 {
				if _, ok := idx.Nearest(randomVec(rng, dim)); !ok {
					t.Error("populated index returned no nearest after churn")
				}
			}
		})
	}
}

// TestHNSWHeavyChurnKeepsAnswering drives HNSW through far more
// removals than the repair budget keeps up with mid-stream, verifying
// tombstone routing, entry re-election, and eventual re-link all hold
// up (and that Len stays consistent with a reference set).
func TestHNSWHeavyChurnKeepsAnswering(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := NewHNSW(vec.EuclideanMetric{}, HNSWConfig{M: 8, EfConstruction: 32, EfSearch: 32})
	ref := make(map[ID]vec.Vector)
	next := ID(0)
	for round := 0; round < 2000; round++ {
		switch {
		case len(ref) < 50 || rng.Intn(3) != 0:
			v := randomVec(rng, 4)
			h.Insert(next, v)
			ref[next] = v
			next++
		default:
			// Remove a random live id.
			for id := range ref {
				h.Remove(id)
				delete(ref, id)
				break
			}
		}
		if h.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, h.Len(), len(ref))
		}
	}
	lin := NewLinear(vec.EuclideanMetric{})
	for id, v := range ref {
		lin.Insert(id, v)
	}
	hits := 0
	const queries = 200
	for q := 0; q < queries; q++ {
		query := randomVec(rng, 4)
		want, _ := lin.Nearest(query)
		got, ok := h.Nearest(query)
		if !ok {
			t.Fatal("no result after churn")
		}
		if got.Dist <= want.Dist+1e-9 {
			hits++
		}
	}
	if recall := float64(hits) / queries; recall < 0.9 {
		t.Errorf("post-churn recall@1 = %.3f, want >= 0.9", recall)
	}
}
