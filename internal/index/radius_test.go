package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestRadiusBasics(t *testing.T) {
	for _, kind := range allKinds() {
		idx, _ := New(kind, vec.EuclideanMetric{}, 1)
		for i := 0; i <= 10; i++ {
			idx.Insert(ID(i), vec.Vector{float64(i)})
		}
		got := Radius(idx, vec.Vector{5}, 2.0)
		if kind == KindLSH {
			// LSH range search is approximate: a non-empty subset of
			// {3,4,5,6,7} containing the exact match is acceptable.
			if len(got) == 0 || got[0].ID != 5 {
				t.Errorf("lsh: Radius = %v, want the exact match first", got)
			}
			for _, n := range got {
				if n.ID < 3 || n.ID > 7 {
					t.Errorf("lsh: out-of-radius result %v", n)
				}
			}
			continue
		}
		if len(got) != 5 { // 3,4,5,6,7
			t.Errorf("%s: Radius returned %d results, want 5: %v", kind, len(got), got)
			continue
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Errorf("%s: results out of order", kind)
			}
		}
		if got[0].ID != 5 {
			t.Errorf("%s: closest = %v", kind, got[0])
		}
		if n := Radius(idx, vec.Vector{100}, 1.0); len(n) != 0 {
			t.Errorf("%s: far query returned %v", kind, n)
		}
	}
}

// Property: for exact structures, Radius agrees with brute force.
func TestRadiusAgreesWithLinearProperty(t *testing.T) {
	f := func(seed int64, nRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		r := float64(rRaw%40) / 4
		lin := NewLinear(vec.EuclideanMetric{})
		kd := NewKDTree(vec.EuclideanMetric{})
		lsh := NewLSH(vec.EuclideanMetric{}, 3, DefaultLSHConfig())
		for i := 0; i < n; i++ {
			v := randomVec(rng, 3)
			lin.Insert(ID(i), v)
			kd.Insert(ID(i), v)
			lsh.Insert(ID(i), v)
		}
		q := randomVec(rng, 3)
		want := lin.Radius(q, r)
		gotKD := kd.Radius(q, r)
		if len(gotKD) != len(want) {
			return false
		}
		for i := range want {
			if want[i].ID != gotKD[i].ID {
				return false
			}
		}
		// LSH radius results must be a subset of the exact set (bucket
		// probing can miss; it must not invent).
		wantSet := make(map[ID]bool, len(want))
		for _, w := range want {
			wantSet[w.ID] = true
		}
		for _, g := range lsh.Radius(q, r) {
			if !wantSet[g.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestRadiusAfterRemovals(t *testing.T) {
	kd := NewKDTree(vec.EuclideanMetric{})
	for i := 0; i < 20; i++ {
		kd.Insert(ID(i), vec.Vector{float64(i), 0})
	}
	for i := 0; i < 20; i += 2 {
		kd.Remove(ID(i))
	}
	got := kd.Radius(vec.Vector{10, 0}, 3)
	for _, n := range got {
		if n.ID%2 == 0 {
			t.Errorf("removed entry %d returned", n.ID)
		}
	}
	// Surviving odd ids within distance 3 of x=10: 7, 9, 11, 13.
	if len(got) != 4 {
		t.Errorf("Radius after removals = %v, want 4 entries", got)
	}
}
