package index

import (
	"container/heap"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// HNSW is a hierarchical navigable-small-world graph index (Malkov &
// Yashunin), the graph-based ANN structure of ROADMAP item 3: greedy
// descent through sparse upper layers finds an entry region, a bounded
// best-first search over the dense bottom layer collects candidates, and
// probe work grows roughly logarithmically with the entry count instead
// of linearly. Results are re-ranked with exact distances (see reRank),
// so approximation affects WHICH neighbours are found, never the
// distance values a threshold decision sees.
//
// Removal is tombstone-based: a removed node keeps routing traffic until
// an amortized re-link pass (a few nodes per mutation, under the write
// lock the cache already holds) splices its live neighbours together and
// frees it. Eviction/expiry churn therefore degrades neither recall nor
// memory: dead nodes are bounded by the repair queue, which drains at
// RepairBudget nodes per subsequent mutation.
//
// Like every other kind, HNSW is not internally synchronized: the cache
// guards it with a per-key-type RWMutex. Queries allocate their own
// visited sets and heaps, so any number of readers may search
// concurrently under RLock while mutations take the write lock.
type HNSW struct {
	probeCounter
	metric   vec.Metric
	cfg      HNSWConfig
	store    vecStore
	nodes    map[ID]*hnswNode
	entry    ID   // entry point (highest-level live node)
	entryOK  bool // false when the graph is empty
	maxLevel int
	rng      *rand.Rand
	levelMul float64
	repairQ  []ID // tombstoned nodes awaiting re-link
	live     int
}

type hnswNode struct {
	id      ID
	level   int
	links   [][]ID // per level, neighbor ids
	deleted bool
}

// HNSWConfig parameterizes the graph.
type HNSWConfig struct {
	// M is the maximum neighbor count per node per layer (the bottom
	// layer allows 2M). Higher M raises recall and memory.
	M int
	// EfConstruction is the candidate-pool width while inserting.
	EfConstruction int
	// EfSearch is the candidate-pool width while querying; the
	// effective pool is max(EfSearch, k).
	EfSearch int
	// RepairBudget is how many tombstoned nodes each mutation re-links
	// and frees.
	RepairBudget int
	// Seed makes level assignment deterministic: the same insert
	// sequence always builds the same graph (crash recovery replays
	// puts in log order and must answer identically).
	Seed int64
}

// DefaultHNSWConfig returns parameters giving recall@1 >= 0.95 on the
// correlated feature-vector workloads the cache serves.
func DefaultHNSWConfig() HNSWConfig {
	return HNSWConfig{M: 16, EfConstruction: 128, EfSearch: 64, RepairBudget: 2, Seed: 1}
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	d := DefaultHNSWConfig()
	if c.M <= 0 {
		c.M = d.M
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = d.EfConstruction
	}
	if c.EfSearch <= 0 {
		c.EfSearch = d.EfSearch
	}
	if c.RepairBudget <= 0 {
		c.RepairBudget = d.RepairBudget
	}
	return c
}

// NewHNSW returns an empty HNSW index with uncompressed key storage.
func NewHNSW(m vec.Metric, cfg HNSWConfig) *HNSW {
	return newHNSW(m, cfg, newFlatStore(m))
}

// NewHNSWPQ returns an empty HNSW index whose keys are stored as
// product-quantization codes (see pq.go): candidates are scored via
// asymmetric distance tables and the top candidates re-ranked exactly.
func NewHNSWPQ(m vec.Metric, cfg HNSWConfig, pq PQConfig) *HNSW {
	return newHNSW(m, cfg, newPQStore(m, pq))
}

func newHNSW(m vec.Metric, cfg HNSWConfig, store vecStore) *HNSW {
	cfg = cfg.withDefaults()
	return &HNSW{
		metric:   m,
		cfg:      cfg,
		store:    store,
		nodes:    make(map[ID]*hnswNode),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		levelMul: 1 / math.Log(float64(cfg.M)),
	}
}

// SetKeyResolver implements ResolverSetter: a PQ-backed store drops its
// uncompressed vectors and re-ranks against the resolver instead.
func (h *HNSW) SetKeyResolver(r KeyResolver) {
	if pq, ok := h.store.(*pqStore); ok {
		pq.setResolver(r)
	}
}

// KeyBytes implements MemoryReporter.
func (h *HNSW) KeyBytes() int64 { return h.store.keyBytes() }

func (h *HNSW) maxLinks(level int) int {
	if level == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// Insert implements Index.
func (h *HNSW) Insert(id ID, key vec.Vector) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if old, ok := h.nodes[id]; ok && !old.deleted {
		h.Remove(id)
	}
	if n, ok := h.nodes[id]; ok && n.deleted {
		// Re-inserting a tombstoned id: finish its removal now so the
		// new node starts clean.
		h.relink(n)
	}
	h.repairSome()
	key = key.Clone()
	h.store.add(id, key)
	level := h.randomLevel()
	n := &hnswNode{id: id, level: level, links: make([][]ID, level+1)}
	h.nodes[id] = n
	h.live++
	if !h.entryOK {
		h.entry, h.entryOK, h.maxLevel = id, true, level
		return nil
	}
	score := h.store.scorer(key)
	ep := h.entry
	epDist := score(ep)
	// Greedy descent through layers above the new node's level.
	for l := h.maxLevel; l > level; l-- {
		ep, epDist = h.greedyStep(l, ep, epDist, score)
	}
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for l := top; l >= 0; l-- {
		found := h.searchLayer(score, []searchSeed{{ep, epDist}}, h.cfg.EfConstruction, l, nil)
		neighbors := h.selectNeighbors(key, found, h.cfg.M)
		n.links[l] = neighbors
		for _, nb := range neighbors {
			h.addLink(h.nodes[nb], l, id)
		}
		if len(found) > 0 {
			ep, epDist = found[0].id, found[0].dist
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = id
	}
	return nil
}

func (h *HNSW) randomLevel() int {
	l := int(-math.Log(1-h.rng.Float64()) * h.levelMul)
	const maxLevelCap = 32
	if l > maxLevelCap {
		l = maxLevelCap
	}
	return l
}

// addLink appends a back-edge and trims the neighbor list to capacity,
// keeping the closest candidates.
func (h *HNSW) addLink(n *hnswNode, level int, id ID) {
	if n == nil || level > n.level {
		return
	}
	n.links[level] = append(n.links[level], id)
	max := h.maxLinks(level)
	if len(n.links[level]) <= max {
		return
	}
	base, ok := h.store.exact(n.id)
	if !ok {
		n.links[level] = n.links[level][:max]
		return
	}
	h.trimLinks(n, level, base, max)
}

// trimLinks re-selects the links of n at the given level with the
// diversity heuristic (dead links sort last so they are evicted first
// but stay traversable while present).
func (h *HNSW) trimLinks(n *hnswNode, level int, base vec.Vector, max int) {
	type cand struct {
		id   ID
		dist float64
		dead bool
	}
	cands := make([]cand, 0, len(n.links[level]))
	for _, nb := range n.links[level] {
		nn, ok := h.nodes[nb]
		if !ok {
			continue
		}
		v, ok := h.store.exact(nb)
		if !ok {
			continue
		}
		cands = append(cands, cand{nb, h.metric.Distance(base, v), nn.deleted})
	}
	// Insertion sort: live before dead, then by distance, then id.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j], cands[j-1]
			if b.dead != a.dead {
				if a.dead {
					break
				}
			} else if a.dist > b.dist || (a.dist == b.dist && a.id >= b.id) {
				break
			}
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	seeds := make([]searchSeed, len(cands))
	for i, c := range cands {
		seeds[i] = searchSeed{c.id, c.dist}
	}
	n.links[level] = h.selectFromSorted(base, seeds, max, true)
}

// selectNeighbors picks up to m live candidates for a node at base using
// the HNSW diversity heuristic (Algorithm 4 of the paper): a candidate
// is kept only if it is closer to base than to every already-kept
// neighbor. Plain closest-M selection fails on clustered workloads — all
// links point into the local cluster and the graph disconnects; the
// heuristic preserves the long-range edges greedy search depends on.
// Remaining slots are back-filled with the closest pruned candidates.
func (h *HNSW) selectNeighbors(base vec.Vector, found []searchSeed, m int) []ID {
	return h.selectFromSorted(base, found, m, false)
}

// selectFromSorted applies the diversity heuristic to candidates already
// sorted by preference. allowDead keeps tombstoned candidates eligible
// for back-fill (trimming must not sever routes to not-yet-relinked
// nodes).
func (h *HNSW) selectFromSorted(base vec.Vector, found []searchSeed, m int, allowDead bool) []ID {
	out := make([]ID, 0, m)
	kept := make([]vec.Vector, 0, m)
	pruned := make([]ID, 0, len(found))
	for _, f := range found {
		if len(out) == m {
			break
		}
		n, ok := h.nodes[f.id]
		if !ok {
			continue
		}
		if n.deleted {
			if allowDead {
				pruned = append(pruned, f.id)
			}
			continue
		}
		v, ok := h.store.exact(f.id)
		if !ok {
			pruned = append(pruned, f.id)
			continue
		}
		dq := h.metric.Distance(base, v)
		diverse := true
		for _, kv := range kept {
			if h.metric.Distance(v, kv) < dq {
				diverse = false
				break
			}
		}
		if !diverse {
			pruned = append(pruned, f.id)
			continue
		}
		out = append(out, f.id)
		kept = append(kept, v)
	}
	for _, id := range pruned {
		if len(out) == m {
			break
		}
		out = append(out, id)
	}
	return out
}

// greedyStep walks one layer greedily to the local minimum.
func (h *HNSW) greedyStep(level int, ep ID, epDist float64, score func(ID) float64) (ID, float64) {
	for {
		improved := false
		n := h.nodes[ep]
		if n == nil || level > n.level {
			return ep, epDist
		}
		for _, nb := range n.links[level] {
			if d := score(nb); d < epDist {
				ep, epDist = nb, d
				improved = true
			}
		}
		if !improved {
			return ep, epDist
		}
	}
}

type searchSeed struct {
	id   ID
	dist float64
}

// seedHeap is a min-heap of candidates by distance.
type seedHeap []searchSeed

func (s seedHeap) Len() int { return len(s) }
func (s seedHeap) Less(i, j int) bool {
	if s[i].dist != s[j].dist {
		return s[i].dist < s[j].dist
	}
	return s[i].id < s[j].id
}
func (s seedHeap) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s *seedHeap) Push(x interface{}) { *s = append(*s, x.(searchSeed)) }
func (s *seedHeap) Pop() interface{} {
	old := *s
	n := len(old)
	x := old[n-1]
	*s = old[:n-1]
	return x
}

// resultHeap is a max-heap (worst candidate at the root).
type resultHeap []searchSeed

func (s resultHeap) Len() int { return len(s) }
func (s resultHeap) Less(i, j int) bool {
	if s[i].dist != s[j].dist {
		return s[i].dist > s[j].dist
	}
	return s[i].id > s[j].id
}
func (s resultHeap) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s *resultHeap) Push(x interface{}) { *s = append(*s, x.(searchSeed)) }
func (s *resultHeap) Pop() interface{} {
	old := *s
	n := len(old)
	x := old[n-1]
	*s = old[:n-1]
	return x
}

// searchLayer runs the bounded best-first search of one layer: expand
// the closest unexpanded candidate, keep the ef best results seen.
// Tombstoned nodes are traversed (they still route) but reported only to
// the candidate frontier, never the result set. Returns results sorted
// by (dist, id). visited, when non-nil, accumulates the probe count.
func (h *HNSW) searchLayer(score func(ID) float64, seeds []searchSeed, ef, level int, visited *int) []searchSeed {
	seen := make(map[ID]struct{}, ef*4)
	cands := make(seedHeap, 0, ef)
	results := make(resultHeap, 0, ef)
	for _, s := range seeds {
		if _, dup := seen[s.id]; dup {
			continue
		}
		seen[s.id] = struct{}{}
		if visited != nil {
			*visited++
		}
		heap.Push(&cands, s)
		if n, ok := h.nodes[s.id]; ok && !n.deleted {
			heap.Push(&results, s)
		}
	}
	for cands.Len() > 0 {
		c := heap.Pop(&cands).(searchSeed)
		if results.Len() >= ef && c.dist > results[0].dist {
			break
		}
		n := h.nodes[c.id]
		if n == nil || level > n.level {
			continue
		}
		for _, nb := range n.links[level] {
			if _, dup := seen[nb]; dup {
				continue
			}
			seen[nb] = struct{}{}
			if visited != nil {
				*visited++
			}
			d := score(nb)
			if results.Len() < ef || d < results[0].dist {
				heap.Push(&cands, searchSeed{nb, d})
				if nn, ok := h.nodes[nb]; ok && !nn.deleted {
					heap.Push(&results, searchSeed{nb, d})
					if results.Len() > ef {
						heap.Pop(&results)
					}
				}
			}
		}
	}
	out := make([]searchSeed, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&results).(searchSeed)
	}
	return out
}

// descend runs the upper-layer greedy descent for a query and returns
// the layer-0 entry seed.
func (h *HNSW) descend(score func(ID) float64, visited *int) searchSeed {
	ep := h.entry
	epDist := score(ep)
	if visited != nil {
		*visited++
	}
	for l := h.maxLevel; l > 0; l-- {
		ep, epDist = h.greedyStepCounted(l, ep, epDist, score, visited)
	}
	return searchSeed{ep, epDist}
}

func (h *HNSW) greedyStepCounted(level int, ep ID, epDist float64, score func(ID) float64, visited *int) (ID, float64) {
	for {
		improved := false
		n := h.nodes[ep]
		if n == nil || level > n.level {
			return ep, epDist
		}
		for _, nb := range n.links[level] {
			if visited != nil {
				*visited++
			}
			if d := score(nb); d < epDist {
				ep, epDist = nb, d
				improved = true
			}
		}
		if !improved {
			return ep, epDist
		}
	}
}

// Remove implements Index: tombstone now, re-link lazily.
func (h *HNSW) Remove(id ID) {
	n, ok := h.nodes[id]
	if !ok || n.deleted {
		return
	}
	n.deleted = true
	h.live--
	h.repairQ = append(h.repairQ, id)
	if h.entry == id {
		h.electEntry()
	}
	h.repairSome()
}

// electEntry picks a new entry point: the live node with the highest
// level, ties broken toward the smallest id (a deterministic choice, so
// graph evolution does not depend on map iteration order).
func (h *HNSW) electEntry() {
	bestID, bestLevel, found := ID(0), -1, false
	for id, n := range h.nodes {
		if n.deleted {
			continue
		}
		if n.level > bestLevel || (n.level == bestLevel && id < bestID) {
			bestID, bestLevel, found = id, n.level, true
		}
	}
	if !found {
		h.entryOK = false
		h.maxLevel = 0
		return
	}
	h.entry, h.maxLevel = bestID, bestLevel
}

// repairSome drains up to RepairBudget tombstoned nodes from the repair
// queue: each is spliced out of its neighbours' link lists (live
// neighbours are offered each other as replacements) and freed.
func (h *HNSW) repairSome() {
	for budget := h.cfg.RepairBudget; budget > 0 && len(h.repairQ) > 0; budget-- {
		id := h.repairQ[0]
		h.repairQ = h.repairQ[1:]
		n, ok := h.nodes[id]
		if !ok || !n.deleted {
			continue // re-inserted or already re-linked
		}
		h.relink(n)
	}
}

// relink splices a tombstoned node out of the graph: every live
// neighbour drops its edge to the dead node, inherits the dead node's
// other live neighbours as candidate replacements, and re-trims to
// capacity. The node and its stored vector are then freed.
func (h *HNSW) relink(n *hnswNode) {
	for l := 0; l <= n.level; l++ {
		for _, nbID := range n.links[l] {
			nb, ok := h.nodes[nbID]
			if !ok || nb.deleted || l > nb.level {
				continue
			}
			links := nb.links[l][:0]
			for _, x := range nb.links[l] {
				if x != n.id {
					links = append(links, x)
				}
			}
			// Offer the dead node's other live neighbours as
			// replacements, then keep the closest.
			for _, x := range n.links[l] {
				if x == nbID {
					continue
				}
				if xn, ok := h.nodes[x]; ok && !xn.deleted && !containsID(links, x) {
					links = append(links, x)
				}
			}
			nb.links[l] = links
			if base, ok := h.store.exact(nbID); ok && len(nb.links[l]) > h.maxLinks(l) {
				h.trimLinks(nb, l, base, h.maxLinks(l))
			}
		}
	}
	delete(h.nodes, n.id)
	h.store.remove(n.id)
}

func containsID(ids []ID, id ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Nearest implements Index.
func (h *HNSW) Nearest(key vec.Vector) (Neighbor, bool) {
	n, _, ok := h.NearestProbed(key)
	return n, ok
}

// NearestProbed implements ProbedSearcher.
func (h *HNSW) NearestProbed(key vec.Vector) (Neighbor, int, bool) {
	res, probes := h.KNearestProbed(key, 1)
	if len(res) == 0 {
		return Neighbor{}, probes, false
	}
	return res[0], probes, true
}

// KNearest implements Index.
func (h *HNSW) KNearest(key vec.Vector, k int) []Neighbor {
	ns, _ := h.KNearestProbed(key, k)
	return ns
}

// KNearestProbed implements ProbedSearcher: probes count the nodes
// scored by the descent plus the layer-0 expansion.
func (h *HNSW) KNearestProbed(key vec.Vector, k int) ([]Neighbor, int) {
	if k <= 0 || !h.entryOK || h.live == 0 {
		return nil, 0
	}
	score := h.store.scorer(key)
	visited := 0
	ef := h.cfg.EfSearch
	if k > ef {
		ef = k
	}
	seed := h.descend(score, &visited)
	found := h.searchLayer(score, []searchSeed{seed}, ef, 0, &visited)
	h.countQuery(visited)
	cands := make([]Neighbor, 0, len(found))
	for _, f := range found {
		cands = append(cands, Neighbor{ID: f.id, Dist: f.dist})
	}
	extra := 0
	if pq, ok := h.store.(*pqStore); ok {
		extra = pq.cfg.ReRank
	}
	return reRank(h.store, h.metric, key, cands, k, extra), visited
}

// Radius implements RadiusSearcher. Like LSH, HNSW range search is
// approximate: it reports the within-radius subset of an ef-bounded
// layer-0 expansion (grown while the frontier keeps finding in-radius
// nodes), re-ranked exactly so no out-of-radius result is ever invented.
func (h *HNSW) Radius(key vec.Vector, r float64) []Neighbor {
	if !h.entryOK || h.live == 0 {
		return nil
	}
	score := h.store.scorer(key)
	visited := 0
	ef := h.cfg.EfSearch
	var found []searchSeed
	for {
		seed := h.descend(score, &visited)
		found = h.searchLayer(score, []searchSeed{seed}, ef, 0, &visited)
		// Grow the pool until the worst kept candidate is outside the
		// radius (so nothing in-radius was cut) or everything is in.
		if len(found) < ef || found[len(found)-1].dist > r || ef >= h.live {
			break
		}
		ef *= 2
	}
	h.countQuery(visited)
	cands := make([]Neighbor, 0, len(found))
	for _, f := range found {
		cands = append(cands, Neighbor{ID: f.id, Dist: f.dist})
	}
	extra := 0
	if pq, ok := h.store.(*pqStore); ok {
		extra = pq.cfg.ReRank
	}
	res := reRank(h.store, h.metric, key, cands, len(cands), extra)
	cut := len(res)
	for i, n := range res {
		if n.Dist > r {
			cut = i
			break
		}
	}
	return res[:cut]
}

// Len implements Index.
func (h *HNSW) Len() int { return h.live }

// Metric implements Index.
func (h *HNSW) Metric() vec.Metric { return h.metric }

// Kind implements Index.
func (h *HNSW) Kind() Kind {
	if _, ok := h.store.(*pqStore); ok {
		return KindHNSWPQ
	}
	return KindHNSW
}
