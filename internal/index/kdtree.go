package index

import (
	"container/heap"
	"math"

	"repro/internal/vec"
)

// KDTree is a k-dimensional tree supporting exact nearest-neighbour
// search in O(log N) average time for low-to-moderate dimensions
// (paper §3.6: "KD-trees ... support spatial indexing and efficient
// nearest neighbor and range searches"). Pruning uses per-axis bounds
// and is exact for the Euclidean, Manhattan and Chebyshev metrics; for
// other metrics the tree degrades to a full traversal and stays correct.
//
// Deletions are tombstoned and the tree is rebuilt when more than half
// the nodes are dead, giving amortized O(log N) removal.
type KDTree struct {
	probeCounter
	metric   vec.Metric
	prunable bool
	euclid   bool // metric is Euclidean: Nearest searches in squared space
	root     *kdNode
	size     int // live entries
	dead     int // tombstoned entries
	byID     map[ID]*kdNode
}

type kdNode struct {
	id          ID
	key         vec.Vector
	axis        int
	left, right *kdNode
	deleted     bool
}

// NewKDTree returns an empty KD-tree using metric m.
func NewKDTree(m vec.Metric) *KDTree {
	var prunable, euclid bool
	switch m.(type) {
	case vec.EuclideanMetric:
		prunable, euclid = true, true
	case vec.ManhattanMetric, vec.ChebyshevMetric:
		prunable = true
	}
	return &KDTree{metric: m, prunable: prunable, euclid: euclid, byID: make(map[ID]*kdNode)}
}

// Insert implements Index. Empty keys are rejected: the descent below
// picks the next split axis as (axis+1) mod len(key), which would
// divide by zero for a zero-dimension key.
func (t *KDTree) Insert(id ID, key vec.Vector) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if old, ok := t.byID[id]; ok && !old.deleted {
		old.deleted = true
		t.dead++
		t.size--
	}
	key = key.Clone()
	n := &kdNode{id: id, key: key}
	t.byID[id] = n
	t.size++
	if t.root == nil {
		t.root = n
		return nil
	}
	cur := t.root
	for {
		n.axis = (cur.axis + 1) % len(key)
		if axisLess(key, cur.key, cur.axis) {
			if cur.left == nil {
				cur.left = n
				return nil
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				return nil
			}
			cur = cur.right
		}
	}
}

// axisLess compares along an axis, tolerating keys of differing
// dimensionality (shorter keys read as 0 on missing axes).
func axisLess(a, b vec.Vector, axis int) bool {
	av, bv := 0.0, 0.0
	if axis < len(a) {
		av = a[axis]
	}
	if axis < len(b) {
		bv = b[axis]
	}
	return av < bv
}

// Remove implements Index.
func (t *KDTree) Remove(id ID) {
	n, ok := t.byID[id]
	if !ok || n.deleted {
		return
	}
	n.deleted = true
	delete(t.byID, id)
	t.size--
	t.dead++
	if t.dead > t.size {
		t.rebuild()
	}
}

func (t *KDTree) rebuild() {
	nodes := make([]*kdNode, 0, t.size)
	var collect func(n *kdNode)
	collect = func(n *kdNode) {
		if n == nil {
			return
		}
		collect(n.left)
		if !n.deleted {
			nodes = append(nodes, n)
		}
		collect(n.right)
	}
	collect(t.root)
	t.root = buildBalanced(nodes, 0)
	t.dead = 0
}

func buildBalanced(nodes []*kdNode, axis int) *kdNode {
	if len(nodes) == 0 {
		return nil
	}
	// Median-of-slice by axis using an in-place selection sort around the
	// midpoint (quickselect would be faster but rebuilds are rare).
	mid := len(nodes) / 2
	quickSelect(nodes, mid, axis)
	n := nodes[mid]
	dim := len(n.key)
	next := 0
	if dim > 0 {
		next = (axis + 1) % dim
	}
	n.axis = axis
	n.left = buildBalanced(nodes[:mid], next)
	n.right = buildBalanced(nodes[mid+1:], next)
	return n
}

func quickSelect(nodes []*kdNode, k, axis int) {
	lo, hi := 0, len(nodes)-1
	for lo < hi {
		p := partition(nodes, lo, hi, axis)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partition(nodes []*kdNode, lo, hi, axis int) int {
	pivot := nodes[hi].key
	i := lo
	for j := lo; j < hi; j++ {
		if axisLess(nodes[j].key, pivot, axis) {
			nodes[i], nodes[j] = nodes[j], nodes[i]
			i++
		}
	}
	nodes[i], nodes[hi] = nodes[hi], nodes[i]
	return i
}

// Nearest implements Index. It is a dedicated allocation-free search:
// Nearest runs on every cache lookup AND every put (the tuner's
// pre-insert neighbour probe), and going through KNearest(1) would
// allocate a candidate heap and result slice per call — enough garbage
// at high concurrency that GC mark assists, a global bottleneck,
// dominate the runtime.
func (t *KDTree) Nearest(key vec.Vector) (Neighbor, bool) {
	n, _, ok := t.NearestProbed(key)
	return n, ok
}

// NearestProbed implements ProbedSearcher: the probe count is the
// number of tree nodes visited (pruned subtrees excluded).
func (t *KDTree) NearestProbed(key vec.Vector) (Neighbor, int, bool) {
	if t.size == 0 {
		return Neighbor{}, 0, false
	}
	best := Neighbor{Dist: math.Inf(1)}
	visited := 0
	if t.euclid {
		// For the default Euclidean metric, search in squared-distance
		// space: ordering is preserved (sqrt is monotone), so the same
		// node wins, but the square root is taken once at the end
		// instead of at every visited node, and the concrete distance
		// routine is called directly instead of through the Metric
		// interface.
		t.nearestSq(t.root, key, &best, &visited)
		best.Dist = math.Sqrt(best.Dist)
	} else {
		t.nearest1(t.root, key, &best, &visited)
	}
	t.countQuery(visited)
	return best, visited, true
}

// nearestSq is nearest1 specialized to squared Euclidean distance;
// best.Dist holds the squared distance during the descent.
func (t *KDTree) nearestSq(n *kdNode, key vec.Vector, best *Neighbor, visited *int) {
	if n == nil {
		return
	}
	*visited++
	if !n.deleted {
		d := vec.SquaredEuclidean(key, n.key)
		if d < best.Dist || (d == best.Dist && n.id < best.ID) {
			*best = Neighbor{ID: n.id, Key: n.key, Dist: d}
		}
	}
	first, second := n.left, n.right
	if !axisLess(key, n.key, n.axis) {
		first, second = n.right, n.left
	}
	t.nearestSq(first, key, best, visited)
	if second != nil {
		ax := axisAbsDiff(key, n.key, n.axis)
		if ax*ax <= best.Dist {
			t.nearestSq(second, key, best, visited)
		}
	}
}

// nearest1 tracks the single best candidate in place, mirroring
// search()'s traversal order, pruning, and min-ID tie-break.
func (t *KDTree) nearest1(n *kdNode, key vec.Vector, best *Neighbor, visited *int) {
	if n == nil {
		return
	}
	*visited++
	if !n.deleted {
		d := t.metric.Distance(key, n.key)
		if d < best.Dist || (d == best.Dist && n.id < best.ID) {
			*best = Neighbor{ID: n.id, Key: n.key, Dist: d}
		}
	}
	first, second := n.left, n.right
	if !axisLess(key, n.key, n.axis) {
		first, second = n.right, n.left
	}
	t.nearest1(first, key, best, visited)
	if second != nil {
		if !t.prunable || axisAbsDiff(key, n.key, n.axis) <= best.Dist {
			t.nearest1(second, key, best, visited)
		}
	}
}

// KNearest implements Index.
func (t *KDTree) KNearest(key vec.Vector, k int) []Neighbor {
	ns, _ := t.KNearestProbed(key, k)
	return ns
}

// KNearestProbed implements ProbedSearcher.
func (t *KDTree) KNearestProbed(key vec.Vector, k int) ([]Neighbor, int) {
	if k <= 0 || t.size == 0 {
		return nil, 0
	}
	h := &maxDistHeap{}
	visited := 0
	t.search(t.root, key, k, h, &visited)
	t.countQuery(visited)
	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Neighbor)
	}
	return out, visited
}

func (t *KDTree) search(n *kdNode, key vec.Vector, k int, h *maxDistHeap, visited *int) {
	if n == nil {
		return
	}
	*visited++
	if !n.deleted {
		d := t.metric.Distance(key, n.key)
		if h.Len() < k {
			heap.Push(h, Neighbor{ID: n.id, Key: n.key, Dist: d})
		} else if worst := (*h)[0]; d < worst.Dist || (d == worst.Dist && n.id < worst.ID) {
			(*h)[0] = Neighbor{ID: n.id, Key: n.key, Dist: d}
			heap.Fix(h, 0)
		}
	}
	goLeft := axisLess(key, n.key, n.axis)
	first, second := n.left, n.right
	if !goLeft {
		first, second = n.right, n.left
	}
	t.search(first, key, k, h, visited)
	// Prune the far side when the axis distance already exceeds the
	// current worst candidate (valid for Lp metrics).
	if second != nil {
		axDist := axisAbsDiff(key, n.key, n.axis)
		if !t.prunable || h.Len() < k || axDist <= (*h)[0].Dist {
			t.search(second, key, k, h, visited)
		}
	}
}

func axisAbsDiff(a, b vec.Vector, axis int) float64 {
	av, bv := 0.0, 0.0
	if axis < len(a) {
		av = a[axis]
	}
	if axis < len(b) {
		bv = b[axis]
	}
	return math.Abs(av - bv)
}

// Len implements Index.
func (t *KDTree) Len() int { return t.size }

// Metric implements Index.
func (t *KDTree) Metric() vec.Metric { return t.metric }

// Kind implements Index.
func (t *KDTree) Kind() Kind { return KindKDTree }

// maxDistHeap is a max-heap of neighbours by distance, so the root is the
// worst candidate and can be replaced cheaply.
type maxDistHeap []Neighbor

func (h maxDistHeap) Len() int { return len(h) }
func (h maxDistHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].ID > h[j].ID
}
func (h maxDistHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxDistHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxDistHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
