package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func benchKeys(n, dim int, seed int64) []vec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vec.Vector, n)
	for i := range out {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// BenchmarkInsert measures insertion cost per index kind and size.
func BenchmarkInsert(b *testing.B) {
	for _, kind := range []Kind{KindLinear, KindKDTree, KindLSH, KindTreeMap, KindHash} {
		b.Run(string(kind), func(b *testing.B) {
			keys := benchKeys(b.N, 16, 1)
			idx, _ := New(kind, vec.EuclideanMetric{}, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Insert(ID(i), keys[i])
			}
		})
	}
}

// BenchmarkNearest measures 1-NN query cost per kind at several sizes.
func BenchmarkNearest(b *testing.B) {
	for _, kind := range []Kind{KindKDTree, KindLSH, KindLinear} {
		for _, n := range []int{1_000, 10_000} {
			b.Run(fmt.Sprintf("%s-%d", kind, n), func(b *testing.B) {
				keys := benchKeys(n, 16, 2)
				idx, _ := New(kind, vec.EuclideanMetric{}, 16)
				for i, k := range keys {
					idx.Insert(ID(i), k)
				}
				queries := benchKeys(256, 16, 3)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					idx.Nearest(queries[i%len(queries)])
				}
			})
		}
	}
}

// BenchmarkRadius measures range-search cost for the exact structures.
func BenchmarkRadius(b *testing.B) {
	for _, kind := range []Kind{KindKDTree, KindLinear} {
		b.Run(string(kind), func(b *testing.B) {
			keys := benchKeys(10_000, 8, 4)
			idx, _ := New(kind, vec.EuclideanMetric{}, 8)
			for i, k := range keys {
				idx.Insert(ID(i), k)
			}
			queries := benchKeys(128, 8, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Radius(idx, queries[i%len(queries)], 1.0)
			}
		})
	}
}
