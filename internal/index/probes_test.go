package index

import (
	"testing"

	"repro/internal/vec"
)

// TestProbeStatsCounted checks that every index kind records query and
// probe counts for the full query surface (Nearest, KNearest, Radius).
func TestProbeStatsCounted(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(string(kind), func(t *testing.T) {
			idx, err := New(kind, vec.EuclideanMetric{}, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 32; i++ {
				key := vec.Vector{float64(i), float64(i % 7), float64(i % 3)}
				if err := idx.Insert(ID(i), key); err != nil {
					t.Fatal(err)
				}
			}
			if ps := idx.ProbeStats(); ps.Queries != 0 || ps.Probes != 0 {
				t.Fatalf("inserts must not count as queries: %+v", ps)
			}
			q := vec.Vector{5, 5, 1}
			idx.Nearest(q)
			idx.KNearest(q, 4)
			Radius(idx, q, 2)
			ps := idx.ProbeStats()
			if ps.Queries < 3 {
				t.Fatalf("queries = %d, want >= 3", ps.Queries)
			}
			if ps.Probes <= 0 {
				t.Fatalf("probes = %d, want > 0", ps.Probes)
			}
		})
	}
}

// TestProbeStatsLinearExact pins the linear index's probe accounting:
// every query scans all stored keys.
func TestProbeStatsLinearExact(t *testing.T) {
	l := NewLinear(vec.EuclideanMetric{})
	for i := 0; i < 10; i++ {
		if err := l.Insert(ID(i), vec.Vector{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Nearest(vec.Vector{3})
	l.KNearest(vec.Vector{3}, 2)
	ps := l.ProbeStats()
	if ps.Queries != 2 || ps.Probes != 20 {
		t.Fatalf("probe stats = %+v, want {Queries:2 Probes:20}", ps)
	}
}
