package index

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/vec"
)

// LSHConfig parameterizes the locality-sensitive hash index.
type LSHConfig struct {
	// Tables is the number of independent hash tables (L). More tables
	// increase recall at the cost of memory and insert time.
	Tables int
	// Hashes is the number of concatenated hash functions per table (k).
	// More hashes make buckets more selective.
	Hashes int
	// BucketWidth is the quantization width w of the p-stable scheme.
	// Wider buckets group more distant points together.
	BucketWidth float64
	// Seed makes the random projections deterministic.
	Seed int64
}

// DefaultLSHConfig returns parameters that work well for the feature
// vectors used in the paper's experiments (hundreds of dimensions,
// L2-normalized histograms and descriptors).
func DefaultLSHConfig() LSHConfig {
	return LSHConfig{Tables: 8, Hashes: 6, BucketWidth: 4, Seed: 1}
}

// LSH is a locality-sensitive hash index based on p-stable (Gaussian)
// projections (Datar et al., cited as [16] in the paper). Queries probe
// the buckets the query key hashes into and rank candidates exactly; this
// gives sub-linear lookups that "scale well with an increasing cache
// size" (Table 2). Nearest is approximate: if no candidate shares a
// bucket, LSH falls back to scanning so that the cache never misses
// merely because of unlucky hashing.
type LSH struct {
	probeCounter
	metric vec.Metric
	cfg    LSHConfig
	dim    int
	// projections[t][h] is one random direction plus offset.
	projections [][]projection
	tables      []map[string][]ID
	keys        map[ID]vec.Vector
	buckets     map[ID][]string // per-table bucket of each id for removal
}

type projection struct {
	dir    vec.Vector
	offset float64
}

// NewLSH returns an empty LSH index. If dim is 0 the index sizes its
// projections lazily from the first inserted key.
func NewLSH(m vec.Metric, dim int, cfg LSHConfig) *LSH {
	if cfg.Tables <= 0 {
		cfg.Tables = DefaultLSHConfig().Tables
	}
	if cfg.Hashes <= 0 {
		cfg.Hashes = DefaultLSHConfig().Hashes
	}
	if cfg.BucketWidth <= 0 {
		cfg.BucketWidth = DefaultLSHConfig().BucketWidth
	}
	l := &LSH{
		metric:  m,
		cfg:     cfg,
		keys:    make(map[ID]vec.Vector),
		buckets: make(map[ID][]string),
		tables:  make([]map[string][]ID, cfg.Tables),
	}
	for i := range l.tables {
		l.tables[i] = make(map[string][]ID)
	}
	if dim > 0 {
		l.initProjections(dim)
	}
	return l
}

func (l *LSH) initProjections(dim int) {
	l.dim = dim
	rng := rand.New(rand.NewSource(l.cfg.Seed))
	l.projections = make([][]projection, l.cfg.Tables)
	for t := range l.projections {
		hs := make([]projection, l.cfg.Hashes)
		for h := range hs {
			dir := make(vec.Vector, dim)
			for d := range dir {
				dir[d] = rng.NormFloat64()
			}
			hs[h] = projection{dir: dir, offset: rng.Float64() * l.cfg.BucketWidth}
		}
		l.projections[t] = hs
	}
}

func (l *LSH) bucketKey(table int, key vec.Vector) string {
	hs := l.projections[table]
	buf := make([]byte, 0, len(hs)*4)
	for _, p := range hs {
		var dot float64
		n := len(key)
		if len(p.dir) < n {
			n = len(p.dir)
		}
		for i := 0; i < n; i++ {
			dot += key[i] * p.dir[i]
		}
		b := int32(math.Floor((dot + p.offset) / l.cfg.BucketWidth))
		buf = append(buf, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
	}
	return string(buf)
}

// Insert implements Index.
func (l *LSH) Insert(id ID, key vec.Vector) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if _, ok := l.keys[id]; ok {
		l.Remove(id)
	}
	key = key.Clone()
	if l.projections == nil {
		l.initProjections(len(key))
	}
	l.keys[id] = key
	bks := make([]string, l.cfg.Tables)
	for t := range l.tables {
		bk := l.bucketKey(t, key)
		bks[t] = bk
		l.tables[t][bk] = append(l.tables[t][bk], id)
	}
	l.buckets[id] = bks
	return nil
}

// Remove implements Index.
func (l *LSH) Remove(id ID) {
	bks, ok := l.buckets[id]
	if !ok {
		return
	}
	for t, bk := range bks {
		ids := l.tables[t][bk]
		for i, x := range ids {
			if x == id {
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				break
			}
		}
		if len(ids) == 0 {
			delete(l.tables[t], bk)
		} else {
			l.tables[t][bk] = ids
		}
	}
	delete(l.buckets, id)
	delete(l.keys, id)
}

// candidates gathers the ids sharing any bucket with key.
func (l *LSH) candidates(key vec.Vector) map[ID]struct{} {
	out := make(map[ID]struct{})
	if l.projections == nil {
		return out
	}
	for t := range l.tables {
		for _, id := range l.tables[t][l.bucketKey(t, key)] {
			out[id] = struct{}{}
		}
	}
	return out
}

// Nearest implements Index.
func (l *LSH) Nearest(key vec.Vector) (Neighbor, bool) {
	res := l.KNearest(key, 1)
	if len(res) == 0 {
		return Neighbor{}, false
	}
	return res[0], true
}

// NearestProbed implements ProbedSearcher: the probe count is the
// candidate set size (post full-scan fallback when hashing came up
// short).
func (l *LSH) NearestProbed(key vec.Vector) (Neighbor, int, bool) {
	res, probes := l.KNearestProbed(key, 1)
	if len(res) == 0 {
		return Neighbor{}, probes, false
	}
	return res[0], probes, true
}

// KNearest implements Index.
func (l *LSH) KNearest(key vec.Vector, k int) []Neighbor {
	ns, _ := l.KNearestProbed(key, k)
	return ns
}

// KNearestProbed implements ProbedSearcher.
func (l *LSH) KNearestProbed(key vec.Vector, k int) ([]Neighbor, int) {
	if k <= 0 || len(l.keys) == 0 {
		return nil, 0
	}
	cand := l.candidates(key)
	if len(cand) < k {
		// Fallback: scan everything so the cache never loses an entry to
		// unlucky hashing. This keeps LSH results a superset of what
		// bucket probing alone would return.
		for id := range l.keys {
			cand[id] = struct{}{}
		}
	}
	l.countQuery(len(cand))
	best := make([]Neighbor, 0, len(cand))
	for id := range cand {
		kv := l.keys[id]
		best = append(best, Neighbor{ID: id, Key: kv, Dist: l.metric.Distance(key, kv)})
	}
	sortNeighbors(best)
	if len(best) > k {
		best = best[:k]
	}
	return best, len(cand)
}

func sortNeighbors(ns []Neighbor) {
	// Insertion sort for the small candidate sets LSH produces by
	// design; comparison sort beyond that (IVF cell scans and LSH
	// fallback buckets reach thousands of candidates, where insertion
	// sort's quadratic cost dominates the whole query). less() is a
	// total order (Dist, then ID), so the result is deterministic
	// either way.
	if len(ns) > 48 {
		sort.Slice(ns, func(i, j int) bool { return less(ns[i], ns[j]) })
		return
	}
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && less(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func less(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Len implements Index.
func (l *LSH) Len() int { return len(l.keys) }

// Metric implements Index.
func (l *LSH) Metric() vec.Metric { return l.metric }

// Kind implements Index.
func (l *LSH) Kind() Kind { return KindLSH }

// ProbeOnly returns the neighbours found by bucket probing alone, without
// the full-scan fallback. Experiments use it to measure pure LSH lookup
// latency (Table 2); production lookups use KNearest.
func (l *LSH) ProbeOnly(key vec.Vector, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	cand := l.candidates(key)
	l.countQuery(len(cand))
	best := make([]Neighbor, 0, len(cand))
	for id := range cand {
		kv := l.keys[id]
		best = append(best, Neighbor{ID: id, Key: kv, Dist: l.metric.Distance(key, kv)})
	}
	sortNeighbors(best)
	if len(best) > k {
		best = best[:k]
	}
	return best
}
