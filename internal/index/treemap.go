package index

import (
	"repro/internal/vec"
)

// TreeMap is a balanced binary search tree (AVL) over the lexicographic
// order of key vectors, matching the paper's "Treemap ... implemented as
// a balanced binary tree which supports nearest neighbor and range
// searches in O(log N) time. Scalar or vector keys which are compared by
// their lexical order could benefit from this data structure." (§4.2).
//
// Nearest-neighbour queries locate the query's lexicographic position
// and examine a small window of in-order predecessors and successors,
// ranking them with the metric. For scalar (1-D) keys under an Lp metric
// this is exact; for higher dimensions it is a heuristic, which is why
// the cache defaults scalar key types to TreeMap and vector key types to
// KD-tree or LSH.
type TreeMap struct {
	probeCounter
	metric vec.Metric
	root   *avlNode
	size   int
	byID   map[ID]vec.Vector
	// window is how many in-order neighbours to examine on each side.
	window int
}

type avlNode struct {
	id          ID
	key         vec.Vector
	height      int
	left, right *avlNode
}

// NewTreeMap returns an empty tree map using metric m.
func NewTreeMap(m vec.Metric) *TreeMap {
	return &TreeMap{metric: m, byID: make(map[ID]vec.Vector), window: 8}
}

// lexLess orders vectors lexicographically, shorter prefixes first.
func lexLess(a, b vec.Vector) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lexLessNode(a, b *avlNode) bool {
	if l := lexLess(a.key, b.key); l {
		return true
	}
	if lexLess(b.key, a.key) {
		return false
	}
	return a.id < b.id
}

func height(n *avlNode) int {
	if n == nil {
		return 0
	}
	return n.height
}

func update(n *avlNode) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func rotateRight(y *avlNode) *avlNode {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	update(x)
	return x
}

func rotateLeft(x *avlNode) *avlNode {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	update(y)
	return y
}

func balance(n *avlNode) *avlNode {
	update(n)
	bf := height(n.left) - height(n.right)
	if bf > 1 {
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	}
	if bf < -1 {
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func insert(root, n *avlNode) *avlNode {
	if root == nil {
		n.height = 1
		return n
	}
	if lexLessNode(n, root) {
		root.left = insert(root.left, n)
	} else {
		root.right = insert(root.right, n)
	}
	return balance(root)
}

func remove(root *avlNode, id ID, key vec.Vector) *avlNode {
	if root == nil {
		return nil
	}
	probe := &avlNode{id: id, key: key}
	switch {
	case root.id == id:
		if root.left == nil {
			return root.right
		}
		if root.right == nil {
			return root.left
		}
		// Replace with in-order successor.
		succ := root.right
		for succ.left != nil {
			succ = succ.left
		}
		root.id, root.key = succ.id, succ.key
		root.right = remove(root.right, succ.id, succ.key)
	case lexLessNode(probe, root):
		root.left = remove(root.left, id, key)
	default:
		root.right = remove(root.right, id, key)
	}
	return balance(root)
}

// Insert implements Index.
func (t *TreeMap) Insert(id ID, key vec.Vector) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if old, ok := t.byID[id]; ok {
		t.root = remove(t.root, id, old)
		t.size--
	}
	key = key.Clone()
	t.byID[id] = key
	t.root = insert(t.root, &avlNode{id: id, key: key})
	t.size++
	return nil
}

// Remove implements Index.
func (t *TreeMap) Remove(id ID) {
	key, ok := t.byID[id]
	if !ok {
		return
	}
	t.root = remove(t.root, id, key)
	delete(t.byID, id)
	t.size--
}

// neighborsAround collects up to window in-order nodes on each side of
// key's lexicographic position in O(log N + window) using explicit
// predecessor/successor stacks.
func (t *TreeMap) neighborsAround(key vec.Vector) []*avlNode {
	probe := &avlNode{key: key, id: ^ID(0)}
	var predStack, succStack []*avlNode
	n := t.root
	for n != nil {
		if lexLessNode(n, probe) {
			predStack = append(predStack, n)
			n = n.right
		} else {
			succStack = append(succStack, n)
			n = n.left
		}
	}
	out := make([]*avlNode, 0, 2*t.window)
	for i := 0; i < t.window && len(predStack) > 0; i++ {
		top := predStack[len(predStack)-1]
		predStack = predStack[:len(predStack)-1]
		out = append(out, top)
		// Next predecessor: rightmost spine of top's left subtree.
		for c := top.left; c != nil; c = c.right {
			predStack = append(predStack, c)
		}
	}
	for i := 0; i < t.window && len(succStack) > 0; i++ {
		top := succStack[len(succStack)-1]
		succStack = succStack[:len(succStack)-1]
		out = append(out, top)
		// Next successor: leftmost spine of top's right subtree.
		for c := top.right; c != nil; c = c.left {
			succStack = append(succStack, c)
		}
	}
	return out
}

// Nearest implements Index.
func (t *TreeMap) Nearest(key vec.Vector) (Neighbor, bool) {
	res := t.KNearest(key, 1)
	if len(res) == 0 {
		return Neighbor{}, false
	}
	return res[0], true
}

// NearestProbed implements ProbedSearcher: the probe count is the size
// of the ordered-neighbourhood candidate window.
func (t *TreeMap) NearestProbed(key vec.Vector) (Neighbor, int, bool) {
	res, probes := t.KNearestProbed(key, 1)
	if len(res) == 0 {
		return Neighbor{}, probes, false
	}
	return res[0], probes, true
}

// KNearest implements Index.
func (t *TreeMap) KNearest(key vec.Vector, k int) []Neighbor {
	ns, _ := t.KNearestProbed(key, k)
	return ns
}

// KNearestProbed implements ProbedSearcher.
func (t *TreeMap) KNearestProbed(key vec.Vector, k int) ([]Neighbor, int) {
	if k <= 0 || t.size == 0 {
		return nil, 0
	}
	cands := t.neighborsAround(key)
	t.countQuery(len(cands))
	ns := make([]Neighbor, 0, len(cands))
	seen := make(map[ID]struct{}, len(cands))
	for _, n := range cands {
		if _, dup := seen[n.id]; dup {
			continue
		}
		seen[n.id] = struct{}{}
		ns = append(ns, Neighbor{ID: n.id, Key: n.key, Dist: t.metric.Distance(key, n.key)})
	}
	sortNeighbors(ns)
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns, len(cands)
}

// Len implements Index.
func (t *TreeMap) Len() int { return t.size }

// Metric implements Index.
func (t *TreeMap) Metric() vec.Metric { return t.metric }

// Kind implements Index.
func (t *TreeMap) Kind() Kind { return KindTreeMap }

// Height reports the height of the underlying AVL tree, exposed for
// balance-invariant tests.
func (t *TreeMap) Height() int { return height(t.root) }
