package index

import (
	"sort"

	"repro/internal/vec"
)

// Linear is the naive enumeration index: every query scans all stored
// keys. It is the correctness reference for the other indices and the
// "enum" column of Table 2 in the paper.
type Linear struct {
	probeCounter
	metric vec.Metric
	keys   map[ID]vec.Vector
}

// NewLinear returns an empty linear-scan index using metric m.
func NewLinear(m vec.Metric) *Linear {
	return &Linear{metric: m, keys: make(map[ID]vec.Vector)}
}

// Insert implements Index.
func (l *Linear) Insert(id ID, key vec.Vector) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	l.keys[id] = key.Clone()
	return nil
}

// Remove implements Index.
func (l *Linear) Remove(id ID) { delete(l.keys, id) }

// Nearest implements Index.
func (l *Linear) Nearest(key vec.Vector) (Neighbor, bool) {
	n, _, ok := l.NearestProbed(key)
	return n, ok
}

// NearestProbed implements ProbedSearcher: a linear scan always probes
// every stored key.
func (l *Linear) NearestProbed(key vec.Vector) (Neighbor, int, bool) {
	probes := len(l.keys)
	l.countQuery(probes)
	best := Neighbor{Dist: -1}
	for id, k := range l.keys {
		d := l.metric.Distance(key, k)
		if best.Dist < 0 || d < best.Dist || (d == best.Dist && id < best.ID) {
			best = Neighbor{ID: id, Key: k, Dist: d}
		}
	}
	if best.Dist < 0 {
		return Neighbor{}, probes, false
	}
	return best, probes, true
}

// KNearest implements Index.
func (l *Linear) KNearest(key vec.Vector, k int) []Neighbor {
	ns, _ := l.KNearestProbed(key, k)
	return ns
}

// KNearestProbed implements ProbedSearcher.
func (l *Linear) KNearestProbed(key vec.Vector, k int) ([]Neighbor, int) {
	if k <= 0 {
		return nil, 0
	}
	l.countQuery(len(l.keys))
	all := make([]Neighbor, 0, len(l.keys))
	for id, kv := range l.keys {
		all = append(all, Neighbor{ID: id, Key: kv, Dist: l.metric.Distance(key, kv)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, len(l.keys)
}

// Len implements Index.
func (l *Linear) Len() int { return len(l.keys) }

// Metric implements Index.
func (l *Linear) Metric() vec.Metric { return l.metric }

// Kind implements Index.
func (l *Linear) Kind() Kind { return KindLinear }
