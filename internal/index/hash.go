package index

import (
	"math"

	"repro/internal/vec"
)

// Hash is the exact-match index: O(1) lookups for identical keys
// ("A hashmap is useful for the exact matching, achieving O(1) time
// complexity for key search", §4.2). Nearest returns distance 0 on an
// exact hit; otherwise it reports the closest key found among hash
// collisions of the quantized key, falling back to a scan only when the
// bucket is empty and the caller asked for approximate results.
//
// Keys are identified by their exact bit pattern. Approximate matching
// should use KDTree or LSH; Hash exists for functions whose inputs are
// discrete (e.g. exact strings or rounded poses).
type Hash struct {
	probeCounter
	metric  vec.Metric
	buckets map[string][]ID
	keys    map[ID]vec.Vector
	sig     map[ID]string
}

// NewHash returns an empty exact-match index using metric m.
func NewHash(m vec.Metric) *Hash {
	return &Hash{
		metric:  m,
		buckets: make(map[string][]ID),
		keys:    make(map[ID]vec.Vector),
		sig:     make(map[ID]string),
	}
}

func signature(key vec.Vector) string {
	buf := make([]byte, 0, len(key)*8)
	for _, x := range key {
		b := math.Float64bits(x)
		buf = append(buf,
			byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
			byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
	}
	return string(buf)
}

// Insert implements Index.
func (h *Hash) Insert(id ID, key vec.Vector) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if _, ok := h.keys[id]; ok {
		h.Remove(id)
	}
	key = key.Clone()
	s := signature(key)
	h.keys[id] = key
	h.sig[id] = s
	h.buckets[s] = append(h.buckets[s], id)
	return nil
}

// Remove implements Index.
func (h *Hash) Remove(id ID) {
	s, ok := h.sig[id]
	if !ok {
		return
	}
	ids := h.buckets[s]
	for i, x := range ids {
		if x == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(h.buckets, s)
	} else {
		h.buckets[s] = ids
	}
	delete(h.sig, id)
	delete(h.keys, id)
}

// Nearest implements Index. An exact hit returns distance 0 in O(1);
// otherwise all keys are scanned (exact-match indices are not meant for
// approximate queries, but degrading to a scan keeps the cache correct
// if an application registers one anyway).
func (h *Hash) Nearest(key vec.Vector) (Neighbor, bool) {
	n, _, ok := h.NearestProbed(key)
	return n, ok
}

// NearestProbed implements ProbedSearcher: an exact hit probes only its
// bucket, the approximate fallback probes every key.
func (h *Hash) NearestProbed(key vec.Vector) (Neighbor, int, bool) {
	if ids := h.buckets[signature(key)]; len(ids) > 0 {
		h.countQuery(len(ids))
		id := minID(ids)
		return Neighbor{ID: id, Key: h.keys[id], Dist: 0}, len(ids), true
	}
	probes := len(h.keys)
	h.countQuery(probes)
	best := Neighbor{Dist: -1}
	for id, kv := range h.keys {
		d := h.metric.Distance(key, kv)
		if best.Dist < 0 || d < best.Dist || (d == best.Dist && id < best.ID) {
			best = Neighbor{ID: id, Key: kv, Dist: d}
		}
	}
	if best.Dist < 0 {
		return Neighbor{}, probes, false
	}
	return best, probes, true
}

func minID(ids []ID) ID {
	m := ids[0]
	for _, id := range ids[1:] {
		if id < m {
			m = id
		}
	}
	return m
}

// KNearest implements Index.
func (h *Hash) KNearest(key vec.Vector, k int) []Neighbor {
	ns, _ := h.KNearestProbed(key, k)
	return ns
}

// KNearestProbed implements ProbedSearcher.
func (h *Hash) KNearestProbed(key vec.Vector, k int) ([]Neighbor, int) {
	if k <= 0 || len(h.keys) == 0 {
		return nil, 0
	}
	probes := len(h.keys)
	h.countQuery(probes)
	ns := make([]Neighbor, 0, len(h.keys))
	for id, kv := range h.keys {
		ns = append(ns, Neighbor{ID: id, Key: kv, Dist: h.metric.Distance(key, kv)})
	}
	sortNeighbors(ns)
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns, probes
}

// Len implements Index.
func (h *Hash) Len() int { return len(h.keys) }

// Metric implements Index.
func (h *Hash) Metric() vec.Metric { return h.metric }

// Kind implements Index.
func (h *Hash) Kind() Kind { return KindHash }
