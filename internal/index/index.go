// Package index implements the key-index data structures from the
// paper's cache layout (§3.6, Figure 5): exact hash maps, ordered tree
// maps, KD-trees, locality-sensitive hashing, and plain linear
// enumeration. Each supports threshold-restricted nearest-neighbour
// queries over feature-vector keys; Table 2 of the paper compares their
// lookup latencies.
package index

import (
	"errors"
	"fmt"

	"repro/internal/vec"
)

// ErrEmptyKey is returned by Insert when the key vector has zero
// dimensions. Zero-dimension keys cannot be indexed — a KD-tree, for
// instance, has no axis to split on — so all implementations reject
// them up front instead of corrupting their structure or panicking.
var ErrEmptyKey = errors.New("index: empty key vector")

// ID identifies a cache entry within an index. IDs are assigned by the
// cache core and are stable for the lifetime of the entry.
type ID uint64

// Neighbor is one result of a nearest-neighbour query.
type Neighbor struct {
	ID   ID
	Key  vec.Vector
	Dist float64
}

// Index stores (ID, key-vector) pairs and answers nearest-neighbour
// queries under the index's metric. Implementations are NOT safe for
// concurrent use; the cache core guards each index with a per-key-type
// RWMutex (reads under RLock, mutations under Lock).
type Index interface {
	// Insert adds a key under id. Inserting an existing id replaces its
	// key. Empty keys are rejected with ErrEmptyKey.
	Insert(id ID, key vec.Vector) error
	// Remove deletes the entry with the given id. Removing an absent id
	// is a no-op.
	Remove(id ID)
	// Nearest returns the stored entry closest to key, or ok=false if
	// the index is empty.
	Nearest(key vec.Vector) (n Neighbor, ok bool)
	// KNearest returns up to k stored entries closest to key, ordered by
	// increasing distance.
	KNearest(key vec.Vector, k int) []Neighbor
	// Len returns the number of stored entries.
	Len() int
	// Metric returns the metric the index orders by.
	Metric() vec.Metric
	// Kind returns the structural kind of this index.
	Kind() Kind
	// ProbeStats reports cumulative query and probe counts (the scan
	// work done answering queries). Unlike the data structure itself,
	// the counters are atomics, safe to read while other goroutines
	// query under the cache's read lock.
	ProbeStats() ProbeStats
}

// Kind names an index structure, used when applications register key
// types (§3.7) and in experiment output.
type Kind string

// The index kinds from Figure 5 of the paper, plus the sub-linear ANN
// kinds added for million-entry scale (ROADMAP item 3).
const (
	KindLinear  Kind = "linear"  // naive enumeration (Table 2 baseline)
	KindKDTree  Kind = "kdtree"  // spatial k-d tree
	KindLSH     Kind = "lsh"     // locality-sensitive hashing
	KindTreeMap Kind = "treemap" // balanced BST over lexicographic order
	KindHash    Kind = "hash"    // exact-match hash map
	KindHNSW    Kind = "hnsw"    // hierarchical navigable-small-world graph
	KindIVF     Kind = "ivf"     // inverted file (coarse quantizer cells)
	KindHNSWPQ  Kind = "hnsw-pq" // HNSW over product-quantized key codes
	KindIVFPQ   Kind = "ivf-pq"  // IVF over product-quantized key codes
)

// Options carries per-kind tuning parameters for NewWithOptions. The
// zero value means defaults everywhere: each embedded config's zero
// fields resolve via its withDefaults.
type Options struct {
	LSH  LSHConfig
	HNSW HNSWConfig
	IVF  IVFConfig
	PQ   PQConfig
}

// New constructs an index of the given kind using metric m and default
// tuning. Dim is the expected key dimensionality; LSH uses it to size
// its projections (pass 0 to let the index learn the dimension from the
// first insert).
func New(kind Kind, m vec.Metric, dim int) (Index, error) {
	return NewWithOptions(kind, m, dim, Options{})
}

// NewWithOptions constructs an index of the given kind using metric m
// and the supplied tuning options (zero-value fields fall back to each
// kind's defaults).
func NewWithOptions(kind Kind, m vec.Metric, dim int, opts Options) (Index, error) {
	switch kind {
	case KindLinear:
		return NewLinear(m), nil
	case KindKDTree:
		return NewKDTree(m), nil
	case KindLSH:
		if opts.LSH == (LSHConfig{}) {
			opts.LSH = DefaultLSHConfig()
		}
		return NewLSH(m, dim, opts.LSH), nil
	case KindTreeMap:
		return NewTreeMap(m), nil
	case KindHash:
		return NewHash(m), nil
	case KindHNSW:
		return NewHNSW(m, opts.HNSW), nil
	case KindIVF:
		return NewIVF(m, opts.IVF), nil
	case KindHNSWPQ:
		return NewHNSWPQ(m, opts.HNSW, opts.PQ), nil
	case KindIVFPQ:
		return NewIVFPQ(m, opts.IVF, opts.PQ), nil
	}
	return nil, fmt.Errorf("index: unknown kind %q", kind)
}
