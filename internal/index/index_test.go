package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func randomVec(rng *rand.Rand, dim int) vec.Vector {
	v := make(vec.Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func allKinds() []Kind {
	return []Kind{
		KindLinear, KindKDTree, KindLSH, KindTreeMap, KindHash,
		KindHNSW, KindIVF, KindHNSWPQ, KindIVFPQ,
	}
}

func TestNewKinds(t *testing.T) {
	for _, k := range allKinds() {
		idx, err := New(k, vec.EuclideanMetric{}, 4)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if idx.Kind() != k {
			t.Errorf("New(%s).Kind() = %s", k, idx.Kind())
		}
		if idx.Len() != 0 {
			t.Errorf("New(%s).Len() = %d, want 0", k, idx.Len())
		}
	}
	if _, err := New("bogus", vec.EuclideanMetric{}, 4); err == nil {
		t.Error("New with unknown kind did not error")
	}
}

func TestEmptyIndexQueries(t *testing.T) {
	for _, k := range allKinds() {
		idx, _ := New(k, vec.EuclideanMetric{}, 3)
		if _, ok := idx.Nearest(vec.Vector{1, 2, 3}); ok {
			t.Errorf("%s: Nearest on empty index reported ok", k)
		}
		if got := idx.KNearest(vec.Vector{1, 2, 3}, 5); len(got) != 0 {
			t.Errorf("%s: KNearest on empty index = %v", k, got)
		}
		idx.Remove(42) // must not panic
	}
}

func TestInsertNearestExact(t *testing.T) {
	for _, k := range allKinds() {
		idx, _ := New(k, vec.EuclideanMetric{}, 2)
		idx.Insert(1, vec.Vector{0, 0})
		idx.Insert(2, vec.Vector{10, 0})
		idx.Insert(3, vec.Vector{0, 10})
		n, ok := idx.Nearest(vec.Vector{1, 1})
		if !ok || n.ID != 1 {
			t.Errorf("%s: Nearest = %+v, ok=%v, want ID 1", k, n, ok)
		}
		if n.Dist != math.Sqrt(2) {
			t.Errorf("%s: Dist = %v, want sqrt(2)", k, n.Dist)
		}
	}
}

func TestInsertReplacesExistingID(t *testing.T) {
	for _, k := range allKinds() {
		idx, _ := New(k, vec.EuclideanMetric{}, 2)
		idx.Insert(1, vec.Vector{0, 0})
		idx.Insert(1, vec.Vector{100, 100})
		if idx.Len() != 1 {
			t.Errorf("%s: Len after replace = %d, want 1", k, idx.Len())
		}
		n, _ := idx.Nearest(vec.Vector{99, 99})
		if n.ID != 1 || n.Key[0] != 100 {
			t.Errorf("%s: replaced key not found: %+v", k, n)
		}
	}
}

func TestRemove(t *testing.T) {
	for _, k := range allKinds() {
		idx, _ := New(k, vec.EuclideanMetric{}, 2)
		idx.Insert(1, vec.Vector{0, 0})
		idx.Insert(2, vec.Vector{5, 5})
		idx.Remove(1)
		if idx.Len() != 1 {
			t.Errorf("%s: Len after remove = %d, want 1", k, idx.Len())
		}
		n, ok := idx.Nearest(vec.Vector{0, 0})
		if !ok || n.ID != 2 {
			t.Errorf("%s: Nearest after remove = %+v", k, n)
		}
		idx.Remove(1) // double-remove is a no-op
		if idx.Len() != 1 {
			t.Errorf("%s: double remove changed Len to %d", k, idx.Len())
		}
	}
}

func TestKNearestOrdering(t *testing.T) {
	for _, k := range allKinds() {
		idx, _ := New(k, vec.EuclideanMetric{}, 1)
		for i := 1; i <= 10; i++ {
			idx.Insert(ID(i), vec.Vector{float64(i)})
		}
		got := idx.KNearest(vec.Vector{0}, 3)
		if len(got) != 3 {
			t.Fatalf("%s: KNearest returned %d results", k, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Errorf("%s: results out of order: %v", k, got)
			}
		}
		if got[0].ID != 1 {
			t.Errorf("%s: closest = %v, want ID 1", k, got[0])
		}
	}
}

func TestKNearestKLargerThanLen(t *testing.T) {
	for _, k := range allKinds() {
		idx, _ := New(k, vec.EuclideanMetric{}, 1)
		idx.Insert(1, vec.Vector{1})
		idx.Insert(2, vec.Vector{2})
		if got := idx.KNearest(vec.Vector{0}, 10); len(got) != 2 {
			t.Errorf("%s: KNearest(k=10) over 2 entries = %d results", k, len(got))
		}
		if got := idx.KNearest(vec.Vector{0}, 0); got != nil {
			t.Errorf("%s: KNearest(k=0) = %v, want nil", k, got)
		}
	}
}

// TestExactIndicesAgreeWithLinear checks that KDTree (an exact structure)
// returns identical nearest-neighbour distances to the linear reference
// under random workloads. LSH is checked separately because its Nearest
// includes a fallback that also makes it exact in this implementation.
func TestExactIndicesAgreeWithLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		lin := NewLinear(vec.EuclideanMetric{})
		kd := NewKDTree(vec.EuclideanMetric{})
		lsh := NewLSH(vec.EuclideanMetric{}, 4, DefaultLSHConfig())
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			v := randomVec(rng, 4)
			lin.Insert(ID(i), v)
			kd.Insert(ID(i), v)
			lsh.Insert(ID(i), v)
		}
		// Random removals.
		for i := 0; i < n/3; i++ {
			id := ID(rng.Intn(n))
			lin.Remove(id)
			kd.Remove(id)
			lsh.Remove(id)
		}
		for q := 0; q < 20; q++ {
			query := randomVec(rng, 4)
			nl, okL := lin.Nearest(query)
			nk, okK := kd.Nearest(query)
			if okL != okK {
				t.Fatalf("trial %d: ok mismatch linear=%v kdtree=%v", trial, okL, okK)
			}
			if okL && math.Abs(nl.Dist-nk.Dist) > 1e-9 {
				t.Errorf("trial %d: kdtree dist %v != linear dist %v", trial, nk.Dist, nl.Dist)
			}
		}
	}
}

func TestLSHRecallOnClusters(t *testing.T) {
	// Points in two tight, well-separated clusters: LSH probing must find
	// the right cluster without the fallback.
	cfg := DefaultLSHConfig()
	l := NewLSH(vec.EuclideanMetric{}, 8, cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		base := 0.0
		if i%2 == 1 {
			base = 1000
		}
		v := make(vec.Vector, 8)
		for d := range v {
			v[d] = base + rng.NormFloat64()
		}
		l.Insert(ID(i), v)
	}
	query := make(vec.Vector, 8)
	for d := range query {
		query[d] = 1000.0
	}
	res := l.ProbeOnly(query, 5)
	if len(res) == 0 {
		t.Fatal("ProbeOnly found no candidates in a dense cluster")
	}
	for _, n := range res {
		if n.ID%2 != 1 {
			t.Errorf("probe returned far-cluster point %d at dist %v", n.ID, n.Dist)
		}
	}
}

func TestTreeMapBalance(t *testing.T) {
	tm := NewTreeMap(vec.EuclideanMetric{})
	// Sorted insertion is the worst case for an unbalanced BST.
	n := 1024
	for i := 0; i < n; i++ {
		tm.Insert(ID(i), vec.Vector{float64(i)})
	}
	maxH := int(2 * math.Log2(float64(n+1)))
	if h := tm.Height(); h > maxH {
		t.Errorf("AVL height %d exceeds bound %d for %d sorted inserts", h, maxH, n)
	}
	for i := 0; i < n; i += 2 {
		tm.Remove(ID(i))
	}
	if tm.Len() != n/2 {
		t.Errorf("Len after removals = %d, want %d", tm.Len(), n/2)
	}
	if h := tm.Height(); h > maxH {
		t.Errorf("AVL height %d exceeds bound %d after removals", h, maxH)
	}
}

func TestTreeMapScalarExact(t *testing.T) {
	tm := NewTreeMap(vec.EuclideanMetric{})
	lin := NewLinear(vec.EuclideanMetric{})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := vec.Vector{rng.Float64() * 100}
		tm.Insert(ID(i), v)
		lin.Insert(ID(i), v)
	}
	for q := 0; q < 100; q++ {
		query := vec.Vector{rng.Float64() * 100}
		nt, _ := tm.Nearest(query)
		nl, _ := lin.Nearest(query)
		if math.Abs(nt.Dist-nl.Dist) > 1e-12 {
			t.Errorf("scalar treemap dist %v != linear %v", nt.Dist, nl.Dist)
		}
	}
}

func TestHashExactHit(t *testing.T) {
	h := NewHash(vec.EuclideanMetric{})
	h.Insert(1, vec.Vector{1.5, 2.5})
	h.Insert(2, vec.Vector{3.5, 4.5})
	n, ok := h.Nearest(vec.Vector{1.5, 2.5})
	if !ok || n.ID != 1 || n.Dist != 0 {
		t.Errorf("exact hit: %+v, ok=%v", n, ok)
	}
	// Miss falls back to scan.
	n, ok = h.Nearest(vec.Vector{3.4, 4.4})
	if !ok || n.ID != 2 {
		t.Errorf("approximate fallback: %+v", n)
	}
}

func TestKDTreeRebuildKeepsResults(t *testing.T) {
	kd := NewKDTree(vec.EuclideanMetric{})
	rng := rand.New(rand.NewSource(5))
	keys := make(map[ID]vec.Vector)
	for i := 0; i < 400; i++ {
		v := randomVec(rng, 3)
		kd.Insert(ID(i), v)
		keys[ID(i)] = v
	}
	// Remove enough to force a rebuild (dead > size).
	for i := 0; i < 300; i++ {
		kd.Remove(ID(i))
		delete(keys, ID(i))
	}
	if kd.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", kd.Len(), len(keys))
	}
	lin := NewLinear(vec.EuclideanMetric{})
	for id, v := range keys {
		lin.Insert(id, v)
	}
	for q := 0; q < 50; q++ {
		query := randomVec(rng, 3)
		nk, _ := kd.Nearest(query)
		nl, _ := lin.Nearest(query)
		if math.Abs(nk.Dist-nl.Dist) > 1e-9 {
			t.Errorf("post-rebuild dist %v != linear %v", nk.Dist, nl.Dist)
		}
	}
}

// Property: for any batch of keys, the KD-tree 1-NN distance equals the
// brute-force minimum distance.
func TestKDTreeNearestProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		kd := NewKDTree(vec.EuclideanMetric{})
		pts := make([]vec.Vector, n)
		for i := 0; i < n; i++ {
			pts[i] = randomVec(rng, 3)
			kd.Insert(ID(i), pts[i])
		}
		query := randomVec(rng, 3)
		got, ok := kd.Nearest(query)
		if !ok {
			return false
		}
		want := math.Inf(1)
		for _, p := range pts {
			if d := (vec.EuclideanMetric{}).Distance(query, p); d < want {
				want = d
			}
		}
		return math.Abs(got.Dist-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: KNearest(k) distances are non-decreasing for every kind.
func TestKNearestMonotoneProperty(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		f := func(seed int64, nRaw, kRaw uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			n := int(nRaw%80) + 1
			k := int(kRaw%10) + 1
			idx, _ := New(kind, vec.EuclideanMetric{}, 3)
			for i := 0; i < n; i++ {
				idx.Insert(ID(i), randomVec(rng, 3))
			}
			res := idx.KNearest(randomVec(rng, 3), k)
			for i := 1; i < len(res); i++ {
				if res[i].Dist < res[i-1].Dist {
					return false
				}
			}
			return len(res) <= k
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}
