package index

import (
	"errors"
	"testing"

	"repro/internal/vec"
)

// TestInsertRejectsEmptyKey: every index kind must refuse a
// zero-dimension key with the typed sentinel. The KD-tree used to crash
// on it (split-axis selection divides by the key length); the other
// kinds silently indexed an unmatchable vector.
func TestInsertRejectsEmptyKey(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(string(kind), func(t *testing.T) {
			idx, err := New(kind, vec.EuclideanMetric{}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Insert(1, vec.Vector{}); !errors.Is(err, ErrEmptyKey) {
				t.Errorf("Insert(empty) = %v, want ErrEmptyKey", err)
			}
			if got := idx.Len(); got != 0 {
				t.Errorf("Len = %d after rejected insert, want 0", got)
			}
			if err := idx.Insert(1, vec.Vector{1, 2}); err != nil {
				t.Errorf("Insert(valid) = %v", err)
			}
			if got := idx.Len(); got != 1 {
				t.Errorf("Len = %d after valid insert, want 1", got)
			}
		})
	}
}
