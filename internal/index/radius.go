package index

import (
	"repro/internal/vec"
)

// RadiusSearcher is implemented by indices that support range searches
// ("KD-trees and LSHs are data structures to support spatial indexing
// and efficient nearest neighbor and range searches", §4.2). Radius
// returns every stored entry within distance r of key, ordered by
// increasing distance.
type RadiusSearcher interface {
	Radius(key vec.Vector, r float64) []Neighbor
}

// Radius performs a range search on any index: natively when the index
// implements RadiusSearcher, otherwise by filtering a full KNearest.
func Radius(idx Index, key vec.Vector, r float64) []Neighbor {
	if rs, ok := idx.(RadiusSearcher); ok {
		return rs.Radius(key, r)
	}
	all := idx.KNearest(key, idx.Len())
	cut := len(all)
	for i, n := range all {
		if n.Dist > r {
			cut = i
			break
		}
	}
	return all[:cut]
}

// Radius implements RadiusSearcher for the linear index.
func (l *Linear) Radius(key vec.Vector, r float64) []Neighbor {
	l.countQuery(len(l.keys))
	out := make([]Neighbor, 0, 8)
	for id, k := range l.keys {
		if d := l.metric.Distance(key, k); d <= r {
			out = append(out, Neighbor{ID: id, Key: k, Dist: d})
		}
	}
	sortNeighbors(out)
	return out
}

// Radius implements RadiusSearcher for the KD-tree with subtree pruning
// (exact for Lp metrics; full traversal otherwise).
func (t *KDTree) Radius(key vec.Vector, r float64) []Neighbor {
	var out []Neighbor
	visited := 0
	var walk func(n *kdNode)
	walk = func(n *kdNode) {
		if n == nil {
			return
		}
		visited++
		if !n.deleted {
			if d := t.metric.Distance(key, n.key); d <= r {
				out = append(out, Neighbor{ID: n.id, Key: n.key, Dist: d})
			}
		}
		ax := axisAbsDiff(key, n.key, n.axis)
		goLeft := axisLess(key, n.key, n.axis)
		if goLeft {
			walk(n.left)
			if !t.prunable || ax <= r {
				walk(n.right)
			}
		} else {
			walk(n.right)
			if !t.prunable || ax <= r {
				walk(n.left)
			}
		}
	}
	walk(t.root)
	t.countQuery(visited)
	sortNeighbors(out)
	return out
}

// Radius implements RadiusSearcher for LSH: bucket candidates are ranked
// exactly, and when probing finds nothing the scan fallback keeps the
// result complete (mirroring KNearest's contract).
func (l *LSH) Radius(key vec.Vector, r float64) []Neighbor {
	cand := l.candidates(key)
	if len(cand) == 0 {
		for id := range l.keys {
			cand[id] = struct{}{}
		}
	}
	l.countQuery(len(cand))
	out := make([]Neighbor, 0, len(cand))
	for id := range cand {
		k := l.keys[id]
		if d := l.metric.Distance(key, k); d <= r {
			out = append(out, Neighbor{ID: id, Key: k, Dist: d})
		}
	}
	sortNeighbors(out)
	return out
}
