package index

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/vec"
)

// IVF is an inverted-file index, the coarse-quantization half of ROADMAP
// item 3: a k-means-lite coarse quantizer (trained online from the first
// TrainAfter inserts, seeded and deterministic) partitions the key space
// into cells; each stored entry lives in the member list of its nearest
// centroid, and a query scans only the NProbe nearest cells instead of
// every entry. Until training, the index is an exact linear scan — small
// deployments never pay for approximation they don't need.
//
// Returned distances are exact: candidates found by cell scans are
// re-ranked against uncompressed vectors (see reRank), so approximation
// affects WHICH entries are considered, never the distance a threshold
// decision sees.
//
// Like every other kind, IVF is not internally synchronized: the cache
// guards it with a per-key-type RWMutex. Queries allocate their own
// candidate buffers, so any number of readers may search concurrently
// under RLock while mutations take the write lock.
type IVF struct {
	probeCounter
	metric vec.Metric
	cfg    IVFConfig
	store  vecStore
	// pending holds ids inserted before training (scanned linearly).
	pending map[ID]struct{}
	order   []ID // insertion order of pending ids (training determinism)
	// trained state
	centroids []vec.Vector
	cells     [][]ID
	// cellRadius[c] is an upper bound on the distance from centroid c to
	// any member (stale after removals — still a valid upper bound).
	cellRadius []float64
	cellOf     map[ID]int
	dim        int
	triangle   bool // metric satisfies the triangle inequality
}

// IVFConfig parameterizes the inverted file.
type IVFConfig struct {
	// Cells is the number of coarse cells (k-means centroids).
	Cells int
	// NProbe is how many nearest cells a query scans. Queries expand
	// beyond NProbe only when they would otherwise return fewer than k
	// results.
	NProbe int
	// TrainAfter is how many inserts are buffered (and scanned exactly)
	// before the coarse quantizer is trained.
	TrainAfter int
	// Iters is the number of Lloyd iterations for centroid training.
	Iters int
	// Seed makes training deterministic: the same insert sequence always
	// builds the same cells (crash recovery replays puts in log order
	// and must answer identically).
	Seed int64
}

// DefaultIVFConfig returns parameters giving recall@1 >= 0.95 on the
// correlated feature-vector workloads the cache serves.
func DefaultIVFConfig() IVFConfig {
	return IVFConfig{Cells: 256, NProbe: 16, TrainAfter: 4096, Iters: 5, Seed: 1}
}

func (c IVFConfig) withDefaults() IVFConfig {
	d := DefaultIVFConfig()
	if c.Cells <= 0 {
		c.Cells = d.Cells
	}
	if c.NProbe <= 0 {
		c.NProbe = d.NProbe
	}
	if c.TrainAfter <= 0 {
		c.TrainAfter = d.TrainAfter
	}
	if c.Iters <= 0 {
		c.Iters = d.Iters
	}
	return c
}

// NewIVF returns an empty IVF index with uncompressed key storage.
func NewIVF(m vec.Metric, cfg IVFConfig) *IVF {
	return newIVF(m, cfg, newFlatStore(m))
}

// NewIVFPQ returns an empty IVF index whose keys are stored as
// product-quantization codes (see pq.go): cell scans score candidates
// via asymmetric distance tables and the top candidates are re-ranked
// exactly.
func NewIVFPQ(m vec.Metric, cfg IVFConfig, pq PQConfig) *IVF {
	return newIVF(m, cfg, newPQStore(m, pq))
}

func newIVF(m vec.Metric, cfg IVFConfig, store vecStore) *IVF {
	_, e := m.(vec.EuclideanMetric)
	_, mh := m.(vec.ManhattanMetric)
	_, ch := m.(vec.ChebyshevMetric)
	return &IVF{
		metric:   m,
		cfg:      cfg.withDefaults(),
		store:    store,
		pending:  make(map[ID]struct{}),
		cellOf:   make(map[ID]int),
		triangle: e || mh || ch,
	}
}

// SetKeyResolver implements ResolverSetter (see HNSW.SetKeyResolver).
func (iv *IVF) SetKeyResolver(r KeyResolver) {
	if pq, ok := iv.store.(*pqStore); ok {
		pq.setResolver(r)
	}
}

// KeyBytes implements MemoryReporter.
func (iv *IVF) KeyBytes() int64 { return iv.store.keyBytes() }

// Insert implements Index.
func (iv *IVF) Insert(id ID, key vec.Vector) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	iv.Remove(id)
	key = key.Clone()
	iv.store.add(id, key)
	if iv.dim == 0 {
		iv.dim = len(key)
	}
	if iv.centroids == nil {
		iv.pending[id] = struct{}{}
		iv.order = append(iv.order, id)
		if len(iv.order) >= iv.cfg.TrainAfter {
			iv.train()
		}
		return nil
	}
	iv.assign(id, key)
	return nil
}

// assign places an entry into its nearest cell and widens that cell's
// radius bound.
func (iv *IVF) assign(id ID, key vec.Vector) {
	best, bestD := 0, math.Inf(1)
	for c, cent := range iv.centroids {
		if d := iv.metric.Distance(key, cent); d < bestD {
			best, bestD = c, d
		}
	}
	iv.cells[best] = append(iv.cells[best], id)
	iv.cellOf[id] = best
	if bestD > iv.cellRadius[best] {
		iv.cellRadius[best] = bestD
	}
}

// train fits the coarse quantizer on the buffered entries (insertion
// order, seeded — deterministic) and distributes every entry to a cell.
func (iv *IVF) train() {
	samples := make([]vec.Vector, 0, len(iv.order))
	ids := make([]ID, 0, len(iv.order))
	for _, id := range iv.order {
		v, ok := iv.store.exact(id)
		if !ok || len(v) != iv.dim {
			continue
		}
		samples = append(samples, v)
		ids = append(ids, id)
	}
	if len(samples) == 0 {
		return
	}
	k := iv.cfg.Cells
	if k > len(samples) {
		k = len(samples)
	}
	iv.centroids = kmeansCentroids(samples, iv.dim, k, iv.cfg.Iters, iv.cfg.Seed)
	iv.cells = make([][]ID, len(iv.centroids))
	iv.cellRadius = make([]float64, len(iv.centroids))
	for i, id := range ids {
		iv.assign(id, samples[i])
	}
	// Entries whose dimensionality differs from the trained space cannot
	// be assigned by distance; they join cell 0 with an unbounded radius
	// so every radius query still reaches them.
	for _, id := range iv.order {
		if _, ok := iv.cellOf[id]; ok {
			continue
		}
		if _, ok := iv.pending[id]; !ok {
			continue
		}
		iv.cells[0] = append(iv.cells[0], id)
		iv.cellOf[id] = 0
		iv.cellRadius[0] = math.Inf(1)
	}
	iv.pending = make(map[ID]struct{})
	iv.order = nil
}

// kmeansCentroids runs seeded k-means-lite over full vectors: sampled
// initial centroids, Iters Lloyd rounds, dead cells re-seeded.
func kmeansCentroids(samples []vec.Vector, dim, k, iters int, seed int64) []vec.Vector {
	rng := rand.New(rand.NewSource(seed))
	cents := make([]vec.Vector, k)
	for c := range cents {
		cents[c] = samples[rng.Intn(len(samples))].Clone()
	}
	counts := make([]int, k)
	sums := make([]vec.Vector, k)
	for c := range sums {
		sums[c] = make(vec.Vector, dim)
	}
	for it := 0; it < iters; it++ {
		for c := range cents {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for _, v := range samples {
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				var d float64
				for j := 0; j < dim; j++ {
					x := v[j] - cent[j]
					d += x * x
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			counts[best]++
			for j := 0; j < dim; j++ {
				sums[best][j] += v[j]
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				cents[c] = samples[rng.Intn(len(samples))].Clone()
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < dim; j++ {
				cents[c][j] = sums[c][j] * inv
			}
		}
	}
	return cents
}

// Remove implements Index: drop the entry from its cell member list. The
// cell radius bound is left as is (removal can only shrink the true
// radius, so the stale bound stays valid).
func (iv *IVF) Remove(id ID) {
	if _, ok := iv.pending[id]; ok {
		delete(iv.pending, id)
		for i, oid := range iv.order {
			if oid == id {
				iv.order = append(iv.order[:i], iv.order[i+1:]...)
				break
			}
		}
		iv.store.remove(id)
		return
	}
	c, ok := iv.cellOf[id]
	if !ok {
		return
	}
	delete(iv.cellOf, id)
	members := iv.cells[c]
	for i, mid := range members {
		if mid == id {
			iv.cells[c] = append(members[:i], members[i+1:]...)
			break
		}
	}
	iv.store.remove(id)
}

// cellDist is one cell ranked by query-to-centroid distance.
type cellDist struct {
	cell int
	dist float64
}

// rankCells orders all cells by distance from the query, counting each
// centroid comparison as a probe.
func (iv *IVF) rankCells(key vec.Vector, visited *int) []cellDist {
	ranked := make([]cellDist, len(iv.centroids))
	for c, cent := range iv.centroids {
		ranked[c] = cellDist{c, iv.metric.Distance(key, cent)}
	}
	*visited += len(iv.centroids)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].dist != ranked[j].dist {
			return ranked[i].dist < ranked[j].dist
		}
		return ranked[i].cell < ranked[j].cell
	})
	return ranked
}

// Nearest implements Index.
func (iv *IVF) Nearest(key vec.Vector) (Neighbor, bool) {
	n, _, ok := iv.NearestProbed(key)
	return n, ok
}

// NearestProbed implements ProbedSearcher.
func (iv *IVF) NearestProbed(key vec.Vector) (Neighbor, int, bool) {
	res, probes := iv.KNearestProbed(key, 1)
	if len(res) == 0 {
		return Neighbor{}, probes, false
	}
	return res[0], probes, true
}

// KNearest implements Index.
func (iv *IVF) KNearest(key vec.Vector, k int) []Neighbor {
	ns, _ := iv.KNearestProbed(key, k)
	return ns
}

// KNearestProbed implements ProbedSearcher: probes count centroid
// comparisons plus scanned cell members. If the NProbe nearest cells
// hold fewer than k entries the scan widens until k are found or every
// cell has been read, so small or skewed indexes never return short.
func (iv *IVF) KNearestProbed(key vec.Vector, k int) ([]Neighbor, int) {
	if k <= 0 || iv.Len() == 0 {
		return nil, 0
	}
	visited := 0
	score := iv.store.scorer(key)
	var cands []Neighbor
	if iv.centroids == nil {
		for id := range iv.pending {
			cands = append(cands, Neighbor{ID: id, Dist: score(id)})
			visited++
		}
	} else {
		ranked := iv.rankCells(key, &visited)
		scanned := 0
		for _, rc := range ranked {
			if scanned >= iv.cfg.NProbe && len(cands) >= k {
				break
			}
			for _, id := range iv.cells[rc.cell] {
				cands = append(cands, Neighbor{ID: id, Dist: score(id)})
			}
			visited += len(iv.cells[rc.cell])
			scanned++
		}
	}
	iv.countQuery(visited)
	extra := 0
	if pq, ok := iv.store.(*pqStore); ok {
		extra = pq.cfg.ReRank
	}
	return reRank(iv.store, iv.metric, key, cands, k, extra), visited
}

// Radius implements RadiusSearcher. For metrics satisfying the triangle
// inequality the scan is exact: a cell can hold an entry within r of the
// query only if dist(query, centroid) <= r + cellRadius, so all other
// cells are skipped. For other metrics (cosine) every cell is scanned.
// Distances are re-ranked exactly before the radius cut, so no
// out-of-radius result is ever returned.
func (iv *IVF) Radius(key vec.Vector, r float64) []Neighbor {
	if iv.Len() == 0 {
		return nil
	}
	visited := 0
	score := iv.store.scorer(key)
	var cands []Neighbor
	if iv.centroids == nil {
		for id := range iv.pending {
			cands = append(cands, Neighbor{ID: id, Dist: score(id)})
			visited++
		}
	} else {
		for c, cent := range iv.centroids {
			visited++
			if iv.triangle && iv.metric.Distance(key, cent) > r+iv.cellRadius[c] {
				continue
			}
			for _, id := range iv.cells[c] {
				cands = append(cands, Neighbor{ID: id, Dist: score(id)})
			}
			visited += len(iv.cells[c])
		}
	}
	iv.countQuery(visited)
	extra := 0
	if pq, ok := iv.store.(*pqStore); ok {
		extra = pq.cfg.ReRank
	}
	res := reRank(iv.store, iv.metric, key, cands, len(cands), extra)
	cut := len(res)
	for i, n := range res {
		if n.Dist > r {
			cut = i
			break
		}
	}
	return res[:cut]
}

// Len implements Index.
func (iv *IVF) Len() int { return len(iv.pending) + len(iv.cellOf) }

// Metric implements Index.
func (iv *IVF) Metric() vec.Metric { return iv.metric }

// Kind implements Index.
func (iv *IVF) Kind() Kind {
	if _, ok := iv.store.(*pqStore); ok {
		return KindIVFPQ
	}
	return KindIVF
}
