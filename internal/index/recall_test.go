package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// clusteredCorpus generates the correlated workload the cache actually
// serves (ISSUE 9 / "Ascent Similarity Caching with Approximate
// Indexes"): points drawn around a modest number of cluster centers, the
// regime where ANN recall matters.
func clusteredCorpus(rng *rand.Rand, n, dim, clusters int, spread float64) []vec.Vector {
	centers := make([]vec.Vector, clusters)
	for i := range centers {
		centers[i] = make(vec.Vector, dim)
		for d := range centers[i] {
			centers[i][d] = rng.NormFloat64() * 100
		}
	}
	out := make([]vec.Vector, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		v := make(vec.Vector, dim)
		for d := range v {
			v[d] = c[d] + rng.NormFloat64()*spread
		}
		out[i] = v
	}
	return out
}

// trainedOptions sizes training thresholds below the corpus so IVF cells
// and PQ codebooks actually train (the approximate regime under test).
func trainedOptions() Options {
	return Options{
		IVF: IVFConfig{TrainAfter: 1024},
		PQ:  PQConfig{TrainSize: 512},
	}
}

// TestApproximateRecallVsLinear: every approximate kind must find the
// true nearest neighbour for at least a per-kind fraction of queries
// (recall@1), and every returned distance must be the exact metric
// distance to the returned key — never a quantized estimate (the
// distances feed threshold decisions).
func TestApproximateRecallVsLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("recall measurement is not short")
	}
	const (
		n       = 4000
		dim     = 16
		queries = 300
	)
	floors := map[Kind]float64{
		KindLSH:    0.95,
		KindHNSW:   0.95,
		KindIVF:    0.95,
		KindHNSWPQ: 0.95,
		KindIVFPQ:  0.95,
	}
	rng := rand.New(rand.NewSource(41))
	corpus := clusteredCorpus(rng, n, dim, 64, 2.0)
	metric := vec.EuclideanMetric{}
	lin := NewLinear(metric)
	for i, v := range corpus {
		if err := lin.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([]vec.Vector, queries)
	for i := range qs {
		base := corpus[rng.Intn(n)]
		q := base.Clone()
		for d := range q {
			q[d] += rng.NormFloat64() * 0.5
		}
		qs[i] = q
	}
	for kind, floor := range floors {
		t.Run(string(kind), func(t *testing.T) {
			idx, err := NewWithOptions(kind, metric, dim, trainedOptions())
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range corpus {
				if err := idx.Insert(ID(i), v); err != nil {
					t.Fatal(err)
				}
			}
			hits := 0
			for _, q := range qs {
				want, _ := lin.Nearest(q)
				got, ok := idx.Nearest(q)
				if !ok {
					t.Fatal("Nearest returned no result on a populated index")
				}
				// Distances must be exact post-re-rank: recomputing the
				// metric against the returned key reproduces Dist, and no
				// approximate result can beat the exact optimum.
				if got.Key == nil {
					t.Fatalf("result has no key: %+v", got)
				}
				if d := metric.Distance(q, got.Key); math.Abs(d-got.Dist) > 1e-9 {
					t.Fatalf("Dist %v is not the exact distance %v to the returned key", got.Dist, d)
				}
				if got.Dist < want.Dist-1e-9 {
					t.Fatalf("approximate dist %v beats exact optimum %v", got.Dist, want.Dist)
				}
				if got.ID == want.ID || math.Abs(got.Dist-want.Dist) <= 1e-9 {
					hits++
				}
			}
			recall := float64(hits) / float64(len(qs))
			t.Logf("%s recall@1 = %.3f over %d queries", kind, recall, len(qs))
			if recall < floor {
				t.Errorf("recall@1 = %.3f below floor %.2f", recall, floor)
			}
		})
	}
}

// TestPQMemoryReduction: with a KeyResolver attached (the cache-core
// deployment, where the members table already holds every exact vector)
// the PQ store must shrink per-entry key memory at least 8x vs flat
// float64 storage, while still answering with exact distances. Run at
// the coarse dim/4 subspace setting: the default one-byte-per-dimension
// codes compress the payload exactly 8x (so total memory approaches 8x
// only as the fixed codebook amortizes), while dim/4 trades in-cluster
// ranking resolution for 32x codes — the high-compression end of the
// knob this test pins down.
func TestPQMemoryReduction(t *testing.T) {
	const (
		n   = 8192
		dim = 16
	)
	rng := rand.New(rand.NewSource(17))
	corpus := clusteredCorpus(rng, n, dim, 64, 2.0)
	metric := vec.EuclideanMetric{}

	members := make(map[ID]vec.Vector, n)
	idx := NewIVFPQ(metric, IVFConfig{TrainAfter: 1024}, PQConfig{Subspaces: dim / 4, TrainSize: 512, KeepRecent: 128})
	idx.SetKeyResolver(func(id ID) (vec.Vector, bool) {
		v, ok := members[id]
		return v, ok
	})
	for i, v := range corpus {
		if err := idx.Insert(ID(i), v); err != nil {
			t.Fatal(err)
		}
		members[ID(i)] = v
	}
	flatBytes := int64(n * dim * 8)
	pqBytes := idx.KeyBytes()
	ratio := float64(flatBytes) / float64(pqBytes)
	t.Logf("flat %d B, pq %d B, reduction %.1fx (%.1f B/entry)",
		flatBytes, pqBytes, ratio, float64(pqBytes)/float64(n))
	if ratio < 8 {
		t.Errorf("PQ key storage reduction %.1fx, want >= 8x", ratio)
	}

	// Exactness survives the compression: recompute distances.
	for q := 0; q < 50; q++ {
		query := corpus[rng.Intn(n)].Clone()
		for d := range query {
			query[d] += rng.NormFloat64() * 0.5
		}
		got, ok := idx.Nearest(query)
		if !ok {
			t.Fatal("no result")
		}
		if d := metric.Distance(query, got.Key); math.Abs(d-got.Dist) > 1e-9 {
			t.Fatalf("Dist %v != exact %v with resolver-backed store", got.Dist, d)
		}
	}
}

// TestRadiusApproximateKindsNeverInvent: HNSW/IVF range results must be
// a subset of the exact radius set (approximation may miss, never
// invent), and IVF's triangle-inequality pruning must be exact for Lp
// metrics.
func TestRadiusApproximateKindsNeverInvent(t *testing.T) {
	const (
		n   = 3000
		dim = 8
	)
	rng := rand.New(rand.NewSource(29))
	corpus := clusteredCorpus(rng, n, dim, 32, 2.0)
	metric := vec.EuclideanMetric{}
	lin := NewLinear(metric)
	for i, v := range corpus {
		lin.Insert(ID(i), v)
	}
	for _, kind := range []Kind{KindHNSW, KindIVF, KindHNSWPQ, KindIVFPQ} {
		idx, err := NewWithOptions(kind, metric, dim, trainedOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range corpus {
			idx.Insert(ID(i), v)
		}
		for q := 0; q < 30; q++ {
			query := corpus[rng.Intn(n)].Clone()
			for d := range query {
				query[d] += rng.NormFloat64()
			}
			r := 2.0 + rng.Float64()*4
			want := lin.Radius(query, r)
			wantSet := make(map[ID]bool, len(want))
			for _, w := range want {
				wantSet[w.ID] = true
			}
			got := Radius(idx, query, r)
			for _, g := range got {
				if !wantSet[g.ID] {
					t.Fatalf("%s: out-of-radius result %+v (r=%v)", kind, g, r)
				}
				if d := metric.Distance(query, g.Key); math.Abs(d-g.Dist) > 1e-9 {
					t.Fatalf("%s: radius Dist %v != exact %v", kind, g.Dist, d)
				}
			}
			// IVF with a triangle-inequality metric is exact, not
			// merely a subset.
			if kind == KindIVF && len(got) != len(want) {
				t.Fatalf("ivf: radius returned %d of %d exact results", len(got), len(want))
			}
		}
	}
}
