package index

import (
	"sync/atomic"

	"repro/internal/vec"
)

// ProbedSearcher is the per-query view of the probe counters: every
// index kind already computes the number of entries (or tree nodes) it
// examined to answer a query — it feeds countQuery — so returning that
// count to the caller is free. Span tracing uses it to attribute probe
// work to individual lookups instead of only to the aggregate counters.
// All kinds implement it.
type ProbedSearcher interface {
	// NearestProbed is Nearest plus the entries examined by this query.
	NearestProbed(key vec.Vector) (Neighbor, int, bool)
	// KNearestProbed is KNearest plus the entries examined.
	KNearestProbed(key vec.Vector, k int) ([]Neighbor, int)
}

// ProbeStats reports how much work an index has done answering queries:
// Queries counts Nearest/KNearest/Radius calls, Probes the entries (or
// tree nodes) examined to answer them. Probes/Queries is the average
// scan size — the number Table 2 of the paper compares across index
// kinds (a linear index probes Len() per query, a KD-tree O(log N), an
// LSH its candidate bucket set). The counters are atomics: indices are
// queried under a read lock by many goroutines at once, so plain ints
// would race.
type ProbeStats struct {
	Queries int64 `json:"queries"`
	Probes  int64 `json:"probes"`
}

var (
	_ ProbedSearcher = (*Linear)(nil)
	_ ProbedSearcher = (*Hash)(nil)
	_ ProbedSearcher = (*KDTree)(nil)
	_ ProbedSearcher = (*LSH)(nil)
	_ ProbedSearcher = (*TreeMap)(nil)
	_ ProbedSearcher = (*HNSW)(nil)
	_ ProbedSearcher = (*IVF)(nil)
)

var (
	_ RadiusSearcher = (*Linear)(nil)
	_ RadiusSearcher = (*KDTree)(nil)
	_ RadiusSearcher = (*LSH)(nil)
	_ RadiusSearcher = (*HNSW)(nil)
	_ RadiusSearcher = (*IVF)(nil)
)

var (
	_ ResolverSetter = (*HNSW)(nil)
	_ ResolverSetter = (*IVF)(nil)
	_ MemoryReporter = (*HNSW)(nil)
	_ MemoryReporter = (*IVF)(nil)
)

// probeCounter is embedded by every index implementation to satisfy
// Index.ProbeStats with shared counting plumbing.
type probeCounter struct {
	queries atomic.Int64
	probes  atomic.Int64
}

// countQuery records one query that examined n entries.
func (p *probeCounter) countQuery(n int) {
	p.queries.Add(1)
	p.probes.Add(int64(n))
}

// ProbeStats implements Index.
func (p *probeCounter) ProbeStats() ProbeStats {
	return ProbeStats{Queries: p.queries.Load(), Probes: p.probes.Load()}
}
