package index

import "sync/atomic"

// ProbeStats reports how much work an index has done answering queries:
// Queries counts Nearest/KNearest/Radius calls, Probes the entries (or
// tree nodes) examined to answer them. Probes/Queries is the average
// scan size — the number Table 2 of the paper compares across index
// kinds (a linear index probes Len() per query, a KD-tree O(log N), an
// LSH its candidate bucket set). The counters are atomics: indices are
// queried under a read lock by many goroutines at once, so plain ints
// would race.
type ProbeStats struct {
	Queries int64 `json:"queries"`
	Probes  int64 `json:"probes"`
}

// probeCounter is embedded by every index implementation to satisfy
// Index.ProbeStats with shared counting plumbing.
type probeCounter struct {
	queries atomic.Int64
	probes  atomic.Int64
}

// countQuery records one query that examined n entries.
func (p *probeCounter) countQuery(n int) {
	p.queries.Add(1)
	p.probes.Add(int64(n))
}

// ProbeStats implements Index.
func (p *probeCounter) ProbeStats() ProbeStats {
	return ProbeStats{Queries: p.queries.Load(), Probes: p.probes.Load()}
}
