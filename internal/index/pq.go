package index

import (
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Product quantization (pq) is the key-storage half of the sub-linear
// index work (ROADMAP item 3, grounded in "Ascent Similarity Caching
// with Approximate Indexes"): at 10^6 entries per (function, key-type)
// the raw float64 feature vectors dominate RAM. A product quantizer
// splits each vector into M subspaces, learns a 256-centroid codebook
// per subspace from the first TrainSize inserts (k-means-lite, seeded,
// deterministic), and thereafter stores one byte per subspace instead
// of 8 bytes per dimension — an 8x reduction at subspace width 1,
// 32x at width 4. Queries score candidates with an asymmetric distance
// table (query vs codebook centroids, computed once per query), and the
// top candidates are re-ranked against uncompressed vectors so the
// distances an index returns — the inputs to every threshold decision —
// are exact, never quantized estimates.
//
// Where the uncompressed vectors come from depends on how the index is
// deployed. Inside the cache core, every key already lives uncompressed
// in the per-key-type members table (guarded by the same RWMutex as the
// index), so the core attaches a KeyResolver and the pq store keeps only
// codes plus a small cache of the most recently inserted vectors (the
// likeliest re-rank targets under correlated feeds). Standalone — in
// tests, experiments, benchmarks — no resolver is attached and the store
// retains every vector itself: exactness is preserved, the memory win
// applies only when a resolver supplies the uncompressed copies.

// PQConfig parameterizes the product-quantized key store.
type PQConfig struct {
	// Subspaces is the number of sub-quantizers M (one code byte each).
	// 0 means one sub-quantizer per dimension — an 8x compression of
	// the float64 payload that keeps enough resolution to rank
	// within-cluster candidates at 10^5+ entries. Coarser settings
	// (dim/2, dim/4, ...) compress up to 32x but lose ranking
	// resolution inside dense clusters, costing recall at scale.
	Subspaces int
	// TrainSize is how many inserted vectors are buffered uncompressed
	// before the codebooks are trained. Until then the store is exact.
	TrainSize int
	// Iters is the number of Lloyd iterations per codebook.
	Iters int
	// Seed makes codebook training deterministic.
	Seed int64
	// KeepRecent bounds the uncompressed cache of recently inserted
	// vectors kept for re-ranking when a KeyResolver is attached (the
	// "small uncompressed cache"; without a resolver every vector is
	// retained and this is ignored).
	KeepRecent int
	// ReRank is how many top candidates (beyond k) are re-ranked with
	// exact distances after approximate scoring.
	ReRank int
}

// DefaultPQConfig returns parameters suited to the feature vectors of
// the paper's workloads (tens to hundreds of dimensions).
func DefaultPQConfig() PQConfig {
	return PQConfig{TrainSize: 4096, Iters: 6, Seed: 1, KeepRecent: 1024, ReRank: 64}
}

func (c PQConfig) withDefaults() PQConfig {
	d := DefaultPQConfig()
	if c.TrainSize <= 0 {
		c.TrainSize = d.TrainSize
	}
	if c.Iters <= 0 {
		c.Iters = d.Iters
	}
	if c.KeepRecent <= 0 {
		c.KeepRecent = d.KeepRecent
	}
	if c.ReRank <= 0 {
		c.ReRank = d.ReRank
	}
	return c
}

// KeyResolver supplies the exact stored vector for an id from outside
// the index — in the cache core, from the per-key-type members table.
// It is called with the same lock held that guards the index itself.
type KeyResolver func(id ID) (vec.Vector, bool)

// ResolverSetter is implemented by indexes whose key store can delegate
// exact-vector storage to the caller. The cache core attaches a resolver
// over its members table at registration, letting a PQ-backed store drop
// full vectors and keep only codes.
type ResolverSetter interface {
	SetKeyResolver(KeyResolver)
}

// MemoryReporter reports the in-memory footprint of an index's key
// storage, used by the memory-per-entry benchmarks and the space
// accounting in experiments.
type MemoryReporter interface {
	// KeyBytes returns the approximate bytes held to store key vectors
	// (codes, uncompressed buffers, and codebooks; graph/cell structure
	// overhead excluded).
	KeyBytes() int64
}

// quantizer is the trained product-quantization codec: M sub-codebooks
// of up to 256 centroids each over contiguous subspaces of the key.
type quantizer struct {
	dim    int
	m      int // subspaces
	subdim int // ceil(dim/m); the last subspace may be narrower
	k      int // centroids per codebook (<= 256)
	// books[s] holds codebook s as k centroids of subwidth(s) floats,
	// flattened.
	books [][]float64
}

func (q *quantizer) substart(s int) int { return s * q.subdim }

func (q *quantizer) subwidth(s int) int {
	w := q.dim - s*q.subdim
	if w > q.subdim {
		w = q.subdim
	}
	return w
}

// trainQuantizer learns codebooks from samples (all of dimension dim)
// with seeded k-means. Deterministic: same samples in the same order and
// the same seed produce bitwise-identical codebooks.
func trainQuantizer(samples []vec.Vector, dim, subspaces, iters int, seed int64) *quantizer {
	m := subspaces
	if m <= 0 {
		m = dim
	}
	if m > dim {
		m = dim
	}
	subdim := (dim + m - 1) / m
	// With subdim-wide subspaces, fewer than m may be needed (e.g.
	// dim=11, m=7 gives subdim=2 and only 6 non-empty subspaces).
	m = (dim + subdim - 1) / subdim
	q := &quantizer{dim: dim, m: m, subdim: subdim}
	q.k = 256
	if len(samples) < q.k {
		q.k = len(samples)
	}
	rng := rand.New(rand.NewSource(seed))
	q.books = make([][]float64, m)
	for s := 0; s < m; s++ {
		q.books[s] = trainCodebook(samples, q.substart(s), q.subwidth(s), q.k, iters, rng)
	}
	return q
}

// trainCodebook runs k-means-lite over one subspace: seeded sampling for
// the initial centroids, a few Lloyd iterations, empty cells re-seeded
// from the sample set.
func trainCodebook(samples []vec.Vector, start, width, k, iters int, rng *rand.Rand) []float64 {
	book := make([]float64, k*width)
	for c := 0; c < k; c++ {
		src := samples[rng.Intn(len(samples))]
		copy(book[c*width:(c+1)*width], src[start:start+width])
	}
	assign := make([]int, len(samples))
	counts := make([]int, k)
	sums := make([]float64, k*width)
	for it := 0; it < iters; it++ {
		for i := range counts {
			counts[i] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		for i, v := range samples {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				var d float64
				row := book[c*width:]
				for j := 0; j < width; j++ {
					x := v[start+j] - row[j]
					d += x * x
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			counts[best]++
			row := sums[best*width:]
			for j := 0; j < width; j++ {
				row[j] += v[start+j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed dead centroids deterministically.
				src := samples[rng.Intn(len(samples))]
				copy(book[c*width:(c+1)*width], src[start:start+width])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < width; j++ {
				book[c*width+j] = sums[c*width+j] * inv
			}
		}
	}
	return book
}

// encode maps v (of dimension q.dim) to its code bytes.
func (q *quantizer) encode(v vec.Vector) []byte {
	code := make([]byte, q.m)
	for s := 0; s < q.m; s++ {
		start, width := q.substart(s), q.subwidth(s)
		book := q.books[s]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < q.k; c++ {
			var d float64
			row := book[c*width:]
			for j := 0; j < width; j++ {
				x := v[start+j] - row[j]
				d += x * x
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		code[s] = byte(best)
	}
	return code
}

// decode reconstructs the centroid vector of a code.
func (q *quantizer) decode(code []byte) vec.Vector {
	out := make(vec.Vector, q.dim)
	for s := 0; s < q.m; s++ {
		start, width := q.substart(s), q.subwidth(s)
		copy(out[start:start+width], q.books[s][int(code[s])*width:])
	}
	return out
}

// adcKind classifies metrics by how their distance decomposes across
// subspaces for asymmetric-distance scoring.
type adcKind int

const (
	adcSumSq adcKind = iota // Euclidean: sum of squared partials, sqrt at the end
	adcSum                  // Manhattan: sum of absolute partials
	adcMax                  // Chebyshev: max of partials
	adcDecode               // anything else: decode and apply the metric
)

func adcKindFor(m vec.Metric) adcKind {
	switch m.(type) {
	case vec.EuclideanMetric:
		return adcSumSq
	case vec.ManhattanMetric:
		return adcSum
	case vec.ChebyshevMetric:
		return adcMax
	}
	return adcDecode
}

// adcTable precomputes, for one query, the partial distance from the
// query's subvector to every codebook centroid: scoring a candidate is
// then m table lookups instead of a dim-wide distance computation.
func (q *quantizer) adcTable(query vec.Vector, kind adcKind) []float64 {
	t := make([]float64, q.m*q.k)
	for s := 0; s < q.m; s++ {
		start, width := q.substart(s), q.subwidth(s)
		book := q.books[s]
		for c := 0; c < q.k; c++ {
			row := book[c*width:]
			var d float64
			switch kind {
			case adcSumSq:
				for j := 0; j < width; j++ {
					x := query[start+j] - row[j]
					d += x * x
				}
			case adcSum:
				for j := 0; j < width; j++ {
					d += math.Abs(query[start+j] - row[j])
				}
			case adcMax:
				for j := 0; j < width; j++ {
					if x := math.Abs(query[start+j] - row[j]); x > d {
						d = x
					}
				}
			}
			t[s*q.k+c] = d
		}
	}
	return t
}

// adcScore combines a code's table entries into an estimated distance in
// true metric units.
func adcScore(t []float64, code []byte, k int, kind adcKind) float64 {
	var d float64
	switch kind {
	case adcSumSq:
		for s, c := range code {
			d += t[s*k+int(c)]
		}
		return math.Sqrt(d)
	case adcSum:
		for s, c := range code {
			d += t[s*k+int(c)]
		}
		return d
	default: // adcMax
		for s, c := range code {
			if x := t[s*k+int(c)]; x > d {
				d = x
			}
		}
		return d
	}
}

// vecStore abstracts how an index holds its stored key vectors: flat
// exact clones, or PQ codes with exact re-rank. Implementations are
// mutated only under the index's external write lock; scorers built for
// one query allocate their own state so concurrent readers never share
// mutable scratch.
type vecStore interface {
	// add stores v (already cloned) under id. Caller guarantees id is
	// not present.
	add(id ID, v vec.Vector)
	// remove drops id. Removing an absent id is a no-op.
	remove(id ID)
	// exact returns the exact stored vector for id.
	exact(id ID) (vec.Vector, bool)
	// scorer returns a per-query distance estimator in true metric
	// units (exact for flat storage, ADC estimate for PQ).
	scorer(q vec.Vector) func(id ID) float64
	// exactScorer reports whether scorer distances are already exact
	// (re-ranking may skip recomputation).
	exactScorer() bool
	// keyBytes approximates the bytes held for key storage.
	keyBytes() int64
}

// flatStore is the uncompressed store: exact clones, exact scoring.
type flatStore struct {
	metric vec.Metric
	euclid bool
	vecs   map[ID]vec.Vector
	bytes  int64
}

func newFlatStore(m vec.Metric) *flatStore {
	_, euclid := m.(vec.EuclideanMetric)
	return &flatStore{metric: m, euclid: euclid, vecs: make(map[ID]vec.Vector)}
}

func (f *flatStore) add(id ID, v vec.Vector) {
	f.vecs[id] = v
	f.bytes += int64(8 * len(v))
}

func (f *flatStore) remove(id ID) {
	if v, ok := f.vecs[id]; ok {
		f.bytes -= int64(8 * len(v))
		delete(f.vecs, id)
	}
}

func (f *flatStore) exact(id ID) (vec.Vector, bool) {
	v, ok := f.vecs[id]
	return v, ok
}

func (f *flatStore) scorer(q vec.Vector) func(id ID) float64 {
	return func(id ID) float64 {
		v, ok := f.vecs[id]
		if !ok {
			return math.Inf(1)
		}
		return f.metric.Distance(q, v)
	}
}

func (f *flatStore) exactScorer() bool { return true }
func (f *flatStore) keyBytes() int64   { return f.bytes }

// pqStore stores PQ codes for every entry plus uncompressed vectors for
// re-ranking: all of them when self-contained, or only the KeepRecent
// most recent when a KeyResolver supplies exact vectors externally.
// Vectors whose dimensionality differs from the trained codec stay
// uncompressed (the codec cannot encode them; metrics return +Inf across
// dimensions anyway, so such entries are corner cases by construction).
type pqStore struct {
	metric   vec.Metric
	kind     adcKind
	cfg      PQConfig
	codec    *quantizer
	codes    map[ID][]byte
	full     map[ID]vec.Vector
	fullB    int64
	resolver KeyResolver
	// order is the insertion order of ids currently buffered for
	// training (pre-training), making codebooks deterministic.
	order []ID
	// recent is a FIFO of ids in full once bounded (resolver mode).
	recent []ID
	dim     int
	trained bool
}

func newPQStore(m vec.Metric, cfg PQConfig) *pqStore {
	return &pqStore{
		metric: m,
		kind:   adcKindFor(m),
		cfg:    cfg.withDefaults(),
		codes:  make(map[ID][]byte),
		full:   make(map[ID]vec.Vector),
	}
}

func (p *pqStore) setResolver(r KeyResolver) {
	p.resolver = r
	if p.trained {
		p.shrinkFull()
	}
}

func (p *pqStore) addFull(id ID, v vec.Vector) {
	p.full[id] = v
	p.fullB += int64(8 * len(v))
}

func (p *pqStore) dropFull(id ID) {
	if v, ok := p.full[id]; ok {
		p.fullB -= int64(8 * len(v))
		delete(p.full, id)
	}
}

func (p *pqStore) add(id ID, v vec.Vector) {
	if !p.trained {
		p.addFull(id, v)
		p.order = append(p.order, id)
		if p.dim == 0 {
			p.dim = len(v)
		}
		if len(p.order) >= p.cfg.TrainSize {
			p.train()
		}
		return
	}
	if len(v) != p.dim {
		p.addFull(id, v) // unencodable; kept exact
		return
	}
	p.codes[id] = p.codec.encode(v)
	if p.resolver == nil {
		p.addFull(id, v)
		return
	}
	p.addFull(id, v)
	p.recent = append(p.recent, id)
	for len(p.recent) > p.cfg.KeepRecent {
		victim := p.recent[0]
		p.recent = p.recent[1:]
		if victim != id {
			p.dropFull(victim)
		}
	}
}

// train fits the codec on the buffered vectors (insertion order, seeded
// — deterministic) and converts the buffer to codes.
func (p *pqStore) train() {
	samples := make([]vec.Vector, 0, len(p.order))
	ids := make([]ID, 0, len(p.order))
	for _, id := range p.order {
		v, ok := p.full[id]
		if !ok || len(v) != p.dim {
			continue
		}
		samples = append(samples, v)
		ids = append(ids, id)
	}
	if len(samples) == 0 {
		return
	}
	p.codec = trainQuantizer(samples, p.dim, p.cfg.Subspaces, p.cfg.Iters, p.cfg.Seed)
	for i, id := range ids {
		p.codes[id] = p.codec.encode(samples[i])
	}
	p.trained = true
	p.order = nil
	if p.resolver != nil {
		// Keep only the most recent KeepRecent uncompressed; the
		// resolver supplies the rest.
		for i, id := range ids {
			if len(ids)-i <= p.cfg.KeepRecent {
				p.recent = append(p.recent, id)
			} else {
				p.dropFull(id)
			}
		}
	}
}

// shrinkFull drops uncompressed vectors beyond the recent window once a
// resolver can supply them (called when a resolver is attached after
// training).
func (p *pqStore) shrinkFull() {
	if len(p.full) <= p.cfg.KeepRecent {
		return
	}
	keep := make(map[ID]struct{}, len(p.recent))
	for _, id := range p.recent {
		keep[id] = struct{}{}
	}
	for id, v := range p.full {
		if _, ok := keep[id]; ok {
			continue
		}
		if _, encoded := p.codes[id]; !encoded {
			continue // unencodable vectors must stay exact
		}
		p.fullB -= int64(8 * len(v))
		delete(p.full, id)
	}
}

func (p *pqStore) remove(id ID) {
	delete(p.codes, id)
	p.dropFull(id)
	for i, oid := range p.order {
		if oid == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

func (p *pqStore) exact(id ID) (vec.Vector, bool) {
	if v, ok := p.full[id]; ok {
		return v, true
	}
	if p.resolver != nil {
		if v, ok := p.resolver(id); ok {
			return v, true
		}
	}
	// Last resort: centroid reconstruction. Reached only if a resolver
	// was promised but cannot supply the id (never the case in the
	// cache core, where members outlives the index entry).
	if code, ok := p.codes[id]; ok && p.codec != nil {
		return p.codec.decode(code), true
	}
	return nil, false
}

func (p *pqStore) scorer(q vec.Vector) func(id ID) float64 {
	if !p.trained || len(q) != p.dim {
		return func(id ID) float64 {
			v, ok := p.exact(id)
			if !ok {
				return math.Inf(1)
			}
			return p.metric.Distance(q, v)
		}
	}
	if p.kind == adcDecode {
		return func(id ID) float64 {
			if code, ok := p.codes[id]; ok {
				return p.metric.Distance(q, p.codec.decode(code))
			}
			v, ok := p.exact(id)
			if !ok {
				return math.Inf(1)
			}
			return p.metric.Distance(q, v)
		}
	}
	table := p.codec.adcTable(q, p.kind)
	k := p.codec.k
	kind := p.kind
	return func(id ID) float64 {
		if code, ok := p.codes[id]; ok {
			return adcScore(table, code, k, kind)
		}
		v, ok := p.exact(id)
		if !ok {
			return math.Inf(1)
		}
		return p.metric.Distance(q, v)
	}
}

func (p *pqStore) exactScorer() bool { return !p.trained }

func (p *pqStore) keyBytes() int64 {
	b := p.fullB
	for _, c := range p.codes {
		b += int64(len(c))
	}
	if p.codec != nil {
		for _, book := range p.codec.books {
			b += int64(8 * len(book))
		}
	}
	return b
}

// reRank converts scorer-estimated candidates into exact results: the
// top k+extra candidates by estimate are re-scored with the true metric
// against uncompressed vectors, sorted by (distance, id) and cut to k.
// With an exact scorer the recomputation is skipped. This is what keeps
// approximate kinds' returned Dist values truthful for threshold
// decisions.
func reRank(st vecStore, metric vec.Metric, q vec.Vector, cands []Neighbor, k, extra int) []Neighbor {
	sortNeighbors(cands)
	if st.exactScorer() {
		if len(cands) > k {
			cands = cands[:k]
		}
		// Keys may be absent when scoring skipped exact vectors.
		for i := range cands {
			if cands[i].Key == nil {
				if v, ok := st.exact(cands[i].ID); ok {
					cands[i].Key = v
				}
			}
		}
		return cands
	}
	if len(cands) > k+extra {
		cands = cands[:k+extra]
	}
	for i := range cands {
		v, ok := st.exact(cands[i].ID)
		if !ok {
			cands[i].Dist = math.Inf(1)
			continue
		}
		cands[i].Key = v
		cands[i].Dist = metric.Distance(q, v)
	}
	sortNeighbors(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
