package index

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

// TestPQTrainingDeterministic: identical samples in identical order with
// the same seed must produce bitwise-identical codebooks and codes —
// durable-store recovery replays inserts in log order and the rebuilt
// index must answer identically.
func TestPQTrainingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := clusteredCorpus(rng, 600, 12, 16, 3.0)
	a := trainQuantizer(samples, 12, 0, 6, 1)
	b := trainQuantizer(samples, 12, 0, 6, 1)
	if !reflect.DeepEqual(a.books, b.books) {
		t.Fatal("same samples + seed produced different codebooks")
	}
	for _, v := range samples[:50] {
		if !reflect.DeepEqual(a.encode(v), b.encode(v)) {
			t.Fatal("same codec produced different codes")
		}
	}
	c := trainQuantizer(samples, 12, 0, 6, 2)
	if reflect.DeepEqual(a.books, c.books) {
		t.Fatal("different seeds produced identical codebooks (suspicious)")
	}
}

// TestPQRoundTripErrorBounded: encode→decode reconstruction error must be
// bounded by the data spread — the codec quantizes within the sampled
// distribution, so a trained centroid is never further from a sample
// than the sample space is wide.
func TestPQRoundTripErrorBounded(t *testing.T) {
	const (
		dim    = 16
		spread = 2.0
	)
	rng := rand.New(rand.NewSource(9))
	samples := clusteredCorpus(rng, 1500, dim, 32, spread)
	q := trainQuantizer(samples, dim, 0, 6, 1)
	metric := vec.EuclideanMetric{}
	var worst float64
	for _, v := range samples {
		rec := q.decode(q.encode(v))
		if d := metric.Distance(v, rec); d > worst {
			worst = d
		}
	}
	// With 256 centroids per 4-wide subspace over 32 clusters of width
	// ~spread, reconstruction stays within a few cluster widths. The
	// bound is intentionally loose — it guards against codec breakage
	// (wrong subspace offsets, byte truncation), not quantizer quality.
	bound := spread * 10 * math.Sqrt(dim)
	if worst > bound {
		t.Fatalf("worst reconstruction error %v exceeds bound %v", worst, bound)
	}
}

// TestADCMatchesDecodedDistance: for decomposable metrics, the ADC table
// estimate of a code must equal the true metric distance between the
// query and the decoded centroid — ADC is an optimization, not a
// different answer.
func TestADCMatchesDecodedDistance(t *testing.T) {
	metrics := []vec.Metric{vec.EuclideanMetric{}, vec.ManhattanMetric{}, vec.ChebyshevMetric{}}
	rng := rand.New(rand.NewSource(13))
	samples := clusteredCorpus(rng, 800, 10, 16, 2.0)
	q := trainQuantizer(samples, 10, 0, 5, 1)
	for _, m := range metrics {
		kind := adcKindFor(m)
		if kind == adcDecode {
			t.Fatalf("%s unexpectedly not decomposable", m.Name())
		}
		for trial := 0; trial < 40; trial++ {
			query := randomVec(rng, 10)
			table := q.adcTable(query, kind)
			v := samples[rng.Intn(len(samples))]
			code := q.encode(v)
			est := adcScore(table, code, q.k, kind)
			want := m.Distance(query, q.decode(code))
			if math.Abs(est-want) > 1e-9 {
				t.Fatalf("%s: adc estimate %v != decoded distance %v", m.Name(), est, want)
			}
		}
	}
}

// Property: the codec round-trips arbitrary seeded corpora without
// panicking, codes are always m bytes, and decoding always lands on a
// codebook centroid combination (every subspace value appears in the
// book).
func TestPQCodecProperty(t *testing.T) {
	f := func(seed int64, dimRaw, subRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := int(dimRaw%24) + 1
		sub := int(subRaw % 8) // 0 = derive
		n := 300
		samples := make([]vec.Vector, n)
		for i := range samples {
			samples[i] = randomVec(rng, dim)
		}
		q := trainQuantizer(samples, dim, sub, 4, seed)
		if q.m < 1 || q.m > dim {
			return false
		}
		for _, v := range samples[:20] {
			code := q.encode(v)
			if len(code) != q.m {
				return false
			}
			rec := q.decode(code)
			if len(rec) != dim {
				return false
			}
			for s := 0; s < q.m; s++ {
				if int(code[s]) >= q.k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPQStoreUntrainedIsExact: before TrainSize inserts the store scores
// exactly (no approximation tax for small key sets).
func TestPQStoreUntrainedIsExact(t *testing.T) {
	st := newPQStore(vec.EuclideanMetric{}, PQConfig{TrainSize: 1000})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		v := randomVec(rng, 6)
		st.add(ID(i), v.Clone())
	}
	if st.trained {
		t.Fatal("store trained below TrainSize")
	}
	if !st.exactScorer() {
		t.Fatal("untrained store must report exact scoring")
	}
	q := randomVec(rng, 6)
	score := st.scorer(q)
	for i := 0; i < 100; i++ {
		v, ok := st.exact(ID(i))
		if !ok {
			t.Fatalf("exact(%d) missing", i)
		}
		want := (vec.EuclideanMetric{}).Distance(q, v)
		if math.Abs(score(ID(i))-want) > 1e-12 {
			t.Fatalf("untrained scorer not exact for id %d", i)
		}
	}
}

// TestPQStoreMixedDimensionSafety: vectors whose dimensionality differs
// from the trained codec stay exact and retrievable.
func TestPQStoreMixedDimensionSafety(t *testing.T) {
	st := newPQStore(vec.EuclideanMetric{}, PQConfig{TrainSize: 64})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		st.add(ID(i), randomVec(rng, 8).Clone())
	}
	if !st.trained {
		t.Fatal("store did not train at TrainSize")
	}
	odd := vec.Vector{1, 2, 3}
	st.add(ID(999), odd.Clone())
	got, ok := st.exact(ID(999))
	if !ok || len(got) != 3 || got[0] != 1 {
		t.Fatalf("mixed-dim vector lost: %v ok=%v", got, ok)
	}
	score := st.scorer(randomVec(rng, 8))
	if d := score(ID(999)); !math.IsInf(d, 1) {
		t.Fatalf("cross-dimension distance = %v, want +Inf", d)
	}
	st.remove(ID(999))
	if _, ok := st.exact(ID(999)); ok {
		t.Fatal("removed mixed-dim vector still present")
	}
}
