package imaging

import (
	"errors"
	"math"
)

// Mat3 is a row-major 3×3 matrix used for 2-D projective transforms
// (homographies). Affine transforms are homographies whose last row is
// (0, 0, 1).
type Mat3 [9]float64

// Identity3 returns the identity transform.
func Identity3() Mat3 { return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1} }

// Mul returns m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += m[r*3+k] * n[k*3+c]
			}
			out[r*3+c] = s
		}
	}
	return out
}

// Apply maps the point (x, y) through the homography, performing the
// perspective divide.
func (m Mat3) Apply(x, y float64) (float64, float64) {
	u := m[0]*x + m[1]*y + m[2]
	v := m[3]*x + m[4]*y + m[5]
	w := m[6]*x + m[7]*y + m[8]
	if w == 0 {
		return math.Inf(1), math.Inf(1)
	}
	return u / w, v / w
}

// ErrSingular is returned when inverting a singular transform.
var ErrSingular = errors.New("imaging: singular transform")

// Inverse returns the matrix inverse.
func (m Mat3) Inverse() (Mat3, error) {
	a, b, c := m[0], m[1], m[2]
	d, e, f := m[3], m[4], m[5]
	g, h, i := m[6], m[7], m[8]
	A := e*i - f*h
	B := -(d*i - f*g)
	C := d*h - e*g
	det := a*A + b*B + c*C
	if math.Abs(det) < 1e-15 {
		return Mat3{}, ErrSingular
	}
	inv := Mat3{
		A, -(b*i - c*h), b*f - c*e,
		B, a*i - c*g, -(a*f - c*d),
		C, -(a*h - b*g), a*e - b*d,
	}
	for k := range inv {
		inv[k] /= det
	}
	return inv, nil
}

// Translation returns the transform that shifts points by (tx, ty).
func Translation(tx, ty float64) Mat3 {
	return Mat3{1, 0, tx, 0, 1, ty, 0, 0, 1}
}

// Scaling returns the transform that scales about the origin.
func Scaling(sx, sy float64) Mat3 {
	return Mat3{sx, 0, 0, 0, sy, 0, 0, 0, 1}
}

// Rotation returns the transform that rotates by theta radians about the
// origin.
func Rotation(theta float64) Mat3 {
	s, c := math.Sin(theta), math.Cos(theta)
	return Mat3{c, -s, 0, s, c, 0, 0, 0, 1}
}

// RotationAbout rotates by theta about the point (cx, cy).
func RotationAbout(theta, cx, cy float64) Mat3 {
	return Translation(cx, cy).Mul(Rotation(theta)).Mul(Translation(-cx, -cy))
}

// ScalingAbout scales about the point (cx, cy).
func ScalingAbout(sx, sy, cx, cy float64) Mat3 {
	return Translation(cx, cy).Mul(Scaling(sx, sy)).Mul(Translation(-cx, -cy))
}

// Warp maps g through the forward transform m, sampling with bilinear
// interpolation via the inverse mapping. Pixels whose preimage falls
// outside g are filled with fill. This is the core of the AR fast path:
// instead of re-rendering a 3-D scene, a cached frame is warped to the
// new viewpoint (§5.5, citing plenoptic image-based rendering).
func Warp(g *Gray, m Mat3, fill float64) (*Gray, error) {
	return WarpInto(nil, g, m, fill)
}

// WarpInto maps src through the forward transform m, writing into dst
// (reshaped to src's dimensions; nil allocates). dst must not alias
// src. Returns dst.
func WarpInto(dst, src *Gray, m Mat3, fill float64) (*Gray, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	dst = reshapeGray(dst, src.W, src.H)
	checkNoAlias(dst, src, "WarpInto")
	w := src.W
	ParallelRows(src.H, w*src.H*16, func(y0b, y1b int) {
		for y := y0b; y < y1b; y++ {
			for x := 0; x < w; x++ {
				sx, sy := inv.Apply(float64(x), float64(y))
				if sx < -0.5 || sy < -0.5 || sx > float64(src.W)-0.5 || sy > float64(src.H)-0.5 ||
					math.IsInf(sx, 0) || math.IsInf(sy, 0) {
					dst.Pix[y*w+x] = fill
					continue
				}
				dst.Pix[y*w+x] = src.Bilinear(sx, sy)
			}
		}
	})
	return dst, nil
}

// WarpRGB maps an RGB image through the forward transform m.
func WarpRGB(img *RGB, m Mat3, fr, fg, fb float64) (*RGB, error) {
	return WarpRGBInto(nil, img, m, fr, fg, fb)
}

// WarpRGBInto maps src through the forward transform m, writing into
// dst (reshaped to src's dimensions; nil allocates). dst must not
// alias src. Returns dst.
func WarpRGBInto(dst, src *RGB, m Mat3, fr, fg, fb float64) (*RGB, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	dst = reshapeRGB(dst, src.W, src.H)
	checkNoAliasRGB(dst, src, "WarpRGBInto")
	w := src.W
	ParallelRows(src.H, w*src.H*40, func(y0b, y1b int) {
		for y := y0b; y < y1b; y++ {
			for x := 0; x < w; x++ {
				sx, sy := inv.Apply(float64(x), float64(y))
				if sx < -0.5 || sy < -0.5 || sx > float64(src.W)-0.5 || sy > float64(src.H)-0.5 ||
					math.IsInf(sx, 0) || math.IsInf(sy, 0) {
					dst.Set(x, y, fr, fg, fb)
					continue
				}
				x0, y0 := int(math.Floor(sx)), int(math.Floor(sy))
				dx, dy := sx-float64(x0), sy-float64(y0)
				r00, g00, b00 := src.At(x0, y0)
				r10, g10, b10 := src.At(x0+1, y0)
				r01, g01, b01 := src.At(x0, y0+1)
				r11, g11, b11 := src.At(x0+1, y0+1)
				dst.Set(x, y,
					r00*(1-dx)*(1-dy)+r10*dx*(1-dy)+r01*(1-dx)*dy+r11*dx*dy,
					g00*(1-dx)*(1-dy)+g10*dx*(1-dy)+g01*(1-dx)*dy+g11*dx*dy,
					b00*(1-dx)*(1-dy)+b10*dx*(1-dy)+b01*(1-dx)*dy+b11*dx*dy)
			}
		}
	})
	return dst, nil
}

// MSE returns the mean squared error between two equally sized images;
// it returns +Inf for mismatched dimensions. Experiments use it to
// measure how close a warped cached frame is to a full re-render.
func MSE(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		return math.Inf(1)
	}
	if len(a.Pix) == 0 {
		return 0
	}
	var sum float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		sum += d * d
	}
	return sum / float64(len(a.Pix))
}
