package imaging

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestPPMRoundTrip(t *testing.T) {
	img := NewRGB(7, 5)
	rng := rand.New(rand.NewSource(1))
	for i := range img.Pix {
		img.Pix[i] = rng.Float64()
	}
	var buf bytes.Buffer
	if err := EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 7 || got.H != 5 {
		t.Fatalf("dims = %dx%d", got.W, got.H)
	}
	for i := range img.Pix {
		if math.Abs(got.Pix[i]-img.Pix[i]) > 1.0/255 {
			t.Fatalf("pixel %d: %v vs %v", i, got.Pix[i], img.Pix[i])
		}
	}
}

func TestPPMFileRoundTrip(t *testing.T) {
	img := NewRGB(3, 3)
	img.Fill(0.2, 0.5, 0.8)
	path := filepath.Join(t.TempDir(), "x.ppm")
	if err := SavePPM(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPPM(path)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b := got.At(1, 1)
	if math.Abs(r-0.2) > 0.01 || math.Abs(g-0.5) > 0.01 || math.Abs(b-0.8) > 0.01 {
		t.Errorf("pixel = (%v, %v, %v)", r, g, b)
	}
}

func TestPPMRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"P5\n2 2\n255\n....",           // wrong magic
		"P6\n-1 2\n255\n",              // negative dims
		"P6\n2 2\n65535\n",             // 16-bit not supported
		"P6\n2 2\n255\nxx",             // truncated raster
		"P6\n99999999 99999999\n255\n", // implausible dims
	}
	for _, c := range cases {
		if _, err := DecodePPM(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	if _, err := LoadPPM("/no/such/file.ppm"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPPMClampsOutOfRange(t *testing.T) {
	img := NewRGB(1, 1)
	img.Pix[0], img.Pix[1], img.Pix[2] = -1, 2, 0.5
	var buf bytes.Buffer
	if err := EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, g, _ := got.At(0, 0)
	if r != 0 || g != 1 {
		t.Errorf("clamped pixel = (%v, %v)", r, g)
	}
}
