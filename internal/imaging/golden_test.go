package imaging

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Golden-equivalence tests: the tiled, pooled, fast-path kernels must
// produce bit-identical output to the straightforward sequential
// implementations they replaced. The reference implementations below
// are verbatim ports of the original per-pixel loops (border
// replication via At everywhere, no interior fast paths, no
// parallelism); every comparison is on Float64bits, not tolerances.
//
// Each case runs three ways against the reference: the public API on a
// cold machine (whatever path the current GOMAXPROCS picks), the
// ...Into variant writing into a NaN-poisoned recycled destination
// (catches any pixel the kernel forgets to overwrite), and the forced
// row-band parallel path with more workers than CPUs.

// forceParallel drops the sequential-fallback threshold to zero and
// spins up extra pool workers so even a 3×3 image takes the banded
// path, restoring the threshold when the test ends. (Workers are never
// stopped; leaving them idle is the pool's normal state.)
func forceParallel(t *testing.T) {
	t.Helper()
	old := parallelMinWork
	parallelMinWork = 1
	ensureWorkers(8)
	t.Cleanup(func() { parallelMinWork = old })
}

// goldenSizes covers the shapes that break naive tiling: minimal
// images, single-row and single-column images, odd dimensions, and
// sizes around the band-split boundaries.
var goldenSizes = [][2]int{
	{1, 1}, {1, 7}, {7, 1}, {1, 64}, {64, 1}, {2, 2}, {3, 3}, {4, 5},
	{7, 5}, {9, 9}, {16, 16}, {17, 31}, {33, 64}, {61, 43},
}

// testGray builds a deterministic test image, salted with exact zeros,
// ones, and negative zeros so the zero-sign behaviour of the
// restructured accumulations is exercised too.
func testGray(w, h int, seed int64) *Gray {
	g := NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Pix {
		switch rng.Intn(16) {
		case 0:
			g.Pix[i] = 0
		case 1:
			g.Pix[i] = 1
		case 2:
			g.Pix[i] = math.Copysign(0, -1)
		default:
			g.Pix[i] = rng.Float64()
		}
	}
	return g
}

func testRGB(w, h int, seed int64) *RGB {
	m := NewRGB(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Pix {
		m.Pix[i] = rng.Float64()
	}
	return m
}

// poisonGray returns a pooled w×h destination with every sample set to
// NaN: any output pixel the kernel fails to overwrite poisons the
// comparison.
func poisonGray(w, h int) *Gray {
	d := GetGray(w, h)
	for i := range d.Pix {
		d.Pix[i] = math.NaN()
	}
	return d
}

func poisonRGB(w, h int) *RGB {
	d := GetRGB(w, h)
	for i := range d.Pix {
		d.Pix[i] = math.NaN()
	}
	return d
}

func requireBitsEqual(t *testing.T, label string, want, got *Gray) {
	t.Helper()
	if want.W != got.W || want.H != got.H {
		t.Fatalf("%s: dimensions %dx%d != %dx%d", label, got.W, got.H, want.W, want.H)
	}
	for i := range want.Pix {
		if math.Float64bits(want.Pix[i]) != math.Float64bits(got.Pix[i]) {
			t.Fatalf("%s: pixel %d (x=%d y=%d): got %v (bits %#x), want %v (bits %#x)",
				label, i, i%want.W, i/want.W, got.Pix[i], math.Float64bits(got.Pix[i]),
				want.Pix[i], math.Float64bits(want.Pix[i]))
		}
	}
}

func requireBitsEqualRGB(t *testing.T, label string, want, got *RGB) {
	t.Helper()
	if want.W != got.W || want.H != got.H {
		t.Fatalf("%s: dimensions %dx%d != %dx%d", label, got.W, got.H, want.W, want.H)
	}
	for i := range want.Pix {
		if math.Float64bits(want.Pix[i]) != math.Float64bits(got.Pix[i]) {
			t.Fatalf("%s: component %d: got %v, want %v", label, i, got.Pix[i], want.Pix[i])
		}
	}
}

// --- reference implementations (original sequential code) ---

func refConvolve(g *Gray, k Kernel) *Gray {
	out := NewGray(g.W, g.H)
	r := k.Size / 2
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var sum float64
			for ky := 0; ky < k.Size; ky++ {
				for kx := 0; kx < k.Size; kx++ {
					sum += k.W[ky*k.Size+kx] * g.At(x+kx-r, y+ky-r)
				}
			}
			out.Pix[y*g.W+x] = sum
		}
	}
	return out
}

func refBlur(g *Gray, sigma float64) *Gray {
	k := gaussianKernel1D(sigma)
	r := len(k) / 2
	tmp := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var sum float64
			for i, w := range k {
				sum += w * g.At(x+i-r, y)
			}
			tmp.Pix[y*g.W+x] = sum
		}
	}
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var sum float64
			for i, w := range k {
				sum += w * tmp.At(x, y+i-r)
			}
			out.Pix[y*g.W+x] = sum
		}
	}
	return out
}

func refBlurRGB(m *RGB, sigma float64) *RGB {
	k := GaussianKernel(sigma)
	out := NewRGB(m.W, m.H)
	r := k.Size / 2
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			var sr, sg, sb float64
			for ky := 0; ky < k.Size; ky++ {
				for kx := 0; kx < k.Size; kx++ {
					cr, cg, cb := m.At(x+kx-r, y+ky-r)
					w := k.W[ky*k.Size+kx]
					sr += w * cr
					sg += w * cg
					sb += w * cb
				}
			}
			out.Set(x, y, sr, sg, sb)
		}
	}
	return out
}

func refResize(g *Gray, w, h int) *Gray {
	out := NewGray(w, h)
	if w == 0 || h == 0 || g.W == 0 || g.H == 0 {
		return out
	}
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = g.Bilinear((float64(x)+0.5)*sx-0.5, (float64(y)+0.5)*sy-0.5)
		}
	}
	return out
}

func refMagOri(g *Gray) (mag, ori *Gray) {
	gx := refConvolve(g, SobelX)
	gy := refConvolve(g, SobelY)
	mag = NewGray(g.W, g.H)
	ori = NewGray(g.W, g.H)
	for i := range mag.Pix {
		dx, dy := gx.Pix[i], gy.Pix[i]
		mag.Pix[i] = math.Hypot(dx, dy)
		a := math.Atan2(dy, dx)
		if a < 0 {
			a += math.Pi
		}
		if a >= math.Pi {
			a -= math.Pi
		}
		ori.Pix[i] = a
	}
	return mag, ori
}

func refWarp(g *Gray, m Mat3, fill float64) *Gray {
	inv, err := m.Inverse()
	if err != nil {
		panic(err)
	}
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			sx, sy := inv.Apply(float64(x), float64(y))
			if sx < -0.5 || sy < -0.5 || sx > float64(g.W)-0.5 || sy > float64(g.H)-0.5 ||
				math.IsInf(sx, 0) || math.IsInf(sy, 0) {
				out.Pix[y*g.W+x] = fill
				continue
			}
			out.Pix[y*g.W+x] = g.Bilinear(sx, sy)
		}
	}
	return out
}

func refGray(m *RGB) *Gray {
	out := NewGray(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			r, g, b := m.At(x, y)
			out.Set(x, y, 0.299*r+0.587*g+0.114*b)
		}
	}
	return out
}

// --- golden tests ---

// TestGoldenConvolve includes a kernel wider than the smallest images
// (GaussianKernel(1.0) is 7×7; several goldenSizes are below 7 on a
// side).
func TestGoldenConvolve(t *testing.T) {
	kernels := map[string]Kernel{
		"sobelx":   SobelX,
		"gauss1.0": GaussianKernel(1.0), // 7×7: wider than the small images
	}
	for _, sz := range goldenSizes {
		src := testGray(sz[0], sz[1], int64(sz[0]*1000+sz[1]))
		for name, k := range kernels {
			want := refConvolve(src, k)
			requireBitsEqual(t, fmt.Sprintf("Convolve %s %dx%d", name, sz[0], sz[1]),
				want, Convolve(src, k))
			dst := poisonGray(sz[0], sz[1])
			requireBitsEqual(t, fmt.Sprintf("ConvolveInto %s %dx%d", name, sz[0], sz[1]),
				want, ConvolveInto(dst, src, k))
			PutGray(dst)
		}
	}
	forceParallel(t)
	for _, sz := range goldenSizes {
		src := testGray(sz[0], sz[1], int64(sz[0]*1000+sz[1]))
		for name, k := range kernels {
			want := refConvolve(src, k)
			dst := poisonGray(sz[0], sz[1])
			requireBitsEqual(t, fmt.Sprintf("parallel ConvolveInto %s %dx%d", name, sz[0], sz[1]),
				want, ConvolveInto(dst, src, k))
			PutGray(dst)
		}
	}
}

// TestGoldenBlur covers sigma 4.0 (49-tap window), far wider than the
// 1×N, N×1 and tiny images in goldenSizes, plus the in-place dst==src
// contract.
func TestGoldenBlur(t *testing.T) {
	sigmas := []float64{0.8, 1.0, 2.1, 4.0}
	check := func(label string) {
		for _, sz := range goldenSizes {
			src := testGray(sz[0], sz[1], int64(sz[0]*31+sz[1]))
			for _, sg := range sigmas {
				want := refBlur(src, sg)
				requireBitsEqual(t, fmt.Sprintf("%s Blur σ=%v %dx%d", label, sg, sz[0], sz[1]),
					want, Blur(src, sg))
				dst := poisonGray(sz[0], sz[1])
				requireBitsEqual(t, fmt.Sprintf("%s BlurInto σ=%v %dx%d", label, sg, sz[0], sz[1]),
					want, BlurInto(dst, src, sg))
				PutGray(dst)
				// In-place: dst aliases src.
				inPlace := src.Clone()
				requireBitsEqual(t, fmt.Sprintf("%s BlurInto in-place σ=%v %dx%d", label, sg, sz[0], sz[1]),
					want, BlurInto(inPlace, inPlace, sg))
			}
		}
	}
	check("sequential")
	forceParallel(t)
	check("parallel")
}

func TestGoldenBlurRGB(t *testing.T) {
	check := func(label string) {
		for _, sz := range goldenSizes {
			src := testRGB(sz[0], sz[1], int64(sz[0]*7+sz[1]))
			for _, sg := range []float64{1.0, 2.5} {
				want := refBlurRGB(src, sg)
				requireBitsEqualRGB(t, fmt.Sprintf("%s BlurRGB σ=%v %dx%d", label, sg, sz[0], sz[1]),
					want, BlurRGB(src, sg))
				dst := poisonRGB(sz[0], sz[1])
				requireBitsEqualRGB(t, fmt.Sprintf("%s BlurRGBInto σ=%v %dx%d", label, sg, sz[0], sz[1]),
					want, BlurRGBInto(dst, src, sg))
				PutRGB(dst)
			}
		}
	}
	check("sequential")
	forceParallel(t)
	check("parallel")
}

func TestGoldenResize(t *testing.T) {
	targets := [][2]int{{1, 1}, {3, 7}, {8, 8}, {16, 5}, {40, 40}}
	check := func(label string) {
		for _, sz := range goldenSizes {
			src := testGray(sz[0], sz[1], int64(sz[0]*13+sz[1]))
			for _, tg := range targets {
				want := refResize(src, tg[0], tg[1])
				requireBitsEqual(t, fmt.Sprintf("%s Resize %dx%d->%dx%d", label, sz[0], sz[1], tg[0], tg[1]),
					want, Resize(src, tg[0], tg[1]))
				dst := poisonGray(tg[0], tg[1])
				requireBitsEqual(t, fmt.Sprintf("%s ResizeInto %dx%d->%dx%d", label, sz[0], sz[1], tg[0], tg[1]),
					want, ResizeInto(dst, src, tg[0], tg[1]))
				PutGray(dst)
			}
		}
	}
	check("sequential")
	forceParallel(t)
	check("parallel")
}

func TestGoldenGradientsAndMagOri(t *testing.T) {
	check := func(label string) {
		for _, sz := range goldenSizes {
			src := testGray(sz[0], sz[1], int64(sz[0]*17+sz[1]))
			wantGx := refConvolve(src, SobelX)
			wantGy := refConvolve(src, SobelY)
			gx, gy := Gradients(src)
			requireBitsEqual(t, fmt.Sprintf("%s Gradients gx %dx%d", label, sz[0], sz[1]), wantGx, gx)
			requireBitsEqual(t, fmt.Sprintf("%s Gradients gy %dx%d", label, sz[0], sz[1]), wantGy, gy)
			dgx, dgy := poisonGray(sz[0], sz[1]), poisonGray(sz[0], sz[1])
			gx, gy = GradientsInto(dgx, dgy, src)
			requireBitsEqual(t, fmt.Sprintf("%s GradientsInto gx %dx%d", label, sz[0], sz[1]), wantGx, gx)
			requireBitsEqual(t, fmt.Sprintf("%s GradientsInto gy %dx%d", label, sz[0], sz[1]), wantGy, gy)
			PutGray(dgx)
			PutGray(dgy)

			wantMag, wantOri := refMagOri(src)
			mag, ori := GradientMagnitudeOrientation(src)
			requireBitsEqual(t, fmt.Sprintf("%s MagOri mag %dx%d", label, sz[0], sz[1]), wantMag, mag)
			requireBitsEqual(t, fmt.Sprintf("%s MagOri ori %dx%d", label, sz[0], sz[1]), wantOri, ori)
			dm, do := poisonGray(sz[0], sz[1]), poisonGray(sz[0], sz[1])
			mag, ori = GradientMagnitudeOrientationInto(dm, do, src)
			requireBitsEqual(t, fmt.Sprintf("%s MagOriInto mag %dx%d", label, sz[0], sz[1]), wantMag, mag)
			requireBitsEqual(t, fmt.Sprintf("%s MagOriInto ori %dx%d", label, sz[0], sz[1]), wantOri, ori)
			PutGray(dm)
			PutGray(do)
		}
	}
	check("sequential")
	forceParallel(t)
	check("parallel")
}

func TestGoldenWarp(t *testing.T) {
	mats := []Mat3{
		Translation(1.5, -2.25),
		RotationAbout(0.3, 8, 8),
		ScalingAbout(1.3, 0.7, 4, 4),
	}
	check := func(label string) {
		for _, sz := range goldenSizes {
			src := testGray(sz[0], sz[1], int64(sz[0]*23+sz[1]))
			for mi, m := range mats {
				want := refWarp(src, m, 0.25)
				got, err := Warp(src, m, 0.25)
				if err != nil {
					t.Fatalf("%s Warp: %v", label, err)
				}
				requireBitsEqual(t, fmt.Sprintf("%s Warp m%d %dx%d", label, mi, sz[0], sz[1]), want, got)
				dst := poisonGray(sz[0], sz[1])
				got, err = WarpInto(dst, src, m, 0.25)
				if err != nil {
					t.Fatalf("%s WarpInto: %v", label, err)
				}
				requireBitsEqual(t, fmt.Sprintf("%s WarpInto m%d %dx%d", label, mi, sz[0], sz[1]), want, got)
				PutGray(dst)
			}
		}
	}
	check("sequential")
	forceParallel(t)
	check("parallel")
}

func TestGoldenGrayConversion(t *testing.T) {
	check := func(label string) {
		for _, sz := range goldenSizes {
			src := testRGB(sz[0], sz[1], int64(sz[0]*3+sz[1]))
			want := refGray(src)
			requireBitsEqual(t, fmt.Sprintf("%s Gray %dx%d", label, sz[0], sz[1]), want, src.Gray())
			dst := poisonGray(sz[0], sz[1])
			requireBitsEqual(t, fmt.Sprintf("%s GrayInto %dx%d", label, sz[0], sz[1]), want, src.GrayInto(dst))
			PutGray(dst)
		}
	}
	check("sequential")
	forceParallel(t)
	check("parallel")
}

// TestGoldenIntegralReuse proves Integral.From on a dirty recycled
// buffer matches a freshly built table (the compute loop only writes
// cells (x≥1, y≥1); the zero row and column must be re-zeroed
// explicitly), and that SumUnchecked agrees with Sum on in-bounds
// rectangles.
func TestGoldenIntegralReuse(t *testing.T) {
	it := &Integral{}
	for _, sz := range goldenSizes {
		src := testGray(sz[0], sz[1], int64(sz[0]*41+sz[1]))
		// Poison the recycled buffer beyond its next length.
		for i := range it.S {
			it.S[i] = math.NaN()
		}
		it.From(src)
		fresh := NewIntegral(src)
		if len(it.S) != len(fresh.S) {
			t.Fatalf("%dx%d: reused table has %d cells, fresh %d", sz[0], sz[1], len(it.S), len(fresh.S))
		}
		for i := range fresh.S {
			if math.Float64bits(it.S[i]) != math.Float64bits(fresh.S[i]) {
				t.Fatalf("%dx%d: integral cell %d: reused %v, fresh %v", sz[0], sz[1], i, it.S[i], fresh.S[i])
			}
		}
		rng := rand.New(rand.NewSource(99))
		for n := 0; n < 50; n++ {
			x0, x1 := rng.Intn(sz[0]+1), rng.Intn(sz[0]+1)
			y0, y1 := rng.Intn(sz[1]+1), rng.Intn(sz[1]+1)
			if x1 < x0 {
				x0, x1 = x1, x0
			}
			if y1 < y0 {
				y0, y1 = y1, y0
			}
			s, u := fresh.Sum(x0, y0, x1, y1), fresh.SumUnchecked(x0, y0, x1, y1)
			if x1 > x0 && y1 > y0 && math.Float64bits(s) != math.Float64bits(u) {
				t.Fatalf("%dx%d: Sum(%d,%d,%d,%d)=%v != SumUnchecked=%v", sz[0], sz[1], x0, y0, x1, y1, s, u)
			}
		}
	}
}
