package imaging

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// EncodePPM writes img as binary PPM (P6, 8 bits per channel), a
// dependency-free interchange format for inspecting rendered frames and
// warped reuses.
func EncodePPM(w io.Writer, img *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.W, img.H); err != nil {
		return err
	}
	buf := make([]byte, 0, 3*img.W*img.H)
	for _, v := range img.Pix {
		buf = append(buf, byte(Clamp01(v)*255+0.5))
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) image.
func DecodePPM(r io.Reader) (*RGB, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxVal int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxVal); err != nil {
		return nil, fmt.Errorf("imaging: ppm header: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("imaging: unsupported ppm magic %q", magic)
	}
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("imaging: implausible ppm dimensions %dx%d", w, h)
	}
	if maxVal != 255 {
		return nil, fmt.Errorf("imaging: unsupported ppm max value %d", maxVal)
	}
	// Exactly one whitespace byte separates the header from the raster.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	raw := make([]byte, 3*w*h)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("imaging: ppm raster: %w", err)
	}
	img := NewRGB(w, h)
	for i, b := range raw {
		img.Pix[i] = float64(b) / 255
	}
	return img, nil
}

// SavePPM writes img to a file.
func SavePPM(path string, img *RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return EncodePPM(f, img)
}

// LoadPPM reads an image from a file.
func LoadPPM(path string) (*RGB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodePPM(f)
}
