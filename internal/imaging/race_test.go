package imaging

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// Concurrency tests for the buffer pool and the row-band worker pool.
// They are most meaningful under `go test -race` (CI runs them that
// way), but the stamp checks below also catch aliasing without the
// race detector: if the pool ever hands the same buffer to two live
// holders, one goroutine's stamp shows up in the other's verify pass.

// TestPoolConcurrentNoAliasing hammers GetGray/PutGray from many
// goroutines. Each holder stamps its buffer with a value unique to
// (goroutine, iteration) and verifies every sample before returning
// the buffer, so any sharing of live buffers is detected directly.
func TestPoolConcurrentNoAliasing(t *testing.T) {
	const (
		goroutines = 8
		iters      = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := [][2]int{{7, 5}, {64, 48}, {33, 9}, {1, 1}, {320, 2}}
			for it := 0; it < iters; it++ {
				sz := sizes[(g+it)%len(sizes)]
				buf := GetGray(sz[0], sz[1])
				if buf.W != sz[0] || buf.H != sz[1] || len(buf.Pix) != sz[0]*sz[1] {
					errs <- fmt.Errorf("goroutine %d: got %dx%d len %d, want %dx%d",
						g, buf.W, buf.H, len(buf.Pix), sz[0], sz[1])
					return
				}
				stamp := float64(g*1_000_000 + it)
				for i := range buf.Pix {
					buf.Pix[i] = stamp
				}
				for i := range buf.Pix {
					if buf.Pix[i] != stamp {
						errs <- fmt.Errorf("goroutine %d iter %d: live buffer mutated (pixel %d = %v, want %v): pooled buffer aliased",
							g, it, i, buf.Pix[i], stamp)
						return
					}
				}
				PutGray(buf)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolRGBConcurrentNoAliasing is the RGB-pool counterpart.
func TestPoolRGBConcurrentNoAliasing(t *testing.T) {
	const goroutines, iters = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				buf := GetRGB(17+g, 9+it%4)
				stamp := float64(g*1_000_000 + it)
				for i := range buf.Pix {
					buf.Pix[i] = stamp
				}
				for i := range buf.Pix {
					if buf.Pix[i] != stamp {
						errs <- fmt.Errorf("goroutine %d iter %d: pooled RGB buffer aliased", g, it)
						return
					}
				}
				PutRGB(buf)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelRowsConcurrentCallers runs many simultaneous banded
// kernels (each with its own images) through the shared worker pool
// with the sequential fallback disabled, checking each result against
// the sequential reference. Bands from different callers interleave on
// the same workers, so cross-caller state leakage or band mis-routing
// corrupts a result; -race additionally checks the handoff ordering.
func TestParallelRowsConcurrentCallers(t *testing.T) {
	forceParallel(t)
	const goroutines, iters = 6, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := testGray(37+g, 23+g, int64(g))
			want := refBlur(src, 1.5)
			for it := 0; it < iters; it++ {
				got := Blur(src, 1.5)
				for i := range want.Pix {
					if math.Float64bits(want.Pix[i]) != math.Float64bits(got.Pix[i]) {
						errs <- fmt.Errorf("goroutine %d iter %d: pixel %d differs under concurrent ParallelRows: got %v want %v",
							g, it, i, got.Pix[i], want.Pix[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelRowsNestedWork submits from inside band functions'
// callers at different sizes: small ops that fall back inline mixed
// with banded ones, ensuring the drain-and-help loop in ParallelRows
// never deadlocks when every goroutine is also a helper.
func TestParallelRowsMixedSizes(t *testing.T) {
	forceParallel(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				n := 1 + (g+it)%5
				sum := 0
				var mu sync.Mutex
				ParallelRows(n, n*parallelMinWork+1, func(y0, y1 int) {
					mu.Lock()
					sum += y1 - y0
					mu.Unlock()
				})
				if sum != n {
					t.Errorf("ParallelRows covered %d of %d rows", sum, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
