package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGrayAtSetClamp(t *testing.T) {
	g := NewGray(4, 3)
	g.Set(1, 1, 0.5)
	if got := g.At(1, 1); got != 0.5 {
		t.Errorf("At = %v", got)
	}
	// Border replication.
	g.Set(0, 0, 0.9)
	if got := g.At(-5, -5); got != 0.9 {
		t.Errorf("clamped At = %v, want 0.9", got)
	}
	g.Set(3, 2, 0.7)
	if got := g.At(100, 100); got != 0.7 {
		t.Errorf("clamped At = %v, want 0.7", got)
	}
	// Out-of-bounds Set is ignored.
	g.Set(-1, 0, 1)
	g.Set(0, 99, 1)
	if g.At(0, 0) != 0.9 {
		t.Error("out-of-bounds Set modified image")
	}
}

func TestGrayBilinear(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 0)
	g.Set(1, 0, 1)
	g.Set(0, 1, 0)
	g.Set(1, 1, 1)
	if got := g.Bilinear(0.5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Bilinear(0.5,0.5) = %v, want 0.5", got)
	}
	if got := g.Bilinear(0, 0); got != 0 {
		t.Errorf("Bilinear at integer = %v", got)
	}
}

func TestRGBGrayConversion(t *testing.T) {
	m := NewRGB(1, 1)
	m.Set(0, 0, 1, 1, 1)
	g := m.Gray()
	if math.Abs(g.At(0, 0)-1) > 1e-9 {
		t.Errorf("white converts to %v", g.At(0, 0))
	}
	m.Set(0, 0, 1, 0, 0)
	if got := m.Gray().At(0, 0); math.Abs(got-0.299) > 1e-9 {
		t.Errorf("red luma = %v, want 0.299", got)
	}
}

func TestConvolveIdentity(t *testing.T) {
	g := NewGray(5, 5)
	rng := rand.New(rand.NewSource(1))
	for i := range g.Pix {
		g.Pix[i] = rng.Float64()
	}
	id := Kernel{Size: 1, W: []float64{1}}
	out := Convolve(g, id)
	for i := range g.Pix {
		if out.Pix[i] != g.Pix[i] {
			t.Fatal("identity kernel changed image")
		}
	}
}

func TestSobelOnVerticalEdge(t *testing.T) {
	g := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			g.Set(x, y, 1)
		}
	}
	gx, gy := Gradients(g)
	// Strong horizontal derivative at the edge, none vertically.
	if math.Abs(gx.At(4, 4)) < 1 {
		t.Errorf("gx at edge = %v, want large", gx.At(4, 4))
	}
	if math.Abs(gy.At(4, 4)) > 1e-9 {
		t.Errorf("gy at edge = %v, want 0", gy.At(4, 4))
	}
	mag, ori := GradientMagnitudeOrientation(g)
	if mag.At(4, 4) < 1 {
		t.Errorf("magnitude = %v", mag.At(4, 4))
	}
	if o := ori.At(4, 4); math.Abs(o) > 1e-9 && math.Abs(o-math.Pi) > 1e-9 {
		t.Errorf("orientation = %v, want 0 (horizontal gradient)", o)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2} {
		k := GaussianKernel(sigma)
		if k.Size%2 != 1 {
			t.Errorf("sigma %v: even kernel size %d", sigma, k.Size)
		}
		var sum float64
		for _, w := range k.W {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("sigma %v: kernel sums to %v", sigma, sum)
		}
	}
	if k := GaussianKernel(0); k.Size != 1 || k.W[0] != 1 {
		t.Error("sigma 0 is not identity")
	}
}

func TestBlurPreservesMean(t *testing.T) {
	g := NewGray(16, 16)
	rng := rand.New(rand.NewSource(2))
	for i := range g.Pix {
		g.Pix[i] = rng.Float64()
	}
	b := Blur(g, 1.0)
	// Border replication shifts the mean slightly; allow 5% slack.
	if math.Abs(b.Mean()-g.Mean()) > 0.05 {
		t.Errorf("blur changed mean %v -> %v", g.Mean(), b.Mean())
	}
	// Blur reduces variance.
	varOf := func(im *Gray) float64 {
		m := im.Mean()
		var s float64
		for _, v := range im.Pix {
			s += (v - m) * (v - m)
		}
		return s / float64(len(im.Pix))
	}
	if varOf(b) >= varOf(g) {
		t.Error("blur did not reduce variance")
	}
}

func TestResize(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = 0.25
	}
	out := Resize(g, 8, 2)
	if out.W != 8 || out.H != 2 {
		t.Fatalf("Resize dims = %dx%d", out.W, out.H)
	}
	for _, v := range out.Pix {
		if math.Abs(v-0.25) > 1e-9 {
			t.Fatalf("constant image resized to %v", v)
		}
	}
	if z := Resize(g, 0, 0); z.W != 0 || z.H != 0 {
		t.Error("Resize to zero failed")
	}
}

func TestIntegralSums(t *testing.T) {
	g := NewGray(4, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			g.Set(x, y, float64(y*4+x))
		}
	}
	it := NewIntegral(g)
	if got := it.Sum(0, 0, 4, 3); got != 66 { // sum 0..11
		t.Errorf("full sum = %v, want 66", got)
	}
	if got := it.Sum(1, 1, 3, 2); got != 5+6 {
		t.Errorf("inner sum = %v, want 11", got)
	}
	if got := it.Sum(2, 2, 2, 2); got != 0 {
		t.Errorf("empty rect = %v", got)
	}
	if got := it.Sum(-5, -5, 100, 100); got != 66 {
		t.Errorf("clamped sum = %v, want 66", got)
	}
}

// Property: the integral image agrees with brute-force summation.
func TestIntegralProperty(t *testing.T) {
	f := func(seed int64, x0, y0, x1, y1 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGray(12, 9)
		for i := range g.Pix {
			g.Pix[i] = rng.Float64()
		}
		it := NewIntegral(g)
		ax0, ay0 := int(x0%13), int(y0%10)
		ax1, ay1 := int(x1%13), int(y1%10)
		var want float64
		for y := ay0; y < ay1; y++ {
			for x := ax0; x < ax1; x++ {
				if x < g.W && y < g.H {
					want += g.Pix[y*g.W+x]
				}
			}
		}
		return math.Abs(it.Sum(ax0, ay0, ax1, ay1)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMat3Identity(t *testing.T) {
	id := Identity3()
	x, y := id.Apply(3, 4)
	if x != 3 || y != 4 {
		t.Errorf("identity moved point to (%v, %v)", x, y)
	}
	if got := id.Mul(Translation(1, 2)); got != Translation(1, 2) {
		t.Errorf("I*T = %v", got)
	}
}

func TestMat3Compose(t *testing.T) {
	m := Translation(10, 0).Mul(Scaling(2, 2))
	x, y := m.Apply(1, 1)
	if x != 12 || y != 2 {
		t.Errorf("T(10,0)·S(2) applied to (1,1) = (%v,%v), want (12,2)", x, y)
	}
}

func TestMat3Inverse(t *testing.T) {
	m := RotationAbout(0.7, 5, 5).Mul(ScalingAbout(1.3, 1.3, 2, 2)).Mul(Translation(3, -1))
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	x, y := m.Apply(7, 11)
	bx, by := inv.Apply(x, y)
	if math.Abs(bx-7) > 1e-9 || math.Abs(by-11) > 1e-9 {
		t.Errorf("inverse round-trip = (%v, %v)", bx, by)
	}
	if _, err := (Mat3{}).Inverse(); err == nil {
		t.Error("singular matrix inverted")
	}
}

// Property: random invertible affine transforms round-trip points.
func TestMat3InverseProperty(t *testing.T) {
	f := func(tx, ty, theta, s float64) bool {
		theta = math.Mod(theta, math.Pi)
		s = 0.5 + math.Abs(math.Mod(s, 2)) // scale in [0.5, 2.5)
		tx = math.Mod(tx, 100)
		ty = math.Mod(ty, 100)
		if math.IsNaN(tx + ty + theta + s) {
			return true
		}
		m := Translation(tx, ty).Mul(Rotation(theta)).Mul(Scaling(s, s))
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		x, y := m.Apply(3, -7)
		bx, by := inv.Apply(x, y)
		return math.Abs(bx-3) < 1e-6 && math.Abs(by+7) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWarpIdentityIsNoop(t *testing.T) {
	g := NewGray(8, 8)
	rng := rand.New(rand.NewSource(3))
	for i := range g.Pix {
		g.Pix[i] = rng.Float64()
	}
	out, err := Warp(g, Identity3(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if MSE(g, out) > 1e-12 {
		t.Errorf("identity warp changed image: MSE %v", MSE(g, out))
	}
}

func TestWarpTranslation(t *testing.T) {
	g := NewGray(8, 8)
	g.Set(2, 2, 1)
	out, err := Warp(g, Translation(3, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(5, 3) != 1 {
		t.Errorf("translated pixel not at (5,3): %v", out.At(5, 3))
	}
	if out.At(2, 2) != 0 {
		t.Errorf("source pixel not cleared: %v", out.At(2, 2))
	}
}

func TestWarpFillOutside(t *testing.T) {
	g := NewGray(4, 4)
	out, err := Warp(g, Translation(10, 10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 0.5 {
		t.Errorf("fill value = %v, want 0.5", out.At(0, 0))
	}
	if _, err := Warp(g, Mat3{}, 0); err == nil {
		t.Error("warp through singular matrix did not error")
	}
}

func TestWarpRGB(t *testing.T) {
	m := NewRGB(4, 4)
	m.Set(1, 1, 1, 0.5, 0.25)
	out, err := WarpRGB(m, Translation(1, 0), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b := out.At(2, 1)
	if math.Abs(r-1) > 1e-9 || math.Abs(g-0.5) > 1e-9 || math.Abs(b-0.25) > 1e-9 {
		t.Errorf("warped pixel = (%v, %v, %v)", r, g, b)
	}
}

func TestMSE(t *testing.T) {
	a, b := NewGray(2, 2), NewGray(2, 2)
	if MSE(a, b) != 0 {
		t.Error("MSE of identical images != 0")
	}
	b.Set(0, 0, 1)
	if got := MSE(a, b); got != 0.25 {
		t.Errorf("MSE = %v, want 0.25", got)
	}
	if !math.IsInf(MSE(a, NewGray(3, 3)), 1) {
		t.Error("MSE of mismatched sizes != +Inf")
	}
}

func TestNoiseAndBrightness(t *testing.T) {
	g := NewGray(8, 8)
	for i := range g.Pix {
		g.Pix[i] = 0.5
	}
	n := AddNoise(g, 0.1, rand.New(rand.NewSource(4)))
	if MSE(g, n) == 0 {
		t.Error("noise had no effect")
	}
	for _, v := range n.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("noise escaped [0,1]: %v", v)
		}
	}
	br := AdjustBrightness(g, 0.3)
	if math.Abs(br.At(0, 0)-0.8) > 1e-12 {
		t.Errorf("brightness = %v", br.At(0, 0))
	}
	if got := AdjustBrightness(g, 0.9).At(0, 0); got != 1 {
		t.Errorf("brightness clamp = %v", got)
	}
}

func TestRGBHelpers(t *testing.T) {
	m := NewRGB(3, 3)
	m.Fill(0.1, 0.2, 0.3)
	r, g, b := m.At(1, 1)
	if r != 0.1 || g != 0.2 || b != 0.3 {
		t.Errorf("Fill: (%v, %v, %v)", r, g, b)
	}
	c := m.Clone()
	c.Set(0, 0, 1, 1, 1)
	if r, _, _ := m.At(0, 0); r == 1 {
		t.Error("Clone aliases original")
	}
	rz := ResizeRGB(m, 6, 6)
	if rz.W != 6 || rz.H != 6 {
		t.Errorf("ResizeRGB dims = %dx%d", rz.W, rz.H)
	}
	r, g, b = rz.At(3, 3)
	if math.Abs(r-0.1) > 1e-9 || math.Abs(g-0.2) > 1e-9 || math.Abs(b-0.3) > 1e-9 {
		t.Errorf("ResizeRGB constant image = (%v,%v,%v)", r, g, b)
	}
	blurred := BlurRGB(m, 0.8)
	r, g, b = blurred.At(1, 1)
	if math.Abs(r-0.1) > 1e-9 || math.Abs(g-0.2) > 1e-9 || math.Abs(b-0.3) > 1e-9 {
		t.Errorf("BlurRGB constant image = (%v,%v,%v)", r, g, b)
	}
	n := AddNoiseRGB(m, 0.1, rand.New(rand.NewSource(5)))
	same := true
	for i := range n.Pix {
		if n.Pix[i] != m.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("AddNoiseRGB had no effect")
	}
	b2 := AdjustBrightnessRGB(m, 0.5)
	if r, _, _ := b2.At(0, 0); math.Abs(r-0.6) > 1e-9 {
		t.Errorf("AdjustBrightnessRGB = %v", r)
	}
}

func TestNegativeDimensionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGray(-1, 1) did not panic")
		}
	}()
	NewGray(-1, 1)
}
