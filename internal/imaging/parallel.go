package imaging

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Row-band parallelism for the imaging kernels.
//
// Every hot kernel in this package is a pure per-pixel (or per-row)
// function: output rows depend only on the input image, never on other
// output rows. ParallelRows exploits that by splitting the output into
// contiguous row bands and running the bands on a small shared worker
// pool sized from GOMAXPROCS. Because each band computes exactly the
// same per-pixel arithmetic the sequential loop would — same operations,
// same order, disjoint output rows — the result is bit-identical to a
// sequential run regardless of how bands are scheduled (the determinism
// guarantee the golden tests in golden_test.go pin down).
//
// Small images skip the pool entirely: below parallelMinWork work units
// the goroutine handoff costs more than the kernel, so the band function
// runs inline over the full row range.

// parallelMinWork is the sequential-fallback threshold, in approximate
// work units (output samples × kernel taps). Band handoff costs on the
// order of a microsecond; a band should carry at least tens of
// microseconds of arithmetic to amortize it. Variable so tests can
// force either path.
var parallelMinWork = 1 << 16

// bandsPerWorker over-decomposes the row range so a slow band (cache
// misses, borrowed CPU) doesn't leave the other workers idle.
const bandsPerWorker = 2

// rowTask is one row band of one ParallelRows call.
type rowTask struct {
	ctx    *parallelCtx
	y0, y1 int
}

// parallelCtx is the per-call state shared by a call's bands. Pooled:
// a context is reused only after wg.Wait has returned, which happens
// strictly after every band's Done.
type parallelCtx struct {
	fn func(y0, y1 int)
	wg sync.WaitGroup
}

var parallelCtxPool = sync.Pool{New: func() any { return new(parallelCtx) }}

var (
	workerMu    sync.Mutex
	workerCount atomic.Int32
	// workerCh is deliberately deep: ParallelRows submits at most
	// workers×bandsPerWorker bands per call, and senders helping to
	// drain keeps it from ever backing up far.
	workerCh = make(chan rowTask, 512)
)

// ensureWorkers starts imaging worker goroutines until at least n are
// running and returns the running count. Workers are never stopped;
// they block on the shared channel when idle. Tests may raise n beyond
// GOMAXPROCS to exercise the parallel path on small machines.
func ensureWorkers(n int) int {
	if c := int(workerCount.Load()); c >= n {
		return c
	}
	workerMu.Lock()
	defer workerMu.Unlock()
	for int(workerCount.Load()) < n {
		go func() {
			for t := range workerCh {
				t.ctx.fn(t.y0, t.y1)
				t.ctx.wg.Done()
			}
		}()
		workerCount.Add(1)
	}
	return int(workerCount.Load())
}

// ParallelRows runs fn over the row range [0, h), split into contiguous
// bands executed concurrently on the shared worker pool. fn must be
// safe to call concurrently for disjoint row ranges and must not call
// ParallelRows itself. work is an estimate of the total work in output
// samples × per-sample cost (e.g. kernel taps); below the sequential
// threshold, or on a single-CPU machine, fn runs inline as fn(0, h).
//
// The calling goroutine participates: it computes the last band itself
// and then helps drain the task queue while waiting, so a saturated
// pool cannot deadlock submitters.
func ParallelRows(h, work int, fn func(y0, y1 int)) {
	if h <= 0 {
		return
	}
	workers := ensureWorkers(runtime.GOMAXPROCS(0))
	if workers <= 1 || h < 2 || work < parallelMinWork {
		fn(0, h)
		return
	}
	bands := workers * bandsPerWorker
	if bands > h {
		bands = h
	}
	ctx := parallelCtxPool.Get().(*parallelCtx)
	ctx.fn = fn
	ctx.wg.Add(bands - 1)
	for b := 0; b < bands-1; b++ {
		workerCh <- rowTask{ctx: ctx, y0: b * h / bands, y1: (b + 1) * h / bands}
	}
	fn((bands - 1) * h / bands, h)
	// Help drain: the queue may hold this call's bands (or another
	// caller's — running those is just as useful) while all workers are
	// busy.
	for {
		select {
		case t := <-workerCh:
			t.ctx.fn(t.y0, t.y1)
			t.ctx.wg.Done()
		default:
			ctx.wg.Wait()
			ctx.fn = nil
			parallelCtxPool.Put(ctx)
			return
		}
	}
}
