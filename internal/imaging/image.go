// Package imaging provides the raster-image substrate for Potluck's
// vision ecosystem: grayscale and RGB float images, convolution,
// gradients, Gaussian smoothing, resampling, integral images, and
// affine/projective warping. Feature extraction (package feature), the
// synthetic datasets (package synth), the recognizer (package nn) and
// the AR renderer's warp fast path (package render) are all built on it.
package imaging

import (
	"fmt"
	"math"
)

// Gray is a grayscale image with float64 samples in [0, 1], row-major.
type Gray struct {
	W, H int
	Pix  []float64
}

// NewGray returns a black W×H grayscale image.
func NewGray(w, h int) *Gray {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imaging: negative dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the sample at (x, y), clamping coordinates to the image
// bounds (border replication), which keeps convolution and warping free
// of bounds checks at call sites.
func (g *Gray) At(x, y int) float64 {
	if g.W == 0 || g.H == 0 {
		return 0
	}
	x = clampInt(x, 0, g.W-1)
	y = clampInt(y, 0, g.H-1)
	return g.Pix[y*g.W+x]
}

// Set stores v at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Bilinear samples the image at fractional coordinates with bilinear
// interpolation and border replication.
func (g *Gray) Bilinear(x, y float64) float64 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	v00 := g.At(x0, y0)
	v10 := g.At(x0+1, y0)
	v01 := g.At(x0, y0+1)
	v11 := g.At(x0+1, y0+1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// Mean returns the average sample value.
func (g *Gray) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var sum float64
	for _, v := range g.Pix {
		sum += v
	}
	return sum / float64(len(g.Pix))
}

// RGB is a color image with three float64 channels per pixel in [0, 1],
// stored interleaved (r, g, b), row-major.
type RGB struct {
	W, H int
	Pix  []float64 // len = 3*W*H
}

// NewRGB returns a black W×H color image.
func NewRGB(w, h int) *RGB {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imaging: negative dimensions %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]float64, 3*w*h)}
}

// At returns the (r, g, b) sample at (x, y) with border replication.
func (m *RGB) At(x, y int) (r, g, b float64) {
	if m.W == 0 || m.H == 0 {
		return 0, 0, 0
	}
	x = clampInt(x, 0, m.W-1)
	y = clampInt(y, 0, m.H-1)
	i := 3 * (y*m.W + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set stores (r, g, b) at (x, y); out-of-bounds writes are ignored.
func (m *RGB) Set(x, y int, r, g, b float64) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	i := 3 * (y*m.W + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// Clone returns a deep copy.
func (m *RGB) Clone() *RGB {
	out := NewRGB(m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// Gray converts to grayscale using the Rec. 601 luma weights.
func (m *RGB) Gray() *Gray {
	return m.GrayInto(nil)
}

// GrayInto converts to grayscale using the Rec. 601 luma weights,
// writing into dst (reshaped to m's dimensions; nil allocates).
// Returns dst.
func (m *RGB) GrayInto(dst *Gray) *Gray {
	dst = reshapeGray(dst, m.W, m.H)
	w := m.W
	ParallelRows(m.H, w*m.H*3, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				i := 3 * (y*w + x)
				dst.Pix[y*w+x] = 0.299*m.Pix[i] + 0.587*m.Pix[i+1] + 0.114*m.Pix[i+2]
			}
		}
	})
	return dst
}

// Fill sets every pixel to (r, g, b).
func (m *RGB) Fill(r, g, b float64) {
	for i := 0; i < len(m.Pix); i += 3 {
		m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
	}
}

// Clamp01 limits v to [0, 1].
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
