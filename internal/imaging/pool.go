package imaging

import (
	"math/bits"
	"sync"
)

// Buffer pooling for the hot imaging kernels.
//
// Feature extraction runs the same handful of kernel shapes on every
// frame; allocating a fresh pixel buffer per pass made the allocator,
// not the arithmetic, the bottleneck (SIFT peaked at 52 MB and ~8.7k
// allocations per 600×400 frame). GetGray/GetRGB hand out recycled
// images from size-classed sync.Pools instead: buffer capacities are
// rounded up to the next power of two so a 600×400 request and a
// 599×401 request share a class, and steady-state extraction allocates
// nothing. PutGray/PutRGB return a buffer to its class; buffers whose
// capacity is not an exact power of two (caller-built images) are
// dropped rather than pooled so class lookup stays O(1).
//
// Pooled buffers have unspecified contents — every ...Into kernel in
// this package overwrites its full destination, so no clearing pass is
// needed. Callers that only partially write a pooled image must clear
// it themselves.

// poolClasses bounds the largest pooled buffer at 2^poolClasses
// samples (2^27 float64s = 1 GiB); anything larger is allocated
// directly and never pooled.
const poolClasses = 27

var (
	grayPools [poolClasses + 1]sync.Pool
	rgbPools  [poolClasses + 1]sync.Pool
)

// sizeClass returns the pool class for a buffer of n samples: the
// smallest c with 1<<c >= n. Returns -1 when n is too large to pool.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c > poolClasses {
		return -1
	}
	return c
}

// GetGray returns a w×h grayscale image backed by a pooled buffer.
// Contents are unspecified; the caller must overwrite every sample it
// reads. Release with PutGray when done. Never returns nil.
func GetGray(w, h int) *Gray {
	n := w * h
	c := sizeClass(n)
	if c < 0 {
		return NewGray(w, h)
	}
	if v := grayPools[c].Get(); v != nil {
		g := v.(*Gray)
		g.W, g.H = w, h
		g.Pix = g.Pix[:n]
		return g
	}
	return &Gray{W: w, H: h, Pix: make([]float64, n, 1<<c)}
}

// PutGray returns g to the pool. The caller must not retain g or any
// slice of g.Pix afterwards: the buffer will be handed to a future
// GetGray caller. Nil images and images whose buffer capacity is not a
// power of two are ignored.
func PutGray(g *Gray) {
	if g == nil {
		return
	}
	c := cap(g.Pix)
	if c == 0 || c&(c-1) != 0 {
		return // not a pooled-shape buffer
	}
	cls := sizeClass(c)
	if cls < 0 {
		return
	}
	grayPools[cls].Put(g)
}

// GetRGB returns a w×h color image backed by a pooled buffer, with the
// same contract as GetGray.
func GetRGB(w, h int) *RGB {
	n := 3 * w * h
	c := sizeClass(n)
	if c < 0 {
		return NewRGB(w, h)
	}
	if v := rgbPools[c].Get(); v != nil {
		m := v.(*RGB)
		m.W, m.H = w, h
		m.Pix = m.Pix[:n]
		return m
	}
	return &RGB{W: w, H: h, Pix: make([]float64, n, 1<<c)}
}

// PutRGB returns m to the pool, with the same contract as PutGray.
func PutRGB(m *RGB) {
	if m == nil {
		return
	}
	c := cap(m.Pix)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := sizeClass(c)
	if cls < 0 {
		return
	}
	rgbPools[cls].Put(m)
}

// reshapeGray prepares dst as a w×h destination: nil allocates a fresh
// image, an existing image is re-dimensioned in place, reusing its
// buffer when the capacity suffices. Contents after reshaping are
// unspecified (kernels overwrite every sample).
func reshapeGray(dst *Gray, w, h int) *Gray {
	if dst == nil {
		return NewGray(w, h)
	}
	n := w * h
	if cap(dst.Pix) < n {
		dst.Pix = make([]float64, n)
	}
	dst.W, dst.H, dst.Pix = w, h, dst.Pix[:n]
	return dst
}

// reshapeRGB is reshapeGray for color images.
func reshapeRGB(dst *RGB, w, h int) *RGB {
	if dst == nil {
		return NewRGB(w, h)
	}
	n := 3 * w * h
	if cap(dst.Pix) < n {
		dst.Pix = make([]float64, n)
	}
	dst.W, dst.H, dst.Pix = w, h, dst.Pix[:n]
	return dst
}
