package imaging

import (
	"math"
	"math/rand"
)

// Kernel is a square convolution kernel (odd side length).
type Kernel struct {
	Size int // side length, odd
	W    []float64
}

// Convolve applies k to g with border replication.
func Convolve(g *Gray, k Kernel) *Gray {
	out := NewGray(g.W, g.H)
	r := k.Size / 2
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var sum float64
			for ky := 0; ky < k.Size; ky++ {
				for kx := 0; kx < k.Size; kx++ {
					sum += k.W[ky*k.Size+kx] * g.At(x+kx-r, y+ky-r)
				}
			}
			out.Pix[y*g.W+x] = sum
		}
	}
	return out
}

// SobelX and SobelY are the standard 3×3 Sobel gradient kernels.
var (
	SobelX = Kernel{Size: 3, W: []float64{-1, 0, 1, -2, 0, 2, -1, 0, 1}}
	SobelY = Kernel{Size: 3, W: []float64{-1, -2, -1, 0, 0, 0, 1, 2, 1}}
)

// Gradients returns the horizontal and vertical Sobel derivatives of g.
func Gradients(g *Gray) (gx, gy *Gray) {
	return Convolve(g, SobelX), Convolve(g, SobelY)
}

// GradientMagnitudeOrientation returns per-pixel gradient magnitude and
// orientation (radians in [0, π), unsigned).
func GradientMagnitudeOrientation(g *Gray) (mag, ori *Gray) {
	gx, gy := Gradients(g)
	mag = NewGray(g.W, g.H)
	ori = NewGray(g.W, g.H)
	for i := range mag.Pix {
		dx, dy := gx.Pix[i], gy.Pix[i]
		mag.Pix[i] = math.Hypot(dx, dy)
		a := math.Atan2(dy, dx)
		if a < 0 {
			a += math.Pi
		}
		if a >= math.Pi {
			a -= math.Pi
		}
		ori.Pix[i] = a
	}
	return mag, ori
}

// GaussianKernel builds a normalized 2-D Gaussian kernel for the given
// standard deviation. The radius is ceil(3σ).
func GaussianKernel(sigma float64) Kernel {
	if sigma <= 0 {
		return Kernel{Size: 1, W: []float64{1}}
	}
	r := int(math.Ceil(3 * sigma))
	size := 2*r + 1
	w := make([]float64, size*size)
	var sum float64
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			v := math.Exp(-float64(x*x+y*y) / (2 * sigma * sigma))
			w[(y+r)*size+(x+r)] = v
			sum += v
		}
	}
	for i := range w {
		w[i] /= sum
	}
	return Kernel{Size: size, W: w}
}

// gaussianKernel1D builds a normalized 1-D Gaussian of radius ceil(3σ).
func gaussianKernel1D(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	w := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		w[i+r] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Blur applies a Gaussian blur with the given sigma. The Gaussian is
// separable, so the blur runs as two 1-D passes — O(r) per pixel instead
// of O(r²).
func Blur(g *Gray, sigma float64) *Gray {
	k := gaussianKernel1D(sigma)
	r := len(k) / 2
	// Horizontal pass.
	tmp := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var sum float64
			for i, w := range k {
				sum += w * g.At(x+i-r, y)
			}
			tmp.Pix[y*g.W+x] = sum
		}
	}
	// Vertical pass.
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var sum float64
			for i, w := range k {
				sum += w * tmp.At(x, y+i-r)
			}
			out.Pix[y*g.W+x] = sum
		}
	}
	return out
}

// BlurRGB blurs each channel of an RGB image.
func BlurRGB(m *RGB, sigma float64) *RGB {
	k := GaussianKernel(sigma)
	out := NewRGB(m.W, m.H)
	r := k.Size / 2
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			var sr, sg, sb float64
			for ky := 0; ky < k.Size; ky++ {
				for kx := 0; kx < k.Size; kx++ {
					cr, cg, cb := m.At(x+kx-r, y+ky-r)
					w := k.W[ky*k.Size+kx]
					sr += w * cr
					sg += w * cg
					sb += w * cb
				}
			}
			out.Set(x, y, sr, sg, sb)
		}
	}
	return out
}

// Resize scales g to w×h with bilinear interpolation.
func Resize(g *Gray, w, h int) *Gray {
	out := NewGray(w, h)
	if w == 0 || h == 0 || g.W == 0 || g.H == 0 {
		return out
	}
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = g.Bilinear((float64(x)+0.5)*sx-0.5, (float64(y)+0.5)*sy-0.5)
		}
	}
	return out
}

// ResizeRGB scales m to w×h with bilinear interpolation.
func ResizeRGB(m *RGB, w, h int) *RGB {
	out := NewRGB(w, h)
	if w == 0 || h == 0 || m.W == 0 || m.H == 0 {
		return out
	}
	sx := float64(m.W) / float64(w)
	sy := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			fy := (float64(y)+0.5)*sy - 0.5
			x0, y0 := int(math.Floor(fx)), int(math.Floor(fy))
			dx, dy := fx-float64(x0), fy-float64(y0)
			r00, g00, b00 := m.At(x0, y0)
			r10, g10, b10 := m.At(x0+1, y0)
			r01, g01, b01 := m.At(x0, y0+1)
			r11, g11, b11 := m.At(x0+1, y0+1)
			out.Set(x, y,
				r00*(1-dx)*(1-dy)+r10*dx*(1-dy)+r01*(1-dx)*dy+r11*dx*dy,
				g00*(1-dx)*(1-dy)+g10*dx*(1-dy)+g01*(1-dx)*dy+g11*dx*dy,
				b00*(1-dx)*(1-dy)+b10*dx*(1-dy)+b01*(1-dx)*dy+b11*dx*dy)
		}
	}
	return out
}

// Integral is a summed-area table: S[y][x] holds the sum of all samples
// with coordinates < (x, y). SURF-style box filters evaluate in O(1)
// against it.
type Integral struct {
	W, H int
	S    []float64 // (W+1)×(H+1)
}

// NewIntegral computes the summed-area table of g.
func NewIntegral(g *Gray) *Integral {
	w, h := g.W, g.H
	it := &Integral{W: w, H: h, S: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 1; y <= h; y++ {
		var row float64
		for x := 1; x <= w; x++ {
			row += g.Pix[(y-1)*w+(x-1)]
			it.S[y*stride+x] = it.S[(y-1)*stride+x] + row
		}
	}
	return it
}

// Sum returns the sum of samples in the rectangle [x0, x1)×[y0, y1),
// clamped to the image bounds.
func (it *Integral) Sum(x0, y0, x1, y1 int) float64 {
	x0 = clampInt(x0, 0, it.W)
	x1 = clampInt(x1, 0, it.W)
	y0 = clampInt(y0, 0, it.H)
	y1 = clampInt(y1, 0, it.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := it.W + 1
	return it.S[y1*stride+x1] - it.S[y0*stride+x1] - it.S[y1*stride+x0] + it.S[y0*stride+x0]
}

// AddNoise adds zero-mean Gaussian noise with the given sigma, clamping
// samples to [0, 1]. It is used by the synthetic datasets to model
// sensor noise.
func AddNoise(g *Gray, sigma float64, rng *rand.Rand) *Gray {
	out := g.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + rng.NormFloat64()*sigma)
	}
	return out
}

// AddNoiseRGB adds per-channel Gaussian noise.
func AddNoiseRGB(m *RGB, sigma float64, rng *rand.Rand) *RGB {
	out := m.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + rng.NormFloat64()*sigma)
	}
	return out
}

// AdjustBrightness adds delta to every sample, clamping to [0, 1]. It
// models the lighting variation of spatial correlation (§2.2: "different
// lighting conditions ... different color bias").
func AdjustBrightness(g *Gray, delta float64) *Gray {
	out := g.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + delta)
	}
	return out
}

// AdjustBrightnessRGB adds delta to every channel.
func AdjustBrightnessRGB(m *RGB, delta float64) *RGB {
	out := m.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + delta)
	}
	return out
}
