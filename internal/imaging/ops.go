package imaging

import (
	"math"
	"math/rand"
	"sync"
)

// Kernel is a square convolution kernel (odd side length).
type Kernel struct {
	Size int // side length, odd
	W    []float64
}

// checkNoAlias panics when dst and src share a pixel buffer: the
// single-pass kernels read src while writing dst, so aliasing would
// corrupt the output. (BlurInto is the exception — it stages through a
// pooled scratch image and explicitly allows dst == src.)
func checkNoAlias(dst, src *Gray, op string) {
	if dst == src || (len(dst.Pix) > 0 && len(src.Pix) > 0 && &dst.Pix[0] == &src.Pix[0]) {
		panic("imaging: " + op + ": dst must not alias src")
	}
}

// checkNoAliasRGB is checkNoAlias for color images.
func checkNoAliasRGB(dst, src *RGB, op string) {
	if dst == src || (len(dst.Pix) > 0 && len(src.Pix) > 0 && &dst.Pix[0] == &src.Pix[0]) {
		panic("imaging: " + op + ": dst must not alias src")
	}
}

// Convolve applies k to g with border replication.
func Convolve(g *Gray, k Kernel) *Gray {
	return ConvolveInto(nil, g, k)
}

// ConvolveInto applies k to src with border replication, writing the
// result into dst (reshaped to src's dimensions; nil allocates). dst
// must not alias src. Returns dst. Output is bit-identical to the
// sequential single-goroutine evaluation regardless of parallelism.
func ConvolveInto(dst, src *Gray, k Kernel) *Gray {
	dst = reshapeGray(dst, src.W, src.H)
	checkNoAlias(dst, src, "ConvolveInto")
	ParallelRows(src.H, src.W*src.H*k.Size*k.Size, func(y0, y1 int) {
		convolveBand(dst, src, k, y0, y1)
	})
	return dst
}

// convolveBand computes output rows [y0, y1) of the convolution. The
// interior (all taps in bounds) uses direct indexing; borders replicate
// via At. Both paths accumulate taps in the identical (ky, kx) order,
// so interior and border pixels — and parallel and sequential runs —
// produce the same bits.
func convolveBand(dst, src *Gray, k Kernel, y0, y1 int) {
	w, h := src.W, src.H
	r := k.Size / 2
	size := k.Size
	kw := k.W
	for y := y0; y < y1; y++ {
		row := y * w
		x := 0
		if y >= r && y+r < h {
			for ; x < r && x < w; x++ {
				dst.Pix[row+x] = convolvePixelBorder(src, kw, size, r, x, y)
			}
			for ; x+r < w; x++ {
				var sum float64
				ki := 0
				for ky := 0; ky < size; ky++ {
					base := (y+ky-r)*w + x - r
					for kx := 0; kx < size; kx++ {
						sum += kw[ki] * src.Pix[base+kx]
						ki++
					}
				}
				dst.Pix[row+x] = sum
			}
		}
		for ; x < w; x++ {
			dst.Pix[row+x] = convolvePixelBorder(src, kw, size, r, x, y)
		}
	}
}

// convolvePixelBorder evaluates one output pixel with border
// replication, in the same tap order as the interior fast path.
func convolvePixelBorder(src *Gray, kw []float64, size, r, x, y int) float64 {
	var sum float64
	ki := 0
	for ky := 0; ky < size; ky++ {
		for kx := 0; kx < size; kx++ {
			sum += kw[ki] * src.At(x+kx-r, y+ky-r)
			ki++
		}
	}
	return sum
}

// SobelX and SobelY are the standard 3×3 Sobel gradient kernels.
var (
	SobelX = Kernel{Size: 3, W: []float64{-1, 0, 1, -2, 0, 2, -1, 0, 1}}
	SobelY = Kernel{Size: 3, W: []float64{-1, -2, -1, 0, 0, 0, 1, 2, 1}}
)

// Gradients returns the horizontal and vertical Sobel derivatives of g.
func Gradients(g *Gray) (gx, gy *Gray) {
	return GradientsInto(nil, nil, g)
}

// GradientsInto computes both Sobel derivatives of src in one fused
// pass over the image (one read of src produces both outputs), writing
// into gx and gy (reshaped; nil allocates). Neither destination may
// alias src. The per-pixel accumulation replicates Convolve's tap
// order exactly, so the fused pass is bit-identical to two Convolve
// calls.
func GradientsInto(gx, gy, src *Gray) (*Gray, *Gray) {
	gx = reshapeGray(gx, src.W, src.H)
	gy = reshapeGray(gy, src.W, src.H)
	checkNoAlias(gx, src, "GradientsInto")
	checkNoAlias(gy, src, "GradientsInto")
	ParallelRows(src.H, src.W*src.H*18, func(y0, y1 int) {
		sobelBand(gx, gy, src, y0, y1)
	})
	return gx, gy
}

// sobelBand computes rows [y0, y1) of both Sobel derivatives.
func sobelBand(gx, gy, src *Gray, y0, y1 int) {
	w, h := src.W, src.H
	xw, yw := SobelX.W, SobelY.W
	for y := y0; y < y1; y++ {
		interiorY := y >= 1 && y+1 < h
		row := y * w
		for x := 0; x < w; x++ {
			var sx, sy float64
			if interiorY && x >= 1 && x+1 < w {
				ki := 0
				for ky := 0; ky < 3; ky++ {
					base := (y+ky-1)*w + x - 1
					for kx := 0; kx < 3; kx++ {
						v := src.Pix[base+kx]
						sx += xw[ki] * v
						sy += yw[ki] * v
						ki++
					}
				}
			} else {
				ki := 0
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						v := src.At(x+kx-1, y+ky-1)
						sx += xw[ki] * v
						sy += yw[ki] * v
						ki++
					}
				}
			}
			gx.Pix[row+x] = sx
			gy.Pix[row+x] = sy
		}
	}
}

// GradientMagnitudeOrientation returns per-pixel gradient magnitude and
// orientation (radians in [0, π), unsigned).
func GradientMagnitudeOrientation(g *Gray) (mag, ori *Gray) {
	return GradientMagnitudeOrientationInto(nil, nil, g)
}

// GradientMagnitudeOrientationInto computes gradient magnitude and
// unsigned orientation in a single fused pass: the Sobel derivatives
// are evaluated per pixel and consumed immediately, so no intermediate
// gradient images are materialized at all. mag and ori are reshaped
// (nil allocates) and must not alias src. Bit-identical to the
// unfused Gradients + Hypot/Atan2 pipeline.
func GradientMagnitudeOrientationInto(mag, ori, src *Gray) (*Gray, *Gray) {
	mag = reshapeGray(mag, src.W, src.H)
	ori = reshapeGray(ori, src.W, src.H)
	checkNoAlias(mag, src, "GradientMagnitudeOrientationInto")
	checkNoAlias(ori, src, "GradientMagnitudeOrientationInto")
	ParallelRows(src.H, src.W*src.H*40, func(y0, y1 int) {
		magOriBand(mag, ori, src, y0, y1)
	})
	return mag, ori
}

// magOriBand computes rows [y0, y1) of the fused magnitude/orientation
// pass.
func magOriBand(mag, ori, src *Gray, y0, y1 int) {
	w, h := src.W, src.H
	xw, yw := SobelX.W, SobelY.W
	for y := y0; y < y1; y++ {
		interiorY := y >= 1 && y+1 < h
		row := y * w
		for x := 0; x < w; x++ {
			var sx, sy float64
			if interiorY && x >= 1 && x+1 < w {
				ki := 0
				for ky := 0; ky < 3; ky++ {
					base := (y+ky-1)*w + x - 1
					for kx := 0; kx < 3; kx++ {
						v := src.Pix[base+kx]
						sx += xw[ki] * v
						sy += yw[ki] * v
						ki++
					}
				}
			} else {
				ki := 0
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						v := src.At(x+kx-1, y+ky-1)
						sx += xw[ki] * v
						sy += yw[ki] * v
						ki++
					}
				}
			}
			mag.Pix[row+x] = math.Hypot(sx, sy)
			a := math.Atan2(sy, sx)
			if a < 0 {
				a += math.Pi
			}
			if a >= math.Pi {
				a -= math.Pi
			}
			ori.Pix[row+x] = a
		}
	}
}

// GaussianKernel builds a normalized 2-D Gaussian kernel for the given
// standard deviation. The radius is ceil(3σ).
func GaussianKernel(sigma float64) Kernel {
	if sigma <= 0 {
		return Kernel{Size: 1, W: []float64{1}}
	}
	r := int(math.Ceil(3 * sigma))
	size := 2*r + 1
	w := make([]float64, size*size)
	var sum float64
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			v := math.Exp(-float64(x*x+y*y) / (2 * sigma * sigma))
			w[(y+r)*size+(x+r)] = v
			sum += v
		}
	}
	for i := range w {
		w[i] /= sum
	}
	return Kernel{Size: size, W: w}
}

// gaussianKernel1D builds a normalized 1-D Gaussian of radius ceil(3σ).
func gaussianKernel1D(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	w := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		w[i+r] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// kernelCacheMax bounds the σ → kernel caches. Feature pipelines cycle
// through a fixed handful of sigmas (SIFT uses six); a workload that
// sweeps arbitrary sigmas falls back to building kernels per call once
// the bound is reached rather than growing without limit.
const kernelCacheMax = 64

var (
	kernel1DMu    sync.RWMutex
	kernel1DCache = map[float64][]float64{}
	kernel2DMu    sync.RWMutex
	kernel2DCache = map[float64]Kernel{}
)

// gaussian1DCached returns the (immutable, shared) 1-D Gaussian for
// sigma, memoized across calls.
func gaussian1DCached(sigma float64) []float64 {
	kernel1DMu.RLock()
	k, ok := kernel1DCache[sigma]
	kernel1DMu.RUnlock()
	if ok {
		return k
	}
	k = gaussianKernel1D(sigma)
	kernel1DMu.Lock()
	if len(kernel1DCache) < kernelCacheMax {
		kernel1DCache[sigma] = k
	}
	kernel1DMu.Unlock()
	return k
}

// gaussian2DCached returns the (immutable, shared) 2-D Gaussian for
// sigma, memoized across calls.
func gaussian2DCached(sigma float64) Kernel {
	kernel2DMu.RLock()
	k, ok := kernel2DCache[sigma]
	kernel2DMu.RUnlock()
	if ok {
		return k
	}
	k = GaussianKernel(sigma)
	kernel2DMu.Lock()
	if len(kernel2DCache) < kernelCacheMax {
		kernel2DCache[sigma] = k
	}
	kernel2DMu.Unlock()
	return k
}

// Blur applies a Gaussian blur with the given sigma. The Gaussian is
// separable, so the blur runs as two 1-D passes — O(r) per pixel instead
// of O(r²).
func Blur(g *Gray, sigma float64) *Gray {
	return BlurInto(nil, g, sigma)
}

// BlurInto applies a separable Gaussian blur to src, writing into dst
// (reshaped; nil allocates). The two 1-D passes stage through a pooled
// scratch image, so dst MAY alias src (in-place blur). Returns dst.
func BlurInto(dst, src *Gray, sigma float64) *Gray {
	k := gaussian1DCached(sigma)
	dst = reshapeGray(dst, src.W, src.H)
	tmp := GetGray(src.W, src.H)
	work := src.W * src.H * len(k)
	// Horizontal pass: src → tmp.
	ParallelRows(src.H, work, func(y0, y1 int) {
		blurHBand(tmp, src, k, y0, y1)
	})
	// Vertical pass: tmp → dst.
	ParallelRows(src.H, work, func(y0, y1 int) {
		blurVBand(dst, tmp, k, y0, y1)
	})
	PutGray(tmp)
	return dst
}

// blurHBand computes rows [y0, y1) of the horizontal 1-D pass. It
// accumulates taps-outer (see blurVBand): a per-pixel tap loop is a
// serial chain of dependent FP adds and runs at add latency, while the
// taps-outer form makes consecutive pixels independent and runs at add
// throughput. Border replication is handled per tap by splitting the row
// into a left segment that clamps to srow[0], an interior streamed
// segment, and a right segment that clamps to srow[w-1] — the same
// values At would produce. The tap order per output pixel — ascending i
// onto an explicit zero — matches `sum := 0; sum += k[i]·v_i` exactly,
// so the restructuring is bit-identical.
func blurHBand(dst, src *Gray, k []float64, y0, y1 int) {
	w := src.W
	if w == 0 {
		return
	}
	r := len(k) / 2
	for y := y0; y < y1; y++ {
		row := y * w
		srow := src.Pix[row : row+w]
		drow := dst.Pix[row : row+w]
		for x := range drow {
			drow[x] = 0
		}
		for i, wt := range k {
			off := i - r
			lo := -off // output x below lo read the clamped srow[0]
			if lo < 0 {
				lo = 0
			} else if lo > w {
				lo = w
			}
			hi := w - off // output x at or above hi read the clamped srow[w-1]
			if hi > w {
				hi = w
			} else if hi < lo {
				hi = lo
			}
			left := wt * srow[0]
			for j := 0; j < lo; j++ {
				drow[j] += left
			}
			if hi > lo { // empty when the tap falls entirely off one edge
				s := srow[lo+off : hi+off]
				d := drow[lo:hi]
				for j, v := range s {
					d[j] += wt * v
				}
			}
			right := wt * srow[w-1]
			for j := hi; j < w; j++ {
				drow[j] += right
			}
		}
	}
}

// blurVBand computes rows [y0, y1) of the vertical 1-D pass. Instead of
// walking a strided column window per output pixel (one cache miss per
// tap at realistic widths), it accumulates taps-outer: each source row
// is streamed once and added into the output row. For a given output
// pixel the taps are still added in ascending i order onto an explicit
// zero, which is exactly the order (and exact zero seed) of
// `sum := 0; sum += k[i]·v_i`, so the result is bit-identical — including
// negative-zero propagation — while every access is sequential.
func blurVBand(dst, src *Gray, k []float64, y0, y1 int) {
	w, h := src.W, src.H
	r := len(k) / 2
	for y := y0; y < y1; y++ {
		drow := dst.Pix[y*w : y*w+w]
		for x := range drow {
			drow[x] = 0
		}
		for i, wt := range k {
			yy := clampInt(y+i-r, 0, h-1)
			srow := src.Pix[yy*w : yy*w+w]
			for x, v := range srow {
				drow[x] += wt * v
			}
		}
	}
}

// BlurRGB blurs each channel of an RGB image.
func BlurRGB(m *RGB, sigma float64) *RGB {
	return BlurRGBInto(nil, m, sigma)
}

// BlurRGBInto blurs each channel of src with a 2-D Gaussian, writing
// into dst (reshaped; nil allocates). dst must not alias src. Returns
// dst.
func BlurRGBInto(dst, src *RGB, sigma float64) *RGB {
	k := gaussian2DCached(sigma)
	dst = reshapeRGB(dst, src.W, src.H)
	checkNoAliasRGB(dst, src, "BlurRGBInto")
	ParallelRows(src.H, src.W*src.H*k.Size*k.Size*3, func(y0, y1 int) {
		blurRGBBand(dst, src, k, y0, y1)
	})
	return dst
}

// blurRGBBand computes rows [y0, y1) of the 2-D RGB blur.
func blurRGBBand(dst, src *RGB, k Kernel, y0, y1 int) {
	w, h := src.W, src.H
	r := k.Size / 2
	size := k.Size
	kw := k.W
	for y := y0; y < y1; y++ {
		interiorY := y >= r && y+r < h
		for x := 0; x < w; x++ {
			var sr, sg, sb float64
			if interiorY && x >= r && x+r < w {
				ki := 0
				for ky := 0; ky < size; ky++ {
					base := 3 * ((y+ky-r)*w + x - r)
					for kx := 0; kx < size; kx++ {
						wt := kw[ki]
						sr += wt * src.Pix[base]
						sg += wt * src.Pix[base+1]
						sb += wt * src.Pix[base+2]
						base += 3
						ki++
					}
				}
			} else {
				ki := 0
				for ky := 0; ky < size; ky++ {
					for kx := 0; kx < size; kx++ {
						cr, cg, cb := src.At(x+kx-r, y+ky-r)
						wt := kw[ki]
						sr += wt * cr
						sg += wt * cg
						sb += wt * cb
						ki++
					}
				}
			}
			i := 3 * (y*w + x)
			dst.Pix[i], dst.Pix[i+1], dst.Pix[i+2] = sr, sg, sb
		}
	}
}

// Resize scales g to w×h with bilinear interpolation.
func Resize(g *Gray, w, h int) *Gray {
	return ResizeInto(nil, g, w, h)
}

// ResizeInto scales src to w×h with bilinear interpolation, writing
// into dst (reshaped; nil allocates). dst must not alias src (unless
// the output is empty). Returns dst.
func ResizeInto(dst, src *Gray, w, h int) *Gray {
	dst = reshapeGray(dst, w, h)
	if w == 0 || h == 0 || src.W == 0 || src.H == 0 {
		for i := range dst.Pix {
			dst.Pix[i] = 0
		}
		return dst
	}
	checkNoAlias(dst, src, "ResizeInto")
	sx := float64(src.W) / float64(w)
	sy := float64(src.H) / float64(h)
	ParallelRows(h, w*h*8, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				dst.Pix[y*w+x] = src.Bilinear((float64(x)+0.5)*sx-0.5, (float64(y)+0.5)*sy-0.5)
			}
		}
	})
	return dst
}

// ResizeRGB scales m to w×h with bilinear interpolation.
func ResizeRGB(m *RGB, w, h int) *RGB {
	return ResizeRGBInto(nil, m, w, h)
}

// ResizeRGBInto scales src to w×h with bilinear interpolation, writing
// into dst (reshaped; nil allocates). dst must not alias src (unless
// the output is empty). Returns dst.
func ResizeRGBInto(dst, src *RGB, w, h int) *RGB {
	dst = reshapeRGB(dst, w, h)
	if w == 0 || h == 0 || src.W == 0 || src.H == 0 {
		for i := range dst.Pix {
			dst.Pix[i] = 0
		}
		return dst
	}
	checkNoAliasRGB(dst, src, "ResizeRGBInto")
	sx := float64(src.W) / float64(w)
	sy := float64(src.H) / float64(h)
	ParallelRows(h, w*h*24, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				fx := (float64(x)+0.5)*sx - 0.5
				fy := (float64(y)+0.5)*sy - 0.5
				x0, y0f := int(math.Floor(fx)), int(math.Floor(fy))
				dx, dy := fx-float64(x0), fy-float64(y0f)
				r00, g00, b00 := src.At(x0, y0f)
				r10, g10, b10 := src.At(x0+1, y0f)
				r01, g01, b01 := src.At(x0, y0f+1)
				r11, g11, b11 := src.At(x0+1, y0f+1)
				dst.Set(x, y,
					r00*(1-dx)*(1-dy)+r10*dx*(1-dy)+r01*(1-dx)*dy+r11*dx*dy,
					g00*(1-dx)*(1-dy)+g10*dx*(1-dy)+g01*(1-dx)*dy+g11*dx*dy,
					b00*(1-dx)*(1-dy)+b10*dx*(1-dy)+b01*(1-dx)*dy+b11*dx*dy)
			}
		}
	})
	return dst
}

// Integral is a summed-area table: S[y][x] holds the sum of all samples
// with coordinates < (x, y). SURF-style box filters evaluate in O(1)
// against it.
type Integral struct {
	W, H int
	S    []float64 // (W+1)×(H+1)
}

// NewIntegral computes the summed-area table of g.
func NewIntegral(g *Gray) *Integral {
	it := &Integral{}
	it.From(g)
	return it
}

// From recomputes the summed-area table over g in place, reusing the
// existing buffer when its capacity suffices. The prefix-sum recurrence
// is inherently sequential in y, so this pass does not parallelize; it
// is a single O(W·H) sweep.
func (it *Integral) From(g *Gray) {
	w, h := g.W, g.H
	n := (w + 1) * (h + 1)
	if cap(it.S) < n {
		it.S = make([]float64, n)
	}
	it.W, it.H, it.S = w, h, it.S[:n]
	stride := w + 1
	// The recurrence only writes cells (x≥1, y≥1); the top row and left
	// column must be zero (a fresh make guarantees that, a reused buffer
	// does not).
	for x := 0; x <= w; x++ {
		it.S[x] = 0
	}
	for y := 1; y <= h; y++ {
		it.S[y*stride] = 0
	}
	for y := 1; y <= h; y++ {
		var row float64
		for x := 1; x <= w; x++ {
			row += g.Pix[(y-1)*w+(x-1)]
			it.S[y*stride+x] = it.S[(y-1)*stride+x] + row
		}
	}
}

// Sum returns the sum of samples in the rectangle [x0, x1)×[y0, y1),
// clamped to the image bounds.
func (it *Integral) Sum(x0, y0, x1, y1 int) float64 {
	x0 = clampInt(x0, 0, it.W)
	x1 = clampInt(x1, 0, it.W)
	y0 = clampInt(y0, 0, it.H)
	y1 = clampInt(y1, 0, it.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := it.W + 1
	return it.S[y1*stride+x1] - it.S[y0*stride+x1] - it.S[y1*stride+x0] + it.S[y0*stride+x0]
}

// SumUnchecked is Sum without bounds clamping, for hot loops whose
// caller guarantees 0 ≤ x0 ≤ x1 ≤ W and 0 ≤ y0 ≤ y1 ≤ H (out-of-range
// coordinates panic on the slice access). Identical to Sum when the
// rectangle is in bounds and non-empty.
func (it *Integral) SumUnchecked(x0, y0, x1, y1 int) float64 {
	stride := it.W + 1
	return it.S[y1*stride+x1] - it.S[y0*stride+x1] - it.S[y1*stride+x0] + it.S[y0*stride+x0]
}

// AddNoise adds zero-mean Gaussian noise with the given sigma, clamping
// samples to [0, 1]. It is used by the synthetic datasets to model
// sensor noise.
func AddNoise(g *Gray, sigma float64, rng *rand.Rand) *Gray {
	out := g.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + rng.NormFloat64()*sigma)
	}
	return out
}

// AddNoiseRGB adds per-channel Gaussian noise.
func AddNoiseRGB(m *RGB, sigma float64, rng *rand.Rand) *RGB {
	out := m.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + rng.NormFloat64()*sigma)
	}
	return out
}

// AdjustBrightness adds delta to every sample, clamping to [0, 1]. It
// models the lighting variation of spatial correlation (§2.2: "different
// lighting conditions ... different color bias").
func AdjustBrightness(g *Gray, delta float64) *Gray {
	out := g.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + delta)
	}
	return out
}

// AdjustBrightnessRGB adds delta to every channel.
func AdjustBrightnessRGB(m *RGB, delta float64) *RGB {
	out := m.Clone()
	for i := range out.Pix {
		out.Pix[i] = Clamp01(out.Pix[i] + delta)
	}
	return out
}
