// Package vec provides the vector and distance-metric foundation for
// Potluck's key space. Cache keys are variable-length feature vectors
// defined in a metric space (paper §3.2); every index structure and the
// threshold tuner operate on the types defined here.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a variable-length feature vector. It is the universal key
// representation: feature extractors produce Vectors, indices store them,
// and metrics compare them.
type Vector []float64

// ErrDimensionMismatch is returned when two vectors of different lengths
// are compared with a metric that requires equal dimensionality.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Add returns v + w. It panics if the dimensions differ; use with vectors
// produced by the same extractor.
func (v Vector) Add(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	mustSameDim(v, w)
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Normalize returns v scaled to unit L2 norm. The zero vector is returned
// unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(1 / n)
}

// NormalizeL1 returns v scaled so its components sum to 1 in absolute
// value. The zero vector is returned unchanged. Histogram features use
// this so that images of different sizes are comparable.
func (v Vector) NormalizeL1() Vector {
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	if sum == 0 {
		return v.Clone()
	}
	return v.Scale(1 / sum)
}

// SizeBytes returns the in-memory footprint of the vector payload,
// used by the importance metric's entry-size term.
func (v Vector) SizeBytes() int { return 8 * len(v) }

func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(v), len(w)))
	}
}

// FromString embeds a string into the key space as its byte values, the
// paper's String key support (§4.2: "lexical ordering and comparison for
// strings"). Under lexicographic comparison — the tree-map index — the
// embedding preserves the string order; under Lp metrics it gives a
// crude edit-distance-like dissimilarity suitable for exact or
// near-exact matching.
func FromString(s string) Vector {
	out := make(Vector, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = float64(s[i])
	}
	return out
}

// ToString recovers the string from a FromString embedding. Components
// outside the byte range are clamped.
func ToString(v Vector) string {
	b := make([]byte, len(v))
	for i, x := range v {
		switch {
		case x < 0:
			b[i] = 0
		case x > 255:
			b[i] = 255
		default:
			b[i] = byte(x)
		}
	}
	return string(b)
}

// A Metric defines a notion of distance between two keys. Implementations
// must satisfy the metric axioms on vectors of equal dimension:
// non-negativity, identity of indiscernibles, symmetry, and the triangle
// inequality (cosine distance satisfies a relaxed form; see CosineMetric).
type Metric interface {
	// Distance returns the distance between a and b. Implementations
	// return +Inf for vectors of mismatched dimensions rather than
	// panicking, so that heterogeneous indices degrade gracefully.
	Distance(a, b Vector) float64
	// Name returns a short stable identifier used in wire messages
	// and experiment output.
	Name() string
}

// EuclideanMetric is the L2 distance, the default metric in the paper.
type EuclideanMetric struct{}

// Distance implements Metric.
func (EuclideanMetric) Distance(a, b Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Name implements Metric.
func (EuclideanMetric) Name() string { return "euclidean" }

// SquaredEuclidean is the squared L2 distance (no square root), for hot
// paths that only need distance ordering; like Distance it returns +Inf
// on dimension mismatch.
func SquaredEuclidean(a, b Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// ManhattanMetric is the L1 distance.
type ManhattanMetric struct{}

// Distance implements Metric.
func (ManhattanMetric) Distance(a, b Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// Name implements Metric.
func (ManhattanMetric) Name() string { return "manhattan" }

// ChebyshevMetric is the L∞ distance.
type ChebyshevMetric struct{}

// Distance implements Metric.
func (ChebyshevMetric) Distance(a, b Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// Name implements Metric.
func (ChebyshevMetric) Name() string { return "chebyshev" }

// CosineMetric is 1 - cos(a, b), in [0, 2]. It is not a true metric (the
// triangle inequality can fail) but is widely used for histogram features;
// Potluck's threshold tuner only requires a consistent dissimilarity.
type CosineMetric struct{}

// Distance implements Metric.
func (CosineMetric) Distance(a, b Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		if na == nb {
			return 0
		}
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Name implements Metric.
func (CosineMetric) Name() string { return "cosine" }

// MetricByName returns the built-in metric with the given name, or an
// error if none is registered. It is used when reconstructing metrics
// from wire messages.
func MetricByName(name string) (Metric, error) {
	switch name {
	case "euclidean", "":
		return EuclideanMetric{}, nil
	case "manhattan":
		return ManhattanMetric{}, nil
	case "chebyshev":
		return ChebyshevMetric{}, nil
	case "cosine":
		return CosineMetric{}, nil
	}
	return nil, fmt.Errorf("vec: unknown metric %q", name)
}
