package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 42
	if v[0] != 1 {
		t.Fatalf("Clone aliases original: v = %v", v)
	}
}

func TestAddSubScaleDot(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := a.Add(b); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got[0] != 3 || got[1] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	n := v.Normalize()
	if math.Abs(n.Norm()-1) > 1e-12 {
		t.Errorf("Normalize().Norm() = %v, want 1", n.Norm())
	}
	zero := Vector{0, 0}
	if got := zero.Normalize(); got[0] != 0 || got[1] != 0 {
		t.Errorf("Normalize of zero vector = %v", got)
	}
}

func TestNormalizeL1(t *testing.T) {
	v := Vector{1, -1, 2}
	n := v.NormalizeL1()
	var sum float64
	for _, x := range n {
		sum += math.Abs(x)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("L1 norm after NormalizeL1 = %v, want 1", sum)
	}
}

func TestSizeBytes(t *testing.T) {
	if got := (Vector{1, 2, 3}).SizeBytes(); got != 24 {
		t.Errorf("SizeBytes = %d, want 24", got)
	}
}

func TestEuclideanKnownValues(t *testing.T) {
	m := EuclideanMetric{}
	if got := m.Distance(Vector{0, 0}, Vector{3, 4}); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := m.Distance(Vector{1}, Vector{1, 2}); !math.IsInf(got, 1) {
		t.Errorf("mismatched dims: got %v, want +Inf", got)
	}
}

func TestManhattanAndChebyshev(t *testing.T) {
	a, b := Vector{0, 0, 0}, Vector{1, -2, 3}
	if got := (ManhattanMetric{}).Distance(a, b); got != 6 {
		t.Errorf("Manhattan = %v, want 6", got)
	}
	if got := (ChebyshevMetric{}).Distance(a, b); got != 3 {
		t.Errorf("Chebyshev = %v, want 3", got)
	}
}

func TestCosine(t *testing.T) {
	m := CosineMetric{}
	if got := m.Distance(Vector{1, 0}, Vector{2, 0}); math.Abs(got) > 1e-12 {
		t.Errorf("parallel vectors: got %v, want 0", got)
	}
	if got := m.Distance(Vector{1, 0}, Vector{0, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("orthogonal vectors: got %v, want 1", got)
	}
	if got := m.Distance(Vector{1, 0}, Vector{-1, 0}); math.Abs(got-2) > 1e-12 {
		t.Errorf("opposite vectors: got %v, want 2", got)
	}
	if got := m.Distance(Vector{0, 0}, Vector{0, 0}); got != 0 {
		t.Errorf("both zero: got %v, want 0", got)
	}
	if got := m.Distance(Vector{0, 0}, Vector{1, 0}); got != 1 {
		t.Errorf("one zero: got %v, want 1", got)
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"euclidean", "manhattan", "chebyshev", "cosine"} {
		m, err := MetricByName(name)
		if err != nil {
			t.Fatalf("MetricByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("MetricByName(%q).Name() = %q", name, m.Name())
		}
	}
	if m, err := MetricByName(""); err != nil || m.Name() != "euclidean" {
		t.Errorf("empty name should default to euclidean, got %v, %v", m, err)
	}
	if _, err := MetricByName("no-such"); err == nil {
		t.Error("unknown metric name did not error")
	}
}

// clamp maps arbitrary quick-generated floats into a sane range so the
// axiom checks are not dominated by overflow.
func clamp(v []float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1e6)
	}
	return out
}

func TestMetricAxiomsProperty(t *testing.T) {
	metrics := []Metric{EuclideanMetric{}, ManhattanMetric{}, ChebyshevMetric{}}
	for _, m := range metrics {
		m := m
		f := func(raw1, raw2, raw3 [8]float64) bool {
			a := clamp(raw1[:])
			b := clamp(raw2[:])
			c := clamp(raw3[:])
			dab := m.Distance(a, b)
			dba := m.Distance(b, a)
			// Symmetry and non-negativity.
			if dab < 0 || math.Abs(dab-dba) > 1e-6*(1+dab) {
				return false
			}
			// Identity.
			if m.Distance(a, a) != 0 {
				return false
			}
			// Triangle inequality with FP slack.
			dac := m.Distance(a, c)
			dcb := m.Distance(c, b)
			return dab <= dac+dcb+1e-6*(1+dab)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s axioms violated: %v", m.Name(), err)
		}
	}
}

func TestCosineSymmetryProperty(t *testing.T) {
	m := CosineMetric{}
	f := func(raw1, raw2 [6]float64) bool {
		a, b := clamp(raw1[:]), clamp(raw2[:])
		d1, d2 := m.Distance(a, b), m.Distance(b, a)
		return d1 >= -1e-12 && d1 <= 2+1e-9 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("cosine symmetry/range violated: %v", err)
	}
}

func TestStringEmbedding(t *testing.T) {
	for _, s := range []string{"", "a", "stop sign", "日本"} {
		v := FromString(s)
		if got := ToString(v); got != s {
			t.Errorf("round trip %q = %q", s, got)
		}
	}
	// Lexicographic order is preserved under component-wise comparison.
	a, b := FromString("apple"), FromString("apricot")
	less := false
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			less = a[i] < b[i]
			break
		}
	}
	if !less {
		t.Error("embedding broke lexicographic order")
	}
	// Out-of-range components clamp instead of panicking.
	if got := ToString(Vector{-5, 300, 65}); got != string([]byte{0, 255, 65}) {
		t.Errorf("clamped ToString = %q", got)
	}
}

func TestStringKeysInTreeMapScenario(t *testing.T) {
	// Exact string matching through the vector embedding: distance zero
	// iff equal strings.
	m := EuclideanMetric{}
	if m.Distance(FromString("mute"), FromString("mute")) != 0 {
		t.Error("equal strings not at distance 0")
	}
	if m.Distance(FromString("mute"), FromString("mutt")) == 0 {
		t.Error("different strings at distance 0")
	}
}
