package feature

import (
	"math"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// FAST is the Features-from-Accelerated-Segment-Test corner detector
// (paper citation [42]): a pixel is a corner when at least 9 contiguous
// pixels on the Bresenham circle of radius 3 around it are all brighter
// or all darker than the center by a threshold. It is the cheapest
// detector in Table 1 and the paper's choice "for motion estimation
// within the AR applications" (§5.2). The key is an 8×8 grid of corner
// densities.
type FAST struct {
	// Threshold is the brightness delta; 0 means the default 0.15.
	Threshold float64
}

// fastCircle is the radius-3 Bresenham circle (16 offsets, clockwise).
var fastCircle = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// Name implements Extractor.
func (FAST) Name() string { return "fast" }

// Usage implements Extractor.
func (FAST) Usage() string { return "Detection" }

// Extract implements Extractor.
func (f FAST) Extract(img *imaging.RGB) Result {
	th := f.Threshold
	if th <= 0 {
		th = 0.15
	}
	sc := scratchPool.Get().(*extractScratch)
	g := img.GrayInto(imaging.GetGray(img.W, img.H))
	pts := sc.pts[:0]
	for y := 3; y < g.H-3; y++ {
		for x := 3; x < g.W-3; x++ {
			c := g.Pix[y*g.W+x]
			// Fast rejection: a 9-contiguous segment spans at least two of
			// the four compass points, so fewer than two deviating compass
			// pixels cannot be a corner.
			dev := 0
			for _, i := range [4]int{0, 4, 8, 12} {
				v := g.Pix[(y+fastCircle[i][1])*g.W+x+fastCircle[i][0]]
				if v > c+th || v < c-th {
					dev++
				}
			}
			if dev < 2 {
				continue
			}
			if fastSegment(g, x, y, c, th) {
				pts = append(pts, point{x: x, y: y, weight: 1})
			}
		}
	}
	sc.pts = pts
	key := gridPool(pts, g.W, g.H, 8, 8)
	n := len(pts)
	imaging.PutGray(g)
	scratchPool.Put(sc)
	// Payload: (x, y) plus a small patch per corner, as a tracker would
	// retain.
	return Result{Key: key, RawBytes: n * 56, Keypoints: n}
}

// fastSegment reports whether 9 contiguous circle pixels are all
// brighter or all darker than c by th.
func fastSegment(g *imaging.Gray, x, y int, c, th float64) bool {
	var brighter, darker [32]bool
	for i, o := range fastCircle {
		v := g.Pix[(y+o[1])*g.W+x+o[0]]
		brighter[i], brighter[i+16] = v > c+th, v > c+th
		darker[i], darker[i+16] = v < c-th, v < c-th
	}
	run := 0
	for i := 0; i < 32; i++ {
		if brighter[i] {
			run++
			if run >= 9 {
				return true
			}
		} else {
			run = 0
		}
	}
	run = 0
	for i := 0; i < 32; i++ {
		if darker[i] {
			run++
			if run >= 9 {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// Harris is the Harris-Stephens corner detector (paper citation [24]):
// the response R = det(M) − k·tr(M)² of the Gaussian-windowed structure
// tensor M, thresholded and grid-pooled into an 8×8 density key. It
// costs more than FAST (three convolutions) but less than the
// descriptor-based features, matching Table 1's ordering.
type Harris struct {
	// K is the Harris sensitivity parameter; 0 means the usual 0.04.
	K float64
	// Threshold on the response; 0 means the default 1e-4.
	Threshold float64
}

// Name implements Extractor.
func (Harris) Name() string { return "harris" }

// Usage implements Extractor.
func (Harris) Usage() string { return "Detection" }

// Extract implements Extractor.
func (h Harris) Extract(img *imaging.RGB) Result {
	k := h.K
	if k <= 0 {
		k = 0.04
	}
	th := h.Threshold
	if th <= 0 {
		th = 1e-4
	}
	sc := scratchPool.Get().(*extractScratch)
	g := img.GrayInto(imaging.GetGray(img.W, img.H))
	w, ht := g.W, g.H
	gx := imaging.GetGray(w, ht)
	gy := imaging.GetGray(w, ht)
	imaging.GradientsInto(gx, gy, g)
	ixx := imaging.GetGray(w, ht)
	iyy := imaging.GetGray(w, ht)
	ixy := imaging.GetGray(w, ht)
	imaging.ParallelRows(ht, w*ht*6, func(y0, y1 int) {
		for i := y0 * w; i < y1*w; i++ {
			ixx.Pix[i] = gx.Pix[i] * gx.Pix[i]
			iyy.Pix[i] = gy.Pix[i] * gy.Pix[i]
			ixy.Pix[i] = gx.Pix[i] * gy.Pix[i]
		}
	})
	// Gaussian window over the structure tensor (in-place blurs reuse
	// the tensor buffers through the pooled separable passes).
	ixx = imaging.BlurInto(ixx, ixx, 1.0)
	iyy = imaging.BlurInto(iyy, iyy, 1.0)
	ixy = imaging.BlurInto(ixy, ixy, 1.0)
	// Precompute the response over the whole image once; the previous
	// implementation recomputed a neighbour's response for every local-max
	// probe (up to 9 evaluations per candidate). Same expression, so the
	// selected corners — and their weights — are identical.
	resp := gx // recycle: the gradients are no longer needed
	imaging.ParallelRows(ht, w*ht*8, func(y0, y1 int) {
		for i := y0 * w; i < y1*w; i++ {
			det := ixx.Pix[i]*iyy.Pix[i] - ixy.Pix[i]*ixy.Pix[i]
			tr := ixx.Pix[i] + iyy.Pix[i]
			resp.Pix[i] = det - k*tr*tr
		}
	})
	pts := sc.pts[:0]
	for y := 1; y < ht-1; y++ {
		row := y * w
		for x := 1; x < w-1; x++ {
			r := resp.Pix[row+x]
			if r > th && grayLocalMax(resp, x, y, r) {
				pts = append(pts, point{x: x, y: y, weight: r})
			}
		}
	}
	sc.pts = pts
	key := gridPool(pts, w, ht, 8, 8)
	n := len(pts)
	imaging.PutGray(g)
	imaging.PutGray(gx)
	imaging.PutGray(gy)
	imaging.PutGray(ixx)
	imaging.PutGray(iyy)
	imaging.PutGray(ixy)
	scratchPool.Put(sc)
	return Result{Key: key, RawBytes: n * 72, Keypoints: n}
}

// isLocalMax reports whether value r at (x, y) is a strict 8-neighbour
// maximum of f.
func isLocalMax(f func(x, y int) float64, x, y int, r float64) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if f(x+dx, y+dy) > r {
				return false
			}
		}
	}
	return true
}

// orientationHistogram accumulates an nbins histogram of gradient
// orientation around (x, y) within the given radius, weighted by
// magnitude; shared by the SIFT- and SURF-like descriptors. Retained as
// the reference implementation for the equivalence tests; the hot path
// is orientationHistogramInto.
func orientationHistogram(mag, ori *imaging.Gray, x, y, radius, nbins int) vec.Vector {
	h := make(vec.Vector, nbins)
	orientationHistogramInto(h, mag, ori, x, y, radius)
	return h
}

// orientationHistogramInto accumulates a len(h)-bin orientation
// histogram into h (zeroed first). Windows that lie fully inside the
// image skip the border-replicating At in favour of direct indexing —
// identical values, no clamping arithmetic.
func orientationHistogramInto(h []float64, mag, ori *imaging.Gray, x, y, radius int) {
	for i := range h {
		h[i] = 0
	}
	nbins := len(h)
	fb := float64(nbins)
	w, ht := ori.W, ori.H
	if x >= radius && x+radius < w && y >= radius && y+radius < ht {
		for dy := -radius; dy <= radius; dy++ {
			row := (y+dy)*w + x
			for dx := -radius; dx <= radius; dx++ {
				b := int(ori.Pix[row+dx] / math.Pi * fb)
				if b >= nbins {
					b = nbins - 1
				}
				h[b] += mag.Pix[row+dx]
			}
		}
		return
	}
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			b := int(ori.At(x+dx, y+dy) / math.Pi * fb)
			if b >= nbins {
				b = nbins - 1
			}
			h[b] += mag.At(x+dx, y+dy)
		}
	}
}
