package feature

import (
	"math"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// FAST is the Features-from-Accelerated-Segment-Test corner detector
// (paper citation [42]): a pixel is a corner when at least 9 contiguous
// pixels on the Bresenham circle of radius 3 around it are all brighter
// or all darker than the center by a threshold. It is the cheapest
// detector in Table 1 and the paper's choice "for motion estimation
// within the AR applications" (§5.2). The key is an 8×8 grid of corner
// densities.
type FAST struct {
	// Threshold is the brightness delta; 0 means the default 0.15.
	Threshold float64
}

// fastCircle is the radius-3 Bresenham circle (16 offsets, clockwise).
var fastCircle = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// Name implements Extractor.
func (FAST) Name() string { return "fast" }

// Usage implements Extractor.
func (FAST) Usage() string { return "Detection" }

// Extract implements Extractor.
func (f FAST) Extract(img *imaging.RGB) Result {
	th := f.Threshold
	if th <= 0 {
		th = 0.15
	}
	g := img.Gray()
	var pts []point
	for y := 3; y < g.H-3; y++ {
		for x := 3; x < g.W-3; x++ {
			c := g.Pix[y*g.W+x]
			// Fast rejection: a 9-contiguous segment spans at least two of
			// the four compass points, so fewer than two deviating compass
			// pixels cannot be a corner.
			dev := 0
			for _, i := range [4]int{0, 4, 8, 12} {
				v := g.Pix[(y+fastCircle[i][1])*g.W+x+fastCircle[i][0]]
				if v > c+th || v < c-th {
					dev++
				}
			}
			if dev < 2 {
				continue
			}
			if fastSegment(g, x, y, c, th) {
				pts = append(pts, point{x: x, y: y, weight: 1})
			}
		}
	}
	key := gridPool(pts, g.W, g.H, 8, 8)
	// Payload: (x, y) plus a small patch per corner, as a tracker would
	// retain.
	return Result{Key: key, RawBytes: len(pts) * 56, Keypoints: len(pts)}
}

// fastSegment reports whether 9 contiguous circle pixels are all
// brighter or all darker than c by th.
func fastSegment(g *imaging.Gray, x, y int, c, th float64) bool {
	var brighter, darker [32]bool
	for i, o := range fastCircle {
		v := g.Pix[(y+o[1])*g.W+x+o[0]]
		brighter[i], brighter[i+16] = v > c+th, v > c+th
		darker[i], darker[i+16] = v < c-th, v < c-th
	}
	run := 0
	for i := 0; i < 32; i++ {
		if brighter[i] {
			run++
			if run >= 9 {
				return true
			}
		} else {
			run = 0
		}
	}
	run = 0
	for i := 0; i < 32; i++ {
		if darker[i] {
			run++
			if run >= 9 {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// Harris is the Harris-Stephens corner detector (paper citation [24]):
// the response R = det(M) − k·tr(M)² of the Gaussian-windowed structure
// tensor M, thresholded and grid-pooled into an 8×8 density key. It
// costs more than FAST (three convolutions) but less than the
// descriptor-based features, matching Table 1's ordering.
type Harris struct {
	// K is the Harris sensitivity parameter; 0 means the usual 0.04.
	K float64
	// Threshold on the response; 0 means the default 1e-4.
	Threshold float64
}

// Name implements Extractor.
func (Harris) Name() string { return "harris" }

// Usage implements Extractor.
func (Harris) Usage() string { return "Detection" }

// Extract implements Extractor.
func (h Harris) Extract(img *imaging.RGB) Result {
	k := h.K
	if k <= 0 {
		k = 0.04
	}
	th := h.Threshold
	if th <= 0 {
		th = 1e-4
	}
	g := img.Gray()
	gx, gy := imaging.Gradients(g)
	ixx := imaging.NewGray(g.W, g.H)
	iyy := imaging.NewGray(g.W, g.H)
	ixy := imaging.NewGray(g.W, g.H)
	for i := range gx.Pix {
		ixx.Pix[i] = gx.Pix[i] * gx.Pix[i]
		iyy.Pix[i] = gy.Pix[i] * gy.Pix[i]
		ixy.Pix[i] = gx.Pix[i] * gy.Pix[i]
	}
	// Gaussian window over the structure tensor.
	ixx = imaging.Blur(ixx, 1.0)
	iyy = imaging.Blur(iyy, 1.0)
	ixy = imaging.Blur(ixy, 1.0)
	var pts []point
	for y := 1; y < g.H-1; y++ {
		for x := 1; x < g.W-1; x++ {
			i := y*g.W + x
			det := ixx.Pix[i]*iyy.Pix[i] - ixy.Pix[i]*ixy.Pix[i]
			tr := ixx.Pix[i] + iyy.Pix[i]
			r := det - k*tr*tr
			if r > th && isLocalMax(func(xx, yy int) float64 {
				ii := yy*g.W + xx
				d := ixx.Pix[ii]*iyy.Pix[ii] - ixy.Pix[ii]*ixy.Pix[ii]
				t := ixx.Pix[ii] + iyy.Pix[ii]
				return d - k*t*t
			}, x, y, r) {
				pts = append(pts, point{x: x, y: y, weight: r})
			}
		}
	}
	key := gridPool(pts, g.W, g.H, 8, 8)
	return Result{Key: key, RawBytes: len(pts) * 72, Keypoints: len(pts)}
}

// isLocalMax reports whether value r at (x, y) is a strict 8-neighbour
// maximum of f.
func isLocalMax(f func(x, y int) float64, x, y int, r float64) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if f(x+dx, y+dy) > r {
				return false
			}
		}
	}
	return true
}

// orientationHistogram accumulates an nbins histogram of gradient
// orientation around (x, y) within the given radius, weighted by
// magnitude; shared by the SIFT- and SURF-like descriptors.
func orientationHistogram(mag, ori *imaging.Gray, x, y, radius, nbins int) vec.Vector {
	h := make(vec.Vector, nbins)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			b := int(ori.At(x+dx, y+dy) / math.Pi * float64(nbins))
			if b >= nbins {
				b = nbins - 1
			}
			h[b] += mag.At(x+dx, y+dy)
		}
	}
	return h
}
