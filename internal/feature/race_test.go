package feature

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/synth"
	"repro/internal/vec"
)

// Concurrency tests for the extractor scratch reuse: all extractors
// share the imaging buffer pool and the per-extractor scratch pool, so
// concurrent extractions must never alias a live buffer — if they do,
// a key computed under contention differs from the single-threaded
// baseline (and `go test -race`, which CI runs on this package, flags
// the write overlap directly).

func keysEqual(a, b vec.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestConcurrentExtractorsDeterministic runs every registered extractor
// simultaneously from several goroutines, on distinct frames, many
// rounds (so pooled buffers recycle across extractors mid-flight), and
// requires every key to be bit-identical to the baseline computed
// sequentially before any concurrency started.
func TestConcurrentExtractorsDeterministic(t *testing.T) {
	const frames = 3
	video := synth.NewVideo(synth.VideoConfig{W: 160, H: 120, Seed: 7, Noise: 0})
	names := Names()

	// Sequential baseline, computed with a quiet pool.
	baseline := make(map[string][]vec.Vector, len(names))
	for _, name := range names {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]vec.Vector, frames)
		for f := 0; f < frames; f++ {
			keys[f] = e.Extract(video.Frame(f)).Key
		}
		baseline[name] = keys
	}

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(names)*frames)
	for _, name := range names {
		for f := 0; f < frames; f++ {
			wg.Add(1)
			go func(name string, f int) {
				defer wg.Done()
				e, err := ByName(name)
				if err != nil {
					errs <- err
					return
				}
				img := video.Frame(f)
				for round := 0; round < rounds; round++ {
					got := e.Extract(img).Key
					if !keysEqual(baseline[name][f], got) {
						errs <- fmt.Errorf("%s frame %d round %d: key differs under concurrency (pooled buffer aliased?)", name, f, round)
						return
					}
				}
			}(name, f)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExtractKeyDoesNotAliasPool re-extracts with the same extractor
// and checks that a key returned earlier is not overwritten by later
// extractions: returned Results must own their memory, never borrow
// pooled scratch.
func TestExtractKeyDoesNotAliasPool(t *testing.T) {
	video := synth.NewVideo(synth.VideoConfig{W: 160, H: 120, Seed: 11, Noise: 0})
	for _, name := range Names() {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		img := video.Frame(0)
		first := e.Extract(img).Key
		saved := append(vec.Vector(nil), first...)
		// Churn the pools with extractions of differently shaped frames.
		other := synth.NewVideo(synth.VideoConfig{W: 96, H: 72, Seed: 3, Noise: 0})
		for i := 0; i < 5; i++ {
			e.Extract(other.Frame(i))
			e.Extract(img)
		}
		if !keysEqual(first, saved) {
			t.Fatalf("%s: previously returned key mutated by later extractions — key references pooled memory", name)
		}
	}
}
