package feature

import (
	"sync"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// SURF is a Speeded-Up-Robust-Features-style extractor (paper citation
// [12]). Interest points are maxima of an integral-image box-filter
// Hessian approximation across three scales; each keypoint gets a 64-D
// descriptor of Haar-wavelet responses over a 4×4 subregion grid. The
// cache key aggregates the descriptors (mean descriptor ⊕ 8×8 density
// grid, 128 dims). Table 1 places SURF well below SIFT in cost because
// box filters on the summed-area table replace Gaussian pyramids.
type SURF struct {
	// Threshold on the Hessian response; 0 means the default 1e-4.
	Threshold float64
	// MaxKeypoints caps the keypoints kept (0 = 500, the paper's
	// "around 500 features ... detected in each image").
	MaxKeypoints int
}

// Name implements Extractor.
func (SURF) Name() string { return "surf" }

// Usage implements Extractor.
func (SURF) Usage() string { return "Recognition" }

const surfDescriptorDims = 64

// surfScales are the box-filter sizes of the three Hessian octaves.
var surfScales = [3]int{3, 5, 7}

// integralPool recycles summed-area tables across frames (the S buffer
// is the second-largest allocation on the SURF path after the response
// image).
var integralPool = sync.Pool{New: func() any { return new(imaging.Integral) }}

// Extract implements Extractor.
func (s SURF) Extract(img *imaging.RGB) Result {
	th := s.Threshold
	if th <= 0 {
		th = 1e-4
	}
	maxKP := s.MaxKeypoints
	if maxKP <= 0 {
		maxKP = 500
	}
	sc := scratchPool.Get().(*extractScratch)
	g := img.GrayInto(imaging.GetGray(img.W, img.H))
	it := integralPool.Get().(*imaging.Integral)
	it.From(g)
	// Hessian responses at three box-filter sizes; the response image is
	// recycled across scales (each scale's maxima are collected before the
	// next scale overwrites it).
	pts := sc.pts[:0]
	resp := imaging.GetGray(g.W, g.H)
	for _, l := range surfScales {
		hessianResponseInto(resp, it, g.W, g.H, l)
		for y := l; y < g.H-l; y++ {
			row := y * g.W
			for x := l; x < g.W-l; x++ {
				r := resp.Pix[row+x]
				if r > th && grayLocalMax(resp, x, y, r) {
					pts = append(pts, point{x: x, y: y, weight: r})
				}
			}
		}
	}
	imaging.PutGray(resp)
	sc.pts = pts // keep the grown buffer for the next frame
	kept := pts
	if len(kept) > maxKP {
		kept = topByWeight(kept, maxKP, &sc.sel)
	}
	// Descriptor per keypoint: Haar responses over a 4×4 grid. The mean
	// escapes into the key, so it is freshly allocated; the per-keypoint
	// descriptor lives in scratch.
	mean := make(vec.Vector, surfDescriptorDims)
	d := sc.desc[:surfDescriptorDims]
	for _, p := range kept {
		surfDescriptorInto(d, it, p.x, p.y)
		for i := range mean {
			mean[i] += d[i]
		}
	}
	if len(kept) > 0 {
		scaleInPlace(mean, 1/float64(len(kept)))
		normalizeInPlace(mean)
	}
	key := append(mean, gridPool(kept, g.W, g.H, 8, 8)...)
	n := len(kept)
	imaging.PutGray(g)
	integralPool.Put(it)
	scratchPool.Put(sc)
	return Result{
		Key:       key,
		RawBytes:  n * surfDescriptorDims, // 1 byte/component payload
		Keypoints: n,
	}
}

// grayLocalMax reports whether value r at (x, y) is a strict
// 8-neighbour maximum of g. The caller guarantees x±1, y±1 are in
// bounds.
func grayLocalMax(g *imaging.Gray, x, y int, r float64) bool {
	w := g.W
	for dy := -1; dy <= 1; dy++ {
		row := (y + dy) * w
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if g.Pix[row+x+dx] > r {
				return false
			}
		}
	}
	return true
}

// hessianResponse approximates |det H| with box filters of size l on the
// integral image.
func hessianResponse(it *imaging.Integral, w, h, l int) *imaging.Gray {
	out := imaging.NewGray(w, h)
	hessianResponseInto(out, it, w, h, l)
	return out
}

// hessianResponseInto computes the box-filter Hessian response into
// out (already sized w×h). Interior pixels — where every box lies
// inside the image — evaluate via unchecked integral sums; the border
// uses the clamped Sum. Both paths compute the identical expressions,
// and the rows are computed in parallel bands.
func hessianResponseInto(out *imaging.Gray, it *imaging.Integral, w, h, l int) {
	area := float64(l * l)
	lo := l + l/2       // first x (and y) whose boxes are all in bounds
	hi := l + l/2 + 1   // hi such that coordinate ≤ dim-hi is in bounds
	imaging.ParallelRows(h, w*h*30, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			interiorY := y >= lo && y <= h-hi
			row := y * w
			for x := 0; x < w; x++ {
				var dxx, dyy, dxy float64
				if interiorY && x >= lo && x <= w-hi {
					// Dxx: [-1 2 -1] horizontally with boxes of width l.
					dxx = (2*it.SumUnchecked(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
						it.SumUnchecked(x-l/2-l, y-l/2, x-l/2, y+l/2+1) -
						it.SumUnchecked(x+l/2+1, y-l/2, x+l/2+1+l, y+l/2+1)) / area
					dyy = (2*it.SumUnchecked(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
						it.SumUnchecked(x-l/2, y-l/2-l, x+l/2+1, y-l/2) -
						it.SumUnchecked(x-l/2, y+l/2+1, x+l/2+1, y+l/2+1+l)) / area
					dxy = (it.SumUnchecked(x-l, y-l, x, y) + it.SumUnchecked(x+1, y+1, x+1+l, y+1+l) -
						it.SumUnchecked(x+1, y-l, x+1+l, y) - it.SumUnchecked(x-l, y+1, x, y+1+l)) / area
				} else {
					dxx = (2*it.Sum(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
						it.Sum(x-l/2-l, y-l/2, x-l/2, y+l/2+1) -
						it.Sum(x+l/2+1, y-l/2, x+l/2+1+l, y+l/2+1)) / area
					dyy = (2*it.Sum(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
						it.Sum(x-l/2, y-l/2-l, x+l/2+1, y-l/2) -
						it.Sum(x-l/2, y+l/2+1, x+l/2+1, y+l/2+1+l)) / area
					dxy = (it.Sum(x-l, y-l, x, y) + it.Sum(x+1, y+1, x+1+l, y+1+l) -
						it.Sum(x+1, y-l, x+1+l, y) - it.Sum(x-l, y+1, x, y+1+l)) / area
				}
				v := dxx*dyy - 0.81*dxy*dxy
				if v < 0 {
					v = 0
				}
				out.Pix[row+x] = v
			}
		}
	})
}

// surfDescriptor computes 4×4 subregions × (Σdx, Σ|dx|, Σdy, Σ|dy|) from
// Haar responses in a 16×16 window. Retained as the allocation-per-call
// reference implementation for the equivalence tests; the hot path is
// surfDescriptorInto.
func surfDescriptor(it *imaging.Integral, cx, cy int) vec.Vector {
	d := make(vec.Vector, surfDescriptorDims)
	surfDescriptorInto(d, it, cx, cy)
	return d
}

// surfDescriptorInto computes the 64-D SURF descriptor into d
// (len surfDescriptorDims), L2-normalized in place. Keypoints whose
// 16×16 window (plus the 2-pixel Haar reach) lies inside the image use
// unchecked integral sums.
func surfDescriptorInto(d []float64, it *imaging.Integral, cx, cy int) {
	unchecked := cx >= 10 && cx+9 <= it.W && cy >= 10 && cy+9 <= it.H
	idx := 0
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			var sdx, sadx, sdy, sady float64
			for py := 0; py < 4; py++ {
				for px := 0; px < 4; px++ {
					x := cx - 8 + sx*4 + px
					y := cy - 8 + sy*4 + py
					var dx, dy float64
					if unchecked {
						dx = it.SumUnchecked(x, y-1, x+2, y+1) - it.SumUnchecked(x-2, y-1, x, y+1)
						dy = it.SumUnchecked(x-1, y, x+1, y+2) - it.SumUnchecked(x-1, y-2, x+1, y)
					} else {
						dx = it.Sum(x, y-1, x+2, y+1) - it.Sum(x-2, y-1, x, y+1)
						dy = it.Sum(x-1, y, x+1, y+2) - it.Sum(x-1, y-2, x+1, y)
					}
					sdx += dx
					sdy += dy
					if dx < 0 {
						sadx -= dx
					} else {
						sadx += dx
					}
					if dy < 0 {
						sady -= dy
					} else {
						sady += dy
					}
				}
			}
			d[idx], d[idx+1], d[idx+2], d[idx+3] = sdx, sadx, sdy, sady
			idx += 4
		}
	}
	normalizeInPlace(d)
}

// SIFT is a Scale-Invariant-Feature-Transform-style extractor (paper
// citation [35]): a Gaussian scale-space pyramid, difference-of-Gaussian
// extrema detection across octaves, and a 128-D gradient-orientation
// descriptor per keypoint (4×4 spatial bins × 8 orientations). The key
// aggregates descriptors like SURF's. Building the pyramid dominates the
// cost, which is why SIFT tops Table 1 by orders of magnitude.
type SIFT struct {
	// Octaves is the pyramid depth (0 = 3).
	Octaves int
	// Threshold on the DoG response magnitude; 0 means the default 0.01.
	Threshold float64
	// MaxKeypoints caps retained keypoints (0 = 500).
	MaxKeypoints int
}

// Name implements Extractor.
func (SIFT) Name() string { return "sift" }

// Usage implements Extractor.
func (SIFT) Usage() string { return "Recognition" }

const siftDescriptorDims = 128

// siftSigmas are the six blur levels per octave (SIFT's s+3 with s=3).
var siftSigmas = [6]float64{0.8, 1.1, 1.5, 2.1, 2.9, 4.0}

// Extract implements Extractor.
func (s SIFT) Extract(img *imaging.RGB) Result {
	octaves := s.Octaves
	if octaves <= 0 {
		octaves = 3
	}
	th := s.Threshold
	if th <= 0 {
		th = 0.01
	}
	maxKP := s.MaxKeypoints
	if maxKP <= 0 {
		maxKP = 500
	}
	sc := scratchPool.Get().(*extractScratch)
	base := img.GrayInto(imaging.GetGray(img.W, img.H))
	pts := sc.pts[:0]
	// grad0 is octave 0's blurred[1], the gradient field the descriptors
	// sample from. (Deeper octaves' levels are pure pyramid scratch.)
	var grad0 *imaging.Gray
	var blurred [len(siftSigmas)]*imaging.Gray
	cur := base
	scale := 1
	for o := 0; o < octaves && cur.W >= 16 && cur.H >= 16; o++ {
		w, h := cur.W, cur.H
		for i, sg := range siftSigmas {
			blurred[i] = imaging.BlurInto(imaging.GetGray(w, h), cur, sg)
		}
		// DoG layers and 2-D extrema (the scale dimension is collapsed:
		// the middle layers vote). One recycled DoG buffer serves all
		// layers — each layer's extrema are collected before the next
		// overwrites it.
		dog := imaging.GetGray(w, h)
		for li := 1; li < len(blurred)-1; li++ {
			a, b := blurred[li-1], blurred[li]
			for i := range dog.Pix {
				dog.Pix[i] = b.Pix[i] - a.Pix[i]
			}
			for y := 1; y < h-1; y++ {
				for x := 1; x < w-1; x++ {
					v := dog.Pix[y*w+x]
					av := v
					if av < 0 {
						av = -v
					}
					if av < th {
						continue
					}
					if isExtremum(dog, x, y, v) {
						pts = append(pts, point{x: x * scale, y: y * scale, weight: av})
					}
				}
			}
		}
		imaging.PutGray(dog)
		next := imaging.ResizeInto(imaging.GetGray(w/2, h/2), blurred[len(blurred)-1], w/2, h/2)
		if cur != base {
			imaging.PutGray(cur)
		}
		for i, bl := range blurred {
			if o == 0 && i == 1 {
				grad0 = bl
				continue
			}
			imaging.PutGray(bl)
		}
		cur = next
		scale *= 2
	}
	if cur != base {
		imaging.PutGray(cur)
	}
	sc.pts = pts
	kept := pts
	if len(kept) > maxKP {
		kept = topByWeight(kept, maxKP, &sc.sel)
	}
	// Descriptors from the base-octave gradient field, computed in one
	// fused magnitude+orientation pass into pooled buffers.
	mean := make(vec.Vector, siftDescriptorDims)
	if grad0 != nil && len(kept) > 0 {
		mag := imaging.GetGray(grad0.W, grad0.H)
		ori := imaging.GetGray(grad0.W, grad0.H)
		imaging.GradientMagnitudeOrientationInto(mag, ori, grad0)
		d := sc.desc[:siftDescriptorDims]
		for _, p := range kept {
			siftDescriptorInto(d, mag, ori, p.x, p.y)
			for i := range mean {
				mean[i] += d[i]
			}
		}
		scaleInPlace(mean, 1/float64(len(kept)))
		normalizeInPlace(mean)
		imaging.PutGray(mag)
		imaging.PutGray(ori)
	}
	key := append(mean, gridPool(kept, base.W, base.H, 8, 8)...)
	n := len(kept)
	if grad0 != nil {
		imaging.PutGray(grad0)
	}
	imaging.PutGray(base)
	scratchPool.Put(sc)
	return Result{
		Key:       key,
		RawBytes:  n * siftDescriptorDims * 2, // 2 bytes/component
		Keypoints: n,
	}
}

func isExtremum(dog *imaging.Gray, x, y int, v float64) bool {
	if v > 0 {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if dog.Pix[(y+dy)*dog.W+x+dx] >= v {
					return false
				}
			}
		}
		return true
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if dog.Pix[(y+dy)*dog.W+x+dx] <= v {
				return false
			}
		}
	}
	return true
}

// siftDescriptor computes a 4×4 spatial grid of 8-bin orientation
// histograms over a 16×16 window. Retained as the allocation-per-call
// reference implementation for the equivalence tests; the hot path is
// siftDescriptorInto.
func siftDescriptor(mag, ori *imaging.Gray, cx, cy int) vec.Vector {
	d := make(vec.Vector, siftDescriptorDims)
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			h := orientationHistogram(mag, ori, cx-8+sx*4+2, cy-8+sy*4+2, 2, 8)
			copy(d[(sy*4+sx)*8:], h)
		}
	}
	return d.Normalize()
}

// siftDescriptorInto computes the 128-D SIFT descriptor into d
// (len siftDescriptorDims), L2-normalized in place, without allocating.
func siftDescriptorInto(d []float64, mag, ori *imaging.Gray, cx, cy int) {
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			b := (sy*4 + sx) * 8
			orientationHistogramInto(d[b:b+8], mag, ori, cx-8+sx*4+2, cy-8+sy*4+2, 2)
		}
	}
	normalizeInPlace(d)
}

// topByWeight keeps the n heaviest points (selection without full
// sort), using *scratch as the mutable working copy so repeated calls
// allocate only when the point count grows.
func topByWeight(pts []point, n int, scratch *[]point) []point {
	if len(pts) <= n {
		return pts
	}
	if cap(*scratch) < len(pts) {
		*scratch = make([]point, len(pts))
	}
	out := (*scratch)[:len(pts)]
	copy(out, pts)
	// Partial selection on weight; n is small (≤500).
	lo, hi := 0, len(out)-1
	for lo < hi {
		p := out[hi].weight
		i := lo
		for j := lo; j < hi; j++ {
			if out[j].weight > p {
				out[i], out[j] = out[j], out[i]
				i++
			}
		}
		out[i], out[hi] = out[hi], out[i]
		switch {
		case i == n:
			return out[:n]
		case i < n:
			lo = i + 1
		default:
			hi = i - 1
		}
	}
	return out[:n]
}
