package feature

import (
	"repro/internal/imaging"
	"repro/internal/vec"
)

// SURF is a Speeded-Up-Robust-Features-style extractor (paper citation
// [12]). Interest points are maxima of an integral-image box-filter
// Hessian approximation across three scales; each keypoint gets a 64-D
// descriptor of Haar-wavelet responses over a 4×4 subregion grid. The
// cache key aggregates the descriptors (mean descriptor ⊕ 8×8 density
// grid, 128 dims). Table 1 places SURF well below SIFT in cost because
// box filters on the summed-area table replace Gaussian pyramids.
type SURF struct {
	// Threshold on the Hessian response; 0 means the default 1e-4.
	Threshold float64
	// MaxKeypoints caps the keypoints kept (0 = 500, the paper's
	// "around 500 features ... detected in each image").
	MaxKeypoints int
}

// Name implements Extractor.
func (SURF) Name() string { return "surf" }

// Usage implements Extractor.
func (SURF) Usage() string { return "Recognition" }

const surfDescriptorDims = 64

// Extract implements Extractor.
func (s SURF) Extract(img *imaging.RGB) Result {
	th := s.Threshold
	if th <= 0 {
		th = 1e-4
	}
	maxKP := s.MaxKeypoints
	if maxKP <= 0 {
		maxKP = 500
	}
	g := img.Gray()
	it := imaging.NewIntegral(g)
	// Hessian responses at three box-filter sizes.
	scales := []int{3, 5, 7}
	responses := make([]*imaging.Gray, len(scales))
	for si, l := range scales {
		responses[si] = hessianResponse(it, g.W, g.H, l)
	}
	var pts []point
	for si, resp := range responses {
		l := scales[si]
		for y := l; y < g.H-l; y++ {
			for x := l; x < g.W-l; x++ {
				r := resp.Pix[y*g.W+x]
				if r > th && isLocalMax(func(xx, yy int) float64 {
					return resp.Pix[yy*g.W+xx]
				}, x, y, r) {
					pts = append(pts, point{x: x, y: y, weight: r})
				}
			}
		}
	}
	if len(pts) > maxKP {
		pts = topByWeight(pts, maxKP)
	}
	// Descriptor per keypoint: Haar responses over a 4×4 grid.
	mean := make(vec.Vector, surfDescriptorDims)
	for _, p := range pts {
		d := surfDescriptor(it, p.x, p.y)
		for i := range mean {
			mean[i] += d[i]
		}
	}
	if len(pts) > 0 {
		mean = mean.Scale(1 / float64(len(pts))).Normalize()
	}
	key := append(mean, gridPool(pts, g.W, g.H, 8, 8)...)
	return Result{
		Key:       key,
		RawBytes:  len(pts) * surfDescriptorDims, // 1 byte/component payload
		Keypoints: len(pts),
	}
}

// hessianResponse approximates |det H| with box filters of size l on the
// integral image.
func hessianResponse(it *imaging.Integral, w, h, l int) *imaging.Gray {
	out := imaging.NewGray(w, h)
	area := float64(l * l)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Dxx: [-1 2 -1] horizontally with boxes of width l.
			dxx := (2*it.Sum(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
				it.Sum(x-l/2-l, y-l/2, x-l/2, y+l/2+1) -
				it.Sum(x+l/2+1, y-l/2, x+l/2+1+l, y+l/2+1)) / area
			dyy := (2*it.Sum(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
				it.Sum(x-l/2, y-l/2-l, x+l/2+1, y-l/2) -
				it.Sum(x-l/2, y+l/2+1, x+l/2+1, y+l/2+1+l)) / area
			dxy := (it.Sum(x-l, y-l, x, y) + it.Sum(x+1, y+1, x+1+l, y+1+l) -
				it.Sum(x+1, y-l, x+1+l, y) - it.Sum(x-l, y+1, x, y+1+l)) / area
			v := dxx*dyy - 0.81*dxy*dxy
			if v < 0 {
				v = 0
			}
			out.Pix[y*w+x] = v
		}
	}
	return out
}

// surfDescriptor computes 4×4 subregions × (Σdx, Σ|dx|, Σdy, Σ|dy|) from
// Haar responses in a 16×16 window.
func surfDescriptor(it *imaging.Integral, cx, cy int) vec.Vector {
	d := make(vec.Vector, surfDescriptorDims)
	idx := 0
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			var sdx, sadx, sdy, sady float64
			for py := 0; py < 4; py++ {
				for px := 0; px < 4; px++ {
					x := cx - 8 + sx*4 + px
					y := cy - 8 + sy*4 + py
					dx := it.Sum(x, y-1, x+2, y+1) - it.Sum(x-2, y-1, x, y+1)
					dy := it.Sum(x-1, y, x+1, y+2) - it.Sum(x-1, y-2, x+1, y)
					sdx += dx
					sdy += dy
					if dx < 0 {
						sadx -= dx
					} else {
						sadx += dx
					}
					if dy < 0 {
						sady -= dy
					} else {
						sady += dy
					}
				}
			}
			d[idx], d[idx+1], d[idx+2], d[idx+3] = sdx, sadx, sdy, sady
			idx += 4
		}
	}
	return d.Normalize()
}

// SIFT is a Scale-Invariant-Feature-Transform-style extractor (paper
// citation [35]): a Gaussian scale-space pyramid, difference-of-Gaussian
// extrema detection across octaves, and a 128-D gradient-orientation
// descriptor per keypoint (4×4 spatial bins × 8 orientations). The key
// aggregates descriptors like SURF's. Building the pyramid dominates the
// cost, which is why SIFT tops Table 1 by orders of magnitude.
type SIFT struct {
	// Octaves is the pyramid depth (0 = 3).
	Octaves int
	// Threshold on the DoG response magnitude; 0 means the default 0.01.
	Threshold float64
	// MaxKeypoints caps retained keypoints (0 = 500).
	MaxKeypoints int
}

// Name implements Extractor.
func (SIFT) Name() string { return "sift" }

// Usage implements Extractor.
func (SIFT) Usage() string { return "Recognition" }

const siftDescriptorDims = 128

// Extract implements Extractor.
func (s SIFT) Extract(img *imaging.RGB) Result {
	octaves := s.Octaves
	if octaves <= 0 {
		octaves = 3
	}
	th := s.Threshold
	if th <= 0 {
		th = 0.01
	}
	maxKP := s.MaxKeypoints
	if maxKP <= 0 {
		maxKP = 500
	}
	base := img.Gray()
	var pts []point
	type level struct {
		img   *imaging.Gray
		scale int // sampling factor back to base resolution
	}
	var gradLevels []level
	cur := base
	scale := 1
	for o := 0; o < octaves && cur.W >= 16 && cur.H >= 16; o++ {
		// Scale space: six blur levels per octave (SIFT's s+3 with s=3).
		sigmas := []float64{0.8, 1.1, 1.5, 2.1, 2.9, 4.0}
		blurred := make([]*imaging.Gray, len(sigmas))
		for i, sg := range sigmas {
			blurred[i] = imaging.Blur(cur, sg)
		}
		// DoG layers and 2-D extrema (the scale dimension is collapsed:
		// the middle layers vote).
		for li := 1; li < len(blurred)-1; li++ {
			dog := imaging.NewGray(cur.W, cur.H)
			for i := range dog.Pix {
				dog.Pix[i] = blurred[li].Pix[i] - blurred[li-1].Pix[i]
			}
			for y := 1; y < cur.H-1; y++ {
				for x := 1; x < cur.W-1; x++ {
					v := dog.Pix[y*cur.W+x]
					av := v
					if av < 0 {
						av = -v
					}
					if av < th {
						continue
					}
					if isExtremum(dog, x, y, v) {
						pts = append(pts, point{x: x * scale, y: y * scale, weight: av})
					}
				}
			}
		}
		gradLevels = append(gradLevels, level{img: blurred[1], scale: scale})
		cur = imaging.Resize(blurred[len(blurred)-1], cur.W/2, cur.H/2)
		scale *= 2
	}
	if len(pts) > maxKP {
		pts = topByWeight(pts, maxKP)
	}
	// Descriptors from the base-octave gradient field.
	mean := make(vec.Vector, siftDescriptorDims)
	if len(gradLevels) > 0 && len(pts) > 0 {
		mag, ori := imaging.GradientMagnitudeOrientation(gradLevels[0].img)
		for _, p := range pts {
			d := siftDescriptor(mag, ori, p.x, p.y)
			for i := range mean {
				mean[i] += d[i]
			}
		}
		mean = mean.Scale(1 / float64(len(pts))).Normalize()
	}
	key := append(mean, gridPool(pts, base.W, base.H, 8, 8)...)
	return Result{
		Key:       key,
		RawBytes:  len(pts) * siftDescriptorDims * 2, // 2 bytes/component
		Keypoints: len(pts),
	}
}

func isExtremum(dog *imaging.Gray, x, y int, v float64) bool {
	if v > 0 {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if dog.Pix[(y+dy)*dog.W+x+dx] >= v {
					return false
				}
			}
		}
		return true
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if dog.Pix[(y+dy)*dog.W+x+dx] <= v {
				return false
			}
		}
	}
	return true
}

// siftDescriptor computes a 4×4 spatial grid of 8-bin orientation
// histograms over a 16×16 window.
func siftDescriptor(mag, ori *imaging.Gray, cx, cy int) vec.Vector {
	d := make(vec.Vector, siftDescriptorDims)
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			h := orientationHistogram(mag, ori, cx-8+sx*4+2, cy-8+sy*4+2, 2, 8)
			copy(d[(sy*4+sx)*8:], h)
		}
	}
	return d.Normalize()
}

// topByWeight keeps the n heaviest points (selection without full sort).
func topByWeight(pts []point, n int) []point {
	if len(pts) <= n {
		return pts
	}
	// Partial selection sort on weight; n is small (≤500).
	out := make([]point, len(pts))
	copy(out, pts)
	lo, hi := 0, len(out)-1
	for lo < hi {
		p := out[hi].weight
		i := lo
		for j := lo; j < hi; j++ {
			if out[j].weight > p {
				out[i], out[j] = out[j], out[i]
				i++
			}
		}
		out[i], out[hi] = out[hi], out[i]
		switch {
		case i == n:
			return out[:n]
		case i < n:
			lo = i + 1
		default:
			hi = i - 1
		}
	}
	return out[:n]
}
