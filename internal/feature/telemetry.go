package feature

import (
	"sync/atomic"
	"time"

	"repro/internal/imaging"
	"repro/internal/telemetry"
)

// Latency instrumentation for key generation.
//
// Key generation is the fixed toll on every cache lookup (Table 1), so
// its latency is the first place a deployment looks when the hit path
// slows down. Instrument attaches a per-extractor latency histogram to
// a telemetry registry; afterwards ByName hands out extractors wrapped
// to time each Extract. Detached (the default, and the state every
// benchmark runs in) the wrapper does not exist at all — ByName returns
// the raw extractor and key generation pays zero instrumentation cost.

// extractLatency is the histogram vector Extract timings feed, nil
// until Instrument is called. atomic.Pointer so ByName (any goroutine)
// races cleanly with a late Instrument.
var extractLatency atomic.Pointer[telemetry.HistogramVec]

// Instrument registers the per-extractor key-generation latency
// histogram on reg and makes ByName return timing-wrapped extractors
// from now on. Safe to call at most once per registry; calling it again
// with the same registry reuses the existing series.
func Instrument(reg *telemetry.Registry) {
	extractLatency.Store(reg.HistogramVec("potluck_feature_extract_latency_seconds",
		"Key-generation (feature extraction) latency by extractor.", "extractor"))
}

// timedExtractor wraps an Extractor, recording each Extract's wall time.
type timedExtractor struct {
	e    Extractor
	hist *telemetry.Histogram
}

func (t timedExtractor) Name() string  { return t.e.Name() }
func (t timedExtractor) Usage() string { return t.e.Usage() }

func (t timedExtractor) Extract(img *imaging.RGB) Result {
	start := time.Now()
	r := t.e.Extract(img)
	t.hist.Observe(time.Since(start))
	return r
}

// maybeTimed wraps e with latency instrumentation when Instrument has
// been called, and returns e unchanged otherwise.
func maybeTimed(e Extractor) Extractor {
	v := extractLatency.Load()
	if v == nil {
		return e
	}
	return timedExtractor{e: e, hist: v.With(e.Name())}
}

// traceSpans is the span recorder key-generation spans feed, nil until
// InstrumentTracing. Same late-attach race discipline as extractLatency.
var traceSpans atomic.Pointer[telemetry.SpanRecorder]

// InstrumentTracing attaches key generation to a telemetry hub's span
// recorder: ExtractTraced calls record a feature-layer "keygen" span
// from then on. Detached, ExtractTraced costs one atomic load over a
// plain Extract.
func InstrumentTracing(tel *telemetry.Telemetry) {
	if tel == nil || tel.Spans == nil {
		return
	}
	traceSpans.Store(tel.Spans)
}

// ExtractTraced runs e.Extract and records the key-generation stage as a
// feature-layer span under trace — the first hop of an end-to-end lookup
// trace, so the fixed key-generation toll (Table 1) is visible next to
// the probe and IPC stages it precedes. With tracing detached or
// trace == 0 it degrades to e.Extract(img).
func ExtractTraced(e Extractor, img *imaging.RGB, trace telemetry.TraceID) Result {
	spans := traceSpans.Load()
	if spans == nil || trace == 0 {
		return e.Extract(img)
	}
	start := time.Now()
	r := e.Extract(img)
	dur := time.Since(start)
	spans.Record(telemetry.Span{
		Trace:       trace,
		Start:       start.UnixNano(),
		DurationNs:  int64(dur),
		Layer:       "feature",
		Function:    e.Name(),
		KeyType:     e.Name(),
		Outcome:     "ok",
		Distance:    -1,
		DropoutRoll: -1,
		Probes:      -1,
		Stages: []telemetry.SpanStage{{
			Name:       telemetry.StageKeyGen,
			DurationNs: int64(dur),
			Detail:     e.Name(),
		}},
	})
	return r
}
