package feature

import (
	"math"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// ColorHist is the color-histogram feature (paper citation [22]): 256
// bins per RGB channel, L1-normalized, 768 dimensions — "a 768-bit
// vector to represent the color histogram" (§3.2). It is robust to the
// small geometric distortions between correlated frames (Figure 2).
type ColorHist struct{}

// Name implements Extractor.
func (ColorHist) Name() string { return "colorhist" }

// Usage implements Extractor.
func (ColorHist) Usage() string { return "Similarity" }

// Extract implements Extractor.
func (ColorHist) Extract(img *imaging.RGB) Result {
	key := make(vec.Vector, 768)
	for i := 0; i+2 < len(img.Pix); i += 3 {
		key[bin(img.Pix[i])]++
		key[256+bin(img.Pix[i+1])]++
		key[512+bin(img.Pix[i+2])]++
	}
	normalizeL1InPlace(key)
	return Result{Key: key, RawBytes: key.SizeBytes()}
}

func bin(v float64) int {
	i := int(v * 256)
	if i > 255 {
		i = 255
	}
	if i < 0 {
		i = 0
	}
	return i
}

// HOG is a histogram-of-oriented-gradients feature (paper citation [45]):
// the image is divided into a fixed 10×10 grid of cells; each cell
// carries a 9-component orientation descriptor, and the concatenation is
// L2-normalized (900 dimensions). The per-cell descriptor stores the
// orientation distribution in the Fourier domain — total magnitude plus
// magnitude-weighted cos/sin of 2kθ for k = 1..4 — which encodes the
// same information as a 9-bin histogram but varies smoothly with the
// gradient field: sensor-noise orientations are isotropic and cancel,
// where hard binning would churn bin boundaries frame to frame.
type HOG struct{}

// HOG layout constants.
const (
	hogCells = 10
	hogBins  = 9
	// hogMagnitudeFloor drops gradients weaker than this: after the
	// Gaussian pre-smoothing, anything below it is residual sensor noise.
	hogMagnitudeFloor = 0.01
)

// Name implements Extractor.
func (HOG) Name() string { return "hog" }

// Usage implements Extractor.
func (HOG) Usage() string { return "Detection" }

// Extract implements Extractor.
func (HOG) Extract(img *imaging.RGB) Result {
	// Gaussian pre-smoothing suppresses sensor noise before gradients,
	// the standard HOG preprocessing; without it per-frame noise
	// dominates the cell histograms. The grayscale conversion, blur
	// (in place: BlurInto allows dst == src), and the fused
	// magnitude+orientation pass all run in pooled buffers.
	g := img.GrayInto(imaging.GetGray(img.W, img.H))
	g = imaging.BlurInto(g, g, 2.0)
	mag := imaging.GetGray(g.W, g.H)
	ori := imaging.GetGray(g.W, g.H)
	imaging.GradientMagnitudeOrientationInto(mag, ori, g)
	key := make(vec.Vector, hogCells*hogCells*hogBins)
	if g.W == 0 || g.H == 0 {
		imaging.PutGray(g)
		imaging.PutGray(mag)
		imaging.PutGray(ori)
		return Result{Key: key}
	}
	for y := 0; y < g.H; y++ {
		cy := y * hogCells / g.H
		row := y * g.W
		for x := 0; x < g.W; x++ {
			m := mag.Pix[row+x]
			if m < hogMagnitudeFloor {
				continue // residual noise gradients
			}
			cx := x * hogCells / g.W
			theta := ori.Pix[row+x]
			base := (cy*hogCells + cx) * hogBins
			key[base] += m
			for k := 1; k <= 4; k++ {
				key[base+2*k-1] += m * math.Cos(2*float64(k)*theta)
				key[base+2*k] += m * math.Sin(2*float64(k)*theta)
			}
		}
	}
	imaging.PutGray(g)
	imaging.PutGray(mag)
	imaging.PutGray(ori)
	normalizeInPlace(key)
	return Result{Key: key, RawBytes: key.SizeBytes()}
}

// Downsample resizes the image to a small fixed raster and vectorizes
// it, the "Downsamp" row of Table 1: "down-sampling the raw image to
// fewer dimensions, which is then vectorized to be fed into deep neural
// networks" (§5.2). The target is 16×16 RGB — 768 components, matching
// Table 1's 1 KB payload (DNN inputs are color rasters).
type Downsample struct{}

// DownsampleSide is the side length of the down-sampled raster.
const DownsampleSide = 16

// DownsampleDims is the key dimensionality (three channels per pixel).
const DownsampleDims = 3 * DownsampleSide * DownsampleSide

// Name implements Extractor.
func (Downsample) Name() string { return "downsamp" }

// Usage implements Extractor.
func (Downsample) Usage() string { return "Deep learning" }

// Extract implements Extractor.
func (Downsample) Extract(img *imaging.RGB) Result {
	small := imaging.ResizeRGBInto(imaging.GetRGB(DownsampleSide, DownsampleSide), img, DownsampleSide, DownsampleSide)
	key := make(vec.Vector, len(small.Pix))
	copy(key, small.Pix)
	n := len(small.Pix)
	imaging.PutRGB(small)
	return Result{Key: key, RawBytes: n} // 1 byte/channel payload
}
