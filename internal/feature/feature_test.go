package feature

import (
	"math"
	"testing"

	"repro/internal/imaging"
	"repro/internal/synth"
	"repro/internal/vec"
)

// testImage renders a deterministic scene with corners, edges and color.
func testImage(w, h int) *imaging.RGB {
	v := synth.NewVideo(synth.VideoConfig{W: w, H: h, Seed: 42, Noise: 0})
	return v.Frame(0)
}

func TestRegistryContainsTable1Features(t *testing.T) {
	for _, name := range []string{"sift", "surf", "harris", "fast", "downsamp", "colorhist", "hog"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("Name = %q", e.Name())
		}
		if e.Usage() == "" {
			t.Errorf("%s: empty usage", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown extractor did not error")
	}
	if len(Names()) < 7 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(ColorHist{})
}

func TestAllExtractorsFixedLengthDeterministic(t *testing.T) {
	img := testImage(96, 72)
	img2 := testImage(128, 96) // different size, same scene family
	for _, name := range Names() {
		e, _ := ByName(name)
		r1 := e.Extract(img)
		r1b := e.Extract(img)
		if len(r1.Key) == 0 {
			t.Errorf("%s: empty key", name)
			continue
		}
		if (vec.EuclideanMetric{}).Distance(r1.Key, r1b.Key) != 0 {
			t.Errorf("%s: extraction not deterministic", name)
		}
		r2 := e.Extract(img2)
		if len(r2.Key) != len(r1.Key) {
			t.Errorf("%s: key length varies with image size: %d vs %d",
				name, len(r1.Key), len(r2.Key))
		}
		for _, x := range r1.Key {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s: key contains %v", name, x)
				break
			}
		}
	}
}

func TestColorHistProperties(t *testing.T) {
	img := imaging.NewRGB(10, 10)
	img.Fill(1, 0, 0) // pure red
	r := (ColorHist{}).Extract(img)
	if len(r.Key) != 768 {
		t.Fatalf("key dims = %d", len(r.Key))
	}
	var sum float64
	for _, v := range r.Key {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram not L1-normalized: %v", sum)
	}
	// All red mass in the top red bin, green/blue in bin 0.
	if r.Key[255] < 0.33 {
		t.Errorf("red bin mass = %v", r.Key[255])
	}
	// Histogram is translation invariant.
	shifted, _ := imaging.WarpRGB(img, imaging.Translation(2, 1), 1, 0, 0)
	r2 := (ColorHist{}).Extract(shifted)
	if d := (vec.EuclideanMetric{}).Distance(r.Key, r2.Key); d > 1e-9 {
		t.Errorf("histogram changed under translation: %v", d)
	}
}

func TestHOGRespondsToOrientation(t *testing.T) {
	// Vertical vs horizontal edges must produce different HOG keys.
	vert := imaging.NewRGB(64, 64)
	horz := imaging.NewRGB(64, 64)
	for i := 0; i < 64; i++ {
		for j := 32; j < 64; j++ {
			vert.Set(j, i, 1, 1, 1)
			horz.Set(i, j, 1, 1, 1)
		}
	}
	h := HOG{}
	rv := h.Extract(vert)
	rh := h.Extract(horz)
	if d := (vec.EuclideanMetric{}).Distance(rv.Key, rh.Key); d < 0.1 {
		t.Errorf("HOG cannot distinguish orientations: dist %v", d)
	}
	if len(rv.Key) != hogCells*hogCells*hogBins {
		t.Errorf("key dims = %d", len(rv.Key))
	}
}

func TestDownsampleDims(t *testing.T) {
	r := (Downsample{}).Extract(testImage(96, 72))
	if len(r.Key) != DownsampleDims {
		t.Errorf("dims = %d", len(r.Key))
	}
	if r.RawBytes != 768 {
		t.Errorf("RawBytes = %d", r.RawBytes)
	}
}

func TestFASTDetectsCorners(t *testing.T) {
	// A bright square on black has 4 strong corners.
	img := imaging.NewRGB(64, 64)
	for y := 20; y < 44; y++ {
		for x := 20; x < 44; x++ {
			img.Set(x, y, 1, 1, 1)
		}
	}
	r := (FAST{}).Extract(img)
	if r.Keypoints == 0 {
		t.Fatal("FAST found no corners on a square")
	}
	// A uniform image has none.
	flat := imaging.NewRGB(64, 64)
	flat.Fill(0.5, 0.5, 0.5)
	if rf := (FAST{}).Extract(flat); rf.Keypoints != 0 {
		t.Errorf("FAST found %d corners on a flat image", rf.Keypoints)
	}
}

func TestHarrisDetectsCornersNotEdges(t *testing.T) {
	square := imaging.NewRGB(64, 64)
	for y := 20; y < 44; y++ {
		for x := 20; x < 44; x++ {
			square.Set(x, y, 1, 1, 1)
		}
	}
	rs := (Harris{}).Extract(square)
	if rs.Keypoints == 0 {
		t.Fatal("Harris found no corners on a square")
	}
	// A pure vertical edge should yield far fewer responses than the
	// square's corners.
	edge := imaging.NewRGB(64, 64)
	for y := 0; y < 64; y++ {
		for x := 32; x < 64; x++ {
			edge.Set(x, y, 1, 1, 1)
		}
	}
	re := (Harris{}).Extract(edge)
	if re.Keypoints >= rs.Keypoints {
		t.Errorf("Harris edge responses (%d) >= corner responses (%d)",
			re.Keypoints, rs.Keypoints)
	}
}

func TestSURFAndSIFTFindKeypoints(t *testing.T) {
	img := testImage(128, 96)
	rsurf := (SURF{}).Extract(img)
	if rsurf.Keypoints == 0 {
		t.Error("SURF found no keypoints on a structured scene")
	}
	if len(rsurf.Key) != surfDescriptorDims+64 {
		t.Errorf("SURF key dims = %d", len(rsurf.Key))
	}
	rsift := (SIFT{}).Extract(img)
	if rsift.Keypoints == 0 {
		t.Error("SIFT found no keypoints on a structured scene")
	}
	if len(rsift.Key) != siftDescriptorDims+64 {
		t.Errorf("SIFT key dims = %d", len(rsift.Key))
	}
}

func TestMaxKeypointsCap(t *testing.T) {
	img := testImage(128, 96)
	r := (SURF{MaxKeypoints: 10}).Extract(img)
	if r.Keypoints > 10 {
		t.Errorf("SURF keypoints = %d, cap 10", r.Keypoints)
	}
	r = (SIFT{MaxKeypoints: 5}).Extract(img)
	if r.Keypoints > 5 {
		t.Errorf("SIFT keypoints = %d, cap 5", r.Keypoints)
	}
}

// TestFeatureStability is the Figure 2 property: feature distance
// between adjacent video frames is small relative to distant frames.
func TestFeatureStability(t *testing.T) {
	v := synth.NewVideo(synth.VideoConfig{W: 96, H: 72, Seed: 5, Noise: 0.005})
	f0 := v.Frame(0)
	f1 := v.Frame(1)
	f40 := v.Frame(40)
	metric := vec.EuclideanMetric{}
	for _, name := range []string{"colorhist", "hog"} {
		e, _ := ByName(name)
		k0 := e.Extract(f0).Key.Normalize()
		k1 := e.Extract(f1).Key.Normalize()
		k40 := e.Extract(f40).Key.Normalize()
		near := metric.Distance(k0, k1)
		far := metric.Distance(k0, k40)
		if near >= far {
			t.Errorf("%s: adjacent distance %.4f >= distant %.4f", name, near, far)
		}
	}
}

func TestGridPoolNormalizationAndBounds(t *testing.T) {
	pts := []point{{x: 0, y: 0, weight: 1}, {x: 99, y: 99, weight: 3}}
	g := gridPool(pts, 100, 100, 4, 4)
	if len(g) != 16 {
		t.Fatalf("grid dims = %d", len(g))
	}
	var sum float64
	for _, v := range g {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("grid not normalized: %v", sum)
	}
	if g[0] != 0.25 || g[15] != 0.75 {
		t.Errorf("grid = %v", g)
	}
	// Degenerate dimensions do not panic.
	if z := gridPool(pts, 0, 0, 4, 4); len(z) != 16 {
		t.Error("zero-size gridPool wrong length")
	}
}
