package feature

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// Golden-equivalence tests for the fused/in-place descriptor helpers.
// The references below are verbatim ports of the original allocating
// implementations (every sample through the clamping At/Sum accessors,
// fresh vectors everywhere); the optimized ...Into variants must match
// them on Float64bits at every probe point — in particular across the
// interior/border seam where the fast paths switch from unchecked
// direct indexing back to clamped access.

func refOrientationHistogram(mag, ori *imaging.Gray, x, y, radius, nbins int) vec.Vector {
	h := make(vec.Vector, nbins)
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			b := int(ori.At(x+dx, y+dy) / math.Pi * float64(nbins))
			if b >= nbins {
				b = nbins - 1
			}
			h[b] += mag.At(x+dx, y+dy)
		}
	}
	return h
}

func refHessianResponse(it *imaging.Integral, w, h, l int) *imaging.Gray {
	out := imaging.NewGray(w, h)
	area := float64(l * l)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dxx := (2*it.Sum(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
				it.Sum(x-l/2-l, y-l/2, x-l/2, y+l/2+1) -
				it.Sum(x+l/2+1, y-l/2, x+l/2+1+l, y+l/2+1)) / area
			dyy := (2*it.Sum(x-l/2, y-l/2, x+l/2+1, y+l/2+1) -
				it.Sum(x-l/2, y-l/2-l, x+l/2+1, y-l/2) -
				it.Sum(x-l/2, y+l/2+1, x+l/2+1, y+l/2+1+l)) / area
			dxy := (it.Sum(x-l, y-l, x, y) + it.Sum(x+1, y+1, x+1+l, y+1+l) -
				it.Sum(x+1, y-l, x+1+l, y) - it.Sum(x-l, y+1, x, y+1+l)) / area
			v := dxx*dyy - 0.81*dxy*dxy
			if v < 0 {
				v = 0
			}
			out.Pix[y*w+x] = v
		}
	}
	return out
}

func refSurfDescriptor(it *imaging.Integral, cx, cy int) vec.Vector {
	d := make(vec.Vector, surfDescriptorDims)
	idx := 0
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			var sdx, sadx, sdy, sady float64
			for py := 0; py < 4; py++ {
				for px := 0; px < 4; px++ {
					x := cx - 8 + sx*4 + px
					y := cy - 8 + sy*4 + py
					dx := it.Sum(x, y-1, x+2, y+1) - it.Sum(x-2, y-1, x, y+1)
					dy := it.Sum(x-1, y, x+1, y+2) - it.Sum(x-1, y-2, x+1, y)
					sdx += dx
					sdy += dy
					if dx < 0 {
						sadx -= dx
					} else {
						sadx += dx
					}
					if dy < 0 {
						sady -= dy
					} else {
						sady += dy
					}
				}
			}
			d[idx], d[idx+1], d[idx+2], d[idx+3] = sdx, sadx, sdy, sady
			idx += 4
		}
	}
	return d.Normalize()
}

func refSiftDescriptor(mag, ori *imaging.Gray, cx, cy int) vec.Vector {
	d := make(vec.Vector, siftDescriptorDims)
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			h := refOrientationHistogram(mag, ori, cx-8+sx*4+2, cy-8+sy*4+2, 2, 8)
			copy(d[(sy*4+sx)*8:], h)
		}
	}
	return d.Normalize()
}

func vecBitsEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: component %d: got %v (bits %#x), want %v (bits %#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func noisyGray(w, h int, seed int64) *imaging.Gray {
	g := imaging.NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Pix {
		g.Pix[i] = rng.Float64()
	}
	return g
}

// probeCenters yields every center near the four edges plus a grid of
// interior points, so both sides of each unchecked-fast-path guard are
// compared.
func probeCenters(w, h, margin int) [][2]int {
	var pts [][2]int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			nearEdge := x < margin || y < margin || x >= w-margin || y >= h-margin
			if nearEdge || (x%7 == 3 && y%5 == 2) {
				pts = append(pts, [2]int{x, y})
			}
		}
	}
	return pts
}

func TestGoldenOrientationHistogram(t *testing.T) {
	const w, h = 24, 18
	src := noisyGray(w, h, 1)
	mag, ori := imaging.GradientMagnitudeOrientation(src)
	for _, radius := range []int{2, 4} {
		for _, c := range probeCenters(w, h, radius+1) {
			want := refOrientationHistogram(mag, ori, c[0], c[1], radius, 8)
			got := make([]float64, 8)
			// Poison: Into must fully reset the histogram.
			for i := range got {
				got[i] = math.NaN()
			}
			orientationHistogramInto(got, mag, ori, c[0], c[1], radius)
			vecBitsEqual(t, fmt.Sprintf("orientationHistogram r=%d center=(%d,%d)", radius, c[0], c[1]), want, got)
		}
	}
}

func TestGoldenHessianResponse(t *testing.T) {
	for _, sz := range [][2]int{{8, 6}, {24, 18}, {40, 30}} {
		src := noisyGray(sz[0], sz[1], 2)
		it := imaging.NewIntegral(src)
		for _, l := range []int{3, 5, 7} {
			want := refHessianResponse(it, sz[0], sz[1], l)
			got := imaging.NewGray(sz[0], sz[1])
			for i := range got.Pix {
				got.Pix[i] = math.NaN()
			}
			hessianResponseInto(got, it, sz[0], sz[1], l)
			vecBitsEqual(t, fmt.Sprintf("hessianResponse %dx%d l=%d", sz[0], sz[1], l), want.Pix, got.Pix)
		}
	}
}

func TestGoldenSurfDescriptor(t *testing.T) {
	const w, h = 32, 26
	src := noisyGray(w, h, 3)
	it := imaging.NewIntegral(src)
	// Margin 11 straddles the cx>=10 && cx+9<=w unchecked-path guard.
	for _, c := range probeCenters(w, h, 11) {
		want := refSurfDescriptor(it, c[0], c[1])
		got := make([]float64, surfDescriptorDims)
		for i := range got {
			got[i] = math.NaN()
		}
		surfDescriptorInto(got, it, c[0], c[1])
		vecBitsEqual(t, fmt.Sprintf("surfDescriptor center=(%d,%d)", c[0], c[1]), want, got)
	}
}

func TestGoldenSiftDescriptor(t *testing.T) {
	const w, h = 32, 26
	src := noisyGray(w, h, 4)
	mag, ori := imaging.GradientMagnitudeOrientation(src)
	for _, c := range probeCenters(w, h, 9) {
		want := refSiftDescriptor(mag, ori, c[0], c[1])
		got := make([]float64, siftDescriptorDims)
		for i := range got {
			got[i] = math.NaN()
		}
		siftDescriptorInto(got, mag, ori, c[0], c[1])
		vecBitsEqual(t, fmt.Sprintf("siftDescriptor center=(%d,%d)", c[0], c[1]), want, got)
	}
}

// TestGoldenNormalizeInPlace pins the in-place normalizations to the
// allocating vec originals, including the zero-vector no-op case.
func TestGoldenNormalizeInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		v := make(vec.Vector, 1+rng.Intn(64))
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if trial%10 == 0 {
			for i := range v {
				v[i] = 0
			}
		}
		want := v.Normalize()
		got := append(vec.Vector(nil), v...)
		normalizeInPlace(got)
		vecBitsEqual(t, fmt.Sprintf("normalizeInPlace trial %d", trial), want, got)

		wantL1 := v.NormalizeL1()
		gotL1 := append(vec.Vector(nil), v...)
		normalizeL1InPlace(gotL1)
		vecBitsEqual(t, fmt.Sprintf("normalizeL1InPlace trial %d", trial), wantL1, gotL1)
	}
}
