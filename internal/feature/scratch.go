package feature

import (
	"math"
	"sync"
)

// Per-extractor scratch pooling.
//
// Key generation is the toll every cache lookup pays (Table 1), so the
// extractors recycle their working state across frames: pixel-buffer
// scratch comes from the imaging package's size-classed pools, and the
// keypoint/descriptor scratch below comes from per-extractor
// sync.Pools. The only allocations a steady-state Extract performs are
// the ones whose memory escapes into the returned Result.Key — scratch
// never does (a pooled buffer handed to a future frame must not be
// reachable from a key the cache retains).

// extractScratch is the recycled non-pixel working state of one
// extraction: the keypoint accumulation slice, the top-K selection
// buffer, and one descriptor's worth of vector scratch.
type extractScratch struct {
	pts  []point
	sel  []point
	desc [siftDescriptorDims]float64 // largest descriptor; SURF uses a prefix
}

var scratchPool = sync.Pool{New: func() any { return new(extractScratch) }}

// normalizeInPlace scales v to unit L2 norm in place. Bit-identical to
// vec.Vector.Normalize (zero vectors are left unchanged, otherwise each
// component is multiplied by the same precomputed 1/norm).
func normalizeInPlace(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	n := math.Sqrt(sum)
	if n == 0 {
		return
	}
	s := 1 / n
	for i := range v {
		v[i] *= s
	}
}

// normalizeL1InPlace scales v so its components sum to 1 in absolute
// value, in place. Bit-identical to vec.Vector.NormalizeL1.
func normalizeL1InPlace(v []float64) {
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	if sum == 0 {
		return
	}
	s := 1 / sum
	for i := range v {
		v[i] *= s
	}
}

// scaleInPlace multiplies every component by s. Bit-identical to
// vec.Vector.Scale.
func scaleInPlace(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}
