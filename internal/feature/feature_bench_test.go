package feature

import (
	"testing"

	"repro/internal/synth"
)

// BenchmarkExtract measures each library extractor on a camera-sized
// frame (smaller than Table 1's 600×400; the root bench covers that).
func BenchmarkExtract(b *testing.B) {
	img := synth.NewVideo(synth.VideoConfig{W: 160, H: 120, Seed: 1, Objects: 20}).Frame(0)
	for _, name := range Names() {
		ext, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ext.Extract(img)
			}
		})
	}
}
