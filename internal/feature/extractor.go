// Package feature implements the key-generation mechanisms of §3.2 and
// §5.2: feature extractors that turn a raw image into a feature-vector
// key defined in a metric space. The inventory follows Table 1 of the
// paper — SIFT-like and SURF-like descriptors for recognition, Harris
// and FAST corners for detection, down-sampling for deep-learning input
// — plus the color-histogram and HOG features used in Figure 2.
//
// Each extractor produces a fixed-length key (descriptor sets are
// aggregated over a spatial grid so that keys from any image compare
// under a single metric) and reports the footprint of the full
// descriptor payload, the quantity Table 1 calls "Size".
package feature

import (
	"fmt"
	"sort"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// Result is the outcome of one extraction.
type Result struct {
	// Key is the fixed-length feature-vector key for the cache.
	Key vec.Vector
	// RawBytes is the footprint of the full (variable-length) descriptor
	// payload, e.g. N keypoints × descriptor size. Table 1 reports this.
	RawBytes int
	// Keypoints is the number of interest points detected (0 for dense
	// features such as histograms).
	Keypoints int
}

// Extractor converts an image into a cache key.
type Extractor interface {
	// Name returns the extractor's stable identifier ("sift", "fast", ...).
	Name() string
	// Usage describes the workload the feature suits, per Table 1.
	Usage() string
	// Extract computes the feature for img.
	Extract(img *imaging.RGB) Result
}

// registry holds the built-in extractors, following the paper's "library
// of mechanisms provided within Potluck" (§3.2).
var registry = map[string]Extractor{}

// Register adds an extractor to the library. It panics on duplicate
// names; extractors are registered at init time.
func Register(e Extractor) {
	if _, dup := registry[e.Name()]; dup {
		panic(fmt.Sprintf("feature: duplicate extractor %q", e.Name()))
	}
	registry[e.Name()] = e
}

// ByName returns the named extractor from the library. After
// Instrument has been called the returned extractor records each
// Extract's latency into the registry's per-extractor histogram.
func ByName(name string) (Extractor, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("feature: unknown extractor %q", name)
	}
	return maybeTimed(e), nil
}

// Names lists the registered extractors in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(ColorHist{})
	Register(HOG{})
	Register(Downsample{})
	Register(FAST{})
	Register(Harris{})
	Register(SURF{})
	Register(SIFT{})
}

// gridPool accumulates per-point weight into a gw×gh spatial grid and
// returns it L1-normalized. It converts variable keypoint sets into
// fixed-length, comparable key components.
func gridPool(points []point, w, h, gw, gh int) vec.Vector {
	out := make(vec.Vector, gw*gh)
	if w == 0 || h == 0 {
		return out
	}
	for _, p := range points {
		cx := p.x * gw / w
		cy := p.y * gh / h
		if cx >= gw {
			cx = gw - 1
		}
		if cy >= gh {
			cy = gh - 1
		}
		out[cy*gw+cx] += p.weight
	}
	normalizeL1InPlace(out)
	return out
}

type point struct {
	x, y   int
	weight float64
}
