package render

import (
	"math"

	"repro/internal/imaging"
)

// WarpToPose approximates the frame at pose `to` from a frame rendered
// at pose `from`, the Potluck fast path for AR rendering: "looking up
// rendered 2D images with the most similar orientation, estimating the
// transform matrix, and warping the original 2D image to fit the current
// orientation" (§5.5). The approximation maps small pose deltas to a 2-D
// projective transform: yaw/pitch become screen translation, roll a
// rotation about the image center, and forward motion a scale change.
// It is accurate for the small deltas within the cache's similarity
// threshold and degrades gracefully beyond it.
func WarpToPose(frame *imaging.RGB, from, to Pose, fov float64) *imaging.RGB {
	if fov <= 0 {
		fov = math.Pi / 3
	}
	f := float64(frame.H) / 2 / math.Tan(fov/2)
	cx := float64(frame.W) / 2
	cy := float64(frame.H) / 2

	dyaw := to.Yaw - from.Yaw
	dpitch := to.Pitch - from.Pitch
	droll := to.Roll - from.Roll

	// Forward axis of the source pose (camera looks down -Z rotated by
	// yaw/pitch); motion along it reads as zoom.
	forward := Vec3{
		-math.Sin(from.Yaw) * math.Cos(from.Pitch),
		math.Sin(from.Pitch),
		-math.Cos(from.Yaw) * math.Cos(from.Pitch),
	}
	delta := to.Pos.Sub(from.Pos)
	advance := delta.Dot(forward)
	// Assume a nominal scene depth for the parallax-to-zoom conversion.
	const nominalDepth = 5.0
	scale := 1.0
	if nominalDepth-advance > 0.1 {
		scale = nominalDepth / (nominalDepth - advance)
	}
	// Lateral motion reads as translation (parallax at nominal depth).
	right := Vec3{math.Cos(from.Yaw), 0, -math.Sin(from.Yaw)}
	up := Vec3{0, 1, 0}
	// Positive yaw turns the camera left, so scene content shifts right
	// on screen; positive pitch tilts up, shifting content down.
	tx := f*dyaw - f*delta.Dot(right)/nominalDepth
	ty := f*dpitch + f*delta.Dot(up)/nominalDepth

	m := imaging.Translation(tx, ty).
		Mul(imaging.RotationAbout(-droll, cx, cy)).
		Mul(imaging.ScalingAbout(scale, scale, cx, cy))
	out, err := imaging.WarpRGB(frame, m, 0.08, 0.08, 0.12)
	if err != nil {
		// The transform above is always invertible (scale > 0), but fall
		// back to the unwarped frame defensively.
		return frame.Clone()
	}
	return out
}
