package render

import (
	"math"

	"repro/internal/imaging"
	"repro/internal/vec"
)

// Pose is the device's 3-D orientation and location, the cache key for
// the location-based AR application ("The 3D orientation and location of
// the device are used as the key for the cache lookups", §5.5).
type Pose struct {
	// Yaw, Pitch, Roll are the orientation in radians.
	Yaw, Pitch, Roll float64
	// Pos is the camera position in world coordinates.
	Pos Vec3
}

// Key converts the pose to a 6-D feature vector. Orientation components
// are scaled so that a radian of rotation and a unit of translation
// contribute comparably to the distance.
func (p Pose) Key() vec.Vector {
	return vec.Vector{p.Yaw, p.Pitch, p.Roll, p.Pos.X, p.Pos.Y, p.Pos.Z}
}

// ViewMatrix returns the world→camera transform for the pose.
func (p Pose) ViewMatrix() Mat4 {
	// Inverse of R_y(yaw)·R_x(pitch)·R_z(roll) then translate.
	rot := RotateZ4(-p.Roll).Mul(RotateX4(-p.Pitch)).Mul(RotateY4(-p.Yaw))
	return rot.Mul(Translate4(p.Pos.Scale(-1)))
}

// Object places a mesh in the world.
type Object struct {
	Mesh      *Mesh
	Transform Mat4
}

// Scene is a collection of placed objects.
type Scene struct {
	Objects []Object
	// Light is the directional light (world space); zero means the
	// default (0.4, -1, -0.3).
	Light Vec3
}

// Triangles returns the total triangle count, the scene-complexity
// measure behind Figure 10(b)'s 1/2/3-object scenes.
func (s *Scene) Triangles() int {
	n := 0
	for _, o := range s.Objects {
		n += o.Mesh.Triangles()
	}
	return n
}

// Renderer rasterizes scenes with a perspective camera and z-buffer.
type Renderer struct {
	W, H int
	// FOV is the vertical field of view in radians (default π/3).
	FOV float64
	// Near clips geometry closer than this distance (default 0.1).
	Near float64
}

// NewRenderer returns a renderer with default camera parameters.
func NewRenderer(w, h int) *Renderer {
	return &Renderer{W: w, H: h, FOV: math.Pi / 3, Near: 0.1}
}

// Render draws the scene from the given pose into a new RGB frame with
// a depth buffer, returning the frame. Background is a dark gradient so
// warped frames blend plausibly.
func (r *Renderer) Render(scene *Scene, pose Pose) *imaging.RGB {
	img := imaging.NewRGB(r.W, r.H)
	for y := 0; y < r.H; y++ {
		t := float64(y) / float64(max(r.H-1, 1))
		for x := 0; x < r.W; x++ {
			img.Set(x, y, 0.08+0.05*t, 0.08+0.05*t, 0.12+0.06*t)
		}
	}
	zbuf := make([]float64, r.W*r.H)
	for i := range zbuf {
		zbuf[i] = math.Inf(1)
	}
	view := pose.ViewMatrix()
	light := scene.Light
	if light == (Vec3{}) {
		light = Vec3{0.4, -1, -0.3}
	}
	light = light.Normalize().Scale(-1) // direction toward the light
	f := float64(r.H) / 2 / math.Tan(r.FOV/2)

	project := func(v Vec3) (float64, float64, float64, bool) {
		if v.Z >= -r.Near { // camera looks down -Z
			return 0, 0, 0, false
		}
		return float64(r.W)/2 + f*v.X/(-v.Z), float64(r.H)/2 - f*v.Y/(-v.Z), -v.Z, true
	}

	for _, obj := range scene.Objects {
		mv := view.Mul(obj.Transform)
		for _, tri := range obj.Mesh.Tris {
			a := mv.ApplyPoint(obj.Mesh.Verts[tri[0]])
			b := mv.ApplyPoint(obj.Mesh.Verts[tri[1]])
			c := mv.ApplyPoint(obj.Mesh.Verts[tri[2]])
			ax, ay, az, okA := project(a)
			bx, by, bz, okB := project(b)
			cx, cy, cz, okC := project(c)
			if !okA || !okB || !okC {
				continue // simple clipping: drop near-plane crossers
			}
			// Back-face culling and Lambert shading in camera space.
			n := b.Sub(a).Cross(c.Sub(a))
			if n.Z <= 0 {
				continue // facing away
			}
			worldN := obj.Transform.ApplyDir(
				obj.Mesh.Verts[tri[1]].Sub(obj.Mesh.Verts[tri[0]]).
					Cross(obj.Mesh.Verts[tri[2]].Sub(obj.Mesh.Verts[tri[0]])),
			).Normalize()
			shade := 0.35 + 0.65*math.Max(0, worldN.Dot(light))
			col := obj.Mesh.Color
			r.fillTriangle(img, zbuf,
				ax, ay, az, bx, by, bz, cx, cy, cz,
				col[0]*shade, col[1]*shade, col[2]*shade)
		}
	}
	return img
}

// fillTriangle rasterizes one screen-space triangle with barycentric
// z-interpolation against the z-buffer.
func (r *Renderer) fillTriangle(img *imaging.RGB, zbuf []float64,
	ax, ay, az, bx, by, bz, cx, cy, cz, cr, cg, cb float64) {

	minX := int(math.Floor(math.Min(ax, math.Min(bx, cx))))
	maxX := int(math.Ceil(math.Max(ax, math.Max(bx, cx))))
	minY := int(math.Floor(math.Min(ay, math.Min(by, cy))))
	maxY := int(math.Ceil(math.Max(ay, math.Max(by, cy))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX >= r.W {
		maxX = r.W - 1
	}
	if maxY >= r.H {
		maxY = r.H - 1
	}
	area := (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	if area == 0 {
		return
	}
	inv := 1 / area
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x)+0.5, float64(y)+0.5
			w0 := ((bx-px)*(cy-py) - (by-py)*(cx-px)) * inv
			w1 := ((cx-px)*(ay-py) - (cy-py)*(ax-px)) * inv
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			z := w0*az + w1*bz + w2*cz
			i := y*r.W + x
			if z < zbuf[i] {
				zbuf[i] = z
				img.Set(x, y, cr, cg, cb)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
