package render

import "math"

// Mesh is a triangle mesh with a flat base color.
type Mesh struct {
	Verts []Vec3
	// Tris indexes Verts; counter-clockwise winding faces outward.
	Tris  [][3]int
	Color [3]float64
}

// Triangles returns the triangle count (the renderer's cost driver).
func (m *Mesh) Triangles() int { return len(m.Tris) }

// Cube returns a unit cube centred at the origin.
func Cube(color [3]float64) *Mesh {
	v := []Vec3{
		{-0.5, -0.5, -0.5}, {0.5, -0.5, -0.5}, {0.5, 0.5, -0.5}, {-0.5, 0.5, -0.5},
		{-0.5, -0.5, 0.5}, {0.5, -0.5, 0.5}, {0.5, 0.5, 0.5}, {-0.5, 0.5, 0.5},
	}
	t := [][3]int{
		{0, 2, 1}, {0, 3, 2}, // back
		{4, 5, 6}, {4, 6, 7}, // front
		{0, 1, 5}, {0, 5, 4}, // bottom
		{3, 7, 6}, {3, 6, 2}, // top
		{0, 4, 7}, {0, 7, 3}, // left
		{1, 2, 6}, {1, 6, 5}, // right
	}
	return &Mesh{Verts: v, Tris: t, Color: color}
}

// Sphere returns a UV sphere of the given resolution; triangle count is
// roughly 2·lat·lon, so resolution controls rendering cost.
func Sphere(lat, lon int, color [3]float64) *Mesh {
	if lat < 2 {
		lat = 2
	}
	if lon < 3 {
		lon = 3
	}
	m := &Mesh{Color: color}
	for i := 0; i <= lat; i++ {
		phi := math.Pi * float64(i) / float64(lat)
		for j := 0; j <= lon; j++ {
			theta := 2 * math.Pi * float64(j) / float64(lon)
			m.Verts = append(m.Verts, Vec3{
				0.5 * math.Sin(phi) * math.Cos(theta),
				0.5 * math.Cos(phi),
				0.5 * math.Sin(phi) * math.Sin(theta),
			})
		}
	}
	idx := func(i, j int) int { return i*(lon+1) + j }
	for i := 0; i < lat; i++ {
		for j := 0; j < lon; j++ {
			a, b, c, d := idx(i, j), idx(i+1, j), idx(i+1, j+1), idx(i, j+1)
			m.Tris = append(m.Tris, [3]int{a, b, c}, [3]int{a, c, d})
		}
	}
	return m
}

// Pyramid returns a square pyramid (apex up), a cheap distinctive shape.
func Pyramid(color [3]float64) *Mesh {
	v := []Vec3{
		{-0.5, 0, -0.5}, {0.5, 0, -0.5}, {0.5, 0, 0.5}, {-0.5, 0, 0.5},
		{0, 0.8, 0},
	}
	t := [][3]int{
		{0, 1, 4}, {1, 2, 4}, {2, 3, 4}, {3, 0, 4},
		{0, 2, 1}, {0, 3, 2},
	}
	return &Mesh{Verts: v, Tris: t, Color: color}
}

// Furniture returns a composite table-like mesh (top slab + four legs),
// standing in for IKEA-Place-style virtual furniture.
func Furniture(color [3]float64) *Mesh {
	m := &Mesh{Color: color}
	addBox := func(cx, cy, cz, sx, sy, sz float64) {
		base := len(m.Verts)
		for _, d := range [][3]float64{
			{-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
			{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1},
		} {
			m.Verts = append(m.Verts, Vec3{cx + d[0]*sx/2, cy + d[1]*sy/2, cz + d[2]*sz/2})
		}
		for _, t := range [][3]int{
			{0, 2, 1}, {0, 3, 2}, {4, 5, 6}, {4, 6, 7},
			{0, 1, 5}, {0, 5, 4}, {3, 7, 6}, {3, 6, 2},
			{0, 4, 7}, {0, 7, 3}, {1, 2, 6}, {1, 6, 5},
		} {
			m.Tris = append(m.Tris, [3]int{base + t[0], base + t[1], base + t[2]})
		}
	}
	addBox(0, 0.5, 0, 1.2, 0.1, 0.8) // top
	for _, lx := range []float64{-0.5, 0.5} {
		for _, lz := range []float64{-0.3, 0.3} {
			addBox(lx, 0.225, lz, 0.1, 0.45, 0.1) // legs
		}
	}
	return m
}
