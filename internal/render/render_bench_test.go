package render

import (
	"fmt"
	"testing"

	"repro/internal/imaging"
)

// BenchmarkRender measures rasterization cost vs triangle count, the
// scaling behind Figure 10(b).
func BenchmarkRender(b *testing.B) {
	r := NewRenderer(320, 240)
	for _, res := range []int{8, 16, 32} {
		scene := &Scene{Objects: []Object{{
			Mesh:      Sphere(res, res*3/2, [3]float64{0.8, 0.3, 0.3}),
			Transform: Translate4(Vec3{Z: -5}),
		}}}
		b.Run(fmt.Sprintf("tris-%d", scene.Triangles()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Render(scene, Pose{})
			}
		})
	}
}

// BenchmarkWarpToPose measures the fast path's fixed per-frame cost.
func BenchmarkWarpToPose(b *testing.B) {
	r := NewRenderer(320, 240)
	scene := &Scene{Objects: []Object{{
		Mesh:      Sphere(16, 24, [3]float64{0.8, 0.3, 0.3}),
		Transform: Translate4(Vec3{Z: -5}),
	}}}
	frame := r.Render(scene, Pose{})
	to := Pose{Yaw: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WarpToPose(frame, Pose{}, to, r.FOV)
	}
}

// BenchmarkWarpQuality is not a speed benchmark: it reports (via b.Log)
// the MSE of the warp against a true re-render at increasing pose
// deltas, the quality cliff that bounds the usable similarity threshold.
func BenchmarkWarpQuality(b *testing.B) {
	r := NewRenderer(160, 120)
	scene := &Scene{Objects: []Object{{
		Mesh:      Sphere(16, 24, [3]float64{0.8, 0.3, 0.3}),
		Transform: Translate4(Vec3{Z: -5}),
	}}}
	from := Pose{}
	cached := r.Render(scene, from)
	for i := 0; i < b.N; i++ {
		for _, dyaw := range []float64{0.02, 0.05, 0.1, 0.2} {
			to := Pose{Yaw: dyaw}
			truth := r.Render(scene, to)
			warped := WarpToPose(cached, from, to, r.FOV)
			mse := imaging.MSE(warped.Gray(), truth.Gray())
			if i == 0 {
				b.Logf("dyaw=%.2f mse=%.5f", dyaw, mse)
			}
		}
	}
}
