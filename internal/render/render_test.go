package render

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/imaging"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	n := (Vec3{10, 0, 0}).Normalize()
	if n != (Vec3{1, 0, 0}) {
		t.Errorf("Normalize = %v", n)
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Errorf("Normalize zero = %v", z)
	}
}

func TestMat4Identity(t *testing.T) {
	id := Identity4()
	p := Vec3{1, 2, 3}
	if got := id.ApplyPoint(p); got != p {
		t.Errorf("identity moved point: %v", got)
	}
	if got := id.Mul(Translate4(Vec3{1, 0, 0})); got != Translate4(Vec3{1, 0, 0}) {
		t.Error("I*T != T")
	}
}

func TestMat4TranslateRotate(t *testing.T) {
	tr := Translate4(Vec3{1, 2, 3})
	if got := tr.ApplyPoint(Vec3{0, 0, 0}); got != (Vec3{1, 2, 3}) {
		t.Errorf("translate = %v", got)
	}
	if got := tr.ApplyDir(Vec3{1, 0, 0}); got != (Vec3{1, 0, 0}) {
		t.Errorf("ApplyDir includes translation: %v", got)
	}
	ry := RotateY4(math.Pi / 2)
	got := ry.ApplyPoint(Vec3{1, 0, 0})
	if math.Abs(got.X) > 1e-12 || math.Abs(got.Z+1) > 1e-12 {
		t.Errorf("RotateY(90°)·x̂ = %v, want -ẑ", got)
	}
	rx := RotateX4(math.Pi / 2)
	got = rx.ApplyPoint(Vec3{0, 1, 0})
	if math.Abs(got.Y) > 1e-12 || math.Abs(got.Z-1) > 1e-12 {
		t.Errorf("RotateX(90°)·ŷ = %v, want ẑ", got)
	}
	rz := RotateZ4(math.Pi / 2)
	got = rz.ApplyPoint(Vec3{1, 0, 0})
	if math.Abs(got.X) > 1e-12 || math.Abs(got.Y-1) > 1e-12 {
		t.Errorf("RotateZ(90°)·x̂ = %v, want ŷ", got)
	}
}

// Property: rotations preserve vector length.
func TestRotationPreservesLengthProperty(t *testing.T) {
	f := func(theta, x, y, z float64) bool {
		theta = math.Mod(theta, 2*math.Pi)
		v := Vec3{math.Mod(x, 100), math.Mod(y, 100), math.Mod(z, 100)}
		if math.IsNaN(theta + v.X + v.Y + v.Z) {
			return true
		}
		for _, m := range []Mat4{RotateX4(theta), RotateY4(theta), RotateZ4(theta)} {
			if math.Abs(m.ApplyPoint(v).Norm()-v.Norm()) > 1e-9*(1+v.Norm()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeshes(t *testing.T) {
	if got := Cube([3]float64{1, 0, 0}).Triangles(); got != 12 {
		t.Errorf("cube triangles = %d", got)
	}
	s := Sphere(8, 12, [3]float64{0, 1, 0})
	if s.Triangles() != 2*8*12 {
		t.Errorf("sphere triangles = %d", s.Triangles())
	}
	// All sphere vertices on the 0.5 radius.
	for _, v := range s.Verts {
		if math.Abs(v.Norm()-0.5) > 1e-9 {
			t.Fatalf("sphere vertex off surface: %v", v)
		}
	}
	if got := Pyramid([3]float64{0, 0, 1}).Triangles(); got != 6 {
		t.Errorf("pyramid triangles = %d", got)
	}
	if got := Furniture([3]float64{1, 1, 0}).Triangles(); got != 5*12 {
		t.Errorf("furniture triangles = %d", got)
	}
	// Degenerate sphere params are clamped.
	if Sphere(0, 0, [3]float64{}).Triangles() == 0 {
		t.Error("clamped sphere has no triangles")
	}
}

func sceneOneCube() *Scene {
	return &Scene{Objects: []Object{{
		Mesh:      Cube([3]float64{1, 0.2, 0.2}),
		Transform: Translate4(Vec3{0, 0, -5}),
	}}}
}

func TestRenderDrawsObject(t *testing.T) {
	r := NewRenderer(64, 48)
	img := r.Render(sceneOneCube(), Pose{})
	// Center pixel shows the cube (reddish), corner shows background.
	cr, cg, cb := img.At(32, 24)
	if cr < 0.3 || cr <= cg || cr <= cb {
		t.Errorf("center pixel = (%v, %v, %v), want red-dominated", cr, cg, cb)
	}
	br, _, bb := img.At(1, 1)
	if br > 0.2 || bb > 0.25 {
		t.Errorf("corner pixel = (%v, _, %v), want background", br, bb)
	}
}

func TestRenderBehindCameraIsClipped(t *testing.T) {
	r := NewRenderer(32, 32)
	scene := &Scene{Objects: []Object{{
		Mesh:      Cube([3]float64{1, 1, 1}),
		Transform: Translate4(Vec3{0, 0, 5}), // behind the camera
	}}}
	img := r.Render(scene, Pose{})
	cr, cg, cb := img.At(16, 16)
	if cr > 0.2 && cg > 0.2 && cb > 0.2 {
		t.Errorf("object behind camera rendered: (%v, %v, %v)", cr, cg, cb)
	}
}

func TestRenderZBuffer(t *testing.T) {
	// A red cube in front of a green cube: center must be red.
	scene := &Scene{Objects: []Object{
		{Mesh: Cube([3]float64{0, 1, 0}), Transform: Translate4(Vec3{0, 0, -8}).Mul(Scale4(3))},
		{Mesh: Cube([3]float64{1, 0, 0}), Transform: Translate4(Vec3{0, 0, -4})},
	}}
	r := NewRenderer(64, 64)
	img := r.Render(scene, Pose{})
	cr, cg, _ := img.At(32, 32)
	if cr <= cg {
		t.Errorf("occluded object visible: r=%v g=%v", cr, cg)
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := NewRenderer(32, 32)
	a := r.Render(sceneOneCube(), Pose{Yaw: 0.2, Pitch: 0.1})
	b := r.Render(sceneOneCube(), Pose{Yaw: 0.2, Pitch: 0.1})
	if imaging.MSE(a.Gray(), b.Gray()) != 0 {
		t.Error("render not deterministic")
	}
}

func TestRenderCostGrowsWithTriangles(t *testing.T) {
	one := sceneOneCube()
	three := &Scene{Objects: []Object{
		{Mesh: Sphere(24, 32, [3]float64{1, 0, 0}), Transform: Translate4(Vec3{-1, 0, -5})},
		{Mesh: Sphere(24, 32, [3]float64{0, 1, 0}), Transform: Translate4(Vec3{0, 0, -6})},
		{Mesh: Sphere(24, 32, [3]float64{0, 0, 1}), Transform: Translate4(Vec3{1, 0, -5})},
	}}
	if three.Triangles() <= one.Triangles() {
		t.Errorf("scene complexity not increasing: %d vs %d", three.Triangles(), one.Triangles())
	}
}

func TestPoseKey(t *testing.T) {
	p := Pose{Yaw: 1, Pitch: 2, Roll: 3, Pos: Vec3{4, 5, 6}}
	k := p.Key()
	want := []float64{1, 2, 3, 4, 5, 6}
	for i := range want {
		if k[i] != want[i] {
			t.Fatalf("Key = %v", k)
		}
	}
}

func TestViewMatrixInvertsPose(t *testing.T) {
	// A point at the camera position maps to the origin.
	p := Pose{Yaw: 0.5, Pitch: -0.2, Roll: 0.1, Pos: Vec3{1, 2, 3}}
	got := p.ViewMatrix().ApplyPoint(p.Pos)
	if got.Norm() > 1e-9 {
		t.Errorf("camera position maps to %v, want origin", got)
	}
}

// TestWarpApproximatesRender is the fast-path quality check: for a small
// pose delta, warping the cached frame must be much closer to the true
// re-render than the stale frame itself.
func TestWarpApproximatesRender(t *testing.T) {
	r := NewRenderer(64, 48)
	scene := sceneOneCube()
	from := Pose{}
	to := Pose{Yaw: 0.06, Pitch: 0.03}
	cached := r.Render(scene, from)
	truth := r.Render(scene, to)
	warped := WarpToPose(cached, from, to, r.FOV)
	errStale := imaging.MSE(cached.Gray(), truth.Gray())
	errWarp := imaging.MSE(warped.Gray(), truth.Gray())
	if errWarp >= errStale {
		t.Errorf("warp error %.5f >= stale error %.5f", errWarp, errStale)
	}
}

func TestWarpIdentityPose(t *testing.T) {
	r := NewRenderer(32, 32)
	frame := r.Render(sceneOneCube(), Pose{})
	same := WarpToPose(frame, Pose{}, Pose{}, r.FOV)
	if imaging.MSE(frame.Gray(), same.Gray()) > 1e-9 {
		t.Error("identity warp changed frame")
	}
}

func TestWarpZoomOnAdvance(t *testing.T) {
	r := NewRenderer(64, 48)
	frame := r.Render(sceneOneCube(), Pose{})
	// Moving forward (along -Z for yaw 0) should scale content up:
	// the object's bright area grows.
	toward := WarpToPose(frame, Pose{}, Pose{Pos: Vec3{0, 0, -1}}, r.FOV)
	area := func(m *imaging.RGB) int {
		n := 0
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				// The cube is red-dominated; background is blue-ish.
				if r, _, b := m.At(x, y); r > 0.3 && r > b {
					n++
				}
			}
		}
		return n
	}
	if area(toward) <= area(frame) {
		t.Errorf("advancing did not zoom in: %d <= %d", area(toward), area(frame))
	}
}
