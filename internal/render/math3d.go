// Package render is a from-scratch 3-D software renderer: vector/matrix
// math, triangle meshes, a perspective camera, and a z-buffered
// rasterizer with Lambert shading. It is the substrate for the paper's
// two AR benchmark applications (§5.1): rendering virtual objects for a
// device pose is the expensive computation, and the warp fast path
// (pose-keyed reuse of a cached frame, §5.5) is the deduplicated
// alternative, following plenoptic image-based rendering (paper
// citation [36]).
package render

import "math"

// Vec3 is a 3-D vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the inner product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns the unit vector along v (zero vector unchanged).
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Mat4 is a row-major 4×4 homogeneous transform.
type Mat4 [16]float64

// Identity4 returns the identity transform.
func Identity4() Mat4 {
	return Mat4{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
}

// Mul returns m·n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += m[r*4+k] * n[k*4+c]
			}
			out[r*4+c] = s
		}
	}
	return out
}

// ApplyPoint transforms a point (w = 1) without perspective divide.
func (m Mat4) ApplyPoint(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3],
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7],
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11],
	}
}

// ApplyDir transforms a direction (w = 0; translation ignored).
func (m Mat4) ApplyDir(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z,
	}
}

// Translate4 returns a translation transform.
func Translate4(t Vec3) Mat4 {
	return Mat4{1, 0, 0, t.X, 0, 1, 0, t.Y, 0, 0, 1, t.Z, 0, 0, 0, 1}
}

// Scale4 returns a uniform scaling transform.
func Scale4(s float64) Mat4 {
	return Mat4{s, 0, 0, 0, 0, s, 0, 0, 0, 0, s, 0, 0, 0, 0, 1}
}

// RotateX4 rotates about the X axis by theta radians.
func RotateX4(theta float64) Mat4 {
	s, c := math.Sin(theta), math.Cos(theta)
	return Mat4{1, 0, 0, 0, 0, c, -s, 0, 0, s, c, 0, 0, 0, 0, 1}
}

// RotateY4 rotates about the Y axis.
func RotateY4(theta float64) Mat4 {
	s, c := math.Sin(theta), math.Cos(theta)
	return Mat4{c, 0, s, 0, 0, 1, 0, 0, -s, 0, c, 0, 0, 0, 0, 1}
}

// RotateZ4 rotates about the Z axis.
func RotateZ4(theta float64) Mat4 {
	s, c := math.Sin(theta), math.Cos(theta)
	return Mat4{c, -s, 0, 0, s, c, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
}
