package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the Potluck stack. Kind is an open string so
// layers can add their own without touching this package.
const (
	EventHit     = "hit"     // lookup returned a cached value
	EventMiss    = "miss"    // lookup found nothing within threshold
	EventDropout = "dropout" // random dropout skipped the cache (§3.4)
	EventPut     = "put"     // entry inserted
	EventEvict   = "evict"   // capacity eviction (Value = importance)
	EventExpire  = "expire"  // TTL purge (Value = entries purged)
	EventBreaker = "breaker" // circuit-breaker state change (Detail = from→to)
	EventBarred  = "barred"  // reputation system barred an application
)

// Event is one trace record. The numeric fields carry kind-specific
// payloads: for lookup events Value is the nearest-neighbour distance
// and Aux the threshold in force; for evictions Value is the victim's
// importance score and Aux its size in bytes.
type Event struct {
	// Seq is the global sequence number (1-based, monotonic). Gaps in a
	// snapshot mean the ring wrapped past unread events.
	Seq uint64 `json:"seq"`
	// At is the event time in UnixNano (the producer's clock, so
	// virtual-clock experiments trace in virtual time).
	At       int64  `json:"atUnixNano"`
	Kind     string `json:"kind"`
	Function string `json:"function,omitempty"`
	KeyType  string `json:"keyType,omitempty"`
	// Detail carries kind-specific text (breaker transition, app name).
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Aux    float64 `json:"aux,omitempty"`
}

// traceSlot is one ring cell. The per-slot mutex makes slot access
// race-clean while keeping writers independent: two writers only meet
// on the same slot after the ring has wrapped a full capacity between
// them, so the lock is effectively uncontended and the critical section
// is a handful of field stores.
type traceSlot struct {
	mu sync.Mutex
	ev Event
}

// Tracer is a bounded ring buffer of events. Recording is wait-free
// across slots (a global atomic cursor assigns each event its own cell)
// and never allocates; when the ring is full the oldest events are
// overwritten. The nil Tracer drops events, so tracing can be compiled
// in unconditionally and enabled by wiring a real instance.
type Tracer struct {
	slots  []traceSlot
	mask   uint64
	cursor atomic.Uint64
	// now supplies timestamps for events recorded without one.
	now func() time.Time
}

// DefaultTraceCapacity is the ring size used by NewTracer when the
// requested capacity is not positive: large enough to hold a few
// seconds of hot-path decisions, small enough (~400 KB of slots) to
// always leave on.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer holding the most recent capacity events
// (rounded up to a power of two). now is the timestamp source; nil
// means time.Now.
func NewTracer(capacity int, now func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	if now == nil {
		now = time.Now
	}
	return &Tracer{slots: make([]traceSlot, size), mask: uint64(size - 1), now: now}
}

// Record appends an event to the ring. Safe for concurrent use from any
// number of writers; a nil tracer drops the event.
func (t *Tracer) Record(ev Event) {
	if t == nil || len(t.slots) == 0 {
		return
	}
	if ev.At == 0 {
		ev.At = t.now().UnixNano()
	}
	n := t.cursor.Add(1)
	ev.Seq = n
	slot := &t.slots[(n-1)&t.mask]
	slot.mu.Lock()
	slot.ev = ev
	slot.mu.Unlock()
}

// Len reports how many events have ever been recorded.
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// Capacity reports how many events the ring retains.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Snapshot copies the currently recorded events, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil || len(t.slots) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		slot := &t.slots[i]
		slot.mu.Lock()
		ev := slot.ev
		slot.mu.Unlock()
		if ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Telemetry bundles the observability primitives one process shares
// across layers: the metric registry, the event tracer, and the process
// start time (for uptime reporting).
type Telemetry struct {
	Registry *Registry
	Trace    *Tracer
	// Spans retains per-request spans under tail-based sampling; see
	// SpanRecorder.
	Spans   *SpanRecorder
	Started time.Time
}

// New returns a Telemetry with a fresh registry, a default-capacity
// tracer stamped with the real clock, and a default-shape span
// recorder.
func New() *Telemetry {
	return &Telemetry{
		Registry: NewRegistry(),
		Trace:    NewTracer(0, nil),
		Spans:    NewSpanRecorder(0, 0, 0),
		Started:  time.Now(),
	}
}

// RecordSpan records sp if t (and its span recorder) are non-nil, so
// callers can hold an optional *Telemetry and record unconditionally.
func (t *Telemetry) RecordSpan(sp Span) {
	if t == nil {
		return
	}
	t.Spans.Record(sp)
}

// RecordEvent traces ev if t (and its tracer) are non-nil, so callers
// can hold an optional *Telemetry and trace unconditionally.
func (t *Telemetry) RecordEvent(ev Event) {
	if t == nil {
		return
	}
	t.Trace.Record(ev)
}
