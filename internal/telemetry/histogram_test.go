package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, 1, 2, 3, 100, 1000, time.Millisecond, time.Second} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Max != time.Second {
		t.Fatalf("max = %v, want 1s", s.Max)
	}
	wantSum := time.Duration(0+1+2+3+100+1000) + time.Millisecond + time.Second
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	var bucketTotal uint64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0] != 1 {
		t.Fatalf("negative observation not clamped to zero: %+v", s)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 100 observations at ~1µs, 10 at ~1ms, 1 at ~1s.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()

	// A log2 bucket bounds the true value from above by at most 2x.
	p50 := s.Quantile(0.50)
	if p50 < time.Microsecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want within [1µs, 2µs]", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < time.Millisecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want within [1ms, 2ms]", p99)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("p100 = %v, want max %v", q, s.Max)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Nanosecond)
	s := h.Snapshot()
	// The observation lands in bucket [2ns,4ns); the upper bound 4ns
	// exceeds the recorded max 3ns, and the quantile must not.
	if q := s.Quantile(0.99); q != 3*time.Nanosecond {
		t.Errorf("quantile = %v, want clamped to max 3ns", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	if sa.Max != time.Second {
		t.Fatalf("merged max = %v, want 1s", sa.Max)
	}
	if sa.Sum != time.Microsecond+time.Millisecond+time.Second {
		t.Fatalf("merged sum = %v", sa.Sum)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := 20 * time.Minute // beyond the last finite bucket
	h.Observe(huge)
	s := h.Snapshot()
	if s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("huge observation not in overflow bucket: %+v", s.Buckets)
	}
	if q := s.Quantile(0.5); q != huge {
		t.Fatalf("overflow quantile = %v, want recorded max %v", q, huge)
	}
}

// TestHistogramConcurrent exercises Observe/Snapshot under the race
// detector and checks no observations are lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("snapshot count = %d, want %d", s.Count, workers*perWorker)
	}
}

// Merge must add per-bucket counts exactly, not just the aggregates.
func TestHistogramMergePerBucket(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 3; i++ {
		a.Observe(time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		b.Observe(time.Microsecond)
	}
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if got := sa.Buckets[bucketIndex(time.Microsecond)]; got != 8 {
		t.Fatalf("merged microsecond bucket = %d, want 8", got)
	}
	if got := sa.Buckets[bucketIndex(time.Second)]; got != 1 {
		t.Fatalf("merged second bucket = %d, want 1", got)
	}
	var sum uint64
	for _, n := range sa.Buckets {
		sum += n
	}
	if sum != sa.Count {
		t.Fatalf("Count %d != Σ Buckets %d after merge", sa.Count, sum)
	}
}

// Snapshots cut mid-write must stay internally consistent
// (Count == Σ Buckets) and merge without losing observations.
func TestHistogramMergeMidWrite(t *testing.T) {
	var hists [4]Histogram
	const perHist = 20_000
	var writers sync.WaitGroup
	for i := range hists {
		writers.Add(1)
		go func(h *Histogram) {
			defer writers.Done()
			for j := 0; j < perHist; j++ {
				h.Observe(time.Duration(j) * time.Nanosecond)
			}
		}(&hists[i])
	}
	// Merge snapshots while the writers are mid-flight: every merged view
	// must preserve the bucket-sum invariant even though it is not a
	// single atomic cut.
	for round := 0; round < 50; round++ {
		var merged HistogramSnapshot
		for i := range hists {
			merged.Merge(hists[i].Snapshot())
		}
		var sum uint64
		for _, n := range merged.Buckets {
			sum += n
		}
		if sum != merged.Count {
			t.Fatalf("mid-write merge: Count %d != Σ Buckets %d", merged.Count, sum)
		}
	}
	writers.Wait()
	var final HistogramSnapshot
	for i := range hists {
		final.Merge(hists[i].Snapshot())
	}
	if final.Count != uint64(len(hists)*perHist) {
		t.Fatalf("final merged count = %d, want %d", final.Count, len(hists)*perHist)
	}
}

// SetExemplar is store-only: it must never perturb the bucket counts,
// and exemplar trace IDs must survive Merge (own wins, other's adopted
// only where a bucket has none).
func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	h.SetExemplar(time.Microsecond, 42)
	if h.Count() != 0 {
		t.Fatal("SetExemplar counted an observation")
	}
	h.SetExemplar(time.Microsecond, 0) // zero trace is a no-op
	s := h.Snapshot()
	if s.Exemplars[bucketIndex(time.Microsecond)] != 42 {
		t.Fatalf("exemplar lost: %v", s.Exemplars[bucketIndex(time.Microsecond)])
	}
	h.ObserveTraced(time.Millisecond, 99)
	if h.Count() != 1 {
		t.Fatalf("ObserveTraced count = %d, want 1", h.Count())
	}

	var other Histogram
	other.ObserveTraced(time.Microsecond, 7) // same bucket as h's 42
	other.ObserveTraced(time.Second, 8)      // bucket h has no exemplar for
	sa, sb := h.Snapshot(), other.Snapshot()
	sa.Merge(sb)
	if got := sa.Exemplars[bucketIndex(time.Microsecond)]; got != 42 {
		t.Fatalf("merge overwrote own exemplar: %v", got)
	}
	if got := sa.Exemplars[bucketIndex(time.Millisecond)]; got != 99 {
		t.Fatalf("merge lost own exemplar: %v", got)
	}
	if got := sa.Exemplars[bucketIndex(time.Second)]; got != 8 {
		t.Fatalf("merge failed to adopt other's exemplar: %v", got)
	}
}
