package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// HELP text with a newline or backslash must be escaped, or the line
// break corrupts every family after it in the exposition.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("hostile_total", "line one\nline two \\ backslash").Inc()
	r.Counter("after_total", "plain").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP hostile_total line one\nline two \\ backslash`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	// The document must stay line-structured: every non-comment line is
	// "name{labels} value".
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", out)
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q in:\n%s", line, out)
		}
	}
	if !strings.Contains(out, "after_total 1") {
		t.Fatalf("family after hostile HELP corrupted:\n%s", out)
	}
}

// Exemplar trace IDs ride as comment lines, one per non-empty bucket.
func TestPrometheusExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency")
	id := NewTraceID()
	h.ObserveTraced(3*time.Microsecond, id)
	h.ObserveTraced(20*time.Minute, 77) // overflow bucket → le="+Inf"
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := fmt.Sprintf("# exemplar lat_seconds_bucket{le=\"4.096e-06\"} trace_id=%s", id)
	if !strings.Contains(out, want) {
		t.Fatalf("missing exemplar %q in:\n%s", want, out)
	}
	if !strings.Contains(out, `le="+Inf"} trace_id=`+TraceID(77).String()) {
		t.Fatalf("missing +Inf exemplar in:\n%s", out)
	}
}

func getResp(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// Every admin endpoint must declare an explicit Content-Type and
// Cache-Control: no-store.
func TestAdminEndpointHeaders(t *testing.T) {
	tel := New()
	tel.Registry.Counter("c_total", "c").Inc()
	tel.Trace.Record(Event{Kind: EventHit})
	tel.Spans.Record(Span{Trace: 1, Outcome: OutcomeHit})
	srv := httptest.NewServer(AdminHandlerConfig(tel, AdminConfig{
		Stats:   func() any { return map[string]int{"x": 1} },
		Explain: func(fn string, n int) (any, error) { return map[string]string{"fn": fn}, nil },
	}))
	defer srv.Close()

	cases := []struct{ path, ctype string }{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/stats", "application/json"},
		{"/trace", "application/json"},
		{"/trace/spans", "application/json"},
		{"/debug/explain?fn=f", "application/json"},
		{"/", "text/plain; charset=utf-8"},
	}
	for _, c := range cases {
		resp, _ := getResp(t, srv, c.path)
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", c.path, got)
		}
		if got := resp.Header.Get("Content-Type"); got != c.ctype {
			t.Errorf("%s: Content-Type = %q, want %q", c.path, got, c.ctype)
		}
	}
}

func TestTraceSpansEndpoint(t *testing.T) {
	tel := New()
	hitID, missID := NewTraceID(), NewTraceID()
	tel.Spans.Record(Span{Trace: hitID, Layer: "core", Function: "f", Outcome: OutcomeHit, DurationNs: 1000})
	tel.Spans.Record(Span{Trace: missID, Layer: "core", Function: "g", Outcome: OutcomeMiss, DurationNs: 9_000_000})
	srv := httptest.NewServer(AdminHandler(tel, nil))
	defer srv.Close()

	decode := func(body string) (out struct {
		Recorded uint64 `json:"recorded"`
		Capacity int    `json:"capacity"`
		Spans    []Span `json:"spans"`
	}) {
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("decode %q: %v", body, err)
		}
		return out
	}

	if _, body := getResp(t, srv, "/trace/spans"); len(decode(body).Spans) != 2 {
		t.Fatalf("unfiltered: %s", body)
	}
	if _, body := getResp(t, srv, "/trace/spans?fn=f"); len(decode(body).Spans) != 1 {
		t.Fatalf("fn filter: %s", body)
	}
	if _, body := getResp(t, srv, "/trace/spans?outcome=miss"); len(decode(body).Spans) != 1 {
		t.Fatalf("outcome filter: %s", body)
	}
	if _, body := getResp(t, srv, "/trace/spans?min=1ms"); len(decode(body).Spans) != 1 {
		t.Fatalf("min filter: %s", body)
	}
	if _, body := getResp(t, srv, "/trace/spans?trace="+hitID.String()); len(decode(body).Spans) != 1 {
		t.Fatalf("trace filter: %s", body)
	}
	if _, body := getResp(t, srv, "/trace/spans?n=1"); len(decode(body).Spans) != 1 {
		t.Fatalf("n cap: %s", body)
	}
	if out := decode(func() string { _, b := getResp(t, srv, "/trace/spans"); return b }()); out.Recorded != 2 || out.Capacity == 0 {
		t.Fatalf("counters: %+v", out)
	}
	if resp, _ := getResp(t, srv, "/trace/spans?min=bogus"); resp.StatusCode != 400 {
		t.Fatalf("bad min accepted: %d", resp.StatusCode)
	}
	if resp, _ := getResp(t, srv, "/trace/spans?trace=zzz"); resp.StatusCode != 400 {
		t.Fatalf("bad trace accepted: %d", resp.StatusCode)
	}
}

func TestDebugExplainEndpoint(t *testing.T) {
	tel := New()
	srvNoExplain := httptest.NewServer(AdminHandler(tel, nil))
	defer srvNoExplain.Close()
	if resp, _ := getResp(t, srvNoExplain, "/debug/explain?fn=f"); resp.StatusCode != 404 {
		t.Fatalf("explain without callback: %d, want 404", resp.StatusCode)
	}

	srv := httptest.NewServer(AdminHandlerConfig(tel, AdminConfig{
		Explain: func(fn string, n int) (any, error) {
			if fn == "missing" {
				return nil, fmt.Errorf("unknown function")
			}
			return map[string]any{"function": fn, "n": n}, nil
		},
	}))
	defer srv.Close()
	if resp, _ := getResp(t, srv, "/debug/explain"); resp.StatusCode != 400 {
		t.Fatalf("missing fn accepted: %d", resp.StatusCode)
	}
	if resp, _ := getResp(t, srv, "/debug/explain?fn=missing"); resp.StatusCode != 404 {
		t.Fatalf("unknown fn: %d, want 404", resp.StatusCode)
	}
	resp, body := getResp(t, srv, "/debug/explain?fn=f&n=5")
	if resp.StatusCode != 200 || !strings.Contains(body, `"n": 5`) {
		t.Fatalf("explain: %d %s", resp.StatusCode, body)
	}
}

// /trace must honour ?n= and keep the most recent events.
func TestTraceEndpointCap(t *testing.T) {
	tel := New()
	for i := 0; i < 10; i++ {
		tel.Trace.Record(Event{Kind: EventPut, Value: float64(i)})
	}
	srv := httptest.NewServer(AdminHandler(tel, nil))
	defer srv.Close()
	_, body := getResp(t, srv, "/trace?n=2")
	var out struct {
		Recorded uint64  `json:"recorded"`
		Events   []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Recorded != 10 || len(out.Events) != 2 || out.Events[1].Value != 9 {
		t.Fatalf("capped trace wrong: %+v", out)
	}
}

func TestWhatIfEndpoint(t *testing.T) {
	tel := New()
	srv := httptest.NewServer(AdminHandlerConfig(tel, AdminConfig{
		WhatIf: func() any { return map[string]float64{"maxDivergence": 0.02} },
	}))
	defer srv.Close()
	resp, body := getResp(t, srv, "/whatif")
	if resp.StatusCode != 200 {
		t.Fatalf("/whatif status %d", resp.StatusCode)
	}
	var payload map[string]float64
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/whatif body not JSON: %v", err)
	}
	if payload["maxDivergence"] != 0.02 {
		t.Fatalf("/whatif payload: %v", payload)
	}

	// Without the callback the profiler is detached: 404, like
	// /debug/explain without its callback.
	bare := httptest.NewServer(AdminHandlerConfig(New(), AdminConfig{}))
	defer bare.Close()
	resp, _ = getResp(t, bare, "/whatif")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("detached /whatif status %d, want 404", resp.StatusCode)
	}
}
