package telemetry

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegisterRuntimeSeries(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg, time.Now().Add(-3*time.Second))
	runtime.GC() // guarantee at least one pause for the histogram

	byName := map[string]SeriesValue{}
	for _, sv := range reg.Gather() {
		byName[sv.Name] = sv
	}
	for _, name := range []string{
		"potluck_goroutines", "potluck_heap_bytes", "potluck_heap_sys_bytes",
		"potluck_gc_runs_total", "potluck_gc_pause_seconds",
		"potluck_uptime_seconds", "potluck_build_info",
	} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing runtime series %s", name)
		}
	}
	if v := byName["potluck_goroutines"].Value; v < 1 {
		t.Fatalf("goroutines gauge: %v", v)
	}
	if v := byName["potluck_heap_bytes"].Value; v <= 0 {
		t.Fatalf("heap gauge: %v", v)
	}
	if v := byName["potluck_uptime_seconds"].Value; v < 3 {
		t.Fatalf("uptime gauge: %v, want ≥ 3", v)
	}
	bi := byName["potluck_build_info"]
	if bi.Value != 1 {
		t.Fatalf("build_info value: %v, want 1", bi.Value)
	}
	if !strings.HasPrefix(bi.Labels["goversion"], "go") {
		t.Fatalf("build_info goversion label: %q", bi.Labels["goversion"])
	}
	if v := byName["potluck_gc_runs_total"].Value; v < 1 {
		t.Fatalf("gc_runs counter: %v, want ≥ 1 after runtime.GC", v)
	}
	if lat := byName["potluck_gc_pause_seconds"].Latency; lat == nil || lat.Count < 1 {
		t.Fatalf("gc pause histogram empty after runtime.GC: %+v", lat)
	}
}

// TestRuntimeSamplerCaching checks that a burst of gauge reads shares
// one ReadMemStats: the cached snapshot must not go backwards in NumGC
// and a second immediate refresh must return the same snapshot.
func TestRuntimeSamplerCaching(t *testing.T) {
	s := &runtimeSampler{pauses: &Histogram{}}
	first := s.refresh()
	numGC := first.NumGC
	runtime.GC()
	// Within the 1 s window the cached snapshot is served: NumGC must
	// not have advanced yet.
	if got := s.refresh().NumGC; got != numGC {
		t.Fatalf("refresh within TTL re-read memstats: NumGC %d → %d", numGC, got)
	}
	s.refreshed = time.Time{} // expire the cache
	if got := s.refresh().NumGC; got < numGC+1 {
		t.Fatalf("expired refresh did not observe the forced GC: NumGC %d → %d", numGC, got)
	}
}

// TestRuntimeSamplerConcurrent hammers refresh from many goroutines
// (as concurrent scrapes would) under -race.
func TestRuntimeSamplerConcurrent(t *testing.T) {
	s := &runtimeSampler{pauses: &Histogram{}}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if ms := s.refresh(); ms.HeapAlloc == 0 {
					t.Error("refresh returned zero snapshot")
					return
				}
			}
		}()
	}
	wg.Wait()
}
