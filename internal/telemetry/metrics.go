package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the exposition families.
type MetricType string

// The supported metric families.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefaultMaxSeries bounds the number of label combinations one family
// will materialize. Potluck's label space is (function, keyType), which
// is bounded by what applications register — but a buggy or hostile
// client could register unboundedly many functions, and a metric series
// is never freed. Past the bound, new label combinations collapse into
// a single overflow series (every label value "_overflow") so the
// registry's footprint stays fixed while totals remain correct.
const DefaultMaxSeries = 1024

// overflowLabel is the label value carried by the overflow series.
const overflowLabel = "_overflow"

// Counter is a monotonically increasing series. If a read function is
// attached (SetFunc), the counter reports that instead — used to expose
// counters that already exist as atomics elsewhere (the cache core's
// per-series counters) without double bookkeeping on the hot path.
type Counter struct {
	v  atomic.Int64
	fn atomic.Pointer[func() int64]
}

// Add increments the counter by n (n < 0 is ignored; counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// SetFunc attaches a read function; subsequent Values report fn().
func (c *Counter) SetFunc(fn func() int64) { c.fn.Store(&fn) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if fn := c.fn.Load(); fn != nil {
		return (*fn)()
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. Like Counter, a read
// function may be attached for zero-cost mirroring of existing state.
type Gauge struct {
	bits atomic.Uint64 // Float64bits
	fn   atomic.Pointer[func() float64]
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetFunc attaches a read function; subsequent Values report fn().
func (g *Gauge) SetFunc(fn func() float64) { g.fn.Store(&fn) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if fn := g.fn.Load(); fn != nil {
		return (*fn)()
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one materialized (family, label values) pair.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name       string
	help       string
	typ        MetricType
	labelNames []string
	maxSeries  int

	mu     sync.RWMutex
	series map[string]*series // key: canonical label-value tuple
	order  []*series          // insertion order, for stable exposition
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x1f")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	if f.maxSeries > 0 && len(f.order) >= f.maxSeries {
		// Cardinality bound hit: collapse into the shared overflow
		// series instead of growing without limit.
		overflow := make([]string, len(f.labelNames))
		for i := range overflow {
			overflow[i] = overflowLabel
		}
		okey := strings.Join(overflow, "\x1f")
		if s = f.series[okey]; s != nil {
			return s
		}
		key, labelValues = okey, overflow
	}
	s = &series{labelValues: append([]string(nil), labelValues...)}
	switch f.typ {
	case TypeCounter:
		s.counter = &Counter{}
	case TypeGauge:
		s.gauge = &Gauge{}
	case TypeHistogram:
		s.hist = &Histogram{}
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// snapshotSeries returns the family's series in insertion order.
func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]*series(nil), f.order...)
}

// CounterVec is a handle to a counter family; With resolves one series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Resolve once and keep the pointer on hot paths.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).counter }

// GaugeVec is a handle to a gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).gauge }

// HistogramVec is a handle to a histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).hist }

// Registry holds metric families and renders them for exposition.
// All methods are safe for concurrent use. Registering the same name
// twice returns the existing family (the label schema and type must
// match; a mismatch panics, as it is a programming error).
type Registry struct {
	mu        sync.RWMutex
	families  map[string]*family
	order     []*family
	maxSeries int
}

// NewRegistry returns an empty registry with the default per-family
// cardinality bound.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), maxSeries: DefaultMaxSeries}
}

// SetMaxSeries overrides the per-family series bound for families
// registered afterwards (<= 0 means unlimited).
func (r *Registry) SetMaxSeries(n int) {
	r.mu.Lock()
	r.maxSeries = n
	r.mu.Unlock()
}

func (r *Registry) register(name, help string, typ MetricType, labelNames []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("telemetry: conflicting registration of %s", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		maxSeries:  r.maxSeries,
		series:     make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// CounterVec registers (or fetches) a counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labelNames)}
}

// Counter registers (or fetches) a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, TypeCounter, nil).get(nil).counter
}

// GaugeVec registers (or fetches) a gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labelNames)}
}

// Gauge registers (or fetches) a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, TypeGauge, nil).get(nil).gauge
}

// HistogramVec registers (or fetches) a histogram family.
func (r *Registry) HistogramVec(name, help string, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labelNames)}
}

// Histogram registers (or fetches) a label-less histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, TypeHistogram, nil).get(nil).hist
}

// SeriesValue is one rendered sample, used by JSON snapshots and tests.
type SeriesValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	// Latency is set for histogram series instead of Value.
	Latency *LatencySummary `json:"latency,omitempty"`
}

// Gather returns every series' current value, sorted by family
// registration order then series creation order.
func (r *Registry) Gather() []SeriesValue {
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	var out []SeriesValue
	for _, f := range fams {
		for _, s := range f.snapshotSeries() {
			sv := SeriesValue{Name: f.name}
			if len(f.labelNames) > 0 {
				sv.Labels = make(map[string]string, len(f.labelNames))
				for i, ln := range f.labelNames {
					sv.Labels[ln] = s.labelValues[i]
				}
			}
			switch f.typ {
			case TypeCounter:
				sv.Value = float64(s.counter.Value())
			case TypeGauge:
				sv.Value = s.gauge.Value()
			case TypeHistogram:
				sum := s.hist.Snapshot().Summary()
				sv.Latency = &sum
			}
			out = append(out, sv)
		}
	}
	return out
}

// sortedLabelPairs renders label pairs in label-name order for the
// Prometheus exposition (stable output regardless of schema order).
func sortedLabelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	type pair struct{ n, v string }
	pairs := make([]pair, len(names))
	for i := range names {
		pairs[i] = pair{names[i], values[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].n < pairs[j].n })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// Prometheus text exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
