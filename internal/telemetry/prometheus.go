package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): one HELP and TYPE line per
// family, then one sample line per series — histograms expand into
// cumulative _bucket series plus _sum and _count. Series appear in
// registration order, so successive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			labels := sortedLabelPairs(f.labelNames, s.labelValues)
			var err error
			switch f.typ {
			case TypeCounter:
				err = writeSample(w, f.name, labels, "", float64(s.counter.Value()))
			case TypeGauge:
				err = writeSample(w, f.name, labels, "", s.gauge.Value())
			case TypeHistogram:
				err = writeHistogram(w, f.name, labels, s.hist.Snapshot())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one exposition line. extra is an extra label pair
// (used for histogram le labels), already rendered.
func writeSample(w io.Writer, name, labels, extra string, v float64) error {
	var b strings.Builder
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram expands one histogram series into cumulative buckets
// (le in seconds, Prometheus convention), _sum (seconds), and _count.
func writeHistogram(w io.Writer, name, labels string, s HistogramSnapshot) error {
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if n == 0 && i < histBuckets-1 {
			// Empty leading/inner buckets are elided (cumulative counts
			// stay correct); the +Inf bucket below always appears.
			continue
		}
		if i == histBuckets-1 {
			break
		}
		le := strconv.FormatFloat(float64(BucketUpperBound(i))/1e9, 'g', -1, 64)
		if err := writeSample(w, name+"_bucket", labels, `le="`+le+`"`, float64(cum)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", labels, `le="+Inf"`, float64(s.Count)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, "", s.Sum.Seconds()); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, "", float64(s.Count))
}

// formatValue renders a sample value: integral values without an
// exponent (counter-friendly), others in compact float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
