package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): one HELP and TYPE line per
// family, then one sample line per series — histograms expand into
// cumulative _bucket series plus _sum and _count. Series appear in
// registration order, so successive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			labels := sortedLabelPairs(f.labelNames, s.labelValues)
			var err error
			switch f.typ {
			case TypeCounter:
				err = writeSample(w, f.name, labels, "", float64(s.counter.Value()))
			case TypeGauge:
				err = writeSample(w, f.name, labels, "", s.gauge.Value())
			case TypeHistogram:
				err = writeHistogram(w, f.name, labels, s.hist.Snapshot())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one exposition line. extra is an extra label pair
// (used for histogram le labels), already rendered.
func writeSample(w io.Writer, name, labels, extra string, v float64) error {
	var b strings.Builder
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram expands one histogram series into cumulative buckets
// (le in seconds, Prometheus convention), _sum (seconds), and _count.
func writeHistogram(w io.Writer, name, labels string, s HistogramSnapshot) error {
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if n == 0 && i < histBuckets-1 {
			// Empty leading/inner buckets are elided (cumulative counts
			// stay correct); the +Inf bucket below always appears.
			continue
		}
		if i == histBuckets-1 {
			break
		}
		le := strconv.FormatFloat(float64(BucketUpperBound(i))/1e9, 'g', -1, 64)
		if err := writeSample(w, name+"_bucket", labels, `le="`+le+`"`, float64(cum)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", labels, `le="+Inf"`, float64(s.Count)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, "", s.Sum.Seconds()); err != nil {
		return err
	}
	if err := writeSample(w, name+"_count", labels, "", float64(s.Count)); err != nil {
		return err
	}
	return writeExemplars(w, name, labels, s)
}

// writeExemplars emits per-bucket exemplar trace IDs as comment lines.
// Comments are legal anywhere in the 0.0.4 text format, so strict
// parsers skip them while humans (and the CI smoke + tests) can resolve
// a hot bucket to a concrete trace via /trace/spans?trace=<id>.
func writeExemplars(w io.Writer, name, labels string, s HistogramSnapshot) error {
	for i, ex := range s.Exemplars {
		if ex == 0 {
			continue
		}
		le := "+Inf"
		if i < histBuckets-1 {
			le = strconv.FormatFloat(float64(BucketUpperBound(i))/1e9, 'g', -1, 64)
		}
		var b strings.Builder
		b.WriteString("# exemplar ")
		b.WriteString(name)
		b.WriteString("_bucket{")
		b.WriteString(labels)
		if labels != "" {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} trace_id=`)
		b.WriteString(ex.String())
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp escapes a HELP line per the 0.0.4 text format: backslash
// and newline only (double quotes are legal in HELP text, unlike in
// label values). An unescaped newline here would otherwise truncate the
// HELP line and corrupt every family after it.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value: integral values without an
// exponent (counter-friendly), others in compact float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
