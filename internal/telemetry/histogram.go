// Package telemetry provides the observability substrate for the
// Potluck service: lock-free latency histograms cheap enough for the
// hot lookup path, a registry of named counter/gauge/histogram series
// with per-(function, keyType) labels, a bounded ring-buffer event
// tracer, and the HTTP admin surface that exposes all of it
// (Prometheus text format, JSON snapshots, pprof).
//
// The package is stdlib-only and imports nothing from the rest of the
// repository, so every layer (core, index, service, cmd) can depend on
// it without cycles.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets. Bucket i covers durations
// d with bits.Len64(d) == i, i.e. [2^(i-1), 2^i) nanoseconds (bucket 0
// holds zero-duration observations). 40 buckets reach 2^39 ns ≈ 9.2
// minutes; anything slower lands in the last bucket. A histogram is
// therefore a fixed 40×8-byte array of counters — no allocation per
// observation, no resizing, no locking.
const histBuckets = 40

// Histogram is a lock-free latency histogram with logarithmic buckets.
// Observe is two atomic adds (bucket, sum) plus an atomic load (and a
// CAS only when a new maximum is set) — suitable for paths running
// millions of times per second. The total observation count is derived
// from the buckets at snapshot time rather than maintained as its own
// atomic, which both removes a hot-path add and makes the invariant
// Count == Σ Buckets hold exactly within every snapshot. The zero
// value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	// exemplars[i] holds the trace ID of a recent observation that
	// landed in bucket i (0 = none yet), linking the aggregate back to a
	// concrete retained span. Plain atomic stores: last writer wins,
	// which is exactly the "a recent observation" contract.
	exemplars [histBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its log2 bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketUpperBound returns the exclusive upper bound of bucket i in
// nanoseconds (the last bucket is unbounded and reports MaxInt64).
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return 1 << uint(i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// SetExemplar stamps trace as the exemplar of the bucket d falls in.
// It does NOT count an observation — callers pair it with a separate
// Observe (possibly at a different sampling rate), so attaching
// exemplars never perturbs the bucket counts or derived Count.
func (h *Histogram) SetExemplar(d time.Duration, trace TraceID) {
	if trace == 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	h.exemplars[bucketIndex(d)].Store(uint64(trace))
}

// ObserveTraced records one duration and stamps its trace ID as the
// bucket's exemplar.
func (h *Histogram) ObserveTraced(d time.Duration, trace TraceID) {
	h.Observe(d)
	h.SetExemplar(d, trace)
}

// Count returns the number of recorded observations (a bucket sweep;
// intended for snapshots and tests, not hot paths).
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Snapshot captures the histogram's current state. The capture is not a
// single atomic cut — concurrent Observes may land between bucket
// reads — so Count is derived from the bucket sum, keeping the
// invariant Count == Σ Buckets exact within any snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var total uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		total += n
		s.Exemplars[i] = TraceID(h.exemplars[i].Load())
	}
	s.Count = total
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, safe to
// merge, serialize, and query for quantiles.
type HistogramSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	// Exemplars[i] is the trace ID of a recent observation in bucket i
	// (0 = none).
	Exemplars [histBuckets]TraceID
}

// Merge adds other's observations into s (for aggregating per-series
// histograms into a global view). Exemplars are per-bucket witnesses,
// not counts: a bucket keeps its own exemplar and adopts other's only
// where it has none, so trace IDs survive the merge.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
		if s.Exemplars[i] == 0 {
			s.Exemplars[i] = other.Exemplars[i]
		}
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// of the recorded durations: the upper edge of the bucket containing
// the q-th observation, which bounds the true quantile from above by
// at most 2×. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			ub := BucketUpperBound(i)
			// The open-ended last bucket would report MaxInt64; the
			// recorded maximum is the honest upper bound there.
			if i == histBuckets-1 || time.Duration(ub) > s.Max {
				return s.Max
			}
			return time.Duration(ub)
		}
	}
	return s.Max
}

// Mean returns the average recorded duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// LatencySummary condenses a snapshot to the quantiles operators read.
type LatencySummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"meanNs"`
	P50   time.Duration `json:"p50Ns"`
	P90   time.Duration `json:"p90Ns"`
	P99   time.Duration `json:"p99Ns"`
	Max   time.Duration `json:"maxNs"`
}

// Summary computes the standard quantile summary of the snapshot.
func (s HistogramSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}
