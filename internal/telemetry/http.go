package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminHandler builds the daemon's observability endpoint:
//
//	/metrics      Prometheus text exposition of the registry
//	/stats        JSON snapshot from the stats callback (the daemon
//	              supplies cache + server state; see service.AdminStats)
//	/trace        JSON dump of the event ring, oldest first
//	/debug/pprof  the standard Go profiler surface
//
// stats may be nil, in which case /stats serves the registry's raw
// series values. The handler only reads atomics and snapshots; it never
// takes a data-path lock, so scraping a loaded daemon is safe.
func AdminHandler(t *Telemetry, stats func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		var v any
		if stats != nil {
			v = stats()
		} else {
			v = t.Registry.Gather()
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Recorded uint64  `json:"recorded"`
			Capacity int     `json:"capacity"`
			Events   []Event `json:"events"`
		}{t.Trace.Len(), t.Trace.Capacity(), t.Trace.Snapshot()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("potluckd admin endpoint\n\n/metrics\n/stats\n/trace\n/debug/pprof/\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
