package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Admin response bounds: JSON bodies are rendered into pooled buffers
// (so a scrape loop does not churn allocations) and hard-capped, since
// /trace and /trace/spans payloads scale with ring capacity and an
// unbounded dump could stall the daemon's admin goroutine on a slow
// reader.
const (
	// maxAdminBody caps any single admin JSON response.
	maxAdminBody = 8 << 20
	// defaultTraceItems bounds /trace and /trace/spans item counts when
	// the request does not pass ?n=.
	defaultTraceItems = 1024
)

var adminBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// AdminConfig carries the daemon callbacks the admin surface exposes.
type AdminConfig struct {
	// Stats supplies the /stats payload (nil → raw registry gather).
	Stats func() any
	// Explain supplies the /debug/explain payload for a function name
	// and a decision count (nil → endpoint returns 404).
	Explain func(fn string, n int) (any, error)
	// WhatIf supplies the /whatif payload — the counterfactual
	// profiler's report (nil → endpoint returns 404, the profiler is
	// detached).
	WhatIf func() any
}

// AdminHandler builds the daemon's observability endpoint with just a
// stats callback; see AdminHandlerConfig for the full surface.
func AdminHandler(t *Telemetry, stats func() any) http.Handler {
	return AdminHandlerConfig(t, AdminConfig{Stats: stats})
}

// AdminHandlerConfig builds the daemon's observability endpoint:
//
//	/metrics        Prometheus text exposition of the registry
//	/stats          JSON snapshot from the stats callback (the daemon
//	                supplies cache + server state; see service.AdminStats)
//	/trace          JSON dump of the event ring, oldest first (?n= caps items)
//	/trace/spans    JSON dump of retained request spans; filters:
//	                ?fn= ?layer= ?outcome= ?min= (duration) ?trace= (hex) ?n=
//	/whatif         JSON report of the counterfactual profiler (miss-ratio
//	                curve, threshold sweeps, predicted-vs-measured); 404
//	                when the daemon runs without -whatif
//	/debug/explain  last-N decision report for one function: ?fn= (required) ?n=
//	/debug/pprof    the standard Go profiler surface
//
// Every endpoint sets an explicit Content-Type and Cache-Control:
// no-store (admin payloads are live state; a caching proxy must never
// serve them stale). JSON bodies are built in pooled buffers and capped
// at maxAdminBody. The handler only reads atomics and snapshots; it
// never takes a data-path lock, so scraping a loaded daemon is safe.
func AdminHandlerConfig(t *Telemetry, cfg AdminConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		var v any
		if cfg.Stats != nil {
			v = cfg.Stats()
		} else {
			v = t.Registry.Gather()
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		events := t.Trace.Snapshot()
		n := queryInt(r, "n", defaultTraceItems)
		if len(events) > n {
			events = events[len(events)-n:]
		}
		writeJSON(w, struct {
			Recorded uint64  `json:"recorded"`
			Capacity int     `json:"capacity"`
			Events   []Event `json:"events"`
		}{t.Trace.Len(), t.Trace.Capacity(), events})
	})
	mux.HandleFunc("/trace/spans", func(w http.ResponseWriter, r *http.Request) {
		f := SpanFilter{
			Function: r.URL.Query().Get("fn"),
			Layer:    r.URL.Query().Get("layer"),
			Outcome:  r.URL.Query().Get("outcome"),
			Limit:    queryInt(r, "n", defaultTraceItems),
		}
		if v := r.URL.Query().Get("min"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min duration: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.MinDuration = d
		}
		if v := r.URL.Query().Get("trace"); v != "" {
			id, err := ParseTraceID(v)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			f.Trace = id
		}
		spans := t.Spans.Snapshot(f)
		writeJSON(w, struct {
			Recorded uint64 `json:"recorded"`
			Capacity int    `json:"capacity"`
			Spans    []Span `json:"spans"`
		}{t.Spans.Len(), t.Spans.Capacity(), spans})
	})
	mux.HandleFunc("/debug/explain", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Explain == nil {
			http.NotFound(w, r)
			return
		}
		fn := r.URL.Query().Get("fn")
		if fn == "" {
			http.Error(w, "missing required parameter fn", http.StatusBadRequest)
			return
		}
		n := queryInt(r, "n", 20)
		v, err := cfg.Explain(fn, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/whatif", func(w http.ResponseWriter, r *http.Request) {
		if cfg.WhatIf == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, cfg.WhatIf())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("potluckd admin endpoint\n\n/metrics\n/stats\n/trace\n/trace/spans\n/whatif\n/debug/explain\n/debug/pprof/\n"))
	})
	return noStore(mux)
}

// noStore stamps Cache-Control on every admin response: all payloads
// are live state.
func noStore(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		next.ServeHTTP(w, r)
	})
}

// queryInt parses a positive integer query parameter with a default;
// values are clamped to [1, defaultTraceItems*8] so a hostile ?n=
// cannot force unbounded response work.
func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return def
	}
	if max := defaultTraceItems * 8; n > max {
		return max
	}
	return n
}

// writeJSON renders v into a pooled buffer, enforcing the body cap, and
// writes it with an explicit length so clients see a clean truncation
// error instead of a silently chopped document.
func writeJSON(w http.ResponseWriter, v any) {
	buf := adminBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxAdminBody {
			buf.Reset()
			adminBufPool.Put(buf)
		}
	}()
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if buf.Len() > maxAdminBody {
		http.Error(w, "response exceeds admin body cap", http.StatusInsufficientStorage)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes())
}
