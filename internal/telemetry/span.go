package telemetry

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: structured per-request records for the lookup pipeline.
//
// Where the event Tracer answers "what happened recently" with flat
// one-line events, a Span answers "why did THIS lookup do what it did":
// it carries the request's 64-bit trace ID, per-stage wall times, and
// the decision inputs of the approximate-matching pipeline (nearest
// distance, active threshold, tuner state, dropout roll, index probe
// count). Spans are propagated across the IPC boundary by an optional
// trailing trace-ID field in the wire protocol, so client, server, and
// hub record into their own recorders under one shared ID.
//
// Retention is tail-based: a plain ring of recent spans would lose
// exactly the spans worth keeping (the slow ones, the failures) to
// overwrite by the fast majority. The recorder therefore keeps three
// buffers — a reservoir of recent spans, a dedicated ring that only
// error and dropout spans enter, and a slowest-N set guarded by an
// atomic duration floor — so anomalies survive arbitrarily long hit
// storms.

// TraceID identifies one logical request across layers and processes.
// Zero means "untraced".
type TraceID uint64

// String renders the ID as fixed-width hex, the form used in exemplar
// comments and query parameters.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// MarshalJSON renders the ID as a hex string: 64-bit values are not
// safely representable as JSON numbers (IEEE doubles above 2^53).
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// UnmarshalJSON accepts the hex-string form (and bare numbers, for
// hand-written inputs).
func (t *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		id, err := ParseTraceID(s)
		if err != nil {
			return err
		}
		*t = id
		return nil
	}
	var n uint64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*t = TraceID(n)
	return nil
}

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	n, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: bad trace id %q: %w", s, err)
	}
	return TraceID(n), nil
}

// traceIDState seeds NewTraceID: a process-random base XORed with an
// atomic counter, so IDs are unique within a process, never zero, and
// two processes sharing a trace do not collide on fresh IDs.
var (
	traceIDBase    = rand.Uint64() | 1
	traceIDCounter atomic.Uint64
)

// NewTraceID mints a process-unique non-zero trace ID. One atomic add:
// cheap enough to call on sampled hot-path lookups.
func NewTraceID() TraceID {
	for {
		id := TraceID(traceIDBase ^ (traceIDCounter.Add(1) * 0x9e3779b97f4a7c15))
		if id != 0 {
			return id
		}
	}
}

// Span stage names used by the Potluck stack. The field is an open
// string so layers can add their own.
const (
	StageKeyGen  = "keygen"  // feature extraction (key generation)
	StageProbe   = "probe"   // index nearest-neighbour query
	StageDecide  = "decide"  // threshold decision + entry resolution
	StageRefine  = "refine"  // post-lookup incremental computation
	StageIPC     = "ipc"     // client round trip to the service
	StageServe   = "serve"   // server-side dispatch (handler-pool wait included)
	StagePeer    = "peer"    // mesh hop to an owner peer (Detail = peer ID)
	StageResolve = "resolve" // put: key resolution / extraction
	StageTune    = "tune"    // put: Algorithm-1 tuner feed
	StageInsert  = "insert"  // put: index insertion + publication
	StageAdmit   = "admit"   // put: expiry scheduling + capacity eviction
)

// Span outcomes.
const (
	OutcomeHit     = "hit"
	OutcomeMiss    = "miss"
	OutcomeDropout = "dropout"
	OutcomePut     = "put"
	OutcomeError   = "error"
)

// SpanStage is one timed step inside a span.
type SpanStage struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"durationNs"`
	// Probes is the index scan count for the probe stage (entries or
	// tree nodes examined answering this query); -1 when unmeasured.
	Probes int `json:"probes,omitempty"`
	// Detail carries stage-specific text (eviction cause, extractor name).
	Detail string `json:"detail,omitempty"`
}

// TunerState is the tuner snapshot a span carries: the Algorithm-1
// window statistics in force when the decision was made. Declared here
// (not in core) so telemetry stays import-free of the rest of the repo.
type TunerState struct {
	Threshold   float64 `json:"threshold"`
	Puts        int     `json:"puts"`
	Active      bool    `json:"active"`
	Tightenings int     `json:"tightenings"`
	Loosenings  int     `json:"loosenings"`
}

// Span is one layer's record of a traced request.
type Span struct {
	// Trace links spans of one logical request across layers and
	// processes.
	Trace TraceID `json:"trace"`
	// Seq is the recorder-local sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// Start is the span start time in UnixNano (producer's clock).
	Start int64 `json:"startUnixNano"`
	// DurationNs is the span's total wall time.
	DurationNs int64 `json:"durationNs"`
	// Layer names the recording layer: "core", "server", "client",
	// "feature".
	Layer    string `json:"layer"`
	Function string `json:"function,omitempty"`
	KeyType  string `json:"keyType,omitempty"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Err carries the error text for OutcomeError spans.
	Err string `json:"err,omitempty"`
	// Distance is the nearest-neighbour distance examined (-1 when the
	// index was empty or the stage never ran).
	Distance float64 `json:"distance"`
	// Threshold is the similarity threshold in force.
	Threshold float64 `json:"threshold"`
	// DropoutRoll is the uniform draw of the random-dropout coin and
	// DropoutRate the probability it was compared against; a roll below
	// the rate skipped the cache (§3.4). Roll is -1 when no coin was
	// drawn (dropout disabled).
	DropoutRoll float64 `json:"dropoutRoll"`
	DropoutRate float64 `json:"dropoutRate"`
	// IndexKind names the index structure probed.
	IndexKind string `json:"indexKind,omitempty"`
	// Probes is the index scan count for the whole span (-1 unmeasured).
	Probes int `json:"probes"`
	// Tuner snapshots the Algorithm-1 state at decision time; nil on
	// spans recorded without detailed sampling.
	Tuner *TunerState `json:"tuner,omitempty"`
	// Stages are the timed pipeline steps, in execution order. Empty on
	// spans recorded without detailed sampling (always-retained misses).
	Stages []SpanStage `json:"stages,omitempty"`
}

// SpanFilter selects spans from a snapshot. Zero fields match
// everything.
type SpanFilter struct {
	// Function matches Span.Function exactly.
	Function string
	// Layer matches Span.Layer exactly.
	Layer string
	// Outcome matches Span.Outcome exactly.
	Outcome string
	// Trace matches Span.Trace exactly.
	Trace TraceID
	// MinDuration drops spans faster than this.
	MinDuration time.Duration
	// Limit caps the result count, keeping the MOST RECENT spans
	// (highest sequence numbers). <= 0 means no cap.
	Limit int
}

func (f SpanFilter) match(sp *Span) bool {
	if f.Function != "" && sp.Function != f.Function {
		return false
	}
	if f.Layer != "" && sp.Layer != f.Layer {
		return false
	}
	if f.Outcome != "" && sp.Outcome != f.Outcome {
		return false
	}
	if f.Trace != 0 && sp.Trace != f.Trace {
		return false
	}
	if f.MinDuration > 0 && sp.DurationNs < int64(f.MinDuration) {
		return false
	}
	return true
}

// spanSlot is one ring cell; same per-slot-mutex discipline as
// traceSlot (writers only meet on a slot after a full ring wrap).
type spanSlot struct {
	mu sync.Mutex
	sp Span
}

// Default SpanRecorder shape: the reservoir holds the recent-request
// window, the anomaly ring holds error/dropout spans that would
// otherwise be overwritten by hit traffic, and slowest-N is the latency
// tail. ~1024 spans ≈ a few hundred KB; always-on territory.
const (
	DefaultSpanCapacity    = 1024
	DefaultAnomalyCapacity = 256
	DefaultSlowestN        = 32
)

// SpanRecorder retains spans with tail-based sampling. Record is
// lock-light (an atomic cursor plus one effectively uncontended slot
// mutex; the slowest-N heap is only locked when a span actually beats
// the current floor, checked with a single atomic load). The nil
// recorder drops spans, so tracing can be compiled in unconditionally.
type SpanRecorder struct {
	recent []spanSlot // reservoir of recent spans (power-of-two ring)
	rmask  uint64
	rcur   atomic.Uint64

	anomalies []spanSlot // error + dropout spans, never displaced by hits
	amask     uint64
	acur      atomic.Uint64

	// slow is a min-heap on DurationNs of the slowest-N spans ever
	// recorded; slowFloor mirrors the heap minimum so the common
	// fast-span case skips the lock entirely.
	slowMu    sync.Mutex
	slow      []Span
	slowN     int
	slowFloor atomic.Int64

	seq atomic.Uint64
}

// NewSpanRecorder builds a recorder; non-positive arguments take the
// defaults. Ring capacities round up to powers of two.
func NewSpanRecorder(capacity, anomalyCapacity, slowestN int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	if anomalyCapacity <= 0 {
		anomalyCapacity = DefaultAnomalyCapacity
	}
	if slowestN <= 0 {
		slowestN = DefaultSlowestN
	}
	rsize := 1
	for rsize < capacity {
		rsize <<= 1
	}
	asize := 1
	for asize < anomalyCapacity {
		asize <<= 1
	}
	r := &SpanRecorder{
		recent:    make([]spanSlot, rsize),
		rmask:     uint64(rsize - 1),
		anomalies: make([]spanSlot, asize),
		amask:     uint64(asize - 1),
		slow:      make([]Span, 0, slowestN),
		slowN:     slowestN,
	}
	// Until the slowest-N set is full every span beats the floor.
	r.slowFloor.Store(-1)
	return r
}

// Record retains sp under the tail-based policy. Safe for concurrent
// use; a nil recorder drops the span. The span's Stages slice is
// retained by reference — callers must not reuse its backing array.
func (r *SpanRecorder) Record(sp Span) {
	if r == nil {
		return
	}
	sp.Seq = r.seq.Add(1)
	slot := &r.recent[(r.rcur.Add(1)-1)&r.rmask]
	slot.mu.Lock()
	slot.sp = sp
	slot.mu.Unlock()
	if sp.Outcome == OutcomeError || sp.Outcome == OutcomeDropout {
		aslot := &r.anomalies[(r.acur.Add(1)-1)&r.amask]
		aslot.mu.Lock()
		aslot.sp = sp
		aslot.mu.Unlock()
	}
	if sp.DurationNs > r.slowFloor.Load() {
		r.recordSlow(sp)
	}
}

// recordSlow admits sp to the slowest-N set if it still beats the floor
// under the lock (the lock-free pre-check may race).
func (r *SpanRecorder) recordSlow(sp Span) {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if len(r.slow) < r.slowN {
		r.slow = append(r.slow, sp)
		r.siftUpLocked(len(r.slow) - 1)
		if len(r.slow) == r.slowN {
			r.slowFloor.Store(r.slow[0].DurationNs)
		}
		return
	}
	if sp.DurationNs <= r.slow[0].DurationNs {
		return
	}
	r.slow[0] = sp
	r.siftDownLocked(0)
	r.slowFloor.Store(r.slow[0].DurationNs)
}

func (r *SpanRecorder) siftUpLocked(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if r.slow[i].DurationNs >= r.slow[parent].DurationNs {
			return
		}
		r.slow[i], r.slow[parent] = r.slow[parent], r.slow[i]
		i = parent
	}
}

func (r *SpanRecorder) siftDownLocked(i int) {
	n := len(r.slow)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if rr := l + 1; rr < n && r.slow[rr].DurationNs < r.slow[l].DurationNs {
			m = rr
		}
		if r.slow[m].DurationNs >= r.slow[i].DurationNs {
			return
		}
		r.slow[i], r.slow[m] = r.slow[m], r.slow[i]
		i = m
	}
}

// Len reports how many spans have ever been recorded.
func (r *SpanRecorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Capacity reports the reservoir ring size (the anomaly ring and
// slowest-N set retain additional spans beyond it).
func (r *SpanRecorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.recent)
}

// collectRing appends the live spans of one ring to out.
func collectRing(slots []spanSlot, out []Span) []Span {
	for i := range slots {
		slot := &slots[i]
		slot.mu.Lock()
		sp := slot.sp
		slot.mu.Unlock()
		if sp.Seq != 0 {
			out = append(out, sp)
		}
	}
	return out
}

// Snapshot returns the retained spans matching f, oldest first,
// deduplicated across the three retention buffers. With Limit set, the
// most recent matches win.
func (r *SpanRecorder) Snapshot(f SpanFilter) []Span {
	if r == nil {
		return nil
	}
	all := make([]Span, 0, len(r.recent)+len(r.anomalies)+r.slowN)
	all = collectRing(r.recent, all)
	all = collectRing(r.anomalies, all)
	r.slowMu.Lock()
	all = append(all, r.slow...)
	r.slowMu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	out := all[:0]
	var lastSeq uint64
	for i := range all {
		sp := &all[i]
		if sp.Seq == lastSeq {
			continue // retained by more than one buffer
		}
		lastSeq = sp.Seq
		if f.match(sp) {
			out = append(out, *sp)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Find returns the retained spans carrying the given trace ID, oldest
// first (the exemplar-resolution path: a trace ID scraped off /metrics
// resolves here).
func (r *SpanRecorder) Find(trace TraceID) []Span {
	return r.Snapshot(SpanFilter{Trace: trace})
}
