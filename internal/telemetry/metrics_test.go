package telemetry

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.SetFunc(func() float64 { return 7 })
	if got := g.Value(); got != 7 {
		t.Fatalf("func gauge = %v, want 7", got)
	}
	c2 := r.Counter("test_total", "a counter") // re-registration returns same series
	if got := c2.Value(); got != 5 {
		t.Fatalf("re-registered counter = %d, want 5", got)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("lookups_total", "lookups", "function", "result")
	v.With("f1", "hit").Add(3)
	v.With("f1", "miss").Add(2)
	v.With("f2", "hit").Inc()
	if got := v.With("f1", "hit").Value(); got != 3 {
		t.Fatalf("f1/hit = %d, want 3", got)
	}
	vals := r.Gather()
	if len(vals) != 3 {
		t.Fatalf("gathered %d series, want 3", len(vals))
	}
	if vals[0].Labels["function"] != "f1" || vals[0].Labels["result"] != "hit" || vals[0].Value != 3 {
		t.Fatalf("unexpected first series: %+v", vals[0])
	}
}

func TestVecWrongArity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestCardinalityBound(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(4)
	v := r.CounterVec("bounded_total", "bounded", "k")
	for i := 0; i < 100; i++ {
		v.With(string(rune('a' + i%26))).Inc()
	}
	vals := r.Gather()
	// 4 real series plus the shared overflow series.
	if len(vals) != 5 {
		t.Fatalf("series count = %d, want 5 (bound 4 + overflow)", len(vals))
	}
	var total, overflow float64
	for _, sv := range vals {
		total += sv.Value
		if sv.Labels["k"] == overflowLabel {
			overflow = sv.Value
		}
	}
	if total != 100 {
		t.Fatalf("total across series = %v, want 100 (no observations lost)", total)
	}
	if overflow == 0 {
		t.Fatal("overflow series absent or empty")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("potluck_lookups_total", "Lookup outcomes.", "function", "keytype", "result")
	v.With("recog", "colorhist", "hit").Add(12)
	g := r.Gauge("potluck_cache_entries", "Live entries.")
	g.Set(3)
	hv := r.HistogramVec("potluck_lookup_seconds", "Lookup latency.", "function")
	hv.With("recog").Observe(3 * time.Microsecond)
	hv.With("recog").Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE potluck_lookups_total counter",
		`potluck_lookups_total{function="recog",keytype="colorhist",result="hit"} 12`,
		"# TYPE potluck_cache_entries gauge",
		"potluck_cache_entries 3",
		"# TYPE potluck_lookup_seconds histogram",
		`potluck_lookup_seconds_bucket{function="recog",le="+Inf"} 2`,
		`potluck_lookup_seconds_count{function="recog"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Every non-comment line must be `name{labels} value` or `name value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	var last float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "potluck_lookup_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts decreased: %q after %v", line, last)
		}
		last = v
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "esc", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "conc", "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With(string(rune('a' + w)))
			for i := 0; i < 1000; i++ {
				c.Inc()
				if i%100 == 0 {
					r.Gather()
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, sv := range r.Gather() {
		total += sv.Value
	}
	if total != 8000 {
		t.Fatalf("total = %v, want 8000", total)
	}
}
