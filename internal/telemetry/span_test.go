package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceIDString(t *testing.T) {
	id := TraceID(0xdeadbeef)
	if got := id.String(); got != "00000000deadbeef" {
		t.Fatalf("String() = %q", got)
	}
	back, err := ParseTraceID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseTraceID round trip: %v %v", back, err)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("bad trace id accepted")
	}
}

func TestTraceIDJSON(t *testing.T) {
	id := TraceID(1<<63 + 12345) // above 2^53: unsafe as a JSON number
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != '"' {
		t.Fatalf("trace id marshalled as a number: %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil || back != id {
		t.Fatalf("JSON round trip: %v %v", back, err)
	}
	// Bare numbers are accepted for hand-written inputs.
	if err := json.Unmarshal([]byte("7"), &back); err != nil || back != 7 {
		t.Fatalf("bare number: %v %v", back, err)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
}

func TestSpanRecorderBasics(t *testing.T) {
	r := NewSpanRecorder(8, 4, 2)
	id := NewTraceID()
	r.Record(Span{Trace: id, Layer: "core", Function: "f", Outcome: OutcomeHit, DurationNs: 100})
	r.Record(Span{Trace: NewTraceID(), Layer: "core", Function: "g", Outcome: OutcomeMiss, DurationNs: 50})
	if r.Len() != 2 || r.Capacity() != 8 {
		t.Fatalf("len=%d capacity=%d", r.Len(), r.Capacity())
	}
	all := r.Snapshot(SpanFilter{})
	if len(all) != 2 || all[0].Seq != 1 || all[1].Seq != 2 {
		t.Fatalf("snapshot wrong: %+v", all)
	}
	if got := r.Find(id); len(got) != 1 || got[0].Function != "f" {
		t.Fatalf("Find: %+v", got)
	}
	if got := r.Snapshot(SpanFilter{Outcome: OutcomeMiss}); len(got) != 1 || got[0].Function != "g" {
		t.Fatalf("outcome filter: %+v", got)
	}
	if got := r.Snapshot(SpanFilter{MinDuration: 80}); len(got) != 1 || got[0].Function != "f" {
		t.Fatalf("min-duration filter: %+v", got)
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	r.Record(Span{Outcome: OutcomeHit}) // must not panic
	if r.Snapshot(SpanFilter{}) != nil || r.Len() != 0 || r.Capacity() != 0 || r.Find(1) != nil {
		t.Fatal("nil recorder should report empty")
	}
	var tel *Telemetry
	tel.RecordSpan(Span{Outcome: OutcomeHit}) // must not panic
}

// Tail-based retention: an anomaly (error/dropout) and the slowest spans
// must survive a hit storm that wraps the recent ring many times over.
func TestSpanRecorderTailRetention(t *testing.T) {
	r := NewSpanRecorder(8, 4, 2)
	errTrace := NewTraceID()
	slowTrace := NewTraceID()
	r.Record(Span{Trace: errTrace, Outcome: OutcomeError, Err: "boom", DurationNs: 10})
	r.Record(Span{Trace: slowTrace, Outcome: OutcomeHit, DurationNs: 1e9})
	for i := 0; i < 1000; i++ {
		r.Record(Span{Trace: NewTraceID(), Outcome: OutcomeHit, DurationNs: 100})
	}
	if got := r.Find(errTrace); len(got) != 1 || got[0].Err != "boom" {
		t.Fatalf("error span lost to the hit storm: %+v", got)
	}
	if got := r.Find(slowTrace); len(got) != 1 || got[0].DurationNs != 1e9 {
		t.Fatalf("slow span lost to the hit storm: %+v", got)
	}
	// Dropouts get the same treatment as errors.
	dropTrace := NewTraceID()
	r.Record(Span{Trace: dropTrace, Outcome: OutcomeDropout, DurationNs: 5})
	for i := 0; i < 1000; i++ {
		r.Record(Span{Trace: NewTraceID(), Outcome: OutcomeHit, DurationNs: 100})
	}
	if got := r.Find(dropTrace); len(got) != 1 {
		t.Fatalf("dropout span lost: %+v", got)
	}
}

// The slowest-N heap keeps exactly the N largest durations ever seen.
func TestSpanRecorderSlowestN(t *testing.T) {
	r := NewSpanRecorder(4, 4, 3)
	for i := 1; i <= 100; i++ {
		r.Record(Span{Trace: TraceID(i), Outcome: OutcomeHit, DurationNs: int64(i)})
	}
	got := r.Snapshot(SpanFilter{MinDuration: 90})
	// Ring holds 97..100; slowest-3 holds 98..100 (dedup overlaps).
	want := map[int64]bool{97: true, 98: true, 99: true, 100: true}
	for _, sp := range got {
		if !want[sp.DurationNs] {
			t.Fatalf("unexpected slow span kept: %+v", sp)
		}
		delete(want, sp.DurationNs)
	}
	if len(want) != 0 {
		t.Fatalf("slow spans missing: %v (got %+v)", want, got)
	}
}

func TestSpanFilterLimitKeepsMostRecent(t *testing.T) {
	r := NewSpanRecorder(64, 4, 2)
	for i := 1; i <= 20; i++ {
		r.Record(Span{Trace: TraceID(i), Outcome: OutcomeHit, DurationNs: int64(i)})
	}
	got := r.Snapshot(SpanFilter{Limit: 3})
	if len(got) != 3 || got[0].Seq != 18 || got[2].Seq != 20 {
		t.Fatalf("limit should keep the newest spans: %+v", got)
	}
}

// Ring wraparound under concurrent writers: no torn spans, and the
// invariants Len() == records issued, Capacity() == ring size hold.
// Run under -race.
func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(64, 16, 8)
	const writers, perWriter = 8, 5000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, sp := range r.Snapshot(SpanFilter{}) {
					// Writers stamp Trace == DurationNs; a torn slot
					// would break the equality.
					if uint64(sp.Trace) != uint64(sp.DurationNs) {
						t.Errorf("torn span: %+v", sp)
						return
					}
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(w*perWriter + i + 1)
				out := OutcomeHit
				if v%97 == 0 {
					out = OutcomeError
				}
				r.Record(Span{Trace: TraceID(v), DurationNs: int64(v), Outcome: out})
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if r.Len() != writers*perWriter {
		t.Fatalf("Len() = %d, want %d", r.Len(), writers*perWriter)
	}
	if r.Capacity() != 64 {
		t.Fatalf("Capacity() = %d, want 64", r.Capacity())
	}
	// The slowest span ever recorded must have been retained.
	if got := r.Find(TraceID(writers * perWriter)); len(got) != 1 {
		t.Fatalf("slowest span not retained: %+v", got)
	}
}

func TestSpanRecorderCapacityRounding(t *testing.T) {
	r := NewSpanRecorder(100, 10, 5)
	if r.Capacity() != 128 {
		t.Fatalf("capacity should round up to a power of two, got %d", r.Capacity())
	}
	r = NewSpanRecorder(0, 0, 0)
	if r.Capacity() != DefaultSpanCapacity {
		t.Fatalf("default capacity = %d, want %d", r.Capacity(), DefaultSpanCapacity)
	}
}
