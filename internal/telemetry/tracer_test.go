package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordSnapshot(t *testing.T) {
	now := time.Unix(100, 0)
	tr := NewTracer(8, func() time.Time { return now })
	tr.Record(Event{Kind: EventHit, Function: "f", KeyType: "k", Value: 0.5, Aux: 1.0})
	tr.Record(Event{Kind: EventMiss, Function: "f", KeyType: "k"})
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("sequence numbers wrong: %+v", evs)
	}
	if evs[0].Kind != EventHit || evs[0].Value != 0.5 {
		t.Fatalf("event payload wrong: %+v", evs[0])
	}
	if evs[0].At != now.UnixNano() {
		t.Fatalf("timestamp not stamped: %+v", evs[0])
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: EventPut, Value: float64(i)})
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot len = %d, want ring capacity 4", len(evs))
	}
	// The ring keeps the most recent events, oldest first.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d, want 10", tr.Len())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: EventHit}) // must not panic
	if tr.Snapshot() != nil || tr.Len() != 0 || tr.Capacity() != 0 {
		t.Fatal("nil tracer should report empty")
	}
	var tel *Telemetry
	tel.RecordEvent(Event{Kind: EventHit}) // must not panic
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, ev := range tr.Snapshot() {
					if ev.Kind != EventEvict {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				tr.Record(Event{Kind: EventEvict, Value: float64(i)})
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if tr.Len() != 40000 {
		t.Fatalf("len = %d, want 40000", tr.Len())
	}
}

func TestAdminHandler(t *testing.T) {
	tel := New()
	tel.Registry.Counter("potluck_test_total", "test").Add(7)
	tel.Trace.Record(Event{Kind: EventEvict, Function: "f", Value: 1.5})
	h := AdminHandler(tel, func() any {
		return map[string]any{"hello": "world"}
	})

	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "potluck_test_total 7") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/stats"); code != 200 || !strings.Contains(body, `"hello"`) {
		t.Errorf("/stats: code=%d body=%q", code, body)
	}
	code, body := get("/trace")
	if code != 200 {
		t.Fatalf("/trace: code=%d", code)
	}
	var trace struct {
		Recorded uint64  `json:"recorded"`
		Events   []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace JSON: %v", err)
	}
	if trace.Recorded != 1 || len(trace.Events) != 1 || trace.Events[0].Kind != EventEvict {
		t.Errorf("/trace payload wrong: %+v", trace)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: code=%d, want 404", code)
	}
}

func TestAdminHandlerNilStats(t *testing.T) {
	tel := New()
	tel.Registry.Gauge("g", "g").Set(1)
	srv := httptest.NewServer(AdminHandler(tel, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vals []SeriesValue
	if err := json.NewDecoder(resp.Body).Decode(&vals); err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].Name != "g" {
		t.Fatalf("fallback stats wrong: %+v", vals)
	}
}
