package telemetry

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestQuantileEmpty: every quantile of an empty histogram is 0, and so
// is the summary.
func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
	sum := s.Summary()
	if sum.Count != 0 || sum.Mean != 0 || sum.P50 != 0 || sum.P99 != 0 || sum.Max != 0 {
		t.Fatalf("empty summary not all-zero: %+v", sum)
	}
}

// TestQuantileSingleBucket: with every observation in one bucket, all
// quantiles collapse to that bucket's bound clamped by the recorded
// max, and out-of-range q values are clamped rather than panicking.
func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(700 * time.Nanosecond) // bucket (512, 1024]
	}
	s := h.Snapshot()
	for _, q := range []float64{-0.5, 0, 0.001, 0.5, 0.999, 1, 2.5} {
		if got := s.Quantile(q); got != 700*time.Nanosecond {
			// The bucket upper bound is 1024 ns but Max (700 ns) is the
			// tighter honest bound.
			t.Fatalf("Quantile(%v) = %v, want 700ns (max-clamped)", q, got)
		}
	}
}

// TestQuantileOverflowOnly: observations past the last bucket's range
// all land in the unbounded overflow bucket; quantiles must report the
// recorded max, not the bucket's MaxInt64 sentinel.
func TestQuantileOverflowOnly(t *testing.T) {
	var h Histogram
	biggest := 30 * time.Minute // far beyond the 2^39 ns ≈ 9.2 min top bucket
	h.Observe(20 * time.Minute)
	h.Observe(biggest)
	s := h.Snapshot()
	if s.Buckets[histBuckets-1] != 2 {
		t.Fatalf("overflow bucket holds %d, want 2", s.Buckets[histBuckets-1])
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		got := s.Quantile(q)
		if got != biggest {
			t.Fatalf("Quantile(%v) = %v, want recorded max %v", q, got, biggest)
		}
		if got == time.Duration(math.MaxInt64) {
			t.Fatalf("Quantile(%v) leaked the MaxInt64 sentinel", q)
		}
	}
}

// TestCardinalityOverflowConcurrent registers far more label vectors
// than the family bound from many goroutines at once: the family must
// stay within maxSeries+1 materialized series (the +1 is the shared
// overflow series), every increment must land somewhere (no lost
// counts), and concurrent first-touches of the same vector must not
// double-materialize it. Run with -race.
func TestCardinalityOverflowConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.SetMaxSeries(8)
	vec := reg.CounterVec("edge_overflow_total", "t", "fn", "kt")

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Worker-skewed label space: plenty of distinct vectors,
				// with overlap across workers on the low indexes.
				fn := fmt.Sprintf("fn-%d", (w*perWorker+i)%64)
				vec.With(fn, "feat").Inc()
			}
		}()
	}
	wg.Wait()

	var total float64
	series := 0
	sawOverflow := false
	for _, sv := range reg.Gather() {
		if sv.Name != "edge_overflow_total" {
			continue
		}
		series++
		total += sv.Value
		if sv.Labels["fn"] == "_overflow" && sv.Labels["kt"] == "_overflow" {
			sawOverflow = true
		}
	}
	if series > 9 {
		t.Fatalf("materialized %d series, bound is 8 + overflow", series)
	}
	if !sawOverflow {
		t.Fatal("no overflow series despite 64 label vectors against a bound of 8")
	}
	if want := float64(workers * perWorker); total != want {
		t.Fatalf("counts lost in overflow collapse: got %v, want %v", total, want)
	}
}
