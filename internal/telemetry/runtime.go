package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.MemStats snapshot and feeds GC
// pauses into a histogram. ReadMemStats stops the world briefly, so a
// scrape hitting several memstats-backed gauges must not pay it per
// gauge — refresh() serves all of them from one read, refreshed at
// most once per second.
type runtimeSampler struct {
	mu        sync.Mutex
	ms        runtime.MemStats
	refreshed time.Time
	lastNumGC uint32
	pauses    *Histogram
}

// refresh returns a copy of the (at most once-per-second refreshed)
// memstats snapshot. A copy, not a pointer: a later refresh rewrites
// s.ms, and a caller still holding a pointer from the previous scrape
// would race with it.
func (s *runtimeSampler) refresh() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.refreshed) < time.Second && s.refreshed != (time.Time{}) {
		return s.ms
	}
	runtime.ReadMemStats(&s.ms)
	s.refreshed = time.Now()
	// Feed the GC pauses observed since the previous refresh into the
	// histogram. PauseNs is a circular buffer of the last 256 pauses
	// keyed by GC cycle number; if more than 256 cycles elapsed between
	// refreshes, the overwritten ones are lost (counted as observed
	// cycles is still exact via NumGC, but their durations are gone —
	// acceptable for a 1 Hz-scraped gauge endpoint).
	from := s.lastNumGC
	if s.ms.NumGC > from+256 {
		from = s.ms.NumGC - 256
	}
	if s.pauses != nil {
		for gc := from + 1; gc <= s.ms.NumGC; gc++ {
			s.pauses.Observe(time.Duration(s.ms.PauseNs[(gc+255)%256]))
		}
	}
	s.lastNumGC = s.ms.NumGC
	return s.ms
}

// RegisterRuntime exposes process-level health series on reg:
//
//	potluck_goroutines            current goroutine count
//	potluck_heap_bytes            bytes of live heap (HeapAlloc)
//	potluck_heap_sys_bytes        bytes obtained from the OS for heap
//	potluck_gc_runs_total         completed GC cycles
//	potluck_gc_pause_seconds      histogram of stop-the-world pauses
//	potluck_uptime_seconds        seconds since start
//	potluck_build_info            constant 1, labeled with the Go
//	                              version and VCS revision
//
// started anchors the uptime gauge (the daemon passes its Telemetry
// hub's Started). Everything is func-backed: idle cost is zero, and a
// scrape costs one cached ReadMemStats per second at most.
func RegisterRuntime(reg *Registry, started time.Time) {
	s := &runtimeSampler{}
	reg.Gauge("potluck_goroutines", "Current number of goroutines.").
		SetFunc(func() float64 { return float64(runtime.NumGoroutine()) })
	reg.Gauge("potluck_heap_bytes", "Bytes of allocated heap objects (HeapAlloc).").
		SetFunc(func() float64 { return float64(s.refresh().HeapAlloc) })
	reg.Gauge("potluck_heap_sys_bytes", "Bytes of heap memory obtained from the OS.").
		SetFunc(func() float64 { return float64(s.refresh().HeapSys) })
	reg.Counter("potluck_gc_runs_total", "Completed garbage collection cycles.").
		SetFunc(func() int64 { return int64(s.refresh().NumGC) })
	reg.Gauge("potluck_uptime_seconds", "Seconds since the process started.").
		SetFunc(func() float64 { return time.Since(started).Seconds() })

	// Registered after the memstats gauges so a single Gather pass —
	// which walks families in registration order — sees the pauses
	// those gauges' refresh just fed in. Assigned under the sampler
	// lock because refresh reads it there.
	pauses := reg.Histogram("potluck_gc_pause_seconds",
		"Stop-the-world garbage collection pause durations.")
	s.mu.Lock()
	s.pauses = pauses
	s.mu.Unlock()

	goversion, revision, modified := buildInfo()
	reg.GaugeVec("potluck_build_info",
		"Build metadata; the value is always 1.",
		"goversion", "revision", "modified").
		With(goversion, revision, modified).Set(1)
}

// buildInfo extracts the Go version and VCS stamp from the binary's
// embedded build information ("unknown" when built without VCS
// metadata, e.g. from a test binary or a tarball).
func buildInfo() (goversion, revision, modified string) {
	goversion, revision, modified = runtime.Version(), "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		case "vcs.modified":
			modified = s.Value
		}
	}
	return
}
