package nn

import (
	"math"
	"math/rand"
)

// Layer transforms a volume.
type Layer interface {
	// Forward computes the layer output.
	Forward(in *Volume) *Volume
	// OutDims reports the output dimensions for the given input
	// dimensions, letting networks validate shapes at build time.
	OutDims(c, h, w int) (int, int, int)
}

// Conv2D is a 2-D convolution with zero padding.
type Conv2D struct {
	InC, OutC   int
	K           int // kernel side
	Stride, Pad int
	Weights     []float64 // [outC][inC][K][K]
	Bias        []float64 // [outC]
}

// NewConv2D builds a convolution with He-style random weights drawn from
// rng (deterministic given the caller's seed).
func NewConv2D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weights: make([]float64, outC*inC*k*k),
		Bias:    make([]float64, outC),
	}
	scale := math.Sqrt(2.0 / float64(inC*k*k))
	for i := range c.Weights {
		c.Weights[i] = rng.NormFloat64() * scale
	}
	return c
}

// OutDims implements Layer.
func (c *Conv2D) OutDims(_, h, w int) (int, int, int) {
	if h+2*c.Pad < c.K || w+2*c.Pad < c.K {
		return c.OutC, 0, 0
	}
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return c.OutC, oh, ow
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *Volume) *Volume {
	oc, oh, ow := c.OutDims(in.C, in.H, in.W)
	out := NewVolume(oc, oh, ow)
	for o := 0; o < c.OutC; o++ {
		wBase := o * c.InC * c.K * c.K
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := c.Bias[o]
				iy0 := oy*c.Stride - c.Pad
				ix0 := ox*c.Stride - c.Pad
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= in.H {
							continue
						}
						rowBase := (ic*in.H + iy) * in.W
						wRow := wBase + (ic*c.K+ky)*c.K
						for kx := 0; kx < c.K; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= in.W {
								continue
							}
							sum += c.Weights[wRow+kx] * in.Data[rowBase+ix]
						}
					}
				}
				out.Data[(o*oh+oy)*ow+ox] = sum
			}
		}
	}
	return out
}

// ReLU applies max(0, x) elementwise.
type ReLU struct{}

// OutDims implements Layer.
func (ReLU) OutDims(c, h, w int) (int, int, int) { return c, h, w }

// Forward implements Layer.
func (ReLU) Forward(in *Volume) *Volume {
	out := NewVolume(in.C, in.H, in.W)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// MaxPool downsamples with a k×k max filter.
type MaxPool struct {
	K, Stride int
}

// OutDims implements Layer.
func (p MaxPool) OutDims(c, h, w int) (int, int, int) {
	if h < p.K || w < p.K {
		return c, 0, 0
	}
	return c, (h-p.K)/p.Stride + 1, (w-p.K)/p.Stride + 1
}

// Forward implements Layer.
func (p MaxPool) Forward(in *Volume) *Volume {
	oc, oh, ow := p.OutDims(in.C, in.H, in.W)
	out := NewVolume(oc, oh, ow)
	for c := 0; c < oc; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						v := in.At(c, oy*p.Stride+ky, ox*p.Stride+kx)
						if v > best {
							best = v
						}
					}
				}
				out.Data[(c*oh+oy)*ow+ox] = best
			}
		}
	}
	return out
}

// Dense is a fully connected layer applied to the flattened input.
type Dense struct {
	In, Out int
	Weights []float64 // [out][in]
	Bias    []float64
}

// NewDense builds a dense layer with Xavier-style random weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Weights: make([]float64, in*out), Bias: make([]float64, out)}
	scale := math.Sqrt(1.0 / float64(in))
	for i := range d.Weights {
		d.Weights[i] = rng.NormFloat64() * scale
	}
	return d
}

// OutDims implements Layer.
func (d *Dense) OutDims(_, _, _ int) (int, int, int) { return d.Out, 1, 1 }

// Forward implements Layer.
func (d *Dense) Forward(in *Volume) *Volume {
	out := NewVolume(d.Out, 1, 1)
	for o := 0; o < d.Out; o++ {
		sum := d.Bias[o]
		base := o * d.In
		n := d.In
		if len(in.Data) < n {
			n = len(in.Data)
		}
		for i := 0; i < n; i++ {
			sum += d.Weights[base+i] * in.Data[i]
		}
		out.Data[o] = sum
	}
	return out
}

// Softmax normalizes scores into a probability distribution.
func Softmax(scores []float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	out := make([]float64, len(scores))
	var sum float64
	for i, s := range scores {
		out[i] = math.Exp(s - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
