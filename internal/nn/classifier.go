package nn

import (
	"errors"
	"math"

	"repro/internal/imaging"
)

// Classifier pairs a feature network with a nearest-centroid head. The
// head is fitted from labelled examples (Train), giving a classifier
// with genuine, imperfect accuracy — the property Figures 6 and 9 rely
// on ("the recognition accuracy without leveraging deduplication is not
// 100% anyway", §5.2).
type Classifier struct {
	net       *Network
	centroids [][]float64
	classes   int
}

// ErrNoTrainingData is returned by Train when no examples are supplied.
var ErrNoTrainingData = errors.New("nn: no training data")

// Train fits a nearest-centroid head over net's features. labels must
// parallel imgs and contain values in [0, classes).
func Train(net *Network, imgs []*imaging.RGB, labels []int, classes int) (*Classifier, error) {
	if len(imgs) == 0 || len(imgs) != len(labels) {
		return nil, ErrNoTrainingData
	}
	cents := make([][]float64, classes)
	counts := make([]int, classes)
	for i := range cents {
		cents[i] = make([]float64, net.OutLen())
	}
	for i, img := range imgs {
		l := labels[i]
		if l < 0 || l >= classes {
			return nil, errors.New("nn: label out of range")
		}
		f := net.Features(img)
		for j, v := range f {
			cents[l][j] += v
		}
		counts[l]++
	}
	for c := range cents {
		if counts[c] > 0 {
			for j := range cents[c] {
				cents[c][j] /= float64(counts[c])
			}
		}
	}
	return &Classifier{net: net, centroids: cents, classes: classes}, nil
}

// Classify returns the predicted class for img and the per-class scores
// (negative distances; higher is better).
func (c *Classifier) Classify(img *imaging.RGB) (int, []float64) {
	f := c.net.Features(img)
	scores := make([]float64, c.classes)
	best, bestScore := 0, math.Inf(-1)
	for cl := 0; cl < c.classes; cl++ {
		var d float64
		for j, v := range f {
			diff := v - c.centroids[cl][j]
			d += diff * diff
		}
		scores[cl] = -math.Sqrt(d)
		if scores[cl] > bestScore {
			best, bestScore = cl, scores[cl]
		}
	}
	return best, scores
}

// Classes returns the number of classes.
func (c *Classifier) Classes() int { return c.classes }

// Accuracy evaluates the classifier on a labelled set.
func (c *Classifier) Accuracy(imgs []*imaging.RGB, labels []int) float64 {
	if len(imgs) == 0 {
		return 0
	}
	correct := 0
	for i, img := range imgs {
		if got, _ := c.Classify(img); got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(imgs))
}
