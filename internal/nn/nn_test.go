package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imaging"
	"repro/internal/synth"
)

func TestVolumeAtSet(t *testing.T) {
	v := NewVolume(2, 3, 4)
	v.Set(1, 2, 3, 0.5)
	if got := v.At(1, 2, 3); got != 0.5 {
		t.Errorf("At = %v", got)
	}
	if got := v.At(-1, 0, 0); got != 0 {
		t.Errorf("out-of-bounds At = %v, want 0 (zero padding)", got)
	}
	v.Set(5, 0, 0, 1) // ignored
	if len(v.Flat()) != 24 {
		t.Errorf("Flat len = %d", len(v.Flat()))
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1×1 conv with weight 1 is the identity.
	c := &Conv2D{InC: 1, OutC: 1, K: 1, Stride: 1, Pad: 0,
		Weights: []float64{1}, Bias: []float64{0}}
	in := NewVolume(1, 2, 2)
	copy(in.Data, []float64{1, 2, 3, 4})
	out := c.Forward(in)
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity conv output %v", out.Data)
		}
	}
}

func TestConvKnownValues(t *testing.T) {
	// 3×3 box filter over a single bright pixel.
	c := &Conv2D{InC: 1, OutC: 1, K: 3, Stride: 1, Pad: 1,
		Weights: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}, Bias: []float64{0}}
	in := NewVolume(1, 3, 3)
	in.Set(0, 1, 1, 1)
	out := c.Forward(in)
	for _, v := range out.Data {
		if v != 1 {
			t.Fatalf("box filter output %v, want all 1", out.Data)
		}
	}
	// Stride-2, no pad.
	c2 := &Conv2D{InC: 1, OutC: 1, K: 2, Stride: 2, Pad: 0,
		Weights: []float64{1, 1, 1, 1}, Bias: []float64{10}}
	in2 := NewVolume(1, 4, 4)
	for i := range in2.Data {
		in2.Data[i] = 1
	}
	out2 := c2.Forward(in2)
	if out2.H != 2 || out2.W != 2 {
		t.Fatalf("stride-2 dims = %dx%d", out2.H, out2.W)
	}
	if out2.Data[0] != 14 {
		t.Errorf("stride-2 value = %v, want 4+10", out2.Data[0])
	}
}

func TestReLU(t *testing.T) {
	in := NewVolume(1, 1, 3)
	copy(in.Data, []float64{-1, 0, 2})
	out := (ReLU{}).Forward(in)
	want := []float64{0, 0, 2}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("ReLU = %v", out.Data)
		}
	}
}

func TestMaxPool(t *testing.T) {
	in := NewVolume(1, 2, 2)
	copy(in.Data, []float64{1, 5, 3, 2})
	out := (MaxPool{K: 2, Stride: 2}).Forward(in)
	if out.H != 1 || out.W != 1 || out.Data[0] != 5 {
		t.Errorf("MaxPool = %+v", out)
	}
}

func TestDense(t *testing.T) {
	d := &Dense{In: 2, Out: 1, Weights: []float64{3, 4}, Bias: []float64{1}}
	in := NewVolume(2, 1, 1)
	copy(in.Data, []float64{1, 2})
	out := d.Forward(in)
	if out.Data[0] != 12 {
		t.Errorf("Dense = %v, want 3+8+1", out.Data[0])
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
	if Softmax(nil) != nil {
		t.Error("softmax of empty input")
	}
	// Large scores do not overflow.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Errorf("softmax overflow: %v", p)
	}
}

func TestNetworkShapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Pooling a 2×2 input twice collapses it.
	_, err := NewNetwork(1, 2, 2, MaxPool{K: 2, Stride: 2}, MaxPool{K: 2, Stride: 2})
	if err == nil {
		t.Error("collapsing network accepted")
	}
	net, err := NewNetwork(3, 32, 32, NewConv2D(3, 8, 3, 1, 1, rng), ReLU{}, MaxPool{K: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if net.OutLen() != 8*16*16 {
		t.Errorf("OutLen = %d", net.OutLen())
	}
}

func TestTinyAlexNetDeterministic(t *testing.T) {
	img := synth.NewCIFARLike(1).Sample(0, 0).Image
	a := NewTinyAlexNet(7).Features(img)
	b := NewTinyAlexNet(7).Features(img)
	if len(a) != 128 {
		t.Fatalf("feature len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different features")
		}
	}
	cth := NewTinyAlexNet(8).Features(img)
	same := true
	for i := range a {
		if a[i] != cth[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical features")
	}
}

func TestImageToVolumeResizes(t *testing.T) {
	img := imaging.NewRGB(10, 10)
	img.Fill(0.2, 0.4, 0.6)
	v := ImageToVolume(img, 4, 4)
	if v.C != 3 || v.H != 4 || v.W != 4 {
		t.Fatalf("dims = %dx%dx%d", v.C, v.H, v.W)
	}
	if math.Abs(v.At(2, 1, 1)-0.6) > 1e-9 {
		t.Errorf("blue channel = %v", v.At(2, 1, 1))
	}
}

func TestTrainValidation(t *testing.T) {
	net := NewTinyAlexNet(1)
	if _, err := Train(net, nil, nil, 10); err == nil {
		t.Error("empty training set accepted")
	}
	img := synth.NewCIFARLike(1).Sample(0, 0).Image
	if _, err := Train(net, []*imaging.RGB{img}, []int{99}, 10); err == nil {
		t.Error("out-of-range label accepted")
	}
}

// TestClassifierLearnsSyntheticClasses is the recognizer's end-to-end
// check: trained on CIFAR-like samples it must beat chance by a wide
// margin on held-out variants, without being perfect.
func TestClassifierLearnsSyntheticClasses(t *testing.T) {
	ds := synth.NewCIFARLike(3)
	var trainImgs []*imaging.RGB
	var trainLabels []int
	for c := 0; c < 10; c++ {
		for v := 0; v < 8; v++ {
			s := ds.Sample(c, v)
			trainImgs = append(trainImgs, s.Image)
			trainLabels = append(trainLabels, s.Label)
		}
	}
	clf, err := Train(NewTinyAlexNet(5), trainImgs, trainLabels, 10)
	if err != nil {
		t.Fatal(err)
	}
	var testImgs []*imaging.RGB
	var testLabels []int
	for c := 0; c < 10; c++ {
		for v := 100; v < 104; v++ {
			s := ds.Sample(c, v)
			testImgs = append(testImgs, s.Image)
			testLabels = append(testLabels, s.Label)
		}
	}
	acc := clf.Accuracy(testImgs, testLabels)
	if acc < 0.5 {
		t.Errorf("held-out accuracy = %.2f, want ≥ 0.5 (chance is 0.1)", acc)
	}
	t.Logf("held-out accuracy: %.2f", acc)
	if clf.Classes() != 10 {
		t.Errorf("Classes = %d", clf.Classes())
	}
	_, scores := clf.Classify(testImgs[0])
	if len(scores) != 10 {
		t.Errorf("scores len = %d", len(scores))
	}
	if (&Classifier{net: NewTinyAlexNet(1), centroids: make([][]float64, 0), classes: 0}).Accuracy(nil, nil) != 0 {
		t.Error("Accuracy on empty set != 0")
	}
}
