// Package nn is a from-scratch convolutional neural network inference
// engine: volumes, convolution, pooling, activations, dense layers, and
// a small AlexNet-style network (paper citation [29]) used by the image
// recognition benchmark application. Inference is deliberately the
// expensive computation whose results Potluck deduplicates; a
// nearest-centroid head "trained" on generator output provides genuine,
// imperfect classification accuracy with known ground truth.
package nn

import "fmt"

// Volume is a C×H×W feature map, channel-major.
type Volume struct {
	C, H, W int
	Data    []float64
}

// NewVolume returns a zero volume of the given dimensions.
func NewVolume(c, h, w int) *Volume {
	if c < 0 || h < 0 || w < 0 {
		panic(fmt.Sprintf("nn: negative volume dims %dx%dx%d", c, h, w))
	}
	return &Volume{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns the sample at (channel, y, x); out-of-bounds reads return 0
// (zero padding).
func (v *Volume) At(c, y, x int) float64 {
	if c < 0 || y < 0 || x < 0 || c >= v.C || y >= v.H || x >= v.W {
		return 0
	}
	return v.Data[(c*v.H+y)*v.W+x]
}

// Set stores a value at (channel, y, x); out-of-bounds writes are
// ignored.
func (v *Volume) Set(c, y, x int, val float64) {
	if c < 0 || y < 0 || x < 0 || c >= v.C || y >= v.H || x >= v.W {
		return
	}
	v.Data[(c*v.H+y)*v.W+x] = val
}

// Flat returns the underlying data as a flat vector (shared storage).
func (v *Volume) Flat() []float64 { return v.Data }
