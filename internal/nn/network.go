package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/imaging"
)

// Network is a feed-forward stack of layers producing a feature vector.
type Network struct {
	layers []Layer
	inC    int
	inH    int
	inW    int
	outLen int
}

// NewNetwork validates that the layer stack accepts c×h×w input and
// returns the assembled network.
func NewNetwork(c, h, w int, layers ...Layer) (*Network, error) {
	cc, ch, cw := c, h, w
	for i, l := range layers {
		cc, ch, cw = l.OutDims(cc, ch, cw)
		if cc <= 0 || ch <= 0 || cw <= 0 {
			return nil, fmt.Errorf("nn: layer %d collapses dims to %dx%dx%d", i, cc, ch, cw)
		}
	}
	return &Network{layers: layers, inC: c, inH: h, inW: w, outLen: cc * ch * cw}, nil
}

// OutLen returns the length of the network's output feature vector.
func (n *Network) OutLen() int { return n.outLen }

// InputDims returns the expected input dimensions.
func (n *Network) InputDims() (c, h, w int) { return n.inC, n.inH, n.inW }

// Forward runs the network on a volume.
func (n *Network) Forward(in *Volume) *Volume {
	out := in
	for _, l := range n.layers {
		out = l.Forward(out)
	}
	return out
}

// Features converts an RGB image to the network input size and returns
// the output feature vector.
func (n *Network) Features(img *imaging.RGB) []float64 {
	in := ImageToVolume(img, n.inH, n.inW)
	return n.Forward(in).Flat()
}

// ImageToVolume resizes img to h×w and converts it to a 3×h×w volume
// with channels in [0, 1].
func ImageToVolume(img *imaging.RGB, h, w int) *Volume {
	if img.W != w || img.H != h {
		img = imaging.ResizeRGB(img, w, h)
	}
	v := NewVolume(3, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b := img.At(x, y)
			v.Set(0, y, x, r)
			v.Set(1, y, x, g)
			v.Set(2, y, x, b)
		}
	}
	return v
}

// NewTinyAlexNet builds the scaled-down AlexNet-style feature extractor
// used by the recognition benchmark: three conv+ReLU+pool stages
// followed by a dense projection, for 3×32×32 input. Weights are
// deterministic for a given seed, standing in for the paper's
// "pre-trained models" (§5.1).
func NewTinyAlexNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	conv1 := NewConv2D(3, 16, 5, 1, 2, rng)
	conv2 := NewConv2D(16, 32, 3, 1, 1, rng)
	conv3 := NewConv2D(32, 48, 3, 1, 1, rng)
	// 32→16→8→4 spatially; 48·4·4 = 768 → 128-D feature.
	dense := NewDense(48*4*4, 128, rng)
	net, err := NewNetwork(3, 32, 32,
		conv1, ReLU{}, MaxPool{K: 2, Stride: 2},
		conv2, ReLU{}, MaxPool{K: 2, Stride: 2},
		conv3, ReLU{}, MaxPool{K: 2, Stride: 2},
		dense,
	)
	if err != nil {
		panic(err) // the architecture above is statically consistent
	}
	return net
}
