package nn

import (
	"testing"

	"repro/internal/imaging"
	"repro/internal/synth"
)

// BenchmarkTinyAlexNetInference measures one forward pass — the
// computation Potluck deduplicates in the recognition benchmarks.
func BenchmarkTinyAlexNetInference(b *testing.B) {
	net := NewTinyAlexNet(1)
	img := synth.NewCIFARLike(1).Sample(0, 0).Image
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Features(img)
	}
}

// BenchmarkClassify measures inference plus the nearest-centroid head.
func BenchmarkClassify(b *testing.B) {
	ds := synth.NewCIFARLike(2)
	var imgs []*imaging.RGB
	var labels []int
	for c := 0; c < 10; c++ {
		for v := 0; v < 2; v++ {
			s := ds.Sample(c, v)
			imgs = append(imgs, s.Image)
			labels = append(labels, s.Label)
		}
	}
	clf, err := Train(NewTinyAlexNet(2), imgs, labels, 10)
	if err != nil {
		b.Fatal(err)
	}
	probe := ds.Sample(3, 100).Image
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Classify(probe)
	}
}

// BenchmarkConvLayer isolates the dominant layer.
func BenchmarkConvLayer(b *testing.B) {
	net := NewTinyAlexNet(3)
	img := synth.NewCIFARLike(3).Sample(0, 0).Image
	in := ImageToVolume(img, 32, 32)
	conv := net.layers[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(in)
	}
}
