// Package workload generates the request workloads of the paper's
// evaluation: named computations with costs spanning 1 ms to 10 s
// (§5.3), request sequences whose popularity follows uniform or
// exponential distributions, and device cost profiles (the Nexus 5
// "mobile" versus the "PC", §5.1). Experiments replay these sequences
// against a cache on a virtual clock.
package workload

import (
	"math"
	"math/rand"
	"time"
)

// Spec describes one deduplicable computation: its identity, how long it
// takes to compute natively, and the result it produces.
type Spec struct {
	ID int
	// Cost is the native computation time on the reference (mobile)
	// device.
	Cost time.Duration
	// Size is the result footprint in bytes.
	Size int
}

// Specs builds n workloads with costs log-spaced over [minCost,
// maxCost], the paper's "100 different workloads, each of which takes a
// different amount of computation time ranging from 1 ms to 10 s".
func Specs(n int, minCost, maxCost time.Duration) []Spec {
	if n <= 0 {
		return nil
	}
	out := make([]Spec, n)
	lmin := math.Log(float64(minCost))
	lmax := math.Log(float64(maxCost))
	for i := range out {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		out[i] = Spec{
			ID:   i,
			Cost: time.Duration(math.Exp(lmin + (lmax-lmin)*t)),
			Size: 64,
		}
	}
	return out
}

// Distribution names a request-popularity distribution (§5.3: "The
// number of cache hits ... can be modeled by a uniform distribution or
// an exponential distribution").
type Distribution string

// The two §5.3 request patterns plus a Zipf extra.
const (
	Uniform     Distribution = "uniform"
	Exponential Distribution = "exponential"
	Zipf        Distribution = "zipf"
)

// Sequence draws a request sequence of length n over the workload ids
// [0, k) following the distribution. Popularity rank is decoupled from
// workload id by a seeded permutation, so a workload's cost and its
// popularity are independent, as in the paper's setup (the 100 workloads
// have distinct costs; which ones recur is a property of the request
// pattern, not the cost). Deterministic for a given rng.
func Sequence(dist Distribution, k, n int, rng *rand.Rand) []int {
	if k <= 0 || n <= 0 {
		return nil
	}
	perm := rng.Perm(k)
	out := make([]int, n)
	switch dist {
	case Exponential:
		// Relative popularity decays exponentially with rank [17];
		// rate chosen so the head ~20 workloads dominate.
		rate := 10.0 / float64(k)
		for i := range out {
			v := int(rng.ExpFloat64() / rate)
			if v >= k {
				v = k - 1
			}
			out[i] = perm[v]
		}
	case Zipf:
		z := rand.NewZipf(rng, 1.2, 1, uint64(k-1))
		for i := range out {
			out[i] = perm[z.Uint64()]
		}
	default: // Uniform
		for i := range out {
			out[i] = perm[rng.Intn(k)]
		}
	}
	return out
}

// WorkingSet returns the distinct workload ids appearing in seq, in
// first-appearance order.
func WorkingSet(seq []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, id := range seq {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Device scales computation costs: the paper's PC "is around an order of
// magnitude faster than the phone" (§5.1).
type Device struct {
	Name string
	// Speed divides the reference cost; 1 = the mobile baseline.
	Speed float64
}

// The two evaluation devices.
var (
	Mobile = Device{Name: "mobile", Speed: 1}
	PC     = Device{Name: "pc", Speed: 10}
)

// CostOn converts a reference (mobile) cost to this device.
func (d Device) CostOn(ref time.Duration) time.Duration {
	if d.Speed <= 0 {
		return ref
	}
	return time.Duration(float64(ref) / d.Speed)
}
