package workload

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vec"
)

// ReplayResult summarizes a request-sequence replay (§5.3's metric: "the
// portion of the total computation time required due to cache misses").
type ReplayResult struct {
	Requests int
	Hits     int
	// ComputeTime is the time spent computing misses.
	ComputeTime time.Duration
	// TotalCost is the time the sequence would cost with no cache at all.
	TotalCost time.Duration
}

// MissRatio returns ComputeTime / TotalCost, Figure 8's y-axis.
func (r ReplayResult) MissRatio() float64 {
	if r.TotalCost == 0 {
		return 0
	}
	return float64(r.ComputeTime) / float64(r.TotalCost)
}

// Replay submits the request sequence to a fresh cache configured with
// the given eviction policy and capacity (in entries) and accounts
// computation time on a virtual clock. Workload keys are exact (each
// workload is a distinct computation), isolating the replacement-policy
// comparison from approximate matching, as in §5.3.
func Replay(specs []Spec, seq []int, policy core.PolicyKind, capacity int, device Device) (ReplayResult, error) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	cache := core.New(core.Config{
		Clock:          clk,
		MaxEntries:     capacity,
		DisableDropout: true,
		// Long TTL: §5.3 studies replacement, not expiry.
		DefaultTTL: 365 * 24 * time.Hour,
		Policy:     policy,
		Tuner:      core.TunerConfig{WarmupZ: 1},
		Seed:       1,
	})
	const fn = "workload"
	if err := cache.RegisterFunction(fn, core.KeyTypeSpec{Name: "id", Index: "hash"}); err != nil {
		return ReplayResult{}, err
	}
	var res ReplayResult
	// The request map is reused across puts: Put only reads it to resolve
	// key types, so only the key vectors themselves (which the cache
	// retains) need a fresh allocation per request.
	keys := make(map[string]vec.Vector, 1)
	for _, id := range seq {
		if id < 0 || id >= len(specs) {
			return ReplayResult{}, fmt.Errorf("workload: request id %d out of range", id)
		}
		spec := specs[id]
		cost := device.CostOn(spec.Cost)
		res.Requests++
		res.TotalCost += cost
		key := vec.Vector{float64(id)}
		lr, err := cache.Lookup(fn, "id", key)
		if err != nil {
			return ReplayResult{}, err
		}
		if lr.Hit {
			res.Hits++
			continue
		}
		// Compute natively: advance the virtual clock by the cost.
		clk.Advance(cost)
		res.ComputeTime += cost
		keys["id"] = key
		if _, err := cache.Put(fn, core.PutRequest{
			Keys:     keys,
			Value:    spec.ID,
			MissedAt: lr.MissedAt,
			Size:     spec.Size,
		}); err != nil {
			return ReplayResult{}, err
		}
	}
	return res, nil
}
