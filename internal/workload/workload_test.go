package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSpecsLogSpaced(t *testing.T) {
	specs := Specs(100, time.Millisecond, 10*time.Second)
	if len(specs) != 100 {
		t.Fatalf("len = %d", len(specs))
	}
	if d := specs[0].Cost - time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("first cost = %v", specs[0].Cost)
	}
	if d := specs[99].Cost - 10*time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("last cost = %v", specs[99].Cost)
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Cost <= specs[i-1].Cost {
			t.Fatalf("costs not increasing at %d", i)
		}
	}
	if Specs(0, time.Millisecond, time.Second) != nil {
		t.Error("Specs(0) != nil")
	}
}

func TestSequenceDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const k, n = 100, 10000
	uni := Sequence(Uniform, k, n, rng)
	exp := Sequence(Exponential, k, n, rand.New(rand.NewSource(2)))
	zipf := Sequence(Zipf, k, n, rand.New(rand.NewSource(3)))
	if len(uni) != n || len(exp) != n || len(zipf) != n {
		t.Fatal("wrong sequence lengths")
	}
	count := func(seq []int) []int {
		c := make([]int, k)
		for _, id := range seq {
			if id < 0 || id >= k {
				t.Fatalf("id %d out of range", id)
			}
			c[id]++
		}
		return c
	}
	cu, ce := count(uni), count(exp)
	// Uniform: every workload roughly n/k = 100 occurrences.
	for id, c := range cu {
		if c < 50 || c > 200 {
			t.Errorf("uniform workload %d count %d far from 100", id, c)
		}
	}
	// Exponential: the 10 most popular workloads dominate the bottom 50
	// (popularity rank is permuted over ids, so sort the counts).
	sorted := append([]int(nil), ce...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	head, tail := 0, 0
	for i, c := range sorted {
		if i < 10 {
			head += c
		} else if i >= 50 {
			tail += c
		}
	}
	if head < 5*tail {
		t.Errorf("exponential head %d not ≫ tail %d", head, tail)
	}
	if Sequence(Uniform, 0, 5, rng) != nil || Sequence(Uniform, 5, 0, rng) != nil {
		t.Error("degenerate Sequence not nil")
	}
}

func TestWorkingSet(t *testing.T) {
	ws := WorkingSet([]int{3, 1, 3, 2, 1})
	if len(ws) != 3 || ws[0] != 3 || ws[1] != 1 || ws[2] != 2 {
		t.Errorf("WorkingSet = %v", ws)
	}
}

func TestDeviceCost(t *testing.T) {
	if got := Mobile.CostOn(time.Second); got != time.Second {
		t.Errorf("mobile cost = %v", got)
	}
	if got := PC.CostOn(time.Second); got != 100*time.Millisecond {
		t.Errorf("pc cost = %v", got)
	}
	broken := Device{Speed: 0}
	if got := broken.CostOn(time.Second); got != time.Second {
		t.Errorf("zero-speed device cost = %v", got)
	}
}

func TestReplayUnlimitedCacheComputesEachOnce(t *testing.T) {
	specs := Specs(10, time.Millisecond, time.Second)
	seq := []int{0, 1, 0, 1, 2, 0}
	res, err := Replay(specs, seq, core.PolicyImportance, 0, Mobile)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 6 || res.Hits != 3 {
		t.Errorf("result = %+v", res)
	}
	want := specs[0].Cost + specs[1].Cost + specs[2].Cost
	if res.ComputeTime != want {
		t.Errorf("ComputeTime = %v, want %v", res.ComputeTime, want)
	}
	if res.MissRatio() >= 1 {
		t.Errorf("MissRatio = %v", res.MissRatio())
	}
}

func TestReplayOutOfRangeRequest(t *testing.T) {
	specs := Specs(2, time.Millisecond, time.Second)
	if _, err := Replay(specs, []int{5}, core.PolicyImportance, 0, Mobile); err == nil {
		t.Error("out-of-range id accepted")
	}
}

// TestReplayImportanceBeatsLRU reproduces Figure 8's core claim on a
// small instance: with a constrained cache and skewed, cost-varying
// workloads, importance-based eviction saves more computation than LRU
// and random.
func TestReplayImportanceBeatsLRU(t *testing.T) {
	specs := Specs(100, time.Millisecond, 10*time.Second)
	seq := Sequence(Exponential, 100, 5000, rand.New(rand.NewSource(42)))
	capacity := 20 // 20% of the working set
	ratios := make(map[core.PolicyKind]float64)
	for _, pol := range []core.PolicyKind{core.PolicyImportance, core.PolicyLRU, core.PolicyRandom} {
		res, err := Replay(specs, seq, pol, capacity, Mobile)
		if err != nil {
			t.Fatal(err)
		}
		ratios[pol] = res.MissRatio()
	}
	t.Logf("miss ratios: %v", ratios)
	if ratios[core.PolicyImportance] >= ratios[core.PolicyLRU] {
		t.Errorf("importance %.3f >= LRU %.3f", ratios[core.PolicyImportance], ratios[core.PolicyLRU])
	}
	if ratios[core.PolicyImportance] >= ratios[core.PolicyRandom] {
		t.Errorf("importance %.3f >= random %.3f", ratios[core.PolicyImportance], ratios[core.PolicyRandom])
	}
}

func TestMissRatioZeroTotal(t *testing.T) {
	var r ReplayResult
	if r.MissRatio() != 0 {
		t.Error("MissRatio of empty replay != 0")
	}
}
