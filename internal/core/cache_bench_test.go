package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

func benchCache(b *testing.B, entries, dim int) (*Cache, []vec.Vector) {
	b.Helper()
	cache := New(Config{
		Clock:          clock.NewVirtual(time.Unix(0, 0)),
		DisableDropout: true,
		Tuner:          TunerConfig{WarmupZ: 1},
	})
	if err := cache.RegisterFunction("f", KeyTypeSpec{Name: "k", Dim: dim}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([]vec.Vector, entries)
	for i := range keys {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		keys[i] = v
		if _, err := cache.Put("f", PutRequest{
			Keys: map[string]vec.Vector{"k": v}, Value: i, Cost: time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := cache.ForceThreshold("f", "k", 1e9); err != nil {
		b.Fatal(err)
	}
	return cache, keys
}

// BenchmarkLookupHit measures the full lookup path (lock, purge, kNN,
// importance update) at several cache sizes.
func BenchmarkLookupHit(b *testing.B) {
	for _, n := range []int{100, 10_000} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			cache, keys := benchCache(b, n, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cache.Lookup("f", "k", keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLookupMiss measures the miss path (no entry within threshold).
func BenchmarkLookupMiss(b *testing.B) {
	cache, _ := benchCache(b, 1000, 16)
	if err := cache.ForceThreshold("f", "k", 1e-12); err != nil {
		b.Fatal(err)
	}
	far := make(vec.Vector, 16)
	far[0] = 1e6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Lookup("f", "k", far); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutWithEviction measures puts against a full cache, where
// every insertion selects and evicts a victim.
func BenchmarkPutWithEviction(b *testing.B) {
	cache := New(Config{
		Clock:          clock.NewVirtual(time.Unix(0, 0)),
		DisableDropout: true,
		Tuner:          TunerConfig{WarmupZ: 1},
		MaxEntries:     256,
	})
	if err := cache.RegisterFunction("f", KeyTypeSpec{Name: "k", Dim: 4}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := vec.Vector{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if _, err := cache.Put("f", PutRequest{
			Keys: map[string]vec.Vector{"k": key}, Value: i, Cost: time.Millisecond,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRoundTrip measures persistence cost for 1000 entries.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	cache, _ := benchCache(b, 1000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if _, err := cache.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
