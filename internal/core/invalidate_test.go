package core

import (
	"testing"

	"repro/internal/vec"
)

func TestInvalidateRadius(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	for i := 0; i < 10; i++ {
		c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {float64(i)}}, Value: i})
	}
	c.ForceThreshold("f", "scalar", 0.1)
	n, err := c.InvalidateRadius("f", "scalar", vec.Vector{5}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // keys 4, 5, 6
		t.Fatalf("invalidated %d entries, want 3", n)
	}
	for i := 0; i < 10; i++ {
		res, _ := c.Lookup("f", "scalar", vec.Vector{float64(i)})
		wantHit := i < 4 || i > 6
		if res.Hit != wantHit {
			t.Errorf("key %d: hit=%v want %v", i, res.Hit, wantHit)
		}
	}
	if st := c.Stats(); st.Invalidations != 3 {
		t.Errorf("Invalidations = %d", st.Invalidations)
	}
	if _, err := c.InvalidateRadius("f", "scalar", vec.Vector{0}, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := c.InvalidateRadius("nope", "scalar", vec.Vector{0}, 1); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestInvalidateRadiusPropagatesAcrossKeyTypes(t *testing.T) {
	c, _ := newTestCache(t)
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "a"}, KeyTypeSpec{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"a": {1}, "b": {100}}, Value: "v"})
	if _, err := c.InvalidateRadius("f", "a", vec.Vector{1}, 0.5); err != nil {
		t.Fatal(err)
	}
	// The entry must be gone from the OTHER index too.
	if res, _ := c.Lookup("f", "b", vec.Vector{100}); res.Hit {
		t.Error("invalidated entry still reachable via key type b")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestInvalidateFunction(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	registerScalar(t, c, "g")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {2}}, Value: 2})
	c.Put("g", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 3})
	c.ForceThreshold("f", "scalar", 9)

	n, err := c.InvalidateFunction("f")
	if err != nil || n != 2 {
		t.Fatalf("InvalidateFunction = %d, %v", n, err)
	}
	if res, _ := c.Lookup("f", "scalar", vec.Vector{1}); res.Hit {
		t.Error("f entry survived")
	}
	// Other functions untouched.
	if res, _ := c.Lookup("g", "scalar", vec.Vector{1}); !res.Hit {
		t.Error("g entry was dropped")
	}
	// Thresholds reset (the function's semantics may have changed).
	st, _ := c.TunerStats("f", "scalar")
	if st.Active || st.Threshold != 0 {
		t.Errorf("tuner not reset: %+v", st)
	}
	if _, err := c.InvalidateFunction("nope"); err == nil {
		t.Error("unknown function accepted")
	}
}
