package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

// recordingStore captures the hook stream for order and content checks.
type recordingStore struct {
	registers []string
	puts      []StoreEntry
	deletes   []uint64
}

func (s *recordingStore) LogRegister(fn string, kts []StoreKeyType) {
	s.registers = append(s.registers, fn)
}
func (s *recordingStore) LogPut(rec StoreEntry) { s.puts = append(s.puts, rec) }
func (s *recordingStore) LogDelete(id uint64)   { s.deletes = append(s.deletes, id) }

func TestStoreHooks(t *testing.T) {
	rs := &recordingStore{}
	c, clk := newTestCache(t, func(cfg *Config) { cfg.Store = rs })
	registerScalar(t, c, "f")
	if len(rs.registers) != 1 || rs.registers[0] != "f" {
		t.Fatalf("registers = %v, want [f]", rs.registers)
	}

	id, err := c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: "v", TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.puts) != 1 {
		t.Fatalf("puts logged = %d, want 1", len(rs.puts))
	}
	rec := rs.puts[0]
	if rec.ID != uint64(id) || rec.Function != "f" || rec.Value != "v" {
		t.Errorf("logged put = %+v", rec)
	}
	wantExp := clk.Now().Add(time.Minute).UnixNano()
	if rec.ExpiresAtNanos != wantExp {
		t.Errorf("ExpiresAtNanos = %d, want %d (absolute deadline)", rec.ExpiresAtNanos, wantExp)
	}

	if _, err := c.InvalidateRadius("f", "scalar", vec.Vector{1}, 0.5); err != nil {
		t.Fatal(err)
	}
	if len(rs.deletes) != 1 || rs.deletes[0] != uint64(id) {
		t.Fatalf("deletes = %v, want [%d]", rs.deletes, id)
	}

	// Expiration must NOT be logged: the absolute deadline in the put
	// record is authoritative at replay.
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {2}}, Value: "w", TTL: time.Second})
	clk.Advance(2 * time.Second)
	c.PurgeExpired()
	if len(rs.deletes) != 1 {
		t.Errorf("expiration was logged as a delete: %v", rs.deletes)
	}
}

// populate fills a cache with n entries of distinct scalar keys, driving
// the tuner through warm-up and into live adjustments.
func populate(t *testing.T, c *Cache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := c.Put("f", PutRequest{
			Keys:  map[string]vec.Vector{"scalar": {float64(i)}},
			Value: fmt.Sprintf("v%d", i),
			Cost:  time.Duration(i+1) * time.Millisecond,
			Size:  64,
			TTL:   time.Hour,
			App:   "app",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	populate(t, c, 50)
	// Drive lookups so the per-series counters are non-zero.
	for i := 0; i < 20; i++ {
		if _, err := c.Lookup("f", "scalar", vec.Vector{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Lookup("f", "scalar", vec.Vector{1e9}) // a miss

	state := c.CaptureState()
	if len(state.Entries) != 50 {
		t.Fatalf("captured %d entries, want 50", len(state.Entries))
	}

	c2, _ := newTestCache(t)
	stats, err := c2.Restore(state)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Functions != 1 || stats.Entries != 50 || stats.Expired != 0 || stats.Skipped != 0 {
		t.Fatalf("restore stats = %+v", stats)
	}

	// Every entry is served again with its exact value.
	for i := 0; i < 50; i++ {
		res, err := c2.Lookup("f", "scalar", vec.Vector{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Hit || res.Value != fmt.Sprintf("v%d", i) {
			t.Fatalf("entry %d: hit=%v value=%v", i, res.Hit, res.Value)
		}
	}

	// Tuner state and counters must match the capture exactly — the
	// lookups above changed c2's hit counters, so compare against a
	// fresh capture's function table instead.
	fs1 := c.FunctionStats()
	fs2 := c2.FunctionStats()
	if len(fs2) != 1 || len(fs2[0].KeyTypes) != 1 {
		t.Fatalf("function stats = %+v", fs2)
	}
	got, want := fs2[0].KeyTypes[0], fs1[0].KeyTypes[0]
	if got.Threshold != want.Threshold {
		t.Errorf("threshold = %v, want %v (exact)", got.Threshold, want.Threshold)
	}
	if fs2[0].Puts != fs1[0].Puts {
		t.Errorf("puts = %d, want %d", fs2[0].Puts, fs1[0].Puts)
	}
	st1 := c.CaptureState().Functions[0].KeyTypes[0]
	st2 := c2.CaptureState().Functions[0].KeyTypes[0]
	if !reflect.DeepEqual(st1.Tuner, st2.Tuner) {
		t.Errorf("tuner state drifted across restore:\n got %+v\nwant %+v", st2.Tuner, st1.Tuner)
	}
}

func TestRestoreDropsExpired(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: "short", TTL: time.Minute})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {2}}, Value: "long", TTL: time.Hour})
	state := c.CaptureState()

	// The restored process boots five minutes later: the one-minute
	// entry's absolute deadline has passed while "down".
	clk2 := clock.NewVirtual(time.Unix(0, 0).Add(5 * time.Minute))
	c2 := New(Config{Clock: clk2, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	stats, err := c2.Restore(state)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 1 || stats.Expired != 1 {
		t.Fatalf("restore stats = %+v, want 1 restored / 1 expired", stats)
	}
	if res, _ := c2.Lookup("f", "scalar", vec.Vector{1}); res.Hit {
		t.Error("expired entry served after restore")
	}
	if res, _ := c2.Lookup("f", "scalar", vec.Vector{2}); !res.Hit || res.Value != "long" {
		t.Error("unexpired entry lost in restore")
	}
}

func TestRestoreIDWatermark(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	populate(t, c, 10)
	state := c.CaptureState()

	c2, _ := newTestCache(t)
	if _, err := c2.Restore(state); err != nil {
		t.Fatal(err)
	}
	id, err := c2.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {99}}, Value: "new"})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(id) <= state.MaxID {
		t.Errorf("new ID %d not past restored watermark %d — log replay would alias", id, state.MaxID)
	}
}

func TestRestoreDoesNotRelog(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	populate(t, c, 5)
	state := c.CaptureState()

	rs := &recordingStore{}
	c2, _ := newTestCache(t, func(cfg *Config) { cfg.Store = rs })
	if _, err := c2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if len(rs.registers) != 0 || len(rs.puts) != 0 {
		t.Errorf("restore re-logged its own replay: %d registers, %d puts", len(rs.registers), len(rs.puts))
	}
	// A restore-time register must still reset on the NEXT capture if it
	// were logged — covered by the store package; here only assert the
	// hooks resume for live traffic after restore.
	c2.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {100}}, Value: "live"})
	if len(rs.puts) != 1 {
		t.Errorf("live put after restore not logged (%d records)", len(rs.puts))
	}
}

func TestCaptureSkipsUnserializable(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: make(chan int)})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {2}}, Value: "ok"})
	state := c.CaptureState()
	if state.Skipped != 1 || len(state.Entries) != 1 {
		t.Errorf("skipped=%d entries=%d, want 1/1", state.Skipped, len(state.Entries))
	}
}
