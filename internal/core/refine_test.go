package core

import (
	"testing"

	"repro/internal/vec"
)

func TestLookupRefinedAdjustsHit(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {10}}, Value: 100.0})
	c.ForceThreshold("f", "scalar", 5)

	// Refiner: linearly extrapolate the cached value to the query key
	// (a 1-D stand-in for warping a frame to a new pose).
	refine := func(v any, cachedKey, queryKey vec.Vector) any {
		return v.(float64) + 10*(queryKey[0]-cachedKey[0])
	}
	res, err := c.LookupRefined("f", "scalar", vec.Vector{12}, refine)
	if err != nil || !res.Hit {
		t.Fatalf("refined lookup: %+v, %v", res, err)
	}
	if res.Value != 120.0 {
		t.Errorf("refined value = %v, want 120", res.Value)
	}
	// The stored entry is untouched.
	plain, _ := c.Lookup("f", "scalar", vec.Vector{10})
	if plain.Value != 100.0 {
		t.Errorf("cached value mutated: %v", plain.Value)
	}
}

func TestLookupRefinedNilRefinerAndMiss(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: "v"})
	res, err := c.LookupRefined("f", "scalar", vec.Vector{1}, nil)
	if err != nil || !res.Hit || res.Value != "v" {
		t.Fatalf("nil refiner: %+v, %v", res, err)
	}
	// Miss: refiner must not run.
	called := false
	res, err = c.LookupRefined("f", "scalar", vec.Vector{99}, func(v any, _, _ vec.Vector) any {
		called = true
		return v
	})
	if err != nil || res.Hit || called {
		t.Fatalf("miss path: %+v called=%v", res, called)
	}
	// Unknown function errors.
	if _, err := c.LookupRefined("nope", "scalar", vec.Vector{1}, nil); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestLookupRefinedCountsStats(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1})
	c.LookupRefined("f", "scalar", vec.Vector{1}, nil)
	c.LookupRefined("f", "scalar", vec.Vector{50}, nil)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}
