package core

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/vec"
)

// InvalidateRadius removes every entry whose key under the given key
// type lies within distance r of key, returning how many entries were
// dropped. It is the explicit-invalidation companion to the dropout
// mechanism: when an application knows the world changed (a scene cut, a
// rearranged room), it can clear the affected key region at once instead
// of waiting for dropout-driven tightening to age the stale results out.
// The removal is propagated to all of the function's indices, like
// eviction. Only entries actually removed are counted: an entry already
// evicted by a racing operation is not double-counted.
func (c *Cache) InvalidateRadius(fn, keyType string, key vec.Vector, r float64) (int, error) {
	if r < 0 {
		return 0, fmt.Errorf("core: negative invalidation radius %v", r)
	}
	ki, err := c.keyIndexFor(fn, keyType)
	if err != nil {
		return 0, err
	}
	ki.mu.RLock()
	hits := index.Radius(ki.idx, key, r)
	ki.mu.RUnlock()
	removed := 0
	c.admitMu.Lock()
	for _, n := range hits {
		if c.removeEntryLocked(ID(n.ID)) != nil {
			removed++
		}
	}
	c.admitMu.Unlock()
	c.ctr.invalidations.Add(int64(removed))
	return removed, nil
}

// InvalidateFunction drops every entry of a function across all its key
// types and resets the function's similarity thresholds — the natural
// response to "everything this function computed is now stale" (e.g. a
// model update changed the function's semantics).
func (c *Cache) InvalidateFunction(fn string) (int, error) {
	fc, err := c.functionIndexes(fn)
	if err != nil {
		return 0, err
	}
	kis := fc.kis
	ids := make(map[ID]struct{})
	for _, ki := range kis {
		ki.mu.RLock()
		for id := range ki.members {
			ids[id] = struct{}{}
		}
		ki.mu.RUnlock()
	}
	removed := 0
	c.admitMu.Lock()
	for id := range ids {
		if c.removeEntryLocked(id) != nil {
			removed++
		}
	}
	c.admitMu.Unlock()
	for _, ki := range kis {
		ki.tuner.Reset()
	}
	c.ctr.invalidations.Add(int64(removed))
	return removed, nil
}
