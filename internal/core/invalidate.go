package core

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/vec"
)

// InvalidateRadius removes every entry whose key under the given key
// type lies within distance r of key, returning how many entries were
// dropped. It is the explicit-invalidation companion to the dropout
// mechanism: when an application knows the world changed (a scene cut, a
// rearranged room), it can clear the affected key region at once instead
// of waiting for dropout-driven tightening to age the stale results out.
// The removal is propagated to all of the function's indices, like
// eviction.
func (c *Cache) InvalidateRadius(fn, keyType string, key vec.Vector, r float64) (int, error) {
	if r < 0 {
		return 0, fmt.Errorf("core: negative invalidation radius %v", r)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ki, err := c.keyIndexLocked(fn, keyType)
	if err != nil {
		return 0, err
	}
	hits := index.Radius(ki.idx, key, r)
	for _, n := range hits {
		c.removeEntryLocked(ID(n.ID))
	}
	c.stats.Invalidations += int64(len(hits))
	return len(hits), nil
}

// InvalidateFunction drops every entry of a function across all its key
// types and resets the function's similarity thresholds — the natural
// response to "everything this function computed is now stale" (e.g. a
// model update changed the function's semantics).
func (c *Cache) InvalidateFunction(fn string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fc := c.funcs[fn]
	if fc == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	ids := make(map[ID]struct{})
	for _, ki := range fc.keyTypes {
		for id := range ki.members {
			ids[id] = struct{}{}
		}
		ki.tuner.Reset()
	}
	for id := range ids {
		c.removeEntryLocked(id)
	}
	c.stats.Invalidations += int64(len(ids))
	return len(ids), nil
}
