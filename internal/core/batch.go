package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/vec"
)

// Batch operations: MultiLookup and MultiPut execute many independent
// cache operations with one call, fanning the work across a bounded
// worker group. The cache's sharded locking (per-key-type RWMutexes,
// lock-free entry table — see the concurrency-model comment in
// cache.go) means sub-operations on different functions or key types
// probe genuinely in parallel; sub-ops on the same key type still
// overlap their entry resolution and value handling outside the index
// read lock.
//
// Worker-group sizing: min(GOMAXPROCS, len(batch)) goroutines pull
// sub-op indices from an atomic counter. Batches below
// batchParallelMin run inline — goroutine handoff costs more than a
// couple of sub-millisecond probes. Each sub-op carries its own
// LookupOptions (and therefore its own trace ID), so a traced batch
// records one span per sub-operation, not one blurred span per batch.

// batchParallelMin is the batch size below which fan-out is not worth
// the goroutine handoff and the batch runs inline.
const batchParallelMin = 4

// BatchLookup is one sub-operation of a MultiLookup.
type BatchLookup struct {
	Function string
	KeyType  string
	Key      vec.Vector
	Opts     LookupOptions
}

// BatchLookupResult pairs one sub-operation's LookupResult with its
// error. A sub-op failure (unknown function, say) never affects its
// siblings.
type BatchLookupResult struct {
	LookupResult
	Err error
}

// MultiLookup executes the sub-lookups concurrently over a bounded
// worker group and returns one result per sub-op, index-aligned with
// reqs.
func (c *Cache) MultiLookup(reqs []BatchLookup) []BatchLookupResult {
	out := make([]BatchLookupResult, len(reqs))
	runBatch(len(reqs), func(i int) {
		res, err := c.lookup(reqs[i].Function, reqs[i].KeyType, reqs[i].Key, reqs[i].Opts)
		out[i] = BatchLookupResult{LookupResult: res, Err: err}
	})
	return out
}

// BatchPut is one sub-operation of a MultiPut.
type BatchPut struct {
	Function string
	Req      PutRequest
}

// BatchPutResult pairs one sub-operation's new entry ID with its error.
type BatchPutResult struct {
	ID  ID
	Err error
}

// MultiPut executes the sub-puts concurrently over a bounded worker
// group and returns one result per sub-op, index-aligned with reqs.
// Key extraction, tuner feeding, and index insertion overlap across
// sub-ops; admission (the expiry heap and eviction loop) serializes on
// the admission lock as it does for concurrent single puts.
func (c *Cache) MultiPut(reqs []BatchPut) []BatchPutResult {
	out := make([]BatchPutResult, len(reqs))
	runBatch(len(reqs), func(i int) {
		id, err := c.Put(reqs[i].Function, reqs[i].Req)
		out[i] = BatchPutResult{ID: id, Err: err}
	})
	return out
}

// runBatch executes run(0..n-1) across min(GOMAXPROCS, n) workers, or
// inline for small batches. Workers claim indices from an atomic
// counter so an expensive sub-op (a purge-and-retry lookup, say) never
// strands a fixed stripe of the batch behind it.
func runBatch(n int, run func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n < batchParallelMin || workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}
