package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

// TestTelemetryCounterCoherence drives the cache concurrently and then
// checks the telemetry invariants the subsystem guarantees:
//
//  1. per series, hits + misses + dropouts == lookups issued;
//  2. the per-function series sum to the global Stats() counters;
//  3. each latency histogram's count is the exact sampled fraction of
//     the series' non-dropout lookups: every (latSampleMask+1)-th hit
//     and miss is observed, so count == hits/4 + misses/4.
//
// Run under -race this doubles as the telemetry wiring's race test.
func TestTelemetryCounterCoherence(t *testing.T) {
	tel := telemetry.New()
	c := New(Config{Telemetry: tel, Seed: 7})
	fns := []string{"recog", "depth"}
	for _, fn := range fns {
		if err := c.RegisterFunction(fn,
			KeyTypeSpec{Name: "feat"},
			KeyTypeSpec{Name: "pose"},
		); err != nil {
			t.Fatal(err)
		}
	}

	const (
		workers          = 8
		lookupsPerWorker = 2000
		putsPerWorker    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := fns[w%len(fns)]
			for i := 0; i < putsPerWorker; i++ {
				key := vec.Vector{float64(i), float64(w)}
				_, err := c.Put(fn, PutRequest{
					Keys:  map[string]vec.Vector{"feat": key, "pose": key},
					Value: fmt.Sprintf("%s-%d-%d", fn, w, i),
					Cost:  time.Millisecond,
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < lookupsPerWorker; i++ {
				kt := "feat"
				if i%2 == 1 {
					kt = "pose"
				}
				key := vec.Vector{float64(i % 60), float64(w)}
				if _, err := c.Lookup(fn, kt, key); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	stats := c.Stats()
	perFn := c.FunctionStats()

	// Invariant 2: series sum to global Stats. Stats.Misses folds
	// dropouts back in (historic semantics), per-series misses do not.
	var hits, misses, dropouts, puts int64
	for _, fs := range perFn {
		puts += fs.Puts
		for _, ks := range fs.KeyTypes {
			hits += ks.Hits
			misses += ks.Misses
			dropouts += ks.Dropouts

			// Invariant 1: outcome counts partition the lookups issued
			// against this series.
			lookups := ks.Hits + ks.Misses + ks.Dropouts
			want := int64(workers / len(fns) * lookupsPerWorker / 2)
			if lookups != want {
				t.Errorf("%s/%s: hits+misses+dropouts = %d, want %d lookups",
					fs.Function, ks.KeyType, lookups, want)
			}

			// Invariant 3: histogram count == the sampled share of
			// non-dropout lookups (1 in latSampleMask+1 of each
			// outcome, by counter value — exact, not probabilistic).
			if ks.Latency == nil {
				t.Fatalf("%s/%s: no latency summary with telemetry attached", fs.Function, ks.KeyType)
			}
			want64 := ks.Hits/(latSampleMask+1) + ks.Misses/(latSampleMask+1)
			if got := int64(ks.Latency.Count); got != want64 {
				t.Errorf("%s/%s: histogram count = %d, want hits/4+misses/4 = %d",
					fs.Function, ks.KeyType, got, want64)
			}
		}
	}
	if hits != stats.Hits {
		t.Errorf("series hits sum %d != Stats.Hits %d", hits, stats.Hits)
	}
	if dropouts != stats.Dropouts {
		t.Errorf("series dropouts sum %d != Stats.Dropouts %d", dropouts, stats.Dropouts)
	}
	if misses+dropouts != stats.Misses {
		t.Errorf("series misses+dropouts %d != Stats.Misses %d", misses+dropouts, stats.Misses)
	}
	if puts != stats.Puts {
		t.Errorf("series puts sum %d != Stats.Puts %d", puts, stats.Puts)
	}
	if total := hits + misses + dropouts; total != int64(workers*lookupsPerWorker) {
		t.Errorf("total outcomes %d != %d lookups issued", total, workers*lookupsPerWorker)
	}

	// The registry's func-backed series must agree with the cache and
	// the exposition must carry the per-function counters and gauges
	// the admin endpoint promises.
	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`potluck_lookups_total{function="recog",keytype="feat",result="hit"}`,
		`potluck_lookups_total{function="depth",keytype="pose",result="miss"}`,
		`potluck_tuner_threshold{function="recog",keytype="feat"}`,
		`potluck_index_queries_total{function="recog",keytype="feat",kind="kdtree"}`,
		`potluck_lookup_latency_seconds_count{function="recog",keytype="feat"}`,
		"potluck_cache_entries",
		"potluck_puts_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if tel.Trace.Len() == 0 {
		t.Error("tracer recorded no events despite misses/dropouts/puts")
	}
}

// TestTelemetryReRegistrationKeepsCounts pins the copy-on-write
// carry-over: re-registering a function must not reset its series.
func TestTelemetryReRegistrationKeepsCounts(t *testing.T) {
	c := New(Config{DisableDropout: true})
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("f", PutRequest{
		Keys: map[string]vec.Vector{"k": {1}}, Value: "v",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("f", "k", vec.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k"}, KeyTypeSpec{Name: "k2"}); err != nil {
		t.Fatal(err)
	}
	fs := c.FunctionStats()
	if len(fs) != 1 || fs[0].Puts != 1 {
		t.Fatalf("puts lost across re-registration: %+v", fs)
	}
	if len(fs[0].KeyTypes) != 2 || fs[0].KeyTypes[0].Hits != 1 {
		t.Fatalf("key-type series lost across re-registration: %+v", fs[0].KeyTypes)
	}
	if s := c.Stats(); s.Hits != 1 || s.Puts != 1 {
		t.Fatalf("Stats lost counts across re-registration: %+v", s)
	}
}
