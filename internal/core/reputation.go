package core

import (
	"sort"
	"sync"
)

// ReputationConfig parameterizes the Credence-style reputation system the
// paper proposes as a defence against cache pollution (§3.5: "The
// threshold-tuning phase can then establish a reputation record for each
// application, and malicious apps can be identified and barred").
// The zero value takes the defaults below.
type ReputationConfig struct {
	// Initial is the score assigned to a newly seen application.
	// Default 1.0.
	Initial float64
	// Penalty is subtracted when one of the app's entries is caught as a
	// false positive (a neighbour within the threshold whose value
	// disagrees with freshly computed ground truth). Default 0.2.
	Penalty float64
	// Reward is added (capped at Initial) when one of the app's entries
	// is confirmed by ground truth. Default 0.01.
	Reward float64
	// BarThreshold bars an application once its score falls to or below
	// it. Default 0.2.
	BarThreshold float64
}

func (c ReputationConfig) withDefaults() ReputationConfig {
	if c.Initial == 0 {
		c.Initial = 1.0
	}
	if c.Penalty == 0 {
		c.Penalty = 0.2
	}
	if c.Reward == 0 {
		c.Reward = 0.01
	}
	if c.BarThreshold == 0 {
		c.BarThreshold = 0.2
	}
	return c
}

// Reputation tracks a quality score per application. Observations come
// from the threshold-tuning phase: every dropout-forced recomputation
// compares a cached neighbour's value with fresh ground truth, which is
// exactly the signal needed to detect polluters. Reputation is safe for
// concurrent use.
type Reputation struct {
	mu     sync.Mutex
	cfg    ReputationConfig
	scores map[string]float64
	barred map[string]bool
}

// NewReputation returns an empty reputation table.
func NewReputation(cfg ReputationConfig) *Reputation {
	return &Reputation{
		cfg:    cfg.withDefaults(),
		scores: make(map[string]float64),
		barred: make(map[string]bool),
	}
}

// Observe records a tuning-phase observation about app's cached entry:
// withinThreshold reports whether the entry matched the new key within
// the similarity threshold, and sameValue whether its value agreed with
// the freshly computed result. A within-threshold disagreement is the
// pollution signal; an agreement is a confirmation. Apps with empty
// names are ignored.
func (r *Reputation) Observe(app string, withinThreshold, sameValue bool) {
	if app == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.scores[app]
	if !ok {
		s = r.cfg.Initial
	}
	switch {
	case withinThreshold && !sameValue:
		s -= r.cfg.Penalty
	case sameValue:
		s += r.cfg.Reward
		if s > r.cfg.Initial {
			s = r.cfg.Initial
		}
	}
	r.scores[app] = s
	if s <= r.cfg.BarThreshold {
		r.barred[app] = true
	}
}

// Score returns app's current score (Initial for unseen apps).
func (r *Reputation) Score(app string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.scores[app]; ok {
		return s
	}
	return r.cfg.Initial
}

// Barred reports whether app has been barred from inserting entries.
func (r *Reputation) Barred(app string) bool {
	if app == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.barred[app]
}

// Unbar reinstates an application (administrative override) and resets
// its score to Initial.
func (r *Reputation) Unbar(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.barred, app)
	r.scores[app] = r.cfg.Initial
}

// AppScore pairs an application with its score for reporting.
type AppScore struct {
	App    string
	Score  float64
	Barred bool
}

// Snapshot returns all known applications sorted by ascending score.
func (r *Reputation) Snapshot() []AppScore {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AppScore, 0, len(r.scores))
	for app, s := range r.scores {
		out = append(out, AppScore{App: app, Score: s, Barred: r.barred[app]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].App < out[j].App
	})
	return out
}
