// Package core implements the Potluck cache service: approximate
// deduplication of computation results keyed by feature vectors
// (paper §3). It provides the entry store with the importance metric
// (§3.3), the threshold-restricted nearest-neighbour lookup with random
// dropout (§3.4), the NN-based threshold-tuning algorithm (§3.5,
// Algorithm 1), importance-based eviction and expiry (§3.6), and
// multi-key-type indices (§3.7).
package core

import (
	"sync/atomic"
	"time"
)

// entry is one live cached computation result. Identity fields (id,
// value, cost, size, app, timestamps, owners) are immutable after the
// entry is published to the cache's entry table; the hot counters
// (accessCount, lastAccess) are atomics so lookup hits on the same
// entry never contend on a lock. Membership state (which indices hold
// the entry) lives in the per-key-index member maps, guarded by the
// key-index locks.
type entry struct {
	id ID
	// value is the cached computation result. The cache stores it once;
	// indices hold references by id (§4.2: "the final 'values' stored
	// are simply references ... to the actual value").
	value any
	// cost is the computation overhead: the elapsed time between the
	// lookup() miss and the put() of this entry (§3.3).
	cost time.Duration
	// size is the entry's footprint in bytes, the denominator of the
	// importance metric.
	size int
	// app is the application that inserted the entry, used by the
	// reputation system (§3.5 security discussion).
	app        string
	insertedAt time.Time
	expiresAt  time.Time
	// owners lists the key indices that reference this entry, fixed at
	// insertion time. Removal walks exactly these indices instead of
	// scanning every registered function (§3.7: the value is "cleared
	// via garbage collection when no indices have references to it" —
	// here, when it has been unlinked from every owner).
	owners []*keyIndex

	// accessCount is incremented by every lookup hit; it starts at 1 on
	// put (§3.3: "access frequency is initialized to 1").
	accessCount atomic.Int64
	// lastAccess is the UnixNano time of the most recent hit (or the
	// insertion time), read by the LRU eviction policy.
	lastAccess atomic.Int64
}

// ID identifies an entry. It matches index.ID numerically.
type ID uint64

// importance is the paper's cache-entry usefulness metric:
//
//	importance = computation overhead × access frequency / entry size
//
// (§3.3). It determines eviction order only; lookups never consult it.
func (e *entry) importance() float64 {
	size := e.size
	if size <= 0 {
		size = 1
	}
	return e.cost.Seconds() * float64(e.accessCount.Load()) / float64(size)
}

// snapshot returns an immutable copy for safe external consumption.
func (e *entry) snapshot() Entry {
	return Entry{
		id:          e.id,
		value:       e.value,
		cost:        e.cost,
		size:        e.size,
		app:         e.app,
		insertedAt:  e.insertedAt,
		expiresAt:   e.expiresAt,
		accessCount: e.accessCount.Load(),
		lastAccess:  time.Unix(0, e.lastAccess.Load()),
	}
}

// Entry is a point-in-time snapshot of a cached entry, as returned in
// LookupResult. It is a plain value: safe to copy and to read from any
// goroutine.
type Entry struct {
	id          ID
	value       any
	cost        time.Duration
	size        int
	accessCount int64
	insertedAt  time.Time
	expiresAt   time.Time
	lastAccess  time.Time
	app         string
}

// Importance is the paper's cache-entry usefulness metric:
//
//	importance = computation overhead × access frequency / entry size
//
// (§3.3), evaluated at snapshot time.
func (e Entry) Importance() float64 {
	size := e.size
	if size <= 0 {
		size = 1
	}
	return e.cost.Seconds() * float64(e.accessCount) / float64(size)
}

// Value returns the cached result.
func (e Entry) Value() any { return e.value }

// Cost returns the computation overhead recorded for this entry.
func (e Entry) Cost() time.Duration { return e.cost }

// Size returns the entry's size in bytes.
func (e Entry) Size() int { return e.size }

// AccessCount returns the number of times the entry had been returned by
// lookups at snapshot time, plus one for the initial put.
func (e Entry) AccessCount() int64 { return e.accessCount }

// App returns the name of the application that inserted the entry.
func (e Entry) App() string { return e.app }

// ExpiresAt returns the entry's validity deadline.
func (e Entry) ExpiresAt() time.Time { return e.expiresAt }
