// Package core implements the Potluck cache service: approximate
// deduplication of computation results keyed by feature vectors
// (paper §3). It provides the entry store with the importance metric
// (§3.3), the threshold-restricted nearest-neighbour lookup with random
// dropout (§3.4), the NN-based threshold-tuning algorithm (§3.5,
// Algorithm 1), importance-based eviction and expiry (§3.6), and
// multi-key-type indices (§3.7).
package core

import (
	"time"
)

// Entry is one cached computation result. Fields are maintained by the
// cache under its lock; the snapshot accessors are safe to use on copies
// returned by the cache.
type Entry struct {
	id ID
	// value is the cached computation result. The cache stores it once;
	// indices hold references by id (§4.2: "the final 'values' stored
	// are simply references ... to the actual value").
	value any
	// cost is the computation overhead: the elapsed time between the
	// lookup() miss and the put() of this entry (§3.3).
	cost time.Duration
	// size is the entry's footprint in bytes, the denominator of the
	// importance metric.
	size int
	// accessCount is incremented by every lookup hit; it starts at 1 on
	// put (§3.3: "access frequency is initialized to 1").
	accessCount int64
	insertedAt  time.Time
	expiresAt   time.Time
	lastAccess  time.Time
	// app is the application that inserted the entry, used by the
	// reputation system (§3.5 security discussion).
	app string
	// refs counts how many key indices currently reference this entry.
	// When it reaches zero the value is freed (§3.7: "cleared via
	// garbage collection when no indices have references to it").
	refs int
}

// ID identifies an entry. It matches index.ID numerically.
type ID uint64

// Importance is the paper's cache-entry usefulness metric:
//
//	importance = computation overhead × access frequency / entry size
//
// (§3.3). It determines eviction order only; lookups never consult it.
func (e *Entry) Importance() float64 {
	size := e.size
	if size <= 0 {
		size = 1
	}
	return e.cost.Seconds() * float64(e.accessCount) / float64(size)
}

// Value returns the cached result.
func (e *Entry) Value() any { return e.value }

// Cost returns the computation overhead recorded for this entry.
func (e *Entry) Cost() time.Duration { return e.cost }

// Size returns the entry's size in bytes.
func (e *Entry) Size() int { return e.size }

// AccessCount returns the number of times the entry has been returned by
// lookups, plus one for the initial put.
func (e *Entry) AccessCount() int64 { return e.accessCount }

// App returns the name of the application that inserted the entry.
func (e *Entry) App() string { return e.app }

// ExpiresAt returns the entry's validity deadline.
func (e *Entry) ExpiresAt() time.Time { return e.expiresAt }

// snapshot returns a copy for safe external consumption.
func (e *Entry) snapshot() Entry { return *e }
