package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTunerDefaults(t *testing.T) {
	tn := NewTuner(TunerConfig{})
	if tn.cfg.K != 4 || tn.cfg.Gamma != 0.8 || tn.cfg.WarmupZ != 100 {
		t.Errorf("defaults = %+v, want k=4 gamma=0.8 z=100", tn.cfg)
	}
	if tn.Threshold() != 0 {
		t.Errorf("initial threshold = %v, want 0", tn.Threshold())
	}
	if tn.Active() {
		t.Error("tuner active before warm-up")
	}
}

func TestTunerWarmupActivation(t *testing.T) {
	tn := NewTuner(TunerConfig{WarmupZ: 10})
	for i := 0; i < 9; i++ {
		tn.ObservePut(2.0, true, true)
		if tn.Active() {
			t.Fatalf("tuner active after %d puts, warm-up is 10", i+1)
		}
		if tn.Threshold() != 0 {
			t.Fatalf("threshold %v during warm-up, want 0", tn.Threshold())
		}
	}
	tn.ObservePut(4.0, true, true)
	if !tn.Active() {
		t.Fatal("tuner not active after warm-up")
	}
	// With no different-value observations, the initial threshold
	// covers all same-value pairs: max{2 ×9, 4} = 4.
	if got := tn.Threshold(); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("initial threshold = %v, want 4", got)
	}
}

func TestTunerWarmupNoSameValueNeighbors(t *testing.T) {
	tn := NewTuner(TunerConfig{WarmupZ: 5})
	for i := 0; i < 5; i++ {
		tn.ObservePut(3.0, false, true)
	}
	if !tn.Active() {
		t.Fatal("not active")
	}
	if tn.Threshold() != 0 {
		t.Errorf("threshold = %v, want 0 with no same-value observations", tn.Threshold())
	}
}

func TestTunerTighten(t *testing.T) {
	tn := NewTuner(TunerConfig{K: 4, WarmupZ: 1})
	tn.ObservePut(0, true, false) // completes warm-up
	tn.ForceActivate(8.0)
	// Within threshold, different value: tighten by K.
	tn.ObservePut(5.0, false, true)
	if got := tn.Threshold(); got != 2.0 {
		t.Errorf("threshold after tighten = %v, want 2", got)
	}
	st := tn.Stats()
	if st.Tightenings != 1 {
		t.Errorf("tightenings = %d, want 1", st.Tightenings)
	}
}

func TestTunerLoosen(t *testing.T) {
	tn := NewTuner(TunerConfig{Gamma: 0.8, WarmupZ: 1})
	tn.ObservePut(0, true, false)
	tn.ForceActivate(1.0)
	// Beyond threshold, same value: EWMA loosen.
	tn.ObservePut(6.0, true, true)
	want := 0.2*6.0 + 0.8*1.0
	if got := tn.Threshold(); math.Abs(got-want) > 1e-12 {
		t.Errorf("threshold after loosen = %v, want %v", got, want)
	}
	st := tn.Stats()
	if st.Loosenings != 1 {
		t.Errorf("loosenings = %d, want 1", st.Loosenings)
	}
}

func TestTunerNoChangeCases(t *testing.T) {
	tn := NewTuner(TunerConfig{WarmupZ: 1})
	tn.ObservePut(0, true, false)
	tn.ForceActivate(5.0)
	// Within threshold, same value: consistent, no change.
	tn.ObservePut(3.0, true, true)
	if got := tn.Threshold(); got != 5.0 {
		t.Errorf("threshold changed on consistent observation: %v", got)
	}
	// Beyond threshold, different value: correctly dissimilar, no change.
	tn.ObservePut(9.0, false, true)
	if got := tn.Threshold(); got != 5.0 {
		t.Errorf("threshold changed on dissimilar observation: %v", got)
	}
	// No neighbour: no change.
	tn.ObservePut(0, false, false)
	if got := tn.Threshold(); got != 5.0 {
		t.Errorf("threshold changed with no neighbour: %v", got)
	}
}

func TestTunerReset(t *testing.T) {
	tn := NewTuner(TunerConfig{WarmupZ: 1})
	tn.ObservePut(2.0, true, true)
	tn.ForceActivate(7)
	tn.Reset()
	if tn.Active() || tn.Threshold() != 0 {
		t.Errorf("after Reset: active=%v threshold=%v", tn.Active(), tn.Threshold())
	}
	st := tn.Stats()
	if st.Puts != 0 || st.Tightenings != 0 || st.Loosenings != 0 {
		t.Errorf("counters survive Reset: %+v", st)
	}
}

// TestTunerDecayRate reproduces the arithmetic behind Figure 7: with
// tightening factor k, n consecutive false positives shrink the
// threshold by k^n.
func TestTunerDecayRate(t *testing.T) {
	for _, k := range []float64{2, 4, 8} {
		tn := NewTuner(TunerConfig{K: k, WarmupZ: 1})
		tn.ObservePut(0, true, false)
		tn.ForceActivate(1.0)
		n := 0
		for tn.Threshold() > 1e-2 { // shrink by a factor of 100
			tn.ObservePut(tn.Threshold()/2, false, true)
			n++
			if n > 1000 {
				t.Fatalf("k=%v: threshold did not decay", k)
			}
		}
		want := int(math.Ceil(2 / math.Log10(k)))
		if n != want {
			t.Errorf("k=%v: decayed 100x in %d steps, want %d", k, n, want)
		}
	}
}

// Property: the threshold never becomes negative, and loosening moves it
// toward the observed distance without overshooting.
func TestTunerBoundsProperty(t *testing.T) {
	f := func(obs []float64, flags []bool) bool {
		tn := NewTuner(TunerConfig{WarmupZ: 1})
		tn.ObservePut(0, true, false)
		for i, d := range obs {
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				d = 1
			}
			d = math.Mod(d, 1e6)
			same := i < len(flags) && flags[i]
			before := tn.Threshold()
			tn.ObservePut(d, same, true)
			after := tn.Threshold()
			if after < 0 {
				return false
			}
			if same && d > before {
				// Loosening: new threshold strictly between old and d.
				if after < before || after > d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTunerStatsString(t *testing.T) {
	tn := NewTuner(TunerConfig{})
	if s := tn.Stats().String(); s == "" {
		t.Error("empty stats string")
	}
}
