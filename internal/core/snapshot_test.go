package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/vec"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src, clk := newTestCache(t)
	registerScalar(t, src, "f")
	src.Put("f", PutRequest{
		Keys: map[string]vec.Vector{"scalar": {1}}, Value: "alpha",
		Cost: 2 * time.Second, App: "app-a", TTL: time.Hour,
	})
	src.Put("f", PutRequest{
		Keys: map[string]vec.Vector{"scalar": {2}}, Value: int64(42),
		Cost: time.Second, TTL: time.Hour,
	})
	// Accumulate accesses so importance state is non-trivial.
	src.Lookup("f", "scalar", vec.Vector{1})
	src.Lookup("f", "scalar", vec.Vector{1})
	src.ForceThreshold("f", "scalar", 0.5)

	var buf bytes.Buffer
	ws, err := src.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Entries != 2 || ws.Functions != 1 || ws.Skipped != 0 {
		t.Fatalf("write stats = %+v", ws)
	}

	dst := New(Config{Clock: clk, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	rs, err := dst.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Entries != 2 || rs.Functions != 1 {
		t.Fatalf("read stats = %+v", rs)
	}
	// Entries restored with values, costs and access counts.
	res, err := dst.Lookup("f", "scalar", vec.Vector{1})
	if err != nil || !res.Hit || res.Value != "alpha" {
		t.Fatalf("restored lookup: %+v, %v", res, err)
	}
	if res.Entry.Cost() != 2*time.Second {
		t.Errorf("restored cost = %v", res.Entry.Cost())
	}
	if res.Entry.AccessCount() < 3 { // 1 put + 2 hits (+1 for this hit)
		t.Errorf("restored access count = %d", res.Entry.AccessCount())
	}
	if res.Entry.App() != "app-a" {
		t.Errorf("restored app = %q", res.Entry.App())
	}
	// Threshold restored.
	st, _ := dst.TunerStats("f", "scalar")
	if !st.Active || st.Threshold != 0.5 {
		t.Errorf("restored tuner = %+v", st)
	}
	// Approximate hits work against restored indices.
	res, _ = dst.Lookup("f", "scalar", vec.Vector{2.2})
	if !res.Hit || res.Value != int64(42) {
		t.Errorf("approximate restored lookup = %+v", res)
	}
}

func TestSnapshotSkipsNonSerializableValues(t *testing.T) {
	src, _ := newTestCache(t)
	registerScalar(t, src, "f")
	type opaque struct{ ch chan int }
	src.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: opaque{}})
	src.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {2}}, Value: "ok"})
	var buf bytes.Buffer
	ws, err := src.WriteSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Entries != 1 || ws.Skipped != 1 {
		t.Errorf("stats = %+v", ws)
	}
}

func TestSnapshotTTLRebased(t *testing.T) {
	src, clk := newTestCache(t)
	registerScalar(t, src, "f")
	src.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1, TTL: 10 * time.Minute})
	clk.Advance(6 * time.Minute)
	var buf bytes.Buffer
	if _, err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{Clock: clk, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	if _, err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// 4 minutes remained at capture; the restored entry must expire
	// then, not a full TTL later.
	clk.Advance(3 * time.Minute)
	if res, _ := dst.Lookup("f", "scalar", vec.Vector{1}); !res.Hit {
		t.Error("entry expired early after restore")
	}
	clk.Advance(2 * time.Minute)
	if res, _ := dst.Lookup("f", "scalar", vec.Vector{1}); res.Hit {
		t.Error("entry outlived its rebased TTL")
	}
}

func TestSnapshotExpiredEntriesDropped(t *testing.T) {
	src, clk := newTestCache(t)
	registerScalar(t, src, "f")
	src.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1, TTL: time.Minute})
	var buf bytes.Buffer
	if _, err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// The snapshot ages past the entry's TTL before restore: rebasing
	// happens against the capture time, so the entry is still valid at
	// restore (remaining TTL is measured at capture). To test dropping,
	// capture an already-expired entry is impossible (purge runs first),
	// so instead corrupt-free path: advance and re-capture.
	clk.Advance(2 * time.Minute)
	var buf2 bytes.Buffer
	ws, err := src.WriteSnapshot(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Entries != 0 {
		t.Errorf("expired entry written: %+v", ws)
	}
}

func TestSnapshotGarbageInput(t *testing.T) {
	dst, _ := newTestCache(t)
	if _, err := dst.ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestSnapshotMultiKeyType(t *testing.T) {
	src, clk := newTestCache(t)
	err := src.RegisterFunction("f",
		KeyTypeSpec{Name: "a"},
		KeyTypeSpec{Name: "b", Index: "lsh", Dim: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	src.Put("f", PutRequest{
		Keys: map[string]vec.Vector{
			"a": {1, 2},
			"b": {3, 4},
		},
		Value: "multi", TTL: time.Hour,
	})
	var buf bytes.Buffer
	if _, err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{Clock: clk, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	if _, err := dst.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if res, _ := dst.Lookup("f", "a", vec.Vector{1, 2}); !res.Hit {
		t.Error("key type a not restored")
	}
	if res, _ := dst.Lookup("f", "b", vec.Vector{3, 4}); !res.Hit {
		t.Error("key type b not restored")
	}
	if dst.Len() != 1 {
		t.Errorf("Len = %d, want 1 (single value, two indices)", dst.Len())
	}
}
