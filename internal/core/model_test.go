package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

// refEntry mirrors a cache entry in the reference model.
type refEntry struct {
	key       float64
	value     int
	expiresAt time.Time
}

// refModel is an obviously-correct reference: linear scan, explicit
// threshold, lazy expiry. The cache under test must agree with it on
// every lookup outcome for arbitrary operation sequences.
type refModel struct {
	entries   []refEntry
	threshold float64
}

func (m *refModel) purge(now time.Time) {
	alive := m.entries[:0]
	for _, e := range m.entries {
		if e.expiresAt.After(now) {
			alive = append(alive, e)
		}
	}
	m.entries = alive
}

func (m *refModel) lookup(key float64, now time.Time) (int, bool) {
	m.purge(now)
	best := -1
	bestDist := math.Inf(1)
	for i, e := range m.entries {
		d := math.Abs(e.key - key)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 || bestDist > m.threshold {
		return 0, false
	}
	return m.entries[best].value, true
}

func (m *refModel) put(key float64, value int, ttl time.Duration, now time.Time) {
	m.purge(now)
	m.entries = append(m.entries, refEntry{key: key, value: value, expiresAt: now.Add(ttl)})
}

// TestCacheAgreesWithModel drives random interleavings of put, lookup,
// and clock advancement against both implementations. Capacity is
// unbounded and dropout disabled so outcomes are deterministic; the
// threshold is fixed (tuning correctness is covered by the tuner tests).
func TestCacheAgreesWithModel(t *testing.T) {
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		clk := clock.NewVirtual(time.Unix(0, 0))
		cache := New(Config{
			Clock:          clk,
			DisableDropout: true,
			Tuner:          TunerConfig{WarmupZ: 1},
		})
		if err := cache.RegisterFunction("f", KeyTypeSpec{Name: "k", Dim: 1}); err != nil {
			t.Fatal(err)
		}
		threshold := rng.Float64() * 2
		if err := cache.ForceThreshold("f", "k", threshold); err != nil {
			t.Fatal(err)
		}
		model := &refModel{threshold: threshold}

		nextVal := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0: // put
				key := rng.Float64() * 20
				ttl := time.Duration(1+rng.Intn(600)) * time.Second
				model.put(key, nextVal, ttl, clk.Now())
				if _, err := cache.Put("f", PutRequest{
					Keys:  map[string]vec.Vector{"k": {key}},
					Value: nextVal,
					TTL:   ttl,
				}); err != nil {
					t.Fatal(err)
				}
				// Puts feed the tuner; re-pin the threshold so the model
				// stays comparable.
				if err := cache.ForceThreshold("f", "k", threshold); err != nil {
					t.Fatal(err)
				}
				nextVal++
			case 1, 2: // lookup
				key := rng.Float64() * 20
				wantVal, wantHit := model.lookup(key, clk.Now())
				res, err := cache.Lookup("f", "k", vec.Vector{key})
				if err != nil {
					t.Fatal(err)
				}
				if res.Hit != wantHit {
					t.Fatalf("trial %d op %d: hit=%v model=%v (key %.3f, threshold %.3f)",
						trial, op, res.Hit, wantHit, key, threshold)
				}
				if wantHit && res.Value.(int) != wantVal {
					// Ties by distance can legitimately differ only if two
					// entries sit at exactly equal distance — vanishingly
					// unlikely with float keys, so treat as failure.
					t.Fatalf("trial %d op %d: value=%v model=%v", trial, op, res.Value, wantVal)
				}
			case 3: // advance time
				clk.Advance(time.Duration(rng.Intn(120)) * time.Second)
			}
		}
		// Final live-entry count agrees (expiry is lazy, so purge first).
		model.purge(clk.Now())
		cache.PurgeExpired()
		if cache.Len() != len(model.entries) {
			t.Fatalf("trial %d: Len=%d model=%d", trial, cache.Len(), len(model.entries))
		}
	}
}
