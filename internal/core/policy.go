package core

import (
	"fmt"
	"math/rand"
	"time"
)

// PolicyKind names a cache-entry replacement strategy. The paper's
// evaluation (§5.3, Figure 8) compares the importance-based strategy
// against LRU and random discard.
type PolicyKind string

// The replacement strategies of §5.3.
const (
	PolicyImportance PolicyKind = "importance" // Potluck's default
	PolicyLRU        PolicyKind = "lru"        // least recently used
	PolicyRandom     PolicyKind = "random"     // random discard
	PolicyFIFO       PolicyKind = "fifo"       // insertion order (extra baseline)
)

// A Policy selects the victim entry when the cache is full. Victim is
// always invoked under the cache's admission/eviction lock, so it sees
// a stable candidate set; the per-entry access counters it reads are
// atomics and may be concurrently bumped by lookups, which is harmless
// for victim selection.
type Policy interface {
	// Victim returns the id of the entry to evict. entries is non-empty;
	// implementations must return the id of one of its elements.
	Victim(entries []*entry, now time.Time, rng *rand.Rand) ID
	// Name returns the policy's kind.
	Name() PolicyKind
}

// NewPolicy constructs the named policy.
func NewPolicy(kind PolicyKind) (Policy, error) {
	switch kind {
	case PolicyImportance, "":
		return importancePolicy{}, nil
	case PolicyLRU:
		return lruPolicy{}, nil
	case PolicyRandom:
		return randomPolicy{}, nil
	case PolicyFIFO:
		return fifoPolicy{}, nil
	}
	return nil, fmt.Errorf("core: unknown eviction policy %q", kind)
}

// importancePolicy evicts the entry with the lowest importance value
// (§3.6: "the least important entry will be evicted").
type importancePolicy struct{}

func (importancePolicy) Victim(entries []*entry, _ time.Time, _ *rand.Rand) ID {
	best := entries[0]
	bestImp := best.importance()
	for _, e := range entries[1:] {
		if imp := e.importance(); imp < bestImp || (imp == bestImp && e.id < best.id) {
			best, bestImp = e, imp
		}
	}
	return best.id
}

func (importancePolicy) Name() PolicyKind { return PolicyImportance }

// lruPolicy evicts the least recently used entry.
type lruPolicy struct{}

func (lruPolicy) Victim(entries []*entry, _ time.Time, _ *rand.Rand) ID {
	best := entries[0]
	bestLast := best.lastAccess.Load()
	for _, e := range entries[1:] {
		if last := e.lastAccess.Load(); last < bestLast ||
			(last == bestLast && e.id < best.id) {
			best, bestLast = e, last
		}
	}
	return best.id
}

func (lruPolicy) Name() PolicyKind { return PolicyLRU }

// randomPolicy evicts a uniformly random entry.
type randomPolicy struct{}

func (randomPolicy) Victim(entries []*entry, _ time.Time, rng *rand.Rand) ID {
	return entries[rng.Intn(len(entries))].id
}

func (randomPolicy) Name() PolicyKind { return PolicyRandom }

// fifoPolicy evicts the oldest entry by insertion time.
type fifoPolicy struct{}

func (fifoPolicy) Victim(entries []*entry, _ time.Time, _ *rand.Rand) ID {
	best := entries[0]
	for _, e := range entries[1:] {
		if e.insertedAt.Before(best.insertedAt) ||
			(e.insertedAt.Equal(best.insertedAt) && e.id < best.id) {
			best = e
		}
	}
	return best.id
}

func (fifoPolicy) Name() PolicyKind { return PolicyFIFO }
