package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/index"
	"repro/internal/vec"
)

// newTestCache returns a deterministic cache on a virtual clock with
// dropout disabled and no warm-up delay, so hits/misses are exact.
func newTestCache(t *testing.T, mutate ...func(*Config)) (*Cache, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	cfg := Config{
		Clock:          clk,
		DisableDropout: true,
		Tuner:          TunerConfig{WarmupZ: 1},
	}
	for _, m := range mutate {
		m(&cfg)
	}
	return New(cfg), clk
}

func registerScalar(t *testing.T, c *Cache, fn string) {
	t.Helper()
	if err := c.RegisterFunction(fn, KeyTypeSpec{Name: "scalar"}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupUnknownFunction(t *testing.T) {
	c, _ := newTestCache(t)
	if _, err := c.Lookup("nope", "scalar", vec.Vector{1}); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("err = %v, want ErrUnknownFunction", err)
	}
	registerScalar(t, c, "f")
	if _, err := c.Lookup("f", "nope", vec.Vector{1}); !errors.Is(err, ErrUnknownKeyType) {
		t.Errorf("err = %v, want ErrUnknownKeyType", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	c, _ := newTestCache(t)
	if err := c.RegisterFunction(""); err == nil {
		t.Error("empty function name accepted")
	}
	if err := c.RegisterFunction("f"); err == nil {
		t.Error("no key types accepted")
	}
	if err := c.RegisterFunction("f", KeyTypeSpec{}); err == nil {
		t.Error("empty key type name accepted")
	}
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k", Index: "bogus"}); err == nil {
		t.Error("bogus index kind accepted")
	}
}

func TestPutLookupExactHit(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	key := vec.Vector{1, 2, 3}
	id, err := c.Put("f", PutRequest{
		Keys:  map[string]vec.Vector{"scalar": key},
		Value: "result",
		Cost:  time.Second,
	})
	if err != nil || id == 0 {
		t.Fatalf("Put: id=%d err=%v", id, err)
	}
	res, err := c.Lookup("f", "scalar", key)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Value != "result" || res.Distance != 0 {
		t.Errorf("exact lookup = %+v", res)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.SavedCompute != time.Second {
		t.Errorf("stats = %+v", st)
	}
}

func TestLookupMissBeyondThreshold(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: 1})
	// Threshold is 0 (warm-up of 1 put with no neighbour): near key misses.
	res, _ := c.Lookup("f", "scalar", vec.Vector{0.5})
	if res.Hit {
		t.Errorf("hit beyond threshold: %+v", res)
	}
	if res.Distance != 0.5 {
		t.Errorf("Distance = %v, want 0.5", res.Distance)
	}
	// Widen the threshold: now it hits approximately.
	c.ForceThreshold("f", "scalar", 1.0)
	res, _ = c.Lookup("f", "scalar", vec.Vector{0.5})
	if !res.Hit || res.Value != 1 {
		t.Errorf("approximate lookup = %+v", res)
	}
}

func TestPutUnknownFunction(t *testing.T) {
	c, _ := newTestCache(t)
	if _, err := c.Put("f", PutRequest{Value: 1}); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("err = %v", err)
	}
}

func TestPutNoKey(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	if _, err := c.Put("f", PutRequest{Value: 1}); !errors.Is(err, ErrNoKey) {
		t.Errorf("err = %v, want ErrNoKey", err)
	}
}

func TestPutCostFromMissedAt(t *testing.T) {
	c, clk := newTestCache(t)
	registerScalar(t, c, "f")
	res, _ := c.Lookup("f", "scalar", vec.Vector{1})
	if res.Hit {
		t.Fatal("unexpected hit")
	}
	clk.Advance(250 * time.Millisecond) // the "computation"
	id, err := c.Put("f", PutRequest{
		Keys:     map[string]vec.Vector{"scalar": {1}},
		Value:    "v",
		MissedAt: res.MissedAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	hit, _ := c.Lookup("f", "scalar", vec.Vector{1})
	if !hit.Hit || hit.Entry.Cost() != 250*time.Millisecond {
		t.Errorf("entry cost = %v, want 250ms (id=%d)", hit.Entry.Cost(), id)
	}
}

func TestAccessCountAndImportanceUpdate(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{
		Keys: map[string]vec.Vector{"scalar": {1}}, Value: "v",
		Cost: time.Second, Size: 100,
	})
	var imp []float64
	for i := 0; i < 3; i++ {
		res, _ := c.Lookup("f", "scalar", vec.Vector{1})
		if !res.Hit {
			t.Fatal("miss")
		}
		imp = append(imp, res.Entry.Importance())
	}
	// accessCount: 1 (put) then +1 per hit → importance grows linearly.
	for i := 1; i < len(imp); i++ {
		if imp[i] <= imp[i-1] {
			t.Errorf("importance not increasing with access: %v", imp)
		}
	}
	if got, want := imp[0], 1.0*2/100; got != want {
		t.Errorf("importance after first hit = %v, want %v", got, want)
	}
}

func TestEvictionCapacityByEntries(t *testing.T) {
	c, _ := newTestCache(t, func(cfg *Config) { cfg.MaxEntries = 3 })
	registerScalar(t, c, "f")
	// Three entries with rising importance (cost).
	for i := 1; i <= 3; i++ {
		c.Put("f", PutRequest{
			Keys:  map[string]vec.Vector{"scalar": {float64(i)}},
			Value: i, Cost: time.Duration(i) * time.Second, Size: 1,
		})
	}
	// Fourth put evicts the least important (cost 1s at key {1}).
	c.Put("f", PutRequest{
		Keys:  map[string]vec.Vector{"scalar": {4}},
		Value: 4, Cost: 10 * time.Second, Size: 1,
	})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if res, _ := c.Lookup("f", "scalar", vec.Vector{1}); res.Hit {
		t.Error("least-important entry survived eviction")
	}
	if res, _ := c.Lookup("f", "scalar", vec.Vector{4}); !res.Hit {
		t.Error("new entry was evicted instead of the victim")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestEvictionCapacityByBytes(t *testing.T) {
	c, _ := newTestCache(t, func(cfg *Config) { cfg.MaxBytes = 250 })
	registerScalar(t, c, "f")
	for i := 0; i < 3; i++ {
		c.Put("f", PutRequest{
			Keys:  map[string]vec.Vector{"scalar": {float64(i)}},
			Value: i, Cost: time.Duration(i+1) * time.Second, Size: 100,
		})
	}
	if c.Len() != 2 || c.Bytes() > 250 {
		t.Errorf("Len = %d Bytes = %d after byte-capped puts", c.Len(), c.Bytes())
	}
}

func TestNewEntryExcludedFromEviction(t *testing.T) {
	c, _ := newTestCache(t, func(cfg *Config) { cfg.MaxEntries = 1 })
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1, Cost: time.Hour, Size: 1})
	// The new entry is far less important but must replace the victim.
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {2}}, Value: 2, Cost: time.Nanosecond, Size: 1})
	res, _ := c.Lookup("f", "scalar", vec.Vector{2})
	if !res.Hit {
		t.Error("newly inserted entry was evicted; paper requires replace-with-new")
	}
}

func TestExpiry(t *testing.T) {
	c, clk := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{
		Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1, TTL: time.Minute,
	})
	clk.Advance(59 * time.Second)
	if res, _ := c.Lookup("f", "scalar", vec.Vector{1}); !res.Hit {
		t.Error("entry expired early")
	}
	clk.Advance(2 * time.Second)
	if res, _ := c.Lookup("f", "scalar", vec.Vector{1}); res.Hit {
		t.Error("entry survived past TTL")
	}
	if st := c.Stats(); st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
}

func TestDefaultTTLIsOneHour(t *testing.T) {
	c, clk := newTestCache(t)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1})
	clk.Advance(time.Hour - time.Second)
	if n := c.PurgeExpired(); n != 0 {
		t.Errorf("purged %d before the hour", n)
	}
	clk.Advance(2 * time.Second)
	if n := c.PurgeExpired(); n != 1 {
		t.Errorf("purged %d at the hour, want 1", n)
	}
}

func TestNextExpiry(t *testing.T) {
	c, clk := newTestCache(t)
	registerScalar(t, c, "f")
	if _, ok := c.NextExpiry(); ok {
		t.Error("NextExpiry on empty cache reported ok")
	}
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1, TTL: time.Minute})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {2}}, Value: 2, TTL: time.Second})
	at, ok := c.NextExpiry()
	if !ok || !at.Equal(clk.Now().Add(time.Second)) {
		t.Errorf("NextExpiry = %v ok=%v", at, ok)
	}
}

func TestDropout(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := New(Config{
		Clock:       clk,
		DropoutRate: 0.5,
		Seed:        42,
		Tuner:       TunerConfig{WarmupZ: 1},
	})
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1})
	dropouts := 0
	for i := 0; i < 1000; i++ {
		res, _ := c.Lookup("f", "scalar", vec.Vector{1})
		if res.Dropout {
			dropouts++
			if res.Hit {
				t.Fatal("dropout result also reported hit")
			}
		}
	}
	if dropouts < 400 || dropouts > 600 {
		t.Errorf("dropouts = %d of 1000 at rate 0.5", dropouts)
	}
	st := c.Stats()
	if st.Dropouts != int64(dropouts) {
		t.Errorf("stats.Dropouts = %d, want %d", st.Dropouts, dropouts)
	}
}

func TestDropoutDrivesTightening(t *testing.T) {
	// End-to-end quality control: two nearby keys with different values.
	// With dropout the cache eventually recomputes, notices the
	// inconsistency at Put time, and tightens the threshold.
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := New(Config{
		Clock:       clk,
		DropoutRate: 0.5,
		Seed:        7,
		Tuner:       TunerConfig{WarmupZ: 1, K: 4},
	})
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: "a"})
	c.ForceThreshold("f", "scalar", 10)
	before, _ := c.TunerStats("f", "scalar")
	// The app would normally see a (wrong) hit for key {1}. Dropout
	// forces a recomputation whose put observes the conflict.
	tightened := false
	for i := 0; i < 50 && !tightened; i++ {
		res, _ := c.Lookup("f", "scalar", vec.Vector{1})
		if !res.Hit {
			c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: "b"})
			st, _ := c.TunerStats("f", "scalar")
			tightened = st.Tightenings > 0
		}
	}
	if !tightened {
		t.Fatalf("threshold never tightened (before: %+v)", before)
	}
	st, _ := c.TunerStats("f", "scalar")
	if st.Threshold >= 10 {
		t.Errorf("threshold = %v, want < 10 after tightening", st.Threshold)
	}
}

func TestMultiKeyTypePropagation(t *testing.T) {
	c, _ := newTestCache(t)
	err := c.RegisterFunction("recognize",
		KeyTypeSpec{Name: "direct"},
		KeyTypeSpec{
			Name: "derived",
			Extract: func(raw any) (vec.Vector, error) {
				x := raw.(float64)
				return vec.Vector{x * 2}, nil
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Put("recognize", PutRequest{
		Keys:  map[string]vec.Vector{"direct": {3}},
		Raw:   3.0,
		Value: "cat",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The entry must be findable under BOTH key types.
	if res, _ := c.Lookup("recognize", "direct", vec.Vector{3}); !res.Hit {
		t.Error("miss under direct key type")
	}
	if res, _ := c.Lookup("recognize", "derived", vec.Vector{6}); !res.Hit {
		t.Error("miss under derived key type; propagation failed")
	}
	// One value, two index references.
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (values stored once)", c.Len())
	}
}

func TestExtractorErrorPropagates(t *testing.T) {
	c, _ := newTestCache(t)
	c.RegisterFunction("f", KeyTypeSpec{
		Name:    "k",
		Extract: func(raw any) (vec.Vector, error) { return nil, errors.New("boom") },
	})
	if _, err := c.Put("f", PutRequest{Raw: 1, Value: 1}); err == nil {
		t.Error("extractor error swallowed")
	}
}

func TestCrossAppSharing(t *testing.T) {
	// The headline scenario: app B gets a hit on app A's cached result
	// for the same function.
	c, _ := newTestCache(t)
	registerScalar(t, c, "objectRecognition")
	c.Put("objectRecognition", PutRequest{
		Keys: map[string]vec.Vector{"scalar": {5}}, Value: "stop sign",
		App: "google-lens", Cost: time.Second,
	})
	c.ForceThreshold("objectRecognition", "scalar", 0.5)
	res, _ := c.Lookup("objectRecognition", "scalar", vec.Vector{5.2})
	if !res.Hit || res.Value != "stop sign" {
		t.Fatalf("cross-app lookup = %+v", res)
	}
	if res.Entry.App() != "google-lens" {
		t.Errorf("entry app = %q", res.Entry.App())
	}
}

func TestFunctionIsolation(t *testing.T) {
	// "only applications using exactly the same function can share
	// results" (§4.2).
	c, _ := newTestCache(t)
	registerScalar(t, c, "f1")
	registerScalar(t, c, "f2")
	c.Put("f1", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1})
	if res, _ := c.Lookup("f2", "scalar", vec.Vector{1}); res.Hit {
		t.Error("results leaked across functions")
	}
}

func TestRegisterResetsThreshold(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	c.ForceThreshold("f", "scalar", 9)
	registerScalar(t, c, "f") // re-register, e.g. a new app
	st, _ := c.TunerStats("f", "scalar")
	if st.Threshold != 0 || st.Active {
		t.Errorf("threshold not reset on re-register: %+v", st)
	}
}

func TestIndexKindsIntegration(t *testing.T) {
	for _, kind := range []index.Kind{index.KindLinear, index.KindKDTree, index.KindLSH, index.KindTreeMap, index.KindHash} {
		c, _ := newTestCache(t)
		if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k", Index: kind, Dim: 2}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		c.Put("f", PutRequest{Keys: map[string]vec.Vector{"k": {1, 1}}, Value: "v"})
		res, err := c.Lookup("f", "k", vec.Vector{1, 1})
		if err != nil || !res.Hit {
			t.Errorf("%s: exact lookup hit=%v err=%v", kind, res.Hit, err)
		}
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("HitRate of zero stats != 0")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestEstimateSize(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{[]byte{1, 2, 3}, 3},
		{"hello", 5},
		{vec.Vector{1, 2}, 16},
		{[]float64{1, 2, 3}, 24},
		{true, 1},
		{int(1), 8},
		{int32(1), 4},
		{struct{ X int }{1}, 64},
	}
	for _, tc := range cases {
		if got := estimateSize(tc.v); got != tc.want {
			t.Errorf("estimateSize(%T) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := vec.Vector{float64((g*200 + i) % 50)}
				if res, _ := c.Lookup("f", "scalar", key); !res.Hit {
					c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": key}, Value: g})
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() == 0 {
		t.Error("no entries after concurrent workload")
	}
}

func TestFunctionsList(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "a")
	registerScalar(t, c, "b")
	if got := c.Functions(); len(got) != 2 {
		t.Errorf("Functions = %v", got)
	}
}

// TestLookupAcceptRejectedHitRecordsNoAccess covers the consume-or-don't-
// count contract: when the accept predicate refuses the candidate value
// (e.g. the wire service cannot ship a non-[]byte entry), the lookup must
// count as a miss and must not bump the entry's access frequency, hit
// counter, or saved-compute total.
func TestLookupAcceptRejectedHitRecordsNoAccess(t *testing.T) {
	c, _ := newTestCache(t)
	registerScalar(t, c, "f")
	key := vec.Vector{1}
	if _, err := c.Put("f", PutRequest{
		Keys:  map[string]vec.Vector{"scalar": key},
		Value: 42, // not a []byte: invisible to byte-only consumers
		Cost:  time.Second,
	}); err != nil {
		t.Fatal(err)
	}

	res, err := c.LookupAccept("f", "scalar", key, func(v any) bool {
		_, ok := v.([]byte)
		return ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatalf("rejected value reported as hit: %+v", res)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.SavedCompute != 0 {
		t.Errorf("stats after rejected hit = %+v, want 0 hits / 1 miss / 0 saved", st)
	}

	// The plain lookup still hits, and the rejected probe contributed no
	// access credit: this is the entry's first recorded access.
	full, err := c.Lookup("f", "scalar", key)
	if err != nil || !full.Hit {
		t.Fatalf("unrestricted lookup: %+v, %v", full, err)
	}
	if got := full.Entry.AccessCount(); got != 2 { // 1 for the put + this hit
		t.Errorf("access count = %d, want 2 (rejected probe must not count)", got)
	}

	// nil accept is exactly Lookup.
	res, err = c.LookupAccept("f", "scalar", key, nil)
	if err != nil || !res.Hit {
		t.Errorf("nil-accept lookup: %+v, %v", res, err)
	}
}
