package core

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

// newTracedCache builds a cache with a telemetry hub attached, ready for
// span assertions.
func newTracedCache(t *testing.T, mutate ...func(*Config)) (*Cache, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New()
	cfg := Config{
		Telemetry:      tel,
		DisableDropout: true,
		Tuner:          TunerConfig{WarmupZ: 1},
		Seed:           42,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	c := New(cfg)
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "scalar"}); err != nil {
		t.Fatal(err)
	}
	return c, tel
}

// A forced trace ID must always produce a detailed core span — stages,
// probe counts, tuner snapshot — regardless of sampling.
func TestLookupForcedTraceRecordsDetailedSpan(t *testing.T) {
	c, tel := newTracedCache(t)
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: 1})
	c.ForceThreshold("f", "scalar", 1.0)

	id := telemetry.NewTraceID()
	res, err := c.LookupOpts("f", "scalar", vec.Vector{0.5}, LookupOptions{Trace: id})
	if err != nil || !res.Hit {
		t.Fatalf("lookup: %+v %v", res, err)
	}
	if res.Trace != id {
		t.Fatalf("result trace = %s, want %s", res.Trace, id)
	}
	spans := tel.Spans.Find(id)
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Layer != "core" || sp.Outcome != telemetry.OutcomeHit || sp.Function != "f" || sp.KeyType != "scalar" {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Distance != 0.5 || sp.Threshold != 1.0 {
		t.Fatalf("decision fields: distance=%v threshold=%v", sp.Distance, sp.Threshold)
	}
	if sp.Probes < 0 {
		t.Fatalf("probe count unmeasured on a linear index: %+v", sp)
	}
	if sp.Tuner == nil {
		t.Fatal("tuner snapshot missing on forced-trace span")
	}
	var names []string
	for _, st := range sp.Stages {
		names = append(names, st.Name)
	}
	got := strings.Join(names, ",")
	if !strings.Contains(got, telemetry.StageProbe) || !strings.Contains(got, telemetry.StageDecide) {
		t.Fatalf("stages = %v, want probe+decide", names)
	}
}

// Misses are retained even unsampled (they are the interesting case),
// and a forced trace adds the detail.
func TestLookupMissAlwaysRetained(t *testing.T) {
	c, tel := newTracedCache(t)
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: 1})
	c.ForceThreshold("f", "scalar", 0.1)
	res, err := c.Lookup("f", "scalar", vec.Vector{5})
	if err != nil || res.Hit {
		t.Fatalf("lookup: %+v %v", res, err)
	}
	if res.Trace == 0 {
		t.Fatal("miss did not mint a trace id")
	}
	spans := tel.Spans.Find(res.Trace)
	if len(spans) != 1 || spans[0].Outcome != telemetry.OutcomeMiss {
		t.Fatalf("miss span: %+v", spans)
	}
	if spans[0].Distance != 5 || spans[0].Threshold != 0.1 {
		t.Fatalf("miss decision fields: %+v", spans[0])
	}
}

func TestLookupErrorSpanRetained(t *testing.T) {
	c, tel := newTracedCache(t)
	if _, err := c.Lookup("f", "bogus", vec.Vector{1}); err == nil {
		t.Fatal("unknown key type accepted")
	}
	spans := tel.Spans.Snapshot(telemetry.SpanFilter{Outcome: telemetry.OutcomeError})
	if len(spans) != 1 || spans[0].Function != "f" || spans[0].Err == "" {
		t.Fatalf("error span: %+v", spans)
	}
}

func TestDropoutSpanRetained(t *testing.T) {
	c, tel := newTracedCache(t, func(cfg *Config) {
		cfg.DisableDropout = false
		cfg.DropoutRate = 1.0 // every lookup drops out
	})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: 1})
	res, err := c.Lookup("f", "scalar", vec.Vector{0})
	if err != nil || !res.Dropout {
		t.Fatalf("lookup: %+v %v", res, err)
	}
	spans := tel.Spans.Find(res.Trace)
	if len(spans) != 1 || spans[0].Outcome != telemetry.OutcomeDropout {
		t.Fatalf("dropout span: %+v", spans)
	}
	if roll := spans[0].DropoutRoll; roll < 0 || roll >= 1 {
		t.Fatalf("dropout roll = %v, want [0,1)", roll)
	}
	if spans[0].DropoutRate != 1.0 {
		t.Fatalf("dropout rate = %v", spans[0].DropoutRate)
	}
}

// A traced put records the full pipeline: resolve, tune, insert, admit.
func TestPutForcedTraceRecordsStages(t *testing.T) {
	c, tel := newTracedCache(t)
	id := telemetry.NewTraceID()
	if _, err := c.Put("f", PutRequest{
		Keys:  map[string]vec.Vector{"scalar": {1}},
		Value: 1,
		Trace: id,
	}); err != nil {
		t.Fatal(err)
	}
	spans := tel.Spans.Find(id)
	if len(spans) != 1 || spans[0].Outcome != telemetry.OutcomePut {
		t.Fatalf("put span: %+v", spans)
	}
	want := []string{telemetry.StageResolve, telemetry.StageTune, telemetry.StageInsert, telemetry.StageAdmit}
	if len(spans[0].Stages) != len(want) {
		t.Fatalf("put stages = %+v, want %v", spans[0].Stages, want)
	}
	for i, st := range spans[0].Stages {
		if st.Name != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, st.Name, want[i])
		}
	}
}

func TestPutErrorSpanRetained(t *testing.T) {
	c, tel := newTracedCache(t)
	if _, err := c.Put("nope", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1}); err == nil {
		t.Fatal("unknown function accepted")
	}
	spans := tel.Spans.Snapshot(telemetry.SpanFilter{Outcome: telemetry.OutcomeError})
	if len(spans) != 1 || spans[0].Function != "nope" {
		t.Fatalf("put error span: %+v", spans)
	}
}

// The acceptance scenario: a forced near-threshold miss must render
// "distance D > threshold T" in the explain surface, with the flip
// condition.
func TestExplainNearThresholdMiss(t *testing.T) {
	c, _ := newTracedCache(t)
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: 1})
	c.ForceThreshold("f", "scalar", 0.1)
	id := telemetry.NewTraceID()
	res, err := c.LookupOpts("f", "scalar", vec.Vector{0.5}, LookupOptions{Trace: id})
	if err != nil || res.Hit {
		t.Fatalf("lookup: %+v %v", res, err)
	}
	rep, err := c.Explain("f", 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Function != "f" || rep.Recorded < 1 || len(rep.Decisions) < 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	d := rep.Decisions[0] // newest first: our miss
	if d.Trace != id || d.Outcome != telemetry.OutcomeMiss {
		t.Fatalf("top decision: %+v", d)
	}
	if !strings.Contains(d.Flip, "distance 0.5 > threshold 0.1") {
		t.Fatalf("flip text missing the comparison: %q", d.Flip)
	}
	if !strings.Contains(d.Flip, "a threshold above 0.5 would have made this a hit") {
		t.Fatalf("flip text missing the flip condition: %q", d.Flip)
	}
	if len(rep.KeyTypes) != 1 || rep.KeyTypes[0].Tuner.Threshold != 0.1 {
		t.Fatalf("key type context: %+v", rep.KeyTypes)
	}
}

func TestExplainErrors(t *testing.T) {
	c, _ := newTracedCache(t)
	if _, err := c.Explain("nope", 5); err == nil {
		t.Fatal("unknown function accepted")
	}
	bare := New(Config{DisableDropout: true})
	bare.RegisterFunction("f", KeyTypeSpec{Name: "scalar"})
	if _, err := bare.Explain("f", 5); err == nil {
		t.Fatal("explain without telemetry accepted")
	}
}

// A trace_id scraped off a /metrics exemplar line must resolve to a
// retained span — the whole point of exemplars.
func TestMetricsExemplarResolvesToRetainedSpan(t *testing.T) {
	c, tel := newTracedCache(t)
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: 1})
	c.ForceThreshold("f", "scalar", 1.0)
	id := telemetry.NewTraceID()
	if res, err := c.LookupOpts("f", "scalar", vec.Vector{0.25}, LookupOptions{Trace: id}); err != nil || !res.Hit {
		t.Fatalf("lookup: %+v %v", res, err)
	}
	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`# exemplar potluck_lookup_latency_seconds_bucket\{[^}]*\} trace_id=([0-9a-f]{16})`)
	m := re.FindStringSubmatch(b.String())
	if m == nil {
		t.Fatalf("no lookup-latency exemplar in exposition:\n%s", b.String())
	}
	scraped, err := telemetry.ParseTraceID(m[1])
	if err != nil {
		t.Fatal(err)
	}
	spans := tel.Spans.Find(scraped)
	if len(spans) == 0 {
		t.Fatalf("exemplar trace %s does not resolve to a retained span", scraped)
	}
	if spans[0].Trace != id {
		t.Fatalf("exemplar resolved to %s, want %s", spans[0].Trace, id)
	}
}

// Refine runs inside the traced lookup and shows up as its own stage.
func TestRefineStageTraced(t *testing.T) {
	c, tel := newTracedCache(t)
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {0}}, Value: 1})
	c.ForceThreshold("f", "scalar", 1.0)
	id := telemetry.NewTraceID()
	res, err := c.LookupOpts("f", "scalar", vec.Vector{0.5}, LookupOptions{
		Trace: id,
		Refine: func(cachedValue any, cachedKey, queryKey vec.Vector) any {
			time.Sleep(time.Millisecond)
			return cachedValue
		},
	})
	if err != nil || !res.Hit {
		t.Fatalf("lookup: %+v %v", res, err)
	}
	spans := tel.Spans.Find(id)
	if len(spans) != 1 {
		t.Fatalf("spans: %+v", spans)
	}
	var refine *telemetry.SpanStage
	for i := range spans[0].Stages {
		if spans[0].Stages[i].Name == telemetry.StageRefine {
			refine = &spans[0].Stages[i]
		}
	}
	if refine == nil {
		t.Fatalf("no refine stage in %+v", spans[0].Stages)
	}
	if refine.DurationNs < int64(time.Millisecond)/2 {
		t.Fatalf("refine stage too fast to be real: %+v", refine)
	}
}
