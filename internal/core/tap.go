package core

import (
	"sync"

	"repro/internal/vec"
)

// tapBuf holds the parallel slices loaned to Tap.TapPut; pooling them
// keeps the attached put path allocation-free.
type tapBuf struct {
	kts  []string
	keys []vec.Vector
}

var tapBufPool = sync.Pool{New: func() any { return new(tapBuf) }}

// Tap observes the cache's post-dropout decision stream. It exists for
// counterfactual profiling (internal/whatif): the tap sees exactly the
// quantities the lookup path already computed — the probe key, the
// unrestricted nearest-neighbour distance, the live threshold, and the
// outcome — so a profiler can replay the stream against shadow
// configurations without a second index query.
//
// Implementations MUST be cheap and non-blocking: both methods run on
// the lookup/put hot paths, concurrently from many goroutines. With a
// nil Config.Tap the cache pays one nil check and nothing else.
type Tap interface {
	// TapLookup is called once per non-dropout lookup (dropouts never
	// consult the cache, so there is no decision to shadow). dist is
	// the nearest-neighbour distance whether or not it beat the
	// threshold, or -1 when the index held nothing; threshold is the
	// tuner's value at probe time. The key is owned by the caller —
	// implementations retaining it past the call must clone.
	TapLookup(fn, keyType string, key vec.Vector, dist, threshold float64, hit bool, nowNanos int64)
	// TapPut is called once per successful admission with the resolved
	// key per key type (parallel slices), the new entry's id, its size
	// in bytes, and its compute cost. The slices are BORROWED: they are
	// only valid for the duration of the call (the caller pools and
	// reuses them), so implementations retaining either slice must
	// copy it. The key vectors themselves are the cache's read-only
	// backing arrays and are safe to share indefinitely.
	TapPut(fn string, keyTypes []string, keys []vec.Vector, id uint64, size int, costNanos, nowNanos int64)
}
