package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

// countingClock wraps a virtual clock and records every After call, so a
// test can prove the janitor's loop is bounded without real sleeping.
type countingClock struct {
	*clock.Virtual
	mu    sync.Mutex
	waits []time.Duration
}

func (c *countingClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.waits = append(c.waits, d)
	c.mu.Unlock()
	return c.Virtual.After(d)
}

func (c *countingClock) snapshot() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.waits...)
}

// TestJanitorNoHotSpin is the regression test for the janitor busy-loop:
// with Poll = 0 (previously "wait zero") and nothing to purge, the old
// loop called clk.After(0), which fires immediately on both clocks, and
// spun a core. The fixed loop must normalize Poll and floor every wait,
// so against a never-advancing virtual clock it parks on its first
// timer.
func TestJanitorNoHotSpin(t *testing.T) {
	cc := &countingClock{Virtual: clock.NewVirtual(time.Unix(0, 0))}
	c := New(Config{Clock: cc, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	registerScalar(t, c, "f")

	j := NewJanitor(c)
	j.Poll = 0    // pathological config: previously an After(0) hot spin
	j.MinWait = 0 // normalized to the default, never a zero floor

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); j.Run(ctx) }()

	// Give a spinning loop ample real time to rack up After calls.
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-done

	waits := cc.snapshot()
	if len(waits) > 2 {
		t.Fatalf("janitor called After %d times against a frozen clock — hot spin", len(waits))
	}
	for _, d := range waits {
		if d <= 0 {
			t.Fatalf("janitor slept %v, want every wait > 0", d)
		}
	}
}

// TestJanitorFloorsDueExpiry covers the other spin mouth: an expiry
// already due computes a negative wait, which must be floored to MinWait
// rather than clamped to zero.
func TestJanitorFloorsDueExpiry(t *testing.T) {
	cc := &countingClock{Virtual: clock.NewVirtual(time.Unix(0, 0))}
	c := New(Config{Clock: cc, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1}}, Value: 1, TTL: time.Second})
	cc.Advance(2 * time.Second) // entry now due; janitor not yet running

	j := NewJanitor(c)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); j.Run(ctx) }()

	// First iteration: due expiry → wait floored to MinWait; advancing
	// past it fires the timer and the purge collects the entry.
	deadline := time.Now().Add(time.Second)
	for c.Stats().Entries != 0 {
		cc.Advance(j.MinWait)
		if time.Now().After(deadline) {
			t.Fatal("janitor never purged the due entry")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	cc.Advance(time.Hour) // release any parked timer so Run observes ctx
	<-done

	for _, d := range cc.snapshot() {
		if d <= 0 {
			t.Fatalf("janitor slept %v with a due expiry pending, want >= MinWait", d)
		}
	}
}
