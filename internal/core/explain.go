package core

import (
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Explainability: /debug/explain renders the last N lookup decisions of
// a function from the retained spans, alongside the live tuner window
// per key type, answering "why was this a miss at distance d under
// threshold T, and what would have flipped it". This is read-side only:
// it consumes what the span recorder already retained, never touching a
// data-path lock.

// ExplainDecision is one retained lookup decision, rendered.
type ExplainDecision struct {
	Trace      telemetry.TraceID `json:"trace"`
	KeyType    string            `json:"keyType"`
	Outcome    string            `json:"outcome"`
	Distance   float64           `json:"distance"`
	Threshold  float64           `json:"threshold"`
	DurationNs int64             `json:"durationNs"`
	// Probes is the index scan count (-1 unmeasured).
	Probes int `json:"probes"`
	// Flip explains the decision and states what would have changed its
	// outcome (e.g. "distance 0.52 > threshold 0.1; a threshold above
	// 0.52 would have made this a hit").
	Flip string `json:"flip"`
}

// ExplainKeyType is the live per-key-type context decisions ran under.
type ExplainKeyType struct {
	KeyType   string     `json:"keyType"`
	IndexKind string     `json:"indexKind"`
	IndexLen  int        `json:"indexLen"`
	Hits      int64      `json:"hits"`
	Misses    int64      `json:"misses"`
	Dropouts  int64      `json:"dropouts"`
	Tuner     TunerStats `json:"tuner"`
}

// ExplainReport is the /debug/explain payload for one function.
type ExplainReport struct {
	Function string `json:"function"`
	// Recorded is how many lookups against this function were retained
	// as spans (the decisions below are the most recent of those).
	Recorded  int               `json:"recorded"`
	KeyTypes  []ExplainKeyType  `json:"keyTypes"`
	Decisions []ExplainDecision `json:"decisions"`
}

// Explain builds the decision report for fn from the last n retained
// core-layer spans. It errors for unknown functions and when the cache
// runs without telemetry (no spans are retained to explain).
func (c *Cache) Explain(fn string, n int) (*ExplainReport, error) {
	fc, err := c.functionIndexes(fn)
	if err != nil {
		return nil, err
	}
	if c.spans == nil {
		return nil, fmt.Errorf("core: no telemetry attached; nothing to explain")
	}
	if n <= 0 {
		n = 20
	}
	rep := &ExplainReport{Function: fn}
	for i, ki := range fc.kis {
		ki.mu.RLock()
		ilen := ki.idx.Len()
		ki.mu.RUnlock()
		rep.KeyTypes = append(rep.KeyTypes, ExplainKeyType{
			KeyType:   fc.order[i],
			IndexKind: string(ki.spec.Index),
			IndexLen:  ilen,
			Hits:      ki.ctr.hits.Load(),
			Misses:    ki.ctr.misses.Load(),
			Dropouts:  ki.ctr.dropouts.Load(),
			Tuner:     ki.tuner.Stats(),
		})
	}
	spans := c.spans.Snapshot(telemetry.SpanFilter{Function: fn, Layer: "core"})
	// Newest first: the question is "what just happened".
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq > spans[j].Seq })
	rep.Recorded = len(spans)
	if len(spans) > n {
		spans = spans[:n]
	}
	for _, sp := range spans {
		rep.Decisions = append(rep.Decisions, ExplainDecision{
			Trace:      sp.Trace,
			KeyType:    sp.KeyType,
			Outcome:    sp.Outcome,
			Distance:   sp.Distance,
			Threshold:  sp.Threshold,
			DurationNs: sp.DurationNs,
			Probes:     sp.Probes,
			Flip:       flipText(sp),
		})
	}
	return rep, nil
}

// flipText states why the decision came out as it did and what would
// have flipped it. For misses it renders the literal comparison
// "distance D > threshold T" — the relation /debug/explain exists to
// surface.
func flipText(sp telemetry.Span) string {
	switch sp.Outcome {
	case telemetry.OutcomeHit:
		return fmt.Sprintf("hit: distance %.6g <= threshold %.6g; a threshold below %.6g would have made this a miss",
			sp.Distance, sp.Threshold, sp.Distance)
	case telemetry.OutcomeMiss:
		if sp.Distance < 0 {
			return "miss: index empty, no neighbour to compare; any insert would have been probed"
		}
		if sp.Distance <= sp.Threshold {
			return fmt.Sprintf("miss: nearest neighbour at distance %.6g was within threshold %.6g but unusable (expired or vetoed by the caller)",
				sp.Distance, sp.Threshold)
		}
		return fmt.Sprintf("miss: distance %.6g > threshold %.6g; a threshold above %.6g would have made this a hit",
			sp.Distance, sp.Threshold, sp.Distance)
	case telemetry.OutcomeDropout:
		if sp.DropoutRoll >= 0 {
			return fmt.Sprintf("dropout: roll %.4f < rate %.4f skipped the cache (§3.4); a roll above %.4f would have queried it",
				sp.DropoutRoll, sp.DropoutRate, sp.DropoutRate)
		}
		return "dropout: the random-dropout coin skipped the cache (§3.4)"
	case telemetry.OutcomePut:
		if sp.Distance < 0 {
			return "put: first entry for this key type; tuner observed no neighbour"
		}
		return fmt.Sprintf("put: nearest neighbour at distance %.6g under threshold %.6g fed the tuner",
			sp.Distance, sp.Threshold)
	case telemetry.OutcomeError:
		return "error: " + sp.Err
	}
	return ""
}
