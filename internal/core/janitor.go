package core

import (
	"context"
	"time"
)

// Janitor clears expired entries in the background, mirroring the
// paper's management thread, which "maintains a queue that orders all
// cache entries by their expiration times ... will be waken up when the
// current head item in the queue reaches its expiration time" (§4.2).
//
// The cache also purges lazily on every put, and lookups filter expired
// entries at read time, so the janitor is an optimization that reclaims
// memory during idle or read-only periods, not a correctness
// requirement.
//
// NextExpiry and PurgeExpired take only the cache's admission/eviction
// lock (never the function table), which lookups never touch: reads
// filter expired entries lazily, and physical removal is left to puts
// and this janitor.
type Janitor struct {
	cache *Cache
	// Poll bounds how long the janitor sleeps when no expiry is pending.
	Poll time.Duration
}

// NewJanitor returns a janitor for the cache with a default idle poll of
// one second.
func NewJanitor(c *Cache) *Janitor {
	return &Janitor{cache: c, Poll: time.Second}
}

// Run blocks until ctx is cancelled, waking at each pending expiration
// time to purge expired entries.
func (j *Janitor) Run(ctx context.Context) {
	for {
		var wait time.Duration
		if at, ok := j.cache.NextExpiry(); ok {
			wait = at.Sub(j.cache.clk.Now())
			if wait < 0 {
				wait = 0
			}
		} else {
			wait = j.Poll
		}
		select {
		case <-ctx.Done():
			return
		case <-j.cache.clk.After(wait):
			j.cache.PurgeExpired()
		}
	}
}
