package core

import (
	"context"
	"time"
)

// Janitor clears expired entries in the background, mirroring the
// paper's management thread, which "maintains a queue that orders all
// cache entries by their expiration times ... will be waken up when the
// current head item in the queue reaches its expiration time" (§4.2).
//
// The cache also purges lazily on every put, and lookups filter expired
// entries at read time, so the janitor is an optimization that reclaims
// memory during idle or read-only periods, not a correctness
// requirement.
//
// NextExpiry and PurgeExpired take only the cache's admission/eviction
// lock (never the function table), which lookups never touch: reads
// filter expired entries lazily, and physical removal is left to puts
// and this janitor.
type Janitor struct {
	cache *Cache
	// Poll bounds how long the janitor sleeps when no expiry is pending.
	// Non-positive values are treated as the one-second default.
	Poll time.Duration
	// MinWait floors every sleep. Without it, an expiry that is already
	// due but cannot be collected — its entry pinned by an in-flight
	// lookup's expiry-filtering window, or the head heap item already
	// purged lazily by a put while NextExpiry still reports it — clamps
	// the computed wait to zero and turns the loop into a hot spin:
	// clk.After(0) fires immediately, PurgeExpired finds nothing to do,
	// and the loop burns a core until the state changes. Non-positive
	// values are treated as the 10ms default.
	MinWait time.Duration
}

// Default backstops for Janitor's tunables; see the field docs.
const (
	defaultJanitorPoll    = time.Second
	defaultJanitorMinWait = 10 * time.Millisecond
)

// NewJanitor returns a janitor for the cache with a default idle poll of
// one second and a minimum sleep of 10ms.
func NewJanitor(c *Cache) *Janitor {
	return &Janitor{cache: c, Poll: defaultJanitorPoll, MinWait: defaultJanitorMinWait}
}

// Run blocks until ctx is cancelled, waking at each pending expiration
// time to purge expired entries. Every sleep is at least MinWait, so a
// due-but-uncollectable expiry backs off instead of hot-spinning.
func (j *Janitor) Run(ctx context.Context) {
	poll, minWait := j.Poll, j.MinWait
	if poll <= 0 {
		poll = defaultJanitorPoll
	}
	if minWait <= 0 {
		minWait = defaultJanitorMinWait
	}
	for {
		var wait time.Duration
		if at, ok := j.cache.NextExpiry(); ok {
			wait = at.Sub(j.cache.clk.Now())
		} else {
			wait = poll
		}
		if wait < minWait {
			wait = minWait
		}
		select {
		case <-ctx.Done():
			return
		case <-j.cache.clk.After(wait):
			j.cache.PurgeExpired()
		}
	}
}
