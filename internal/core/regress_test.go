package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/index"
	"repro/internal/vec"
)

// Regression tests for latent bugs fixed alongside the sharded-locking
// rework. Each test documents the pre-fix failure mode.

// TestRegisterFunctionAtomicity: a RegisterFunction call with an invalid
// spec must leave no partial state. Previously the function table was
// mutated spec by spec, so an error midway left earlier specs registered
// (and for a brand-new function, the function itself).
func TestRegisterFunctionAtomicity(t *testing.T) {
	c := New(Config{DisableDropout: true})
	bad := KeyTypeSpec{Name: "bad", Index: index.Kind("bogus")}

	// A failed first registration must not create the function.
	if err := c.RegisterFunction("g", KeyTypeSpec{Name: "a", Dim: 1}, bad); err == nil {
		t.Fatal("registration with invalid index kind succeeded")
	}
	_, err := c.Put("g", PutRequest{Keys: map[string]vec.Vector{"a": {1}}, Value: 1})
	if !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("partially registered function survived a failed RegisterFunction: err=%v", err)
	}

	// A failed re-registration must not add any of the new key types...
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "a", Dim: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceThreshold("f", "a", 7.5); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "b", Dim: 1}, bad); err == nil {
		t.Fatal("re-registration with invalid index kind succeeded")
	}
	if _, err := c.Lookup("f", "b", vec.Vector{1}); !errors.Is(err, ErrUnknownKeyType) {
		t.Errorf("failed re-registration leaked key type %q: err=%v", "b", err)
	}
	// ...and must not have touched the existing tuners.
	ts, err := c.TunerStats("f", "a")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Threshold != 7.5 || !ts.Active {
		t.Errorf("failed re-registration disturbed tuner state: %+v", ts)
	}
}

// TestExpiryHeapBoundedUnderChurn: entries removed by eviction used to
// leave their expiry-heap items behind until the (distant) TTL arrived,
// so a small cache under churn grew an unbounded heap. Stale items are
// now counted and the heap compacted once they outnumber live entries.
func TestExpiryHeapBoundedUnderChurn(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := New(Config{Clock: clk, MaxEntries: 4, DisableDropout: true})
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k", Dim: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		_, err := c.Put("f", PutRequest{
			Keys:  map[string]vec.Vector{"k": {float64(i)}},
			Value: i,
			TTL:   time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 4 {
		t.Fatalf("Len = %d, want <= 4", n)
	}
	// live <= 4 plus at most max(expiryCompactMin, live) stale items
	// before compaction kicks in.
	if n := c.expiryLen(); n > 4+expiryCompactMin {
		t.Errorf("expiry heap holds %d items for <=4 live entries; stale items leaked", n)
	}
}

// TestEmptyKeyRejected: a zero-dimension key used to crash the KD-tree
// (divide by zero choosing the split axis) and was silently accepted by
// the other index kinds. Now Put rejects it up front with a typed error
// for every index kind.
func TestEmptyKeyRejected(t *testing.T) {
	kinds := []index.Kind{index.KindLinear, index.KindKDTree, index.KindLSH, index.KindTreeMap, index.KindHash}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			c := New(Config{DisableDropout: true})
			if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k", Index: kind, Dim: 2}); err != nil {
				t.Fatal(err)
			}
			_, err := c.Put("f", PutRequest{Keys: map[string]vec.Vector{"k": {}}, Value: 1})
			if !errors.Is(err, ErrEmptyKey) {
				t.Errorf("Put with empty key: err = %v, want ErrEmptyKey", err)
			}
			// An empty key produced by an extractor is caught too.
			if err := c.RegisterFunction("g", KeyTypeSpec{
				Name: "k", Index: kind, Dim: 2,
				Extract: func(any) (vec.Vector, error) { return vec.Vector{}, nil },
			}); err != nil {
				t.Fatal(err)
			}
			_, err = c.Put("g", PutRequest{Raw: "x", Value: 1})
			if !errors.Is(err, ErrEmptyKey) {
				t.Errorf("Put with empty extracted key: err = %v, want ErrEmptyKey", err)
			}
		})
	}
}

// TestConfigNormalization: out-of-range settings are clamped instead of
// producing undefined behaviour (dropout probabilities above 1, negative
// capacities, negative LookupK).
func TestConfigNormalization(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want func(Config) error
	}{
		{"dropout above 1 clamps", Config{DropoutRate: 1.5}, func(c Config) error {
			if c.DropoutRate != 1 {
				return fmt.Errorf("DropoutRate = %v, want 1", c.DropoutRate)
			}
			return nil
		}},
		{"dropout zero means default", Config{}, func(c Config) error {
			if c.DropoutRate != DefaultDropoutRate {
				return fmt.Errorf("DropoutRate = %v, want %v", c.DropoutRate, DefaultDropoutRate)
			}
			return nil
		}},
		{"disable dropout wins", Config{DropoutRate: 0.5, DisableDropout: true}, func(c Config) error {
			if c.DropoutRate != 0 {
				return fmt.Errorf("DropoutRate = %v, want 0", c.DropoutRate)
			}
			return nil
		}},
		{"negative capacities mean unlimited", Config{MaxEntries: -3, MaxBytes: -1}, func(c Config) error {
			if c.MaxEntries != 0 || c.MaxBytes != 0 {
				return fmt.Errorf("MaxEntries=%d MaxBytes=%d, want 0, 0", c.MaxEntries, c.MaxBytes)
			}
			return nil
		}},
		{"negative LookupK means default", Config{LookupK: -4}, func(c Config) error {
			if c.LookupK != 0 {
				return fmt.Errorf("LookupK = %d, want 0", c.LookupK)
			}
			return nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.in)
			if err := tc.want(c.EffectiveConfig()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestNegativeLookupKWorks exercises a lookup under a negative LookupK,
// which used to reach the kNN path with a nonsensical k.
func TestNegativeLookupKWorks(t *testing.T) {
	c := New(Config{LookupK: -2, DisableDropout: true})
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k", Dim: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("f", PutRequest{Keys: map[string]vec.Vector{"k": {1}}, Value: 42}); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceThreshold("f", "k", 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := c.Lookup("f", "k", vec.Vector{1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Value != 42 {
		t.Errorf("lookup under negative LookupK: hit=%v value=%v", res.Hit, res.Value)
	}
}
