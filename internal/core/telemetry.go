package core

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/telemetry"
)

// Telemetry integration. The cache keeps its per-(function, key type)
// lookup counters and per-function put counters unconditionally — they
// replace the old global counters as the source of truth for Stats(),
// so the hot path performs the same number of atomic adds whether or
// not telemetry is attached. Attaching a *telemetry.Telemetry via
// Config.Telemetry adds, per lookup, a sampled latency-histogram
// observation (1-in-4: a monotonic clock read plus two atomic adds,
// amortized) and, on selected outcomes, a bounded ring-buffer trace
// record; everything exported to the metric registry is func-backed
// (Counter.SetFunc / Gauge.SetFunc) reading the same atomics the cache
// already maintains, so scrapes never double the bookkeeping.

// ktCounters is the per-(function, key type) lookup outcome series.
// Unlike the legacy global counters, misses here EXCLUDE dropouts, so
// hits + misses + dropouts == lookups holds exactly per series;
// Stats() re-adds dropouts to preserve the historical "a dropout is
// also a miss" semantics of Stats.Misses.
type ktCounters struct {
	hits     atomic.Int64
	misses   atomic.Int64
	dropouts atomic.Int64
}

// fnCounters is the per-function write-path series. It is held by
// pointer on functionCache and carried across copy-on-write
// re-registration, so counts survive RegisterFunction calls.
type fnCounters struct {
	puts atomic.Int64
}

// since measures elapsed time from t, using the monotonic fast path
// when the cache runs on the wall clock. time.Since reads only the
// monotonic counter; going through the clock interface would pay a
// dynamic dispatch plus a full wall+monotonic timestamp on every
// observed lookup.
func (c *Cache) since(t time.Time) time.Duration {
	if c.realClk {
		return time.Since(t)
	}
	return c.clk.Now().Sub(t)
}

// hitTraceSampleMask samples hit events into the tracer 1-in-64: hits
// are the highest-rate outcome in a healthy cache and tracing each one
// would make the tracer's ring cursor a global contention point on the
// lookup path. Misses, dropouts, evictions, and expirations are traced
// unsampled — they are the events worth debugging and are rare by
// comparison.
const hitTraceSampleMask = 63

// latSampleMask samples latency observations 1-in-4. An observation
// needs an end-of-lookup monotonic clock read (~35ns) plus a histogram
// update, which together would bust the subsystem's 5% overhead budget
// on a sub-microsecond lookup if paid every time; sampling on the
// outcome counter's post-increment value costs no extra atomics,
// samples hits and misses uniformly (quantiles stay unbiased), and
// keeps the histogram count an exact function of the series counters:
// count == hits/(mask+1) + misses/(mask+1), integer division.
const latSampleMask = 3

// telemetryVecs caches the metric families the cache registers, so
// RegisterFunction can mint per-(function, key type) series without
// re-resolving names.
type telemetryVecs struct {
	lookups    *telemetry.CounterVec
	latency    *telemetry.HistogramVec
	threshold  *telemetry.GaugeVec
	idxQueries *telemetry.CounterVec
	idxProbes  *telemetry.CounterVec
	puts       *telemetry.CounterVec
}

// initTelemetry registers the cache's metric families and global
// gauges with the attached registry. Called once from New; c is fully
// constructed except for functions (none registered yet).
func (c *Cache) initTelemetry() {
	r := c.tel.Registry
	c.vecs = &telemetryVecs{
		lookups: r.CounterVec("potluck_lookups_total",
			"Lookup outcomes by function, key type, and result (hit, miss, dropout).",
			"function", "keytype", "result"),
		latency: r.HistogramVec("potluck_lookup_latency_seconds",
			"End-to-end Lookup latency, sampled 1-in-4 (dropouts excluded).",
			"function", "keytype"),
		threshold: r.GaugeVec("potluck_tuner_threshold",
			"Live similarity threshold maintained by Algorithm 1.",
			"function", "keytype"),
		idxQueries: r.CounterVec("potluck_index_queries_total",
			"Nearest-neighbour queries answered by the key index.",
			"function", "keytype", "kind"),
		idxProbes: r.CounterVec("potluck_index_probes_total",
			"Entries examined by the key index answering queries.",
			"function", "keytype", "kind"),
		puts: r.CounterVec("potluck_puts_total",
			"Accepted cache insertions by function.",
			"function"),
	}
	r.Gauge("potluck_cache_entries", "Live cache entries.").
		SetFunc(func() float64 { return float64(c.count.Load()) })
	r.Gauge("potluck_cache_bytes", "Total size of live entries in bytes.").
		SetFunc(func() float64 { return float64(c.bytes.Load()) })
	r.Counter("potluck_evictions_total", "Entries evicted by the replacement policy.").
		SetFunc(c.ctr.evictions.Load)
	r.Counter("potluck_expirations_total", "Entries removed at TTL expiry.").
		SetFunc(c.ctr.expirations.Load)
	r.Counter("potluck_invalidations_total", "Entries removed by explicit invalidation.").
		SetFunc(c.ctr.invalidations.Load)
	r.Counter("potluck_rejected_puts_total", "Puts rejected by the reputation system.").
		SetFunc(c.ctr.rejectedPuts.Load)
	r.Gauge("potluck_saved_compute_seconds", "Total computation time hits saved applications.").
		SetFunc(func() float64 { return float64(c.ctr.savedCompute.Load()) / 1e9 })
}

// wireFunctionTelemetry mints the func-backed metric series for a
// function and its newly added key indices. ki.idx is assigned once at
// construction and never replaced, so reading its atomic probe
// counters from a scrape needs no lock.
func (c *Cache) wireFunctionTelemetry(fn string, stats *fnCounters, added []*keyIndex) {
	if c.tel == nil {
		return
	}
	c.vecs.puts.With(fn).SetFunc(stats.puts.Load)
	for _, ki := range added {
		ki := ki
		kt := ki.spec.Name
		c.vecs.lookups.With(fn, kt, "hit").SetFunc(ki.ctr.hits.Load)
		c.vecs.lookups.With(fn, kt, "miss").SetFunc(ki.ctr.misses.Load)
		c.vecs.lookups.With(fn, kt, "dropout").SetFunc(ki.ctr.dropouts.Load)
		c.vecs.threshold.With(fn, kt).SetFunc(ki.tuner.Threshold)
		kind := string(ki.spec.Index)
		c.vecs.idxQueries.With(fn, kt, kind).SetFunc(func() int64 { return ki.idx.ProbeStats().Queries })
		c.vecs.idxProbes.With(fn, kt, kind).SetFunc(func() int64 { return ki.idx.ProbeStats().Probes })
		ki.lat = c.vecs.latency.With(fn, kt)
	}
}

// KeyTypeStats is a point-in-time snapshot of one (function, key type)
// metric series.
type KeyTypeStats struct {
	KeyType   string           `json:"keyType"`
	IndexKind index.Kind       `json:"indexKind"`
	IndexLen  int              `json:"indexLen"`
	Hits      int64            `json:"hits"`
	Misses    int64            `json:"misses"` // excludes dropouts
	Dropouts  int64            `json:"dropouts"`
	Threshold float64          `json:"threshold"`
	Probes    index.ProbeStats `json:"probes"`
	// Latency summarizes the lookup-latency histogram (observations
	// sampled 1-in-4, see latSampleMask); nil when the cache runs
	// without telemetry attached.
	Latency *telemetry.LatencySummary `json:"latency,omitempty"`
}

// FunctionStats is a point-in-time snapshot of one function's metric
// series across its key types.
type FunctionStats struct {
	Function string         `json:"function"`
	Puts     int64          `json:"puts"`
	KeyTypes []KeyTypeStats `json:"keyTypes"`
}

// FunctionStats snapshots every registered function's per-key-type
// series, sorted by function name with key types in registration
// order. The per-series counts sum to the corresponding Stats()
// fields (Stats.Misses additionally folds dropouts in, preserving its
// historical semantics).
func (c *Cache) FunctionStats() []FunctionStats {
	c.funcsMu.RLock()
	fcs := make([]*functionCache, 0, len(c.funcs))
	for _, fc := range c.funcs {
		fcs = append(fcs, fc)
	}
	c.funcsMu.RUnlock()
	sort.Slice(fcs, func(i, j int) bool { return fcs[i].name < fcs[j].name })

	out := make([]FunctionStats, 0, len(fcs))
	for _, fc := range fcs {
		fs := FunctionStats{
			Function: fc.name,
			Puts:     fc.stats.puts.Load(),
			KeyTypes: make([]KeyTypeStats, 0, len(fc.kis)),
		}
		for i, ki := range fc.kis {
			ki.mu.RLock()
			n := ki.idx.Len()
			ki.mu.RUnlock()
			ks := KeyTypeStats{
				KeyType:   fc.order[i],
				IndexKind: ki.spec.Index,
				IndexLen:  n,
				Hits:      ki.ctr.hits.Load(),
				Misses:    ki.ctr.misses.Load(),
				Dropouts:  ki.ctr.dropouts.Load(),
				Threshold: ki.tuner.Threshold(),
				Probes:    ki.idx.ProbeStats(),
			}
			if ki.lat != nil {
				sum := ki.lat.Snapshot().Summary()
				ks.Latency = &sum
			}
			fs.KeyTypes = append(fs.KeyTypes, ks)
		}
		out = append(out, fs)
	}
	return out
}
