package core

import (
	"repro/internal/vec"
)

// Refiner adjusts a cached result to the exact current input, the
// paper's post-lookup incremental computation ("the applications could
// exploit optimization opportunities by adding post-lookup logic to
// perform incremental computation", §7). The canonical instance is the
// AR fast path: the cached frame rendered at a nearby pose is warped to
// the current pose instead of used verbatim.
//
// cachedValue is the stored result, cachedKey the key it was stored
// under, and queryKey the current lookup key; the return value replaces
// the cached result in the LookupResult.
type Refiner func(cachedValue any, cachedKey, queryKey vec.Vector) any

// LookupRefined behaves like Lookup but passes a hit through the refiner
// with both keys, so the application receives a result adjusted to its
// exact input. The cache entry itself is not modified; refinement output
// is per-lookup. The refiner runs inside the lookup, so traced lookups
// time it as its own span stage.
func (c *Cache) LookupRefined(fn, keyType string, key vec.Vector, refine Refiner) (LookupResult, error) {
	return c.lookup(fn, keyType, key, LookupOptions{Refine: refine})
}
