package core

import (
	"repro/internal/vec"
)

// Refiner adjusts a cached result to the exact current input, the
// paper's post-lookup incremental computation ("the applications could
// exploit optimization opportunities by adding post-lookup logic to
// perform incremental computation", §7). The canonical instance is the
// AR fast path: the cached frame rendered at a nearby pose is warped to
// the current pose instead of used verbatim.
//
// cachedValue is the stored result, cachedKey the key it was stored
// under, and queryKey the current lookup key; the return value replaces
// the cached result in the LookupResult.
type Refiner func(cachedValue any, cachedKey, queryKey vec.Vector) any

// LookupRefined behaves like Lookup but passes a hit through the refiner
// with both keys, so the application receives a result adjusted to its
// exact input. The cache entry itself is not modified; refinement output
// is per-lookup.
func (c *Cache) LookupRefined(fn, keyType string, key vec.Vector, refine Refiner) (LookupResult, error) {
	c.mu.Lock()
	now := c.clk.Now()
	c.purgeExpiredLocked(now)
	ki, err := c.keyIndexLocked(fn, keyType)
	if err != nil {
		c.mu.Unlock()
		return LookupResult{}, err
	}
	res := LookupResult{Distance: -1, Threshold: ki.tuner.Threshold(), MissedAt: now}
	if c.cfg.DropoutRate > 0 && c.rng.Float64() < c.cfg.DropoutRate {
		c.stats.Dropouts++
		c.stats.Misses++
		res.Dropout = true
		c.mu.Unlock()
		return res, nil
	}
	e, hitKey, dist, ok := c.selectHitLocked(ki, key, res.Threshold)
	res.Distance = dist
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return res, nil
	}
	e.accessCount++
	e.lastAccess = now
	c.stats.Hits++
	c.stats.SavedCompute += e.cost
	res.Hit = true
	res.Value = e.value
	res.Entry = e.snapshot()
	cachedKey := hitKey.Clone()
	c.mu.Unlock()

	// Refinement runs outside the lock: it may be arbitrarily expensive
	// application logic (warping an image, adjusting coordinates, ...).
	if refine != nil {
		res.Value = refine(res.Value, cachedKey, key)
	}
	return res, nil
}
