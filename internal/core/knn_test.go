package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

func newKCache(t *testing.T, k int) *Cache {
	t.Helper()
	return New(Config{
		Clock:          clock.NewVirtual(time.Unix(0, 0)),
		DisableDropout: true,
		Tuner:          TunerConfig{WarmupZ: 1},
		LookupK:        k,
	})
}

func TestLookupKMajorityOverridesNearest(t *testing.T) {
	c := newKCache(t, 3)
	registerScalar(t, c, "f")
	// The closest entry is an outlier label; the two next-closest agree.
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.0}}, Value: "outlier"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.3}}, Value: "common"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.4}}, Value: "common"})
	c.ForceThreshold("f", "scalar", 1.0)
	res, err := c.Lookup("f", "scalar", vec.Vector{1.05})
	if err != nil || !res.Hit {
		t.Fatalf("lookup: %+v, %v", res, err)
	}
	if res.Value != "common" {
		t.Errorf("k=3 majority = %v, want common", res.Value)
	}
	// Distance still reports the true nearest neighbour.
	if res.Distance > 0.06 {
		t.Errorf("Distance = %v, want ~0.05 (the nearest)", res.Distance)
	}
}

func TestLookupKOneMatchesNearest(t *testing.T) {
	c := newKCache(t, 1)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.0}}, Value: "a"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.3}}, Value: "b"})
	c.ForceThreshold("f", "scalar", 1.0)
	res, _ := c.Lookup("f", "scalar", vec.Vector{1.05})
	if !res.Hit || res.Value != "a" {
		t.Errorf("k=1 = %+v, want nearest value a", res)
	}
}

func TestLookupKRespectsThreshold(t *testing.T) {
	c := newKCache(t, 3)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.0}}, Value: "a"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {5.0}}, Value: "b"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {5.1}}, Value: "b"})
	c.ForceThreshold("f", "scalar", 0.5)
	// Only "a" is within threshold; the b-majority beyond it must not win.
	res, _ := c.Lookup("f", "scalar", vec.Vector{1.1})
	if !res.Hit || res.Value != "a" {
		t.Errorf("threshold-filtered vote = %+v, want a", res)
	}
	// Nothing within threshold → miss even though neighbours exist.
	res, _ = c.Lookup("f", "scalar", vec.Vector{3.0})
	if res.Hit {
		t.Errorf("hit beyond threshold: %+v", res)
	}
}

func TestLookupKTieBreaksToCloserGroup(t *testing.T) {
	c := newKCache(t, 4)
	registerScalar(t, c, "f")
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.0}}, Value: "near"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.2}}, Value: "near"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.6}}, Value: "far"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"scalar": {1.8}}, Value: "far"})
	c.ForceThreshold("f", "scalar", 2.0)
	res, _ := c.Lookup("f", "scalar", vec.Vector{0.9})
	if !res.Hit || res.Value != "near" {
		t.Errorf("tie vote = %+v, want the closer group", res)
	}
}

func TestLookupKEmptyIndex(t *testing.T) {
	c := newKCache(t, 3)
	registerScalar(t, c, "f")
	res, err := c.Lookup("f", "scalar", vec.Vector{1})
	if err != nil || res.Hit || res.Distance != -1 {
		t.Errorf("empty-index kNN lookup = %+v, %v", res, err)
	}
}
