package core

import (
	"fmt"
	"time"

	"repro/internal/index"
	"repro/internal/vec"
)

// Durability layer (ROADMAP item 2). The cache itself stays a pure
// in-memory structure; durability is a set of hooks behind the Store
// interface. When Config.Store is nil — the default — the hooks compile
// down to one nil check on the write paths and nothing at all on the
// lookup path, so the in-memory configuration pays zero cost. When a
// store is attached, the cache logs every mutation that must survive a
// restart:
//
//   - LogRegister on function registration (under funcsMu, so a put
//     that resolved the function always follows its registration in
//     the log),
//   - LogPut on admission (under admitMu, so a racing eviction of the
//     brand-new entry cannot write its delete record first and
//     resurrect the entry at replay),
//   - LogDelete on eviction and invalidation (under admitMu, where all
//     such removals already happen).
//
// Expirations are deliberately NOT logged: every persisted record
// carries its absolute expiry deadline, and recovery drops records
// whose deadline has passed — including entries that expired while the
// process was down. The store calls CaptureState to write snapshots and
// Restore to rebuild a cache from a recovered state; see internal/store
// for the segment-log implementation.

// Store receives the cache's durability events. Implementations
// synchronize internally and must never call back into the cache: the
// hooks run under cache locks (funcsMu or admitMu), making the store a
// leaf in the documented lock hierarchy. Hook failures are the store's
// to absorb (count, log, degrade) — the cache treats every append as
// fire-and-forget so a sick disk degrades durability, not serving.
type Store interface {
	// LogRegister records a RegisterFunction call: the function name and
	// its normalized key-type specs (duplicates removed, defaults
	// applied, metrics and index kinds by name).
	LogRegister(fn string, keyTypes []StoreKeyType)
	// LogPut records an admitted entry.
	LogPut(rec StoreEntry)
	// LogDelete records a removal before the entry's deadline (eviction
	// or invalidation). Expirations are not logged.
	LogDelete(id uint64)
}

// StoreKeyType is the serializable form of a KeyTypeSpec: extractors
// cannot cross a process boundary, and metrics travel by name (only the
// built-in named metrics survive a restart, like ReadSnapshot).
type StoreKeyType struct {
	Name   string
	Metric string
	Index  string
	Dim    int
}

// StoreKey pairs one key type with the entry's key under it.
type StoreKey struct {
	KeyType string
	Key     vec.Vector
}

// StoreEntry is the durable form of one cache entry. ID is the live
// entry ID — recovery preserves it, and Cache.Restore resumes ID
// allocation past the largest restored ID so log replay across restarts
// never aliases an old record to a new entry. All times are absolute
// UnixNano: recovery compares ExpiresAtNanos against the boot clock, so
// entries that expired while the process was down are dropped, not
// resurrected with a rebased TTL.
type StoreEntry struct {
	ID              uint64
	Function        string
	App             string
	CostNanos       int64
	Size            int
	AccessCount     int64
	InsertedAtNanos int64
	LastAccessNanos int64
	ExpiresAtNanos  int64
	Keys            []StoreKey
	Value           any
}

// DurableKeyType is one key type's full durable state: its spec plus
// the tuner and the lookup-outcome counters, so a restart neither
// re-learns thresholds from scratch nor zeroes the hit-rate history.
type DurableKeyType struct {
	StoreKeyType
	Tuner    TunerState
	Hits     int64
	Misses   int64
	Dropouts int64
}

// DurableFunction is one function's durable state.
type DurableFunction struct {
	Name     string
	Puts     int64
	KeyTypes []DurableKeyType
}

// DurableState is a point-in-time capture of everything the cache needs
// to survive a restart: function tables with tuner state and counters,
// live entries, and the ID watermark. It is the unit snapshots encode
// and recovery rebuilds.
type DurableState struct {
	CapturedAtNanos int64
	MaxID           uint64
	Functions       []DurableFunction
	Entries         []StoreEntry
	// Skipped counts entries left out of the capture because their
	// value type cannot be persisted (see serializableValue).
	Skipped int
}

// CaptureState captures the cache's durable state under the documented
// lock order (funcsMu read lock, per-key-index read locks, never
// admitMu), so concurrent lookups proceed and writers wait at most a
// read share. Expired entries are purged first and excluded, so a
// snapshot never embalms a dead entry.
func (c *Cache) CaptureState() *DurableState {
	now := c.clk.Now()
	c.maybePurgeExpired(now)
	state := &DurableState{CapturedAtNanos: now.UnixNano(), MaxID: c.nextID.Load()}

	c.funcsMu.RLock()
	entryFuncs := make(map[ID]string)
	entryKeys := make(map[ID][]StoreKey)
	for fnName, fc := range c.funcs {
		df := DurableFunction{Name: fnName, Puts: fc.stats.puts.Load()}
		for i, ktName := range fc.order {
			ki := fc.kis[i]
			df.KeyTypes = append(df.KeyTypes, DurableKeyType{
				StoreKeyType: StoreKeyType{
					Name:   ktName,
					Metric: ki.spec.Metric.Name(),
					Index:  string(ki.spec.Index),
					Dim:    ki.spec.Dim,
				},
				Tuner:    ki.tuner.ExportState(),
				Hits:     ki.ctr.hits.Load(),
				Misses:   ki.ctr.misses.Load(),
				Dropouts: ki.ctr.dropouts.Load(),
			})
			ki.mu.RLock()
			for id, key := range ki.members {
				entryFuncs[id] = fnName
				entryKeys[id] = append(entryKeys[id], StoreKey{KeyType: ktName, Key: key})
			}
			ki.mu.RUnlock()
		}
		state.Functions = append(state.Functions, df)
	}
	c.entries.forEach(func(e *entry) bool {
		if !e.expiresAt.After(now) {
			return true // expired between purge and walk; recovery would drop it anyway
		}
		if !serializableValue(e.value) {
			state.Skipped++
			return true
		}
		state.Entries = append(state.Entries, StoreEntry{
			ID:              uint64(e.id),
			Function:        entryFuncs[e.id],
			App:             e.app,
			CostNanos:       int64(e.cost),
			Size:            e.size,
			AccessCount:     e.accessCount.Load(),
			InsertedAtNanos: e.insertedAt.UnixNano(),
			LastAccessNanos: e.lastAccess.Load(),
			ExpiresAtNanos:  e.expiresAt.UnixNano(),
			Keys:            entryKeys[e.id],
			Value:           e.value,
		})
		return true
	})
	c.funcsMu.RUnlock()
	return state
}

// RestoreStats reports what a Restore covered.
type RestoreStats struct {
	// Functions is the number of function tables registered.
	Functions int
	// Entries is the number of entries re-admitted.
	Entries int
	// Expired counts recovered entries dropped because their absolute
	// deadline passed (typically while the process was down).
	Expired int
	// Skipped counts entries dropped for other reasons: unknown
	// function, no usable key, or an ID already live in the cache.
	Skipped int
}

// Restore rebuilds the cache from a recovered durable state: functions
// and key types are registered (named built-in metrics, no extractors),
// tuner state and counters restored exactly as captured, and unexpired
// entries re-admitted through the normal admission structures — index
// insert, then entry-table publish, then expiry enqueue — under their
// ORIGINAL IDs, with one capacity-enforcement pass at the end. Entries
// whose absolute deadline has passed are dropped here, never admitted,
// so a lookup can never return an expired recovered entry.
//
// Replayed entries do not feed the threshold tuners: the tuner state in
// the capture is authoritative (re-feeding would double-count the
// observations it already absorbed). Restore is intended for boot, but
// may overlap live traffic; while it runs, registrations and entry
// admissions are not re-logged to the attached store (their records are
// what is being replayed).
func (c *Cache) Restore(state *DurableState) (RestoreStats, error) {
	var stats RestoreStats
	if state == nil {
		return stats, nil
	}
	c.restoring.Store(true)
	defer c.restoring.Store(false)

	for _, df := range state.Functions {
		specs := make([]KeyTypeSpec, 0, len(df.KeyTypes))
		for _, kt := range df.KeyTypes {
			metric, err := vec.MetricByName(kt.Metric)
			if err != nil {
				return stats, fmt.Errorf("core: restore function %q: %w", df.Name, err)
			}
			specs = append(specs, KeyTypeSpec{
				Name:   kt.Name,
				Metric: metric,
				Index:  index.Kind(kt.Index),
				Dim:    kt.Dim,
			})
		}
		if err := c.RegisterFunction(df.Name, specs...); err != nil {
			return stats, err
		}
		fc, err := c.functionIndexes(df.Name)
		if err != nil {
			return stats, err
		}
		fc.stats.puts.Store(df.Puts)
		for _, kt := range df.KeyTypes {
			ki := fc.keyTypes[kt.Name]
			if ki == nil {
				continue
			}
			ki.tuner.RestoreState(kt.Tuner)
			ki.ctr.hits.Store(kt.Hits)
			ki.ctr.misses.Store(kt.Misses)
			ki.ctr.dropouts.Store(kt.Dropouts)
		}
		stats.Functions++
	}

	if max := state.MaxID; max > c.nextID.Load() {
		c.nextID.Store(max)
	}
	now := c.clk.Now()
	for i := range state.Entries {
		switch c.restoreEntry(&state.Entries[i], now) {
		case restoredOK:
			stats.Entries++
		case restoredExpired:
			stats.Expired++
		default:
			stats.Skipped++
		}
	}
	c.admitMu.Lock()
	c.evictLocked(now, 0)
	c.admitMu.Unlock()
	return stats, nil
}

type restoreOutcome int

const (
	restoredOK restoreOutcome = iota
	restoredExpired
	restoredSkipped
)

// restoreEntry re-admits one recovered entry under its original ID,
// following Put's publication order (index insert → entry-table publish
// → expiry enqueue) so a restore can overlap live traffic.
func (c *Cache) restoreEntry(rec *StoreEntry, now time.Time) restoreOutcome {
	if rec.ExpiresAtNanos <= now.UnixNano() {
		return restoredExpired
	}
	if rec.Function == "" || len(rec.Keys) == 0 {
		return restoredSkipped
	}
	id := ID(rec.ID)
	if rec.ID > c.nextID.Load() {
		// A tail record past the snapshot's watermark; keep allocation
		// ahead of every ID the log has ever issued.
		c.nextID.Store(rec.ID)
	}
	if c.entries.load(id) != nil {
		return restoredSkipped // ID already live (double restore)
	}
	c.funcsMu.RLock()
	fc := c.funcs[rec.Function]
	c.funcsMu.RUnlock()
	if fc == nil {
		return restoredSkipped
	}
	e := &entry{
		id:         id,
		value:      rec.Value,
		cost:       time.Duration(rec.CostNanos),
		size:       rec.Size,
		app:        rec.App,
		insertedAt: timeFromNanos(rec.InsertedAtNanos, now),
		expiresAt:  time.Unix(0, rec.ExpiresAtNanos),
	}
	if rec.AccessCount > 0 {
		e.accessCount.Store(rec.AccessCount)
	} else {
		e.accessCount.Store(1)
	}
	if rec.LastAccessNanos > 0 {
		e.lastAccess.Store(rec.LastAccessNanos)
	} else {
		e.lastAccess.Store(now.UnixNano())
	}
	for _, sk := range rec.Keys {
		ki := fc.keyTypes[sk.KeyType]
		if ki == nil || len(sk.Key) == 0 {
			continue
		}
		ki.mu.Lock()
		if err := ki.idx.Insert(index.ID(id), sk.Key); err == nil {
			ki.members[id] = sk.Key
			e.owners = append(e.owners, ki)
		}
		ki.mu.Unlock()
	}
	if len(e.owners) == 0 {
		return restoredSkipped
	}
	c.entries.store(e)
	c.count.Add(1)
	c.bytes.Add(int64(e.size))
	c.admitMu.Lock()
	c.expiry.push(expiryItem{at: e.expiresAt, id: id})
	c.updateNextExpiryLocked()
	c.admitMu.Unlock()
	return restoredOK
}

// timeFromNanos converts a recorded UnixNano, falling back to now for
// records from before the field existed.
func timeFromNanos(ns int64, now time.Time) time.Time {
	if ns == 0 {
		return now
	}
	return time.Unix(0, ns)
}
