package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

func TestReputationScoring(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	if got := r.Score("fresh"); got != 1.0 {
		t.Errorf("initial score = %v, want 1", got)
	}
	r.Observe("app", true, false) // pollution signal
	if got := r.Score("app"); got != 0.8 {
		t.Errorf("score after penalty = %v, want 0.8", got)
	}
	r.Observe("app", false, true) // confirmation
	if got := r.Score("app"); got != 0.81 {
		t.Errorf("score after reward = %v, want 0.81", got)
	}
	r.Observe("", true, false) // ignored
	if got := r.Score(""); got != 1.0 {
		t.Errorf("empty app scored: %v", got)
	}
}

func TestReputationRewardCapped(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	for i := 0; i < 50; i++ {
		r.Observe("app", false, true)
	}
	if got := r.Score("app"); got > 1.0 {
		t.Errorf("score exceeded initial: %v", got)
	}
}

func TestReputationBarring(t *testing.T) {
	r := NewReputation(ReputationConfig{Penalty: 0.5, BarThreshold: 0.2})
	r.Observe("evil", true, false)
	if r.Barred("evil") {
		t.Fatal("barred too early")
	}
	r.Observe("evil", true, false) // score 0 ≤ 0.2
	if !r.Barred("evil") {
		t.Fatal("not barred at threshold")
	}
	r.Unbar("evil")
	if r.Barred("evil") || r.Score("evil") != 1.0 {
		t.Error("Unbar did not reinstate")
	}
	if r.Barred("") {
		t.Error("empty app reported barred")
	}
}

func TestReputationSnapshotOrdering(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	r.Observe("good", false, true)
	r.Observe("bad", true, false)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].App != "bad" {
		t.Errorf("snapshot = %+v, want bad first", snap)
	}
}

// TestCachePollutionDefense is the end-to-end failure-injection test: a
// malicious app floods the cache with wrong results; the dropout-driven
// tuning phase detects the mismatches, tanks its reputation, bars it,
// and purges its entries — the defence sketched in §3.5.
func TestCachePollutionDefense(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := New(Config{
		Clock:          clk,
		DisableDropout: true, // we drive recomputation explicitly
		Tuner:          TunerConfig{WarmupZ: 1},
		// Each detected mismatch also tightens the threshold, so only the
		// first couple of honest recomputations land inside it; the
		// penalty must bar the polluter within those observations.
		Reputation: &ReputationConfig{Penalty: 0.5, BarThreshold: 0.2},
	})
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	// Malicious app caches wrong results at many keys.
	for i := 0; i < 5; i++ {
		_, err := c.Put("f", PutRequest{
			Keys:  map[string]vec.Vector{"k": {float64(i)}},
			Value: "WRONG", App: "malware",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	c.ForceThreshold("f", "k", 0.5)
	// Honest recomputations near the polluted keys reveal mismatches.
	var barredAt int
	for i := 0; i < 5; i++ {
		_, err := c.Put("f", PutRequest{
			Keys:  map[string]vec.Vector{"k": {float64(i) + 0.1}},
			Value: "right", App: "honest",
		})
		if err != nil {
			t.Fatal(err)
		}
		if c.Reputation().Barred("malware") {
			barredAt = i + 1
			break
		}
	}
	if barredAt == 0 {
		t.Fatalf("malicious app never barred; scores: %+v", c.Reputation().Snapshot())
	}
	// Its entries are purged...
	for i := 0; i < 5; i++ {
		if res, _ := c.Lookup("f", "k", vec.Vector{float64(i)}); res.Hit && res.Value == "WRONG" {
			t.Errorf("polluted entry at key %d survived", i)
		}
	}
	// ...and further puts are rejected.
	if _, err := c.Put("f", PutRequest{
		Keys: map[string]vec.Vector{"k": {99}}, Value: "WRONG", App: "malware",
	}); err == nil {
		t.Error("barred app's put accepted")
	}
	if st := c.Stats(); st.RejectedPuts != 1 {
		t.Errorf("RejectedPuts = %d, want 1", st.RejectedPuts)
	}
}

func TestJanitorPurges(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := New(Config{Clock: clk, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	c.RegisterFunction("f", KeyTypeSpec{Name: "k"})
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"k": {1}}, Value: 1, TTL: time.Minute})
	// Drive the janitor's logic synchronously (Run loops on the clock;
	// here we emulate one wake-up).
	at, ok := c.NextExpiry()
	if !ok {
		t.Fatal("no pending expiry")
	}
	clk.Set(at)
	if n := c.PurgeExpired(); n != 1 {
		t.Errorf("purged %d, want 1", n)
	}
	if _, ok := c.NextExpiry(); ok {
		t.Error("expiry queue not drained")
	}
}
