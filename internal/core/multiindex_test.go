package core

import (
	"testing"
	"time"

	"repro/internal/vec"
)

// TestEvictionClearsAllIndices verifies the reference-counting contract:
// evicting an entry removes its keys from every index it was propagated
// to, and the value is freed exactly once.
func TestEvictionClearsAllIndices(t *testing.T) {
	c, _ := newTestCache(t, func(cfg *Config) { cfg.MaxEntries = 1 })
	err := c.RegisterFunction("f",
		KeyTypeSpec{Name: "a"},
		KeyTypeSpec{Name: "b"},
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("f", PutRequest{
		Keys:  map[string]vec.Vector{"a": {1}, "b": {10}},
		Value: "first", Cost: time.Millisecond, Size: 1,
	})
	c.Put("f", PutRequest{
		Keys:  map[string]vec.Vector{"a": {2}, "b": {20}},
		Value: "second", Cost: time.Hour, Size: 1,
	})
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	// The evicted entry must be gone from BOTH key types.
	if res, _ := c.Lookup("f", "a", vec.Vector{1}); res.Hit {
		t.Error("evicted entry still reachable via key type a")
	}
	if res, _ := c.Lookup("f", "b", vec.Vector{10}); res.Hit {
		t.Error("evicted entry still reachable via key type b")
	}
	// The survivor is reachable through both.
	if res, _ := c.Lookup("f", "a", vec.Vector{2}); !res.Hit {
		t.Error("survivor missing via key type a")
	}
	if res, _ := c.Lookup("f", "b", vec.Vector{20}); !res.Hit {
		t.Error("survivor missing via key type b")
	}
}

// TestExpiryClearsAllIndices mirrors the eviction test for TTL expiry.
func TestExpiryClearsAllIndices(t *testing.T) {
	c, clk := newTestCache(t)
	err := c.RegisterFunction("f",
		KeyTypeSpec{Name: "a"},
		KeyTypeSpec{Name: "b"},
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("f", PutRequest{
		Keys:  map[string]vec.Vector{"a": {1}, "b": {10}},
		Value: "v", TTL: time.Minute,
	})
	clk.Advance(2 * time.Minute)
	if res, _ := c.Lookup("f", "a", vec.Vector{1}); res.Hit {
		t.Error("expired entry reachable via a")
	}
	if res, _ := c.Lookup("f", "b", vec.Vector{10}); res.Hit {
		t.Error("expired entry reachable via b")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("Len=%d Bytes=%d after expiry", c.Len(), c.Bytes())
	}
}

// TestPartialKeyPut verifies that an entry inserted under only one of a
// function's key types is invisible to the others but fully managed
// (evictable, expirable).
func TestPartialKeyPut(t *testing.T) {
	c, _ := newTestCache(t)
	err := c.RegisterFunction("f",
		KeyTypeSpec{Name: "a"},
		KeyTypeSpec{Name: "b"},
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("f", PutRequest{Keys: map[string]vec.Vector{"a": {1}}, Value: "only-a"})
	if res, _ := c.Lookup("f", "a", vec.Vector{1}); !res.Hit {
		t.Error("miss under the provided key type")
	}
	if res, _ := c.Lookup("f", "b", vec.Vector{1}); res.Hit {
		t.Error("hit under a key type the put never supplied")
	}
}

// TestTunersIndependentPerKeyType verifies per-index threshold isolation
// (§3.7: "invoke the threshold tuning procedure per key index").
func TestTunersIndependentPerKeyType(t *testing.T) {
	c, _ := newTestCache(t)
	err := c.RegisterFunction("f",
		KeyTypeSpec{Name: "a"},
		KeyTypeSpec{Name: "b"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ForceThreshold("f", "a", 7); err != nil {
		t.Fatal(err)
	}
	sa, _ := c.TunerStats("f", "a")
	sb, _ := c.TunerStats("f", "b")
	if sa.Threshold != 7 || sb.Threshold != 0 {
		t.Errorf("thresholds a=%v b=%v, want 7 and 0", sa.Threshold, sb.Threshold)
	}
}
