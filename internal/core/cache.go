package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/index"
	"repro/internal/vec"
)

// Common errors returned by the cache.
var (
	// ErrUnknownFunction is returned when an operation names a function
	// that has not been registered.
	ErrUnknownFunction = errors.New("core: unknown function")
	// ErrUnknownKeyType is returned when an operation names a key type
	// that has not been registered for the function.
	ErrUnknownKeyType = errors.New("core: unknown key type")
	// ErrNoKey is returned by Put when no key could be produced for any
	// of the function's key types.
	ErrNoKey = errors.New("core: no key available for any registered key type")
	// ErrAppBarred is returned by Put when the reputation system has
	// barred the calling application for polluting the cache.
	ErrAppBarred = errors.New("core: application barred by reputation system")
)

// DefaultTTL is the paper's default entry validity period ("the timeout
// is currently set to be an hour", §3.6).
const DefaultTTL = time.Hour

// DefaultDropoutRate is the paper's random-dropout probability ("currently
// set to 0.1", §3.4).
const DefaultDropoutRate = 0.1

// Extractor converts a raw input (image, pose, audio segment, ...) into a
// feature-vector key. Applications may register custom extractors per key
// type (§4.2 "Support for custom key definition and matching").
type Extractor func(raw any) (vec.Vector, error)

// KeyTypeSpec describes one key type for a function: how keys are
// produced, compared, and indexed (§3.7).
type KeyTypeSpec struct {
	// Name identifies the key type, e.g. "colorhist" or "pose".
	Name string
	// Metric is the distance used by this key type's index. Defaults to
	// Euclidean.
	Metric vec.Metric
	// Index selects the index structure. Defaults to KD-tree.
	Index index.Kind
	// Dim is the expected key dimensionality (used to size LSH
	// projections; 0 lets the index learn it from the first insert).
	Dim int
	// Extract, when non-nil, derives this key type's key from the raw
	// input carried by a Put, enabling cross-key-type propagation
	// (§3.7 "Cache insertion"). Key types without an extractor only
	// receive entries whose Put supplies the key explicitly.
	Extract Extractor
}

func (s KeyTypeSpec) withDefaults() KeyTypeSpec {
	if s.Metric == nil {
		s.Metric = vec.EuclideanMetric{}
	}
	if s.Index == "" {
		s.Index = index.KindKDTree
	}
	return s
}

// Config configures a Cache. The zero value gives the paper's defaults:
// unlimited capacity, 1-hour TTL, 0.1 dropout, importance eviction,
// Algorithm 1 with k=4, γ=0.8, z=100.
type Config struct {
	// Clock supplies time; defaults to the real clock. Experiments
	// inject a virtual clock.
	Clock clock.Clock
	// MaxEntries bounds the number of cached values (0 = unlimited).
	MaxEntries int
	// MaxBytes bounds the total entry size in bytes (0 = unlimited).
	MaxBytes int64
	// DefaultTTL is the validity period applied when a Put does not
	// specify one. Defaults to one hour.
	DefaultTTL time.Duration
	// DropoutRate is the probability that a lookup skips the cache
	// (§3.4). Defaults to 0.1; set DisableDropout for exactly zero.
	DropoutRate float64
	// DisableDropout turns off the random-dropout mechanism entirely.
	DisableDropout bool
	// Policy selects the replacement strategy; defaults to importance.
	Policy PolicyKind
	// Tuner configures Algorithm 1 (zero fields take paper defaults).
	Tuner TunerConfig
	// Seed makes dropout and random eviction deterministic.
	Seed int64
	// Equal compares cached values for the threshold tuner. Defaults to
	// reflect.DeepEqual.
	Equal func(a, b any) bool
	// LookupK is the k of the threshold-restricted k-nearest-neighbour
	// query (§3.4). The default 1 returns the nearest within-threshold
	// entry — the paper's choice ("this value provides the fastest
	// lookup time without sacrificing quality"). With k > 1, the
	// within-threshold neighbours vote by value equality and the
	// majority's closest representative is returned.
	LookupK int
	// Reputation enables the Credence-style reputation defence against
	// cache pollution (§3.5); nil disables it.
	Reputation *ReputationConfig
}

// Cache is the Potluck deduplication cache. Entries are organized first
// by function, then by key type, then by key (§4.2, Figure 5). Cache is
// safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	cfg    Config
	clk    clock.Clock
	policy Policy
	rng    *rand.Rand
	equal  func(a, b any) bool

	nextID  ID
	entries map[ID]*Entry
	funcs   map[string]*functionCache
	expiry  expiryHeap
	bytes   int64
	stats   Stats
	rep     *Reputation
}

type functionCache struct {
	name     string
	keyTypes map[string]*keyIndex
	order    []string // registration order, for deterministic iteration
}

type keyIndex struct {
	spec    KeyTypeSpec
	idx     index.Index
	tuner   *Tuner
	members map[ID]vec.Vector
}

// New constructs a cache from cfg. Invalid policy kinds panic; use
// NewPolicy to validate user input first.
func New(cfg Config) *Cache {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = DefaultTTL
	}
	if cfg.DropoutRate <= 0 && !cfg.DisableDropout {
		cfg.DropoutRate = DefaultDropoutRate
	}
	if cfg.DisableDropout {
		cfg.DropoutRate = 0
	}
	if cfg.Equal == nil {
		cfg.Equal = func(a, b any) bool { return reflect.DeepEqual(a, b) }
	}
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:     cfg,
		clk:     cfg.Clock,
		policy:  pol,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		equal:   cfg.Equal,
		entries: make(map[ID]*Entry),
		funcs:   make(map[string]*functionCache),
	}
	if cfg.Reputation != nil {
		c.rep = NewReputation(*cfg.Reputation)
	}
	return c
}

// RegisterFunction registers a function and its key types, creating one
// index per key type (§3.7). Registering an existing function adds any
// new key types and resets the thresholds of all its tuners, matching
// register()'s contract ("It also resets the input similarity
// threshold", §4.3). At least one key type is required.
func (c *Cache) RegisterFunction(fn string, keyTypes ...KeyTypeSpec) error {
	if fn == "" {
		return errors.New("core: empty function name")
	}
	if len(keyTypes) == 0 {
		return errors.New("core: at least one key type is required")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fc := c.funcs[fn]
	if fc == nil {
		fc = &functionCache{name: fn, keyTypes: make(map[string]*keyIndex)}
		c.funcs[fn] = fc
	}
	for _, spec := range keyTypes {
		spec = spec.withDefaults()
		if spec.Name == "" {
			return errors.New("core: key type with empty name")
		}
		if _, exists := fc.keyTypes[spec.Name]; exists {
			continue
		}
		idx, err := index.New(spec.Index, spec.Metric, spec.Dim)
		if err != nil {
			return fmt.Errorf("core: key type %q: %w", spec.Name, err)
		}
		fc.keyTypes[spec.Name] = &keyIndex{
			spec:    spec,
			idx:     idx,
			tuner:   NewTuner(c.cfg.Tuner),
			members: make(map[ID]vec.Vector),
		}
		fc.order = append(fc.order, spec.Name)
	}
	for _, ki := range fc.keyTypes {
		ki.tuner.Reset()
	}
	return nil
}

// Functions returns the registered function names.
func (c *Cache) Functions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.funcs))
	for fn := range c.funcs {
		out = append(out, fn)
	}
	return out
}

// LookupResult reports the outcome of a cache lookup.
type LookupResult struct {
	// Hit is true when a cached value within the similarity threshold
	// was found.
	Hit bool
	// Dropout is true when the random-dropout mechanism skipped the
	// cache (the lookup is reported as a miss without querying, §3.4).
	Dropout bool
	// Value is the cached result (nil on miss).
	Value any
	// Distance is the distance to the nearest neighbour examined, or -1
	// if the index was empty or the query dropped out.
	Distance float64
	// Threshold is the similarity threshold in force at lookup time.
	Threshold float64
	// Entry is a snapshot of the hit entry (zero on miss).
	Entry Entry
	// MissedAt records the clock time of a miss so the subsequent Put
	// can compute the computation overhead (§3.3: "the elapsed time
	// between the lookup() miss and the put() operation").
	MissedAt time.Time
}

// Lookup queries the cache for fn's result keyed by key under keyType
// (§3.4). On a hit the entry's access frequency — and therefore its
// importance — is updated. Lookup errors only for unregistered
// functions or key types.
func (c *Cache) Lookup(fn, keyType string, key vec.Vector) (LookupResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	c.purgeExpiredLocked(now)
	ki, err := c.keyIndexLocked(fn, keyType)
	if err != nil {
		return LookupResult{}, err
	}
	res := LookupResult{Distance: -1, Threshold: ki.tuner.Threshold(), MissedAt: now}
	if c.cfg.DropoutRate > 0 && c.rng.Float64() < c.cfg.DropoutRate {
		c.stats.Dropouts++
		c.stats.Misses++
		res.Dropout = true
		return res, nil
	}
	// Threshold-restricted k-nearest-neighbour query; k defaults to 1,
	// the paper's choice (§3.4).
	e, _, dist, ok := c.selectHitLocked(ki, key, res.Threshold)
	res.Distance = dist
	if !ok {
		c.stats.Misses++
		return res, nil
	}
	e.accessCount++
	e.lastAccess = now
	c.stats.Hits++
	c.stats.SavedCompute += e.cost
	res.Hit = true
	res.Value = e.value
	res.Entry = e.snapshot()
	return res, nil
}

// PutRequest describes an entry to insert.
type PutRequest struct {
	// Keys supplies precomputed keys per key type. Key types not present
	// here are derived from Raw via their extractors; types with neither
	// are skipped.
	Keys map[string]vec.Vector
	// Raw is the raw input, used to derive keys for key types with
	// extractors (§3.7 cross-type propagation).
	Raw any
	// Value is the computation result to cache.
	Value any
	// Cost is the computation overhead. If zero and MissedAt is set, it
	// is computed as now − MissedAt.
	Cost time.Duration
	// MissedAt is the LookupResult.MissedAt of the preceding miss.
	MissedAt time.Time
	// Size is the entry footprint in bytes; 0 means "estimate".
	Size int
	// TTL overrides the cache's default validity period.
	TTL time.Duration
	// App names the inserting application (reputation, diagnostics).
	App string
}

// Put inserts a computation result, propagating the key to every
// registered key type of the function and feeding each key type's
// threshold tuner (§3.6 "Inserting and indexing cache entries"). It
// returns the new entry's id.
func (c *Cache) Put(fn string, req PutRequest) (ID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	c.purgeExpiredLocked(now)
	fc := c.funcs[fn]
	if fc == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	if c.rep != nil && c.rep.Barred(req.App) {
		c.stats.RejectedPuts++
		return 0, fmt.Errorf("%w: %q", ErrAppBarred, req.App)
	}

	// Resolve one key per key type.
	keys := make(map[string]vec.Vector, len(fc.keyTypes))
	for _, name := range fc.order {
		ki := fc.keyTypes[name]
		if k, ok := req.Keys[name]; ok {
			keys[name] = k
			continue
		}
		if ki.spec.Extract != nil && req.Raw != nil {
			k, err := ki.spec.Extract(req.Raw)
			if err != nil {
				return 0, fmt.Errorf("core: extracting %q key: %w", name, err)
			}
			keys[name] = k
		}
	}
	if len(keys) == 0 {
		return 0, ErrNoKey
	}

	cost := req.Cost
	if cost <= 0 && !req.MissedAt.IsZero() {
		cost = now.Sub(req.MissedAt)
	}
	if cost < 0 {
		cost = 0
	}
	size := req.Size
	if size <= 0 {
		size = estimateSize(req.Value)
		for _, k := range keys {
			size += k.SizeBytes()
		}
	}
	ttl := req.TTL
	if ttl <= 0 {
		ttl = c.cfg.DefaultTTL
	}

	// Feed Algorithm 1 per key index with the pre-insertion nearest
	// neighbour, then insert.
	c.nextID++
	id := c.nextID
	for name, key := range keys {
		ki := fc.keyTypes[name]
		if n, ok := ki.idx.Nearest(key); ok {
			neighbor := c.entries[ID(n.ID)]
			same := neighbor != nil && c.equal(neighbor.value, req.Value)
			within := n.Dist <= ki.tuner.Threshold()
			ki.tuner.ObservePut(n.Dist, same, true)
			if c.rep != nil && neighbor != nil {
				c.rep.Observe(neighbor.app, within, same)
				if c.rep.Barred(neighbor.app) {
					c.removeAppEntriesLocked(neighbor.app)
				}
			}
		} else {
			ki.tuner.ObservePut(0, false, false)
		}
	}

	e := &Entry{
		id:         id,
		value:      req.Value,
		cost:       cost,
		size:       size,
		app:        req.App,
		insertedAt: now,
		lastAccess: now,
		expiresAt:  now.Add(ttl),
		// §3.3: "the access frequency is initialized to 1".
		accessCount: 1,
	}
	c.entries[id] = e
	c.bytes += int64(size)
	heap.Push(&c.expiry, expiryItem{at: e.expiresAt, id: id})
	for name, key := range keys {
		ki := fc.keyTypes[name]
		ki.idx.Insert(index.ID(id), key)
		ki.members[id] = key
		e.refs++
	}
	c.stats.Puts++
	c.evictLocked(now, id)
	return id, nil
}

// selectHitLocked runs the threshold-restricted kNN query and picks the
// hit entry. It returns the nearest-neighbour distance (-1 if the index
// is empty) and ok=false on a miss. With LookupK > 1, within-threshold
// neighbours vote by value equality and the largest group's closest
// member wins (ties break toward the closer group).
func (c *Cache) selectHitLocked(ki *keyIndex, key vec.Vector, threshold float64) (*Entry, vec.Vector, float64, bool) {
	k := c.cfg.LookupK
	if k <= 1 {
		n, ok := ki.idx.Nearest(key)
		if !ok {
			return nil, nil, -1, false
		}
		if n.Dist > threshold {
			return nil, nil, n.Dist, false
		}
		e := c.entries[ID(n.ID)]
		if e == nil {
			// The index briefly referenced a freed entry; treat as a miss.
			return nil, nil, n.Dist, false
		}
		return e, n.Key, n.Dist, true
	}
	ns := ki.idx.KNearest(key, k)
	if len(ns) == 0 {
		return nil, nil, -1, false
	}
	nearest := ns[0].Dist
	// Group within-threshold candidates by value equality.
	type group struct {
		rep    *Entry
		repKey vec.Vector
		dist   float64
		votes  int
	}
	var groups []group
	for _, n := range ns {
		if n.Dist > threshold {
			continue
		}
		e := c.entries[ID(n.ID)]
		if e == nil {
			continue
		}
		placed := false
		for gi := range groups {
			if c.equal(groups[gi].rep.value, e.value) {
				groups[gi].votes++
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, group{rep: e, repKey: n.Key, dist: n.Dist, votes: 1})
		}
	}
	if len(groups) == 0 {
		return nil, nil, nearest, false
	}
	best := 0
	for gi := 1; gi < len(groups); gi++ {
		if groups[gi].votes > groups[best].votes ||
			(groups[gi].votes == groups[best].votes && groups[gi].dist < groups[best].dist) {
			best = gi
		}
	}
	return groups[best].rep, groups[best].repKey, nearest, true
}

// keyIndexLocked resolves (fn, keyType) to its index.
func (c *Cache) keyIndexLocked(fn, keyType string) (*keyIndex, error) {
	fc := c.funcs[fn]
	if fc == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	ki := fc.keyTypes[keyType]
	if ki == nil {
		return nil, fmt.Errorf("%w: %q for function %q", ErrUnknownKeyType, keyType, fn)
	}
	return ki, nil
}

// evictLocked enforces the capacity bounds, excluding the just-inserted
// entry (the paper replaces the victim WITH the new entry, §3.6).
func (c *Cache) evictLocked(now time.Time, exclude ID) {
	over := func() bool {
		if c.cfg.MaxEntries > 0 && len(c.entries) > c.cfg.MaxEntries {
			return true
		}
		return c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes
	}
	for over() {
		cands := make([]*Entry, 0, len(c.entries))
		for id, e := range c.entries {
			if id == exclude {
				continue
			}
			cands = append(cands, e)
		}
		if len(cands) == 0 {
			return
		}
		victim := c.policy.Victim(cands, now, c.rng)
		c.removeEntryLocked(victim)
		c.stats.Evictions++
	}
}

// removeEntryLocked removes an entry from every index and frees its
// value.
func (c *Cache) removeEntryLocked(id ID) {
	e := c.entries[id]
	if e == nil {
		return
	}
	for _, fc := range c.funcs {
		for _, ki := range fc.keyTypes {
			if _, ok := ki.members[id]; ok {
				ki.idx.Remove(index.ID(id))
				delete(ki.members, id)
				e.refs--
			}
		}
	}
	c.bytes -= int64(e.size)
	delete(c.entries, id)
}

// removeAppEntriesLocked purges every entry inserted by app (used when
// the reputation system bars an application).
func (c *Cache) removeAppEntriesLocked(app string) {
	for id, e := range c.entries {
		if e.app == app {
			c.removeEntryLocked(id)
			c.stats.Evictions++
		}
	}
}

// purgeExpiredLocked clears all entries whose validity period has passed
// (§3.6: the management thread "clears all (at the same time) expired
// entries"). It is invoked lazily on every operation and explicitly by
// the janitor.
func (c *Cache) purgeExpiredLocked(now time.Time) {
	for len(c.expiry) > 0 && !c.expiry[0].at.After(now) {
		item := heap.Pop(&c.expiry).(expiryItem)
		e := c.entries[item.id]
		if e == nil || e.expiresAt.After(now) {
			continue // already removed, or TTL extended
		}
		c.removeEntryLocked(item.id)
		c.stats.Expirations++
	}
}

// PurgeExpired removes expired entries immediately and reports how many
// were cleared.
func (c *Cache) PurgeExpired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.stats.Expirations
	c.purgeExpiredLocked(c.clk.Now())
	return int(c.stats.Expirations - before)
}

// NextExpiry returns the earliest pending expiration time, used by the
// janitor to schedule its wake-up ("sets the next wake-up time according
// to the expiration time of the new head item", §4.2).
func (c *Cache) NextExpiry() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.expiry) > 0 {
		head := c.expiry[0]
		if e := c.entries[head.id]; e != nil && e.expiresAt.Equal(head.at) {
			return head.at, true
		}
		heap.Pop(&c.expiry) // stale
	}
	return time.Time{}, false
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the total size of live entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// TunerStats returns the threshold tuner's state for (fn, keyType).
func (c *Cache) TunerStats(fn, keyType string) (TunerStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ki, err := c.keyIndexLocked(fn, keyType)
	if err != nil {
		return TunerStats{}, err
	}
	return ki.tuner.Stats(), nil
}

// ForceThreshold activates (fn, keyType)'s tuner at a fixed threshold,
// used by experiments that sweep thresholds (Figure 9).
func (c *Cache) ForceThreshold(fn, keyType string, threshold float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ki, err := c.keyIndexLocked(fn, keyType)
	if err != nil {
		return err
	}
	ki.tuner.ForceActivate(threshold)
	return nil
}

// Reputation returns the reputation table, or nil when disabled.
func (c *Cache) Reputation() *Reputation { return c.rep }

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	return s
}

// Stats counts cache activity.
type Stats struct {
	Hits         int64
	Misses       int64
	Dropouts     int64
	Puts         int64
	RejectedPuts int64
	Evictions    int64
	Expirations  int64
	// Invalidations counts entries dropped by explicit invalidation
	// calls.
	Invalidations int64
	Entries       int
	Bytes         int64
	// SavedCompute totals the recorded computation overhead of every
	// hit: the time the applications did not have to spend.
	SavedCompute time.Duration
}

// HitRate returns hits / (hits + misses), or 0 when no lookups occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// estimateSize approximates the footprint of a cached value.
func estimateSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case []byte:
		return len(x)
	case string:
		return len(x)
	case vec.Vector:
		return x.SizeBytes()
	case []float64:
		return 8 * len(x)
	case bool:
		return 1
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	default:
		// A conservative default for structured values.
		return 64
	}
}

// expiryItem pairs an entry with its deadline in the expiry queue.
type expiryItem struct {
	at time.Time
	id ID
}

type expiryHeap []expiryItem

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(expiryItem)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
