package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/index"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// Concurrency model (see also DESIGN.md §"Concurrency model").
//
// The cache is a shared service hit by many applications at once
// (§4.2), so the read path must not serialize on writer state. State is
// split into independently locked pieces with a strict acquisition
// order:
//
//	1. Cache.funcsMu   (RWMutex) — the function table (the funcs map).
//	                   functionCache values are immutable copy-on-write
//	                   snapshots. Write-locked only by RegisterFunction.
//	2. Cache.admitMu   (Mutex) — the admission/eviction lock: the expiry
//	                   heap, its stale count, and the eviction loop.
//	                   Writers only; lookups never touch it.
//	3. keyIndex.mu     (RWMutex, one per key type) — that key type's
//	                   index structure and member map. Lookups on
//	                   different functions (or different key types)
//	                   touch different locks and proceed in parallel.
//	Leaf locks (never held while acquiring any of the above):
//	   Tuner.mu, Reputation.mu, Cache.rngMu.
//
// A later lock may be acquired while holding an earlier one, never the
// reverse. The entry table itself is a sync.Map with lock-free reads,
// and bytes/entry-count accounting, Stats counters, per-entry hit
// counters, and the next-expiry deadline are all atomics — so a lookup
// takes only funcsMu.RLock (to resolve the key index) and that key
// index's RLock. Crucially there is no cache-wide RWMutex on the hot
// path: a pending writer on such a lock blocks every arriving reader,
// which measurably re-serializes the whole cache at 10% put traffic.
//
// A lookup resolves its index hit to an entry via the entry table
// after releasing the index lock. Between the two steps the entry may
// be evicted (the lookup then reports a miss) or a racing put may not
// have published the entry yet (also a miss) — both are benign.
// Removal is exactly-once via the entry table's LoadAndDelete, which
// keeps the atomic accounting consistent under racing removers.

// Common errors returned by the cache.
var (
	// ErrUnknownFunction is returned when an operation names a function
	// that has not been registered.
	ErrUnknownFunction = errors.New("core: unknown function")
	// ErrUnknownKeyType is returned when an operation names a key type
	// that has not been registered for the function.
	ErrUnknownKeyType = errors.New("core: unknown key type")
	// ErrNoKey is returned by Put when no key could be produced for any
	// of the function's key types.
	ErrNoKey = errors.New("core: no key available for any registered key type")
	// ErrEmptyKey is returned by Put when a supplied or extracted key
	// vector has zero dimensions. Zero-dimension keys cannot be indexed
	// (a KD-tree has no axis to split on) and are rejected up front.
	ErrEmptyKey = errors.New("core: empty key vector")
	// ErrAppBarred is returned by Put when the reputation system has
	// barred the calling application for polluting the cache.
	ErrAppBarred = errors.New("core: application barred by reputation system")
)

// DefaultTTL is the paper's default entry validity period ("the timeout
// is currently set to be an hour", §3.6).
const DefaultTTL = time.Hour

// DefaultDropoutRate is the paper's random-dropout probability ("currently
// set to 0.1", §3.4).
const DefaultDropoutRate = 0.1

// Extractor converts a raw input (image, pose, audio segment, ...) into a
// feature-vector key. Applications may register custom extractors per key
// type (§4.2 "Support for custom key definition and matching").
type Extractor func(raw any) (vec.Vector, error)

// KeyTypeSpec describes one key type for a function: how keys are
// produced, compared, and indexed (§3.7).
type KeyTypeSpec struct {
	// Name identifies the key type, e.g. "colorhist" or "pose".
	Name string
	// Metric is the distance used by this key type's index. Defaults to
	// Euclidean.
	Metric vec.Metric
	// Index selects the index structure. Defaults to KD-tree.
	Index index.Kind
	// Dim is the expected key dimensionality (used to size LSH
	// projections; 0 lets the index learn it from the first insert).
	Dim int
	// Extract, when non-nil, derives this key type's key from the raw
	// input carried by a Put, enabling cross-key-type propagation
	// (§3.7 "Cache insertion"). Key types without an extractor only
	// receive entries whose Put supplies the key explicitly.
	Extract Extractor
}

func (s KeyTypeSpec) withDefaults() KeyTypeSpec {
	if s.Metric == nil {
		s.Metric = vec.EuclideanMetric{}
	}
	if s.Index == "" {
		s.Index = index.KindKDTree
	}
	return s
}

// Config configures a Cache. The zero value gives the paper's defaults:
// unlimited capacity, 1-hour TTL, 0.1 dropout, importance eviction,
// Algorithm 1 with k=4, γ=0.8, z=100.
type Config struct {
	// Clock supplies time; defaults to the real clock. Experiments
	// inject a virtual clock.
	Clock clock.Clock
	// MaxEntries bounds the number of cached values (0 = unlimited;
	// negative values are treated as 0).
	MaxEntries int
	// MaxBytes bounds the total entry size in bytes (0 = unlimited;
	// negative values are treated as 0).
	MaxBytes int64
	// DefaultTTL is the validity period applied when a Put does not
	// specify one. Defaults to one hour.
	DefaultTTL time.Duration
	// DropoutRate is the probability that a lookup skips the cache
	// (§3.4). Values above 1 are clamped to 1 (every lookup drops out).
	//
	// Footgun: any value <= 0 — including explicit zero and negative
	// values — means "unset" and is replaced by the default 0.1. To
	// actually turn dropout off, set DisableDropout; a DropoutRate of 0
	// alone silently re-enables the 0.1 default.
	DropoutRate float64
	// DisableDropout turns off the random-dropout mechanism entirely.
	// This is the only way to get a dropout probability of exactly
	// zero; see the DropoutRate footgun above.
	DisableDropout bool
	// Policy selects the replacement strategy; defaults to importance.
	Policy PolicyKind
	// Tuner configures Algorithm 1 (zero fields take paper defaults).
	Tuner TunerConfig
	// Seed makes dropout and random eviction deterministic.
	Seed int64
	// Equal compares cached values for the threshold tuner. Defaults to
	// reflect.DeepEqual.
	Equal func(a, b any) bool
	// LookupK is the k of the threshold-restricted k-nearest-neighbour
	// query (§3.4). The default 1 returns the nearest within-threshold
	// entry — the paper's choice ("this value provides the fastest
	// lookup time without sacrificing quality"). With k > 1, the
	// within-threshold neighbours vote by value equality and the
	// majority's closest representative is returned. Negative values
	// are treated as the default.
	LookupK int
	// Reputation enables the Credence-style reputation defence against
	// cache pollution (§3.5); nil disables it.
	Reputation *ReputationConfig
	// Store, when non-nil, attaches a durability layer: registrations,
	// admissions, and pre-deadline removals are logged to it, and
	// CaptureState/Restore round-trip the full cache state through it
	// (see durable.go and internal/store). Nil — the default — keeps
	// the cache purely in-memory at zero hot-path cost.
	Store Store
	// IndexOptions tunes the parameterized index kinds (LSH, HNSW, IVF
	// and their PQ variants) for every key type registered with this
	// cache. Zero-value fields take each kind's defaults; kinds without
	// tuning knobs ignore it.
	IndexOptions index.Options
	// Telemetry, when non-nil, attaches the cache to a telemetry hub:
	// per-(function, key type) metric series are exported to its
	// registry, lookup latencies feed per-series histograms, and
	// decision events (misses, dropouts, evictions, expirations,
	// sampled hits) are recorded to its tracer. Nil runs the cache with
	// its internal counters only; see telemetry.go for the overhead
	// budget.
	Telemetry *telemetry.Telemetry
	// Tap, when non-nil, observes the post-dropout decision stream for
	// counterfactual profiling (internal/whatif). Nil — the default —
	// costs the hot paths one nil check; see the Tap interface for the
	// attached-cost contract.
	Tap Tap
}

// normalized returns cfg with defaults applied and out-of-range values
// clamped, so the rest of the cache never sees a nonsensical setting.
func (cfg Config) normalized() Config {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = DefaultTTL
	}
	if cfg.DropoutRate <= 0 && !cfg.DisableDropout {
		cfg.DropoutRate = DefaultDropoutRate
	}
	if cfg.DropoutRate > 1 {
		cfg.DropoutRate = 1
	}
	if cfg.DisableDropout {
		cfg.DropoutRate = 0
	}
	if cfg.MaxEntries < 0 {
		cfg.MaxEntries = 0
	}
	if cfg.MaxBytes < 0 {
		cfg.MaxBytes = 0
	}
	if cfg.LookupK < 0 {
		cfg.LookupK = 0
	}
	if cfg.Equal == nil {
		cfg.Equal = func(a, b any) bool { return reflect.DeepEqual(a, b) }
	}
	return cfg
}

// counters holds the cache-global activity counters as atomics, so
// Stats() and HitRate() never contend with the data path. Lookup
// outcomes (hits/misses/dropouts) and puts are NOT here: they live in
// the per-(function, key type) ktCounters and per-function fnCounters
// series (telemetry.go), and Stats() derives the global totals by
// summing the series — the hot path pays for one set of counters, not
// two.
type counters struct {
	rejectedPuts  atomic.Int64
	evictions     atomic.Int64
	expirations   atomic.Int64
	invalidations atomic.Int64
	savedCompute  atomic.Int64 // nanoseconds
}

// Cache is the Potluck deduplication cache. Entries are organized first
// by function, then by key type, then by key (§4.2, Figure 5). Cache is
// safe for concurrent use; see the concurrency-model comment above for
// the lock hierarchy.
type Cache struct {
	cfg    Config
	clk    clock.Clock
	policy Policy
	equal  func(a, b any) bool
	rep    *Reputation

	// realClk is true when clk is the wall clock, letting hot-path
	// latency measurements use time.Since (one monotonic read) instead
	// of an interface call returning a full wall+monotonic timestamp.
	realClk bool

	// rngMu guards rng (dropout draws, random eviction). Leaf lock.
	rngMu sync.Mutex
	rng   *rand.Rand

	// funcsMu guards the funcs map. First in the lock order. Each
	// functionCache is immutable once published (registration swaps in
	// a copy), and keyIndex pointers are stable forever, so read paths
	// resolve a snapshot under RLock, release, and iterate freely.
	funcsMu sync.RWMutex
	funcs   map[string]*functionCache

	// entries is the entry table (ID → *entry). Reads are lock-free;
	// removal is exactly-once via LoadAndDelete, which anchors the
	// atomic bytes/count accounting.
	entries entryTable
	count   atomic.Int64
	bytes   atomic.Int64

	// admitMu is the admission/eviction lock (second in the lock
	// order): it guards expiry, staleExpiry, and the eviction loop.
	// Only mutating operations take it; lookups check nextExpiry
	// instead.
	admitMu sync.Mutex
	expiry  expiryHeap
	// evictScratch is the candidate slice reused across eviction rounds
	// (guarded by admitMu). Entries linger in the backing array until
	// the next eviction overwrites them — at most one round's worth of
	// otherwise-dead pointers, traded for zero steady-state allocation.
	evictScratch []*entry
	// staleExpiry counts heap items whose entry has already been
	// removed (evicted or invalidated before its deadline). The heap is
	// compacted when stale items outnumber live entries, so
	// eviction-heavy workloads with long TTLs cannot grow it unboundedly.
	staleExpiry int
	// nextExpiry is the UnixNano deadline of the heap head (MaxInt64
	// when empty), letting every operation test "anything expired?"
	// with one atomic load instead of a shared lock.
	nextExpiry atomic.Int64

	nextID atomic.Uint64
	ctr    counters

	// store is the optional durability layer (nil when Config.Store was
	// nil); restoring suppresses re-logging registrations and puts while
	// Restore replays records that are already persisted.
	store     Store
	restoring atomic.Bool

	// tel is the optional telemetry hub (nil when Config.Telemetry was
	// nil); vecs caches the metric families registered with it. spans is
	// tel's span recorder hoisted into its own field so the lookup hot
	// path tests span recording with one nil check.
	tel   *telemetry.Telemetry
	vecs  *telemetryVecs
	spans *telemetry.SpanRecorder

	// tap is the optional decision-stream observer (nil when Config.Tap
	// was nil), hoisted like spans so hot paths test it with one nil
	// check.
	tap Tap
}

// entryTable wraps sync.Map with the entry types spelled out.
type entryTable struct{ m sync.Map }

func (t *entryTable) load(id ID) *entry {
	if v, ok := t.m.Load(id); ok {
		return v.(*entry)
	}
	return nil
}

func (t *entryTable) store(e *entry) { t.m.Store(e.id, e) }

func (t *entryTable) loadAndDelete(id ID) *entry {
	if v, ok := t.m.LoadAndDelete(id); ok {
		return v.(*entry)
	}
	return nil
}

func (t *entryTable) forEach(f func(e *entry) bool) {
	t.m.Range(func(_, v any) bool { return f(v.(*entry)) })
}

// functionCache is an immutable snapshot of one function's key types.
// RegisterFunction publishes a fresh copy under Cache.funcsMu
// (copy-on-write) instead of mutating in place, so any *functionCache
// resolved under the read lock stays consistent after the lock is
// released — hot paths iterate it without copying or re-locking.
type functionCache struct {
	name     string
	keyTypes map[string]*keyIndex // read-only after publication
	order    []string             // registration order, for deterministic iteration
	kis      []*keyIndex          // parallel to order
	// stats is the function's put-counter series, carried by pointer
	// across copy-on-write re-registration so counts are never reset.
	stats *fnCounters
}

type keyIndex struct {
	spec KeyTypeSpec
	// tuner synchronizes itself (its own mutex is the single point of
	// coordination); it is never called with any cache lock held.
	tuner *Tuner
	// ctr is this series' lookup-outcome counters (always maintained).
	ctr ktCounters
	// lat is the lookup-latency histogram minted from the telemetry
	// registry; nil when the cache runs without telemetry.
	lat *telemetry.Histogram

	// mu guards idx and members. Third in the lock order. The idx
	// POINTER is set at construction and never reassigned, so lockless
	// reads of its atomic probe counters are safe; the index's
	// contents still require mu.
	mu      sync.RWMutex
	idx     index.Index
	members map[ID]vec.Vector

	// probed is idx's per-query probe-count view, resolved once at
	// construction (all shipped kinds implement it; nil tolerated for
	// external Index implementations).
	probed index.ProbedSearcher
}

// New constructs a cache from cfg. Invalid policy kinds panic; use
// NewPolicy to validate user input first.
func New(cfg Config) *Cache {
	cfg = cfg.normalized()
	pol, err := NewPolicy(cfg.Policy)
	if err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:    cfg,
		clk:    cfg.Clock,
		policy: pol,
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		equal:  cfg.Equal,
		funcs:  make(map[string]*functionCache),
		store:  cfg.Store,
		tap:    cfg.Tap,
	}
	_, c.realClk = c.clk.(clock.Real)
	c.nextExpiry.Store(math.MaxInt64)
	if cfg.Reputation != nil {
		c.rep = NewReputation(*cfg.Reputation)
	}
	if cfg.Telemetry != nil {
		c.tel = cfg.Telemetry
		c.spans = cfg.Telemetry.Spans
		c.initTelemetry()
	}
	return c
}

// RegisterFunction registers a function and its key types, creating one
// index per key type (§3.7). Registering an existing function adds any
// new key types and resets the thresholds of all its tuners, matching
// register()'s contract ("It also resets the input similarity
// threshold", §4.3). At least one key type is required.
//
// Registration is atomic: every spec is validated and its index built
// before any shared state changes, so a failed call leaves no partial
// function, no partial key-type set, and untouched tuners.
func (c *Cache) RegisterFunction(fn string, keyTypes ...KeyTypeSpec) error {
	if fn == "" {
		return errors.New("core: empty function name")
	}
	if len(keyTypes) == 0 {
		return errors.New("core: at least one key type is required")
	}
	specs := make([]KeyTypeSpec, 0, len(keyTypes))
	seen := make(map[string]struct{}, len(keyTypes))
	for _, spec := range keyTypes {
		spec = spec.withDefaults()
		if spec.Name == "" {
			return errors.New("core: key type with empty name")
		}
		if _, dup := seen[spec.Name]; dup {
			continue // first spec wins, like re-registration
		}
		seen[spec.Name] = struct{}{}
		specs = append(specs, spec)
	}
	built := make([]*keyIndex, len(specs))
	for i, spec := range specs {
		idx, err := index.NewWithOptions(spec.Index, spec.Metric, spec.Dim, c.cfg.IndexOptions)
		if err != nil {
			return fmt.Errorf("core: key type %q: %w", spec.Name, err)
		}
		probed, _ := idx.(index.ProbedSearcher)
		ki := &keyIndex{
			spec:    spec,
			idx:     idx,
			probed:  probed,
			tuner:   NewTuner(c.cfg.Tuner),
			members: make(map[ID]vec.Vector),
		}
		if rs, ok := idx.(index.ResolverSetter); ok {
			// The members table keeps every key uncompressed under the
			// same ki.mu that guards the index, so a product-quantized
			// store can drop its own uncompressed copies and re-rank
			// against members — this is where PQ's memory win is
			// realized in deployment.
			rs.SetKeyResolver(func(id index.ID) (vec.Vector, bool) {
				v, ok := ki.members[ID(id)]
				return v, ok
			})
		}
		built[i] = ki
	}

	c.funcsMu.Lock()
	old := c.funcs[fn]
	fc := &functionCache{name: fn, keyTypes: make(map[string]*keyIndex), stats: &fnCounters{}}
	if old != nil {
		// Copy-on-write: never mutate a published functionCache. The
		// counter series rides along so re-registration never resets it.
		fc.stats = old.stats
		for name, ki := range old.keyTypes {
			fc.keyTypes[name] = ki
		}
		fc.order = append(fc.order, old.order...)
		fc.kis = append(fc.kis, old.kis...)
	}
	var added []*keyIndex
	for i, spec := range specs {
		if _, exists := fc.keyTypes[spec.Name]; exists {
			continue
		}
		fc.keyTypes[spec.Name] = built[i]
		fc.order = append(fc.order, spec.Name)
		fc.kis = append(fc.kis, built[i])
		added = append(added, built[i])
	}
	c.funcs[fn] = fc
	if c.store != nil && !c.restoring.Load() {
		// Logged under funcsMu so any put that resolves this function
		// appends after this record: replay can never see a put for a
		// function it has not yet registered.
		kts := make([]StoreKeyType, len(specs))
		for i, s := range specs {
			kts[i] = StoreKeyType{Name: s.Name, Metric: s.Metric.Name(), Index: string(s.Index), Dim: s.Dim}
		}
		c.store.LogRegister(fn, kts)
	}
	c.funcsMu.Unlock()

	c.wireFunctionTelemetry(fn, fc.stats, added)
	for _, ki := range fc.kis {
		ki.tuner.Reset()
	}
	return nil
}

// Functions returns the registered function names.
func (c *Cache) Functions() []string {
	c.funcsMu.RLock()
	defer c.funcsMu.RUnlock()
	out := make([]string, 0, len(c.funcs))
	for fn := range c.funcs {
		out = append(out, fn)
	}
	return out
}

// keyIndexFor resolves (fn, keyType) to its index.
func (c *Cache) keyIndexFor(fn, keyType string) (*keyIndex, error) {
	c.funcsMu.RLock()
	defer c.funcsMu.RUnlock()
	fc := c.funcs[fn]
	if fc == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	ki := fc.keyTypes[keyType]
	if ki == nil {
		return nil, fmt.Errorf("%w: %q for function %q", ErrUnknownKeyType, keyType, fn)
	}
	return ki, nil
}

// functionIndexes resolves a function's immutable key-type snapshot.
// The returned functionCache is safe to iterate without any lock
// (copy-on-write registration); its keyIndex pointers stay valid
// forever (key types are never removed).
func (c *Cache) functionIndexes(fn string) (*functionCache, error) {
	c.funcsMu.RLock()
	fc := c.funcs[fn]
	c.funcsMu.RUnlock()
	if fc == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	return fc, nil
}

// EffectiveConfig returns the configuration actually in force — the
// constructor's input with defaults applied and out-of-range values
// clamped (see Config field docs). Useful for diagnostics: what a
// daemon logs at startup should be what the cache does, not what the
// operator wrote.
func (c *Cache) EffectiveConfig() Config {
	return c.cfg
}

// entryByID resolves a live entry; lock-free.
func (c *Cache) entryByID(id ID) *entry {
	return c.entries.load(id)
}

// dropout draws the random-dropout coin (§3.4), returning the uniform
// roll so a traced lookup can report how close the draw came to the
// rate. roll is -1 when dropout is disabled (no draw happens).
func (c *Cache) dropout() (roll float64, out bool) {
	if c.cfg.DropoutRate <= 0 {
		return -1, false
	}
	c.rngMu.Lock()
	roll = c.rng.Float64()
	c.rngMu.Unlock()
	return roll, roll < c.cfg.DropoutRate
}

// LookupResult reports the outcome of a cache lookup.
type LookupResult struct {
	// Hit is true when a cached value within the similarity threshold
	// was found.
	Hit bool
	// Dropout is true when the random-dropout mechanism skipped the
	// cache (the lookup is reported as a miss without querying, §3.4).
	Dropout bool
	// Value is the cached result (nil on miss).
	Value any
	// Distance is the distance to the nearest neighbour examined, or -1
	// if the index was empty or the query dropped out.
	Distance float64
	// Threshold is the similarity threshold in force at lookup time.
	Threshold float64
	// Entry is a snapshot of the hit entry (zero on miss).
	Entry Entry
	// MissedAt records the clock time of a miss so the subsequent Put
	// can compute the computation overhead (§3.3: "the elapsed time
	// between the lookup() miss and the put() operation").
	MissedAt time.Time
	// Trace is the span trace ID this lookup was recorded under: the
	// caller's propagated ID, a freshly minted one when the lookup was
	// sampled, or zero when no span was recorded.
	Trace telemetry.TraceID
}

// LookupOptions bundles the optional behaviours of a lookup; the zero
// value is a plain Lookup.
type LookupOptions struct {
	// Accept vetoes a candidate hit; see LookupAccept.
	Accept func(value any) bool
	// Refine post-processes a hit; see LookupRefined.
	Refine Refiner
	// Trace forces span recording under this trace ID (typically
	// propagated from a remote caller over the wire protocol). Zero
	// means "sample locally".
	Trace telemetry.TraceID
}

// Lookup queries the cache for fn's result keyed by key under keyType
// (§3.4). On a hit the entry's access frequency — and therefore its
// importance — is updated. Lookup errors only for unregistered
// functions or key types.
func (c *Cache) Lookup(fn, keyType string, key vec.Vector) (LookupResult, error) {
	return c.lookup(fn, keyType, key, LookupOptions{})
}

// LookupOpts is Lookup with the full option set (accept veto, refiner,
// trace propagation).
func (c *Cache) LookupOpts(fn, keyType string, key vec.Vector, opts LookupOptions) (LookupResult, error) {
	return c.lookup(fn, keyType, key, opts)
}

// LookupAccept behaves like Lookup but consults accept before committing
// to a hit: if accept returns false for the candidate value, the lookup
// is recorded and reported as a miss, and the entry's access frequency —
// and therefore its importance — is left untouched. Callers that can
// only consume certain value representations (the wire service can only
// ship []byte) use this so an entry the caller never receives does not
// earn hit credit. A nil accept behaves exactly like Lookup.
func (c *Cache) LookupAccept(fn, keyType string, key vec.Vector, accept func(value any) bool) (LookupResult, error) {
	return c.lookup(fn, keyType, key, LookupOptions{Accept: accept})
}

// lookup is the shared read path behind Lookup, LookupAccept,
// LookupRefined, and LookupOpts. It holds no lock while returning.
//
// Lookups purge on demand: expired entries are filtered at read time,
// and only when the query actually observes one does the lookup take
// the admission lock, purge, and re-run the query (an expired nearest
// neighbour must not mask a live, slightly farther one). The common
// nothing-expired read therefore never touches the admission lock;
// routine reclamation is left to puts and the janitor.
//
// Span recording follows the tracer's discipline: hits produce a span
// only when the lookup is traced — forced by a propagated trace ID or
// sampled 1-in-64 off the clock read the lookup already paid for —
// while misses, dropouts, and errors always produce one (they are the
// decisions worth debugging and are rare by comparison). Stage clocks
// and the tuner snapshot are reserved for traced lookups, so the
// always-recorded outcomes stay at one ring write with no extra clock
// reads or tuner lock.
func (c *Cache) lookup(fn, keyType string, key vec.Vector, opts LookupOptions) (LookupResult, error) {
	now := c.clk.Now()
	ki, err := c.keyIndexFor(fn, keyType)
	if err != nil {
		if c.spans != nil {
			c.recordLookupSpan(nil, fn, keyType, now, spanFields{
				outcome: telemetry.OutcomeError, errText: err.Error(),
				dist: -1, roll: -1, probes: -1, trace: opts.Trace,
			})
		}
		return LookupResult{}, err
	}
	res := LookupResult{Distance: -1, Threshold: ki.tuner.Threshold(), MissedAt: now}
	traced := c.spans != nil && (opts.Trace != 0 || now.UnixNano()&spanSampleMask == 0)
	roll, out := c.dropout()
	if out {
		ki.ctr.dropouts.Add(1)
		res.Dropout = true
		if c.tel != nil {
			c.tel.RecordEvent(telemetry.Event{
				At: now.UnixNano(), Kind: telemetry.EventDropout,
				Function: fn, KeyType: keyType, Value: res.Threshold,
			})
		}
		if c.spans != nil {
			res.Trace = c.recordLookupSpan(ki, fn, keyType, now, spanFields{
				outcome: telemetry.OutcomeDropout, dist: -1, threshold: res.Threshold,
				roll: roll, probes: -1, trace: opts.Trace, detailed: traced,
			})
		}
		return res, nil
	}
	var stages []telemetry.SpanStage
	var mark time.Time
	if traced {
		// Allocated here, not hoisted: a stack buffer declared before
		// the branch escapes via the span record and would cost every
		// untraced lookup a heap allocation.
		stages = make([]telemetry.SpanStage, 0, 3)
		mark = c.nowFast()
	}
	// Threshold-restricted k-nearest-neighbour query; k defaults to 1,
	// the paper's choice (§3.4).
	e, hitKey, dist, probes, ok, sawExpired := c.selectHit(ki, key, res.Threshold, now)
	if sawExpired {
		// The query ran into an expired entry still in the index; purge
		// and requery so staleness cannot mask a live neighbour. After
		// the purge nothing expiring at or before now remains, so one
		// retry is deterministic.
		c.maybePurgeExpired(now)
		var retryProbes int
		e, hitKey, dist, retryProbes, ok, _ = c.selectHit(ki, key, res.Threshold, now)
		probes = addProbes(probes, retryProbes)
	}
	if traced {
		stages = append(stages, telemetry.SpanStage{
			Name: telemetry.StageProbe, DurationNs: int64(c.sinceFast(mark)), Probes: probes,
		})
		mark = c.nowFast()
	}
	res.Distance = dist
	if !ok || (opts.Accept != nil && !opts.Accept(e.value)) {
		// Either no in-threshold entry exists, or the caller cannot
		// consume the one that does; report a miss and record no access,
		// so an invisible hit does not inflate the entry's frequency or
		// the hit counters.
		n := ki.ctr.misses.Add(1)
		if ki.lat != nil && n&latSampleMask == 0 {
			ki.lat.Observe(c.since(now))
		}
		if c.tap != nil {
			c.tap.TapLookup(fn, keyType, key, dist, res.Threshold, false, now.UnixNano())
		}
		if c.tel != nil {
			c.tel.RecordEvent(telemetry.Event{
				At: now.UnixNano(), Kind: telemetry.EventMiss,
				Function: fn, KeyType: keyType, Value: dist, Aux: res.Threshold,
			})
		}
		if c.spans != nil {
			if traced {
				stages = append(stages, telemetry.SpanStage{
					Name: telemetry.StageDecide, DurationNs: int64(c.sinceFast(mark)),
				})
			}
			res.Trace = c.recordLookupSpan(ki, fn, keyType, now, spanFields{
				outcome: telemetry.OutcomeMiss, dist: dist, threshold: res.Threshold,
				roll: roll, probes: probes, stages: stages, trace: opts.Trace, detailed: traced,
			})
		}
		return res, nil
	}
	e.accessCount.Add(1)
	e.lastAccess.Store(now.UnixNano())
	n := ki.ctr.hits.Add(1)
	if ki.lat != nil && n&latSampleMask == 0 {
		ki.lat.Observe(c.since(now))
	}
	c.ctr.savedCompute.Add(int64(e.cost))
	if c.tap != nil {
		c.tap.TapLookup(fn, keyType, key, dist, res.Threshold, true, now.UnixNano())
	}
	if c.tel != nil && n&hitTraceSampleMask == 0 {
		c.tel.RecordEvent(telemetry.Event{
			At: now.UnixNano(), Kind: telemetry.EventHit,
			Function: fn, KeyType: keyType, Detail: e.app,
			Value: dist, Aux: res.Threshold,
		})
	}
	res.Hit = true
	res.Value = e.value
	res.Entry = e.snapshot()
	if traced {
		stages = append(stages, telemetry.SpanStage{
			Name: telemetry.StageDecide, DurationNs: int64(c.sinceFast(mark)),
		})
		mark = c.nowFast()
	}
	if opts.Refine != nil {
		// Refinement runs with no lock held: it may be arbitrarily
		// expensive application logic (warping an image, adjusting
		// coordinates, ...). The hit key is cloned so the refiner cannot
		// alias index memory.
		res.Value = opts.Refine(res.Value, hitKey.Clone(), key)
		if traced {
			stages = append(stages, telemetry.SpanStage{
				Name: telemetry.StageRefine, DurationNs: int64(c.sinceFast(mark)),
			})
		}
	}
	if traced {
		res.Trace = c.recordLookupSpan(ki, fn, keyType, now, spanFields{
			outcome: telemetry.OutcomeHit, dist: dist, threshold: res.Threshold,
			roll: roll, probes: probes, stages: stages, trace: opts.Trace, detailed: true,
		})
	}
	return res, nil
}

// addProbes combines probe counts across the purge-and-retry requery;
// -1 (unmeasured) is absorbing.
func addProbes(a, b int) int {
	if a < 0 || b < 0 {
		return -1
	}
	return a + b
}

// PutRequest describes an entry to insert.
type PutRequest struct {
	// Keys supplies precomputed keys per key type. Key types not present
	// here are derived from Raw via their extractors; types with neither
	// are skipped.
	Keys map[string]vec.Vector
	// Raw is the raw input, used to derive keys for key types with
	// extractors (§3.7 cross-type propagation).
	Raw any
	// Value is the computation result to cache.
	Value any
	// Cost is the computation overhead. If zero and MissedAt is set, it
	// is computed as now − MissedAt.
	Cost time.Duration
	// MissedAt is the LookupResult.MissedAt of the preceding miss.
	MissedAt time.Time
	// Size is the entry footprint in bytes; 0 means "estimate".
	Size int
	// TTL overrides the cache's default validity period.
	TTL time.Duration
	// App names the inserting application (reputation, diagnostics).
	App string
	// Trace forces span recording under this trace ID (typically the
	// trace of the miss that triggered this put, propagated over the
	// wire). Zero means "sample locally".
	Trace telemetry.TraceID
}

// Put inserts a computation result, propagating the key to every
// registered key type of the function and feeding each key type's
// threshold tuner (§3.6 "Inserting and indexing cache entries"). It
// returns the new entry's id.
func (c *Cache) Put(fn string, req PutRequest) (ID, error) {
	now := c.clk.Now()
	c.maybePurgeExpired(now)
	fc, err := c.functionIndexes(fn)
	if err != nil {
		c.recordPutError(fn, now, req.Trace, err)
		return 0, err
	}
	kis := fc.kis
	traced := c.spans != nil && (req.Trace != 0 || now.UnixNano()&spanSampleMask == 0)
	var stages []telemetry.SpanStage
	var mark time.Time
	if traced {
		// Allocated under the branch so untraced puts pay nothing; see
		// the matching comment in lookup.
		stages = make([]telemetry.SpanStage, 0, 4)
		mark = c.nowFast()
	}
	if c.rep != nil && c.rep.Barred(req.App) {
		c.ctr.rejectedPuts.Add(1)
		if c.tel != nil {
			c.tel.RecordEvent(telemetry.Event{
				At: now.UnixNano(), Kind: telemetry.EventBarred,
				Function: fn, Detail: req.App,
			})
		}
		err := fmt.Errorf("%w: %q", ErrAppBarred, req.App)
		c.recordPutError(fn, now, req.Trace, err)
		return 0, err
	}

	// Resolve one key per key type (parallel to kis; nil = skipped).
	// Extractors are application code and run with no lock held. All
	// keys are validated before any state — index, tuner, or entry
	// table — is touched. The fixed-size buffer keeps the common case
	// (a handful of key types) off the heap.
	var keysBuf [4]vec.Vector
	var keys []vec.Vector
	if len(kis) > len(keysBuf) {
		keys = make([]vec.Vector, len(kis))
	} else {
		keys = keysBuf[:len(kis)]
	}
	resolved := 0
	for i, ki := range kis {
		if k, ok := req.Keys[fc.order[i]]; ok {
			if len(k) == 0 {
				err := fmt.Errorf("%w: key type %q", ErrEmptyKey, fc.order[i])
				c.recordPutError(fn, now, req.Trace, err)
				return 0, err
			}
			keys[i] = k
			resolved++
			continue
		}
		if ki.spec.Extract != nil && req.Raw != nil {
			k, err := ki.spec.Extract(req.Raw)
			if err != nil {
				err = fmt.Errorf("core: extracting %q key: %w", fc.order[i], err)
				c.recordPutError(fn, now, req.Trace, err)
				return 0, err
			}
			if len(k) == 0 {
				err := fmt.Errorf("%w: key type %q (extracted)", ErrEmptyKey, fc.order[i])
				c.recordPutError(fn, now, req.Trace, err)
				return 0, err
			}
			keys[i] = k
			resolved++
		}
	}
	if resolved == 0 {
		c.recordPutError(fn, now, req.Trace, ErrNoKey)
		return 0, ErrNoKey
	}
	if traced {
		stages = append(stages, telemetry.SpanStage{
			Name: telemetry.StageResolve, DurationNs: int64(c.sinceFast(mark)),
		})
		mark = c.nowFast()
	}

	cost := req.Cost
	if cost <= 0 && !req.MissedAt.IsZero() {
		cost = now.Sub(req.MissedAt)
	}
	if cost < 0 {
		cost = 0
	}
	size := req.Size
	if size <= 0 {
		size = estimateSize(req.Value)
		for _, k := range keys {
			size += k.SizeBytes()
		}
	}
	ttl := req.TTL
	if ttl <= 0 {
		ttl = c.cfg.DefaultTTL
	}

	// Feed Algorithm 1 per key index with the pre-insertion nearest
	// neighbour. Tuner and reputation table synchronize themselves; the
	// value comparison (user code) runs with no lock held. The first
	// resolved key type's neighbour distance and threshold flow into the
	// put span's decision fields.
	spanDist, spanThreshold, spanSet := -1.0, 0.0, false
	for i, ki := range kis {
		if keys[i] == nil {
			continue
		}
		ki.mu.RLock()
		n, ok := ki.idx.Nearest(keys[i])
		ki.mu.RUnlock()
		if traced && !spanSet {
			spanSet = true
			spanThreshold = ki.tuner.Threshold()
			if ok {
				spanDist = n.Dist
			}
		}
		if !ok {
			ki.tuner.ObservePut(0, false, false)
			continue
		}
		neighbor := c.entryByID(ID(n.ID))
		same := neighbor != nil && c.equal(neighbor.value, req.Value)
		within := n.Dist <= ki.tuner.Threshold()
		ki.tuner.ObservePut(n.Dist, same, true)
		if c.rep != nil && neighbor != nil {
			c.rep.Observe(neighbor.app, within, same)
			if c.rep.Barred(neighbor.app) {
				c.removeAppEntries(neighbor.app)
			}
		}
	}
	if traced {
		stages = append(stages, telemetry.SpanStage{
			Name: telemetry.StageTune, DurationNs: int64(c.sinceFast(mark)),
		})
		mark = c.nowFast()
	}

	id := ID(c.nextID.Add(1))
	owners := make([]*keyIndex, 0, resolved)
	for i, ki := range kis {
		if keys[i] != nil {
			owners = append(owners, ki)
		}
	}
	e := &entry{
		id:         id,
		value:      req.Value,
		cost:       cost,
		size:       size,
		app:        req.App,
		insertedAt: now,
		expiresAt:  now.Add(ttl),
		owners:     owners,
	}
	// §3.3: "the access frequency is initialized to 1".
	e.accessCount.Store(1)
	e.lastAccess.Store(now.UnixNano())

	// Insert into the key indices first and publish to the entry table
	// after: a racing lookup that sees the index entry but not the entry
	// record treats it as a miss, which is safe. The reverse order would
	// let eviction unlink the entry while its index insertions are still
	// in flight, leaking index nodes.
	for i, ki := range kis {
		if keys[i] == nil {
			continue
		}
		ki.mu.Lock()
		if err := ki.idx.Insert(index.ID(id), keys[i]); err == nil {
			ki.members[id] = keys[i]
		}
		ki.mu.Unlock()
	}
	c.entries.store(e)
	c.count.Add(1)
	c.bytes.Add(int64(size))
	if traced {
		stages = append(stages, telemetry.SpanStage{
			Name: telemetry.StageInsert, DurationNs: int64(c.sinceFast(mark)),
		})
		mark = c.nowFast()
	}
	var durRec *StoreEntry
	if c.store != nil && !c.restoring.Load() {
		durRec = &StoreEntry{
			ID:              uint64(id),
			Function:        fn,
			App:             req.App,
			CostNanos:       int64(cost),
			Size:            size,
			AccessCount:     1,
			InsertedAtNanos: now.UnixNano(),
			LastAccessNanos: now.UnixNano(),
			ExpiresAtNanos:  e.expiresAt.UnixNano(),
			Value:           req.Value,
		}
		for i := range kis {
			if keys[i] != nil {
				durRec.Keys = append(durRec.Keys, StoreKey{KeyType: fc.order[i], Key: keys[i]})
			}
		}
	}
	c.admitMu.Lock()
	if durRec != nil {
		// Under admitMu: a racing put's eviction pass could otherwise
		// claim this just-published entry and log its delete record
		// BEFORE this put record, resurrecting the entry at replay.
		c.store.LogPut(*durRec)
	}
	c.expiry.push(expiryItem{at: e.expiresAt, id: id})
	c.updateNextExpiryLocked()
	evicted, cause := c.evictLocked(now, id)
	c.admitMu.Unlock()
	fc.stats.puts.Add(1)
	if c.tap != nil {
		// Pooled slices under the branch (the tap only borrows them;
		// see Tap.TapPut): building from keysBuf directly would make
		// the stack buffer escape on every untapped put, and fresh
		// slices per call would make every put feed the GC.
		tb := tapBufPool.Get().(*tapBuf)
		tb.kts, tb.keys = tb.kts[:0], tb.keys[:0]
		for i := range kis {
			if keys[i] != nil {
				tb.kts = append(tb.kts, fc.order[i])
				tb.keys = append(tb.keys, keys[i])
			}
		}
		c.tap.TapPut(fn, tb.kts, tb.keys, uint64(id), size, int64(cost), now.UnixNano())
		tapBufPool.Put(tb)
	}
	if c.tel != nil {
		c.tel.RecordEvent(telemetry.Event{
			At: now.UnixNano(), Kind: telemetry.EventPut,
			Function: fn, Detail: req.App,
			Value: cost.Seconds(), Aux: float64(size),
		})
	}
	if traced {
		detail := ""
		if evicted > 0 {
			detail = fmt.Sprintf("evicted %d (%s)", evicted, cause)
		}
		stages = append(stages, telemetry.SpanStage{
			Name: telemetry.StageAdmit, DurationNs: int64(c.sinceFast(mark)), Detail: detail,
		})
		trace := req.Trace
		if trace == 0 {
			trace = telemetry.NewTraceID()
		}
		st := kis[0].tuner.Stats()
		c.spans.Record(telemetry.Span{
			Trace:       trace,
			Start:       now.UnixNano(),
			DurationNs:  int64(c.since(now)),
			Layer:       "core",
			Function:    fn,
			KeyType:     fc.order[0],
			Outcome:     telemetry.OutcomePut,
			Distance:    spanDist,
			Threshold:   spanThreshold,
			DropoutRoll: -1,
			IndexKind:   string(kis[0].spec.Index),
			Probes:      -1,
			Tuner: &telemetry.TunerState{
				Threshold:   st.Threshold,
				Puts:        st.Puts,
				Active:      st.Active,
				Tightenings: st.Tightenings,
				Loosenings:  st.Loosenings,
			},
			Stages: stages,
		})
	}
	return id, nil
}

// recordPutError records an always-retained error span for a rejected
// put (no-op when spans are detached). Put errors are rare and are
// exactly the decisions an operator greps /trace/spans for.
func (c *Cache) recordPutError(fn string, start time.Time, trace telemetry.TraceID, err error) {
	if c.spans == nil {
		return
	}
	if trace == 0 {
		trace = telemetry.NewTraceID()
	}
	c.spans.Record(telemetry.Span{
		Trace:       trace,
		Start:       start.UnixNano(),
		DurationNs:  int64(c.since(start)),
		Layer:       "core",
		Function:    fn,
		Outcome:     telemetry.OutcomeError,
		Err:         err.Error(),
		Distance:    -1,
		DropoutRoll: -1,
		Probes:      -1,
	})
}

// selectHit runs the threshold-restricted kNN query and picks the hit
// entry. It returns the nearest-neighbour distance (-1 if the index is
// empty), the index probe count for this query (-1 when the index kind
// does not report per-query probes), and ok=false on a miss. Entries
// past their expiration time are treated as absent; sawExpired reports
// that at least one was encountered so the caller can purge and retry.
// With LookupK > 1, within-threshold neighbours vote by value equality
// and the largest group's closest member wins (ties break toward the
// closer group).
func (c *Cache) selectHit(ki *keyIndex, key vec.Vector, threshold float64, now time.Time) (_ *entry, _ vec.Vector, dist float64, probes int, ok, sawExpired bool) {
	k := c.cfg.LookupK
	if k <= 1 {
		var n index.Neighbor
		var found bool
		ki.mu.RLock()
		if ki.probed != nil {
			n, probes, found = ki.probed.NearestProbed(key)
		} else {
			probes = -1
			n, found = ki.idx.Nearest(key)
		}
		ki.mu.RUnlock()
		if !found {
			return nil, nil, -1, probes, false, false
		}
		if n.Dist > threshold {
			return nil, nil, n.Dist, probes, false, false
		}
		e := c.entryByID(ID(n.ID))
		if e == nil {
			// The index briefly referenced a freed (or not yet
			// published) entry; treat as a miss.
			return nil, nil, n.Dist, probes, false, false
		}
		if !e.expiresAt.After(now) {
			return nil, nil, n.Dist, probes, false, true
		}
		return e, n.Key, n.Dist, probes, true, false
	}
	var ns []index.Neighbor
	ki.mu.RLock()
	if ki.probed != nil {
		ns, probes = ki.probed.KNearestProbed(key, k)
	} else {
		probes = -1
		ns = ki.idx.KNearest(key, k)
	}
	ki.mu.RUnlock()
	if len(ns) == 0 {
		return nil, nil, -1, probes, false, false
	}
	nearest := ns[0].Dist
	// Resolve within-threshold candidates (lock-free entry loads), then
	// group by value equality — Equal is user code and runs unlocked.
	type cand struct {
		e    *entry
		key  vec.Vector
		dist float64
	}
	cands := make([]cand, 0, len(ns))
	for _, n := range ns {
		if n.Dist > threshold {
			continue
		}
		if e := c.entries.load(ID(n.ID)); e != nil {
			if !e.expiresAt.After(now) {
				// An expired entry occupies a slot in the k-set and may
				// displace live neighbours; have the caller purge+retry.
				sawExpired = true
				continue
			}
			cands = append(cands, cand{e, n.Key, n.Dist})
		}
	}
	type group struct {
		rep    *entry
		repKey vec.Vector
		dist   float64
		votes  int
	}
	var groups []group
	for _, cd := range cands {
		placed := false
		for gi := range groups {
			if c.equal(groups[gi].rep.value, cd.e.value) {
				groups[gi].votes++
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, group{rep: cd.e, repKey: cd.key, dist: cd.dist, votes: 1})
		}
	}
	if len(groups) == 0 {
		return nil, nil, nearest, probes, false, sawExpired
	}
	best := 0
	for gi := 1; gi < len(groups); gi++ {
		if groups[gi].votes > groups[best].votes ||
			(groups[gi].votes == groups[best].votes && groups[gi].dist < groups[best].dist) {
			best = gi
		}
	}
	return groups[best].rep, groups[best].repKey, nearest, probes, true, sawExpired
}

// evictLocked enforces the capacity bounds, excluding the just-inserted
// entry (the paper replaces the victim WITH the new entry, §3.6).
// Caller holds admitMu, which serializes evictions so two racing puts
// cannot both evict for the same overflow. Returns how many entries
// were evicted and which bound forced it ("entries", "bytes", or ""),
// so the admitting put's span can name the eviction cause.
func (c *Cache) evictLocked(now time.Time, exclude ID) (evicted int, cause string) {
	over := func() bool {
		if c.cfg.MaxEntries > 0 && c.count.Load() > int64(c.cfg.MaxEntries) {
			if cause == "" {
				cause = "entries"
			}
			return true
		}
		if c.cfg.MaxBytes > 0 && c.bytes.Load() > c.cfg.MaxBytes {
			if cause == "" {
				cause = "bytes"
			}
			return true
		}
		return false
	}
	for over() {
		// evictScratch (guarded by admitMu, like the rest of the eviction
		// state) is recycled across rounds and calls: at the replacement
		// benchmark's churn rate, rebuilding the candidate slice per victim
		// dominated the allocation profile.
		cands := c.evictScratch[:0]
		c.entries.forEach(func(e *entry) bool {
			if e.id != exclude {
				cands = append(cands, e)
			}
			return true
		})
		c.evictScratch = cands
		if len(cands) == 0 {
			return evicted, cause
		}
		c.rngMu.Lock()
		victim := c.policy.Victim(cands, now, c.rng)
		c.rngMu.Unlock()
		e := c.removeEntryLocked(victim)
		if e == nil {
			return evicted, cause
		}
		evicted++
		c.ctr.evictions.Add(1)
		if c.tel != nil {
			c.tel.RecordEvent(telemetry.Event{
				At: now.UnixNano(), Kind: telemetry.EventEvict,
				Detail: e.app, Value: e.importance(), Aux: float64(e.size),
			})
		}
	}
	return evicted, cause
}

// unlinkEntry detaches an already-claimed entry from its owner indices
// and settles the accounting. The caller must have won the entry via
// loadAndDelete, which makes the unlink exactly-once. Takes each
// owner's index lock (after admitMu in the documented order, when the
// caller holds it).
func (c *Cache) unlinkEntry(e *entry) {
	for _, ki := range e.owners {
		ki.mu.Lock()
		if _, ok := ki.members[e.id]; ok {
			ki.idx.Remove(index.ID(e.id))
			delete(ki.members, e.id)
		}
		ki.mu.Unlock()
	}
	c.bytes.Add(-int64(e.size))
	c.count.Add(-1)
}

// removeEntryLocked removes a live entry whose expiry-heap item is
// still queued: the item becomes stale and is reclaimed either by
// compaction or when its deadline passes. Returns the removed entry,
// or nil when another remover won the race. Caller holds admitMu.
func (c *Cache) removeEntryLocked(id ID) *entry {
	e := c.entries.loadAndDelete(id)
	if e == nil {
		return nil
	}
	c.unlinkEntry(e)
	if c.store != nil {
		// Evictions and invalidations remove entries before their
		// deadline, so replay needs the tombstone; expirations (the
		// purge path) are not logged — recovery drops them by their
		// absolute deadline.
		c.store.LogDelete(uint64(id))
	}
	c.staleExpiry++
	c.maybeCompactExpiryLocked()
	return e
}

// expiryCompactMin keeps tiny heaps from being rebuilt on every
// removal; compaction only kicks in past this many stale items.
const expiryCompactMin = 8

// maybeCompactExpiryLocked rebuilds the expiry heap from the live
// entries once stale items outnumber them, bounding the heap at
// O(live entries) regardless of eviction churn. Caller holds admitMu.
func (c *Cache) maybeCompactExpiryLocked() {
	live := int(c.count.Load())
	if c.staleExpiry < expiryCompactMin || c.staleExpiry <= live {
		return
	}
	h := make(expiryHeap, 0, live)
	c.entries.forEach(func(e *entry) bool {
		h = append(h, expiryItem{at: e.expiresAt, id: e.id})
		return true
	})
	h.init()
	c.expiry = h
	c.staleExpiry = 0
	c.updateNextExpiryLocked()
}

// updateNextExpiryLocked republishes the heap head's deadline for the
// lock-free expiry check. Caller holds admitMu.
func (c *Cache) updateNextExpiryLocked() {
	if len(c.expiry) == 0 {
		c.nextExpiry.Store(math.MaxInt64)
		return
	}
	c.nextExpiry.Store(c.expiry[0].at.UnixNano())
}

// removeAppEntries purges every entry inserted by app (used when the
// reputation system bars an application).
func (c *Cache) removeAppEntries(app string) {
	var ids []ID
	c.entries.forEach(func(e *entry) bool {
		if e.app == app {
			ids = append(ids, e.id)
		}
		return true
	})
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	for _, id := range ids {
		if c.removeEntryLocked(id) != nil {
			c.ctr.evictions.Add(1)
		}
	}
}

// maybePurgeExpired clears expired entries if any are pending. The
// common nothing-expired case is a single atomic load. Called from
// write paths (Put, snapshot capture) — lookups never purge and instead
// filter expired entries at read time.
func (c *Cache) maybePurgeExpired(now time.Time) {
	if now.UnixNano() < c.nextExpiry.Load() {
		return
	}
	c.admitMu.Lock()
	c.purgeExpiredLocked(now)
	c.admitMu.Unlock()
}

// purgeExpiredLocked clears all entries whose validity period has passed
// (§3.6: the management thread "clears all (at the same time) expired
// entries"). It is invoked lazily on every operation and explicitly by
// the janitor. Caller holds admitMu. Returns the number of expirations.
func (c *Cache) purgeExpiredLocked(now time.Time) int {
	purged := 0
	for len(c.expiry) > 0 && !c.expiry[0].at.After(now) {
		item := c.expiry.popMin()
		e := c.entries.loadAndDelete(item.id)
		if e == nil {
			// Stale heap item: its entry was evicted or invalidated
			// earlier. Popping it retires one stale slot.
			if c.staleExpiry > 0 {
				c.staleExpiry--
			}
			continue
		}
		c.unlinkEntry(e)
		c.ctr.expirations.Add(1)
		purged++
		if c.tel != nil {
			c.tel.RecordEvent(telemetry.Event{
				At: now.UnixNano(), Kind: telemetry.EventExpire,
				Detail: e.app, Value: e.importance(), Aux: float64(e.size),
			})
		}
	}
	c.updateNextExpiryLocked()
	return purged
}

// PurgeExpired removes expired entries immediately and reports how many
// were cleared.
func (c *Cache) PurgeExpired() int {
	now := c.clk.Now()
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	return c.purgeExpiredLocked(now)
}

// NextExpiry returns the earliest pending expiration time, used by the
// janitor to schedule its wake-up ("sets the next wake-up time according
// to the expiration time of the new head item", §4.2).
func (c *Cache) NextExpiry() (time.Time, bool) {
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	for len(c.expiry) > 0 {
		head := c.expiry[0]
		if e := c.entries.load(head.id); e != nil {
			return head.at, true
		}
		c.expiry.popMin() // stale
		if c.staleExpiry > 0 {
			c.staleExpiry--
		}
	}
	c.updateNextExpiryLocked()
	return time.Time{}, false
}

// Len returns the number of live entries.
func (c *Cache) Len() int { return int(c.count.Load()) }

// Bytes returns the total size of live entries.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// expiryLen reports the expiry heap's current length (tests only).
func (c *Cache) expiryLen() int {
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	return len(c.expiry)
}

// TunerStats returns the threshold tuner's state for (fn, keyType).
func (c *Cache) TunerStats(fn, keyType string) (TunerStats, error) {
	ki, err := c.keyIndexFor(fn, keyType)
	if err != nil {
		return TunerStats{}, err
	}
	return ki.tuner.Stats(), nil
}

// ForceThreshold activates (fn, keyType)'s tuner at a fixed threshold,
// used by experiments that sweep thresholds (Figure 9).
func (c *Cache) ForceThreshold(fn, keyType string, threshold float64) error {
	ki, err := c.keyIndexFor(fn, keyType)
	if err != nil {
		return err
	}
	ki.tuner.ForceActivate(threshold)
	return nil
}

// Reputation returns the reputation table, or nil when disabled.
func (c *Cache) Reputation() *Reputation { return c.rep }

// Stats returns a snapshot of cache counters. Lookup and put totals
// are derived by summing the per-(function, key type) series under the
// function-table read lock; every count is still read from an atomic,
// so Stats never blocks the data path beyond a funcsMu read share.
// Stats.Misses preserves its historical semantics: a dropout counts as
// a miss too.
func (c *Cache) Stats() Stats {
	s := Stats{
		RejectedPuts:  c.ctr.rejectedPuts.Load(),
		Evictions:     c.ctr.evictions.Load(),
		Expirations:   c.ctr.expirations.Load(),
		Invalidations: c.ctr.invalidations.Load(),
		SavedCompute:  time.Duration(c.ctr.savedCompute.Load()),
	}
	c.funcsMu.RLock()
	for _, fc := range c.funcs {
		s.Puts += fc.stats.puts.Load()
		for _, ki := range fc.kis {
			d := ki.ctr.dropouts.Load()
			s.Hits += ki.ctr.hits.Load()
			s.Misses += ki.ctr.misses.Load() + d
			s.Dropouts += d
		}
	}
	c.funcsMu.RUnlock()
	s.Entries = int(c.count.Load())
	s.Bytes = c.bytes.Load()
	return s
}

// Stats counts cache activity.
type Stats struct {
	Hits         int64
	Misses       int64
	Dropouts     int64
	Puts         int64
	RejectedPuts int64
	Evictions    int64
	Expirations  int64
	// Invalidations counts entries dropped by explicit invalidation
	// calls.
	Invalidations int64
	Entries       int
	Bytes         int64
	// SavedCompute totals the recorded computation overhead of every
	// hit: the time the applications did not have to spend.
	SavedCompute time.Duration
}

// HitRate returns hits / (hits + misses), or 0 when no lookups occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// estimateSize approximates the footprint of a cached value.
func estimateSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case []byte:
		return len(x)
	case string:
		return len(x)
	case vec.Vector:
		return x.SizeBytes()
	case []float64:
		return 8 * len(x)
	case bool:
		return 1
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	default:
		// A conservative default for structured values.
		return 64
	}
}

// expiryItem pairs an entry with its deadline in the expiry queue.
type expiryItem struct {
	at time.Time
	id ID
}

// expiryHeap is a binary min-heap on the deadline. The push/popMin/init
// operations are implemented directly rather than through
// container/heap: the interface-based API boxes every expiryItem into
// an `any`, which put one allocation on every Put (and one per pop on
// the purge path) for a value two words wide.
type expiryHeap []expiryItem

// push inserts it, sifting up to restore the heap order.
func (h *expiryHeap) push(it expiryItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].at.Before(s[parent].at) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// popMin removes and returns the earliest-deadline item. The caller
// must ensure the heap is non-empty.
func (h *expiryHeap) popMin() expiryItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	if n > 1 {
		(*h).siftDown(0)
	}
	return top
}

// siftDown restores the heap order below index i.
func (h expiryHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].at.Before(h[l].at) {
			m = r
		}
		if !h[m].at.Before(h[i].at) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// init heapifies an arbitrarily ordered slice in O(n).
func (h expiryHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}
