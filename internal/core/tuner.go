package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// TunerConfig parameterizes the NN-based threshold tuning algorithm
// (Algorithm 1 of the paper). The zero value is replaced by the paper's
// defaults: k = 4, γ = 0.8, z = 100.
type TunerConfig struct {
	// K is the tightening divisor: a false positive sets θ ← θ/K.
	// The paper evaluates K ∈ {2, 4, 8} in Figure 7 and defaults to 4.
	K float64
	// Gamma is the EWMA weight for loosening:
	// θ ← (1-γ)·‖key′-key‖ + γ·θ. Default 0.8.
	Gamma float64
	// WarmupZ is the number of entries that must be inserted before the
	// algorithm "kicks into action" (default 100). Figure 6 studies the
	// effect of this value on threshold accuracy.
	WarmupZ int
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.K <= 0 {
		c.K = 4
	}
	if c.Gamma <= 0 || c.Gamma >= 1 {
		c.Gamma = 0.8
	}
	if c.WarmupZ <= 0 {
		c.WarmupZ = 100
	}
	return c
}

// Tuner maintains the similarity threshold for one key index,
// implementing Algorithm 1: the threshold starts at zero (exact match
// only), is initialized once WarmupZ entries have been cached, is
// loosened conservatively by an exponentially weighted moving average
// when a distant neighbour turns out to share the new entry's value, and
// is tightened aggressively (θ/K) when a neighbour within the threshold
// turns out to have a different value — a condition surfaced by the
// random-dropout mechanism (§3.4).
//
// The tuner's own mutex is its sole synchronization: it is a leaf in
// the cache's lock hierarchy, always called with no cache lock held, so
// tuner updates never serialize lookups or puts on other key types.
// The current threshold is additionally mirrored in an atomic so that
// Threshold() — called on every cache lookup — is a single atomic load
// rather than a lock acquisition.
type Tuner struct {
	mu        sync.Mutex
	cfg       TunerConfig
	threshold float64       // guarded by mu (read-modify-write)
	thr       atomic.Uint64 // Float64bits mirror of threshold, for lock-free reads
	puts      int
	active    bool
	// warmupSame and warmupDiff record the NN distances seen during
	// warm-up for same-value and different-value neighbours, so the
	// initial threshold reflects the data (Figure 6's "initializing the
	// threshold" from cached entries).
	warmupSame []float64
	warmupDiff []float64
	// counters for observability.
	tightenings int
	loosenings  int
}

// NewTuner returns a tuner with the given configuration (zero fields take
// the paper's defaults).
func NewTuner(cfg TunerConfig) *Tuner {
	return &Tuner{cfg: cfg.withDefaults()}
}

// Threshold returns the current similarity threshold. It is zero until
// warm-up completes. Lock-free: safe to call from any lookup.
func (t *Tuner) Threshold() float64 {
	return math.Float64frombits(t.thr.Load())
}

// setThresholdLocked updates the threshold and its atomic mirror;
// caller holds t.mu.
func (t *Tuner) setThresholdLocked(v float64) {
	t.threshold = v
	t.thr.Store(math.Float64bits(v))
}

// Active reports whether warm-up has completed.
func (t *Tuner) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Reset returns the tuner to its initial state. register() resets the
// threshold per §4.3.
func (t *Tuner) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setThresholdLocked(0)
	t.puts = 0
	t.active = false
	t.warmupSame = nil
	t.warmupDiff = nil
	t.tightenings = 0
	t.loosenings = 0
}

// ObservePut feeds one put() observation into Algorithm 1.
//
// dist is the distance from the new key to its nearest neighbour in the
// index (before insertion); sameValue reports whether that neighbour's
// cached value equals the newly computed one; haveNeighbor is false when
// the index was empty.
func (t *Tuner) ObservePut(dist float64, sameValue, haveNeighbor bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.puts++
	if !t.active {
		if haveNeighbor {
			if sameValue {
				t.warmupSame = append(t.warmupSame, dist)
			} else {
				t.warmupDiff = append(t.warmupDiff, dist)
			}
		}
		if t.puts >= t.cfg.WarmupZ {
			t.activateLocked()
		}
		return
	}
	if !haveNeighbor {
		return
	}
	switch {
	case dist <= t.threshold && !sameValue:
		// Line 7-8: threshold too loose; tighten aggressively.
		t.setThresholdLocked(t.threshold / t.cfg.K)
		t.tightenings++
	case dist > t.threshold && sameValue:
		// Line 9-10: threshold too tight; loosen with an EWMA.
		t.setThresholdLocked((1-t.cfg.Gamma)*dist + t.cfg.Gamma*t.threshold)
		t.loosenings++
	}
}

// activateLocked initializes the threshold from the warm-up
// observations via WarmupThreshold and discards the recorded samples.
func (t *Tuner) activateLocked() {
	t.active = true
	t.setThresholdLocked(WarmupThreshold(t.warmupSame, t.warmupDiff))
	t.warmupSame = nil
	t.warmupDiff = nil
}

// warmupFalsePositivePenalty weighs an admitted different-value pair
// against covered same-value pairs when choosing the initial threshold:
// a wrong reuse costs accuracy, which the paper values over raw savings
// ("the threshold is loosened conservatively", §3.5).
const warmupFalsePositivePenalty = 4

// WarmupThreshold chooses the initial similarity threshold from warm-up
// nearest-neighbour observations: the distances at which a new entry's
// nearest cached neighbour carried the same value (reuse would have been
// correct) and a different value (reuse would have been wrong). It
// returns the cut that maximizes covered same-value pairs minus a
// penalty per admitted different-value pair — the observed diameter of
// the "similar result" cluster (§3.5 intuition), discriminatively
// bounded. With more warm-up entries both estimates sharpen, which is
// why threshold accuracy grows with the number of initializing entries
// (Figure 6).
func WarmupThreshold(same, diff []float64) float64 {
	if len(same) == 0 {
		return 0
	}
	sortedSame := append([]float64(nil), same...)
	sortedDiff := append([]float64(nil), diff...)
	sort.Float64s(sortedSame)
	sort.Float64s(sortedDiff)
	best, bestScore := 0.0, 0.0
	j := 0
	for i, th := range sortedSame {
		for j < len(sortedDiff) && sortedDiff[j] <= th {
			j++
		}
		score := float64(i+1) - warmupFalsePositivePenalty*float64(j)
		if score > bestScore {
			best, bestScore = th, score
		}
	}
	return best
}

// ForceActivate completes warm-up immediately with the given initial
// threshold, used by experiments that sweep fixed thresholds (Figure 9).
func (t *Tuner) ForceActivate(threshold float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.active = true
	t.setThresholdLocked(threshold)
}

// TunerState is the tuner's complete durable state: everything needed
// to resume Algorithm 1 after a restart without re-learning, including
// the warm-up observations of a tuner that has not yet activated.
type TunerState struct {
	Threshold   float64
	Active      bool
	Puts        int
	Tightenings int
	Loosenings  int
	WarmupSame  []float64
	WarmupDiff  []float64
}

// ExportState captures the full state for persistence. The returned
// slices are copies.
func (t *Tuner) ExportState() TunerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TunerState{
		Threshold:   t.threshold,
		Active:      t.active,
		Puts:        t.puts,
		Tightenings: t.tightenings,
		Loosenings:  t.loosenings,
		WarmupSame:  append([]float64(nil), t.warmupSame...),
		WarmupDiff:  append([]float64(nil), t.warmupDiff...),
	}
}

// RestoreState replaces the tuner's state with a previously exported
// one, so a restarted cache resumes tuning exactly where it left off —
// threshold, activation, counters, and any in-flight warm-up samples.
func (t *Tuner) RestoreState(s TunerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setThresholdLocked(s.Threshold)
	t.active = s.Active
	t.puts = s.Puts
	t.tightenings = s.Tightenings
	t.loosenings = s.Loosenings
	t.warmupSame = append([]float64(nil), s.WarmupSame...)
	t.warmupDiff = append([]float64(nil), s.WarmupDiff...)
}

// Stats reports counters for observability and experiment output.
func (t *Tuner) Stats() TunerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TunerStats{
		Threshold:   t.threshold,
		Puts:        t.puts,
		Active:      t.active,
		Tightenings: t.tightenings,
		Loosenings:  t.loosenings,
	}
}

// TunerStats is a snapshot of a tuner's state.
type TunerStats struct {
	Threshold   float64
	Puts        int
	Active      bool
	Tightenings int
	Loosenings  int
}

// String implements fmt.Stringer.
func (s TunerStats) String() string {
	return fmt.Sprintf("threshold=%.6g puts=%d active=%v tighten=%d loosen=%d",
		s.Threshold, s.Puts, s.Active, s.Tightenings, s.Loosenings)
}
