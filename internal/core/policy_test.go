package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mkEntry(id ID, cost time.Duration, accesses int64, size int, last, inserted time.Time) *entry {
	e := &entry{id: id, cost: cost, size: size, insertedAt: inserted}
	e.accessCount.Store(accesses)
	e.lastAccess.Store(last.UnixNano())
	return e
}

func TestNewPolicy(t *testing.T) {
	for _, k := range []PolicyKind{PolicyImportance, PolicyLRU, PolicyRandom, PolicyFIFO} {
		p, err := NewPolicy(k)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", k, err)
		}
		if p.Name() != k {
			t.Errorf("Name = %s, want %s", p.Name(), k)
		}
	}
	if p, err := NewPolicy(""); err != nil || p.Name() != PolicyImportance {
		t.Errorf("default policy: %v, %v", p, err)
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestImportanceVictim(t *testing.T) {
	now := time.Unix(100, 0)
	p, _ := NewPolicy(PolicyImportance)
	entries := []*entry{
		mkEntry(1, time.Second, 10, 10, now, now),      // imp = 1.0
		mkEntry(2, time.Second, 1, 100, now, now),      // imp = 0.01 ← victim
		mkEntry(3, 10*time.Second, 100, 10, now, now),  // imp = 100
		mkEntry(4, time.Millisecond, 50, 10, now, now), // imp = 0.005... wait
	}
	// entry 4: 0.001 * 50 / 10 = 0.005 ← actually the victim.
	if got := p.Victim(entries, now, nil); got != 4 {
		t.Errorf("victim = %d, want 4", got)
	}
}

func TestImportanceTieBreaksByID(t *testing.T) {
	now := time.Unix(0, 0)
	p, _ := NewPolicy(PolicyImportance)
	entries := []*entry{
		mkEntry(7, time.Second, 1, 10, now, now),
		mkEntry(3, time.Second, 1, 10, now, now),
	}
	if got := p.Victim(entries, now, nil); got != 3 {
		t.Errorf("tie break: victim = %d, want 3", got)
	}
}

func TestLRUVictim(t *testing.T) {
	base := time.Unix(100, 0)
	p, _ := NewPolicy(PolicyLRU)
	entries := []*entry{
		mkEntry(1, time.Second, 1, 1, base.Add(3*time.Second), base),
		mkEntry(2, time.Second, 1, 1, base.Add(1*time.Second), base), // ← victim
		mkEntry(3, time.Second, 1, 1, base.Add(2*time.Second), base),
	}
	if got := p.Victim(entries, base, nil); got != 2 {
		t.Errorf("LRU victim = %d, want 2", got)
	}
}

func TestFIFOVictim(t *testing.T) {
	base := time.Unix(100, 0)
	p, _ := NewPolicy(PolicyFIFO)
	entries := []*entry{
		mkEntry(1, time.Second, 1, 1, base, base.Add(2*time.Second)),
		mkEntry(2, time.Second, 1, 1, base, base.Add(1*time.Second)), // ← victim
	}
	if got := p.Victim(entries, base, nil); got != 2 {
		t.Errorf("FIFO victim = %d, want 2", got)
	}
}

func TestRandomVictimIsMember(t *testing.T) {
	now := time.Unix(0, 0)
	p, _ := NewPolicy(PolicyRandom)
	rng := rand.New(rand.NewSource(1))
	entries := []*entry{
		mkEntry(10, time.Second, 1, 1, now, now),
		mkEntry(20, time.Second, 1, 1, now, now),
		mkEntry(30, time.Second, 1, 1, now, now),
	}
	seen := make(map[ID]bool)
	for i := 0; i < 100; i++ {
		v := p.Victim(entries, now, rng)
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("victim %d not a member", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Error("random policy never varied its choice")
	}
}

// Property: the importance victim always has globally minimal importance.
func TestImportanceVictimMinimalProperty(t *testing.T) {
	p, _ := NewPolicy(PolicyImportance)
	now := time.Unix(0, 0)
	f := func(costs []uint16, accesses []uint8) bool {
		if len(costs) == 0 {
			return true
		}
		entries := make([]*entry, len(costs))
		for i := range costs {
			acc := int64(1)
			if i < len(accesses) {
				acc = int64(accesses[i]) + 1
			}
			entries[i] = mkEntry(ID(i+1), time.Duration(costs[i])*time.Millisecond, acc, 10, now, now)
		}
		victim := p.Victim(entries, now, nil)
		var vImp float64
		for _, e := range entries {
			if e.id == victim {
				vImp = e.importance()
			}
		}
		for _, e := range entries {
			if e.importance() < vImp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntryImportanceZeroSize(t *testing.T) {
	e := mkEntry(1, time.Second, 2, 0, time.Time{}, time.Time{})
	if got := e.snapshot().Importance(); got != 2 {
		t.Errorf("Importance with size 0 = %v, want cost*freq/1 = 2", got)
	}
}
