package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

// Property: for any random population, a snapshot round trip preserves
// every lookup outcome (same hits, same values) at the same threshold.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, thRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		threshold := float64(thRaw%20) / 4
		clk := clock.NewVirtual(time.Unix(0, 0))
		mk := func() *Cache {
			c := New(Config{Clock: clk, DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
			if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k", Dim: 2}); err != nil {
				t.Fatal(err)
			}
			return c
		}
		src := mk()
		for i := 0; i < n; i++ {
			_, err := src.Put("f", PutRequest{
				Keys:  map[string]vec.Vector{"k": {rng.Float64() * 10, rng.Float64() * 10}},
				Value: int64(i),
				Cost:  time.Duration(rng.Intn(1000)) * time.Millisecond,
				TTL:   time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := src.ForceThreshold("f", "k", threshold); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := src.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		dst := mk()
		if _, err := dst.ReadSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if dst.Len() != src.Len() {
			return false
		}
		for q := 0; q < 20; q++ {
			query := vec.Vector{rng.Float64() * 10, rng.Float64() * 10}
			a, err := src.Lookup("f", "k", query)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dst.Lookup("f", "k", query)
			if err != nil {
				t.Fatal(err)
			}
			if a.Hit != b.Hit {
				return false
			}
			if a.Hit && a.Value != b.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
