package core

import (
	"time"

	"repro/internal/telemetry"
)

// Span recording for the core lookup/put pipeline. The recording
// policy mirrors the event tracer's sampling discipline (telemetry.go):
// hits and puts build a span only when traced — forced by a propagated
// trace ID or sampled by spanSampleMask — while misses, dropouts, and
// errors always record one. Detailed (traced) spans carry stage clocks
// and a tuner snapshot; always-recorded spans carry only the decision
// fields the lookup computed anyway, so they cost one ring write.

// spanSampleMask samples locally initiated spans 1-in-64 against the
// low bits of the lookup's start timestamp — a clock value the lookup
// has already paid for, so the sampling decision costs one AND and one
// compare, no extra atomics. 1-in-64 matches hitTraceSampleMask: at
// that rate the stage clocks (two to four extra monotonic reads) and
// the tuner.Stats() mutex are amortized into noise on a sub-microsecond
// lookup.
const spanSampleMask = 63

// nowFast reads the stage clock: the monotonic wall clock when the
// cache runs on real time, the injected clock otherwise (so tests with
// fake clocks see consistent span timings).
func (c *Cache) nowFast() time.Time {
	if c.realClk {
		return time.Now()
	}
	return c.clk.Now()
}

// sinceFast measures elapsed stage time from a nowFast mark.
func (c *Cache) sinceFast(t time.Time) time.Duration {
	if c.realClk {
		return time.Since(t)
	}
	return c.clk.Now().Sub(t)
}

// spanFields carries the per-call variation of a lookup span so
// recordLookupSpan keeps a manageable signature.
type spanFields struct {
	outcome   string
	errText   string
	dist      float64
	threshold float64
	roll      float64
	probes    int
	stages    []telemetry.SpanStage
	trace     telemetry.TraceID
	// detailed attaches stage clocks and the tuner snapshot (traced
	// lookups only: tuner.Stats() takes the tuner mutex).
	detailed bool
}

// recordLookupSpan assembles and records one core-layer span, minting a
// trace ID when none was propagated so the result (and any exemplar)
// always references a retained trace. It stamps the key type's latency
// histogram exemplar with the span's duration, linking the /metrics
// aggregate to this concrete trace. Returns the span's trace ID.
// Caller guarantees c.spans != nil; ki may be nil (resolution errors).
func (c *Cache) recordLookupSpan(ki *keyIndex, fn, keyType string, start time.Time, f spanFields) telemetry.TraceID {
	trace := f.trace
	if trace == 0 {
		trace = telemetry.NewTraceID()
	}
	sp := telemetry.Span{
		Trace:       trace,
		Start:       start.UnixNano(),
		DurationNs:  int64(c.since(start)),
		Layer:       "core",
		Function:    fn,
		KeyType:     keyType,
		Outcome:     f.outcome,
		Err:         f.errText,
		Distance:    f.dist,
		Threshold:   f.threshold,
		DropoutRoll: f.roll,
		DropoutRate: c.cfg.DropoutRate,
		Probes:      f.probes,
	}
	if ki != nil {
		sp.IndexKind = string(ki.spec.Index)
	}
	if f.detailed {
		sp.Stages = f.stages
		if ki != nil {
			st := ki.tuner.Stats()
			sp.Tuner = &telemetry.TunerState{
				Threshold:   st.Threshold,
				Puts:        st.Puts,
				Active:      st.Active,
				Tightenings: st.Tightenings,
				Loosenings:  st.Loosenings,
			}
		}
	}
	c.spans.Record(sp)
	if ki != nil && ki.lat != nil {
		ki.lat.SetExemplar(time.Duration(sp.DurationNs), trace)
	}
	return trace
}
