package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vec"
)

// TestConcurrentChaos hammers one cache from many goroutines mixing
// every public operation — lookups, puts, invalidations, snapshots,
// registrations, stats, purges — under capacity pressure and TTL churn.
// It asserts only invariants (no panics, no negative accounting,
// byte/entry consistency); run with -race for the full value.
func TestConcurrentChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped with -short")
	}
	clk := clock.NewVirtual(time.Unix(0, 0))
	c := New(Config{
		Clock:       clk,
		DropoutRate: 0.05,
		Seed:        9,
		MaxEntries:  128,
		Tuner:       TunerConfig{WarmupZ: 20},
	})
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "a", Dim: 2}, KeyTypeSpec{Name: "b", Dim: 2}); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const opsPer = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPer; i++ {
				key := vec.Vector{rng.Float64() * 50, rng.Float64() * 50}
				switch rng.Intn(10) {
				case 0:
					c.InvalidateRadius("f", "a", key, rng.Float64()*5)
				case 1:
					var buf bytes.Buffer
					if _, err := c.WriteSnapshot(&buf); err != nil {
						t.Error(err)
						return
					}
				case 2:
					clk.Advance(time.Duration(rng.Intn(100)) * time.Millisecond)
				case 3:
					c.Stats()
					c.PurgeExpired()
					// Concurrent registration: a fresh side function
					// (copy-on-write of the table) and a re-registration
					// of "f" adding nothing but resetting its tuners.
					if err := c.RegisterFunction(fmt.Sprintf("side-%d", g), KeyTypeSpec{Name: "a", Dim: 2}); err != nil {
						t.Error(err)
						return
					}
					if err := c.RegisterFunction("f", KeyTypeSpec{Name: "a", Dim: 2}); err != nil {
						t.Error(err)
						return
					}
				case 4, 5, 6:
					if _, err := c.Lookup("f", "a", key); err != nil {
						t.Error(err)
						return
					}
				default:
					_, err := c.Put("f", PutRequest{
						Keys:  map[string]vec.Vector{"a": key, "b": {key[1], key[0]}},
						Value: g*opsPer + i,
						Cost:  time.Duration(rng.Intn(1000)) * time.Millisecond,
						TTL:   time.Duration(1+rng.Intn(60)) * time.Second,
						Size:  32,
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Entries < 0 || st.Bytes < 0 || st.Hits < 0 || st.Misses < 0 {
		t.Errorf("negative accounting: %+v", st)
	}
	if st.Entries > 128 {
		t.Errorf("capacity exceeded: %d entries", st.Entries)
	}
	if got := int64(st.Entries) * 32; st.Bytes != got {
		t.Errorf("bytes %d inconsistent with %d entries × 32", st.Bytes, st.Entries)
	}
	// The cache still works after the storm.
	key := vec.Vector{1, 1}
	if _, err := c.Put("f", PutRequest{
		Keys: map[string]vec.Vector{"a": key}, Value: "final", Size: 32,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceThreshold("f", "a", 0.001); err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < 50 && !found; i++ { // dropout may skip a few
		res, err := c.Lookup("f", "a", key)
		if err != nil {
			t.Fatal(err)
		}
		found = res.Hit
	}
	if !found {
		t.Error("cache unusable after chaos")
	}
}
