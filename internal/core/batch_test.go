package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

func batchTestCache(t testing.TB) *Cache {
	t.Helper()
	c := New(Config{DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}})
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	return c
}

// MultiLookup must return index-aligned results matching what the
// single-op path would have produced, sub-op errors included.
func TestMultiLookupAlignedResults(t *testing.T) {
	c := batchTestCache(t)
	for i := 0; i < 8; i++ {
		if _, err := c.Put("f", PutRequest{
			Keys:  map[string]vec.Vector{"k": {float64(10 * i), 0}},
			Value: fmt.Sprintf("v%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ForceThreshold("f", "k", 1.0); err != nil {
		t.Fatal(err)
	}
	reqs := make([]BatchLookup, 0, 10)
	for i := 0; i < 8; i++ {
		reqs = append(reqs, BatchLookup{Function: "f", KeyType: "k", Key: vec.Vector{float64(10 * i), 0.01}})
	}
	// A sub-op against an unknown function and one against an unknown
	// key type must fail individually without failing siblings.
	reqs = append(reqs,
		BatchLookup{Function: "nope", KeyType: "k", Key: vec.Vector{1}},
		BatchLookup{Function: "f", KeyType: "nope", Key: vec.Vector{1}},
	)
	out := c.MultiLookup(reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d results for %d reqs", len(out), len(reqs))
	}
	for i := 0; i < 8; i++ {
		if out[i].Err != nil {
			t.Fatalf("sub %d: %v", i, out[i].Err)
		}
		if !out[i].Hit || out[i].Value != fmt.Sprintf("v%d", i) {
			t.Fatalf("sub %d: hit=%v value=%v", i, out[i].Hit, out[i].Value)
		}
	}
	if !errors.Is(out[8].Err, ErrUnknownFunction) {
		t.Errorf("sub 8 err = %v, want ErrUnknownFunction", out[8].Err)
	}
	if !errors.Is(out[9].Err, ErrUnknownKeyType) {
		t.Errorf("sub 9 err = %v, want ErrUnknownKeyType", out[9].Err)
	}
	st := c.Stats()
	if st.Hits != 8 {
		t.Errorf("hits = %d, want 8 (errored subs must not count)", st.Hits)
	}
}

// MultiPut must insert every sub-op and report per-sub errors.
func TestMultiPutAlignedResults(t *testing.T) {
	c := batchTestCache(t)
	reqs := make([]BatchPut, 0, 9)
	for i := 0; i < 8; i++ {
		reqs = append(reqs, BatchPut{Function: "f", Req: PutRequest{
			Keys:  map[string]vec.Vector{"k": {float64(10 * i), 0}},
			Value: []byte{byte(i)},
		}})
	}
	reqs = append(reqs, BatchPut{Function: "nope", Req: PutRequest{
		Keys: map[string]vec.Vector{"k": {1}}, Value: []byte("x"),
	}})
	out := c.MultiPut(reqs)
	seen := make(map[ID]bool)
	for i := 0; i < 8; i++ {
		if out[i].Err != nil {
			t.Fatalf("sub %d: %v", i, out[i].Err)
		}
		if out[i].ID == 0 || seen[out[i].ID] {
			t.Fatalf("sub %d: bad or duplicate id %d", i, out[i].ID)
		}
		seen[out[i].ID] = true
	}
	if !errors.Is(out[8].Err, ErrUnknownFunction) {
		t.Errorf("sub 8 err = %v, want ErrUnknownFunction", out[8].Err)
	}
	if c.Len() != 8 {
		t.Errorf("entries = %d, want 8", c.Len())
	}
	// Every inserted entry must be individually findable.
	for i := 0; i < 8; i++ {
		res, err := c.Lookup("f", "k", vec.Vector{float64(10 * i), 0})
		if err != nil || !res.Hit {
			t.Fatalf("lookup after batch put %d: hit=%v err=%v", i, res.Hit, err)
		}
	}
}

// Empty and single-element batches take the inline path and must still
// be correct.
func TestMultiLookupSmallBatches(t *testing.T) {
	c := batchTestCache(t)
	if out := c.MultiLookup(nil); len(out) != 0 {
		t.Fatalf("nil batch: %v", out)
	}
	out := c.MultiLookup([]BatchLookup{{Function: "f", KeyType: "k", Key: vec.Vector{1}}})
	if len(out) != 1 || out[0].Err != nil || out[0].Hit {
		t.Fatalf("singleton batch on empty cache: %+v", out)
	}
}

// Concurrent MultiLookup/MultiPut batches must be race-free and
// consistent (run under -race in CI).
func TestMultiLookupConcurrentBatches(t *testing.T) {
	c := batchTestCache(t)
	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			puts := make([]BatchPut, 16)
			for i := range puts {
				puts[i] = BatchPut{Function: "f", Req: PutRequest{
					Keys:  map[string]vec.Vector{"k": {float64(100*g + i), 0}},
					Value: []byte{byte(g), byte(i)},
				}}
			}
			for _, r := range c.MultiPut(puts) {
				if r.Err != nil {
					t.Errorf("put: %v", r.Err)
				}
			}
			looks := make([]BatchLookup, 16)
			for i := range looks {
				looks[i] = BatchLookup{Function: "f", KeyType: "k", Key: vec.Vector{float64(100*g + i), 0}}
			}
			for i, r := range c.MultiLookup(looks) {
				if r.Err != nil {
					t.Errorf("lookup %d: %v", i, r.Err)
				}
				if !r.Hit {
					t.Errorf("lookup %d: miss for just-put key", i)
				}
			}
		}(g)
	}
	wg.Wait()
}

// A traced batch records spans per sub-op (PR 5 discipline): each
// sub-lookup with its own trace ID must be retained individually.
func TestMultiLookupPerSubSpans(t *testing.T) {
	tel := telemetry.New()
	c := New(Config{DisableDropout: true, Tuner: TunerConfig{WarmupZ: 1}, Telemetry: tel})
	if err := c.RegisterFunction("f", KeyTypeSpec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	reqs := make([]BatchLookup, 4)
	traces := make([]telemetry.TraceID, 4)
	for i := range reqs {
		traces[i] = telemetry.NewTraceID()
		reqs[i] = BatchLookup{
			Function: "f", KeyType: "k", Key: vec.Vector{float64(i)},
			Opts: LookupOptions{Trace: traces[i]},
		}
	}
	out := c.MultiLookup(reqs)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("sub %d: %v", i, r.Err)
		}
		if r.Trace != traces[i] {
			t.Errorf("sub %d: trace = %s, want %s", i, r.Trace, traces[i])
		}
	}
	for _, tr := range traces {
		if n := len(tel.Spans.Find(tr)); n == 0 {
			t.Errorf("trace %s: no span retained", tr)
		}
	}
}
