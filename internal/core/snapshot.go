package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/index"
	"repro/internal/vec"
)

// Snapshot persistence: the paper notes deduplication works across long
// gaps — "the interval could easily be days or longer provided there is
// enough space to store the cached results" (§2.4) — which on a phone
// means surviving service restarts. WriteSnapshot serializes the cache's
// functions, key types, tuner thresholds, and entries; ReadSnapshot
// merges a snapshot into a cache. Key-type extractors and custom metrics
// cannot cross the serialization boundary: restored key types use their
// named built-in metric, and values must be of a gob-serializable basic
// type (entries with other value types are skipped and counted).

func init() {
	gob.Register(vec.Vector{})
	gob.Register([]byte(nil))
}

// SnapshotStats reports what a snapshot operation covered.
type SnapshotStats struct {
	// Functions is the number of function tables written/merged.
	Functions int
	// Entries is the number of entries written/restored.
	Entries int
	// Skipped counts entries left out (non-serializable value, or on
	// restore an expired entry).
	Skipped int
}

// snapshot wire structures (exported fields for gob).
type snapFile struct {
	Version   int
	Now       int64 // clock time at capture, for TTL rebasing
	Functions []snapFunction
	Entries   []snapEntry
}

type snapFunction struct {
	Name     string
	KeyTypes []snapKeyType
}

type snapKeyType struct {
	Name      string
	Metric    string
	Index     string
	Dim       int
	Threshold float64
	Active    bool
}

type snapEntry struct {
	Function    string
	Keys        map[string]vec.Vector
	Value       any
	CostNanos   int64
	Size        int
	AccessCount int64
	ExpiresAt   int64
	App         string
}

// serializableValue reports whether gob can round-trip v under the
// registrations above.
func serializableValue(v any) bool {
	switch v.(type) {
	case nil, bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, string, []byte, vec.Vector:
		return true
	}
	return false
}

// WriteSnapshot serializes the cache state to w. It captures a
// consistent view by holding the function-table and admission read
// locks (plus each key index's read lock while walking its members),
// following the documented lock order; concurrent lookups proceed,
// writes wait.
func (c *Cache) WriteSnapshot(w io.Writer) (SnapshotStats, error) {
	now := c.clk.Now()
	c.maybePurgeExpired(now)
	file := snapFile{Version: 1, Now: now.UnixNano()}

	c.funcsMu.RLock()
	// entryKeys[id][keyType] for each function the entry belongs to.
	entryFuncs := make(map[ID]string)
	entryKeys := make(map[ID]map[string]vec.Vector)
	for fnName, fc := range c.funcs {
		sf := snapFunction{Name: fnName}
		for _, ktName := range fc.order {
			ki := fc.keyTypes[ktName]
			ts := ki.tuner.Stats()
			sf.KeyTypes = append(sf.KeyTypes, snapKeyType{
				Name:      ktName,
				Metric:    ki.spec.Metric.Name(),
				Index:     string(ki.spec.Index),
				Dim:       ki.spec.Dim,
				Threshold: ts.Threshold,
				Active:    ts.Active,
			})
			ki.mu.RLock()
			for id, key := range ki.members {
				entryFuncs[id] = fnName
				if entryKeys[id] == nil {
					entryKeys[id] = make(map[string]vec.Vector, 2)
				}
				entryKeys[id][ktName] = key
			}
			ki.mu.RUnlock()
		}
		file.Functions = append(file.Functions, sf)
	}
	var stats SnapshotStats
	stats.Functions = len(file.Functions)
	c.entries.forEach(func(e *entry) bool {
		if !serializableValue(e.value) {
			stats.Skipped++
			return true
		}
		file.Entries = append(file.Entries, snapEntry{
			Function:    entryFuncs[e.id],
			Keys:        entryKeys[e.id],
			Value:       e.value,
			CostNanos:   int64(e.cost),
			Size:        e.size,
			AccessCount: e.accessCount.Load(),
			ExpiresAt:   e.expiresAt.UnixNano(),
			App:         e.app,
		})
		stats.Entries++
		return true
	})
	c.funcsMu.RUnlock()

	if err := gob.NewEncoder(w).Encode(&file); err != nil {
		return stats, fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return stats, nil
}

// ReadSnapshot merges the snapshot from r into the cache: functions and
// key types are registered (with named built-in metrics and no
// extractors), tuner thresholds restored, and unexpired entries
// re-inserted with their recorded cost, access count, and remaining TTL.
// Entries are adopted one at a time with the same insert-then-publish
// ordering as Put, so a restore can overlap live traffic.
func (c *Cache) ReadSnapshot(r io.Reader) (SnapshotStats, error) {
	var file snapFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return SnapshotStats{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if file.Version != 1 {
		return SnapshotStats{}, fmt.Errorf("core: unsupported snapshot version %d", file.Version)
	}
	var stats SnapshotStats
	for _, sf := range file.Functions {
		specs := make([]KeyTypeSpec, 0, len(sf.KeyTypes))
		for _, kt := range sf.KeyTypes {
			metric, err := vec.MetricByName(kt.Metric)
			if err != nil {
				return stats, err
			}
			specs = append(specs, KeyTypeSpec{
				Name:   kt.Name,
				Metric: metric,
				Index:  index.Kind(kt.Index),
				Dim:    kt.Dim,
			})
		}
		if err := c.RegisterFunction(sf.Name, specs...); err != nil {
			return stats, err
		}
		for _, kt := range sf.KeyTypes {
			if kt.Active {
				if err := c.ForceThreshold(sf.Name, kt.Name, kt.Threshold); err != nil {
					return stats, err
				}
			}
		}
		stats.Functions++
	}

	now := c.clk.Now()
	snapNow := time.Unix(0, file.Now)
	for _, se := range file.Entries {
		remaining := time.Unix(0, se.ExpiresAt).Sub(snapNow)
		if remaining <= 0 || se.Function == "" || len(se.Keys) == 0 {
			stats.Skipped++
			continue
		}
		c.funcsMu.RLock()
		fc := c.funcs[se.Function]
		var names []string
		var kis []*keyIndex
		if fc != nil {
			for ktName := range se.Keys {
				if ki := fc.keyTypes[ktName]; ki != nil {
					names = append(names, ktName)
					kis = append(kis, ki)
				}
			}
		}
		c.funcsMu.RUnlock()
		if fc == nil {
			stats.Skipped++
			continue
		}
		id := ID(c.nextID.Add(1))
		e := &entry{
			id:         id,
			value:      se.Value,
			cost:       time.Duration(se.CostNanos),
			size:       se.Size,
			app:        se.App,
			insertedAt: now,
			expiresAt:  now.Add(remaining),
		}
		e.accessCount.Store(se.AccessCount)
		e.lastAccess.Store(now.UnixNano())
		inserted := false
		for i, ki := range kis {
			key := se.Keys[names[i]]
			if len(key) == 0 {
				continue
			}
			ki.mu.Lock()
			if err := ki.idx.Insert(index.ID(id), key); err == nil {
				ki.members[id] = key
				e.owners = append(e.owners, ki)
				inserted = true
			}
			ki.mu.Unlock()
		}
		if !inserted {
			stats.Skipped++
			continue
		}
		c.entries.store(e)
		c.count.Add(1)
		c.bytes.Add(int64(e.size))
		c.admitMu.Lock()
		c.expiry.push(expiryItem{at: e.expiresAt, id: id})
		c.updateNextExpiryLocked()
		c.admitMu.Unlock()
		stats.Entries++
	}
	c.admitMu.Lock()
	c.evictLocked(now, 0)
	c.admitMu.Unlock()
	return stats, nil
}
