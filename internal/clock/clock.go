// Package clock abstracts time for the Potluck cache and its experiment
// harness. The paper's evaluation replays request sequences whose
// simulated computations cost up to ten seconds each (§5.3); running them
// against a virtual clock reproduces the arithmetic of the paper's
// metrics in milliseconds of wall time, deterministically.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and timers. The cache uses it for entry
// expiry and cost accounting; experiments inject a Virtual clock.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep advances this clock by d. On the real clock it blocks; on a
	// virtual clock it advances instantly.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a deterministic, manually-advanced clock. The zero value is
// not ready for use; construct with NewVirtual. Virtual is safe for
// concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
}

// NewVirtual returns a virtual clock starting at the given time. A common
// convention in tests is clock.NewVirtual(time.Unix(0, 0)).
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the clock; it never blocks.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// After implements Clock. The returned channel fires when the virtual
// clock is advanced past the deadline.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := v.now.Add(d)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	heap.Push(&v.timers, &timer{at: deadline, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing any timers whose deadlines
// are reached. Negative durations are ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
	for len(v.timers) > 0 && !v.timers[0].at.After(v.now) {
		t := heap.Pop(&v.timers).(*timer)
		t.ch <- v.now
	}
}

// Set moves the clock to the given instant, which must not be earlier
// than the current time; earlier instants are ignored.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	d := t.Sub(v.now)
	v.mu.Unlock()
	v.Advance(d)
}

type timer struct {
	at time.Time
	ch chan time.Time
}

type timerHeap []*timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
