package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := Real{}
	t1 := c.Now()
	c.Sleep(time.Millisecond)
	t2 := c.Now()
	if !t2.After(t1) {
		t.Errorf("real clock did not advance: %v !> %v", t2, t1)
	}
}

func TestVirtualAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now = %v, want %v", got, start)
	}
	v.Advance(5 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Errorf("after Advance: %v", got)
	}
	v.Advance(-time.Second) // ignored
	if got := v.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Errorf("negative Advance changed time: %v", got)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Hour) // must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("virtual Sleep blocked")
	}
	if got := v.Now(); !got.Equal(time.Unix(3600, 0)) {
		t.Errorf("Sleep advanced to %v", got)
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch1 := v.After(time.Second)
	ch2 := v.After(2 * time.Second)

	v.Advance(500 * time.Millisecond)
	select {
	case <-ch1:
		t.Fatal("timer fired early")
	default:
	}

	v.Advance(600 * time.Millisecond) // now at 1.1s
	select {
	case <-ch1:
	default:
		t.Fatal("ch1 did not fire at deadline")
	}
	select {
	case <-ch2:
		t.Fatal("ch2 fired early")
	default:
	}

	v.Advance(time.Second) // 2.1s
	select {
	case <-ch2:
	default:
		t.Fatal("ch2 did not fire")
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualSet(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Set(time.Unix(100, 0))
	if got := v.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Errorf("Set: now = %v", got)
	}
	v.Set(time.Unix(50, 0)) // earlier: ignored
	if got := v.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Errorf("Set backwards changed time: %v", got)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).Add(8 * 1000 * time.Millisecond)
	if got := v.Now(); !got.Equal(want) {
		t.Errorf("concurrent Advance: now = %v, want %v", got, want)
	}
}

func TestVirtualManyTimers(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var chans []<-chan time.Time
	for i := 10; i >= 1; i-- {
		chans = append(chans, v.After(time.Duration(i)*time.Second))
	}
	v.Advance(11 * time.Second)
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Errorf("timer %d did not fire", i)
		}
	}
}
