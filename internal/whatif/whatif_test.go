package whatif

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

func TestSampleHashSpatial(t *testing.T) {
	a := vec.Vector{1, 2, 3}
	b := vec.Vector{1, 2, 3}
	if sampleHash(a) != sampleHash(b) {
		t.Fatal("identical keys must hash identically")
	}
	if sampleHash(vec.Vector{1, 2, 3.0001}) == sampleHash(a) {
		t.Fatal("distinct keys should (overwhelmingly) hash differently")
	}
}

func TestSampleRate(t *testing.T) {
	p := New(Config{Rate: 0.25})
	rng := rand.New(rand.NewSource(7))
	sampled := 0
	const n = 20000
	for i := 0; i < n; i++ {
		k := vec.Vector{rng.Float64(), rng.Float64()}
		if sampleHash(k) <= p.sampleMax {
			sampled++
		}
	}
	got := float64(sampled) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("sample rate: got %.3f, want ≈0.25", got)
	}
}

func TestRingOrderAndOverflow(t *testing.T) {
	r := newRing(3) // 8 slots
	for i := 0; i < 8; i++ {
		if !r.push(event{id: uint64(i)}) {
			t.Fatalf("push %d rejected on non-full ring", i)
		}
	}
	if r.push(event{id: 99}) {
		t.Fatal("push accepted on full ring")
	}
	for i := 0; i < 8; i++ {
		ev, ok := r.pop()
		if !ok || ev.id != uint64(i) {
			t.Fatalf("pop %d: got (%v, %v)", i, ev.id, ok)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
	// The ring is reusable after a full lap.
	if !r.push(event{id: 42}) {
		t.Fatal("push rejected after drain")
	}
	if ev, ok := r.pop(); !ok || ev.id != 42 {
		t.Fatal("second-lap pop failed")
	}
}

func TestGhostCapacityAndPolicies(t *testing.T) {
	kt := ktKey{"fn", "feat"}
	mk := func(id uint64, costNs int64, at int64) *ghostEntry {
		// hash must be the key's identity (production uses sampleHash):
		// byHash enumerates the series, so colliding hashes shadow keys.
		return &ghostEntry{
			id: id, size: 1, costNs: costNs, accessCount: 1,
			lastAccess: at, insertedAt: at,
			keys: []ghostKey{{kt: kt, key: vec.Vector{float64(id)}, hash: sampleHash(vec.Vector{float64(id)})}},
		}
	}

	lru := newGhost(1, "lru", 2, 0, 1)
	lru.put(mk(1, 100, 10))
	lru.put(mk(2, 100, 20))
	lru.lookup(kt, vec.Vector{1}, 901, 0.1, 30) // touch 1 → 2 is now LRU
	lru.put(mk(3, 100, 40))
	if _, ok := lru.entries[2]; ok {
		t.Fatal("lru ghost should have evicted entry 2")
	}
	if _, ok := lru.entries[1]; !ok {
		t.Fatal("lru ghost evicted the recently-touched entry")
	}

	imp := newGhost(1, "importance", 2, 0, 1)
	imp.put(mk(1, 1000, 10)) // expensive → important
	imp.put(mk(2, 1, 20))    // cheap → first victim
	imp.put(mk(3, 500, 30))
	if _, ok := imp.entries[2]; ok {
		t.Fatal("importance ghost should have evicted the cheap entry")
	}

	// Capacity scaling: mult 2 × rate 0.5 leaves the bound unchanged.
	g := newGhost(2, "lru", 10, 0, 0.5)
	if g.capEntries != 10 {
		t.Fatalf("scaled capacity: got %d, want 10", g.capEntries)
	}
}

func TestGhostLookupThreshold(t *testing.T) {
	kt := ktKey{"fn", "feat"}
	g := newGhost(1, "lru", 10, 0, 1)
	g.put(&ghostEntry{
		id: 1, size: 1, accessCount: 1,
		keys: []ghostKey{{kt: kt, key: vec.Vector{0, 0}, hash: sampleHash(vec.Vector{0, 0})}},
	})
	g.lookup(kt, vec.Vector{0.5, 0}, 901, 1.0, 1) // dist 0.5 ≤ 1.0 → hit
	g.lookup(kt, vec.Vector{3, 0}, 902, 1.0, 2)   // dist 3 > 1.0 → miss
	g.lookup(ktKey{"fn", "other"}, vec.Vector{0, 0}, 903, 1.0, 3) // wrong series → miss
	if g.hits != 1 || g.misses != 2 {
		t.Fatalf("ghost outcomes: hits=%d misses=%d, want 1/2", g.hits, g.misses)
	}
}

// TestGhostAdmitOnMissAndMerge: a miss admits a synthetic entry for the
// probe key (compute-on-miss), and a later put of the same content
// under a fresh real-cache id merges into one entry — carrying the
// access history over — instead of duplicating.
func TestGhostAdmitOnMissAndMerge(t *testing.T) {
	kt := ktKey{"fn", "feat"}
	g := newGhost(1, "lru", 10, 0, 1)
	key := vec.Vector{1, 2}
	g.lookup(kt, key, 77, 0.1, 1) // miss → synthetic admit under the key hash
	if len(g.entries) != 1 || g.entries[77] == nil {
		t.Fatalf("miss did not admit a synthetic entry: %d entries", len(g.entries))
	}
	g.lookup(kt, key, 77, 0.1, 2) // same key again → hit
	if g.hits != 1 || g.misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", g.hits, g.misses)
	}
	g.put(&ghostEntry{
		id: 500, size: 3, costNs: 9, accessCount: 1, lastAccess: 3,
		keys: []ghostKey{{kt: kt, key: key, hash: 77}},
	})
	if len(g.entries) != 1 {
		t.Fatalf("put duplicated the key: %d entries", len(g.entries))
	}
	e := g.entries[500]
	if e == nil || e.accessCount != 3 || e.costNs != 9 {
		t.Fatalf("merge lost counters: %+v", e)
	}
}

func TestSweepSeries(t *testing.T) {
	grid := []float64{0.5, 1, 2}
	s := newSweepSeries(len(grid))
	s.observe(grid, 0.4, 1.0)  // ≤ all three
	s.observe(grid, 0.8, 1.0)  // ≤ 1×, 2×
	s.observe(grid, 1.5, 1.0)  // ≤ 2× only
	s.observe(grid, -1, 1.0)   // empty index
	if s.total != 4 || s.noNeighbor != 1 {
		t.Fatalf("total=%d noNeighbor=%d", s.total, s.noNeighbor)
	}
	want := []uint64{1, 2, 3}
	for i := range grid {
		if s.hits[i] != want[i] {
			t.Fatalf("hits[%d]=%d, want %d", i, s.hits[i], want[i])
		}
	}
}

func TestSolveCharTime(t *testing.T) {
	// Equal rates: M·(1−e^(−λT)) = C ⇒ T = −ln(1−C/M)/λ.
	rates := make([]float64, 10)
	for i := range rates {
		rates[i] = 2.0
	}
	got := solveCharTime(rates, 4)
	want := -math.Log(1-4.0/10.0) / 2.0
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("charTime: got %v, want %v", got, want)
	}
	if !math.IsInf(solveCharTime(rates, 10), 1) {
		t.Fatal("catalog ≤ capacity must give infinite characteristic time")
	}
	if solveCharTime(nil, 4) != 0 {
		t.Fatal("empty catalog must give zero characteristic time")
	}
}

// TestPredictorAgainstSimulation drives an exact-match LRU workload
// (threshold 0 balls degenerate to single contents, the classical Che
// setting) and checks the estimator against the measured stream.
func TestPredictorAgainstSimulation(t *testing.T) {
	p := New(Config{Rate: 1, Capacity: 20, Multiples: []float64{1}})
	kt := ktKey{"fn", "feat"}
	rng := rand.New(rand.NewSource(3))
	const universe = 60

	// The ghost at 1× doubles as the LRU simulator producing the
	// measured stream: feed lookups and refill misses, like a client.
	g := p.ghosts[0] // 1× lru
	var hits, total int
	for i := 0; i < 30000; i++ {
		// Zipf-ish skew via squaring.
		u := rng.Float64()
		id := int(u * u * universe)
		key := vec.Vector{float64(id), 0}
		before := g.hits
		g.lookup(kt, key, sampleHash(key), 0.001, int64(i)*1e6)
		hit := g.hits > before
		if i >= 5000 { // warm measurement window
			total++
			if hit {
				hits++
			}
			pr := p.preds[kt]
			if pr == nil {
				pr = newPredictSeries()
				p.preds[kt] = pr
			}
			pr.observe(sampleHash(key), key, 0.001, hit, int64(i)*1e6, p.cfg.MaxContents)
		}
		if !hit {
			g.put(&ghostEntry{
				id: uint64(id), size: 1, accessCount: 1, lastAccess: int64(i) * 1e6,
				keys: []ghostKey{{kt: kt, key: key, hash: sampleHash(key)}},
			})
		}
	}
	measured := float64(hits) / float64(total)
	pr := p.preds[kt]
	tm := solveCharTime(pr.rates(), 20)
	predicted := pr.predict(tm, pr.meanThreshold(), pr.elapsedSeconds())
	if math.Abs(predicted-measured) > 0.08 {
		t.Fatalf("Che estimate %0.3f vs simulated %0.3f: divergence too large", predicted, measured)
	}
}

// TestProfilerEndToEnd attaches the profiler to a real cache at rate 1
// and checks that the 1× ghost tracks the real hit rate, the sweep's
// 1× point matches the measured rate, and the report is coherent.
func TestProfilerEndToEnd(t *testing.T) {
	tel := telemetry.New()
	p := New(Config{Rate: 1, Capacity: 50, Tolerance: 0.2, Telemetry: tel})
	c := core.New(core.Config{
		MaxEntries:     50,
		DisableDropout: true,
		Policy:         core.PolicyLRU,
		Seed:           1,
		Tuner:          core.TunerConfig{WarmupZ: 1},
		Tap:            p,
	})
	if err := c.RegisterFunction("fn", core.KeyTypeSpec{Name: "feat"}); err != nil {
		t.Fatal(err)
	}
	if err := c.ForceThreshold("fn", "feat", 0.25); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var hits, lookups int
	for i := 0; i < 8000; i++ {
		if i%500 == 0 {
			p.Drain() // lazy consumer: keep the ring from overflowing
		}
		id := rng.Intn(120)
		key := vec.Vector{float64(id), float64(id % 5)}
		res, err := c.Lookup("fn", "feat", key)
		if err != nil {
			t.Fatal(err)
		}
		lookups++
		if res.Hit {
			hits++
		} else {
			if _, err := c.Put("fn", core.PutRequest{
				Keys:  map[string]vec.Vector{"feat": key},
				Value: fmt.Sprintf("v%d", id),
				Size:  64,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	measuredRate := float64(hits) / float64(lookups)
	r := p.Snapshot()
	if r.SampledLookups != uint64(lookups) {
		t.Fatalf("rate-1 profiler sampled %d of %d lookups", r.SampledLookups, lookups)
	}
	var oneX *MRCPoint
	for i := range r.MissRatioCurve {
		pt := &r.MissRatioCurve[i]
		if pt.Mult == 1 && pt.Policy == "lru" {
			oneX = pt
		}
	}
	if oneX == nil {
		t.Fatal("no 1×/lru ghost in the miss-ratio curve")
	}
	if math.Abs(oneX.HitRate-measuredRate) > 0.03 {
		t.Fatalf("1× ghost hit rate %.3f vs real %.3f: self-check failed", oneX.HitRate, measuredRate)
	}
	// MRC monotone in capacity for a fixed policy.
	byMult := map[float64]float64{}
	for _, pt := range r.MissRatioCurve {
		if pt.Policy == "lru" {
			byMult[pt.Mult] = pt.HitRate
		}
	}
	if !(byMult[0.25] <= byMult[1]+0.02 && byMult[1] <= byMult[4]+0.02) {
		t.Fatalf("miss-ratio curve not monotone: %v", byMult)
	}
	// Sweep: the 1× point must equal the measured rate (same probes,
	// same thresholds), and hit rate must be monotone in the grid.
	if len(r.ThresholdSweeps) != 1 {
		t.Fatalf("sweep series: got %d, want 1", len(r.ThresholdSweeps))
	}
	sw := r.ThresholdSweeps[0]
	var prev float64
	for _, pt := range sw.Points {
		if pt.HitRate+1e-9 < prev {
			t.Fatalf("sweep not monotone at mult %v", pt.Mult)
		}
		prev = pt.HitRate
		if pt.Mult == 1 && math.Abs(pt.HitRate-measuredRate) > 1e-9 {
			t.Fatalf("sweep 1× point %.4f vs measured %.4f", pt.HitRate, measuredRate)
		}
	}
	if len(r.Predictions) != 1 {
		t.Fatalf("predictions: got %d, want 1", len(r.Predictions))
	}
	pd := r.Predictions[0]
	if math.Abs(pd.Measured-measuredRate) > 1e-9 {
		t.Fatalf("prediction measured side %.4f vs real %.4f", pd.Measured, measuredRate)
	}
	if pd.Divergence > 0.2 {
		t.Fatalf("predicted %.3f diverges from measured %.3f beyond tolerance", pd.Predicted, pd.Measured)
	}
}

// TestProfilerConcurrent exercises the tap, the drain loop, and
// Snapshot from many goroutines under -race.
func TestProfilerConcurrent(t *testing.T) {
	p := New(Config{Rate: 1, Capacity: 32, RingBits: 8})
	p.Start()
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := vec.Vector{float64(i % 97), float64(w)}
				p.TapLookup("fn", "feat", key, 0.5, 1.0, i%3 == 0, int64(i))
				if i%5 == 0 {
					p.TapPut("fn", []string{"feat"}, []vec.Vector{key.Clone()},
						uint64(w*10000+i), 8, 1000, int64(i))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = p.Snapshot()
		}
	}()
	wg.Wait()
	p.Close()
	r := p.Snapshot()
	if r.SampledLookups+r.RingDrops < 8000 {
		t.Fatalf("accounting: sampled %d + dropped %d < 8000", r.SampledLookups, r.RingDrops)
	}
}
