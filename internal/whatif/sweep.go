package whatif

// sweepSeries accumulates the threshold sweep for one (function,
// keyType): each sampled probe's nearest-neighbour distance — already
// computed on the real lookup path — is replayed against a grid of
// threshold multipliers, so "what would the hit rate be at 2× the
// current threshold" costs one comparison per grid point, not a second
// index query. Ratios of sampled counts are unbiased under spatial
// sampling, so no unscaling is needed.
type sweepSeries struct {
	total      uint64   // sampled non-dropout probes
	noNeighbor uint64   // probes that found an empty index (dist < 0)
	hits       []uint64 // hits[i]: probes with dist ≤ grid[i]·threshold
}

func newSweepSeries(gridLen int) *sweepSeries {
	return &sweepSeries{hits: make([]uint64, gridLen)}
}

// observe replays one probe against the grid. dist is the unrestricted
// NN distance (-1 when the index held nothing); threshold is the live
// tuner threshold at probe time, so the sweep tracks the tuner rather
// than a stale constant.
func (s *sweepSeries) observe(grid []float64, dist, threshold float64) {
	s.total++
	if dist < 0 {
		s.noNeighbor++
		return
	}
	for i, m := range grid {
		if dist <= m*threshold {
			s.hits[i]++
		}
	}
}
