package whatif

import (
	"math"

	"repro/internal/vec"
)

// ghost is one metadata-only shadow cache: it simulates the real
// cache's admission and eviction at a counterfactual capacity multiple
// and eviction policy, holding only ids, keys, and importance inputs —
// never values. Ghost capacities are pre-scaled by the sample rate
// (SHARDS: a 1-in-R sampled trace against a cache of C·R entries
// estimates the full trace against C), so hit *ratios* need no
// unscaling. All ghost state is owned by the profiler's consumer and
// needs no locking.
type ghost struct {
	mult   float64
	policy string // "lru" or "importance"

	capEntries int   // scaled entry bound (0 = unbounded on entries)
	capBytes   int64 // scaled byte bound (0 = unbounded on bytes)

	entries map[uint64]*ghostEntry
	// byHash indexes each (function, keyType) series by sampling hash
	// (hash → resident entry id). It serves two purposes: the exact-key
	// fast path — a probe for a key the ghost already holds is at
	// distance 0, within any non-negative threshold, so two map hits
	// replace the scan — and enumeration for the linear
	// nearest-neighbour fallback (ghost populations are small,
	// realCap · mult · rate, so brute force beats shadow ANN indexes).
	// Hash matches are verified against the entry's stored key; a
	// same-series hash collision overwrites, hiding one key from the
	// scan — an approximation at 2⁻⁶⁴ odds.
	byHash map[ktKey]map[uint64]uint64

	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64

	// free recycles evicted entries. Steady-state ghosts evict about as
	// often as they admit, so reuse keeps the consumer allocation-free
	// after warmup — on small hosts the GC pressure would otherwise bill
	// straight to the serving threads.
	free *ghostEntry
}

// ktKey identifies one (function, keyType) series.
type ktKey struct{ fn, kt string }

// euclid is the fixed ghost-side distance metric; see ghost.lookup.
var euclid vec.EuclideanMetric

type ghostEntry struct {
	id          uint64
	size        int
	costNs      int64
	accessCount int64
	lastAccess  int64
	insertedAt  int64
	keys        []ghostKey
	next        *ghostEntry // free-list link; nil while resident
}

type ghostKey struct {
	kt   ktKey
	key  vec.Vector
	hash uint64 // sampleHash(key); the exact-match identity
}

// newGhost scales the real capacity bounds by mult·rate. A zero result
// from a nonzero bound is clamped to 1 entry — a ghost that can hold
// nothing would report a degenerate 100% miss ratio.
func newGhost(mult float64, policy string, capEntries int, capBytes int64, rate float64) *ghost {
	g := &ghost{
		mult:    mult,
		policy:  policy,
		entries: make(map[uint64]*ghostEntry),
		byHash:  make(map[ktKey]map[uint64]uint64),
	}
	if capEntries > 0 {
		g.capEntries = int(math.Round(float64(capEntries) * mult * rate))
		if g.capEntries < 1 {
			g.capEntries = 1
		}
	}
	if capBytes > 0 {
		g.capBytes = int64(math.Round(float64(capBytes) * mult * rate))
		if g.capBytes < 1 {
			g.capBytes = 1
		}
	}
	return g
}

// lookup simulates one sampled probe: nearest neighbour among the
// ghost's keys for this (fn, keyType), hit iff within the live
// threshold. Distances use the Euclidean metric — the index kinds'
// default — regardless of the key type's configured metric; the
// profiler trades metric fidelity for not plumbing metrics through the
// tap (an approximation the validation experiment bounds).
//
// A miss admits a synthetic entry for the probe key (keyHash is the
// probe's sampling hash, which doubles as its identity). This is the
// compute-on-miss assumption the paper's workloads follow: a cache of
// this counterfactual capacity would have computed and admitted the
// result — including when the real cache hit and therefore never
// issued the put that would otherwise feed the ghost. The synthetic
// entry is metadata-thin (zero cost/size) until a real put for the
// same key refreshes it via the put-side merge.
func (g *ghost) lookup(kt ktKey, key vec.Vector, keyHash uint64, threshold float64, atNanos int64) {
	series := g.byHash[kt]
	// Exact-key fast path: reuse-heavy workloads mostly re-probe keys
	// the ghost already holds, and an identical key is at distance 0 —
	// within every non-negative threshold — so the scan is skippable.
	if id, ok := series[keyHash]; ok {
		if e := g.entries[id]; e != nil && sameKey(e.keyFor(kt), key) {
			e.accessCount++
			e.lastAccess = atNanos
			g.hits++
			return
		}
	}
	var best *ghostEntry
	bestDist := math.Inf(1)
	for _, id := range series {
		e := g.entries[id]
		if e == nil {
			continue
		}
		k := e.keyFor(kt)
		if len(k) != len(key) {
			continue
		}
		if d := euclid.Distance(k, key); d < bestDist {
			bestDist = d
			best = e
		}
	}
	if bestDist <= threshold && best != nil {
		best.accessCount++
		best.lastAccess = atNanos
		g.hits++
		return
	}
	g.misses++
	e := g.alloc()
	e.id, e.accessCount = keyHash, 1
	e.lastAccess, e.insertedAt = atNanos, atNanos
	e.keys = append(e.keys, ghostKey{kt: kt, key: key, hash: keyHash})
	g.put(e)
}

// alloc returns a blank entry, reusing an evicted one when available.
// The caller fills it and hands it to put; entries never move between
// ghosts.
func (g *ghost) alloc() *ghostEntry {
	e := g.free
	if e == nil {
		return &ghostEntry{}
	}
	g.free = e.next
	keys := e.keys[:0]
	*e = ghostEntry{keys: keys}
	return e
}

// put admits one sampled entry and evicts by this ghost's own policy
// until its scaled bounds hold, mirroring core's replace-victim-with-
// new-entry order (§3.6): the fresh entry is never its own victim.
//
// Any resident entry holding an identical key is merged into the new
// one first. The real cache assigns a fresh id when it re-admits
// content it evicted earlier, and lookup-side synthetic admissions use
// key-hash ids; counterfactually both are refreshes of the same
// content. Without the merge, re-admissions pile up as duplicates and
// squeeze genuine tail entries out of the bigger ghosts.
func (g *ghost) put(e *ghostEntry) {
	if old := g.entries[e.id]; old != nil {
		g.remove(old)
	}
	for _, gk := range e.keys {
		id, ok := g.byHash[gk.kt][gk.hash]
		if !ok || id == e.id {
			continue
		}
		old := g.entries[id]
		if old == nil || !sameKey(old.keyFor(gk.kt), gk.key) {
			continue
		}
		e.accessCount += old.accessCount
		if old.lastAccess > e.lastAccess {
			e.lastAccess = old.lastAccess
		}
		if e.costNs == 0 {
			e.costNs = old.costNs
		}
		if e.size == 0 {
			e.size = old.size
		}
		g.remove(old)
	}
	g.entries[e.id] = e
	g.bytes += int64(e.size)
	for _, gk := range e.keys {
		h := g.byHash[gk.kt]
		if h == nil {
			h = make(map[uint64]uint64)
			g.byHash[gk.kt] = h
		}
		h[gk.hash] = e.id
	}
	for g.overCap() {
		v := g.victim(e.id)
		if v == nil {
			break
		}
		g.remove(v)
		g.evictions++
	}
}

func (g *ghost) overCap() bool {
	if g.capEntries > 0 && len(g.entries) > g.capEntries {
		return true
	}
	return g.capBytes > 0 && g.bytes > g.capBytes
}

// victim selects the eviction candidate: least-recently-used, or
// minimum importance (cost·frequency/size, core's formula) — excluding
// the just-admitted entry.
func (g *ghost) victim(exclude uint64) *ghostEntry {
	var v *ghostEntry
	var vScore float64
	for id, e := range g.entries {
		if id == exclude {
			continue
		}
		var score float64
		if g.policy == "lru" {
			score = float64(e.lastAccess)
		} else {
			size := e.size
			if size <= 0 {
				size = 1
			}
			score = float64(e.costNs) * float64(e.accessCount) / float64(size)
		}
		if v == nil || score < vScore {
			v, vScore = e, score
		}
	}
	return v
}

func (g *ghost) remove(e *ghostEntry) {
	delete(g.entries, e.id)
	g.bytes -= int64(e.size)
	for _, gk := range e.keys {
		if h := g.byHash[gk.kt]; h != nil {
			// Only unmap the hash if it still points at this entry; a
			// merge may have re-pointed it at the surviving entry.
			if h[gk.hash] == e.id {
				delete(h, gk.hash)
			}
			if len(h) == 0 {
				delete(g.byHash, gk.kt)
			}
		}
	}
	for i := range e.keys {
		e.keys[i] = ghostKey{} // drop key-vector references before pooling
	}
	e.next = g.free
	g.free = e
}

// keyFor returns the entry's key vector for one (function, keyType)
// series, or nil if the entry has none there. Entries carry at most a
// handful of keys, so the linear match beats any index.
func (e *ghostEntry) keyFor(kt ktKey) vec.Vector {
	for i := range e.keys {
		if e.keys[i].kt == kt {
			return e.keys[i].key
		}
	}
	return nil
}

// sameKey reports exact componentwise equality — the identity relation
// for the put-side merge (similar-but-unequal keys are distinct content).
func sameKey(a, b vec.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hitRate returns the ghost's observed hit rate over sampled,
// non-dropout lookups (0 when it saw none).
func (g *ghost) hitRate() float64 {
	total := g.hits + g.misses
	if total == 0 {
		return 0
	}
	return float64(g.hits) / float64(total)
}
