// Package whatif is the online counterfactual profiler: it taps the
// cache's decision stream (core.Tap) under SHARDS-style spatially-
// hashed sampling and continuously answers "what would a bigger cache,
// a different eviction policy, or a looser threshold buy?" without
// running one.
//
// Three consumers share the sampled stream:
//
//   - Ghost caches — metadata-only shadow simulations at configurable
//     capacity multiples and eviction policies (LRU vs importance),
//     yielding an online miss-ratio curve (Waldspurger et al.'s SHARDS
//     construction: simulate a cache scaled by the sample rate against
//     the sampled trace; hit ratios transfer unscaled).
//   - A threshold sweep — each sampled probe's nearest-neighbour
//     distance, already computed on the real lookup path, is replayed
//     against a grid of threshold multipliers per (function, keyType).
//   - A predicted-vs-measured check — the Che-approximation similarity-
//     cache estimator of Ben Mazziane et al. (PAPERS.md) computed over
//     the sampled catalog, compared against the measured sampled hit
//     rate; divergence beyond tolerance raises a gauge and a tracer
//     event, turning the model into a continuously-checked invariant.
//
// Sampling is spatial: a key is sampled iff hash(key) falls under
// rate·2⁶⁴, so every request for the same key lands on the same side
// of the cut and reuse structure survives sampling. (Near-identical —
// not identical — keys hash independently, so at rates < 1 similarity
// hits across the cut are approximated; the validation experiment runs
// at rate 1 where the simulation is exact.)
//
// The hot-path cost is one hash plus, for sampled events, a clone and
// a channel-free ring push; all simulation runs on the consumer side.
package whatif

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

// Defaults; see Config.
const (
	// DefaultRate is 1 in 64 (~1.6%), chosen for always-on production
	// use: it is still above the R=0.01 operating point SHARDS
	// validates to sub-point miss-ratio error, and it keeps the
	// consumer's simulation work a low single-digit share of one core
	// so attaching stays inside the telemetry budget even on
	// single-CPU hosts. Pass -whatif-rate for finer resolution.
	DefaultRate        = 0.015625 // 1 in 64
	DefaultTolerance   = 0.15
	DefaultRingBits    = 13 // 8192 in-flight events
	DefaultMaxContents = 2048
	// maxSeries bounds the (function, keyType) pairs the profiler
	// tracks, mirroring the metric registry's cardinality bound.
	maxSeries = 256
	// minSamples is the floor under which a series' predicted-vs-
	// measured divergence is reported but not flagged: comparing a
	// steady-state model against a handful of samples is noise.
	minSamples = 50
	// snapshotTTL caches the computed report; scrape loops and the
	// func-backed gauges share one computation per window.
	snapshotTTL = time.Second
)

// Config parameterizes a Profiler. The zero value of every field takes
// the documented default.
type Config struct {
	// Rate is the spatial sample rate in (0, 1]; default DefaultRate.
	Rate float64
	// Capacity and CapacityBytes mirror the real cache's MaxEntries /
	// MaxBytes; ghost capacities are these scaled by multiple × rate.
	// Both zero disables the ghost caches (an unbounded cache has no
	// meaningful miss-ratio curve) and the Che predictor (whose
	// characteristic time is defined by a finite capacity).
	Capacity      int
	CapacityBytes int64
	// Multiples are the ghost capacity multiples; default ¼×, ½×, 1×,
	// 2×, 4× (1× is the self-check against the real cache).
	Multiples []float64
	// Grid is the threshold-sweep multiplier grid; default 0, ¼, ½, ¾,
	// 1, 1½, 2, 3, 4 (0 = exact-match-only, 1 = the live threshold).
	Grid []float64
	// Tolerance is the predicted-vs-measured divergence beyond which
	// the profiler flags a series; default DefaultTolerance.
	Tolerance float64
	// RingBits sizes the event ring at 2^RingBits; default
	// DefaultRingBits.
	RingBits uint
	// MaxContents bounds the predictor's per-series catalog; default
	// DefaultMaxContents.
	MaxContents int
	// Telemetry, when non-nil, receives the profiler's metric series
	// (potluck_whatif_*) and divergence tracer events.
	Telemetry *telemetry.Telemetry
}

// Ghost set: every capacity multiple is shadowed under LRU — the
// cache's actual eviction regime, so the capacity axis of the
// miss-ratio curve answers "what if this cache were bigger/smaller" —
// and the importance policy is shadowed at 1× only, answering "what
// would the other policy do at the capacity I actually have". The full
// cross product would double the consumer's simulation work for
// points that conflate two counterfactuals at once.
var ghostPolicies = []string{"lru", "importance"}

func (cfg Config) normalized() Config {
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		cfg.Rate = DefaultRate
	}
	if len(cfg.Multiples) == 0 {
		cfg.Multiples = []float64{0.25, 0.5, 1, 2, 4}
	}
	if len(cfg.Grid) == 0 {
		cfg.Grid = []float64{0, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4}
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = DefaultTolerance
	}
	if cfg.RingBits == 0 || cfg.RingBits > 20 {
		cfg.RingBits = DefaultRingBits
	}
	if cfg.MaxContents <= 0 {
		cfg.MaxContents = DefaultMaxContents
	}
	if cfg.Capacity < 0 {
		cfg.Capacity = 0
	}
	if cfg.CapacityBytes < 0 {
		cfg.CapacityBytes = 0
	}
	return cfg
}

// Profiler implements core.Tap. Producers (lookup/put goroutines) pay
// one hash and an occasional lock-free ring push; a single consumer —
// the Start worker, or any caller of Drain/Snapshot — owns the ghosts,
// sweeps, and catalogs behind consumeMu.
type Profiler struct {
	cfg       Config
	sampleMax uint64 // inclusive hash bound: sampled iff hash ≤ sampleMax
	scale     float64

	ring           *ring
	sampledLookups atomic.Uint64
	sampledPuts    atomic.Uint64
	drops          atomic.Uint64

	consumeMu      sync.Mutex
	ghosts         []*ghost
	sweeps         map[ktKey]*sweepSeries
	preds          map[ktKey]*predictSeries
	seriesOverflow uint64 // events beyond the maxSeries bound

	snapMu sync.Mutex
	snap   *Report
	snapAt time.Time

	startMu sync.Mutex
	done    chan struct{}
	wg      sync.WaitGroup
}

// New builds a profiler. Metric series are registered immediately when
// cfg.Telemetry is set; the tap is live as soon as it is attached to a
// cache, with or without Start.
func New(cfg Config) *Profiler {
	cfg = cfg.normalized()
	p := &Profiler{
		cfg:    cfg,
		scale:  1 / cfg.Rate,
		ring:   newRing(cfg.RingBits),
		sweeps: make(map[ktKey]*sweepSeries),
		preds:  make(map[ktKey]*predictSeries),
	}
	if cfg.Rate >= 1 {
		p.sampleMax = math.MaxUint64
	} else {
		p.sampleMax = uint64(cfg.Rate * float64(1<<63) * 2)
	}
	if cfg.Capacity > 0 || cfg.CapacityBytes > 0 {
		for _, mult := range cfg.Multiples {
			if mult <= 0 {
				continue
			}
			for _, pol := range ghostPolicies {
				if pol != "lru" && mult != 1 {
					continue
				}
				p.ghosts = append(p.ghosts,
					newGhost(mult, pol, cfg.Capacity, cfg.CapacityBytes, cfg.Rate))
			}
		}
	}
	if cfg.Telemetry != nil {
		p.registerMetrics(cfg.Telemetry.Registry)
	}
	return p
}

// registerMetrics exposes the profiler on the registry. Counters mirror
// the producer-side atomics; per-ghost hit rates and the divergence
// gauge read the TTL-cached snapshot, so a scrape costs at most one
// report computation per snapshotTTL.
func (p *Profiler) registerMetrics(reg *telemetry.Registry) {
	reg.Counter("potluck_whatif_sampled_lookups_total",
		"Lookups sampled into the what-if profiler.").
		SetFunc(func() int64 { return int64(p.sampledLookups.Load()) })
	reg.Counter("potluck_whatif_sampled_puts_total",
		"Puts sampled into the what-if profiler.").
		SetFunc(func() int64 { return int64(p.sampledPuts.Load()) })
	reg.Counter("potluck_whatif_dropped_total",
		"Sampled events dropped because the profiler ring was full.").
		SetFunc(func() int64 { return int64(p.drops.Load()) })
	reg.Gauge("potluck_whatif_divergence",
		"Largest predicted-vs-measured hit-rate divergence across series.").
		SetFunc(func() float64 { return p.Snapshot().MaxDivergence })
	ghostRate := reg.GaugeVec("potluck_whatif_ghost_hit_rate",
		"Shadow-cache hit rate at each capacity multiple and policy.",
		"mult", "policy")
	for i, g := range p.ghosts {
		i := i
		ghostRate.With(strconv.FormatFloat(g.mult, 'g', -1, 64), g.policy).
			SetFunc(func() float64 {
				r := p.Snapshot()
				if i < len(r.MissRatioCurve) {
					return r.MissRatioCurve[i].HitRate
				}
				return 0
			})
	}
}

// sampleHash is the spatial sampling hash: a splitmix-style mix of the
// key's float bits. Identical key vectors — the unit of reuse — always
// agree; the low cost (one xor-mul round per dimension) is what keeps
// the attached hot-path overhead inside the telemetry budget.
func sampleHash(key vec.Vector) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, f := range key {
		h ^= math.Float64bits(f)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// TapLookup implements core.Tap: called on every non-dropout lookup
// with the probe key, the real path's NN distance, and the live
// threshold. The key is cloned before entering the ring because the
// caller owns it.
func (p *Profiler) TapLookup(fn, keyType string, key vec.Vector, dist, threshold float64, hit bool, nowNanos int64) {
	h := sampleHash(key)
	if h > p.sampleMax {
		return
	}
	ev := event{
		kind: evLookup, fn: fn, keyType: keyType, key: key.Clone(),
		dist: dist, thresh: threshold, hit: hit,
		id: h, atNanos: nowNanos, // id doubles as the catalog key hash
	}
	if p.ring.push(ev) {
		p.sampledLookups.Add(1)
	} else {
		p.drops.Add(1)
	}
}

// TapPut implements core.Tap: called on every successful admission.
// The entry is sampled iff any of its keys is, so entries reachable by
// sampled lookups exist in the ghosts. Slices are owned by the callee
// per the Tap contract; the key vectors are the same read-only backing
// arrays the cache itself retains.
func (p *Profiler) TapPut(fn string, keyTypes []string, keys []vec.Vector, id uint64, size int, costNanos, nowNanos int64) {
	sampled := false
	for _, k := range keys {
		if sampleHash(k) <= p.sampleMax {
			sampled = true
			break
		}
	}
	if !sampled {
		return
	}
	// The slices are borrowed from the caller's pool (Tap contract);
	// copy before the event outlives this call. The key vectors inside
	// are the cache's read-only arrays and are shared as-is. Sampled
	// puts are rare (rate · put share), so the copies are off the
	// common path.
	ev := event{
		kind: evPut, fn: fn,
		keyTypes: append([]string(nil), keyTypes...),
		keys:     append([]vec.Vector(nil), keys...),
		id:       id, size: size, costNs: costNanos, atNanos: nowNanos,
	}
	if p.ring.push(ev) {
		p.sampledPuts.Add(1)
	} else {
		p.drops.Add(1)
	}
}

// Start launches the background consumer. Without it the ring drains
// lazily on Snapshot/Drain, which suits tests and experiments; a
// daemon starts the worker so the ring cannot back up between scrapes.
func (p *Profiler) Start() {
	p.startMu.Lock()
	defer p.startMu.Unlock()
	if p.done != nil {
		return
	}
	p.done = make(chan struct{})
	p.wg.Add(1)
	go p.loop(p.done)
}

func (p *Profiler) loop(done chan struct{}) {
	defer p.wg.Done()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if p.Drain() == 0 {
			select {
			case <-done:
				return
			case <-tick.C:
			}
		} else {
			select {
			case <-done:
				return
			default:
			}
		}
	}
}

// Close stops the background consumer (if started) after a final
// drain. The tap stays safe to call — events simply accumulate in the
// ring — so Close does not need to be ordered against cache shutdown.
func (p *Profiler) Close() {
	p.startMu.Lock()
	defer p.startMu.Unlock()
	if p.done == nil {
		return
	}
	close(p.done)
	p.wg.Wait()
	p.done = nil
	p.Drain()
	// Invalidate the cached report so the next Snapshot reflects the
	// final drain rather than a mid-run computation.
	p.snapMu.Lock()
	p.snap = nil
	p.snapMu.Unlock()
}

// Drain consumes every pending ring event into the ghosts, sweeps, and
// catalogs, returning how many it processed.
func (p *Profiler) Drain() int {
	p.consumeMu.Lock()
	defer p.consumeMu.Unlock()
	return p.drainLocked()
}

func (p *Profiler) drainLocked() int {
	n := 0
	for {
		ev, ok := p.ring.pop()
		if !ok {
			return n
		}
		p.apply(ev)
		n++
	}
}

// apply folds one sampled event into every consumer.
func (p *Profiler) apply(ev event) {
	switch ev.kind {
	case evLookup:
		kt := ktKey{ev.fn, ev.keyType}
		for _, g := range p.ghosts {
			g.lookup(kt, ev.key, ev.id, ev.thresh, ev.atNanos)
		}
		sw := p.sweeps[kt]
		if sw == nil {
			if len(p.sweeps) >= maxSeries {
				p.seriesOverflow++
				return
			}
			sw = newSweepSeries(len(p.cfg.Grid))
			p.sweeps[kt] = sw
		}
		sw.observe(p.cfg.Grid, ev.dist, ev.thresh)
		pr := p.preds[kt]
		if pr == nil {
			pr = newPredictSeries()
			p.preds[kt] = pr
		}
		pr.observe(ev.id, ev.key, ev.thresh, ev.hit, ev.atNanos, p.cfg.MaxContents)
	case evPut:
		var kbuf [4]ghostKey
		gks := kbuf[:0]
		if len(ev.keys) > len(kbuf) {
			gks = make([]ghostKey, 0, len(ev.keys))
		}
		for i := range ev.keys {
			gks = append(gks, ghostKey{kt: ktKey{ev.fn, ev.keyTypes[i]}, key: ev.keys[i], hash: sampleHash(ev.keys[i])})
		}
		for _, g := range p.ghosts {
			// Each ghost owns its entry (counters and pooled lifetime);
			// the key vectors are shared read-only.
			e := g.alloc()
			e.id, e.size, e.costNs = ev.id, ev.size, ev.costNs
			e.accessCount, e.lastAccess, e.insertedAt = 1, ev.atNanos, ev.atNanos
			e.keys = append(e.keys, gks...)
			g.put(e)
		}
	}
}
