package whatif

import (
	"math"

	"repro/internal/vec"
)

// predictSeries holds the sampled request catalog for one (function,
// keyType), feeding the Che-approximation hit-rate estimator of Ben
// Mazziane et al. ("Computing the Hit Rate of Similarity Caching";
// "Performance Model for Similarity Caching" — see PAPERS.md): under
// the independent reference model, an LRU-like similarity cache with
// characteristic time T serves a request for content n from cache with
// probability ≈ 1 − e^(−Λ_n·T), where Λ_n aggregates the arrival rates
// of every catalog content within the similarity threshold of n, and T
// solves Σ_m (1 − e^(−λ_m·T)) = C over the whole catalog.
type predictSeries struct {
	// contents maps exact-key hashes to sampled contents. Bounded: past
	// maxContents new keys are counted as uncovered instead of grown, so
	// a high-cardinality workload degrades coverage, not memory.
	contents  map[uint64]*content
	uncovered uint64

	sampledHits    uint64 // measured side, over the same sampled stream
	sampledLookups uint64

	thresholdSum float64 // running mean of the live threshold (the θ of the ball)
	thresholdN   uint64

	firstAt int64
	lastAt  int64
}

type content struct {
	key   vec.Vector
	count uint64
}

func newPredictSeries() *predictSeries {
	return &predictSeries{contents: make(map[uint64]*content)}
}

// observe records one sampled probe into the catalog.
func (p *predictSeries) observe(keyHash uint64, key vec.Vector, threshold float64, hit bool, atNanos int64, maxContents int) {
	p.sampledLookups++
	if hit {
		p.sampledHits++
	}
	p.thresholdSum += threshold
	p.thresholdN++
	if p.firstAt == 0 {
		p.firstAt = atNanos
	}
	p.lastAt = atNanos
	if c := p.contents[keyHash]; c != nil {
		c.count++
		return
	}
	if len(p.contents) >= maxContents {
		p.uncovered++
		return
	}
	p.contents[keyHash] = &content{key: key, count: 1}
}

func (p *predictSeries) measured() float64 {
	if p.sampledLookups == 0 {
		return 0
	}
	return float64(p.sampledHits) / float64(p.sampledLookups)
}

func (p *predictSeries) meanThreshold() float64 {
	if p.thresholdN == 0 {
		return 0
	}
	return p.thresholdSum / float64(p.thresholdN)
}

// rates converts the catalog's counts into arrival rates over the
// observation window. Returns nil when the window is too short to
// define a rate.
func (p *predictSeries) rates() []float64 {
	elapsed := float64(p.lastAt-p.firstAt) / 1e9
	if elapsed <= 0 || len(p.contents) == 0 {
		return nil
	}
	out := make([]float64, 0, len(p.contents))
	for _, c := range p.contents {
		out = append(out, float64(c.count)/elapsed)
	}
	return out
}

// solveCharTime finds the Che characteristic time T such that the
// expected cache occupancy Σ_m (1 − e^(−λ_m·T)) equals capacity. The
// left side is increasing in T, so bisection on an exponentially
// widened bracket converges; when even T→∞ cannot fill the cache (the
// catalog fits entirely), it returns +Inf — nothing is ever evicted.
func solveCharTime(rates []float64, capacity float64) float64 {
	if capacity <= 0 || len(rates) == 0 {
		return 0
	}
	if float64(len(rates)) <= capacity {
		return math.Inf(1)
	}
	occupancy := func(t float64) float64 {
		var s float64
		for _, r := range rates {
			s += 1 - math.Exp(-r*t)
		}
		return s
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200 && occupancy(hi) < capacity; i++ {
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < capacity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// predict computes the series' expected hit rate at characteristic
// time T and similarity threshold θ: for each content n, Λ_n sums the
// arrival rates of contents within θ of n (including n itself), and
// the request-weighted average of 1 − e^(−Λ_n·T) is the predicted
// rate. elapsed is the observation window in seconds (the same window
// rates() used, so Λ_n and T live on the same time base). O(K²) in the
// catalog size, which the maxContents bound keeps small; this runs at
// snapshot time, never on the data path.
func (p *predictSeries) predict(t, theta, elapsed float64) float64 {
	if len(p.contents) == 0 || elapsed <= 0 {
		return 0
	}
	keys := make([]*content, 0, len(p.contents))
	var totalCount float64
	for _, c := range p.contents {
		keys = append(keys, c)
		totalCount += float64(c.count)
	}
	if totalCount == 0 {
		return 0
	}
	var weighted float64
	for _, n := range keys {
		var ballRate float64
		for _, m := range keys {
			if len(n.key) == len(m.key) && euclid.Distance(n.key, m.key) <= theta {
				ballRate += float64(m.count) / elapsed
			}
		}
		pHit := 1.0
		if !math.IsInf(t, 1) {
			pHit = 1 - math.Exp(-ballRate*t)
		}
		weighted += float64(n.count) * pHit
	}
	return weighted / totalCount
}

// elapsedSeconds is the series' observation window.
func (p *predictSeries) elapsedSeconds() float64 {
	return float64(p.lastAt-p.firstAt) / 1e9
}
