package whatif

import (
	"sync/atomic"

	"repro/internal/vec"
)

// event is one sampled tap record. Lookup events carry the probe key,
// the real path's unrestricted nearest-neighbour distance, and the live
// threshold; put events carry every resolved key so the ghost caches
// can admit the entry under each counterfactual configuration.
type event struct {
	kind     uint8
	fn       string
	keyType  string // lookup events: the probed key type
	key      vec.Vector
	keyTypes []string     // put events: resolved key types (parallel to keys)
	keys     []vec.Vector // put events: resolved keys
	dist     float64      // lookup events: NN distance (-1 = index empty)
	thresh   float64      // lookup events: live tuner threshold
	hit      bool
	id       uint64 // put events: entry id
	size     int    // put events: entry footprint in bytes
	costNs   int64  // put events: compute cost
	atNanos  int64
}

const (
	evLookup uint8 = iota
	evPut
)

// ring is a bounded multi-producer single-consumer queue (Vyukov-style
// per-slot sequence numbers, the same discipline as the telemetry
// tracer's ring). Producers are lookup/put goroutines on the hot path:
// push never blocks and never allocates — when the consumer falls
// behind, events are dropped and counted, which for a sampling profiler
// only lowers the effective sample rate.
type ring struct {
	mask  uint64
	slots []ringSlot
	enq   atomic.Uint64
	deq   atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	ev  event
}

// newRing builds a ring with 2^bits slots.
func newRing(bits uint) *ring {
	n := uint64(1) << bits
	r := &ring{mask: n - 1, slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues ev, returning false (dropping it) when the ring is full.
func (r *ring) push(ev event) bool {
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.ev = ev
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// The slot still holds an unconsumed event a full lap behind:
			// the ring is full.
			return false
		default:
			pos = r.enq.Load()
		}
	}
}

// pop dequeues the oldest event. Single consumer only (the profiler
// serializes consumers behind consumeMu).
func (r *ring) pop() (event, bool) {
	pos := r.deq.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return event{}, false
	}
	ev := s.ev
	s.ev = event{} // drop key references; the slot may idle for a while
	s.seq.Store(pos + r.mask + 1)
	r.deq.Store(pos + 1)
	return ev, true
}
