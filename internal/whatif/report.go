package whatif

import (
	"math"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// EventWhatIfDivergence is the tracer event kind recorded when a
// series' predicted-vs-measured hit-rate divergence exceeds tolerance
// (Value = divergence, Aux = tolerance).
const EventWhatIfDivergence = "whatif-divergence"

// Report is the /whatif payload: every counterfactual curve plus the
// sample-coverage numbers needed to judge how much to trust them.
type Report struct {
	Rate  float64 `json:"rate"`
	Scale float64 `json:"scale"` // 1/rate: multiply sampled counts to estimate totals

	SampledLookups uint64 `json:"sampledLookups"`
	SampledPuts    uint64 `json:"sampledPuts"`
	RingDrops      uint64 `json:"ringDrops"`
	SeriesOverflow uint64 `json:"seriesOverflow,omitempty"`

	CapacityEntries int   `json:"capacityEntries,omitempty"`
	CapacityBytes   int64 `json:"capacityBytes,omitempty"`
	// GhostsDisabled is set when the cache has no capacity bound: an
	// unbounded cache has no miss-ratio curve and no Che characteristic
	// time, so only the threshold sweeps are live.
	GhostsDisabled bool `json:"ghostsDisabled,omitempty"`

	MissRatioCurve  []MRCPoint   `json:"missRatioCurve"`
	ThresholdSweeps []SweepCurve `json:"thresholdSweeps"`
	Predictions     []Prediction `json:"predictions"`

	MaxDivergence float64 `json:"maxDivergence"`
	Tolerance     float64 `json:"tolerance"`
}

// MRCPoint is one ghost cache's outcome: the estimated hit/miss ratio
// the real cache would see at CapMult × its capacity under Policy.
type MRCPoint struct {
	Mult       float64 `json:"mult"`
	Policy     string  `json:"policy"`
	CapEntries int     `json:"capEntries,omitempty"`
	CapBytes   int64   `json:"capBytes,omitempty"`
	Entries    int     `json:"entries"` // current ghost population
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Evictions  uint64  `json:"evictions"`
	HitRate    float64 `json:"hitRate"`
	MissRatio  float64 `json:"missRatio"`
}

// SweepCurve is one (function, keyType)'s hit rate as a function of
// the threshold multiplier.
type SweepCurve struct {
	Function   string       `json:"function"`
	KeyType    string       `json:"keyType"`
	Total      uint64       `json:"total"`
	NoNeighbor uint64       `json:"noNeighbor"`
	Points     []SweepPoint `json:"points"`
}

// SweepPoint is one grid entry: the hit rate had the threshold been
// Mult × its live value.
type SweepPoint struct {
	Mult    float64 `json:"mult"`
	Hits    uint64  `json:"hits"`
	HitRate float64 `json:"hitRate"`
}

// Prediction is one (function, keyType)'s Che-approximation estimate
// against its measured sampled hit rate.
type Prediction struct {
	Function string `json:"function"`
	KeyType  string `json:"keyType"`
	// Contents is the catalog size; Uncovered counts sampled requests
	// to keys beyond the catalog bound (coverage warning when nonzero).
	Contents  int    `json:"contents"`
	Uncovered uint64 `json:"uncovered,omitempty"`
	Samples   uint64 `json:"samples"`
	// MeanThreshold is the running mean live threshold (the θ of the
	// similarity ball).
	MeanThreshold float64 `json:"meanThreshold"`
	// CharTimeSeconds is the Che characteristic time; -1 encodes +Inf
	// (the catalog fits the cache, nothing is ever evicted).
	CharTimeSeconds float64 `json:"charTimeSeconds"`
	Predicted       float64 `json:"predicted"`
	Measured        float64 `json:"measured"`
	Divergence      float64 `json:"divergence"`
	// Diverged is set when Divergence exceeds tolerance with at least
	// minSamples samples behind it.
	Diverged bool `json:"diverged,omitempty"`
}

// Snapshot returns the current report, recomputing at most once per
// snapshotTTL (scrape loops, the divergence gauge, and the per-ghost
// gauges share one computation). Pending ring events are drained
// first, so a snapshot with no background worker is still current.
func (p *Profiler) Snapshot() Report {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	if p.snap != nil && time.Since(p.snapAt) < snapshotTTL {
		return *p.snap
	}
	r := p.compute()
	p.snap, p.snapAt = &r, time.Now()
	return r
}

// compute builds the report under the consumer lock.
func (p *Profiler) compute() Report {
	p.consumeMu.Lock()
	defer p.consumeMu.Unlock()
	p.drainLocked()

	r := Report{
		Rate:            p.cfg.Rate,
		Scale:           p.scale,
		SampledLookups:  p.sampledLookups.Load(),
		SampledPuts:     p.sampledPuts.Load(),
		RingDrops:       p.drops.Load(),
		SeriesOverflow:  p.seriesOverflow,
		CapacityEntries: p.cfg.Capacity,
		CapacityBytes:   p.cfg.CapacityBytes,
		GhostsDisabled:  len(p.ghosts) == 0,
		Tolerance:       p.cfg.Tolerance,
	}

	// Miss-ratio curve, in ghost registration order (the func-backed
	// gauges index this slice by the same order).
	for _, g := range p.ghosts {
		hr := g.hitRate()
		r.MissRatioCurve = append(r.MissRatioCurve, MRCPoint{
			Mult: g.mult, Policy: g.policy,
			CapEntries: g.capEntries, CapBytes: g.capBytes,
			Entries: len(g.entries),
			Hits:    g.hits, Misses: g.misses, Evictions: g.evictions,
			HitRate: hr, MissRatio: 1 - hr,
		})
	}

	// Threshold sweeps, sorted for stable output.
	for kt, sw := range p.sweeps {
		c := SweepCurve{
			Function: kt.fn, KeyType: kt.kt,
			Total: sw.total, NoNeighbor: sw.noNeighbor,
		}
		for i, m := range p.cfg.Grid {
			var hr float64
			if sw.total > 0 {
				hr = float64(sw.hits[i]) / float64(sw.total)
			}
			c.Points = append(c.Points, SweepPoint{Mult: m, Hits: sw.hits[i], HitRate: hr})
		}
		r.ThresholdSweeps = append(r.ThresholdSweeps, c)
	}
	sort.Slice(r.ThresholdSweeps, func(i, j int) bool {
		a, b := r.ThresholdSweeps[i], r.ThresholdSweeps[j]
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		return a.KeyType < b.KeyType
	})

	// Predicted vs measured. The characteristic time is cache-wide —
	// one LRU order spans every series — so T solves the occupancy
	// equation over the union of all catalogs, then each series is
	// evaluated within its own similarity ball.
	if p.cfg.Capacity > 0 {
		var allRates []float64
		for _, pr := range p.preds {
			allRates = append(allRates, pr.rates()...)
		}
		capModel := float64(p.cfg.Capacity) * p.cfg.Rate
		t := solveCharTime(allRates, capModel)
		for kt, pr := range p.preds {
			if pr.sampledLookups == 0 {
				continue
			}
			theta := pr.meanThreshold()
			pred := pr.predict(t, theta, pr.elapsedSeconds())
			meas := pr.measured()
			div := math.Abs(pred - meas)
			row := Prediction{
				Function: kt.fn, KeyType: kt.kt,
				Contents: len(pr.contents), Uncovered: pr.uncovered,
				Samples:       pr.sampledLookups,
				MeanThreshold: theta,
				Predicted:     pred, Measured: meas, Divergence: div,
				CharTimeSeconds: t,
			}
			if math.IsInf(t, 1) {
				row.CharTimeSeconds = -1
			}
			if pr.sampledLookups >= minSamples && div > p.cfg.Tolerance {
				row.Diverged = true
				if p.cfg.Telemetry != nil {
					p.cfg.Telemetry.RecordEvent(telemetry.Event{
						At: time.Now().UnixNano(), Kind: EventWhatIfDivergence,
						Function: kt.fn, KeyType: kt.kt,
						Value: div, Aux: p.cfg.Tolerance,
					})
				}
			}
			if pr.sampledLookups >= minSamples && div > r.MaxDivergence {
				r.MaxDivergence = div
			}
			r.Predictions = append(r.Predictions, row)
		}
		sort.Slice(r.Predictions, func(i, j int) bool {
			a, b := r.Predictions[i], r.Predictions[j]
			if a.Function != b.Function {
				return a.Function < b.Function
			}
			return a.KeyType < b.KeyType
		})
	}
	return r
}
