package audio

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestToneProperties(t *testing.T) {
	s := Tone(16000, 0.5, 440, 0.8)
	if s.Rate != 16000 || len(s.Samples) != 8000 {
		t.Fatalf("tone: rate=%d len=%d", s.Rate, len(s.Samples))
	}
	if math.Abs(s.Duration()-0.5) > 1e-9 {
		t.Errorf("duration = %v", s.Duration())
	}
	var peak float64
	for _, v := range s.Samples {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak > 0.8+1e-9 || peak < 0.7 {
		t.Errorf("peak amplitude = %v, want ≈ 0.8", peak)
	}
}

func TestMixZeroPads(t *testing.T) {
	a := Tone(100, 1, 10, 0.5)
	b := Tone(100, 0.5, 10, 0.5)
	m := Mix(a, b)
	if len(m.Samples) != 100 {
		t.Fatalf("mix len = %d", len(m.Samples))
	}
	if Mix().Rate != 1 {
		t.Error("empty mix")
	}
}

func TestFFTImpulse(t *testing.T) {
	// The FFT of an impulse is flat.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSinePeak(t *testing.T) {
	// A sine at bin frequency concentrates its energy in that bin.
	const n = 256
	const bin = 17
	frame := make([]float64, n)
	for i := range frame {
		frame[i] = math.Sin(2 * math.Pi * bin * float64(i) / n)
	}
	spec := PowerSpectrum(frame)
	best := 0
	for k, v := range spec {
		if v > spec[best] {
			best = k
		}
	}
	if best != bin {
		t.Errorf("peak at bin %d, want %d", best, bin)
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length-6 FFT did not panic")
		}
	}()
	FFT(make([]complex128, 6))
}

// Property: Parseval's theorem — time-domain energy equals
// frequency-domain energy / N.
func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			v := rng.NormFloat64()
			x[i] = complex(v, 0)
			timeE += v * v
		}
		FFT(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeE-freqE/n) < 1e-9*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMFCCFixedLengthAndDeterministic(t *testing.T) {
	s := Tone(16000, 1, 440, 0.5)
	k1 := MFCC(s, MFCCConfig{})
	k2 := MFCC(s, MFCCConfig{})
	if len(k1) != 26 {
		t.Fatalf("key dims = %d, want 26 (13 means + 13 stds)", len(k1))
	}
	if (vec.EuclideanMetric{}).Distance(k1, k2) != 0 {
		t.Error("MFCC not deterministic")
	}
	// Clip length does not change key length.
	long := Tone(16000, 2, 440, 0.5)
	if len(MFCC(long, MFCCConfig{})) != len(k1) {
		t.Error("key length varies with clip length")
	}
	// Too-short clips yield the zero key, not a panic.
	short := &Signal{Rate: 16000, Samples: make([]float64, 10)}
	if k := MFCC(short, MFCCConfig{}); len(k) != 26 {
		t.Errorf("short clip key dims = %d", len(k))
	}
}

func TestMFCCDistinguishesSpectra(t *testing.T) {
	m := vec.EuclideanMetric{}
	low := MFCC(Tone(16000, 1, 200, 0.5), MFCCConfig{})
	low2 := MFCC(Tone(16000, 1, 210, 0.5), MFCCConfig{})
	high := MFCC(Tone(16000, 1, 4000, 0.5), MFCCConfig{})
	if m.Distance(low, low2) >= m.Distance(low, high) {
		t.Errorf("MFCC cannot separate 200Hz/4kHz: near %.3f far %.3f",
			m.Distance(low, low2), m.Distance(low, high))
	}
}

// TestAmbientSceneClassStructure is the dedup premise for audio: MFCC
// keys cluster by ambient class.
func TestAmbientSceneClassStructure(t *testing.T) {
	gen := NewAmbientScene(3)
	m := vec.EuclideanMetric{}
	var intra, inter []float64
	for class := 0; class < gen.Classes; class++ {
		ref, label := gen.Sample(class, 0)
		if label != class {
			t.Fatalf("label = %d, want %d", label, class)
		}
		refKey := MFCC(ref, MFCCConfig{})
		for v := 1; v <= 2; v++ {
			s, _ := gen.Sample(class, v)
			intra = append(intra, m.Distance(refKey, MFCC(s, MFCCConfig{})))
		}
		other, _ := gen.Sample(class+1, 0)
		inter = append(inter, m.Distance(refKey, MFCC(other, MFCCConfig{})))
	}
	meanOf := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if meanOf(intra) >= meanOf(inter) {
		t.Errorf("intra %.3f >= inter %.3f", meanOf(intra), meanOf(inter))
	}
}

func TestAmbientSceneDeterministic(t *testing.T) {
	gen := NewAmbientScene(9)
	a, _ := gen.Sample(2, 5)
	b, _ := gen.Sample(2, 5)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("samples differ for identical (class, variant)")
		}
	}
}
