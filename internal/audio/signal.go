// Package audio is the audio substrate for Potluck's non-vision
// scenarios: the paper's call assistant that "use[s] the mic to capture
// the audio to identify the location and ambient environment" (§2.3),
// with MFCC as the custom key-generation example of §4.2. It provides
// synthetic ambient-sound scenes with ground-truth classes, a radix-2
// FFT, and an MFCC extractor producing fixed-length cache keys.
package audio

import (
	"math"
	"math/rand"
)

// Signal is a mono audio clip.
type Signal struct {
	// Rate is the sample rate in Hz.
	Rate int
	// Samples are amplitude values, nominally in [-1, 1].
	Samples []float64
}

// Duration returns the clip length in seconds.
func (s *Signal) Duration() float64 {
	if s.Rate == 0 {
		return 0
	}
	return float64(len(s.Samples)) / float64(s.Rate)
}

// Tone synthesizes a sine tone.
func Tone(rate int, seconds, freq, amp float64) *Signal {
	n := int(float64(rate) * seconds)
	out := &Signal{Rate: rate, Samples: make([]float64, n)}
	w := 2 * math.Pi * freq / float64(rate)
	for i := range out.Samples {
		out.Samples[i] = amp * math.Sin(w*float64(i))
	}
	return out
}

// WhiteNoise synthesizes uniform noise.
func WhiteNoise(rate int, seconds, amp float64, rng *rand.Rand) *Signal {
	n := int(float64(rate) * seconds)
	out := &Signal{Rate: rate, Samples: make([]float64, n)}
	for i := range out.Samples {
		out.Samples[i] = amp * (rng.Float64()*2 - 1)
	}
	return out
}

// Mix sums signals sample-wise (equal rates required; shorter inputs are
// zero-padded).
func Mix(signals ...*Signal) *Signal {
	if len(signals) == 0 {
		return &Signal{Rate: 1}
	}
	maxLen := 0
	for _, s := range signals {
		if len(s.Samples) > maxLen {
			maxLen = len(s.Samples)
		}
	}
	out := &Signal{Rate: signals[0].Rate, Samples: make([]float64, maxLen)}
	for _, s := range signals {
		for i, v := range s.Samples {
			out.Samples[i] += v
		}
	}
	return out
}

// AmbientScene generates labelled ambient-sound clips: each class is a
// stable mixture of hums, tones, and noise (office HVAC, street traffic,
// restaurant chatter, ...) with per-variant jitter, mirroring the image
// datasets' similar-but-not-identical structure.
type AmbientScene struct {
	// Rate is the sample rate (default 16 kHz).
	Rate int
	// Seconds is the clip length (default 1).
	Seconds float64
	// Classes is the number of ambient environments (default 6).
	Classes int
	seed    int64
}

// NewAmbientScene returns a generator with the standard configuration.
func NewAmbientScene(seed int64) *AmbientScene {
	return &AmbientScene{Rate: 16000, Seconds: 1, Classes: 6, seed: seed}
}

// Sample synthesizes one clip of the given class; (class, variant) is
// deterministic.
func (a *AmbientScene) Sample(class, variant int) (*Signal, int) {
	class = ((class % a.Classes) + a.Classes) % a.Classes
	rng := rand.New(rand.NewSource(a.seed ^ int64(class)*6151 ^ int64(variant)*920419))
	// Class-stable spectral signature: three tones whose base
	// frequencies identify the environment, plus a noise floor whose
	// level also depends on the class.
	base := 80 * math.Pow(1.9, float64(class)) // 80 Hz .. ~2 kHz
	parts := []*Signal{
		WhiteNoise(a.Rate, a.Seconds, 0.02+0.03*float64(class%3), rng),
	}
	for h := 1; h <= 3; h++ {
		freq := base * float64(h) * (1 + 0.02*(rng.Float64()*2-1))
		amp := 0.25 / float64(h) * (1 + 0.2*(rng.Float64()*2-1))
		parts = append(parts, Tone(a.Rate, a.Seconds, freq, amp))
	}
	return Mix(parts...), class
}
