package audio

import "math"

// FFT computes the in-place radix-2 Cooley-Tukey fast Fourier transform
// of x. The length must be a power of two; FFT panics otherwise (callers
// control framing).
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("audio: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson-Lanczos butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// PowerSpectrum returns the one-sided power spectrum of a real frame
// (length a power of two): n/2+1 bins of |X(k)|².
func PowerSpectrum(frame []float64) []float64 {
	n := len(frame)
	buf := make([]complex128, n)
	for i, v := range frame {
		buf[i] = complex(v, 0)
	}
	FFT(buf)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(buf[k]), imag(buf[k])
		out[k] = re*re + im*im
	}
	return out
}

// hannWindow returns the length-n Hann window.
func hannWindow(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}
