package audio

import "testing"

// BenchmarkFFT measures a 512-point transform, the MFCC inner loop.
func BenchmarkFFT(b *testing.B) {
	x := make([]complex128, 512)
	for i := range x {
		x[i] = complex(float64(i%17)/17, 0)
	}
	buf := make([]complex128, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

// BenchmarkMFCC measures key generation for a one-second clip — the
// audio analogue of Table 1.
func BenchmarkMFCC(b *testing.B) {
	gen := NewAmbientScene(1)
	clip, _ := gen.Sample(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MFCC(clip, MFCCConfig{})
	}
}
