package audio

import (
	"math"

	"repro/internal/vec"
)

// MFCCConfig parameterizes the Mel-frequency cepstral coefficient
// extractor (paper citation [38]; §4.2 names MFCC as the custom key
// developers would register for audio input).
type MFCCConfig struct {
	// FrameSize is the analysis window in samples (power of two,
	// default 512).
	FrameSize int
	// Hop is the frame step (default FrameSize/2).
	Hop int
	// MelFilters is the filterbank size (default 26).
	MelFilters int
	// Coefficients is the number of cepstral coefficients kept
	// (default 13).
	Coefficients int
}

func (c MFCCConfig) withDefaults() MFCCConfig {
	if c.FrameSize <= 0 {
		c.FrameSize = 512
	}
	if c.Hop <= 0 {
		c.Hop = c.FrameSize / 2
	}
	if c.MelFilters <= 0 {
		c.MelFilters = 26
	}
	if c.Coefficients <= 0 {
		c.Coefficients = 13
	}
	return c
}

// MFCC computes a fixed-length cache key from a signal: the per-
// coefficient mean and standard deviation of the MFCCs over all frames
// (2 × Coefficients dimensions). Aggregating over frames makes clips of
// any length comparable under one metric, exactly as the image features
// aggregate keypoints.
func MFCC(s *Signal, cfg MFCCConfig) vec.Vector {
	cfg = cfg.withDefaults()
	coefsPerFrame := mfccFrames(s, cfg)
	dims := cfg.Coefficients
	out := make(vec.Vector, 2*dims)
	if len(coefsPerFrame) == 0 {
		return out
	}
	for _, fr := range coefsPerFrame {
		for i := 0; i < dims; i++ {
			out[i] += fr[i]
		}
	}
	n := float64(len(coefsPerFrame))
	for i := 0; i < dims; i++ {
		out[i] /= n
	}
	for _, fr := range coefsPerFrame {
		for i := 0; i < dims; i++ {
			d := fr[i] - out[i]
			out[dims+i] += d * d
		}
	}
	for i := 0; i < dims; i++ {
		out[dims+i] = math.Sqrt(out[dims+i] / n)
	}
	return out
}

// mfccFrames computes the MFCC vector of every frame.
func mfccFrames(s *Signal, cfg MFCCConfig) [][]float64 {
	if len(s.Samples) < cfg.FrameSize || s.Rate <= 0 {
		return nil
	}
	window := hannWindow(cfg.FrameSize)
	filters := melFilterbank(cfg.MelFilters, cfg.FrameSize, s.Rate)
	var out [][]float64
	frame := make([]float64, cfg.FrameSize)
	for start := 0; start+cfg.FrameSize <= len(s.Samples); start += cfg.Hop {
		for i := range frame {
			frame[i] = s.Samples[start+i] * window[i]
		}
		spec := PowerSpectrum(frame)
		// Mel filterbank energies, log-compressed.
		logE := make([]float64, cfg.MelFilters)
		for f, filt := range filters {
			var e float64
			for _, tap := range filt {
				e += spec[tap.bin] * tap.weight
			}
			logE[f] = math.Log(e + 1e-10)
		}
		out = append(out, dctII(logE, cfg.Coefficients))
	}
	return out
}

// melScale converts Hz to mel.
func melScale(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// melInverse converts mel to Hz.
func melInverse(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

type filterTap struct {
	bin    int
	weight float64
}

// melFilterbank builds nFilters triangular filters over the one-sided
// spectrum of frameSize-point frames at the given sample rate.
func melFilterbank(nFilters, frameSize, rate int) [][]filterTap {
	nBins := frameSize/2 + 1
	maxMel := melScale(float64(rate) / 2)
	centers := make([]float64, nFilters+2) // in bins, including edges
	for i := range centers {
		mel := maxMel * float64(i) / float64(nFilters+1)
		hz := melInverse(mel)
		centers[i] = hz / float64(rate) * float64(frameSize)
	}
	filters := make([][]filterTap, nFilters)
	for f := 0; f < nFilters; f++ {
		lo, mid, hi := centers[f], centers[f+1], centers[f+2]
		for b := int(lo); b <= int(hi) && b < nBins; b++ {
			fb := float64(b)
			var w float64
			switch {
			case fb < lo || fb > hi:
				continue
			case fb <= mid:
				if mid > lo {
					w = (fb - lo) / (mid - lo)
				}
			default:
				if hi > mid {
					w = (hi - fb) / (hi - mid)
				}
			}
			if w > 0 {
				filters[f] = append(filters[f], filterTap{bin: b, weight: w})
			}
		}
	}
	return filters
}

// dctII computes the first k coefficients of the DCT-II of x.
func dctII(x []float64, k int) []float64 {
	n := len(x)
	if k > n {
		k = n
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var sum float64
		for i, v := range x {
			sum += v * math.Cos(math.Pi*float64(c)*(float64(i)+0.5)/float64(n))
		}
		out[c] = sum
	}
	return out
}
