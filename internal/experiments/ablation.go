package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "ablation-dropout",
		Title: "Ablation: random-dropout probability (§3.4 / end of §5.2)",
		Paper: "the paper sets p = 0.1 and defers 'how to set the dropout " +
			"probability'; this ablation maps the tradeoff: p = 0 never detects " +
			"a stale threshold, large p wastes recomputation",
		Run: runAblationDropout,
	})
	register(Experiment{
		ID:    "ablation-index",
		Title: "Ablation: index structure for the same cache workload (§3.6)",
		Paper: "Figure 5 offers hash/treemap/KD-tree/LSH per key type; this " +
			"ablation compares lookup latency and exactness on one workload",
		Run: runAblationIndex,
	})
}

// runAblationDropout replays a scene-change scenario for several dropout
// probabilities: the cache holds stale results for keys near the new
// scene's inputs, so every undetected false positive returns a wrong
// value. Dropout is the only mechanism that triggers recomputation and
// the tuner's tightening branch. Reported per p: wrong results served,
// recomputations paid, and operations until the threshold shrank 10×.
func runAblationDropout(w io.Writer) error {
	rows := make([][]string, 0, 6)
	for _, p := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4} {
		clk := clock.NewVirtual(time.Unix(0, 0))
		cfg := core.Config{
			Clock: clk,
			Seed:  42,
			Tuner: core.TunerConfig{WarmupZ: 1, K: 4},
		}
		if p == 0 {
			cfg.DisableDropout = true
		} else {
			cfg.DropoutRate = p
		}
		cache := core.New(cfg)
		if err := cache.RegisterFunction("f", core.KeyTypeSpec{Name: "k", Dim: 1}); err != nil {
			return err
		}
		// Stale scene: results for keys 0..99 cached under a loose
		// threshold.
		for i := 0; i < 100; i++ {
			if _, err := cache.Put("f", core.PutRequest{
				Keys:  map[string]vec.Vector{"k": {float64(i)}},
				Value: "old-scene",
			}); err != nil {
				return err
			}
		}
		if err := cache.ForceThreshold("f", "k", 2.0); err != nil {
			return err
		}
		// New scene: same key region now maps to different results.
		const ops = 400
		wrong, recomputes := 0, 0
		shrunkAt := -1
		rng := rand.New(rand.NewSource(7))
		for op := 0; op < ops; op++ {
			key := vec.Vector{rng.Float64() * 100}
			res, err := cache.Lookup("f", "k", key)
			if err != nil {
				return err
			}
			if res.Hit {
				if res.Value == "old-scene" {
					wrong++
				}
				continue
			}
			recomputes++
			if _, err := cache.Put("f", core.PutRequest{
				Keys:  map[string]vec.Vector{"k": key},
				Value: "new-scene",
			}); err != nil {
				return err
			}
			st, _ := cache.TunerStats("f", "k")
			if shrunkAt < 0 && st.Threshold <= 0.2 {
				shrunkAt = op
			}
		}
		shrunk := "never"
		if shrunkAt >= 0 {
			shrunk = fmt.Sprintf("%d", shrunkAt)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p),
			fmt.Sprintf("%d", wrong),
			fmt.Sprintf("%d", recomputes),
			shrunk,
		})
	}
	table(w, []string{"dropout p", "wrong results (of 400)", "recomputations", "ops to 10x tighter"}, rows)
	fmt.Fprintln(w, "\np = 0.1 (the paper's default) balances stale-result exposure against recomputation cost")
	return nil
}

// runAblationIndex runs the same pre-populated cache workload over each
// index kind, reporting lookup latency and whether the returned
// neighbour matches the exact (linear-scan) answer.
func runAblationIndex(w io.Writer) error {
	const entries, dim, queries = 20_000, 64, 300
	rng := rand.New(rand.NewSource(5))
	keys := make([]vec.Vector, entries)
	for i := range keys {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		keys[i] = v
	}
	qs := make([]vec.Vector, queries)
	for i := range qs {
		q := keys[rng.Intn(entries)].Clone()
		for j := range q {
			q[j] += rng.NormFloat64() * 0.01
		}
		qs[i] = q
	}
	ref := index.NewLinear(vec.EuclideanMetric{})
	for i, k := range keys {
		ref.Insert(index.ID(i), k)
	}
	want := make([]index.ID, queries)
	for i, q := range qs {
		n, _ := ref.Nearest(q)
		want[i] = n.ID
	}

	rows := make([][]string, 0, 5)
	for _, kind := range []index.Kind{index.KindLinear, index.KindKDTree, index.KindLSH, index.KindTreeMap, index.KindHash} {
		idx, err := index.New(kind, vec.EuclideanMetric{}, dim)
		if err != nil {
			return err
		}
		insertStart := time.Now()
		for i, k := range keys {
			idx.Insert(index.ID(i), k)
		}
		insertAvg := time.Since(insertStart) / entries
		exact := 0
		lookupStart := time.Now()
		for i, q := range qs {
			if n, ok := idx.Nearest(q); ok && n.ID == want[i] {
				exact++
			}
		}
		lookupAvg := time.Since(lookupStart) / queries
		rows = append(rows, []string{
			string(kind),
			fmt.Sprintf("%.1f", float64(lookupAvg)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f", float64(insertAvg)/float64(time.Microsecond)),
			fmt.Sprintf("%.0f%%", 100*float64(exact)/queries),
		})
	}
	table(w, []string{"index", "lookup (µs)", "insert (µs)", "exact-NN agreement"}, rows)
	return nil
}
