// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment prints the same rows or series the
// paper reports; absolute numbers reflect this machine and the synthetic
// substrates, but the shapes — orderings, crossovers, speedup factors —
// are the reproduction targets. EXPERIMENTS.md records paper-vs-measured
// for each.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible artifact of the evaluation.
type Experiment struct {
	// ID is the artifact identifier ("table1", "fig2", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Paper summarizes what the paper's version shows (the shape to
	// reproduce).
	Paper string
	// Run executes the experiment, writing its rows/series to w.
	Run func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// paperOrder lists the artifacts in the order they appear in the paper.
var paperOrder = []string{
	"fig2", "table1", "fig6", "fig7", "fig8", "table2", "table2scale", "ipc", "space",
	"fig9", "fig10a", "fig10b", "fig10c", "mnist16x",
	"ablation-dropout", "ablation-index", "ablation-k", "crossdevice", "mesh",
	"whatif",
}

// All returns the experiments in paper order (artifacts not in the
// canonical list follow, in registration order).
func All() []Experiment {
	rank := make(map[string]int, len(paperOrder))
	for i, id := range paperOrder {
		rank[id] = i
	}
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		ri, okI := rank[out[i].ID]
		rj, okJ := rank[out[j].ID]
		if okI && okJ {
			return ri < rj
		}
		return okI && !okJ
	})
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment in order, with headers.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// table builds an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// minMax returns the extrema of xs.
func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// median returns the median of xs (0 for empty input).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
