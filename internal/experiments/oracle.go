package experiments

import (
	"sync"

	"repro/internal/feature"
	"repro/internal/imaging"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/vec"
)

// recognizer wraps the benchmark classifier with memoization keyed by
// (class, variant): dataset samples are deterministic, so repeated
// experiments across parameter sweeps reuse inference results instead of
// re-running the CNN thousands of times. The memo affects only wall
// time, never results.
type recognizer struct {
	clf *nn.Classifier
	ext feature.Extractor

	mu     sync.Mutex
	labels map[[2]int]int
	keys   map[[2]int]vec.Vector
}

func newRecognizer(clf *nn.Classifier) *recognizer {
	ext, err := feature.ByName("downsamp")
	if err != nil {
		panic(err) // registered at init
	}
	return &recognizer{
		clf:    clf,
		ext:    ext,
		labels: make(map[[2]int]int),
		keys:   make(map[[2]int]vec.Vector),
	}
}

// classify returns the classifier's label for sample (class, variant).
func (r *recognizer) classify(img *imaging.RGB, class, variant int) int {
	k := [2]int{class, variant}
	r.mu.Lock()
	if l, ok := r.labels[k]; ok {
		r.mu.Unlock()
		return l
	}
	r.mu.Unlock()
	l, _ := r.clf.Classify(img)
	r.mu.Lock()
	r.labels[k] = l
	r.mu.Unlock()
	return l
}

// key returns the downsample key for sample (class, variant).
func (r *recognizer) key(img *imaging.RGB, class, variant int) vec.Vector {
	k := [2]int{class, variant}
	r.mu.Lock()
	if v, ok := r.keys[k]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()
	v := r.ext.Extract(img).Key
	r.mu.Lock()
	r.keys[k] = v
	r.mu.Unlock()
	return v
}

// sampler abstracts the two labelled datasets.
type sampler interface {
	Sample(class, variant int) synth.Labeled
}

// datasetEntry is one (key, label) pair drawn from a dataset.
type datasetEntry struct {
	key     vec.Vector
	label   int // classifier output (what the cache stores)
	truth   int // generator ground truth
	class   int
	variant int
}

// drawEntries samples n dataset entries with variants in
// [variantBase, variantBase+n), cycling classes, classifying each.
func drawEntries(ds sampler, rec *recognizer, classes, n, variantBase int) []datasetEntry {
	out := make([]datasetEntry, n)
	for i := 0; i < n; i++ {
		class := i % classes
		variant := variantBase + i
		s := ds.Sample(class, variant)
		out[i] = datasetEntry{
			key:     rec.key(s.Image, class, variant),
			label:   rec.classify(s.Image, class, variant),
			truth:   s.Label,
			class:   class,
			variant: variant,
		}
	}
	return out
}

// trainPerClass is the number of training variants per class.
const trainPerClass = 8

// buildCIFAR trains a classifier over a CIFAR-like generator with the
// given background-class correlation and returns both.
func buildCIFAR(seed int64, bgCorr float64) (*synth.CIFARLike, *recognizer) {
	ds := synth.NewCIFARLike(seed)
	ds.BgCorr = bgCorr
	var imgs []*imaging.RGB
	var labels []int
	for c := 0; c < ds.Classes; c++ {
		for v := 0; v < trainPerClass; v++ {
			s := ds.Sample(c, v)
			imgs = append(imgs, s.Image)
			labels = append(labels, s.Label)
		}
	}
	clf, err := nn.Train(nn.NewTinyAlexNet(seed), imgs, labels, ds.Classes)
	if err != nil {
		panic(err) // deterministic inputs; cannot fail
	}
	return ds, newRecognizer(clf)
}

// cifarClassifier lazily trains the shared CIFAR-like classifier used by
// Figures 6 and 10; training cost is paid once per process.
var (
	cifarOnce sync.Once
	cifarDS   *synth.CIFARLike
	cifarRec  *recognizer
)

// cifar returns the shared dataset (default spatial correlation) and
// memoized recognizer.
func cifar() (*synth.CIFARLike, *recognizer) {
	cifarOnce.Do(func() {
		cifarDS, cifarRec = buildCIFAR(2018, synth.NewCIFARLike(0).BgCorr)
	})
	return cifarDS, cifarRec
}

// hardCIFAR is the stress variant with weak spatial correlation, used by
// Figure 9's tradeoff study (the paper frames its datasets as the
// "worst-case ... less favorable" scenario, §5.1: crowdsourced images
// eliminate spatio-temporal correlation).
var (
	hardCIFAROnce sync.Once
	hardCIFARDS   *synth.CIFARLike
	hardCIFARRec  *recognizer
)

func hardCIFAR() (*synth.CIFARLike, *recognizer) {
	hardCIFAROnce.Do(func() {
		hardCIFARDS, hardCIFARRec = buildCIFAR(99, 0.3)
	})
	return hardCIFARDS, hardCIFARRec
}

var (
	mnistOnce sync.Once
	mnistDS   *synth.MNISTLike
	mnistRec  *recognizer
)

// mnist returns the shared MNIST-like dataset and recognizer.
func mnist() (*synth.MNISTLike, *recognizer) {
	mnistOnce.Do(func() {
		mnistDS = synth.NewMNISTLike(2018)
		var imgs []*imaging.RGB
		var labels []int
		for c := 0; c < 10; c++ {
			for v := 0; v < trainPerClass; v++ {
				s := mnistDS.Sample(c, v)
				imgs = append(imgs, s.Image)
				labels = append(labels, s.Label)
			}
		}
		clf, err := nn.Train(nn.NewTinyAlexNet(4036), imgs, labels, 10)
		if err != nil {
			panic(err)
		}
		mnistRec = newRecognizer(clf)
	})
	return mnistDS, mnistRec
}

// accuracy scores predicted labels against ground truth.
func accuracy(pred, truth []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}
