package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/feature"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Key generation time and descriptor size",
		Paper: "SIFT (124 KB, 1568 ms) > SURF (32 KB, 446 ms) > Harris (91 ms) " +
			"≫ FAST (4.6 ms) ≈ Downsamp (5.8 ms, 1 KB); ~500 features per 600×400 image",
		Run: runTable1,
	})
}

// runTable1 reproduces Table 1: per-extractor key generation time,
// descriptor payload size, and suggested usage, over 600×400 images.
func runTable1(w io.Writer) error {
	const (
		imgW, imgH = 600, 400
		nImages    = 5
	)
	// A cluttered scene: the paper's street imagery yields ~500 interest
	// points per 600×400 frame, which needs plenty of corners.
	video := synth.NewVideo(synth.VideoConfig{W: imgW, H: imgH, Seed: 7, Noise: 0.01, Objects: 80})
	imgs := video.Frames(nImages)

	names := []string{"sift", "surf", "harris", "fast", "downsamp"}
	rows := make([][]string, 0, len(names))
	timings := make(map[string]time.Duration, len(names))
	for _, name := range names {
		ext, err := feature.ByName(name)
		if err != nil {
			return err
		}
		var total time.Duration
		var bytes, keypoints int
		for _, img := range imgs {
			start := time.Now()
			res := ext.Extract(img)
			total += time.Since(start)
			bytes += res.RawBytes
			keypoints += res.Keypoints
		}
		avg := total / nImages
		timings[name] = avg
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(bytes)/nImages/1024),
			fmt.Sprintf("%.2f", float64(avg)/float64(time.Millisecond)),
			fmt.Sprintf("%d", keypoints/nImages),
			ext.Usage(),
		})
	}
	table(w, []string{"feature", "size (KB)", "time (ms)", "keypoints", "usage"}, rows)
	fmt.Fprintf(w, "\nshape check (SIFT > SURF > Harris > FAST): %v\n",
		timings["sift"] > timings["surf"] &&
			timings["surf"] > timings["harris"] &&
			timings["harris"] > timings["fast"])
	return nil
}
