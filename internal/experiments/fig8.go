package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Cache replacement strategies (importance vs LRU vs random)",
		Paper: "importance-based eviction consistently beats LRU and random for " +
			"both exponential and uniform request patterns; miss-time ratio falls " +
			"below 5% once ~40% (exp) / ~60% (uniform) of the working set is cached",
		Run: runFig8,
	})
}

// runFig8 reproduces Figure 8: 100 workloads costing 1 ms–10 s, request
// sequences of 10 000 drawn uniformly and exponentially, cache capacity
// swept over 10–90% of the working set, and the fraction of total
// computation time spent on misses for each replacement policy.
func runFig8(w io.Writer) error {
	const (
		nWorkloads = 100
		nRequests  = 10_000
	)
	specs := workload.Specs(nWorkloads, 1e6, 1e10) // 1 ms .. 10 s
	policies := []core.PolicyKind{core.PolicyImportance, core.PolicyLRU, core.PolicyRandom}

	for _, dist := range []workload.Distribution{workload.Exponential, workload.Uniform} {
		fmt.Fprintf(w, "(%s distribution)\n", dist)
		seq := workload.Sequence(dist, nWorkloads, nRequests, rand.New(rand.NewSource(8)))
		working := len(workload.WorkingSet(seq))
		rows := make([][]string, 0, 9)
		for pct := 10; pct <= 90; pct += 10 {
			capacity := working * pct / 100
			if capacity < 1 {
				capacity = 1
			}
			row := []string{fmt.Sprintf("%d%%", pct)}
			for _, pol := range policies {
				res, err := workload.Replay(specs, seq, pol, capacity, workload.Mobile)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.3f", res.MissRatio()))
			}
			rows = append(rows, row)
		}
		table(w, []string{"cached", "importance", "lru", "random"}, rows)
		fmt.Fprintln(w)
	}
	return nil
}
