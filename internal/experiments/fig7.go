package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Threshold decay vs cache operations (dropout 0.1)",
		Paper: "with tightening factor ≥ 1/4, the threshold shrinks 20× within " +
			"~20 operations and 100× within ~30 on average",
		Run: runFig7,
	})
}

// runFig7 reproduces Figure 7: after a scene change the threshold is too
// loose; every cache operation is a lookup that, with the dropout
// probability, forces a recomputation whose put observes a
// within-threshold value conflict and tightens by the factor k. The
// series reports the normalized threshold after each operation for
// k ∈ {2, 4, 8}.
func runFig7(w io.Writer) error {
	const (
		ops     = 100
		dropout = 0.1
		reps    = 200
	)
	factors := []float64{2, 4, 8}

	// traj[f][op] accumulates the normalized threshold after `op`
	// operations for factor f, averaged over reps random runs.
	traj := make([][]float64, len(factors))
	for fi, k := range factors {
		traj[fi] = make([]float64, ops+1)
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(int64(rep)*31 + int64(fi)))
			tuner := core.NewTuner(core.TunerConfig{K: k, WarmupZ: 1})
			tuner.ObservePut(0, true, false) // complete warm-up
			tuner.ForceActivate(1.0)
			traj[fi][0] += 1.0
			for op := 1; op <= ops; op++ {
				// Each operation is a lookup against a stale cache; with
				// probability `dropout` the lookup is dropped, the app
				// recomputes, and the put sees the conflict.
				if rng.Float64() < dropout {
					tuner.ObservePut(tuner.Threshold()/2, false, true)
				}
				traj[fi][op] += tuner.Threshold()
			}
		}
		for op := range traj[fi] {
			traj[fi][op] /= reps
		}
	}

	rows := make([][]string, 0, 11)
	for op := 0; op <= ops; op += 10 {
		row := []string{fmt.Sprintf("%d", op)}
		for fi := range factors {
			row = append(row, fmt.Sprintf("%.4f", traj[fi][op]))
		}
		rows = append(rows, row)
	}
	table(w, []string{"operations", "factor 1/2", "factor 1/4", "factor 1/8"}, rows)

	// How many operations until the threshold has shrunk 20× and 100×.
	for fi, k := range factors {
		at20, at100 := -1, -1
		for op, v := range traj[fi] {
			if at20 < 0 && v <= 1.0/20 {
				at20 = op
			}
			if at100 < 0 && v <= 1.0/100 {
				at100 = op
			}
		}
		fmt.Fprintf(w, "factor 1/%.0f: 20x shrink after %d ops, 100x after %d ops\n", k, at20, at100)
	}
	return nil
}
