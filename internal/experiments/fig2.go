package experiments

import (
	"fmt"
	"io"

	"repro/internal/feature"
	"repro/internal/synth"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Similarity between frames (normalized vector distance)",
		Paper: "feature distances (ColorHist, HOG) stay low and stable across " +
			"20 successive frames while raw-input distance is larger and noisier",
		Run: runFig2,
	})
}

// runFig2 reproduces Figure 2: the normalized vector distance between
// the first frame of a video segment and each later frame, for the
// color-histogram feature, the HOG feature, and the raw input.
func runFig2(w io.Writer) error {
	const frames = 20
	// A slowly panning camera, like the HEVC test segment: successive
	// frames are nearly identical scenes under independent per-frame
	// perturbation (the Noise term stands in for sensor noise plus the
	// codec artifacts of the HEVC pipeline). Features filter that
	// perturbation; the raw input does not — which is Figure 2's point.
	video := synth.NewVideo(synth.VideoConfig{
		W: 480, H: 360, Seed: 2018, Objects: 10,
		PanPerFrame: 0.2, ZoomPerFrame: 1.0001, Noise: 0.10,
	})
	metric := vec.EuclideanMetric{}

	colorHist, err := feature.ByName("colorhist")
	if err != nil {
		return err
	}
	hog, err := feature.ByName("hog")
	if err != nil {
		return err
	}
	raw := func(i int) vec.Vector {
		f := video.Frame(i)
		v := make(vec.Vector, len(f.Pix))
		copy(v, f.Pix)
		return v.Normalize()
	}

	ref := video.Frame(0)
	refColor := colorHist.Extract(ref).Key.Normalize()
	refHOG := hog.Extract(ref).Key.Normalize()
	refRaw := raw(0)

	rows := make([][]string, 0, frames)
	var colorDists, hogDists, rawDists []float64
	for i := 1; i <= frames; i++ {
		f := video.Frame(i)
		dc := metric.Distance(refColor, colorHist.Extract(f).Key.Normalize())
		dh := metric.Distance(refHOG, hog.Extract(f).Key.Normalize())
		dr := metric.Distance(refRaw, raw(i))
		colorDists = append(colorDists, dc)
		hogDists = append(hogDists, dh)
		rawDists = append(rawDists, dr)
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%.4f", dc),
			fmt.Sprintf("%.4f", dh),
			fmt.Sprintf("%.4f", dr),
		})
	}
	table(w, []string{"frame", "colorhist", "hog", "raw"}, rows)
	fmt.Fprintf(w, "\nmean distance: colorhist %.4f, hog %.4f, raw %.4f\n",
		mean(colorDists), mean(hogDists), mean(rawDists))
	fmt.Fprintf(w, "shape check (features < raw): %v\n",
		mean(colorDists) < mean(rawDists) && mean(hogDists) < mean(rawDists))
	return nil
}
