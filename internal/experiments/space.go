package experiments

import (
	"fmt"
	"io"

	"repro/internal/feature"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "space",
		Title: "Space overhead of keys vs raw input (§5.4)",
		Paper: "a 400×400 raw image is ~500 KB while its SIFT/SURF vectors are " +
			"48/24 KB for 400 keypoints; even all key types together stay an " +
			"order of magnitude below the raw input",
		Run: runSpace,
	})
}

// runSpace reproduces the §5.4 space-overhead argument: per-image key
// footprints for every extractor against the raw frame, plus their sum.
func runSpace(w io.Writer) error {
	const imgW, imgH = 400, 400
	img := synth.NewVideo(synth.VideoConfig{W: imgW, H: imgH, Seed: 3, Objects: 60}).Frame(0)
	rawBytes := 3 * imgW * imgH // 1 byte per channel

	rows := make([][]string, 0, 8)
	total := 0
	for _, name := range []string{"sift", "surf", "harris", "fast", "hog", "colorhist", "downsamp"} {
		ext, err := feature.ByName(name)
		if err != nil {
			return err
		}
		res := ext.Extract(img)
		total += res.RawBytes
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(res.RawBytes)/1024),
			fmt.Sprintf("%d", res.Keypoints),
			fmt.Sprintf("%.1f%%", 100*float64(res.RawBytes)/float64(rawBytes)),
		})
	}
	table(w, []string{"feature", "size (KB)", "keypoints", "of raw image"}, rows)
	fmt.Fprintf(w, "\nraw %dx%d image: %.0f KB; all key types combined: %.1f KB (%.1f%% of raw)\n",
		imgW, imgH, float64(rawBytes)/1024, float64(total)/1024, 100*float64(total)/float64(rawBytes))
	// Note: the paper's §5.4 quotes SIFT at 48 KB while its own Table 1
	// says 124 KB; our payloads follow Table 1, so SIFT alone is ~25% of
	// the raw frame. The claim that holds either way: every non-SIFT key
	// is far below a tenth of the raw input, and the combined footprint
	// stays well under the raw image.
	ok := total < rawBytes/2
	for _, row := range rows {
		if row[0] == "sift" {
			continue
		}
		var pct float64
		fmt.Sscanf(row[3], "%f%%", &pct)
		if pct > 10 {
			ok = false
		}
	}
	fmt.Fprintf(w, "shape check (non-SIFT keys ≤ 10%% each, combined < half of raw): %v\n", ok)
	return nil
}
