package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "ablation-k",
		Title: "Ablation: k of the threshold-restricted kNN lookup (§3.4)",
		Paper: "\"By default ... we set k to 1. We experimented with a few values " +
			"and find that this value provides the fastest lookup time without " +
			"sacrificing quality\" — this ablation reruns that experiment",
		Run: runAblationK,
	})
}

// runAblationK measures, for k ∈ {1, 2, 4, 8}: lookup latency and hit
// quality (fraction of hits whose returned label matches ground truth)
// over the weak-correlation dataset, at the tuner's own warm-up
// threshold. The paper's finding to reproduce: k = 1 is fastest and
// larger k does not buy quality.
func runAblationK(w io.Writer) error {
	ds, rec := hardCIFAR()
	const stored, testN = 1000, 200
	entries := drawEntries(ds, rec, ds.Classes, stored, 100)
	test := drawEntries(ds, rec, ds.Classes, testN, 50_000)
	threshold := initialThreshold(entries[:300], vec.EuclideanMetric{})

	rows := make([][]string, 0, 4)
	for _, k := range []int{1, 2, 4, 8} {
		cache := core.New(core.Config{
			DisableDropout: true,
			Tuner:          core.TunerConfig{WarmupZ: 1},
			LookupK:        k,
		})
		if err := cache.RegisterFunction("f", core.KeyTypeSpec{
			Name: "downsamp", Index: "kdtree", Dim: len(entries[0].key),
		}); err != nil {
			return err
		}
		for _, e := range entries {
			if _, err := cache.Put("f", core.PutRequest{
				Keys:  map[string]vec.Vector{"downsamp": e.key},
				Value: e.label,
			}); err != nil {
				return err
			}
		}
		if err := cache.ForceThreshold("f", "downsamp", threshold); err != nil {
			return err
		}
		hits, correct := 0, 0
		start := time.Now()
		for _, te := range test {
			res, err := cache.Lookup("f", "downsamp", te.key)
			if err != nil {
				return err
			}
			if res.Hit {
				hits++
				if res.Value.(int) == te.truth {
					correct++
				}
			}
		}
		perLookup := time.Since(start) / testN
		quality := 0.0
		if hits > 0 {
			quality = float64(correct) / float64(hits)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", float64(perLookup)/float64(time.Microsecond)),
			fmt.Sprintf("%.0f%%", 100*float64(hits)/testN),
			fmt.Sprintf("%.1f%%", 100*quality),
		})
	}
	table(w, []string{"k", "lookup (µs)", "hit rate", "hit quality"}, rows)
	fmt.Fprintf(w, "\n(threshold fixed at the warm-up value %.2f for all k)\n", threshold)
	return nil
}
