package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "ipc",
		Title: "IPC round-trip latency (§5.4)",
		Paper: "average end-to-end latency of ~0.36 ms per request over Binder/AIDL",
		Run:   runIPC,
	})
}

// runIPC measures the §5.4 micro-benchmark: 500 sequential requests over
// the service transport, total time divided by 500. Our transport is a
// Unix domain socket, the Linux analogue of a local Binder hop.
func runIPC(w io.Writer) error {
	dir, err := os.MkdirTemp("", "potluck-ipc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "potluck.sock")

	cache := core.New(core.Config{DisableDropout: true, Tuner: core.TunerConfig{WarmupZ: 1}})
	srv := service.NewServer(cache)
	l, err := net.Listen("unix", sock)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	defer func() {
		srv.Close()
		<-done
	}()

	cl, err := service.Dial("unix", sock, "bench")
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Register("f", service.KeyTypeDef{Name: "k"}); err != nil {
		return err
	}
	key := vec.Vector{1, 2, 3, 4}
	if _, err := cl.Put("f", map[string]vec.Vector{"k": key}, []byte("v"), service.PutOptions{}); err != nil {
		return err
	}

	const requests = 500
	start := time.Now()
	for i := 0; i < requests; i++ {
		if _, err := cl.Lookup("f", "k", key); err != nil {
			return err
		}
	}
	avg := time.Since(start) / requests
	fmt.Fprintf(w, "requests: %d\naverage round-trip: %.3f ms\n",
		requests, float64(avg)/float64(time.Millisecond))
	fmt.Fprintf(w, "paper (Binder/AIDL on Nexus 5): 0.36 ms\n")
	return nil
}
