package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "ipc",
		Title: "IPC round-trip latency (§5.4), healthy and under injected faults",
		Paper: "average end-to-end latency of ~0.36 ms per request over Binder/AIDL",
		Run:   runIPC,
	})
}

// latencyStats summarizes a latency sample: mean plus tail percentiles,
// since a service for millions of users is judged by its p99, not its
// average.
type latencyStats struct {
	n                   int
	avg, p50, p99, pMax time.Duration
}

func summarize(samples []time.Duration) latencyStats {
	if len(samples) == 0 {
		return latencyStats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pick := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return latencyStats{
		n:    len(sorted),
		avg:  sum / time.Duration(len(sorted)),
		p50:  pick(0.50),
		p99:  pick(0.99),
		pMax: sorted[len(sorted)-1],
	}
}

func (s latencyStats) row(label string) []string {
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
	}
	return []string{label, fmt.Sprintf("%d", s.n), ms(s.avg), ms(s.p50), ms(s.p99), ms(s.pMax)}
}

// runIPC measures the §5.4 micro-benchmark — sequential requests over
// the service transport (a Unix domain socket, the Linux analogue of a
// local Binder hop) — first on a healthy service, then with injected
// faults: slow-loris and garbage-writing peers attacking the same
// server, and a full server kill/restart mid-run that the client must
// survive via its reconnect path.
func runIPC(w io.Writer) error {
	dir, err := os.MkdirTemp("", "potluck-ipc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "potluck.sock")

	cache := core.New(core.Config{DisableDropout: true, Tuner: core.TunerConfig{WarmupZ: 1}})
	// Tight deadlines so hostile peers are evicted quickly instead of
	// holding connection slots through the measurement.
	scfg := service.ServerConfig{
		IdleTimeout: 500 * time.Millisecond,
		ReadTimeout: 200 * time.Millisecond,
	}
	startServer := func() (*service.Server, chan error, error) {
		srv := service.NewServerConfig(cache, scfg)
		l, err := net.Listen("unix", sock)
		if err != nil {
			return nil, nil, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(context.Background(), l) }()
		return srv, done, nil
	}

	srv, done, err := startServer()
	if err != nil {
		return err
	}
	stop := func() {
		if srv != nil {
			srv.Close()
			<-done
			srv = nil
		}
	}
	defer stop()

	cl, err := service.DialConfig("unix", sock, "bench", service.ClientConfig{
		RequestTimeout: 2 * time.Second,
		BackoffBase:    5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Register("f", service.KeyTypeDef{Name: "k"}); err != nil {
		return err
	}
	key := vec.Vector{1, 2, 3, 4}
	if _, err := cl.Put("f", map[string]vec.Vector{"k": key}, []byte("v"), service.PutOptions{}); err != nil {
		return err
	}

	const requests = 500
	measure := func(n int) ([]time.Duration, int, error) {
		samples := make([]time.Duration, 0, n)
		errs := 0
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, err := cl.Lookup("f", "k", key); err != nil {
				errs++
				continue
			}
			samples = append(samples, time.Since(start))
		}
		return samples, errs, nil
	}

	// Phase 1: healthy service.
	healthy, healthyErrs, err := measure(requests)
	if err != nil {
		return err
	}

	// Phase 2: the same measurement while hostile peers attack the
	// server. Each attacker reconnects in a loop so the pressure is
	// sustained for the whole phase.
	attackCtx, stopAttack := context.WithCancel(context.Background())
	defer stopAttack()
	slowLoris := func() {
		for attackCtx.Err() == nil {
			conn, err := net.Dial("unix", sock)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			conn.Write([]byte{0}) // partial header, then hold the socket
			select {
			case <-attackCtx.Done():
			case <-time.After(time.Second):
			}
			conn.Close()
		}
	}
	garbage := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 512)
		for attackCtx.Err() == nil {
			conn, err := net.Dial("unix", sock)
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			for attackCtx.Err() == nil {
				rng.Read(buf)
				if _, err := conn.Write(buf); err != nil {
					break
				}
			}
			conn.Close()
		}
	}
	go slowLoris()
	go slowLoris()
	go garbage(1)
	go garbage(2)

	underAttack, attackErrs, err := measure(requests / 2)
	if err != nil {
		return err
	}

	// Mid-phase: kill the server and restart it on the same socket. The
	// client's next request rides the poisoned-connection retry path and
	// must transparently reconnect (the cache object survives, so no
	// re-registration is needed).
	stop()
	srv, done, err = startServer()
	if err != nil {
		return err
	}
	afterRestart, restartErrs, err := measure(requests / 2)
	if err != nil {
		return err
	}
	stopAttack()

	table(w, []string{"phase", "ok", "avg ms", "p50 ms", "p99 ms", "max ms"}, [][]string{
		summarize(healthy).row("healthy"),
		summarize(underAttack).row("slow-loris + garbage peers"),
		summarize(afterRestart).row("after server kill/restart"),
	})
	fmt.Fprintf(w, "\nrequest errors: healthy=%d under-attack=%d across-restart=%d (reconnect is transparent)\n",
		healthyErrs, attackErrs, restartErrs)
	fmt.Fprintf(w, "paper (Binder/AIDL on Nexus 5, healthy): 0.36 ms average\n")
	return nil
}
