package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "mesh",
		Title: "Extension: multi-peer mesh pools cache capacity across devices (§7 future work)",
		Paper: "the paper proposes cross-device deduplication; this extension bounds " +
			"each node's cache to a device-sized budget and measures how a 3-node " +
			"rendezvous-routed mesh lifts the aggregate hit rate over one isolated " +
			"node facing the same workload, and what K-way replication costs",
		Run: runMesh,
	})
}

// The workload: F computation namespaces (functions), each with E
// recurring inputs — more distinct results than one device-budget
// cache can hold, fewer than the mesh's pooled budget. Apps land on
// nodes round-robin, so a result computed behind one node is reused
// behind another only if the mesh forwards and adopts it.
const (
	meshFunctions  = 12
	meshKeysPerFn  = 30
	meshNodeBudget = 200 // MaxEntries per node, the device-sized budget
	meshTrials     = 3600
)

// meshNodes is one running topology: n capacity-bounded caches behind
// real sockets, optionally joined into a rendezvous mesh.
type meshNodes struct {
	clients []*service.Client
	meshes  []*cluster.Mesh
	servers []*service.Server
	dir     string
}

func (t *meshNodes) close() {
	for _, cl := range t.clients {
		cl.Close()
	}
	for _, m := range t.meshes {
		m.Close()
	}
	for _, s := range t.servers {
		s.Close()
	}
	os.RemoveAll(t.dir)
}

// startMeshNodes boots n nodes. With n > 1 every node gets a Mesh over
// the other n-1 peers at replication factor k; with n == 1 the node
// runs standalone, the single-device baseline.
func startMeshNodes(n, k int) (*meshNodes, error) {
	dir, err := os.MkdirTemp("", "potluck-mesh")
	if err != nil {
		return nil, err
	}
	t := &meshNodes{dir: dir}
	fail := func(err error) (*meshNodes, error) {
		t.close()
		return nil, err
	}

	caches := make([]*core.Cache, n)
	socks := make([]string, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("node-%d", i)
		socks[i] = filepath.Join(dir, fmt.Sprintf("node-%d.sock", i))
		// The per-node budget is constant across topologies: the mesh
		// wins by pooling device-sized caches, not by being granted
		// more memory.
		caches[i] = core.New(core.Config{
			Seed:           int64(100 + i),
			MaxEntries:     meshNodeBudget,
			DisableDropout: true,
			Tuner:          core.TunerConfig{WarmupZ: 1},
		})
		srv := service.NewServerConfig(caches[i], service.ServerConfig{NodeID: ids[i]})
		l, err := net.Listen("unix", socks[i])
		if err != nil {
			return fail(err)
		}
		go srv.Serve(context.Background(), l)
		t.servers = append(t.servers, srv)
	}
	if n > 1 {
		for i := 0; i < n; i++ {
			var peers []cluster.PeerSpec
			for j := 0; j < n; j++ {
				if j != i {
					peers = append(peers, cluster.PeerSpec{ID: ids[j], Network: "unix", Addr: socks[j]})
				}
			}
			m, err := cluster.New(cluster.Config{
				NodeID:   ids[i],
				Local:    caches[i],
				Peers:    peers,
				Replicas: k,
				Client:   service.ClientConfig{RequestTimeout: 2 * time.Second},
			})
			if err != nil {
				return fail(err)
			}
			t.servers[i].SetRemote(m)
			m.Start()
			t.meshes = append(t.meshes, m)
		}
	}
	for i := 0; i < n; i++ {
		cl, err := service.Dial("unix", socks[i], fmt.Sprintf("device-%d", i))
		if err != nil {
			return fail(err)
		}
		t.clients = append(t.clients, cl)
	}
	return t, nil
}

func meshKey(k int) vec.Vector { return vec.Vector{float64(k), float64(k % 7)} }

// driveMesh registers the namespaces, runs a deterministic warmup pass
// over the whole input universe, then measures: uniform-random recurring
// inputs, each from the next device in round-robin; a miss recomputes
// and re-caches, the same refill loop a real device runs.
func driveMesh(t *meshNodes, rng *rand.Rand) (hits, lookups int, err error) {
	fns := make([]string, meshFunctions)
	for f := range fns {
		fns[f] = fmt.Sprintf("env-%d", f)
		for _, cl := range t.clients {
			if err := cl.Register(fns[f], service.KeyTypeDef{Name: "feat"}); err != nil {
				return 0, 0, err
			}
		}
	}
	access := func(i, f, k int, count bool) error {
		cl := t.clients[i%len(t.clients)]
		key := meshKey(k)
		res, err := cl.Lookup(fns[f], "feat", key)
		if err != nil {
			return err
		}
		if count {
			lookups++
			if res.Hit {
				hits++
			}
		}
		if res.Hit {
			return nil
		}
		_, err = cl.Put(fns[f], map[string]vec.Vector{"feat": key},
			[]byte(fmt.Sprintf("result-%d-%d", f, k)),
			service.PutOptions{Cost: 10 * time.Millisecond})
		return err
	}
	for f := 0; f < meshFunctions; f++ { // warmup: compute everything once
		for k := 0; k < meshKeysPerFn; k++ {
			if err := access(f*meshKeysPerFn+k, f, k, false); err != nil {
				return 0, 0, err
			}
		}
	}
	for i := 0; i < meshTrials; i++ {
		if err := access(i, rng.Intn(meshFunctions), rng.Intn(meshKeysPerFn), true); err != nil {
			return 0, 0, err
		}
	}
	return hits, lookups, nil
}

// predictMeshHitRate is the coarse capacity model: n·C slots hold the
// U-input universe at an average of 1 + K·(n-1)/n copies per result
// (the receiving node's own copy plus the owner replicas it is not).
// It is an anchor, not a bound: adoption of remote hits both spends
// extra slots on duplicates and concentrates results on the nodes
// whose devices recur them, so measured rates drift either way while
// staying far above the single-node C/U.
func predictMeshHitRate(n, k int) float64 {
	universe := float64(meshFunctions * meshKeysPerFn)
	copies := 1 + float64(k)*float64(n-1)/float64(n)
	if n == 1 {
		copies = 1
	}
	rate := float64(n) * float64(meshNodeBudget) / copies / universe
	if rate > 1 {
		return 1
	}
	return rate
}

func runMesh(w io.Writer) error {
	type config struct {
		nodes, k int
		label    string
	}
	configs := []config{
		{1, 1, "1 node (isolated device)"},
		{3, 1, "3-node mesh, K=1"},
		{3, 2, "3-node mesh, K=2"},
	}
	rates := make([]float64, len(configs))
	rows := make([][]string, len(configs))
	for ci, cfg := range configs {
		t, err := startMeshNodes(cfg.nodes, cfg.k)
		if err != nil {
			return err
		}
		hits, lookups, err := driveMesh(t, rand.New(rand.NewSource(42)))
		if err != nil {
			t.close()
			return err
		}
		var remoteReuses int64
		for _, m := range t.meshes {
			for _, p := range m.Peers() {
				remoteReuses += p.Hits
			}
		}
		t.close()
		rates[ci] = float64(hits) / float64(lookups)
		rows[ci] = []string{
			cfg.label,
			fmt.Sprintf("%d", lookups),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%.3f", rates[ci]),
			fmt.Sprintf("%.3f", predictMeshHitRate(cfg.nodes, cfg.k)),
			fmt.Sprintf("%d", remoteReuses),
		}
	}
	fmt.Fprintf(w, "universe: %d functions × %d inputs = %d distinct results; "+
		"each node caches %d entries\n\n",
		meshFunctions, meshKeysPerFn, meshFunctions*meshKeysPerFn, meshNodeBudget)
	table(w, []string{"topology", "lookups", "hits", "hit rate", "predicted", "peer reuses"}, rows)
	fmt.Fprintf(w, "\nshape check (pooling wins: both mesh rates above the single node, "+
		"and K=2 pays a capacity tax vs K=1): %v\n",
		rates[1] > rates[0] && rates[2] > rates[0] && rates[1] > rates[2])
	return nil
}
