package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	if len(all) < len(paperOrder) {
		t.Fatalf("registry has %d experiments, want ≥ %d", len(all), len(paperOrder))
	}
	for i, id := range paperOrder {
		if all[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig8")
	if err != nil || e.ID != "fig8" {
		t.Errorf("ByID(fig8) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if got := IDs(); len(got) != len(registry) {
		t.Errorf("IDs() = %v", got)
	}
}

// TestFig7Runs executes the fastest experiment end to end and checks
// the output shape.
func TestFig7Runs(t *testing.T) {
	e, err := ByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"factor 1/2", "factor 1/4", "factor 1/8", "20x shrink"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q:\n%s", want, out)
		}
	}
}

// TestFig8ShapeHolds runs the replacement-policy comparison and asserts
// the paper's core claim on the generated rows: importance < lru and
// importance < random at the 20% cache point.
func TestFig8ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 replays 2×9×3 sequences of 10k requests")
	}
	e, err := ByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	// Parse the 20% rows of both distributions.
	checked := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] == "20%" {
			var imp, lru, rnd float64
			if _, err := fmt.Sscan(fields[1], &imp); err != nil {
				t.Fatal(err)
			}
			if _, err := fmt.Sscan(fields[2], &lru); err != nil {
				t.Fatal(err)
			}
			if _, err := fmt.Sscan(fields[3], &rnd); err != nil {
				t.Fatal(err)
			}
			if imp >= lru || imp >= rnd {
				t.Errorf("importance %.3f not best at 20%% (lru %.3f random %.3f)", imp, lru, rnd)
			}
			checked++
		}
	}
	if checked != 2 {
		t.Errorf("found %d 20%% rows, want 2", checked)
	}
}

// TestFastExperimentsRun smoke-tests the experiments that finish in
// well under a second, checking they produce their headline lines.
func TestFastExperimentsRun(t *testing.T) {
	cases := map[string]string{
		"ablation-dropout": "wrong results",
		"space":            "shape check",
	}
	for id, want := range cases {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s output missing %q", id, want)
		}
	}
}

// TestMeshExperimentShape runs the 3-node mesh extension end to end
// over real sockets and asserts the headline: pooled capacity lifts
// the aggregate hit rate strictly above the single-node baseline.
func TestMeshExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh boots seven socket-backed nodes across three topologies")
	}
	e, err := ByID("mesh")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "K=2 pays a capacity tax vs K=1): true") {
		t.Errorf("mesh shape check failed:\n%s", out)
	}
}

func TestInitialThresholdDegenerate(t *testing.T) {
	if got := initialThreshold(nil, vec.EuclideanMetric{}); got != 0 {
		t.Errorf("empty entries: %v", got)
	}
	one := []datasetEntry{{key: vec.Vector{1}, label: 0}}
	if got := initialThreshold(one, vec.EuclideanMetric{}); got != 0 {
		t.Errorf("single entry: %v", got)
	}
	// Two same-label entries: threshold covers their distance.
	two := []datasetEntry{
		{key: vec.Vector{0}, label: 1},
		{key: vec.Vector{3}, label: 1},
	}
	if got := initialThreshold(two, vec.EuclideanMetric{}); got != 3 {
		t.Errorf("same-label pair: %v, want 3", got)
	}
	// Different labels: no reuse is safe, threshold 0.
	twoDiff := []datasetEntry{
		{key: vec.Vector{0}, label: 1},
		{key: vec.Vector{3}, label: 2},
	}
	if got := initialThreshold(twoDiff, vec.EuclideanMetric{}); got != 0 {
		t.Errorf("diff-label pair: %v, want 0", got)
	}
}

func TestHelpers(t *testing.T) {
	if mean(nil) != 0 || median(nil) != 0 {
		t.Error("empty-input helpers")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	lo, hi := minMax([]float64{2, -1, 5})
	if lo != -1 || hi != 5 {
		t.Error("minMax")
	}
	if accuracy(nil, nil) != 0 {
		t.Error("empty accuracy")
	}
	if accuracy([]int{1, 2}, []int{1, 3}) != 0.5 {
		t.Error("accuracy")
	}
}

// TestCrossDeviceFaultPhase runs the crossdevice experiment end to end,
// including the wire-level blackholed-hub phase, and asserts the breaker
// tripped and the degraded mode was exercised.
func TestCrossDeviceFaultPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("crossdevice pays a few real remote timeouts")
	}
	e, err := ByID("crossdevice")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"shape check", "breaker after blackhole: open", "blackholed"} {
		if !strings.Contains(out, want) {
			t.Errorf("crossdevice output missing %q:\n%s", want, out)
		}
	}
}
