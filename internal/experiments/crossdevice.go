package experiments

import (
	"fmt"
	"io"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "crossdevice",
		Title: "Extension: cross-device deduplication (§7 future work)",
		Paper: "the paper proposes applying deduplication across devices; this " +
			"extension measures how a second device's work splits between local " +
			"hits, hub reuses, and fresh computation",
		Run: runCrossDevice,
	})
}

// runCrossDevice simulates the §7 scenario without sockets (the wire
// path is covered by the ipc experiment and service tests): a shared hub
// cache plus per-device local caches using the Tiered adopt-on-hit
// policy. Device A works through a day of ambient environments; device B
// then enters the same environments, and we count where B's answers come
// from.
func runCrossDevice(w io.Writer) error {
	newCache := func(seed int64) *core.Cache {
		c := core.New(core.Config{
			Seed:  seed,
			Tuner: core.TunerConfig{WarmupZ: 10},
		})
		if err := c.RegisterFunction("ambient", core.KeyTypeSpec{Name: "mfcc", Dim: 26}); err != nil {
			panic(err) // static registration cannot fail
		}
		return c
	}
	hub := newCache(1)

	type device struct {
		name  string
		local *core.Cache
	}
	newDevice := func(name string, seed int64) *device {
		return &device{name: name, local: newCache(seed)}
	}
	// Without sockets, emulate the remote hop with direct hub access:
	// lookup local → hub → compute, adopting hub hits locally — exactly
	// service.Tiered's algorithm (which the service tests cover over a
	// real socket).
	gen := audio.NewAmbientScene(2018)
	type outcome struct{ local, hub, computed int }
	process := func(d *device, hubCache *core.Cache, class, variant int, out *outcome) error {
		clip, truth := gen.Sample(class, variant)
		key := audio.MFCC(clip, audio.MFCCConfig{})
		res, err := d.local.Lookup("ambient", "mfcc", key)
		if err != nil {
			return err
		}
		if res.Hit {
			out.local++
			return nil
		}
		if !res.Dropout {
			hres, err := hubCache.Lookup("ambient", "mfcc", key)
			if err != nil {
				return err
			}
			if hres.Hit {
				out.hub++
				_, err = d.local.Put("ambient", core.PutRequest{
					Keys:  map[string]vec.Vector{"mfcc": key},
					Value: hres.Value,
					App:   "remote-adopt",
				})
				return err
			}
		}
		out.computed++
		value := fmt.Sprintf("env-%d", truth)
		if _, err := d.local.Put("ambient", core.PutRequest{
			Keys:  map[string]vec.Vector{"mfcc": key},
			Value: value,
			App:   d.name,
		}); err != nil {
			return err
		}
		_, err = hubCache.Put("ambient", core.PutRequest{
			Keys:  map[string]vec.Vector{"mfcc": key},
			Value: value,
			App:   d.name,
		})
		return err
	}

	phoneA := newDevice("phone-a", 2)
	phoneB := newDevice("phone-b", 3)
	var aDay, bFirst, bRevisit outcome
	const classes = 6
	// Phone A's day.
	for i := 0; i < 60; i++ {
		if err := process(phoneA, hub, (i/5)%classes, 100+i, &aDay); err != nil {
			return err
		}
	}
	// Phone B enters the same environments for the first time...
	for i := 0; i < 30; i++ {
		if err := process(phoneB, hub, (i/3)%classes, 500+i, &bFirst); err != nil {
			return err
		}
	}
	// ...then revisits them.
	for i := 0; i < 30; i++ {
		if err := process(phoneB, hub, (i/3)%classes, 800+i, &bRevisit); err != nil {
			return err
		}
	}

	rows := [][]string{
		{"phone A (day 1)", fmt.Sprintf("%d", aDay.local), fmt.Sprintf("%d", aDay.hub), fmt.Sprintf("%d", aDay.computed)},
		{"phone B (first visit)", fmt.Sprintf("%d", bFirst.local), fmt.Sprintf("%d", bFirst.hub), fmt.Sprintf("%d", bFirst.computed)},
		{"phone B (revisit)", fmt.Sprintf("%d", bRevisit.local), fmt.Sprintf("%d", bRevisit.hub), fmt.Sprintf("%d", bRevisit.computed)},
	}
	table(w, []string{"device / phase", "local hits", "hub reuses", "computed"}, rows)
	fmt.Fprintf(w, "\nshape check (B computes less than A, and shifts from hub to local): %v\n",
		bFirst.computed+bRevisit.computed < aDay.computed &&
			bRevisit.local > bFirst.local)
	return nil
}
