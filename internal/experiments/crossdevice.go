package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "crossdevice",
		Title: "Extension: cross-device deduplication (§7 future work)",
		Paper: "the paper proposes applying deduplication across devices; this " +
			"extension measures how a second device's work splits between local " +
			"hits, hub reuses, and fresh computation",
		Run: runCrossDevice,
	})
}

// runCrossDevice simulates the §7 scenario without sockets (the wire
// path is covered by the ipc experiment and service tests): a shared hub
// cache plus per-device local caches using the Tiered adopt-on-hit
// policy. Device A works through a day of ambient environments; device B
// then enters the same environments, and we count where B's answers come
// from.
func runCrossDevice(w io.Writer) error {
	newCache := func(seed int64) *core.Cache {
		c := core.New(core.Config{
			Seed:  seed,
			Tuner: core.TunerConfig{WarmupZ: 10},
		})
		if err := c.RegisterFunction("ambient", core.KeyTypeSpec{Name: "mfcc", Dim: 26}); err != nil {
			panic(err) // static registration cannot fail
		}
		return c
	}
	hub := newCache(1)

	type device struct {
		name  string
		local *core.Cache
	}
	newDevice := func(name string, seed int64) *device {
		return &device{name: name, local: newCache(seed)}
	}
	// Without sockets, emulate the remote hop with direct hub access:
	// lookup local → hub → compute, adopting hub hits locally — exactly
	// service.Tiered's algorithm (which the service tests cover over a
	// real socket).
	gen := audio.NewAmbientScene(2018)
	type outcome struct{ local, hub, computed int }
	process := func(d *device, hubCache *core.Cache, class, variant int, out *outcome) error {
		clip, truth := gen.Sample(class, variant)
		key := audio.MFCC(clip, audio.MFCCConfig{})
		res, err := d.local.Lookup("ambient", "mfcc", key)
		if err != nil {
			return err
		}
		if res.Hit {
			out.local++
			return nil
		}
		if !res.Dropout {
			hres, err := hubCache.Lookup("ambient", "mfcc", key)
			if err != nil {
				return err
			}
			if hres.Hit {
				out.hub++
				_, err = d.local.Put("ambient", core.PutRequest{
					Keys:  map[string]vec.Vector{"mfcc": key},
					Value: hres.Value,
					App:   "remote-adopt",
				})
				return err
			}
		}
		out.computed++
		// Byte values, so the same hub can later serve remote lookups over
		// the wire in the fault-injection phase (non-byte entries are
		// invisible to remote callers by design).
		value := []byte(fmt.Sprintf("env-%d", truth))
		if _, err := d.local.Put("ambient", core.PutRequest{
			Keys:  map[string]vec.Vector{"mfcc": key},
			Value: value,
			App:   d.name,
		}); err != nil {
			return err
		}
		_, err = hubCache.Put("ambient", core.PutRequest{
			Keys:  map[string]vec.Vector{"mfcc": key},
			Value: value,
			App:   d.name,
		})
		return err
	}

	phoneA := newDevice("phone-a", 2)
	phoneB := newDevice("phone-b", 3)
	var aDay, bFirst, bRevisit outcome
	const classes = 6
	// Phone A's day.
	for i := 0; i < 60; i++ {
		if err := process(phoneA, hub, (i/5)%classes, 100+i, &aDay); err != nil {
			return err
		}
	}
	// Phone B enters the same environments for the first time...
	for i := 0; i < 30; i++ {
		if err := process(phoneB, hub, (i/3)%classes, 500+i, &bFirst); err != nil {
			return err
		}
	}
	// ...then revisits them.
	for i := 0; i < 30; i++ {
		if err := process(phoneB, hub, (i/3)%classes, 800+i, &bRevisit); err != nil {
			return err
		}
	}

	rows := [][]string{
		{"phone A (day 1)", fmt.Sprintf("%d", aDay.local), fmt.Sprintf("%d", aDay.hub), fmt.Sprintf("%d", aDay.computed)},
		{"phone B (first visit)", fmt.Sprintf("%d", bFirst.local), fmt.Sprintf("%d", bFirst.hub), fmt.Sprintf("%d", bFirst.computed)},
		{"phone B (revisit)", fmt.Sprintf("%d", bRevisit.local), fmt.Sprintf("%d", bRevisit.hub), fmt.Sprintf("%d", bRevisit.computed)},
	}
	table(w, []string{"device / phase", "local hits", "hub reuses", "computed"}, rows)
	fmt.Fprintf(w, "\nshape check (B computes less than A, and shifts from hub to local): %v\n",
		bFirst.computed+bRevisit.computed < aDay.computed &&
			bRevisit.local > bFirst.local)

	return runCrossDeviceFaults(w, hub, newCache, gen)
}

// runCrossDeviceFaults replays the cross-device path over a real socket
// and then blackholes the hub: a third device keeps working against the
// warmed hub cache through service.Tiered, the hub is replaced by a peer
// that accepts but never replies, and we report lookup tail latency in
// both phases. The breaker should trip after a handful of timed-out
// lookups, after which requests degrade to local-only at local speed.
func runCrossDeviceFaults(w io.Writer, hub *core.Cache, newCache func(int64) *core.Cache, gen *audio.AmbientScene) error {
	dir, err := os.MkdirTemp("", "potluck-crossdevice")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "hub.sock")

	// The warmed hub cache from the simulation, now behind the service.
	srv := service.NewServer(hub)
	l, err := net.Listen("unix", sock)
	if err != nil {
		return err
	}
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(context.Background(), l) }()

	remote, err := service.DialConfig("unix", sock, "phone-c", service.ClientConfig{
		RequestTimeout: 50 * time.Millisecond, // the remote-peer timeout
		MaxAttempts:    1,                     // a hub hop is latency-sensitive: no retries
	})
	if err != nil {
		return err
	}
	defer remote.Close()
	tr := &service.Tiered{
		Local:            newCache(4),
		Remote:           remote,
		FailureThreshold: 3,
		Cooldown:         10 * time.Second,
	}

	const classes = 6
	putErrs := 0
	phase := func(base int, n int) ([]time.Duration, error) {
		samples := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			clip, truth := gen.Sample((i/3)%classes, base+i)
			key := audio.MFCC(clip, audio.MFCCConfig{})
			start := time.Now()
			res, err := tr.Lookup("ambient", "mfcc", key)
			samples = append(samples, time.Since(start))
			if err != nil {
				return nil, err
			}
			if !res.Hit {
				// A failed hub write-through is surfaced by Tiered.Put but
				// non-fatal here: the local write already landed, which is
				// the degraded mode under test.
				if err := tr.Put("ambient", "mfcc", key,
					[]byte(fmt.Sprintf("env-%d", truth)), 10*time.Millisecond); err != nil {
					putErrs++
				}
			}
		}
		return samples, nil
	}

	alive, err := phase(1100, 30)
	if err != nil {
		return err
	}

	// Blackhole the hub: tear the real service down and put a peer that
	// accepts connections but never replies on the same socket.
	srv.Close()
	<-srvDone
	bl, err := net.Listen("unix", sock)
	if err != nil {
		return err
	}
	defer bl.Close()
	go func() {
		for {
			conn, err := bl.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	dead, err := phase(1200, 30)
	if err != nil {
		return err
	}

	table(w, []string{"hub state", "lookups", "avg ms", "p50 ms", "p99 ms", "max ms"}, [][]string{
		summarize(alive).row("alive"),
		summarize(dead).row("blackholed"),
	})
	fmt.Fprintf(w, "\nbreaker after blackhole: %s (remote errors absorbed: %d, failed hub write-throughs: %d)\n",
		tr.BreakerState(), tr.RemoteErrors(), putErrs)
	fmt.Fprintf(w, "only the first %d remote calls pay the %s peer timeout; once the breaker "+
		"trips, misses skip the hub entirely and lookups stay at local speed\n",
		3, 50*time.Millisecond)
	return nil
}
