package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/imaging"
	"repro/internal/render"
	"repro/internal/synth"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig10c",
		Title: "Three applications interleaved (normalized completion time)",
		Paper: "Potluck cuts per-frame completion 2.5–10×, close to optimal; for " +
			"recognition and location-AR it beats even the PC; emulated FlashBack " +
			"matches Potluck only on the location-AR app and does nothing for recognition",
		Run: runFig10c,
	})
}

// fig10cFramePoses derives a smooth pose track aligned with the video.
func fig10cFramePoses(n int, phase float64) []render.Pose {
	out := make([]render.Pose, n)
	for i := range out {
		t := float64(i)
		out[i] = render.Pose{
			Yaw:   0.015*t + phase,
			Pitch: 0.04 * math.Sin(t*0.09+phase),
		}
	}
	return out
}

// runFig10c reproduces Figure 10(c): the recognition app, the
// location-based AR app, and the vision-based AR app run interleaved
// over frames extracted from a correlated video feed, sharing one
// Potluck service. Completion times are normalized to native mobile
// execution; the comparison bars are optimal deduplication, the PC
// without Potluck, and the emulated FlashBack.
func runFig10c(w io.Writer) error {
	const frames = 200
	// "We record several 30-second video segments ... at 60 fps, extract
	// 200 frames, evenly spaced": stride 9 over an 1800-frame feed.
	video := synth.NewVideo(synth.VideoConfig{W: 96, H: 72, Seed: 10, CutEvery: 600, PanPerFrame: 0.4})
	frameAt := func(i int) *imaging.RGB { return video.Frame(i * 9) }
	offsetFrameAt := func(i int) *imaging.RGB { return video.Frame(i*9 + 2) }

	_, rec := cifar()
	clk := clock.NewVirtual(time.Unix(0, 0))
	cache := core.New(core.Config{
		Clock: clk,
		Seed:  12,
		Tuner: core.TunerConfig{WarmupZ: 60},
		Equal: apps.RenderEqual(func(a, b any) bool { return a == b }),
	})
	env := apps.NewEnv(cache, clk, workload.Mobile)
	renderer := render.NewRenderer(96, 72)
	scene := arScene(2)

	lens, err := apps.NewRecognitionApp(env, rec.clf, "lens", true)
	if err != nil {
		return err
	}
	arloc, err := apps.NewARLocationApp(env, scene, renderer, "ar-loc", true)
	if err != nil {
		return err
	}
	arcv, err := apps.NewARCVApp(env, rec.clf, nil, renderer, "ar-cv", true)
	if err != nil {
		return err
	}
	fb := apps.NewFlashBack(env, scene, renderer)

	poses := fig10cFramePoses(frames, 0)
	measPoses := fig10cFramePoses(frames, 0.02)

	// Warm pass: the three applications run through the scene once,
	// interleaved, letting the tuners calibrate.
	for i := 0; i < frames; i++ {
		if _, err := lens.ProcessFrame(frameAt(i)); err != nil {
			return err
		}
		if _, err := arloc.ProcessPose(poses[i]); err != nil {
			return err
		}
		if _, err := arcv.ProcessFrame(frameAt(i), poses[i]); err != nil {
			return err
		}
		if _, err := fb.RenderPose(poses[i]); err != nil {
			return err
		}
	}

	// Measurement pass: interleaved invocations "in similar
	// spatio-temporal contexts" — offset frames and poses.
	var lensTotal, arlocTotal, arcvTotal, fbARTotal time.Duration
	var lensHitTotal, arlocHitTotal, arcvHitTotal time.Duration
	lensHits, arlocHits, arcvHits := 0, 0, 0
	for i := 0; i < frames; i++ {
		lr, err := lens.ProcessFrame(offsetFrameAt(i))
		if err != nil {
			return err
		}
		lensTotal += lr.Elapsed.Duration()
		if lr.Hit {
			lensHits++
			lensHitTotal += lr.Elapsed.Duration()
		}
		ar, err := arloc.ProcessPose(measPoses[i])
		if err != nil {
			return err
		}
		arlocTotal += ar.Elapsed.Duration()
		if ar.Hit {
			arlocHits++
			arlocHitTotal += ar.Elapsed.Duration()
		}
		cv, err := arcv.ProcessFrame(offsetFrameAt(i), measPoses[i])
		if err != nil {
			return err
		}
		arcvTotal += cv.Elapsed.Duration()
		if cv.RecognitionHit && cv.RenderHit {
			arcvHits++
			arcvHitTotal += cv.Elapsed.Duration()
		}
		fbr, err := fb.RenderPose(measPoses[i])
		if err != nil {
			return err
		}
		fbARTotal += fbr.Elapsed.Duration()
	}
	hitPath := func(total time.Duration, hits int, native time.Duration) string {
		if hits == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", float64(total/time.Duration(hits))/float64(native))
	}

	// Native per-frame costs on the mobile (the normalization base).
	lensNative := apps.DownsampCost + apps.RecognitionCost + apps.FetchInfoCost
	arlocNative := time.Duration(len(scene.Objects)) * apps.RenderCostPerObject
	arcvNative := apps.DownsampCost + apps.RecognitionCost + apps.RenderCostPerObject

	norm := func(total time.Duration, native time.Duration) string {
		return fmt.Sprintf("%.3f", float64(total/frames)/float64(native))
	}
	optLens := apps.OptimalFrameTime(workload.Mobile).Duration()
	optAR := apps.OptimalARFrameTime(workload.Mobile).Duration()
	optARCV := optLens + optAR

	// Emulated FlashBack: recognition gains nothing; location-AR uses the
	// in-app memo; the vision-AR app computes recognition natively and
	// renders via the memo.
	fbLens := lensNative
	fbARCV := apps.DownsampCost + apps.RecognitionCost + fbARTotal/frames

	rows := [][]string{
		{
			"Image Recognition",
			fmt.Sprintf("%.5f", float64(optLens)/float64(lensNative)),
			hitPath(lensHitTotal, lensHits, lensNative),
			norm(lensTotal, lensNative),
			fmt.Sprintf("%.3f", 1/workload.PC.Speed),
			fmt.Sprintf("%.3f", float64(fbLens)/float64(lensNative)),
			fmt.Sprintf("%.0f%%", 100*float64(lensHits)/frames),
		},
		{
			"AR-loc",
			fmt.Sprintf("%.5f", float64(optAR)/float64(arlocNative)),
			hitPath(arlocHitTotal, arlocHits, arlocNative),
			norm(arlocTotal, arlocNative),
			fmt.Sprintf("%.3f", 1/workload.PC.Speed),
			norm(fbARTotal, arlocNative),
			fmt.Sprintf("%.0f%%", 100*float64(arlocHits)/frames),
		},
		{
			"AR-cv",
			fmt.Sprintf("%.5f", float64(optARCV)/float64(arcvNative)),
			hitPath(arcvHitTotal, arcvHits, arcvNative),
			norm(arcvTotal, arcvNative),
			fmt.Sprintf("%.3f", 1/workload.PC.Speed),
			fmt.Sprintf("%.3f", float64(fbARCV)/float64(arcvNative)),
			fmt.Sprintf("%.0f%%", 100*float64(arcvHits)/frames),
		},
	}
	table(w, []string{"app", "optimal", "potluck (dedup path)", "potluck (mean)", "pc", "flashback", "hit rate"}, rows)
	fmt.Fprintf(w, "\nspeedup vs native mobile: recognition %.1fx, AR-loc %.1fx, AR-cv %.1fx\n",
		float64(lensNative)/float64(lensTotal/frames),
		float64(arlocNative)/float64(arlocTotal/frames),
		float64(arcvNative)/float64(arcvTotal/frames))
	return nil
}
