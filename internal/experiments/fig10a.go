package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vec"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig10a",
		Title: "Deep-learning completion time (small vs large cache)",
		Paper: "Potluck lands within ~5 ms of optimal, ~24.8× faster than native " +
			"mobile and ~4.2× faster than the PC; the raw lookup is microseconds",
		Run: runFig10a,
	})
}

// runFig10a reproduces Figure 10(a): average per-image completion time
// for the deep-learning recognition app with a small (100-entry) and a
// large (5000-entry) pre-stored cache, with the threshold tuner running
// live, against the optimal, PC-native and mobile-native baselines.
func runFig10a(w io.Writer) error {
	ds, rec := cifar()
	const testN = 100

	type runResult struct {
		mean         time.Duration // over all frames, dropout recomputes included
		hitPath      time.Duration // over deduplicated frames only
		hitRate      float64
		lookupMicros float64
		threshold    float64
	}
	run := func(prestore int) (runResult, error) {
		clk := clock.NewVirtual(time.Unix(0, 0))
		cache := core.New(core.Config{
			Clock: clk,
			Seed:  10,
			// Live tuning, as §5.5 specifies for this experiment; the
			// warm-up completes during pre-storing.
			Tuner: core.TunerConfig{WarmupZ: min(prestore, 100)},
		})
		env := apps.NewEnv(cache, clk, workload.Mobile)
		app, err := apps.NewRecognitionApp(env, rec.clf, "lens", true)
		if err != nil {
			return runResult{}, err
		}
		// Pre-store recognition results (threshold warm-up feeds on
		// these puts).
		// "randomly select ... images along with their (ground-truth)
		// recognition labels from the CIFAR-10 training set as the
		// pre-stored entries" (§5.5).
		entries := drawEntries(ds, rec, ds.Classes, prestore, 100)
		for _, e := range entries {
			_, err := cache.Put(apps.RecognitionFunction, core.PutRequest{
				Keys:  map[string]vec.Vector{apps.RecognitionKeyType: e.key},
				Value: e.truth,
				Cost:  apps.RecognitionCost,
				App:   "prestore",
			})
			if err != nil {
				return runResult{}, err
			}
		}
		// Measure raw index lookup latency (the "unmapped lookup time"
		// annotation in the figure).
		probe := entries[0].key
		start := time.Now()
		const probes = 200
		for i := 0; i < probes; i++ {
			if _, err := cache.Lookup(apps.RecognitionFunction, apps.RecognitionKeyType, probe); err != nil {
				return runResult{}, err
			}
		}
		lookupMicros := float64(time.Since(start)) / probes / float64(time.Microsecond)

		test := drawEntries(ds, rec, ds.Classes, testN, 30_000)
		var total, hitTotal time.Duration
		hits := 0
		for _, te := range test {
			res, err := app.ProcessFrame(ds.Sample(te.class, te.variant).Image)
			if err != nil {
				return runResult{}, err
			}
			total += res.Elapsed.Duration()
			if res.Hit {
				hits++
				hitTotal += res.Elapsed.Duration()
			}
		}
		st, _ := cache.TunerStats(apps.RecognitionFunction, apps.RecognitionKeyType)
		out := runResult{
			mean:         total / testN,
			hitRate:      float64(hits) / testN,
			lookupMicros: lookupMicros,
			threshold:    st.Threshold,
		}
		if hits > 0 {
			out.hitPath = hitTotal / time.Duration(hits)
		}
		return out, nil
	}

	optimal := apps.OptimalFrameTime(workload.Mobile).Duration()
	nativeMobile := workload.Mobile.CostOn(apps.DownsampCost + apps.RecognitionCost + apps.FetchInfoCost)
	nativePC := workload.PC.CostOn(apps.DownsampCost + apps.RecognitionCost + apps.FetchInfoCost)

	rows := make([][]string, 0, 2)
	var lastHitPath time.Duration
	for _, cfg := range []struct {
		name     string
		prestore int
	}{{"small cache (100)", 100}, {"large cache (5000)", 5000}} {
		r, err := run(cfg.prestore)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			cfg.name,
			ms(optimal),
			ms(r.hitPath),
			ms(r.mean),
			ms(nativePC),
			ms(nativeMobile),
			fmt.Sprintf("%.0f%%", 100*r.hitRate),
			fmt.Sprintf("%.1f µs", r.lookupMicros),
			fmt.Sprintf("%.2f", r.threshold),
		})
		lastHitPath = r.hitPath
	}
	table(w, []string{"config", "optimal", "potluck (dedup path)", "potluck (mean)", "pc native", "mobile native", "hit rate", "raw lookup", "threshold"}, rows)
	fmt.Fprintf(w, "\ndedup-path speedup vs mobile native (large cache): %.1fx (paper: 24.8x)\n",
		float64(nativeMobile)/float64(lastHitPath))
	fmt.Fprintf(w, "dedup-path vs pc native: %.1fx (paper: 4.2x)\n",
		float64(nativePC)/float64(lastHitPath))
	fmt.Fprintln(w, "(the mean column includes the 10% dropout-forced recomputations,")
	fmt.Fprintln(w, " Potluck's background quality-control work)")
	return nil
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
}
