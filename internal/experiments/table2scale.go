package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"time"

	"repro/internal/index"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "table2scale",
		Title: "Index scaling sweep: probes, latency, recall, and key memory from 10^3 to 10^6 entries",
		Paper: "extends Table 2 beyond paper scale (ROADMAP item 3): linear/KD probe work grows " +
			"linearly with the entry count while HNSW/IVF stay sub-linear (>=5x fewer probes at 10^6) " +
			"at recall@1 >= 0.95, and PQ key storage cuts bytes/entry >=8x",
		Run: runTable2Scale,
	})
}

// sweepScales are the entry counts of the sweep. POTLUCK_SWEEP_MAX caps
// the sweep (CI smoke runs at 10^3; the recorded curve uses the full
// range).
func sweepScales() []int {
	scales := []int{1_000, 10_000, 100_000, 1_000_000}
	max := 1_000_000
	if s := os.Getenv("POTLUCK_SWEEP_MAX"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			max = v
		}
	}
	out := scales[:0]
	for _, s := range scales {
		if s <= max {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = append(out, max)
	}
	return out
}

// runTable2Scale measures, per (entry count, index kind): average lookup
// latency, probes per query (ProbeStats), recall@1 against the linear
// ground truth, and key-store bytes per entry. PQ-backed kinds run with
// an external key resolver — the cache-core deployment, where the
// members table supplies exact vectors for re-ranking — so the reported
// bytes/entry is the real deployed footprint.
func runTable2Scale(w io.Writer) error {
	const (
		dim     = 16
		queries = 100
	)
	type kindCfg struct {
		kind index.Kind
		// maxEntries bounds the scales this kind is measured at (graph
		// construction cost, not query cost, is the limiter).
		maxEntries int
	}
	kinds := []kindCfg{
		{index.KindLinear, 1_000_000},
		{index.KindKDTree, 1_000_000},
		{index.KindLSH, 100_000},
		{index.KindHNSW, 100_000},
		{index.KindIVF, 1_000_000},
		{index.KindIVFPQ, 1_000_000},
		{index.KindHNSWPQ, 100_000},
	}
	var rows [][]string
	for _, n := range sweepScales() {
		rng := rand.New(rand.NewSource(int64(n)))
		// Clustered keys: the correlated cross-application feeds the
		// paper's workloads exhibit (~n/64 points per cluster).
		centers := make([]vec.Vector, 256)
		for i := range centers {
			centers[i] = make(vec.Vector, dim)
			for d := range centers[i] {
				centers[i][d] = rng.NormFloat64() * 100
			}
		}
		keys := make([]vec.Vector, n)
		for i := range keys {
			c := centers[rng.Intn(len(centers))]
			v := make(vec.Vector, dim)
			for d := range v {
				v[d] = c[d] + rng.NormFloat64()*2
			}
			keys[i] = v
		}
		qs := make([]vec.Vector, queries)
		for i := range qs {
			q := keys[rng.Intn(n)].Clone()
			for d := range q {
				q[d] += rng.NormFloat64() * 0.5
			}
			qs[i] = q
		}
		// Linear ground truth (also the first measured row).
		truth := make([]float64, queries)
		for _, kc := range kinds {
			if n > kc.maxEntries {
				rows = append(rows, []string{
					fmt.Sprintf("%d", n), string(kc.kind), "-", "-", "-", "-", "-",
				})
				continue
			}
			idx, err := index.New(kc.kind, vec.EuclideanMetric{}, dim)
			if err != nil {
				return err
			}
			members := make(map[index.ID]vec.Vector, n)
			if rs, ok := idx.(index.ResolverSetter); ok {
				rs.SetKeyResolver(func(id index.ID) (vec.Vector, bool) {
					v, ok := members[id]
					return v, ok
				})
			}
			buildStart := time.Now()
			for i, k := range keys {
				if err := idx.Insert(index.ID(i), k); err != nil {
					return err
				}
				members[index.ID(i)] = k
			}
			build := time.Since(buildStart)
			before := idx.ProbeStats()
			start := time.Now()
			results := make([]index.Neighbor, queries)
			for i, q := range qs {
				nb, ok := idx.Nearest(q)
				if !ok {
					return fmt.Errorf("table2scale: %s returned no result", kc.kind)
				}
				results[i] = nb
			}
			perQuery := time.Since(start) / queries
			after := idx.ProbeStats()
			probes := float64(after.Probes-before.Probes) / float64(after.Queries-before.Queries)
			hits := 0
			for i, nb := range results {
				if kc.kind == index.KindLinear {
					truth[i] = nb.Dist
				}
				if nb.Dist <= truth[i]+1e-9 {
					hits++
				}
			}
			recall := float64(hits) / queries
			keyBytes := fmt.Sprintf("%d", 8*dim)
			if mr, ok := idx.(index.MemoryReporter); ok {
				keyBytes = fmt.Sprintf("%.1f", float64(mr.KeyBytes())/float64(n))
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", n),
				string(kc.kind),
				fmt.Sprintf("%.1f", float64(perQuery)/float64(time.Microsecond)),
				fmt.Sprintf("%.0f", probes),
				fmt.Sprintf("%.2f", recall),
				keyBytes,
				fmt.Sprintf("%.1f", build.Seconds()),
			})
		}
	}
	table(w, []string{"entries", "kind", "us/query", "probes/query", "recall@1", "key B/entry", "build (s)"}, rows)
	return nil
}
