package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Threshold accuracy vs entries used for initialization",
		Paper: "normalized accuracy rises with the number of warm-up entries and " +
			"stabilizes above ~95% once ≥32 entries initialize the threshold",
		Run: runFig6,
	})
}

// initialThreshold computes the warm-up threshold from a set of cached
// entries with the same rule core.Tuner applies when warm-up completes
// (core.WarmupThreshold over nearest-neighbour observations).
func initialThreshold(entries []datasetEntry, metric vec.Metric) float64 {
	var same, diff []float64
	for i, e := range entries {
		best := -1.0
		bestJ := -1
		for j, o := range entries {
			if i == j {
				continue
			}
			d := metric.Distance(e.key, o.key)
			if best < 0 || d < best {
				best, bestJ = d, j
			}
		}
		if bestJ < 0 {
			continue
		}
		if entries[bestJ].label == e.label {
			same = append(same, best)
		} else {
			diff = append(diff, best)
		}
	}
	return core.WarmupThreshold(same, diff)
}

// runFig6 reproduces Figure 6: randomly pick z training images, cache
// their recognition results, initialize the threshold from them, then
// score cache-assisted recognition on held-out test images, normalized
// by the classifier's own accuracy.
func runFig6(w io.Writer) error {
	ds, rec := cifar()
	metric := vec.EuclideanMetric{}
	const (
		reps    = 8
		testN   = 150
		testVar = 10_000 // variant base for the held-out pool
	)

	// Shared test pool and its baseline (no-dedup) accuracy.
	test := drawEntries(ds, rec, ds.Classes, testN, testVar)
	var basePred, truth []int
	for _, e := range test {
		basePred = append(basePred, e.label)
		truth = append(truth, e.truth)
	}
	baseline := accuracy(basePred, truth)
	if baseline == 0 {
		return fmt.Errorf("fig6: baseline accuracy is zero")
	}

	rng := rand.New(rand.NewSource(6))
	rows := make([][]string, 0, 8)
	for _, z := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		var normAccs []float64
		for rep := 0; rep < reps; rep++ {
			// "We randomly pick a variable number of images from the
			// training set": classes are drawn at random, so tiny z may
			// not even see two images of the same class.
			entries := make([]datasetEntry, z)
			for i := range entries {
				class := rng.Intn(ds.Classes)
				variant := 100 + rng.Intn(5000)
				s := ds.Sample(class, variant)
				entries[i] = datasetEntry{
					key:     rec.key(s.Image, class, variant),
					label:   rec.classify(s.Image, class, variant),
					truth:   s.Label,
					class:   class,
					variant: variant,
				}
			}
			threshold := initialThreshold(entries, metric)
			// Cache-assisted recognition: nearest entry within the
			// threshold answers; otherwise the classifier runs.
			var pred []int
			for _, te := range test {
				best, bestD := -1, -1.0
				for _, e := range entries {
					d := metric.Distance(te.key, e.key)
					if bestD < 0 || d < bestD {
						best, bestD = e.label, d
					}
				}
				if bestD >= 0 && bestD <= threshold {
					pred = append(pred, best)
				} else {
					pred = append(pred, te.label) // recompute
				}
			}
			normAccs = append(normAccs, accuracy(pred, truth)/baseline)
		}
		lo, hi := minMax(normAccs)
		rows = append(rows, []string{
			fmt.Sprintf("%d", z),
			fmt.Sprintf("%.1f", 100*mean(normAccs)),
			fmt.Sprintf("%.1f", 100*lo),
			fmt.Sprintf("%.1f", 100*hi),
		})
	}
	table(w, []string{"warmup entries", "accuracy (%)", "min", "max"}, rows)
	fmt.Fprintf(w, "\nbaseline classifier accuracy: %.1f%%\n", 100*baseline)

	// §5.2: "The time overhead for computing a new threshold turns out
	// to be less than 1 ms and negligible."
	obs := make([]float64, 256)
	diffObs := make([]float64, 256)
	for i := range obs {
		obs[i] = float64(i%17) / 17
		diffObs[i] = 1 + float64(i%13)/13
	}
	start := time.Now()
	const reps2 = 1000
	for i := 0; i < reps2; i++ {
		core.WarmupThreshold(obs, diffObs)
	}
	per := time.Since(start) / reps2
	fmt.Fprintf(w, "threshold recomputation overhead (256 observations): %s (paper: <1 ms)\n",
		per.Round(time.Microsecond))
	return nil
}
