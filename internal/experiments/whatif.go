package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/vec"
	"repro/internal/whatif"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "whatif",
		Title: "What-if profiler: counterfactual answers vs ground-truth re-runs",
		Paper: "not a paper artifact — validates the online what-if profiler " +
			"(internal/whatif): each ghost-cache capacity estimate is checked " +
			"against a real re-run of the same trace at that capacity, and the " +
			"Che-approximation prediction against the measured hit rate",
		Run: runWhatIf,
	})
}

const (
	wifCapacity  = 200
	wifPool      = 1200
	wifOps       = 15000
	wifThreshold = 0.25
	wifSeed      = 11
	// wifMRCTolerance is the acceptance gate: every ghost estimate must
	// land within 3 absolute hit-rate points of its ground-truth re-run.
	wifMRCTolerance = 0.03
)

// wifKey spreads ids at least 1 apart in key space, so with θ = 0.25
// only identical keys match: the ghost simulation and the ground-truth
// runs then see the same reuse structure with no similarity cross-talk,
// isolating the capacity question this experiment asks.
func wifKey(id int) vec.Vector {
	return vec.Vector{float64(id), float64(id % 31)}
}

// wifDrive replays one request sequence against a fresh cache of the
// given capacity (compute-on-miss: every miss is followed by a put),
// returning the measured hit rate. The profiler, when non-nil, rides
// along as the cache's tap. LRU everywhere — the policy the Che model
// and the SHARDS construction are stated for.
func wifDrive(capacity int, seq []int, prof *whatif.Profiler) (float64, error) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	cfg := core.Config{
		Clock:          clk,
		Seed:           wifSeed,
		MaxEntries:     capacity,
		Policy:         core.PolicyLRU,
		DisableDropout: true,
		// The tuner must not move the threshold mid-run: a drifting θ
		// would make the ground-truth runs answer a different question
		// than the ghosts simulated.
		Tuner: core.TunerConfig{WarmupZ: 1 << 30},
	}
	if prof != nil {
		cfg.Tap = prof
	}
	cache := core.New(cfg)
	if err := cache.RegisterFunction("wf", core.KeyTypeSpec{Name: "frame", Dim: 2}); err != nil {
		return 0, err
	}
	if err := cache.ForceThreshold("wf", "frame", wifThreshold); err != nil {
		return 0, err
	}
	hits := 0
	for i, id := range seq {
		// Advance virtual time per request so LRU recency and the Che
		// model's request rates are well defined.
		clk.Advance(time.Millisecond)
		key := wifKey(id)
		res, err := cache.Lookup("wf", "frame", key)
		if err != nil {
			return 0, err
		}
		if res.Hit {
			hits++
			continue
		}
		if _, err := cache.Put("wf", core.PutRequest{
			Keys:  map[string]vec.Vector{"frame": key},
			Value: fmt.Sprintf("r%d", id),
			Cost:  time.Duration(5+id%10) * time.Millisecond,
		}); err != nil {
			return 0, err
		}
		if prof != nil && i%512 == 0 {
			prof.Drain() // keep the ring from backing up; no worker here
		}
	}
	return float64(hits) / float64(len(seq)), nil
}

// runWhatIf attaches the profiler at sample rate 1 (where the SHARDS
// simulation is exact), replays a stationary Zipf trace, and then
// re-runs the identical trace against real caches at each ghost
// multiple. Every LRU ghost estimate must match its ground truth within
// wifMRCTolerance, and the Che prediction must match the measured hit
// rate within the profiler's divergence tolerance.
func runWhatIf(w io.Writer) error {
	rng := rand.New(rand.NewSource(wifSeed))
	seq := workload.Sequence(workload.Zipf, wifPool, wifOps, rng)

	mults := []float64{0.5, 1, 2, 4}
	prof := whatif.New(whatif.Config{
		Rate:      1,
		Capacity:  wifCapacity,
		Multiples: mults,
	})
	measured, err := wifDrive(wifCapacity, seq, prof)
	if err != nil {
		return err
	}
	rep := prof.Snapshot()

	ghostRate := make(map[float64]float64, len(mults))
	for _, pt := range rep.MissRatioCurve {
		if pt.Policy == "lru" {
			ghostRate[pt.Mult] = pt.HitRate
		}
	}

	rows := make([][]string, 0, len(mults))
	worst := 0.0
	for _, m := range mults {
		truth, err := wifDrive(int(m*wifCapacity), seq, nil)
		if err != nil {
			return err
		}
		est := ghostRate[m]
		diff := math.Abs(est - truth)
		if diff > worst {
			worst = diff
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g× (%d)", m, int(m*wifCapacity)),
			fmt.Sprintf("%.1f%%", est*100),
			fmt.Sprintf("%.1f%%", truth*100),
			fmt.Sprintf("%.1f pts", diff*100),
		})
	}
	table(w, []string{"capacity", "ghost estimate", "ground truth", "error"}, rows)
	fmt.Fprintf(w, "\nmeasured hit rate at 1× was %.1f%%; worst ghost error %.1f points\n",
		measured*100, worst*100)

	if len(rep.Predictions) != 1 {
		return fmt.Errorf("whatif: expected 1 prediction series, got %d", len(rep.Predictions))
	}
	pred := rep.Predictions[0]
	fmt.Fprintf(w, "Che prediction %.1f%% vs measured %.1f%% (divergence %.3f, tolerance %.2f)\n",
		pred.Predicted*100, pred.Measured*100, pred.Divergence, rep.Tolerance)

	// The acceptance gates: counterfactual answers must agree with the
	// ground truth they claim to predict.
	if worst > wifMRCTolerance {
		return fmt.Errorf("whatif: ghost estimate off by %.1f points, gate is %.0f",
			worst*100, wifMRCTolerance*100)
	}
	if pred.Divergence > rep.Tolerance {
		return fmt.Errorf("whatif: Che divergence %.3f exceeds tolerance %.2f",
			pred.Divergence, rep.Tolerance)
	}
	return nil
}
