package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/index"
	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Lookup latency: LSH vs naive enumeration",
		Paper: "LSH stays below ~10 µs and scales gently to 100 000 entries / 5000-byte " +
			"keys; enumeration grows linearly and becomes impractical (– at the largest cell)",
		Run: runTable2,
	})
}

// runTable2 reproduces Table 2: average lookup time by index structure,
// entry count, and key size. LSH latency is measured with pure bucket
// probing (the production path additionally falls back to scans when
// buckets are empty).
func runTable2(w io.Writer) error {
	type cell struct {
		entries  int
		keyBytes int
		skipEnum bool
	}
	cells := []cell{
		{100, 100, false},
		{1_000, 100, false},
		{10_000, 100, false},
		{100_000, 100, false},
		{100_000, 1_000, false},
		{100_000, 5_000, true}, // the paper marks enumeration "–" here
	}
	const queries = 100
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		dim := c.keyBytes / 8
		rng := rand.New(rand.NewSource(int64(c.entries) + int64(dim)))
		mk := func() vec.Vector {
			v := make(vec.Vector, dim)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}
		// Bucket width scaled to the data: projections of unit-variance
		// keys have σ = √dim, and a width well below that isolates
		// points into fine buckets, which is how production LSH deploys
		// (the paper tunes its LSH to the key distribution likewise).
		cfg := index.DefaultLSHConfig()
		cfg.Hashes = 8
		cfg.BucketWidth = 0.5
		lsh := index.NewLSH(vec.EuclideanMetric{}, dim, cfg)
		lin := index.NewLinear(vec.EuclideanMetric{})
		keys := make([]vec.Vector, c.entries)
		for i := 0; i < c.entries; i++ {
			keys[i] = mk()
			lsh.Insert(index.ID(i), keys[i])
			if !c.skipEnum {
				lin.Insert(index.ID(i), keys[i])
			}
		}
		// Queries near existing keys (the realistic case: correlated input).
		qs := make([]vec.Vector, queries)
		for i := range qs {
			base := keys[rng.Intn(len(keys))]
			q := base.Clone()
			for j := range q {
				q[j] += rng.NormFloat64() * 0.01
			}
			qs[i] = q
		}
		start := time.Now()
		for _, q := range qs {
			lsh.ProbeOnly(q, 1)
		}
		lshAvg := time.Since(start) / queries
		enumCell := "-"
		if !c.skipEnum {
			start = time.Now()
			for _, q := range qs {
				lin.Nearest(q)
			}
			enumCell = fmt.Sprintf("%.1f", float64(time.Since(start)/queries)/float64(time.Microsecond))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.entries),
			fmt.Sprintf("%d", c.keyBytes),
			fmt.Sprintf("%.1f", float64(lshAvg)/float64(time.Microsecond)),
			enumCell,
		})
	}
	table(w, []string{"entries", "key size (bytes)", "LSH (µs)", "enum (µs)"}, rows)
	return nil
}
