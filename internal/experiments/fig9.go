package experiments

import (
	"fmt"
	"io"

	"repro/internal/vec"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Time saved and accuracy vs similarity threshold",
		Paper: "time saved grows with the threshold (faster with more stored " +
			"entries: 5000C > 500C > 100C) while accuracy degrades gently, " +
			"dropping earlier for larger stores; the tuned threshold sits where " +
			"~80% time is saved at <10% accuracy loss",
		Run: runFig9,
	})
}

// fig9Set is one pre-stored entry population.
type fig9Set struct {
	name    string
	entries []datasetEntry
}

// runFig9 reproduces Figure 9: pre-store 100/500/5000 CIFAR-like and 500
// MNIST-like recognition results, then sweep the similarity threshold
// and report the fraction of lookups that hit (time saved, since a hit
// skips the whole inference) and the end-to-end accuracy, both
// normalized by their optima.
func runFig9(w io.Writer) error {
	// Figure 9 stresses the tradeoff: the crowdsourced datasets
	// "eliminate the spatio-temporal correlation" (§5.1), so it uses the
	// weak-correlation CIFAR variant.
	cds, crec := hardCIFAR()
	mds, mrec := mnist()
	const testN = 100
	metric := vec.EuclideanMetric{}

	sets := []fig9Set{
		{"100 C", drawEntries(cds, crec, cds.Classes, 100, 100)},
		{"500 C", drawEntries(cds, crec, cds.Classes, 500, 100)},
		{"5000 C", drawEntries(cds, crec, cds.Classes, 5000, 100)},
		{"500 M", drawEntries(mds, mrec, 10, 500, 100)},
	}
	cifarTest := drawEntries(cds, crec, cds.Classes, testN, 20_000)
	mnistTest := drawEntries(mds, mrec, 10, testN, 20_000)

	// Precompute each test image's nearest stored neighbour per set; the
	// threshold sweep then reduces to a comparison.
	type nearest struct {
		dist  float64
		label int
	}
	nn := make([][]nearest, len(sets))
	baselines := make([]float64, len(sets))
	tests := make([][]datasetEntry, len(sets))
	for si, set := range sets {
		test := cifarTest
		if set.name == "500 M" {
			test = mnistTest
		}
		tests[si] = test
		nn[si] = make([]nearest, len(test))
		var basePred, truth []int
		for ti, te := range test {
			best := nearest{dist: -1}
			for _, e := range set.entries {
				d := metric.Distance(te.key, e.key)
				if best.dist < 0 || d < best.dist {
					// Stored entries carry live recognition outputs — what
					// a deployed cache holds. (The paper pre-stores ground
					// truth; with our synthetic key space that makes reuse
					// strictly better than inference and the accuracy curve
					// never declines, so the live-cache variant is the one
					// that reproduces Figure 9(b)'s shape.)
					best = nearest{dist: d, label: e.label}
				}
			}
			nn[si][ti] = best
			basePred = append(basePred, te.label)
			truth = append(truth, te.truth)
		}
		baselines[si] = accuracy(basePred, truth)
	}

	thresholds := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6, 8}
	fmt.Fprintln(w, "(a) time saved (hit ratio, 1.0 = optimal all-hit)")
	rows := make([][]string, 0, len(thresholds))
	for _, th := range thresholds {
		row := []string{fmt.Sprintf("%.1f", th)}
		for si := range sets {
			hits := 0
			for _, n := range nn[si] {
				if n.dist >= 0 && n.dist <= th {
					hits++
				}
			}
			row = append(row, fmt.Sprintf("%.2f", float64(hits)/float64(len(nn[si]))))
		}
		rows = append(rows, row)
	}
	header := []string{"threshold"}
	for _, s := range sets {
		header = append(header, s.name)
	}
	table(w, header, rows)

	fmt.Fprintln(w, "\n(b) accuracy (normalized to the no-dedup classifier)")
	rows = rows[:0]
	for _, th := range thresholds {
		row := []string{fmt.Sprintf("%.1f", th)}
		for si := range sets {
			var pred, truth []int
			for ti, te := range tests[si] {
				n := nn[si][ti]
				if n.dist >= 0 && n.dist <= th {
					pred = append(pred, n.label)
				} else {
					pred = append(pred, te.label)
				}
				truth = append(truth, te.truth)
			}
			row = append(row, fmt.Sprintf("%.2f", accuracy(pred, truth)/baselines[si]))
		}
		rows = append(rows, row)
	}
	table(w, header, rows)

	// Where the tuner would land: the warm-up threshold per set.
	fmt.Fprintln(w, "\ntuned-threshold region (warm-up rule per set):")
	for _, set := range sets {
		sample := set.entries
		if len(sample) > 300 {
			sample = sample[:300]
		}
		fmt.Fprintf(w, "  %s: %.2f\n", set.name, initialThreshold(sample, metric))
	}
	return nil
}
